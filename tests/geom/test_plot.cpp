// Geometry plotting: raster correctness against direct point queries and
// area fractions.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/plot.hpp"

namespace {

using namespace vmc::geom;

/// Pin cell: fuel (0) inside r=1, water (1) outside, in a 4x4 box.
Geometry pin_cell() {
  Geometry g;
  const int pin = g.add_surface(Surface::z_cylinder(0, 0, 1.0));
  const int sx0 = g.add_surface(Surface::x_plane(-2));
  const int sx1 = g.add_surface(Surface::x_plane(2));
  const int sy0 = g.add_surface(Surface::y_plane(-2));
  const int sy1 = g.add_surface(Surface::y_plane(2));
  const std::vector<HalfSpace> box = {
      {sx0, true}, {sx1, false}, {sy0, true}, {sy1, false}};
  Cell fuel;
  fuel.region = box;
  fuel.region.push_back({pin, false});
  fuel.fill = 0;
  Cell water;
  water.region = box;
  water.region.push_back({pin, true});
  water.fill = 1;
  Universe root;
  root.cells = {g.add_cell(std::move(fuel)), g.add_cell(std::move(water))};
  g.set_root(g.add_universe(std::move(root)));
  return g;
}

TEST(MaterialSlice, PixelsMatchPointQueries) {
  const Geometry g = pin_cell();
  const auto slice = material_slice(g, 0.0, {-2, -2, 0}, {2, 2, 0}, 16, 16);
  ASSERT_EQ(slice.size(), 256u);
  for (int iy = 0; iy < 16; ++iy) {
    for (int ix = 0; ix < 16; ++ix) {
      const Position p{-2 + (ix + 0.5) * 0.25, -2 + (iy + 0.5) * 0.25, 0.0};
      EXPECT_EQ(slice[static_cast<std::size_t>(iy * 16 + ix)],
                g.find_material(p));
    }
  }
}

TEST(MaterialSlice, CenterIsFuelCornerIsWater) {
  const Geometry g = pin_cell();
  const auto slice = material_slice(g, 0.0, {-2, -2, 0}, {2, 2, 0}, 17, 17);
  EXPECT_EQ(slice[static_cast<std::size_t>(8 * 17 + 8)], 0);   // center
  EXPECT_EQ(slice[0], 1);                                       // corner
  EXPECT_EQ(slice[static_cast<std::size_t>(16 * 17 + 16)], 1);
}

TEST(MaterialSlice, AreaFractionApproximatesCircle) {
  const Geometry g = pin_cell();
  const int n = 200;
  const auto slice = material_slice(g, 0.0, {-2, -2, 0}, {2, 2, 0}, n, n);
  const auto fuel_pixels =
      std::count(slice.begin(), slice.end(), 0);
  const double frac = static_cast<double>(fuel_pixels) / (n * n);
  EXPECT_NEAR(frac, 3.14159265 / 16.0, 0.005);
}

TEST(MaterialSlice, OutsidePixelsAreMinusOne) {
  const Geometry g = pin_cell();
  // Raster window larger than the geometry.
  const auto slice = material_slice(g, 0.0, {-4, -4, 0}, {4, 4, 0}, 8, 8);
  EXPECT_EQ(slice[0], -1);  // far corner: outside the 4x4 box
  EXPECT_EQ(slice[static_cast<std::size_t>(3 * 8 + 3)], 0);  // near center
}

TEST(AsciiSlice, RendersPaletteAndBlank) {
  const Geometry g = pin_cell();
  const std::string art =
      ascii_slice(g, 0.0, {-4, -4, 0}, {4, 4, 0}, 16, 8, "#o");
  // 8 rows of 16 chars + newlines.
  EXPECT_EQ(art.size(), 8u * 17u);
  EXPECT_NE(art.find('#'), std::string::npos);  // fuel
  EXPECT_NE(art.find('o'), std::string::npos);  // water
  EXPECT_NE(art.find(' '), std::string::npos);  // outside
  EXPECT_EQ(art.front(), ' ');                  // top-left is outside
}

TEST(AsciiSlice, RowOrderIsTopDown) {
  // A geometry with material 0 only for y > 0 (half-space split).
  Geometry g;
  const int sy = g.add_surface(Surface::y_plane(0));
  const int sx0 = g.add_surface(Surface::x_plane(-1));
  const int sx1 = g.add_surface(Surface::x_plane(1));
  const int sy0 = g.add_surface(Surface::y_plane(-1));
  const int sy1 = g.add_surface(Surface::y_plane(1));
  Cell top;
  top.region = {{sx0, true}, {sx1, false}, {sy, true}, {sy1, false}};
  top.fill = 0;
  Cell bottom;
  bottom.region = {{sx0, true}, {sx1, false}, {sy0, true}, {sy, false}};
  bottom.fill = 1;
  Universe root;
  root.cells = {g.add_cell(std::move(top)), g.add_cell(std::move(bottom))};
  g.set_root(g.add_universe(std::move(root)));

  const std::string art = ascii_slice(g, 0.0, {-1, -1, 0}, {1, 1, 0}, 4, 4, "AB");
  // First row rendered = highest y = material 0 = 'A'.
  EXPECT_EQ(art.substr(0, 4), "AAAA");
  EXPECT_EQ(art.substr(art.size() - 5, 4), "BBBB");
}

TEST(MaterialSlice, RejectsBadRaster) {
  const Geometry g = pin_cell();
  EXPECT_THROW(material_slice(g, 0, {-1, -1, 0}, {1, 1, 0}, 0, 4),
               std::invalid_argument);
}

}  // namespace
