// Geometry tracking on a hand-built pin cell: location, boundary distances,
// crossings, and boundary conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::geom;

/// A single pin cell in a reflective box: fuel cylinder (r=0.5), clad
/// (r=0.6), water to the +-1.0 box, +-10 in z (vacuum top/bottom).
struct PinCellFixture : ::testing::Test {
  Geometry g;
  int s_fuel, s_clad;
  int c_fuel, c_clad, c_water;

  void SetUp() override {
    s_fuel = g.add_surface(Surface::z_cylinder(0, 0, 0.5));
    s_clad = g.add_surface(Surface::z_cylinder(0, 0, 0.6));
    const int sx0 = g.add_surface(Surface::x_plane(-1.0));
    const int sx1 = g.add_surface(Surface::x_plane(1.0));
    const int sy0 = g.add_surface(Surface::y_plane(-1.0));
    const int sy1 = g.add_surface(Surface::y_plane(1.0));
    const int sz0 = g.add_surface(Surface::z_plane(-10.0));
    const int sz1 = g.add_surface(Surface::z_plane(10.0));
    for (int s : {sx0, sx1, sy0, sy1}) {
      g.surface(s).set_bc(BoundaryCondition::reflective);
    }
    for (int s : {sz0, sz1}) {
      g.surface(s).set_bc(BoundaryCondition::vacuum);
    }
    const std::vector<HalfSpace> box = {{sx0, true}, {sx1, false},
                                        {sy0, true}, {sy1, false},
                                        {sz0, true}, {sz1, false}};
    Cell fuel;
    fuel.region = box;
    fuel.region.push_back({s_fuel, false});
    fuel.fill = 0;  // material 0
    c_fuel = g.add_cell(std::move(fuel));

    Cell clad;
    clad.region = box;
    clad.region.push_back({s_fuel, true});
    clad.region.push_back({s_clad, false});
    clad.fill = 1;
    c_clad = g.add_cell(std::move(clad));

    Cell water;
    water.region = box;
    water.region.push_back({s_clad, true});
    water.fill = 2;
    c_water = g.add_cell(std::move(water));

    Universe root;
    root.cells = {c_fuel, c_clad, c_water};
    g.set_root(g.add_universe(std::move(root)));
  }
};

TEST_F(PinCellFixture, LocateResolvesMaterials) {
  EXPECT_EQ(g.find_material({0, 0, 0}), 0);
  EXPECT_EQ(g.find_material({0.55, 0, 3.0}), 1);
  EXPECT_EQ(g.find_material({0.9, 0.9, -9.0}), 2);
  EXPECT_EQ(g.find_material({5.0, 0, 0}), -1);  // outside
}

TEST_F(PinCellFixture, LocateFillsState) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0.1, 0.2, 1.0}, {0, 0, 1}, s));
  EXPECT_EQ(s.n_levels, 1);
  EXPECT_EQ(s.material, 0);
  EXPECT_EQ(s.level[0].cell, c_fuel);
}

TEST_F(PinCellFixture, DistanceToBoundaryFromCenter) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0, 0, 0}, {1, 0, 0}, s));
  const auto b = g.distance_to_boundary(s);
  EXPECT_NEAR(b.distance, 0.5, 1e-10);
  EXPECT_EQ(b.surface, s_fuel);
}

TEST_F(PinCellFixture, CrossingWalksThroughAllRegions) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0, 0, 0}, {1, 0, 0}, s));
  // fuel -> clad
  auto b = g.distance_to_boundary(s);
  ASSERT_EQ(g.cross(s, b), Geometry::CrossResult::interior);
  EXPECT_EQ(s.material, 1);
  // clad -> water
  b = g.distance_to_boundary(s);
  EXPECT_NEAR(b.distance, 0.1, 1e-6);
  ASSERT_EQ(g.cross(s, b), Geometry::CrossResult::interior);
  EXPECT_EQ(s.material, 2);
  // water -> reflective wall
  b = g.distance_to_boundary(s);
  EXPECT_NEAR(b.distance, 0.4, 1e-6);
  ASSERT_EQ(g.cross(s, b), Geometry::CrossResult::reflected);
  EXPECT_EQ(s.material, 2);
  EXPECT_NEAR(s.direction().x, -1.0, 1e-10);  // reflected off x = 1
}

TEST_F(PinCellFixture, VacuumLeaks) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0.9, 0.9, 9.5}, {0, 0, 1}, s));
  const auto b = g.distance_to_boundary(s);
  EXPECT_NEAR(b.distance, 0.5, 1e-9);
  EXPECT_EQ(g.cross(s, b), Geometry::CrossResult::leaked);
}

TEST_F(PinCellFixture, AdvanceMovesAllLevels) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0, 0, 0}, {0, 0, 1}, s));
  g.advance(s, 2.5);
  EXPECT_NEAR(s.position().z, 2.5, 1e-12);
  EXPECT_EQ(s.material, 0);
}

TEST_F(PinCellFixture, SetDirectionUpdatesEveryLevel) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0, 0, 0}, {0, 0, 1}, s));
  s.set_direction({1, 0, 0});
  EXPECT_DOUBLE_EQ(s.direction().x, 1.0);
}

TEST_F(PinCellFixture, RayConservation) {
  // Walking a random ray through the cell: segment lengths are positive and
  // the exit point is on the box boundary.
  vmc::rng::Stream rs(11);
  for (int trial = 0; trial < 100; ++trial) {
    Geometry::State s;
    const Position start{(rs.next() - 0.5) * 1.8, (rs.next() - 0.5) * 1.8,
                         (rs.next() - 0.5) * 18.0};
    const Direction u = direction_from_angles(2.0 * rs.next() - 1.0,
                                              6.2831853 * rs.next());
    ASSERT_TRUE(g.locate(start, u, s));
    double total = 0.0;
    for (int step = 0; step < 200; ++step) {
      const auto b = g.distance_to_boundary(s);
      ASSERT_GT(b.distance, 0.0);
      ASSERT_NE(b.distance, kInfDistance);
      total += b.distance;
      const auto cr = g.cross(s, b);
      if (cr == Geometry::CrossResult::leaked) break;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST_F(PinCellFixture, MonteCarloVolumeFractions) {
  // Stochastic volume check of the pin cell: area fractions of fuel, clad,
  // water within the 2x2 box must match the analytic circle areas.
  PinCellFixture& fx = *this;
  vmc::rng::Stream rs(23);
  int counts[3] = {0, 0, 0};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Position p{(rs.next() - 0.5) * 2.0, (rs.next() - 0.5) * 2.0,
                     (rs.next() - 0.5) * 19.9};
    const int m = fx.g.find_material(p);
    ASSERT_GE(m, 0);
    ASSERT_LT(m, 3);
    counts[m]++;
  }
  const double box = 4.0;
  const double pi = 3.14159265358979323846;
  const double f_fuel = pi * 0.25 / box;
  const double f_clad = pi * (0.36 - 0.25) / box;
  const double f_water = 1.0 - f_fuel - f_clad;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), f_fuel, 0.005);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), f_clad, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), f_water, 0.005);
}

TEST(GrazingRecovery, CornerHitReflectsInsteadOfLeaking) {
  // A reflective box with NO internal structure: aim exactly at an edge so
  // the crossing lands on two boundary planes within one bump length. The
  // recovery path must reflect (possibly twice), never leak.
  Geometry g;
  const int sx0 = g.add_surface(Surface::x_plane(-1));
  const int sx1 = g.add_surface(Surface::x_plane(1));
  const int sy0 = g.add_surface(Surface::y_plane(-1));
  const int sy1 = g.add_surface(Surface::y_plane(1));
  const int sz0 = g.add_surface(Surface::z_plane(-1));
  const int sz1 = g.add_surface(Surface::z_plane(1));
  for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) {
    g.surface(s).set_bc(BoundaryCondition::reflective);
  }
  Cell c;
  c.region = {{sx0, true}, {sx1, false}, {sy0, true},
              {sy1, false}, {sz0, true}, {sz1, false}};
  c.fill = 0;
  Universe root;
  root.cells = {g.add_cell(std::move(c))};
  g.set_root(g.add_universe(std::move(root)));

  // Diagonal ray aimed exactly at the (+x, +y) edge.
  Geometry::State s;
  const double inv = 1.0 / std::sqrt(2.0);
  ASSERT_TRUE(g.locate({0, 0, 0}, {inv, inv, 0}, s));
  for (int step = 0; step < 50; ++step) {
    const auto b = g.distance_to_boundary(s);
    ASSERT_NE(b.distance, kInfDistance);
    ASSERT_NE(g.cross(s, b), Geometry::CrossResult::leaked) << "step " << step;
    const Position p = s.position();
    EXPECT_LE(std::abs(p.x), 1.0 + 1e-9);
    EXPECT_LE(std::abs(p.y), 1.0 + 1e-9);
  }
  // After bouncing in the corner, the particle still travels diagonally.
  EXPECT_NEAR(std::abs(s.direction().x), inv, 1e-9);
  EXPECT_NEAR(std::abs(s.direction().y), inv, 1e-9);
}

TEST(GrazingRecovery, CornerOfVacuumBoxLeaksCleanly) {
  Geometry g;
  const int sx0 = g.add_surface(Surface::x_plane(-1));
  const int sx1 = g.add_surface(Surface::x_plane(1));
  const int sy0 = g.add_surface(Surface::y_plane(-1));
  const int sy1 = g.add_surface(Surface::y_plane(1));
  const int sz0 = g.add_surface(Surface::z_plane(-1));
  const int sz1 = g.add_surface(Surface::z_plane(1));
  for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) {
    g.surface(s).set_bc(BoundaryCondition::vacuum);
  }
  Cell c;
  c.region = {{sx0, true}, {sx1, false}, {sy0, true},
              {sy1, false}, {sz0, true}, {sz1, false}};
  c.fill = 0;
  Universe root;
  root.cells = {g.add_cell(std::move(c))};
  g.set_root(g.add_universe(std::move(root)));

  Geometry::State s;
  const double inv = 1.0 / std::sqrt(2.0);
  ASSERT_TRUE(g.locate({0, 0, 0}, {inv, inv, 0}, s));
  const auto b = g.distance_to_boundary(s);
  EXPECT_EQ(g.cross(s, b), Geometry::CrossResult::leaked);
}

}  // namespace
