// Two-level lattice tracking: the universe/lattice machinery the H.M. core
// is built from.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::geom;

/// 3x3 lattice of pin universes (pitch 2), pins of radius 0.7, inside a
/// reflective box. Pin (1,1) — the center — uses a different material.
struct LatticeFixture : ::testing::Test {
  Geometry g;
  static constexpr int kFuel = 0, kWater = 1, kCenter = 2;

  void SetUp() override {
    const int s_pin = g.add_surface(Surface::z_cylinder(0, 0, 0.7));

    const auto pin_universe = [&](int inner_mat) {
      Cell inside;
      inside.region = {{s_pin, false}};
      inside.fill = inner_mat;
      Cell outside;
      outside.region = {{s_pin, true}};
      outside.fill = kWater;
      Universe u;
      u.cells = {g.add_cell(std::move(inside)), g.add_cell(std::move(outside))};
      return g.add_universe(std::move(u));
    };
    const int u_fuel = pin_universe(kFuel);
    const int u_center = pin_universe(kCenter);

    Lattice lat;
    lat.nx = lat.ny = 3;
    lat.pitch = 2.0;
    lat.x0 = lat.y0 = -3.0;
    lat.universe.assign(9, u_fuel);
    lat.universe[4] = u_center;
    lat.outer = u_fuel;
    const int lid = g.add_lattice(std::move(lat));

    const int sx0 = g.add_surface(Surface::x_plane(-3.0));
    const int sx1 = g.add_surface(Surface::x_plane(3.0));
    const int sy0 = g.add_surface(Surface::y_plane(-3.0));
    const int sy1 = g.add_surface(Surface::y_plane(3.0));
    for (int s : {sx0, sx1, sy0, sy1}) {
      g.surface(s).set_bc(BoundaryCondition::reflective);
    }
    Cell root_cell;
    root_cell.region = {{sx0, true}, {sx1, false}, {sy0, true}, {sy1, false}};
    root_cell.fill_type = FillType::lattice;
    root_cell.fill = lid;
    Universe root;
    root.cells = {g.add_cell(std::move(root_cell))};
    g.set_root(g.add_universe(std::move(root)));
  }
};

TEST_F(LatticeFixture, LocateDescendsIntoElements) {
  // Center of element (0,0) is at (-2,-2): inside its pin.
  EXPECT_EQ(g.find_material({-2.0, -2.0, 0.0}), kFuel);
  // Center pin has the distinct material.
  EXPECT_EQ(g.find_material({0.0, 0.0, 0.0}), kCenter);
  // Corner of an element: water.
  EXPECT_EQ(g.find_material({-1.05, -1.05, 0.0}), kWater);
}

TEST_F(LatticeFixture, StateRecordsLatticeIndices) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({1.9, -0.1, 0.0}, {1, 0, 0}, s));  // element (2,1)
  EXPECT_EQ(s.n_levels, 2);
  const auto& lv = s.level[1];
  EXPECT_EQ(lv.ix, 2);
  EXPECT_EQ(lv.iy, 1);
  EXPECT_GE(lv.lattice, 0);
  // Local coordinates centered on the element.
  EXPECT_NEAR(lv.r.x, -0.1, 1e-12);
  EXPECT_NEAR(lv.r.y, -0.1, 1e-12);
}

TEST_F(LatticeFixture, LatticeWallLimitsBoundaryDistance) {
  Geometry::State s;
  // In the water of element (1,1), heading +x toward the element wall.
  ASSERT_TRUE(g.locate({0.9, 0.9, 0.0}, {1, 0, 0}, s));
  ASSERT_EQ(s.material, kWater);
  const auto b = g.distance_to_boundary(s);
  EXPECT_NEAR(b.distance, 0.1, 1e-9);   // wall at local x = +1
  EXPECT_EQ(b.surface, -1);             // a lattice wall, not a surface
}

TEST_F(LatticeFixture, CrossingLatticeWallEntersNeighbour) {
  Geometry::State s;
  ASSERT_TRUE(g.locate({0.9, 0.0, 0.0}, {1, 0, 0}, s));
  // Cross from element (1,1) water into element (2,1).
  const auto b = g.distance_to_boundary(s);
  ASSERT_EQ(g.cross(s, b), Geometry::CrossResult::interior);
  EXPECT_EQ(s.level[1].ix, 2);
  EXPECT_EQ(s.level[1].iy, 1);
  EXPECT_EQ(s.material, kWater);
}

TEST_F(LatticeFixture, StraightRayCrossesExpectedPinCount) {
  // A ray along y=0 from the left wall crosses pins of elements (0..2, 1):
  // fuel, center, fuel — plus water gaps: 7 material segments to the wall.
  Geometry::State s;
  ASSERT_TRUE(g.locate({-2.999, 0.0, 0.0}, {1, 0, 0}, s));
  std::vector<int> mats{s.material};
  for (int i = 0; i < 50; ++i) {
    const auto b = g.distance_to_boundary(s);
    if (g.cross(s, b) != Geometry::CrossResult::interior) break;
    mats.push_back(s.material);
  }
  const std::vector<int> expected{kWater, kFuel,   kWater, kWater, kCenter,
                                  kWater, kWater, kFuel,  kWater};
  ASSERT_GE(mats.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(mats[i], expected[i]) << "segment " << i;
  }
}

TEST_F(LatticeFixture, ReflectiveBoxKeepsParticleInside) {
  vmc::rng::Stream rs(3);
  Geometry::State s;
  ASSERT_TRUE(g.locate({0.3, -0.4, 0.0},
                       direction_from_angles(0.1, 1.0), s));
  for (int i = 0; i < 500; ++i) {
    const auto b = g.distance_to_boundary(s);
    ASSERT_NE(b.distance, kInfDistance);
    const auto cr = g.cross(s, b);
    ASSERT_NE(cr, Geometry::CrossResult::leaked);
    const Position p = s.position();
    EXPECT_LE(std::abs(p.x), 3.0 + 1e-6);
    EXPECT_LE(std::abs(p.y), 3.0 + 1e-6);
  }
}

TEST_F(LatticeFixture, VolumeFractionsByMaterial) {
  vmc::rng::Stream rs(7);
  int counts[3] = {0, 0, 0};
  const int n = 150000;
  for (int i = 0; i < n; ++i) {
    const Position p{(rs.next() - 0.5) * 6.0, (rs.next() - 0.5) * 6.0, 0.0};
    const int m = g.find_material(p);
    ASSERT_GE(m, 0);
    counts[m]++;
  }
  const double pi = 3.14159265358979323846;
  const double pin_frac = pi * 0.49 / 4.0;  // per element
  EXPECT_NEAR(counts[kFuel] / static_cast<double>(n), 8.0 / 9.0 * pin_frac,
              0.005);
  EXPECT_NEAR(counts[kCenter] / static_cast<double>(n), pin_frac / 9.0,
              0.002);
}

}  // namespace
