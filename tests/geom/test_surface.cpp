// Surfaces: sense, distance, and normals — the primitives every tracking
// step composes.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/surface.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::geom;

TEST(Plane, SenseSign) {
  const Surface s = Surface::x_plane(2.0);
  EXPECT_LT(s.sense({1.0, 0, 0}), 0.0);
  EXPECT_GT(s.sense({3.0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(s.sense({2.0, 5, -7}), 0.0);
}

TEST(Plane, DistanceAlongAndAgainstNormal) {
  const Surface s = Surface::z_plane(10.0);
  EXPECT_DOUBLE_EQ(s.distance({0, 0, 4}, {0, 0, 1}, false), 6.0);
  EXPECT_EQ(s.distance({0, 0, 4}, {0, 0, -1}, false), kInfDistance);
  EXPECT_EQ(s.distance({0, 0, 4}, {1, 0, 0}, false), kInfDistance);  // parallel
  // Oblique approach.
  const double d = s.distance({0, 0, 0}, Direction{0.6, 0, 0.8}, false);
  EXPECT_NEAR(d, 10.0 / 0.8, 1e-12);
}

TEST(Plane, CoincidentSuppresssesZeroRoot) {
  const Surface s = Surface::y_plane(1.0);
  EXPECT_EQ(s.distance({0, 1.0, 0}, {0, 1, 0}, true), kInfDistance);
}

TEST(ZCylinder, SenseInsideOutside) {
  const Surface c = Surface::z_cylinder(1.0, 2.0, 0.5);
  EXPECT_LT(c.sense({1.0, 2.0, -99.0}), 0.0);
  EXPECT_LT(c.sense({1.4, 2.0, 5.0}), 0.0);
  EXPECT_GT(c.sense({2.0, 2.0, 0.0}), 0.0);
}

TEST(ZCylinder, DistanceFromInsideHitsFarWall) {
  const Surface c = Surface::z_cylinder(0.0, 0.0, 2.0);
  EXPECT_NEAR(c.distance({0, 0, 0}, {1, 0, 0}, false), 2.0, 1e-12);
  EXPECT_NEAR(c.distance({1, 0, 0}, {1, 0, 0}, false), 1.0, 1e-12);
  EXPECT_NEAR(c.distance({1, 0, 0}, {-1, 0, 0}, false), 3.0, 1e-12);
}

TEST(ZCylinder, DistanceFromOutside) {
  const Surface c = Surface::z_cylinder(0.0, 0.0, 1.0);
  EXPECT_NEAR(c.distance({3, 0, 0}, {-1, 0, 0}, false), 2.0, 1e-12);
  // Heading away: never hits.
  EXPECT_EQ(c.distance({3, 0, 0}, {1, 0, 0}, false), kInfDistance);
  // Missing chord: impact parameter > r.
  EXPECT_EQ(c.distance({3, 2, 0}, {-1, 0, 0}, false), kInfDistance);
}

TEST(ZCylinder, ParallelToAxisNeverCrosses) {
  const Surface c = Surface::z_cylinder(0.0, 0.0, 1.0);
  EXPECT_EQ(c.distance({0.5, 0, 0}, {0, 0, 1}, false), kInfDistance);
  EXPECT_EQ(c.distance({5.0, 0, 0}, {0, 0, -1}, false), kInfDistance);
}

TEST(ZCylinder, ObliqueCrossingLandsOnSurface) {
  const Surface c = Surface::z_cylinder(0.0, 0.0, 1.5);
  vmc::rng::Stream s(3);
  for (int i = 0; i < 200; ++i) {
    const Position p{(s.next() - 0.5), (s.next() - 0.5), s.next() * 10.0};
    const Direction u =
        direction_from_angles(2.0 * s.next() - 1.0, 6.2831853 * s.next());
    const double d = c.distance(p, u, false);
    if (d == kInfDistance) continue;
    const Position hit = p + d * u;
    EXPECT_NEAR(std::sqrt(hit.x * hit.x + hit.y * hit.y), 1.5, 1e-9);
  }
}

TEST(XCylinder, SenseDistanceNormal) {
  const Surface c = Surface::x_cylinder(1.0, 2.0, 0.5);  // axis || x at y=1,z=2
  EXPECT_LT(c.sense({99.0, 1.0, 2.0}), 0.0);   // on axis, any x
  EXPECT_GT(c.sense({0.0, 2.0, 2.0}), 0.0);    // 1 away in y
  EXPECT_NEAR(c.distance({0, 1, 2}, {0, 1, 0}, false), 0.5, 1e-12);
  EXPECT_EQ(c.distance({0, 1, 2}, {1, 0, 0}, false), kInfDistance);  // parallel
  const Direction n = c.normal({5.0, 1.5, 2.0});
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.y, 1.0, 1e-12);
  EXPECT_NEAR(c.signed_distance({0, 1, 2}), -0.5, 1e-12);
}

TEST(YCylinder, SenseDistanceNormal) {
  const Surface c = Surface::y_cylinder(0.0, 0.0, 2.0);  // axis || y
  EXPECT_LT(c.sense({1.0, -7.0, 1.0}), 0.0);
  EXPECT_NEAR(c.distance({0, 0, 0}, {0, 0, 1}, false), 2.0, 1e-12);
  EXPECT_NEAR(c.distance({3, 0, 0}, {-1, 0, 0}, false), 1.0, 1e-12);
  EXPECT_EQ(c.distance({0, 0, 0}, {0, 1, 0}, false), kInfDistance);
  EXPECT_NEAR(c.signed_distance({0, 5, 3}), 1.0, 1e-12);
}

TEST(Sphere, SenseDistanceNormal) {
  const Surface s = Surface::sphere(1.0, 0.0, 0.0, 2.0);
  EXPECT_LT(s.sense({1.0, 0.0, 0.0}), 0.0);
  EXPECT_GT(s.sense({4.0, 0.0, 0.0}), 0.0);
  // From the center: exits at r in every direction.
  EXPECT_NEAR(s.distance({1, 0, 0}, {0, 0, 1}, false), 2.0, 1e-12);
  EXPECT_NEAR(s.distance({1, 0, 0}, {0.6, 0.8, 0}, false), 2.0, 1e-12);
  // From outside, approaching along the axis.
  EXPECT_NEAR(s.distance({5, 0, 0}, {-1, 0, 0}, false), 2.0, 1e-12);
  // From outside, moving away: never hits.
  EXPECT_EQ(s.distance({5, 0, 0}, {1, 0, 0}, false), kInfDistance);
  // Missing chord.
  EXPECT_EQ(s.distance({5, 3, 0}, {-1, 0, 0}, false), kInfDistance);
  const Direction n = s.normal({3.0, 0.0, 0.0});
  EXPECT_NEAR(n.x, 1.0, 1e-12);
  EXPECT_NEAR(s.signed_distance({1, 0, 0}), -2.0, 1e-12);
  EXPECT_NEAR(s.signed_distance({1, 0, 5}), 3.0, 1e-12);
}

TEST(Sphere, RandomRaysLandOnTheSurface) {
  const Surface s = Surface::sphere(0.5, -0.25, 1.0, 1.5);
  vmc::rng::Stream rs(17);
  for (int i = 0; i < 300; ++i) {
    const Position p{0.5 + 2.0 * (rs.next() - 0.5), -0.25 + 2.0 * (rs.next() - 0.5),
                     1.0 + 2.0 * (rs.next() - 0.5)};
    const Direction u =
        direction_from_angles(2.0 * rs.next() - 1.0, 6.2831853 * rs.next());
    const double d = s.distance(p, u, false);
    if (d == kInfDistance) continue;
    const Position hit = p + d * u;
    EXPECT_NEAR(std::abs(s.signed_distance(hit)), 0.0, 1e-9);
  }
}

TEST(SignedDistance, MatchesSenseSignEverywhere) {
  const Surface surfaces[] = {
      Surface::x_plane(1.0), Surface::y_plane(-2.0), Surface::z_plane(0.0),
      Surface::x_cylinder(0, 0, 1.0), Surface::y_cylinder(1, 1, 0.7),
      Surface::z_cylinder(-1, 2, 1.3), Surface::sphere(0, 0, 0, 2.0)};
  vmc::rng::Stream rs(23);
  for (int i = 0; i < 500; ++i) {
    const Position p{6.0 * (rs.next() - 0.5), 6.0 * (rs.next() - 0.5),
                     6.0 * (rs.next() - 0.5)};
    for (const Surface& s : surfaces) {
      const double f = s.sense(p);
      const double d = s.signed_distance(p);
      if (std::abs(f) > 1e-9) {
        EXPECT_EQ(f > 0.0, d > 0.0);
      }
    }
  }
}

TEST(Normals, UnitAndOutward) {
  const Surface c = Surface::z_cylinder(1.0, 0.0, 2.0);
  const Direction n = c.normal({3.0, 0.0, 5.0});
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 1.0, 1e-12);
  const Surface p = Surface::x_plane(0.0);
  EXPECT_DOUBLE_EQ(p.normal({0, 1, 2}).x, 1.0);
}

TEST(BoundaryCondition, DefaultIsTransmission) {
  Surface s = Surface::x_plane(0.0);
  EXPECT_EQ(s.bc(), BoundaryCondition::transmission);
  s.set_bc(BoundaryCondition::reflective);
  EXPECT_EQ(s.bc(), BoundaryCondition::reflective);
}

TEST(RotateDirection, PreservesUnitLengthAndCosine) {
  vmc::rng::Stream s(5);
  for (int i = 0; i < 500; ++i) {
    const Direction u =
        direction_from_angles(2.0 * s.next() - 1.0, 6.2831853 * s.next());
    const double mu = 2.0 * s.next() - 1.0;
    const double phi = 6.2831853 * s.next();
    const Direction v = rotate_direction(u, mu, phi);
    EXPECT_NEAR(v.norm(), 1.0, 1e-10);
    EXPECT_NEAR(u.dot(v), mu, 1e-9);
  }
}

TEST(RotateDirection, HandlesPolarSingularity) {
  for (double w : {1.0, -1.0}) {
    const Direction u{0, 0, w};
    const Direction v = rotate_direction(u, 0.5, 1.2);
    EXPECT_NEAR(v.norm(), 1.0, 1e-12);
    EXPECT_NEAR(u.dot(v), 0.5, 1e-9);
  }
}

TEST(DirectionFromAngles, Spans4Pi) {
  vmc::rng::Stream s(6);
  double zsum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const Direction u =
        direction_from_angles(2.0 * s.next() - 1.0, 6.2831853 * s.next());
    EXPECT_NEAR(u.norm(), 1.0, 1e-12);
    zsum += u.z;
  }
  EXPECT_NEAR(zsum / 10000.0, 0.0, 0.02);
}

}  // namespace
