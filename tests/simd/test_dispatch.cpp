// Unit tests for the runtime ISA dispatcher (src/simd/dispatch.*): level
// metadata, CPUID monotonicity, the force_isa() hook, and the guarantee that
// every per-level kernel table agrees with the dispatcher's own metadata.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "simd/dispatch.hpp"
#include "simd/simd.hpp"
#include "xsdata/kernels.hpp"

namespace {

namespace simd = vmc::simd;
using simd::IsaLevel;

struct ClearForceOnExit {
  ~ClearForceOnExit() { simd::clear_forced_isa(); }
};

TEST(Dispatch, LevelMetadataIsConsistent) {
  const char* display[] = {"scalar", "SSE2", "AVX2", "AVX-512"};
  const char* env[] = {"scalar", "sse2", "avx2", "avx512"};
  const int bits[] = {64, 128, 256, 512};
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    EXPECT_STREQ(simd::isa_display_name(l), display[i]);
    EXPECT_STREQ(simd::isa_env_name(l), env[i]);
    EXPECT_EQ(simd::isa_simd_bits(l), bits[i]);
    const simd::DispatchInfo info = simd::isa_info(l);
    EXPECT_EQ(info.isa, l);
    EXPECT_STREQ(info.name, display[i]);
    EXPECT_STREQ(info.env_name, env[i]);
    EXPECT_EQ(info.simd_bits, bits[i]);
    // Lane counts follow the register width (scalar = one lane of each).
    EXPECT_EQ(info.lanes_f32, i == 0 ? 1 : bits[i] / 32);
    EXPECT_EQ(info.lanes_f64, i == 0 ? 1 : bits[i] / 64);
  }
}

TEST(Dispatch, ParseIsaNameRoundTripsAndRejectsUnknown) {
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    IsaLevel out = IsaLevel::avx512;
    ASSERT_TRUE(simd::parse_isa_name(simd::isa_env_name(l), out));
    EXPECT_EQ(out, l);
  }
  IsaLevel out;
  EXPECT_FALSE(simd::parse_isa_name("", out));
  EXPECT_FALSE(simd::parse_isa_name("AVX2", out));   // env spelling is lower
  EXPECT_FALSE(simd::parse_isa_name("avx", out));
  EXPECT_FALSE(simd::parse_isa_name("sse4.2", out));
  EXPECT_FALSE(simd::parse_isa_name("native", out));
}

TEST(Dispatch, HostSupportIsMonotoneAndIncludesScalar) {
  // Scalar is always executable; support can only shrink with width.
  EXPECT_TRUE(simd::host_supports(IsaLevel::scalar));
  const IsaLevel max = simd::host_max_isa();
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    EXPECT_EQ(simd::host_supports(l), i <= static_cast<int>(max));
  }
}

TEST(Dispatch, DefaultSelectionIsHostMaxAndForceOverridesIt) {
  ClearForceOnExit guard;
  // This test binary runs without VMC_SIMD_ISA (CI forces the variable on
  // whole ctest invocations, where the assertion below still holds because
  // the sweep only requests supported levels — dispatch() is then that
  // level, which host_supports covers).
  const simd::DispatchInfo def = simd::dispatch();
  EXPECT_TRUE(simd::host_supports(def.isa));

  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    if (!simd::host_supports(l)) continue;
    simd::force_isa(l);
    const simd::DispatchInfo d = simd::dispatch();
    EXPECT_EQ(d.isa, l);
    EXPECT_STREQ(d.name, simd::isa_display_name(l));
    EXPECT_EQ(d.simd_bits, simd::isa_simd_bits(l));
  }
  simd::clear_forced_isa();
  EXPECT_EQ(simd::dispatch().isa, def.isa);
}

TEST(Dispatch, ForcingAnUnsupportedLevelThrows) {
  ClearForceOnExit guard;
  const IsaLevel max = simd::host_max_isa();
  for (int i = static_cast<int>(max) + 1; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    try {
      simd::force_isa(l);
      FAIL() << "force_isa(" << simd::isa_display_name(l)
             << ") should have thrown on this host";
    } catch (const std::runtime_error& e) {
      // The message must name both the request and the host maximum so CI
      // failures are self-explanatory.
      const std::string msg = e.what();
      EXPECT_NE(msg.find(simd::isa_display_name(l)), std::string::npos) << msg;
      EXPECT_NE(msg.find(simd::isa_display_name(max)), std::string::npos)
          << msg;
    }
    // A failed force must not stick.
    EXPECT_TRUE(simd::host_supports(simd::dispatch().isa));
  }
  if (max == IsaLevel::avx512) {
    GTEST_LOG_(INFO) << "host executes every level; unsupported-force path "
                        "exercised only via parse errors";
  }
}

TEST(Dispatch, KernelTablesMatchDispatcherMetadata) {
  // The per-level kernel tables are compiled in separately-flagged TUs; this
  // pins their self-reported identity to the dispatcher's view of the level.
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    const vmc::xs::kern::IsaKernels& k = vmc::xs::kern::kernel_table(l);
    const simd::DispatchInfo info = simd::isa_info(l);
    EXPECT_EQ(k.level, i);
    EXPECT_EQ(k.lanes_f32, info.lanes_f32);
    EXPECT_EQ(k.lanes_f64, info.lanes_f64);
    EXPECT_EQ(k.simd_bits, info.simd_bits);
    ASSERT_NE(k.abi, nullptr);
    EXPECT_NE(std::strlen(k.abi), 0u);
    // Every entry is populated — a null slot would be a silent scalar hole.
    EXPECT_NE(k.find_banked, nullptr);
    EXPECT_NE(k.xs_banked, nullptr);
    EXPECT_NE(k.xs_banked_outer, nullptr);
    EXPECT_NE(k.total_banked, nullptr);
    EXPECT_NE(k.distance, nullptr);
  }
  // Distinct levels expose distinct ABI tags (the ODR shield is real).
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    for (int j = i + 1; j < simd::kNumIsaLevels; ++j) {
      EXPECT_STRNE(vmc::xs::kern::kernel_table(static_cast<IsaLevel>(i)).abi,
                   vmc::xs::kern::kernel_table(static_cast<IsaLevel>(j)).abi);
    }
  }
}

TEST(Dispatch, ActiveKernelsFollowDispatch) {
  ClearForceOnExit guard;
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<IsaLevel>(i);
    if (!simd::host_supports(l)) continue;
    simd::force_isa(l);
    EXPECT_EQ(vmc::xs::kern::active_isa_kernels().level, i);
  }
}

}  // namespace
