// Aligned allocation: every allocation lands on a 64-byte boundary and the
// vector behaves like std::vector.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "simd/aligned.hpp"

namespace {

using vmc::simd::aligned_vector;
using vmc::simd::cacheline_bytes;

template <class T>
bool is_aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % cacheline_bytes == 0;
}

TEST(AlignedVector, DataIsCachelineAligned) {
  for (std::size_t n : {1u, 3u, 17u, 64u, 1000u, 65536u}) {
    aligned_vector<float> vf(n);
    aligned_vector<double> vd(n);
    aligned_vector<std::int32_t> vi(n);
    EXPECT_TRUE(is_aligned(vf.data())) << n;
    EXPECT_TRUE(is_aligned(vd.data())) << n;
    EXPECT_TRUE(is_aligned(vi.data())) << n;
  }
}

TEST(AlignedVector, StaysAlignedAcrossGrowth) {
  aligned_vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(i);
    if ((i & 1023) == 0) {
      EXPECT_TRUE(is_aligned(v.data()));
    }
  }
  EXPECT_TRUE(is_aligned(v.data()));
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_DOUBLE_EQ(std::accumulate(v.begin(), v.end(), 0.0),
                   10000.0 * 9999.0 / 2.0);
}

TEST(AlignedVector, CopyAndMoveSemantics) {
  aligned_vector<int> a(100);
  std::iota(a.begin(), a.end(), 0);
  aligned_vector<int> b = a;  // copy
  EXPECT_EQ(b, a);
  aligned_vector<int> c = std::move(a);
  EXPECT_EQ(c, b);
  EXPECT_TRUE(is_aligned(b.data()));
  EXPECT_TRUE(is_aligned(c.data()));
}

TEST(AlignedAllocator, EqualityAndRebind) {
  vmc::simd::AlignedAllocator<float> a;
  vmc::simd::AlignedAllocator<float> b;
  EXPECT_TRUE(a == b);
  using Rebound =
      typename vmc::simd::AlignedAllocator<float>::rebind<double>::other;
  Rebound r;
  double* p = r.allocate(7);
  EXPECT_TRUE(is_aligned(p));
  r.deallocate(p, 7);
}

TEST(AlignedAllocator, ThrowsOnOverflow) {
  vmc::simd::AlignedAllocator<double> a;
  EXPECT_THROW((void)a.allocate(SIZE_MAX / 2), std::bad_array_new_length);
}

}  // namespace
