// Vectorized log/exp against the libm references, across magnitudes and at
// the edge cases the transport kernels hit (log of uniform(0,1) draws).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rng/stream.hpp"
#include "simd/simd.hpp"

namespace {

using vmc::simd::Vec;
using vmc::simd::vexp;
using vmc::simd::vlog;

template <int N>
void check_log_float_range(float lo, float hi, float rel_tol) {
  vmc::rng::Stream s(11);
  for (int trial = 0; trial < 200; ++trial) {
    Vec<float, N> x;
    for (int i = 0; i < N; ++i) {
      x.set(i, lo + (hi - lo) * s.next_float());
    }
    const auto r = vlog(x);
    for (int i = 0; i < N; ++i) {
      const float ref = std::log(x[i]);
      EXPECT_NEAR(r[i], ref, std::abs(ref) * rel_tol + 1e-6f)
          << "x=" << x[i];
    }
  }
}

TEST(VlogFloat, MatchesLibmAcrossMagnitudes) {
  check_log_float_range<8>(1e-30f, 1e-20f, 2e-6f);
  check_log_float_range<8>(1e-6f, 1.0f, 2e-6f);
  check_log_float_range<8>(0.5f, 2.0f, 5e-6f);
  check_log_float_range<8>(1.0f, 1e10f, 2e-6f);
  check_log_float_range<16>(1e-3f, 1e3f, 2e-6f);
  check_log_float_range<4>(1e-3f, 1e3f, 2e-6f);
}

TEST(VlogFloat, UniformDrawsForDistanceSampling) {
  // The exact use in Eq. (1): log of uniform(0,1).
  vmc::rng::Stream s(12);
  for (int trial = 0; trial < 500; ++trial) {
    Vec<float, 8> x;
    for (int i = 0; i < 8; ++i) x.set(i, s.next_float() + 1e-12f);
    const auto r = vlog(x);
    for (int i = 0; i < 8; ++i) {
      const float ref = std::log(x[i]);
      EXPECT_NEAR(r[i], ref, std::abs(ref) * 3e-6f + 2e-6f);
    }
  }
}

TEST(VlogFloat, EdgeCases) {
  Vec<float, 8> x(1.0f);
  x.set(0, 0.0f);
  x.set(1, -1.0f);
  x.set(2, std::numeric_limits<float>::infinity());
  x.set(3, 1.0f);
  const auto r = vlog(x);
  EXPECT_TRUE(std::isinf(r[0]) && r[0] < 0.0f);
  EXPECT_TRUE(std::isnan(r[1]));
  EXPECT_TRUE(std::isinf(r[2]) && r[2] > 0.0f);
  EXPECT_FLOAT_EQ(r[3], 0.0f);
}

TEST(VlogDouble, MatchesLibmAcrossMagnitudes) {
  vmc::rng::Stream s(13);
  for (double scale : {1e-300, 1e-30, 1e-6, 1.0, 1e6, 1e30, 1e300}) {
    for (int trial = 0; trial < 100; ++trial) {
      Vec<double, 8> x;
      for (int i = 0; i < 8; ++i) x.set(i, scale * (0.1 + 9.9 * s.next()));
      const auto r = vlog(x);
      for (int i = 0; i < 8; ++i) {
        const double ref = std::log(x[i]);
        EXPECT_NEAR(r[i], ref, std::abs(ref) * 1e-14 + 1e-14) << "x=" << x[i];
      }
    }
  }
}

TEST(VlogDouble, EdgeCases) {
  Vec<double, 4> x(1.0);
  x.set(0, 0.0);
  x.set(1, -3.0);
  x.set(2, std::numeric_limits<double>::infinity());
  const auto r = vlog(x);
  EXPECT_TRUE(std::isinf(r[0]) && r[0] < 0.0);
  EXPECT_TRUE(std::isnan(r[1]));
  EXPECT_TRUE(std::isinf(r[2]) && r[2] > 0.0);
  EXPECT_DOUBLE_EQ(r[3], 0.0);
}

TEST(VexpFloat, MatchesLibm) {
  vmc::rng::Stream s(14);
  for (int trial = 0; trial < 400; ++trial) {
    Vec<float, 8> x;
    for (int i = 0; i < 8; ++i) x.set(i, static_cast<float>(-80.0 + 160.0 * s.next()));
    const auto r = vexp(x);
    for (int i = 0; i < 8; ++i) {
      const float ref = std::exp(x[i]);
      EXPECT_NEAR(r[i], ref, ref * 3e-6f + 1e-38f) << "x=" << x[i];
    }
  }
}

TEST(VexpFloat, SaturatesOutOfRange) {
  Vec<float, 8> x(0.0f);
  x.set(0, 1000.0f);
  x.set(1, -1000.0f);
  const auto r = vexp(x);
  EXPECT_TRUE(std::isinf(r[0]));
  EXPECT_FLOAT_EQ(r[1], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 1.0f);
}

TEST(VexpDouble, MatchesLibm) {
  vmc::rng::Stream s(15);
  for (int trial = 0; trial < 400; ++trial) {
    Vec<double, 4> x;
    for (int i = 0; i < 4; ++i) x.set(i, -600.0 + 1200.0 * s.next());
    const auto r = vexp(x);
    for (int i = 0; i < 4; ++i) {
      const double ref = std::exp(x[i]);
      EXPECT_NEAR(r[i], ref, ref * 1e-13 + 1e-300) << "x=" << x[i];
    }
  }
}

TEST(VexpDouble, NegativeIntegersExactishRoundTrip) {
  // exp(log(x)) ~ x over the distance-sampling range.
  vmc::rng::Stream s(16);
  for (int trial = 0; trial < 200; ++trial) {
    Vec<double, 8> x;
    for (int i = 0; i < 8; ++i) x.set(i, 1e-8 + s.next());
    const auto rt = vexp(vlog(x));
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(rt[i], x[i], x[i] * 1e-13);
    }
  }
}

TEST(DistanceKernel, MinusLogOverSigmaMatchesScalar) {
  // The Algorithm 4 body: D = -log(R) / X.
  vmc::rng::Stream s(17);
  for (int trial = 0; trial < 200; ++trial) {
    Vec<float, 16> r, x;
    for (int i = 0; i < 16; ++i) {
      r.set(i, s.next_float() + 1e-9f);
      x.set(i, 0.1f + 2.0f * s.next_float());
    }
    const auto d = -vlog(r) / x;
    for (int i = 0; i < 16; ++i) {
      const float ref = -std::log(r[i]) / x[i];
      EXPECT_NEAR(d[i], ref, std::abs(ref) * 1e-5f + 1e-6f);
    }
  }
}

}  // namespace
