// Vec<T,N>: every lane-wise operation must agree with its scalar reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "rng/stream.hpp"
#include "simd/simd.hpp"

namespace {

using vmc::simd::Vec;

template <class T, int N>
Vec<T, N> random_vec(vmc::rng::Stream& s, T lo, T hi) {
  Vec<T, N> v;
  for (int i = 0; i < N; ++i) {
    v.set(i, static_cast<T>(lo + (hi - lo) * s.next()));
  }
  return v;
}

template <class V>
class VecOpsTest : public ::testing::Test {};

using FloatVecs =
    ::testing::Types<Vec<float, 4>, Vec<float, 8>, Vec<float, 16>,
                     Vec<double, 2>, Vec<double, 4>, Vec<double, 8>>;
TYPED_TEST_SUITE(VecOpsTest, FloatVecs);

TYPED_TEST(VecOpsTest, BroadcastFillsAllLanes) {
  using T = typename TypeParam::value_type;
  TypeParam v(T{3});
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(v[i], T{3});
  }
}

TYPED_TEST(VecOpsTest, ArithmeticMatchesScalar) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_vec<T, TypeParam::lanes>(s, T{-10}, T{10});
    const auto b = random_vec<T, TypeParam::lanes>(s, T{1}, T{10});
    const auto sum = a + b;
    const auto dif = a - b;
    const auto mul = a * b;
    const auto div = a / b;
    for (int i = 0; i < TypeParam::lanes; ++i) {
      EXPECT_EQ(sum[i], a[i] + b[i]);
      EXPECT_EQ(dif[i], a[i] - b[i]);
      EXPECT_EQ(mul[i], a[i] * b[i]);
      EXPECT_EQ(div[i], a[i] / b[i]);
    }
  }
}

TYPED_TEST(VecOpsTest, CompoundAssignment) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(2);
  auto a = random_vec<T, TypeParam::lanes>(s, T{-5}, T{5});
  const auto b = random_vec<T, TypeParam::lanes>(s, T{1}, T{2});
  auto c = a;
  c += b;
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(c[i], a[i] + b[i]);
  c = a;
  c *= b;
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(c[i], a[i] * b[i]);
}

TYPED_TEST(VecOpsTest, ComparisonsAndSelect) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_vec<T, TypeParam::lanes>(s, T{-1}, T{1});
    const auto b = random_vec<T, TypeParam::lanes>(s, T{-1}, T{1});
    const auto m = a < b;
    const auto picked = select(m, a, b);
    for (int i = 0; i < TypeParam::lanes; ++i) {
      EXPECT_EQ(m[i], a[i] < b[i]);
      EXPECT_EQ(picked[i], a[i] < b[i] ? a[i] : b[i]);
      EXPECT_EQ(vmc::simd::min(a, b)[i], std::min(a[i], b[i]));
      EXPECT_EQ(vmc::simd::max(a, b)[i], std::max(a[i], b[i]));
    }
  }
}

TYPED_TEST(VecOpsTest, MaskLogic) {
  using T = typename TypeParam::value_type;
  TypeParam a = TypeParam::iota(T{0});
  const auto lt = a < TypeParam(T(TypeParam::lanes / 2));
  const auto ge = !lt;
  EXPECT_EQ(lt.count() + ge.count(), TypeParam::lanes);
  EXPECT_TRUE((lt | ge).all());
  EXPECT_FALSE((lt & ge).any());
}

TYPED_TEST(VecOpsTest, HorizontalReductions) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(4);
  const auto a = random_vec<T, TypeParam::lanes>(s, T{-100}, T{100});
  T sum{0}, mn = a[0], mx = a[0];
  for (int i = 0; i < TypeParam::lanes; ++i) {
    sum += a[i];
    mn = std::min(mn, a[i]);
    mx = std::max(mx, a[i]);
  }
  EXPECT_NEAR(a.hsum(), sum, std::abs(static_cast<double>(sum)) * 1e-5 + 1e-5);
  EXPECT_EQ(a.hmin(), mn);
  EXPECT_EQ(a.hmax(), mx);
}

TYPED_TEST(VecOpsTest, LoadStoreRoundTrip) {
  using T = typename TypeParam::value_type;
  vmc::simd::aligned_vector<T> buf(2 * TypeParam::lanes);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<T>(i);
  const auto v = TypeParam::load(buf.data());
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(v[i], static_cast<T>(i));
  // Unaligned round trip at offset 1.
  const auto u = TypeParam::loadu(buf.data() + 1);
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(u[i], static_cast<T>(i + 1));
  }
  std::vector<T> out(TypeParam::lanes + 1);
  u.storeu(out.data() + 1);
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i) + 1], static_cast<T>(i + 1));
  }
}

TYPED_TEST(VecOpsTest, PartialLoadStoreMasksInactiveLanes) {
  using T = typename TypeParam::value_type;
  std::vector<T> buf(TypeParam::lanes);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<T>(i + 1);
  for (int k = 0; k <= TypeParam::lanes; ++k) {
    // Active lanes [0, k) get the data; inactive lanes get the fill value
    // (the event scheduler feeds harmless fills ahead of vlog/divide).
    const auto v = TypeParam::load_partial(buf.data(), k, T{7});
    for (int i = 0; i < TypeParam::lanes; ++i) {
      EXPECT_EQ(v[i], i < k ? static_cast<T>(i + 1) : T{7})
          << "k=" << k << " lane " << i;
    }
    // store_partial writes exactly k lanes and never past them.
    std::vector<T> out(TypeParam::lanes, T{-1});
    v.store_partial(out.data(), k);
    for (int i = 0; i < TypeParam::lanes; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)],
                i < k ? static_cast<T>(i + 1) : T{-1})
          << "k=" << k << " lane " << i;
    }
  }
  // Default fill is zero.
  const auto z = TypeParam::load_partial(buf.data(), 0);
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(z[i], T{});
}

TYPED_TEST(VecOpsTest, IotaAndGather) {
  using T = typename TypeParam::value_type;
  const auto idx = TypeParam::iota(T{0}, T{2});
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(idx[i], static_cast<T>(2 * i));
  }
  std::vector<T> table(64);
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<T>(i * i);
  std::vector<std::int32_t> indices(TypeParam::lanes);
  for (int i = 0; i < TypeParam::lanes; ++i) indices[static_cast<std::size_t>(i)] = 3 * i % 64;
  const auto g = TypeParam::gather(table.data(), indices.data());
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_EQ(g[i], table[static_cast<std::size_t>(3 * i % 64)]);
  }
}

TYPED_TEST(VecOpsTest, FmaSqrtAbs) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(5);
  const auto a = random_vec<T, TypeParam::lanes>(s, T{-4}, T{4});
  const auto b = random_vec<T, TypeParam::lanes>(s, T{-4}, T{4});
  const auto c = random_vec<T, TypeParam::lanes>(s, T{-4}, T{4});
  const auto f = vmc::simd::fma(a, b, c);
  const auto ab = vmc::simd::abs(a);
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_NEAR(f[i], std::fma(a[i], b[i], c[i]), 1e-6);
    EXPECT_EQ(ab[i], std::abs(a[i]));
  }
  const auto pos = vmc::simd::abs(b) + TypeParam(T{1});
  const auto sq = vmc::simd::sqrt(pos);
  for (int i = 0; i < TypeParam::lanes; ++i) {
    EXPECT_NEAR(sq[i], std::sqrt(pos[i]), 1e-6);
  }
}

TYPED_TEST(VecOpsTest, BitcastRoundTrip) {
  using T = typename TypeParam::value_type;
  vmc::rng::Stream s(6);
  const auto a = random_vec<T, TypeParam::lanes>(s, T{-100}, T{100});
  const auto back = TypeParam::bitcast_from(a.bitcast_int());
  for (int i = 0; i < TypeParam::lanes; ++i) EXPECT_EQ(back[i], a[i]);
}

TEST(VecIntTest, IntegerVectorArithmetic) {
  using VI = Vec<std::int32_t, 8>;
  const VI a = VI::iota(0, 3);
  const VI b(7);
  const VI sum = a + b;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sum[i], 3 * i + 7);
  const auto m = a > VI(10);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(m[i], 3 * i > 10);
}

TEST(VecIntTest, ShiftsConvertAndGather) {
  // The ops the hash-grid bucket math is made of: 64-bit shifts of bitcast
  // doubles, lane-wise width/type conversion, and int32 gathers.
  using VD = Vec<double, 4>;
  using VL = Vec<std::int64_t, 4>;
  using VI = Vec<std::int32_t, 4>;

  VD e;
  const double vals[4] = {1e-9, 0.625, 3.0, 1.75e4};
  for (int i = 0; i < 4; ++i) e.set(i, vals[i]);
  const VL hi = e.bitcast_int() >> 32;
  for (int i = 0; i < 4; ++i) {
    std::int64_t bits;
    std::memcpy(&bits, &vals[i], sizeof(bits));
    EXPECT_EQ(hi[i], bits >> 32);
  }
  const VL doubled = VL(3) << 1;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(doubled[i], 6);

  // Narrowing + int->double + truncating double->int conversions.
  const VI nar = hi.convert<std::int32_t>();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(nar[i], static_cast<std::int32_t>(hi[i]));
  }
  const VD asd = nar.convert<double>();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(asd[i], static_cast<double>(nar[i]));
  }
  VD frac;
  const double fv[4] = {0.0, 1.99, 2.5, 1023.875};
  for (int i = 0; i < 4; ++i) frac.set(i, fv[i]);
  const VI trunc = frac.convert<std::int32_t>();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(trunc[i], static_cast<std::int32_t>(fv[i]));
  }

  // Mask re-typing: a double comparison driving an int32 blend.
  const auto dmask = (e > VD(1.0)).template convert<std::int32_t>();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dmask[i], vals[i] > 1.0);

  // int32 gather (hardware path on AVX2/AVX-512, scalar loop elsewhere).
  std::int32_t table[32];
  for (int i = 0; i < 32; ++i) table[i] = 1000 + i;
  using VI8 = Vec<std::int32_t, 8>;
  const VI8 idx = VI8::iota(1, 3);
  const VI8 g = VI8::gather(table, idx);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(g[i], 1000 + 1 + 3 * i);
}

TEST(SimdInfoTest, IsaReportsConsistentWidth) {
  EXPECT_GT(vmc::simd::native_bits(), 0);
  EXPECT_EQ(vmc::simd::native_bits(), vmc::simd::native_bytes * 8);
  EXPECT_STREQ(vmc::simd::isa_name(), vmc::simd::native_isa);
  EXPECT_EQ(vmc::simd::vfloat::lanes, vmc::simd::native_bytes / 4);
  EXPECT_EQ(vmc::simd::vdouble::lanes, vmc::simd::native_bytes / 8);
}

TEST(WidthHelpersTest, RoundingHelpers) {
  using vmc::simd::round_down;
  using vmc::simd::round_up;
  EXPECT_EQ(round_down(17, 8), 16u);
  EXPECT_EQ(round_down(16, 8), 16u);
  EXPECT_EQ(round_down(7, 8), 0u);
  EXPECT_EQ(round_up(17, 8), 24u);
  EXPECT_EQ(round_up(16, 8), 16u);
  EXPECT_EQ(round_up(0, 8), 0u);
}

}  // namespace
