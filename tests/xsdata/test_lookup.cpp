// Lookup kernels: all five variants must agree on the macroscopic cross
// section — the central correctness property behind Figure 2's performance
// comparison (fast but wrong would be useless).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;

struct LibCase {
  const char* name;
  int n_nuclides;
  std::size_t max_union;
};

class LookupTest : public ::testing::TestWithParam<LibCase> {
 protected:
  void SetUp() override {
    const LibCase c = GetParam();
    lib_ = std::make_unique<Library>(c.max_union);
    Material m;
    m.name = "fuel";
    vmc::rng::Stream ds(17);
    for (int i = 0; i < c.n_nuclides; ++i) {
      SynthParams p = i == 0 ? SynthParams::u238_like()
                             : (i == 1 ? SynthParams::u235_like()
                                       : SynthParams::fission_product_like());
      p.grid_points = 150 + 40 * (i % 5);
      p.n_resonances = 20 + 5 * (i % 7);
      const int id = lib_->add_nuclide(
          make_synthetic_nuclide("n" + std::to_string(i),
                                 static_cast<std::uint64_t>(i) + 100, p));
      m.add(id, 1e-3 * (1.0 + ds.next()));
    }
    mat_ = lib_->add_material(std::move(m));
    lib_->finalize();
  }

  std::vector<double> test_energies(int n) const {
    std::vector<double> es;
    vmc::rng::Stream s(7);
    for (int i = 0; i < n; ++i) {
      es.push_back(kEnergyMin *
                   std::pow(kEnergyMax / kEnergyMin, s.next()));
    }
    // Plus exact grid points and boundaries (edge cases).
    es.push_back(kEnergyMin);
    es.push_back(kEnergyMax);
    es.push_back(lib_->nuclide(0).energy[3]);
    es.push_back(lib_->union_grid().energy[1]);
    return es;
  }

  std::unique_ptr<Library> lib_;
  int mat_ = -1;
};

TEST_P(LookupTest, UnionizedMatchesDirectBinarySearch) {
  for (const double e : test_energies(400)) {
    const XsSet a = macro_xs_history(*lib_, mat_, e);
    const XsSet b = macro_xs_search(*lib_, mat_, e);
    EXPECT_NEAR(a.total, b.total, 1e-9 * b.total + 1e-12) << "E=" << e;
    EXPECT_NEAR(a.scatter, b.scatter, 1e-9 * b.scatter + 1e-12);
    EXPECT_NEAR(a.absorption, b.absorption, 1e-9 * b.absorption + 1e-12);
    EXPECT_NEAR(a.fission, b.fission, 1e-9 * b.absorption + 1e-12);
  }
}

TEST_P(LookupTest, BankedSimdMatchesScalarHistory) {
  const std::vector<double> es = test_energies(600);
  std::vector<XsSet> banked(es.size());
  macro_xs_banked(*lib_, mat_, es, banked);
  for (std::size_t i = 0; i < es.size(); ++i) {
    const XsSet ref = macro_xs_history(*lib_, mat_, es[i]);
    // The banked kernel interpolates in single precision.
    EXPECT_NEAR(banked[i].total, ref.total, 3e-4 * ref.total + 1e-8)
        << "E=" << es[i];
    EXPECT_NEAR(banked[i].scatter, ref.scatter, 3e-4 * ref.scatter + 1e-8);
    EXPECT_NEAR(banked[i].absorption, ref.absorption,
                3e-4 * ref.absorption + 1e-8);
    EXPECT_NEAR(banked[i].fission, ref.fission, 3e-4 * ref.absorption + 1e-8);
  }
}

TEST_P(LookupTest, BankedOuterMatchesScalarHistory) {
  const std::vector<double> es = test_energies(300);
  std::vector<XsSet> banked(es.size());
  macro_xs_banked_outer(*lib_, mat_, es, banked);
  for (std::size_t i = 0; i < es.size(); ++i) {
    const XsSet ref = macro_xs_history(*lib_, mat_, es[i]);
    EXPECT_NEAR(banked[i].total, ref.total, 3e-4 * ref.total + 1e-8)
        << "E=" << es[i];
  }
}

TEST_P(LookupTest, BankedScalarIsBitwiseHistory) {
  const std::vector<double> es = test_energies(100);
  std::vector<XsSet> banked(es.size());
  macro_xs_banked_scalar(*lib_, mat_, es, banked);
  for (std::size_t i = 0; i < es.size(); ++i) {
    const XsSet ref = macro_xs_history(*lib_, mat_, es[i]);
    EXPECT_EQ(banked[i].total, ref.total);
    EXPECT_EQ(banked[i].absorption, ref.absorption);
  }
}

TEST_P(LookupTest, AosMatchesSoa) {
  const AosLibrary aos(*lib_);
  for (const double e : test_energies(200)) {
    const XsSet a = macro_xs_aos(aos, lib_->material(mat_), e);
    const XsSet b = macro_xs_search(*lib_, mat_, e);
    EXPECT_NEAR(a.total, b.total, 1e-9 * b.total + 1e-12) << "E=" << e;
    EXPECT_NEAR(a.fission, b.fission, 1e-9 * b.total + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Libraries, LookupTest,
    ::testing::Values(LibCase{"tiny_exact", 3, 1u << 20},
                      LibCase{"vector_width_exact", 16, 1u << 20},
                      LibCase{"odd_tail_exact", 21, 1u << 20},
                      LibCase{"hm_small_exact", 34, 1u << 20},
                      LibCase{"tiny_thinned", 3, 1200},
                      LibCase{"odd_tail_thinned", 21, 3000},
                      LibCase{"hm_small_thinned", 34, 2048}),
    [](const ::testing::TestParamInfo<LibCase>& tpi) {
      return tpi.param.name;
    });

TEST_P(LookupTest, TotalHistoryMatchesFullHistory) {
  for (const double e : test_energies(200)) {
    const double t = macro_total_history(*lib_, mat_, e);
    const XsSet ref = macro_xs_history(*lib_, mat_, e);
    EXPECT_NEAR(t, ref.total, 1e-12 * ref.total) << "E=" << e;
  }
}

TEST_P(LookupTest, TotalBankedMatchesHistory) {
  const std::vector<double> es = test_energies(600);
  std::vector<double> banked(es.size());
  macro_total_banked(*lib_, mat_, es, banked);
  for (std::size_t i = 0; i < es.size(); ++i) {
    const double ref = macro_total_history(*lib_, mat_, es[i]);
    EXPECT_NEAR(banked[i], ref, 3e-4 * ref + 1e-8) << "E=" << es[i];
  }
}

TEST(LookupAdditivity, MacroIsDensityWeightedSumOfMicro) {
  Library lib;
  const int a = lib.add_nuclide(make_flat_nuclide("a", 3.0, 1.0, 0.5, 2.4));
  const int b = lib.add_nuclide(make_flat_nuclide("b", 1.0, 4.0, 0.0, 0.0));
  Material m;
  m.add(a, 2.0);
  m.add(b, 0.5);
  const int mid = lib.add_material(std::move(m));
  lib.finalize();
  const XsSet s = macro_xs_history(lib, mid, 0.3);
  EXPECT_NEAR(s.scatter, 2.0 * 3.0 + 0.5 * 1.0, 1e-5);
  EXPECT_NEAR(s.absorption, 2.0 * 1.0 + 0.5 * 4.0, 1e-5);
  EXPECT_NEAR(s.fission, 2.0 * 0.5, 1e-5);
  EXPECT_NEAR(s.total, s.scatter + s.absorption, 1e-5);
}

}  // namespace
