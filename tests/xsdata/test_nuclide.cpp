// Nuclide pointwise data: search, interpolation, and data accounting.
#include <gtest/gtest.h>

#include "xsdata/nuclide.hpp"

namespace {

using namespace vmc::xs;

Nuclide make_simple() {
  Nuclide n;
  n.name = "simple";
  n.energy = {1.0, 2.0, 4.0, 8.0};
  n.total = {10.0f, 20.0f, 40.0f, 80.0f};
  n.scatter = {6.0f, 12.0f, 24.0f, 48.0f};
  n.absorption = {4.0f, 8.0f, 16.0f, 32.0f};
  n.fission = {0.0f, 0.0f, 0.0f, 0.0f};
  return n;
}

TEST(Nuclide, FindIndexBracketsCorrectly) {
  const Nuclide n = make_simple();
  EXPECT_EQ(n.find_index(1.0), 0u);
  EXPECT_EQ(n.find_index(1.5), 0u);
  EXPECT_EQ(n.find_index(2.0), 1u);
  EXPECT_EQ(n.find_index(3.999), 1u);
  EXPECT_EQ(n.find_index(7.0), 2u);
}

TEST(Nuclide, FindIndexClampsOutOfRange) {
  const Nuclide n = make_simple();
  EXPECT_EQ(n.find_index(0.5), 0u);
  EXPECT_EQ(n.find_index(100.0), 2u);  // last interval
}

TEST(Nuclide, LinearInterpolationIsExactAtNodes) {
  const Nuclide n = make_simple();
  for (std::size_t i = 0; i < n.energy.size(); ++i) {
    const XsSet s = n.evaluate(n.energy[i]);
    EXPECT_FLOAT_EQ(static_cast<float>(s.total), n.total[i]);
    EXPECT_FLOAT_EQ(static_cast<float>(s.scatter), n.scatter[i]);
  }
}

TEST(Nuclide, LinearInterpolationMidpoint) {
  const Nuclide n = make_simple();
  const XsSet s = n.evaluate(1.5);
  EXPECT_NEAR(s.total, 15.0, 1e-6);
  EXPECT_NEAR(s.scatter, 9.0, 1e-6);
  EXPECT_NEAR(s.absorption, 6.0, 1e-6);
}

TEST(Nuclide, EvaluateClampsBeyondGrid) {
  const Nuclide n = make_simple();
  EXPECT_NEAR(n.evaluate(0.01).total, 10.0, 1e-6);  // clamped to first point
  EXPECT_NEAR(n.evaluate(100.0).total, 80.0, 1e-6);
}

TEST(Nuclide, DataBytesCountsEverything) {
  Nuclide n = make_simple();
  const std::size_t base = n.data_bytes();
  EXPECT_EQ(base, 4 * sizeof(double) + 16 * sizeof(float));

  UrrTable u;
  u.energy = {1.0, 2.0};
  u.cdf = {0.5f, 1.0f};
  u.f_total = {1.0f};
  n.urr = u;
  EXPECT_GT(n.data_bytes(), base);
}

TEST(UrrTable, ContainsRange) {
  UrrTable u;
  u.e_min = 1e-2;
  u.e_max = 1e-1;
  EXPECT_TRUE(u.contains(0.05));
  EXPECT_TRUE(u.contains(1e-2));
  EXPECT_FALSE(u.contains(1e-1));
  EXPECT_FALSE(u.contains(1e-3));
}

TEST(ThermalTable, ContainsNeedsDataAndCutoff) {
  ThermalTable t;
  t.cutoff = 4e-6;
  EXPECT_FALSE(t.contains(1e-7));  // no inelastic grid yet
  t.inel_energy = {1e-11, 4e-6};
  EXPECT_TRUE(t.contains(1e-7));
  EXPECT_FALSE(t.contains(5e-6));
}

}  // namespace
