// Synthetic nuclide generator: physical sanity of the produced data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;

class ArchetypeTest : public ::testing::TestWithParam<SynthParams> {};

TEST_P(ArchetypeTest, GridIsSortedUniqueAndSized) {
  const Nuclide n = make_synthetic_nuclide("t", 5, GetParam());
  ASSERT_GE(n.grid_size(), 64u);
  EXPECT_TRUE(std::is_sorted(n.energy.begin(), n.energy.end()));
  EXPECT_TRUE(std::adjacent_find(n.energy.begin(), n.energy.end()) ==
              n.energy.end());
  EXPECT_GE(n.energy.front(), kEnergyMin * 0.99);
  EXPECT_LE(n.energy.back(), kEnergyMax * 1.01);
}

TEST_P(ArchetypeTest, CrossSectionsArePositiveAndConsistent) {
  const Nuclide n = make_synthetic_nuclide("t", 6, GetParam());
  for (std::size_t i = 0; i < n.grid_size(); ++i) {
    EXPECT_GT(n.total[i], 0.0f);
    EXPECT_GT(n.scatter[i], 0.0f);
    EXPECT_GT(n.absorption[i], 0.0f);
    EXPECT_GE(n.fission[i], 0.0f);
    EXPECT_LE(n.fission[i], n.absorption[i] * 1.0001f);
    EXPECT_NEAR(n.total[i], n.scatter[i] + n.absorption[i],
                1e-3f * n.total[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Archetypes, ArchetypeTest,
    ::testing::Values(SynthParams::u238_like(), SynthParams::u235_like(),
                      SynthParams::light_like(1.0),
                      SynthParams::light_like(15.86),
                      SynthParams::fission_product_like()));

TEST(Synth, OneOverVAbsorptionAtThermal) {
  // Away from resonances, absorption follows sigma_a(E) =
  // sigma_a_thermal * sqrt(E_th / E).
  auto p = SynthParams::u238_like();
  const Nuclide n = make_synthetic_nuclide("u238", 92238, p);
  const double e1 = 1e-9, e2 = 1e-8;
  const double a1 = n.evaluate(e1).absorption;
  const double a2 = n.evaluate(e2).absorption;
  EXPECT_NEAR(a1 / a2, std::sqrt(e2 / e1), 0.15 * std::sqrt(e2 / e1));
  // And the 0.0253 eV anchor is respected.
  EXPECT_NEAR(n.evaluate(2.53e-8).absorption, p.sigma_a_thermal,
              0.1 * p.sigma_a_thermal);
}

TEST(Synth, ResonancesCreateStructureInResolvedRange) {
  const auto p = SynthParams::u238_like();
  const Nuclide n = make_synthetic_nuclide("u238", 92238, p);
  // Max/min total within the resolved range should differ by a large factor
  // (the Fig. 1 resonance forest).
  float mx = 0.0f, mn = 1e30f;
  for (std::size_t i = 0; i < n.grid_size(); ++i) {
    if (n.energy[i] > p.res_e_min && n.energy[i] < p.res_e_max) {
      mx = std::max(mx, n.total[i]);
      mn = std::min(mn, n.total[i]);
    }
  }
  EXPECT_GT(mx / mn, 5.0f);
}

TEST(Synth, SeedsIndividualizeTheLadder) {
  const auto p = SynthParams::fission_product_like();
  const Nuclide a = make_synthetic_nuclide("a", 1, p);
  const Nuclide b = make_synthetic_nuclide("b", 2, p);
  EXPECT_NE(a.grid_size(), 0u);
  // Grids differ (different resonance energies).
  bool differs = a.grid_size() != b.grid_size();
  if (!differs) {
    for (std::size_t i = 0; i < a.grid_size(); ++i) {
      if (a.energy[i] != b.energy[i]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Synth, SameSeedIsDeterministic) {
  const auto p = SynthParams::u235_like();
  const Nuclide a = make_synthetic_nuclide("x", 99, p);
  const Nuclide b = make_synthetic_nuclide("x", 99, p);
  ASSERT_EQ(a.grid_size(), b.grid_size());
  for (std::size_t i = 0; i < a.grid_size(); ++i) {
    EXPECT_EQ(a.energy[i], b.energy[i]);
    EXPECT_EQ(a.total[i], b.total[i]);
  }
}

TEST(Synth, UrrTableWellFormed) {
  auto p = SynthParams::u238_like();
  p.with_urr = true;
  const Nuclide n = make_synthetic_nuclide("u", 3, p);
  ASSERT_TRUE(n.urr.has_value());
  const UrrTable& u = *n.urr;
  EXPECT_GT(u.n_bands, 1);
  EXPECT_DOUBLE_EQ(u.e_min, p.res_e_max);
  EXPECT_TRUE(std::is_sorted(u.energy.begin(), u.energy.end()));
  // CDF rows end at 1 and are non-decreasing.
  const std::size_t ne = u.energy.size();
  for (std::size_t ie = 0; ie < ne; ++ie) {
    float prev = 0.0f;
    for (int b = 0; b < u.n_bands; ++b) {
      const float c = u.cdf[ie * static_cast<std::size_t>(u.n_bands) +
                            static_cast<std::size_t>(b)];
      EXPECT_GE(c, prev);
      prev = c;
    }
    EXPECT_FLOAT_EQ(prev, 1.0f);
  }
  // Factors positive.
  for (const float f : u.f_total) EXPECT_GT(f, 0.0f);
}

TEST(Synth, ThermalTableWellFormed) {
  auto p = SynthParams::light_like(1.0);
  p.with_thermal = true;
  const Nuclide n = make_synthetic_nuclide("h", 4, p);
  ASSERT_TRUE(n.thermal.has_value());
  const ThermalTable& t = *n.thermal;
  EXPECT_GT(t.cutoff, 0.0);
  EXPECT_TRUE(std::is_sorted(t.bragg_edge.begin(), t.bragg_edge.end()));
  EXPECT_TRUE(std::is_sorted(t.inel_energy.begin(), t.inel_energy.end()));
  EXPECT_EQ(t.out_energy.size(),
            t.inel_energy.size() * static_cast<std::size_t>(t.n_out));
  EXPECT_NEAR(t.bragg_weight.back(), 1.0f, 1e-5f);
  for (const float mu : t.out_mu) {
    EXPECT_GE(mu, -1.0f);
    EXPECT_LE(mu, 1.0f);
  }
}

TEST(FlatNuclide, ConstantEverywhere) {
  const Nuclide n = make_flat_nuclide("flat", 4.0, 2.0, 1.0, 2.5);
  EXPECT_TRUE(n.fissionable);
  EXPECT_DOUBLE_EQ(n.nu, 2.5);
  for (double e : {1e-10, 1e-5, 1.0, 15.0}) {
    const XsSet s = n.evaluate(e);
    EXPECT_NEAR(s.total, 6.0, 1e-5);
    EXPECT_NEAR(s.scatter, 4.0, 1e-5);
    EXPECT_NEAR(s.absorption, 2.0, 1e-5);
    EXPECT_NEAR(s.fission, 1.0, 1e-5);
  }
}

}  // namespace
