// Library: flattening layout, unionized grid construction (exact and
// thinned), and the index-map invariant that underpins every lookup.
#include <gtest/gtest.h>

#include <algorithm>

#include "xsdata/library.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;

Library small_library(std::size_t max_union = 1u << 20) {
  Library lib(max_union);
  auto p1 = SynthParams::u238_like();
  p1.grid_points = 300;
  p1.n_resonances = 40;
  auto p2 = SynthParams::light_like(15.9);
  p2.grid_points = 150;
  auto p3 = SynthParams::fission_product_like();
  p3.grid_points = 200;
  p3.n_resonances = 25;
  const int a = lib.add_nuclide(make_synthetic_nuclide("A", 1, p1));
  const int b = lib.add_nuclide(make_synthetic_nuclide("B", 2, p2));
  const int c = lib.add_nuclide(make_synthetic_nuclide("C", 3, p3));
  Material m;
  m.name = "mix";
  m.add(a, 0.02);
  m.add(b, 0.04);
  m.add(c, 0.001);
  lib.add_material(std::move(m));
  lib.finalize();
  return lib;
}

TEST(Library, FlattenPreservesEveryGridPoint) {
  const Library lib = small_library();
  const auto& fl = lib.flat();
  std::size_t total = 0;
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    const Nuclide& nuc = lib.nuclide(n);
    const auto off = static_cast<std::size_t>(fl.offset[static_cast<std::size_t>(n)]);
    ASSERT_EQ(fl.grid_size[static_cast<std::size_t>(n)],
              static_cast<std::int32_t>(nuc.grid_size()));
    for (std::size_t i = 0; i < nuc.grid_size(); ++i) {
      EXPECT_EQ(fl.energy[off + i], nuc.energy[i]);
      EXPECT_EQ(fl.total[off + i], nuc.total[i]);
      EXPECT_EQ(fl.scatter[off + i], nuc.scatter[i]);
      EXPECT_EQ(fl.absorption[off + i], nuc.absorption[i]);
      EXPECT_EQ(fl.fission[off + i], nuc.fission[i]);
      EXPECT_FLOAT_EQ(fl.energy_f[off + i], static_cast<float>(nuc.energy[i]));
    }
    total += nuc.grid_size();
  }
  EXPECT_EQ(fl.energy.size(), total);
}

TEST(Library, ExactUnionContainsEveryNuclideGridPoint) {
  const Library lib = small_library();
  const auto& ug = lib.union_grid();
  EXPECT_EQ(ug.walk_bound, 0);  // exact union: no walk needed
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    for (const double e : lib.nuclide(n).energy) {
      EXPECT_TRUE(std::binary_search(ug.energy.begin(), ug.energy.end(), e));
    }
  }
}

TEST(Library, IndexMapInvariant) {
  // imap[u][n] points at the nuclide interval containing union point u.
  const Library lib = small_library();
  const auto& ug = lib.union_grid();
  const std::size_t nn = static_cast<std::size_t>(ug.n_nuclides);
  for (std::size_t u = 0; u < ug.size(); u += 7) {
    for (std::size_t n = 0; n < nn; ++n) {
      const auto idx = static_cast<std::size_t>(ug.imap[u * nn + n]);
      const auto& grid = lib.nuclide(static_cast<int>(n)).energy;
      ASSERT_LT(idx + 1, grid.size());
      // grid[idx] <= union energy (unless clamped at the front).
      if (ug.energy[u] >= grid.front()) {
        EXPECT_LE(grid[idx], ug.energy[u] * (1 + 1e-12));
      }
      // and the next nuclide point is beyond (within walk_bound slack).
      if (ug.walk_bound == 0 && ug.energy[u] < grid.back() &&
          ug.energy[u] >= grid.front()) {
        EXPECT_GE(grid[idx + 1], ug.energy[u] * (1 - 1e-12));
      }
    }
  }
}

TEST(Library, ThinnedUnionRespectsCapAndWalkBound) {
  const Library exact = small_library();
  const std::size_t exact_size = exact.union_grid().size();
  const std::size_t cap = exact_size / 4;
  const Library thin = small_library(cap);
  const auto& ug = thin.union_grid();
  EXPECT_LE(ug.size(), cap + 2);
  EXPECT_GT(ug.walk_bound, 0);
  // End points preserved.
  EXPECT_EQ(ug.energy.front(), exact.union_grid().energy.front());
  EXPECT_EQ(ug.energy.back(), exact.union_grid().energy.back());
}

TEST(Library, UnionFindBrackets) {
  const Library lib = small_library();
  const auto& ug = lib.union_grid();
  for (std::size_t u = 0; u + 1 < ug.size(); u += 13) {
    const double mid = 0.5 * (ug.energy[u] + ug.energy[u + 1]);
    EXPECT_EQ(ug.find(mid), u);
  }
  EXPECT_EQ(ug.find(ug.energy.front() * 0.5), 0u);
  EXPECT_EQ(ug.find(ug.energy.back() * 2.0), ug.size() - 2);
}

TEST(Library, ByteAccountingIsConsistent) {
  const Library lib = small_library();
  EXPECT_EQ(lib.union_bytes(),
            lib.union_grid().energy.size() * sizeof(double) +
                lib.union_grid().imap.size() * sizeof(std::int32_t));
  std::size_t pw = 0;
  for (int n = 0; n < lib.n_nuclides(); ++n) pw += lib.nuclide(n).data_bytes();
  EXPECT_EQ(lib.pointwise_bytes(), pw);
}

TEST(Library, RejectsBadUsage) {
  Library lib;
  EXPECT_THROW(lib.finalize(), std::logic_error);  // empty

  Library lib2;
  Nuclide tiny;
  tiny.energy = {1.0};
  EXPECT_THROW(lib2.add_nuclide(tiny), std::invalid_argument);

  Library lib3;
  lib3.add_nuclide(make_flat_nuclide("f", 1, 1, 0, 0));
  Material bad;
  bad.add(5, 1.0);  // unknown nuclide id
  EXPECT_THROW(lib3.add_material(std::move(bad)), std::out_of_range);

  Library lib4;
  lib4.add_nuclide(make_flat_nuclide("f", 1, 1, 0, 0));
  lib4.finalize();
  EXPECT_THROW(lib4.add_nuclide(make_flat_nuclide("g", 1, 1, 0, 0)),
               std::logic_error);
  lib4.finalize();  // idempotent
}

}  // namespace
