// Hash-binned energy-grid accelerator: the whole point is that the hash
// search is a pure speedup — every tier must select bit-identical intervals
// (and therefore bit-identical cross sections) to the std::upper_bound
// baseline. These tests pin that, plus the index memory accounting and the
// bins/decade rebuild hook.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "rng/stream.hpp"
#include "xsdata/hash_grid.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;

constexpr XsLookupOptions kBinary{GridSearch::binary};
constexpr XsLookupOptions kHash{GridSearch::hash};
constexpr XsLookupOptions kHashNuclide{GridSearch::hash_nuclide};

struct GridCase {
  const char* name;
  int n_nuclides;
  std::size_t max_union;
};

std::unique_ptr<Library> build_library(const GridCase& c,
                                       std::size_t max_union) {
  auto lib = std::make_unique<Library>(max_union);
  Material m;
  m.name = "fuel";
  vmc::rng::Stream ds(17);
  for (int i = 0; i < c.n_nuclides; ++i) {
    SynthParams p = i == 0 ? SynthParams::u238_like()
                           : (i == 1 ? SynthParams::u235_like()
                                     : SynthParams::fission_product_like());
    p.grid_points = 150 + 40 * (i % 5);
    p.n_resonances = 20 + 5 * (i % 7);
    lib->add_nuclide(make_synthetic_nuclide(
        "n" + std::to_string(i), static_cast<std::uint64_t>(i) + 100, p));
    m.add(i, 1e-3 * (1.0 + ds.next()));
  }
  lib->add_material(std::move(m));
  lib->finalize();
  return lib;
}

double from_hi32(std::int32_t hi, std::uint32_t lo) {
  const std::int64_t bits =
      (static_cast<std::int64_t>(hi) << 32) | static_cast<std::int64_t>(lo);
  double e;
  std::memcpy(&e, &bits, sizeof(e));
  return e;
}

class HashGridTest : public ::testing::TestWithParam<GridCase> {
 protected:
  void SetUp() override {
    lib_ = build_library(GetParam(), GetParam().max_union);
  }

  /// Random log-uniform energies plus every adversarial case the bucket map
  /// has: grid front/back and their neighbours, out-of-range energies, exact
  /// grid points (union + nuclide) with their nextafter neighbours, and
  /// energies sitting exactly on bucket-edge bit patterns.
  std::vector<double> adversarial_energies(int n_random) const {
    const auto& ug = lib_->union_grid().energy;
    std::vector<double> es;
    vmc::rng::Stream s(7);
    for (int i = 0; i < n_random; ++i) {
      es.push_back(kEnergyMin * std::pow(kEnergyMax / kEnergyMin, s.next()));
    }
    const double inf = std::numeric_limits<double>::infinity();
    for (const double g : {ug.front(), ug.back(), ug[1], ug[ug.size() / 2],
                           ug[ug.size() - 2], lib_->nuclide(0).energy[3]}) {
      es.push_back(g);
      es.push_back(std::nextafter(g, 0.0));
      es.push_back(std::nextafter(g, inf));
    }
    es.push_back(ug.front() * 0.5);   // below the grid
    es.push_back(ug.back() * 2.0);    // above the grid
    es.push_back(ug.back() * 16.0);
    // Bucket-edge bit patterns: doubles whose hi32 lands exactly on integer
    // steps of the log-energy axis, with the low word at both extremes.
    const std::int32_t h0 = HashGrid::hi32(ug.front());
    const std::int32_t span = HashGrid::hi32(ug.back()) - h0;
    for (int k = 0; k <= 16; ++k) {
      const std::int32_t h =
          h0 + static_cast<std::int32_t>(
                   (static_cast<std::int64_t>(span) * k) / 16);
      es.push_back(from_hi32(h, 0u));
      es.push_back(from_hi32(h, 0xFFFFFFFFu));
    }
    return es;
  }

  std::unique_ptr<Library> lib_;
};

TEST_P(HashGridTest, FindIsBitwiseUpperBound) {
  const auto& ug = lib_->union_grid();
  const auto& hg = lib_->hash_grid();
  ASSERT_FALSE(hg.empty());
  for (const double e : adversarial_energies(2000)) {
    EXPECT_EQ(hg.find(ug.energy, e), ug.find(e)) << "E=" << e;
  }
}

TEST_P(HashGridTest, FindBankedMatchesScalarFind) {
  const auto& ug = lib_->union_grid();
  const auto& hg = lib_->hash_grid();
  const std::vector<double> all = adversarial_energies(500);
  // Odd batch sizes exercise the sub-vector remainder path.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{7}, std::size_t{17}, all.size()}) {
    const std::span<const double> es(all.data(), n);
    std::vector<std::int32_t> us(n);
    hg.find_banked(ug.energy, es, us.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(static_cast<std::size_t>(us[i]), ug.find(es[i]))
          << "E=" << es[i] << " batch=" << n;
    }
  }
}

TEST_P(HashGridTest, HistoryTiersAreBitwiseBinary) {
  // Scalar paths resolve EXACT nuclide intervals in every tier (the binary
  // path via imap + bounded walk, tier b via the double index), so all three
  // agree bit-for-bit even on thinned unions.
  for (const double e : adversarial_energies(400)) {
    const XsSet b = macro_xs_history(*lib_, 0, e, kBinary);
    const XsSet h = macro_xs_history(*lib_, 0, e, kHash);
    const XsSet n = macro_xs_history(*lib_, 0, e, kHashNuclide);
    EXPECT_EQ(b.total, h.total) << "E=" << e;
    EXPECT_EQ(b.scatter, h.scatter);
    EXPECT_EQ(b.absorption, h.absorption);
    EXPECT_EQ(b.fission, h.fission);
    EXPECT_EQ(b.total, n.total) << "E=" << e;
    EXPECT_EQ(b.scatter, n.scatter);
    EXPECT_EQ(b.absorption, n.absorption);
    EXPECT_EQ(b.fission, n.fission);

    EXPECT_EQ(macro_total_history(*lib_, 0, e, kBinary),
              macro_total_history(*lib_, 0, e, kHash));
    EXPECT_EQ(macro_total_history(*lib_, 0, e, kBinary),
              macro_total_history(*lib_, 0, e, kHashNuclide));
  }
}

TEST_P(HashGridTest, BankedHashIsBitwiseBinary) {
  const std::vector<double> es = adversarial_energies(600);
  std::vector<XsSet> bin(es.size()), hash(es.size());
  macro_xs_banked(*lib_, 0, es, bin, kBinary);
  macro_xs_banked(*lib_, 0, es, hash, kHash);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(bin[i].total, hash[i].total) << "E=" << es[i];
    EXPECT_EQ(bin[i].scatter, hash[i].scatter);
    EXPECT_EQ(bin[i].absorption, hash[i].absorption);
    EXPECT_EQ(bin[i].fission, hash[i].fission);
  }
}

TEST_P(HashGridTest, BankedOuterAndTotalHashAreBitwiseBinary) {
  const std::vector<double> es = adversarial_energies(300);
  std::vector<XsSet> bin(es.size()), hash(es.size());
  macro_xs_banked_outer(*lib_, 0, es, bin, kBinary);
  macro_xs_banked_outer(*lib_, 0, es, hash, kHash);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(bin[i].total, hash[i].total) << "E=" << es[i];
  }
  std::vector<double> tb(es.size()), th(es.size()), tn(es.size());
  macro_total_banked(*lib_, 0, es, tb, kBinary);
  macro_total_banked(*lib_, 0, es, th, kHash);
  macro_total_banked(*lib_, 0, es, tn, kHashNuclide);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(tb[i], th[i]) << "E=" << es[i];
    // Tier b's tiles degrade to the plain hash search (they read the imap by
    // construction) and the scalar tails are exact in both tiers.
    EXPECT_EQ(tb[i], tn[i]) << "E=" << es[i];
  }
}

TEST_P(HashGridTest, BankedDoubleIndexMatchesExactUnionBinary) {
  // Tier (b) never reads the union grid, so the banked double-indexed sweep
  // of THIS library (possibly thinned) must be bitwise equal to the banked
  // binary sweep of the equivalent exact-union library, whose imap intervals
  // are exact too.
  const auto exact = build_library(GetParam(), 1u << 20);
  const std::vector<double> es = adversarial_energies(400);
  std::vector<XsSet> tier_b(es.size()), ref(es.size());
  macro_xs_banked(*lib_, 0, es, tier_b, kHashNuclide);
  macro_xs_banked(*exact, 0, es, ref, kBinary);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(ref[i].total, tier_b[i].total) << "E=" << es[i];
    EXPECT_EQ(ref[i].scatter, tier_b[i].scatter);
    EXPECT_EQ(ref[i].absorption, tier_b[i].absorption);
    EXPECT_EQ(ref[i].fission, tier_b[i].fission);
  }
}

TEST_P(HashGridTest, RebuildSweepPreservesResults) {
  const auto& ug = lib_->union_grid();
  const std::vector<double> es = adversarial_energies(300);
  std::vector<std::size_t> ref(es.size());
  for (std::size_t i = 0; i < es.size(); ++i) ref[i] = ug.find(es[i]);
  for (const int bpd : {7, 64, 256, 1024, 8192}) {
    for (const bool nuc : {false, true}) {
      lib_->rebuild_hash({bpd, nuc});
      const auto& hg = lib_->hash_grid();
      EXPECT_EQ(hg.bins_per_decade(), bpd);
      EXPECT_EQ(hg.has_nuclide_index(), nuc);
      for (std::size_t i = 0; i < es.size(); ++i) {
        ASSERT_EQ(hg.find(ug.energy, es[i]), ref[i])
            << "E=" << es[i] << " bpd=" << bpd;
      }
      // Without the tier-b table, hash_nuclide must gracefully degrade to
      // hash — still bitwise equal to binary.
      const XsSet a = macro_xs_history(*lib_, 0, es[0], kBinary);
      const XsSet b = macro_xs_history(*lib_, 0, es[0], kHashNuclide);
      EXPECT_EQ(a.total, b.total);
    }
  }
}

TEST_P(HashGridTest, BytesAccountingTracksTables) {
  lib_->rebuild_hash({1024, true});
  const auto& hg = lib_->hash_grid();
  const std::size_t with_index = lib_->hash_bytes();
  EXPECT_EQ(with_index,
            (static_cast<std::size_t>(hg.n_buckets()) + 1) *
                (1 + static_cast<std::size_t>(lib_->n_nuclides())) *
                sizeof(std::int32_t));
  lib_->rebuild_hash({1024, false});
  EXPECT_EQ(lib_->hash_bytes(),
            (static_cast<std::size_t>(lib_->hash_grid().n_buckets()) + 1) *
                sizeof(std::int32_t));
  EXPECT_LT(lib_->hash_bytes(), with_index);
}

INSTANTIATE_TEST_SUITE_P(
    Libraries, HashGridTest,
    ::testing::Values(GridCase{"tiny_exact", 3, 1u << 20},
                      GridCase{"vector_width_exact", 16, 1u << 20},
                      GridCase{"odd_tail_exact", 21, 1u << 20},
                      GridCase{"hm_small_exact", 34, 1u << 20},
                      GridCase{"tiny_thinned", 3, 1200},
                      GridCase{"odd_tail_thinned", 21, 3000},
                      GridCase{"hm_small_thinned", 34, 2048}),
    [](const ::testing::TestParamInfo<GridCase>& tpi) {
      return tpi.param.name;
    });

TEST(HashGridEdge, TwoPointGridResolvesEverywhere) {
  Library lib;
  lib.add_nuclide(make_flat_nuclide("a", 3.0, 1.0, 0.5, 2.4));
  Material m;
  m.add(0, 1.0);
  lib.add_material(std::move(m));
  lib.finalize();
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  for (const double e :
       {0.0, ug.energy.front(), ug.energy.back(), 1e-9, 0.3, 1e3}) {
    EXPECT_EQ(hg.find(ug.energy, e), ug.find(e)) << "E=" << e;
  }
}

}  // namespace
