// Tool-level tests for vmc_lint: drive the real binary against seeded
// source trees and assert on the machine-readable output and exit codes the
// CI static-analysis job depends on. The rule logic itself is covered by
// `vmc_lint --self-test`; this suite pins the *interface* — JSON schema,
// file/line accuracy, allow-marker placement, scope exemptions, and the
// clean/dirty/broken exit-code contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;  // stdout only; diagnostics go to stderr
};

RunResult run_command(const std::string& cmd) {
  RunResult r;
  FILE* p = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, p)) > 0) {
    r.out.append(buf, n);
  }
  const int status = ::pclose(p);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

class VmcLintTree : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            ("vmc_lint_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
  }

  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content;
  }

  RunResult lint_json() {
    return run_command(std::string(VMC_LINT_BIN) + " --json " +
                       root_.string());
  }

  RunResult lint_text() {
    return run_command(std::string(VMC_LINT_BIN) + " " + root_.string());
  }

  fs::path root_;
};

TEST(VmcLintSelfTest, AllFixturesPass) {
  const RunResult r = run_command(std::string(VMC_LINT_BIN) + " --self-test");
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST_F(VmcLintTree, CleanTreeReportsCleanAndExitsZero) {
  write("src/core/ok.cpp", "int answer() { return 42; }\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"schema\": \"vectormc.lint.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"clean\": true"), std::string::npos);
  EXPECT_NE(r.out.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(r.out.find("\"violations\": []"), std::string::npos);
}

TEST_F(VmcLintTree, RawClockViolationCarriesExactFileAndLine) {
  write("src/core/timing.cpp",
        "#include <chrono>\n"
        "\n"
        "double now() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch().count();"
        "\n"
        "}\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(r.out.find("\"file\": \"src/core/timing.cpp\", \"line\": 4, "
                       "\"rule\": \"raw-clock\""),
            std::string::npos)
      << r.out;
}

TEST_F(VmcLintTree, HardcodedLaneWidthViolationCarriesExactFileAndLine) {
  write("src/xsdata/kern.cpp",
        "#include \"simd/simd.hpp\"\n"
        "simd::Vec<float, 8> splat(float x) { return simd::Vec<float, 8>(x); "
        "}\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"file\": \"src/xsdata/kern.cpp\", \"line\": 2, "
                       "\"rule\": \"hardcoded-lane-width\""),
            std::string::npos)
      << r.out;
}

TEST_F(VmcLintTree, AllowMarkerOnLineAboveSuppressesTheFinding) {
  write("src/core/timing.cpp",
        "// one-off wall-clock stamp. vmc-lint: allow(raw-clock)\n"
        "auto t0 = std::chrono::steady_clock::now();\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"clean\": true"), std::string::npos);
}

TEST_F(VmcLintTree, StaleAllowMarkerIsItselfAViolation) {
  write("src/core/quiet.cpp",
        "int x = 0;\n"
        "// vmc-lint: allow(raw-clock)\n"
        "int y = 1;\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"file\": \"src/core/quiet.cpp\", \"line\": 2, "
                       "\"rule\": \"stale-allow\""),
            std::string::npos)
      << r.out;
}

TEST_F(VmcLintTree, UnknownRuleInAllowMarkerIsAViolation) {
  write("src/core/typo.cpp",
        "// vmc-lint: allow(raw-cloak)\n"
        "auto t0 = std::chrono::steady_clock::now();\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"rule\": \"stale-allow\""), std::string::npos);
  // The misspelled marker suppresses nothing, so the clock finding stands
  // too.
  EXPECT_NE(r.out.find("\"rule\": \"raw-clock\""), std::string::npos);
}

TEST_F(VmcLintTree, BenchKeepsItsRawClockExemptionButIsStillScanned) {
  write("bench/harness.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(r.out.find("\"clean\": true"), std::string::npos);
}

TEST_F(VmcLintTree, BenchIsNotExemptFromIntrinsicConfinement) {
  write("bench/kernel.cpp", "float hsum(__m256 v);\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"file\": \"bench/kernel.cpp\", \"line\": 1, "
                       "\"rule\": \"raw-intrinsic\""),
            std::string::npos)
      << r.out;
}

TEST_F(VmcLintTree, SummaryCountsViolationsPerRule) {
  write("src/core/a.cpp", "auto t = std::chrono::steady_clock::now();\n");
  write("src/core/b.cpp", "auto t = std::chrono::system_clock::now();\n");
  const RunResult r = lint_json();
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("\"raw-clock\": 2"), std::string::npos) << r.out;
}

TEST_F(VmcLintTree, TextModeReportsCleanOnStdout) {
  write("src/core/ok.cpp", "int x = 0;\n");
  const RunResult r = lint_text();
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("clean"), std::string::npos);
}

TEST(VmcLintInvocation, MissingSrcDirectoryExitsTwo) {
  const fs::path empty =
      fs::temp_directory_path() /
      ("vmc_lint_nosrc_" + std::to_string(::getpid()));
  fs::create_directories(empty);
  const RunResult r =
      run_command(std::string(VMC_LINT_BIN) + " " + empty.string());
  EXPECT_EQ(r.exit_code, 2);
  fs::remove_all(empty);
}

TEST(VmcLintInvocation, UnknownFlagExitsTwo) {
  const RunResult r = run_command(std::string(VMC_LINT_BIN) + " --bogus");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(VmcLintInvocation, MissingRootArgumentExitsTwo) {
  const RunResult r = run_command(std::string(VMC_LINT_BIN));
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
