// JSON layer: writer structural bookkeeping, escaping, number formatting,
// the raw_value splice hatch, and the strict parser the checkers build on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace {

using namespace vmc::obs;

TEST(JsonWriter, NestedDocumentRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.member("name", "run");
  w.member("n", std::int64_t{42});
  w.member("rate", 2.5);
  w.member("ok", true);
  w.key("nothing").null();
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("inner").begin_object();
  w.member("k", "v");
  w.end_object();
  w.end_object();

  const JsonValue doc = json_parse(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string, "run");
  EXPECT_DOUBLE_EQ(doc.find("n")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc.find("rate")->number, 2.5);
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_TRUE(doc.find("nothing")->is_null());
  ASSERT_EQ(doc.find("list")->array.size(), 3u);
  EXPECT_EQ(doc.find("inner")->find("k")->string, "v");
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.begin_object();
  w.member("s", std::string_view("a\"b\\c\nd\te\x01f"));
  w.end_object();
  const JsonValue doc = json_parse(w.str());
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\nd\te\x01f");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  const JsonValue doc = json_parse(w.str());
  ASSERT_EQ(doc.array.size(), 3u);
  for (const auto& v : doc.array) EXPECT_TRUE(v.is_null());
}

TEST(JsonWriter, Uint64PreservesFullRange) {
  JsonWriter w;
  w.begin_object();
  w.member("v", std::uint64_t{18446744073709551615ULL});
  w.end_object();
  EXPECT_NE(w.str().find("18446744073709551615"), std::string::npos);
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed container
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.str(), std::logic_error);  // empty document
  }
}

TEST(JsonWriter, RawValueSplicesEmbeddedDocument) {
  JsonWriter inner;
  inner.begin_object();
  inner.member("nested", 7);
  inner.end_object();

  JsonWriter w;
  w.begin_object();
  w.key("payload").raw_value(inner.str());
  w.member("after", 1);
  w.end_object();

  const JsonValue doc = json_parse(w.str());
  EXPECT_DOUBLE_EQ(doc.find("payload")->find("nested")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc.find("after")->number, 1.0);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(json_parse(""), std::runtime_error);
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(json_parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(json_parse("nul"), std::runtime_error);
  EXPECT_THROW(json_parse("01"), std::runtime_error);
  EXPECT_THROW(json_parse("1."), std::runtime_error);
  EXPECT_THROW(json_parse("\"\\x\""), std::runtime_error);
  EXPECT_THROW(json_parse("\"unterminated"), std::runtime_error);
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += '[';
  for (int i = 0; i < 400; ++i) deep += ']';
  EXPECT_THROW(json_parse(deep), std::runtime_error);
  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_NO_THROW(json_parse(ok));
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  const JsonValue v = json_parse("\"\\u00e9\\u2713\"");  // é ✓
  EXPECT_EQ(v.string, "\xc3\xa9\xe2\x9c\x93");
  // Surrogate pair: U+1F600.
  const JsonValue s = json_parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(s.string, "\xf0\x9f\x98\x80");
  // Lone surrogate is malformed.
  EXPECT_THROW(json_parse("\"\\ud83d\""), std::runtime_error);
}

TEST(JsonParse, AcceptsNumbersAndKeywords) {
  EXPECT_DOUBLE_EQ(json_parse("-1.5e3").number, -1500.0);
  EXPECT_DOUBLE_EQ(json_parse("0").number, 0.0);
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_FALSE(json_parse("false").boolean);
  EXPECT_TRUE(json_parse("null").is_null());
}

TEST(JsonValid, ReportsErrors) {
  EXPECT_TRUE(json_valid("{\"a\": [1, 2, 3]}"));
  std::string err;
  EXPECT_FALSE(json_valid("{\"a\":}", &err));
  EXPECT_FALSE(err.empty());
}

TEST(JsonValue, FindReturnsFirstMatchOrNull) {
  const JsonValue doc = json_parse("{\"a\": 1, \"b\": 2}");
  ASSERT_NE(doc.find("b"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("b")->number, 2.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(json_parse("[1]").find("a"), nullptr);  // not an object
}

}  // namespace
