// bench::Report schema: every BENCH_*.json document a harness emits must be
// a valid vectormc.bench.v1 doc — machine context, notes, and numeric rows —
// because EXPERIMENTS.md plots are generated straight from these files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "obs/json.hpp"

namespace {

using namespace vmc;
using obs::JsonValue;

TEST(BenchReport, JsonMatchesSchema) {
  bench::Report report("schema_probe", "Test Artifact", "schema check");
  report.note("scenario", "unit test").note("n_cases", 2.0);
  report.row({{"x", 1.0}, {"rate", 2.5e6}});
  report.row({{"x", 2.0}, {"rate", 4.9e6}});

  const JsonValue doc = obs::json_parse(report.json());
  EXPECT_EQ(doc.find("schema")->string, "vectormc.bench.v1");
  EXPECT_EQ(doc.find("name")->string, "schema_probe");
  EXPECT_EQ(doc.find("artifact")->string, "Test Artifact");
  EXPECT_FALSE(doc.find("isa")->string.empty());
  EXPECT_GT(doc.find("simd_bits")->number, 0.0);
  EXPECT_GT(doc.find("bench_scale")->number, 0.0);

  const JsonValue* notes = doc.find("notes");
  ASSERT_NE(notes, nullptr);
  EXPECT_EQ(notes->find("scenario")->string, "unit test");
  EXPECT_DOUBLE_EQ(notes->find("n_cases")->number, 2.0);

  const JsonValue* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  EXPECT_DOUBLE_EQ(rows->array[0].find("x")->number, 1.0);
  EXPECT_DOUBLE_EQ(rows->array[1].find("rate")->number, 4.9e6);
  // Column order is preserved: plots rely on the first column as the axis.
  EXPECT_EQ(rows->array[0].object.front().first, "x");
}

TEST(BenchReport, FlushWritesFileWhenEnvSet) {
  const std::string dir = std::string(::testing::TempDir()) + "/bench-json";
  ASSERT_EQ(setenv("VMC_BENCH_JSON", dir.c_str(), 1), 0);
  {
    bench::Report report("flush_probe", "Test Artifact", "flush check");
    report.row({{"v", 1.0}});
  }  // dtor flushes
  ASSERT_EQ(unsetenv("VMC_BENCH_JSON"), 0);

  std::ifstream in(dir + "/BENCH_flush_probe.json");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = obs::json_parse(ss.str());
  EXPECT_EQ(doc.find("name")->string, "flush_probe");
}

TEST(BenchReport, NoEnvMeansNoFile) {
  ASSERT_EQ(unsetenv("VMC_BENCH_JSON"), 0);
  bench::Report report("silent_probe", "Test Artifact", "no-env check");
  report.row({{"v", 1.0}});
  EXPECT_NO_THROW(report.flush());
}

}  // namespace
