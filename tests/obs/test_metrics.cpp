// Metrics registry: handle semantics, series dedup, histogram bucket edges,
// quantile estimation, and both export formats.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace vmc::obs;

TEST(Metrics, CounterIncrementsAndDedups) {
  MetricsRegistry reg;
  const Counter a = reg.counter("vmc_test_total", {{"k", "v"}});
  const Counter b = reg.counter("vmc_test_total", {{"k", "v"}});
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);  // same cell: one series per (name, labels)
  const Counter other = reg.counter("vmc_test_total", {{"k", "w"}});
  other.inc();
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(other.value(), 1u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  const Counter a = reg.counter("vmc_lbl_total", {{"a", "1"}, {"b", "2"}});
  const Counter b = reg.counter("vmc_lbl_total", {{"b", "2"}, {"a", "1"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(1.0);
  g.add(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("vmc_mixed");
  EXPECT_THROW(reg.gauge("vmc_mixed"), std::logic_error);
  reg.histogram("vmc_h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("vmc_h", {1.0, 3.0}), std::logic_error);
  EXPECT_NO_THROW(reg.histogram("vmc_h", {1.0, 2.0}));
}

TEST(Metrics, HistogramBoundsMustBeValid) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("vmc_empty", {}), std::logic_error);
  EXPECT_THROW(reg.histogram("vmc_unsorted", {2.0, 1.0}), std::logic_error);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("vmc_g");
  g.set(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, HistogramBucketEdges) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("vmc_edges", {1.0, 10.0});
  h.observe(-5.0);  // below the first bound -> bucket 0
  h.observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.observe(5.0);   // interior
  h.observe(10.0);  // exactly on the last bound
  h.observe(11.0);  // above every bound -> overflow bucket
  h.observe(std::numeric_limits<double>::infinity());

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.families.size(), 1u);
  const SeriesSnapshot& s = snap.families[0].series[0];
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[0], 2u);  // -5, 1.0
  EXPECT_EQ(s.bucket_counts[1], 2u);  // 5, 10.0
  EXPECT_EQ(s.bucket_counts[2], 2u);  // 11, inf
  EXPECT_EQ(s.hist_count, 6u);
}

TEST(Metrics, HistogramQuantileEdgeCases) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  // Empty data and invalid q are NaN, never a crash.
  EXPECT_TRUE(std::isnan(histogram_quantile(bounds, {0, 0, 0, 0}, 0.5)));
  EXPECT_TRUE(std::isnan(histogram_quantile(bounds, {1, 1, 1, 1}, -0.1)));
  EXPECT_TRUE(std::isnan(histogram_quantile(bounds, {1, 1, 1, 1}, 1.1)));
  EXPECT_TRUE(std::isnan(histogram_quantile(bounds, {1, 1}, 0.5)));  // size
  EXPECT_TRUE(std::isnan(histogram_quantile({}, {}, 0.5)));

  // All mass in one interior bucket: the quantile interpolates inside it.
  const double q50 = histogram_quantile(bounds, {0, 10, 0, 0}, 0.5);
  EXPECT_GT(q50, 1.0);
  EXPECT_LE(q50, 2.0);

  // Mass in the overflow bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, {0, 0, 0, 5}, 0.99), 4.0);

  // Monotone in q.
  const std::vector<std::uint64_t> counts{5, 10, 20, 2};
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double v = histogram_quantile(bounds, counts, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Metrics, PrometheusExpositionIsValidAndCumulative) {
  MetricsRegistry reg;
  reg.counter("vmc_c_total", {{"isa", "avx2"}}, "a counter").inc(3);
  reg.gauge("vmc_g", {}, "a gauge").set(2.5);
  const Histogram h = reg.histogram("vmc_h_seconds", {0.1, 1.0}, {}, "hist");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = reg.snapshot().prometheus();
  std::string err;
  EXPECT_TRUE(prometheus_validate(text, &err)) << err;
  EXPECT_NE(text.find("# TYPE vmc_c_total counter"), std::string::npos);
  EXPECT_NE(text.find("vmc_c_total{isa=\"avx2\"} 3"), std::string::npos);
  // Buckets are cumulative on export even though snapshots are per-bucket.
  EXPECT_NE(text.find("vmc_h_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("vmc_h_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("vmc_h_seconds_count 3"), std::string::npos);
}

TEST(Metrics, NonFiniteGaugesExportAsPrometheusTokens) {
  MetricsRegistry reg;
  reg.gauge("vmc_nan").set(std::nan(""));
  reg.gauge("vmc_inf").set(std::numeric_limits<double>::infinity());
  const std::string text = reg.snapshot().prometheus();
  std::string err;
  EXPECT_TRUE(prometheus_validate(text, &err)) << err;
  EXPECT_NE(text.find("vmc_nan NaN"), std::string::npos);
  EXPECT_NE(text.find("vmc_inf +Inf"), std::string::npos);
}

TEST(Metrics, LabelValuesWithQuotesAndNewlinesStillValidate) {
  MetricsRegistry reg;
  reg.counter("vmc_esc_total", {{"path", "a\"b\\c\nd"}}).inc();
  std::string err;
  EXPECT_TRUE(prometheus_validate(reg.snapshot().prometheus(), &err)) << err;
}

TEST(Metrics, JsonSnapshotParses) {
  MetricsRegistry reg;
  reg.counter("vmc_j_total").inc(2);
  reg.histogram("vmc_j_h", {1.0}).observe(0.5);
  const std::string text = reg.snapshot().json();
  const JsonValue doc = json_parse(text);
  EXPECT_EQ(doc.find("schema")->string, "vectormc.metrics.v1");
  ASSERT_EQ(doc.find("families")->array.size(), 2u);
}

TEST(Metrics, ResetZeroesKeepsRegistrations) {
  MetricsRegistry reg;
  const Counter c = reg.counter("vmc_r_total");
  c.inc(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // handle still live, cell zeroed
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, SanitizeMetricName) {
  EXPECT_EQ(sanitize_metric_name("vmc_ok:name_1"), "vmc_ok:name_1");
  EXPECT_EQ(sanitize_metric_name("1bad name-x"), "_bad_name_x");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  const Counter c = reg.counter("vmc_mt_total");
  const Histogram h = reg.histogram("vmc_mt_h", {0.5});
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
