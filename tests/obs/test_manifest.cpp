// Run manifest: document shape, machine/build capture, k-history fidelity,
// fault summary, and embedded metric snapshots.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "resil/fault.hpp"

namespace {

using namespace vmc::obs;

JsonValue parse_manifest(const RunManifest& m) { return json_parse(m.json()); }

TEST(Manifest, MinimalDocumentHasSchemaAndMachine) {
  RunManifest m;
  const JsonValue doc = parse_manifest(m);
  EXPECT_EQ(doc.find("schema")->string, "vectormc.manifest.v1");
  const JsonValue* machine = doc.find("machine");
  ASSERT_NE(machine, nullptr);
  EXPECT_FALSE(machine->find("isa")->string.empty());
  EXPECT_GT(machine->find("simd_bits")->number, 0.0);
  const JsonValue* build = doc.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->find("compiler")->string.empty());
  // ISO-8601 UTC stamp: "YYYY-MM-DDThh:mm:ssZ".
  const std::string& ts = doc.find("timestamp_utc")->string;
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Manifest, SeedIsNullUntilSet) {
  RunManifest m;
  EXPECT_TRUE(parse_manifest(m).find("seed")->is_null());
  m.set_seed(42);
  EXPECT_DOUBLE_EQ(parse_manifest(m).find("seed")->number, 42.0);
}

TEST(Manifest, KHistoryRoundTripsExactly) {
  const std::vector<double> k{1.0123456789012345, 0.98765432109876543, 1.5};
  RunManifest m;
  m.set_run_kind("test").set_k_history(k);
  const JsonValue doc = parse_manifest(m);
  EXPECT_EQ(doc.find("run_kind")->string, "test");
  const JsonValue* hist = doc.find("k_history");
  ASSERT_EQ(hist->array.size(), k.size());
  for (std::size_t i = 0; i < k.size(); ++i) {
    // %.17g is exact for doubles: the parsed value must be bit-identical.
    EXPECT_EQ(hist->array[i].number, k[i]);
  }
}

TEST(Manifest, ExtrasKeepStringsAndNumbers) {
  RunManifest m;
  m.set_extra("scenario", "pipeline \"quoted\"").set_extra("n", 1e5);
  const JsonValue doc = parse_manifest(m);
  const JsonValue* extra = doc.find("extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(extra->find("scenario")->string, "pipeline \"quoted\"");
  EXPECT_DOUBLE_EQ(extra->find("n")->number, 1e5);
}

TEST(Manifest, FaultSummaryRecordsFires) {
  vmc::resil::FaultPlan plan;
  plan.always("offload.compute", /*key=*/0);
  {
    vmc::resil::PlanGuard guard(plan);
    EXPECT_TRUE(vmc::resil::fault_fires("offload.compute", 0));
  }
  // Counters survive disarm: capture after the faulted section still works.
  RunManifest m;
  m.capture_fault_summary();
  const JsonValue doc = parse_manifest(m);
  const JsonValue* faults = doc.find("fault_summary");
  ASSERT_NE(faults, nullptr);
  bool found = false;
  for (const JsonValue& f : faults->array) {
    if (f.find("point")->string != "offload.compute") continue;
    found = true;
    EXPECT_GE(f.find("hits")->number, 1.0);
    EXPECT_GE(f.find("fires")->number, 1.0);
  }
  EXPECT_TRUE(found);
}

TEST(Manifest, CaptureMetricsEmbedsSnapshot) {
  metrics().counter("vmc_manifest_probe_total").inc();
  RunManifest m;
  m.capture_metrics();
  const JsonValue doc = parse_manifest(m);
  const JsonValue* snap = doc.find("metrics");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->find("schema")->string, "vectormc.metrics.v1");
  bool found = false;
  for (const JsonValue& f : snap->find("families")->array) {
    if (f.find("name")->string == "vmc_manifest_probe_total") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Manifest, WriteProducesParseableFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/manifest-test.json";
  RunManifest m;
  m.set_run_kind("write_test");
  m.write(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(json_parse(ss.str()).find("run_kind")->string, "write_test");
}

}  // namespace
