// Tracer: enable/disable gating, span balance, ring overflow accounting,
// device-track injection, and Chrome trace_event export shape.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace {

using namespace vmc::obs;

const JsonValue* events_of(const JsonValue& doc) {
  const JsonValue* ev = doc.find("traceEvents");
  EXPECT_NE(ev, nullptr);
  return ev;
}

std::size_t count_named(const JsonValue& doc, const std::string& name) {
  std::size_t n = 0;
  for (const JsonValue& e : events_of(doc)->array) {
    const JsonValue* en = e.find("name");
    if (en != nullptr && en->string == name) ++n;
  }
  return n;
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer t;
  t.begin("span", "cat");
  t.end();
  t.instant("tick", "cat");
  t.inject_span(Tracer::kDevicePid, 1, "model", "cat", 0.0, 1.0);
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_TRUE(events_of(doc)->array.empty());
}

TEST(Trace, SpansAndInstantsExport) {
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Scope outer(t, "outer", "test");
    Tracer::Scope inner(t, "inner", "test");
    t.instant("mark", "test");
  }
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_EQ(count_named(doc, "outer"), 1u);
  EXPECT_EQ(count_named(doc, "inner"), 1u);
  EXPECT_EQ(count_named(doc, "mark"), 1u);
  for (const JsonValue& e : events_of(doc)->array) {
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "X") continue;
    EXPECT_DOUBLE_EQ(e.find("pid")->number, Tracer::kHostPid);
    EXPECT_GE(e.find("dur")->number, 0.0);
  }
}

TEST(Trace, UnbalancedEndIsDropped) {
  Tracer t;
  t.set_enabled(true);
  t.end();  // nothing open: must not crash or emit
  t.begin("only", "test");
  t.end();
  t.end();
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_EQ(count_named(doc, "only"), 1u);
}

TEST(Trace, InjectedSpanLandsOnDeviceTrackWithArgs) {
  Tracer t;
  t.set_enabled(true);
  t.set_process_name(Tracer::kDevicePid, "mic (cost model)");
  t.set_thread_name(Tracer::kDevicePid, 2, "pcie");
  t.inject_span(Tracer::kDevicePid, 2, "model:transfer", "offload-model", 0.5,
                0.25, "{\"bytes\": 1024}");
  t.inject_instant(Tracer::kDevicePid, 2, "model:done", "offload-model", 0.75);

  const JsonValue doc = json_parse(t.chrome_json());
  bool found = false;
  for (const JsonValue& e : events_of(doc)->array) {
    if (e.find("name")->string != "model:transfer") continue;
    found = true;
    EXPECT_DOUBLE_EQ(e.find("pid")->number, Tracer::kDevicePid);
    EXPECT_DOUBLE_EQ(e.find("tid")->number, 2.0);
    EXPECT_DOUBLE_EQ(e.find("ts")->number, 0.5e6);   // microseconds
    EXPECT_DOUBLE_EQ(e.find("dur")->number, 0.25e6);
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("bytes")->number, 1024.0);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(count_named(doc, "process_name"), 1u);
  EXPECT_EQ(count_named(doc, "thread_name"), 1u);
}

TEST(Trace, InvalidInjectedArgsThrow) {
  Tracer t;
  t.set_enabled(true);
  EXPECT_THROW(
      t.inject_span(Tracer::kDevicePid, 1, "bad", "cat", 0.0, 1.0, "{oops"),
      std::logic_error);
}

TEST(Trace, RingOverflowIsCountedNotSilent) {
  Tracer t(/*ring_capacity=*/8);
  t.set_enabled(true);
  for (int i = 0; i < 100; ++i) t.instant("tick", "test");
  EXPECT_GT(t.dropped(), 0u);
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_LE(count_named(doc, "tick"), 8u);
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_GT(other->find("dropped_events")->number, 0.0);
}

TEST(Trace, ThreadsGetDistinctTids) {
  Tracer t;
  t.set_enabled(true);
  t.instant("main", "test");
  std::thread w([&t] { t.instant("worker", "test"); });
  w.join();
  const JsonValue doc = json_parse(t.chrome_json());
  double tid_main = -1.0;
  double tid_worker = -1.0;
  for (const JsonValue& e : events_of(doc)->array) {
    if (e.find("name")->string == "main") tid_main = e.find("tid")->number;
    if (e.find("name")->string == "worker") tid_worker = e.find("tid")->number;
  }
  EXPECT_GE(tid_main, 0.0);
  EXPECT_GE(tid_worker, 0.0);
  EXPECT_NE(tid_main, tid_worker);
}

TEST(Trace, EventsAreSortedByTimestamp) {
  Tracer t;
  t.set_enabled(true);
  t.inject_instant(Tracer::kDevicePid, 1, "late", "test", 2.0);
  t.inject_instant(Tracer::kDevicePid, 1, "early", "test", 1.0);
  const JsonValue doc = json_parse(t.chrome_json());
  double prev = -1.0;
  for (const JsonValue& e : events_of(doc)->array) {
    if (e.find("ph")->string == "M") continue;  // metadata leads
    EXPECT_GE(e.find("ts")->number, prev);
    prev = e.find("ts")->number;
  }
}

TEST(Trace, ClearDropsEventsKeepsNames) {
  Tracer t;
  t.set_enabled(true);
  t.set_process_name(Tracer::kHostPid, "host");
  t.instant("gone", "test");
  t.clear();
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_EQ(count_named(doc, "gone"), 0u);
  EXPECT_EQ(count_named(doc, "process_name"), 1u);
}

TEST(Trace, ScopeCapturesEnablednessAtConstruction) {
  Tracer t;
  t.set_enabled(true);
  {
    Tracer::Scope s(t, "flip", "test");
    t.set_enabled(false);  // the scope must still close its span
  }
  t.set_enabled(true);
  const JsonValue doc = json_parse(t.chrome_json());
  EXPECT_EQ(count_named(doc, "flip"), 1u);
}

}  // namespace
