// Profiler: nesting (inclusive vs. exclusive), per-thread aggregation,
// injected samples, and the comparison-profile report.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace {

using namespace vmc::prof;

void spin_for(double seconds) {
  const double t0 = now_seconds();
  while (now_seconds() - t0 < seconds) {
  }
}

TEST(Profiler, HandleIsStablePerName) {
  Registry r;
  const TimerHandle a = r.handle("foo");
  const TimerHandle b = r.handle("foo");
  const TimerHandle c = r.handle("bar");
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(a.index, c.index);
}

TEST(Profiler, CountsCallsAndTime) {
  Registry r;
  const TimerHandle h = r.handle("work");
  for (int i = 0; i < 5; ++i) {
    ScopedTimer t(r, h);
    spin_for(0.002);
  }
  const Profile p = r.snapshot("test");
  ASSERT_TRUE(p.timers.count("work"));
  const TimerStats& st = p.timers.at("work");
  EXPECT_EQ(st.calls, 5u);
  EXPECT_GE(st.inclusive_s, 0.009);
  EXPECT_NEAR(st.inclusive_s, st.exclusive_s, 1e-9);
}

TEST(Profiler, NestedTimersSplitExclusiveTime) {
  Registry r;
  const TimerHandle outer = r.handle("outer");
  const TimerHandle inner = r.handle("inner");
  {
    ScopedTimer t(r, outer);
    spin_for(0.004);
    {
      ScopedTimer u(r, inner);
      spin_for(0.006);
    }
  }
  const Profile p = r.snapshot("nested");
  const auto& o = p.timers.at("outer");
  const auto& i = p.timers.at("inner");
  EXPECT_GE(o.inclusive_s, 0.009);
  EXPECT_LT(o.exclusive_s, o.inclusive_s);
  EXPECT_NEAR(o.exclusive_s, o.inclusive_s - i.inclusive_s, 1e-6);
  EXPECT_GE(i.exclusive_s, 0.005);
}

TEST(Profiler, AggregatesAcrossThreads) {
  Registry r;
  const TimerHandle h = r.handle("mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r, h] {
      for (int i = 0; i < 3; ++i) {
        ScopedTimer s(r, h);
        spin_for(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Profile p = r.snapshot("mt");
  EXPECT_EQ(p.timers.at("mt").calls, 12u);
  EXPECT_GE(p.timers.at("mt").inclusive_s, 0.010);
}

TEST(Profiler, AddSampleInjectsModeledTime) {
  Registry r;
  const TimerHandle h = r.handle("modeled");
  r.add_sample(h, 3.5, 7);
  const Profile p = r.snapshot("m");
  EXPECT_EQ(p.timers.at("modeled").calls, 7u);
  EXPECT_DOUBLE_EQ(p.timers.at("modeled").exclusive_s, 3.5);
}

TEST(Profiler, ResetClearsData) {
  Registry r;
  const TimerHandle h = r.handle("x");
  r.add_sample(h, 1.0);
  r.reset();
  const Profile p = r.snapshot("after");
  EXPECT_TRUE(p.timers.empty());
}

TEST(Profile, ByExclusiveSortsDescending) {
  Profile p;
  p.timers["a"] = {1, 1.0, 0.5};
  p.timers["b"] = {1, 2.0, 2.0};
  p.timers["c"] = {1, 1.0, 1.0};
  const auto v = p.by_exclusive();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].first, "b");
  EXPECT_EQ(v[1].first, "c");
  EXPECT_EQ(v[2].first, "a");
  EXPECT_DOUBLE_EQ(p.total_exclusive(), 3.5);
}

TEST(Report, ComparisonProfileContainsRatios) {
  Profile host;
  host.label = "Host CPU";
  host.timers["calculate_xs"] = {100, 9.0, 9.0};
  host.timers["collide"] = {50, 2.0, 2.0};
  Profile mic;
  mic.label = "MIC native";
  mic.timers["calculate_xs"] = {100, 6.0, 6.0};
  mic.timers["collide"] = {50, 3.0, 3.0};

  std::ostringstream os;
  print_comparison(os, host, mic);
  const std::string out = os.str();
  EXPECT_NE(out.find("calculate_xs"), std::string::npos);
  EXPECT_NE(out.find("1.50x"), std::string::npos);  // 9.0 / 6.0
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

TEST(Report, FlatProfilePrintsTopN) {
  Profile p;
  p.label = "flat";
  for (int i = 0; i < 30; ++i) {
    p.timers["routine_" + std::to_string(i)] = {1, 1.0 * i, 1.0 * i};
  }
  std::ostringstream os;
  print_profile(os, p, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("routine_29"), std::string::npos);
  EXPECT_EQ(out.find("routine_0\n"), std::string::npos);
}

TEST(Report, FormatSecondsUnits) {
  EXPECT_EQ(format_seconds(250.0), "250 s");
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0025), "2.5 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
}

}  // namespace
