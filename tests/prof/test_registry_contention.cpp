// Contention regression for prof::Registry::handle(): the hot path is a
// shared-lock probe of an existing name, so many threads resolving the same
// handles concurrently — while other threads register fresh names and take
// snapshots — must neither corrupt the name table nor serialize the readers
// into a crawl. Thread counts mirror the chaos/stress harnesses.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "prof/profiler.hpp"

namespace {

using namespace vmc::prof;

TEST(RegistryContention, HandleLookupsStayConsistentUnderChaosThreadCounts) {
  Registry reg;
  constexpr int kNames = 64;
  constexpr int kReaders = 32;
  constexpr int kLookupsPerReader = 20000;

  // Pre-register the working set and remember the authoritative indices.
  std::vector<TimerHandle> expected;
  expected.reserve(kNames);
  for (int i = 0; i < kNames; ++i) {
    expected.push_back(reg.handle("timer_" + std::to_string(i)));
  }

  std::atomic<bool> mismatch{false};
  std::atomic<int> writer_names{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 2);

  // Readers: hammer the read-mostly fast path on existing names.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&reg, &expected, &mismatch, t] {
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const int name = (i + t) % kNames;
        const TimerHandle h = reg.handle("timer_" + std::to_string(name));
        if (h.index != expected[static_cast<std::size_t>(name)].index) {
          mismatch.store(true);
        }
      }
    });
  }

  // One writer keeps inserting fresh names so the readers' shared lock races
  // a real exclusive path, not an idle one.
  threads.emplace_back([&reg, &writer_names] {
    for (int i = 0; i < 2000; ++i) {
      reg.handle("fresh_" + std::to_string(i));
      writer_names.fetch_add(1);
    }
  });

  // One snapshotter races the whole table.
  threads.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) (void)reg.snapshot("contention");
  });

  for (auto& th : threads) th.join();

  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(writer_names.load(), 2000);
  // Every name registered during the storm resolves to a distinct handle.
  for (int i = 0; i < 2000; ++i) {
    const TimerHandle h = reg.handle("fresh_" + std::to_string(i));
    EXPECT_LT(h.index, reg.handle("one_more").index);
  }
}

TEST(RegistryContention, TimersRecordCorrectlyDuringHandleStorm) {
  Registry reg;
  const TimerHandle shared = reg.handle("shared_work");
  constexpr int kThreads = 16;
  constexpr int kCalls = 500;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, shared, t] {
      for (int i = 0; i < kCalls; ++i) {
        // Interleave lookups (fast path) with real timed sections.
        (void)reg.handle("storm_" + std::to_string((i + t) % 8));
        ScopedTimer timer(reg, shared);
      }
    });
  }
  for (auto& th : threads) th.join();

  const Profile p = reg.snapshot("storm");
  ASSERT_TRUE(p.timers.count("shared_work"));
  EXPECT_EQ(p.timers.at("shared_work").calls,
            static_cast<std::uint64_t>(kThreads) * kCalls);
}

}  // namespace
