// StreamSet (the VSL substitute): the vectorized leap-frog fill must equal
// the scalar stream draw-for-draw, streams must be independent, and the
// rand_r clone must match the C-standard reference.
#include <gtest/gtest.h>

#include <vector>

#include "rng/streamset.hpp"

namespace {

using namespace vmc::rng;

class FillSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FillSizeTest, VectorFillEqualsScalarFill) {
  const std::size_t n = GetParam();
  StreamSet a(4, 123);
  StreamSet b(4, 123);
  std::vector<float> va(n), vb(n);
  a.fill_uniform(1, va);
  b.fill_uniform_scalar(1, vb);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(va[i], vb[i]) << "i=" << i << " n=" << n;
  }
  EXPECT_EQ(a.state(1), b.state(1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FillSizeTest,
                         ::testing::Values(0, 1, 7, 8, 15, 16, 17, 100, 1000,
                                           4096, 10001));

TEST(StreamSet, ConsecutiveFillsContinueTheSequence) {
  StreamSet a(1, 9);
  StreamSet b(1, 9);
  std::vector<float> whole(1000);
  a.fill_uniform(0, whole);
  std::vector<float> part1(300), part2(700);
  b.fill_uniform(0, part1);
  b.fill_uniform(0, part2);
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(whole[i], part1[i]);
  for (std::size_t i = 0; i < 700; ++i) EXPECT_EQ(whole[300 + i], part2[i]);
}

TEST(StreamSet, DoubleFillContinuesStateConsistently) {
  StreamSet a(2, 5);
  std::vector<double> d(513);
  a.fill_uniform(0, d);
  for (const double x : d) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  // Same draws as a raw stream at the same position.
  Stream ref(lcg_skip_ahead(5, 0));
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i], ref.next());
  }
}

TEST(StreamSet, StreamsAreIndependent) {
  StreamSet set(8, 77);
  std::vector<float> s0(256), s1(256);
  set.fill_uniform(0, s0);
  set.fill_uniform(1, s1);
  int same = 0;
  for (std::size_t i = 0; i < 256; ++i) {
    if (s0[i] == s1[i]) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(StreamSet, UniformityOfVectorFill) {
  StreamSet set(1, 31337);
  std::vector<float> v(200000);
  set.fill_uniform(0, v);
  double sum = 0.0, sum2 = 0.0;
  for (const float x : v) {
    sum += x;
    sum2 += static_cast<double>(x) * x;
  }
  const double mean = sum / static_cast<double>(v.size());
  const double var = sum2 / static_cast<double>(v.size()) - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(PosixRandR, MatchesReferenceImplementation) {
  // The C standard's sample implementation, literally.
  const auto reference = [](unsigned* seedp) {
    *seedp = *seedp * 1103515245u + 12345u;
    return static_cast<int>((*seedp / 65536u) % 32768u);
  };
  unsigned s1 = 1, s2 = 1;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(posix_rand_r(&s1), reference(&s2));
  }
}

TEST(PosixRandR, StaysInRange) {
  unsigned s = 42;
  for (int i = 0; i < 10000; ++i) {
    const int r = posix_rand_r(&s);
    EXPECT_GE(r, 0);
    EXPECT_LE(r, kPosixRandMax);
  }
}

}  // namespace
