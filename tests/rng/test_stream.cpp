// Per-particle streams and the sampling helpers of Section II-A2.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rng/stream.hpp"

namespace {

using namespace vmc::rng;

TEST(Stream, ParticleStreamsAreDisjointWindows) {
  // Particle i's stream is the master sequence offset by i*kParticleStride:
  // drawing fewer than kParticleStride numbers never overlaps neighbours.
  const std::uint64_t master = 42;
  Stream a = Stream::for_particle(master, 0);
  Stream b = Stream::for_particle(master, 1);
  a.skip(kParticleStride);
  EXPECT_EQ(a.state(), b.state());
}

TEST(Stream, DeterministicForSameParticleId) {
  Stream a = Stream::for_particle(7, 999);
  Stream b = Stream::for_particle(7, 999);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Stream, DifferentIdsProduceDifferentSequences) {
  Stream a = Stream::for_particle(7, 1);
  Stream b = Stream::for_particle(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Stream, SkipMatchesDraws) {
  Stream a(12345);
  Stream b(12345);
  for (int i = 0; i < 57; ++i) a.next();
  b.skip(57);
  EXPECT_EQ(a.state(), b.state());
}

TEST(SampleDistance, MeanIsInverseSigma) {
  // <d> = 1 / Sigma_t for the exponential free-flight distribution (Eq. 1).
  Stream s(1);
  for (double sigma : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += sample_distance(s, sigma);
    EXPECT_NEAR(sum / n, 1.0 / sigma, 0.02 / sigma);
  }
}

TEST(SampleDistance, AlwaysNonNegative) {
  Stream s(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(sample_distance(s, 0.8), 0.0);
  }
}

TEST(SampleMu, UniformOnMinusOneOne) {
  Stream s(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double mu = sample_mu(s);
    EXPECT_GE(mu, -1.0);
    EXPECT_LE(mu, 1.0);
    sum += mu;
    sum2 += mu * mu;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0 / 3.0, 0.01);  // var of U(-1,1)
}

TEST(SamplePhi, CoversFullCircle) {
  Stream s(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double phi = sample_phi(s);
    EXPECT_GE(phi, 0.0);
    EXPECT_LT(phi, 2.0 * 3.14159265358979323846);
    sum += phi;
  }
  EXPECT_NEAR(sum / n, 3.14159265358979323846, 0.02);
}

TEST(SampleWatt, SpectrumMomentsMatchTheory) {
  // Watt(a, b): mean = 3a/2 + a^2 b / 4.
  Stream s(5);
  const double a = 0.988, b = 2.249;
  double sum = 0.0;
  const int n = 200000;
  double emax = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = sample_watt(s, a, b);
    EXPECT_GE(e, 0.0);
    sum += e;
    emax = std::max(emax, e);
  }
  const double mean_theory = 1.5 * a + 0.25 * a * a * b;
  EXPECT_NEAR(sum / n, mean_theory, 0.02 * mean_theory);
  EXPECT_GT(emax, 8.0);   // a fission spectrum has a high-energy tail
  EXPECT_LT(emax, 60.0);  // but not an absurd one
}

TEST(SampleMaxwell, MeanIsThreeHalvesT) {
  Stream s(6);
  const double t = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += sample_maxwell(s, t);
  EXPECT_NEAR(sum / n, 1.5 * t, 0.01 * t);
}

TEST(Stream, FloatAndDoubleDrawsAdvanceEqually) {
  Stream a(99), b(99);
  for (int i = 0; i < 10; ++i) {
    a.next();
    b.next_float();
  }
  EXPECT_EQ(a.state(), b.state());
}

}  // namespace
