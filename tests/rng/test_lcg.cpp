// LCG core: skip-ahead correctness (the property the whole parallel RNG
// scheme rests on), jump composition, and output mapping.
#include <gtest/gtest.h>

#include <cstdint>

#include "rng/lcg.hpp"

namespace {

using namespace vmc::rng;

TEST(Lcg, SkipAheadMatchesSequentialStepping) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0x123456789ULL}) {
    std::uint64_t x = seed & kLcgMask;
    for (std::uint64_t n = 0; n <= 1000; ++n) {
      EXPECT_EQ(lcg_skip_ahead(seed, n), x) << "seed=" << seed << " n=" << n;
      x = lcg_next(x);
    }
  }
}

class LcgSkipParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcgSkipParam, LargeSkipsComposeCorrectly) {
  const std::uint64_t n = GetParam();
  const std::uint64_t seed = 7;
  // skip(a+b) == skip(a) then skip(b)
  const std::uint64_t direct = lcg_skip_ahead(seed, 2 * n + 3);
  const std::uint64_t composed =
      lcg_skip_ahead(lcg_skip_ahead(lcg_skip_ahead(seed, n), n), 3);
  EXPECT_EQ(direct, composed);
}

INSTANTIATE_TEST_SUITE_P(Skips, LcgSkipParam,
                         ::testing::Values(1ULL, 152917ULL, 1ULL << 20,
                                           1ULL << 40, (1ULL << 62) + 12345));

TEST(Lcg, JumpCompositionIsAssociative) {
  const LcgJump a = lcg_jump(12345);
  const LcgJump b = lcg_jump(67890);
  const LcgJump c = lcg_jump(13);
  const std::uint64_t seed = 991;
  EXPECT_EQ((c * (b * a))(seed), ((c * b) * a)(seed));
  EXPECT_EQ((b * a)(seed), lcg_skip_ahead(seed, 12345 + 67890));
}

TEST(Lcg, ZeroSkipIsIdentity) {
  EXPECT_EQ(lcg_skip_ahead(12345, 0), 12345ULL);
  const LcgJump id = lcg_jump(0);
  EXPECT_EQ(id.mult, 1ULL);
  EXPECT_EQ(id.add, 0ULL);
}

TEST(Lcg, StateStaysIn63Bits) {
  std::uint64_t x = 1;
  for (int i = 0; i < 10000; ++i) {
    x = lcg_next(x);
    EXPECT_LE(x, kLcgMask);
  }
}

TEST(Lcg, OutputMappingInUnitInterval) {
  std::uint64_t x = 987654321;
  for (int i = 0; i < 10000; ++i) {
    x = lcg_next(x);
    const double d = lcg_to_double(x);
    const float f = lcg_to_float(x);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Lcg, UniformityMoments) {
  // Mean ~ 1/2, variance ~ 1/12 over a long run.
  std::uint64_t x = 1;
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    x = lcg_next(x);
    const double d = lcg_to_double(x);
    sum += d;
    sum2 += d * d;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Lcg, SerialCorrelationIsSmall) {
  std::uint64_t x = 31337;
  double prev = 0.5, cov = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    x = lcg_next(x);
    const double d = lcg_to_double(x);
    cov += (d - 0.5) * (prev - 0.5);
    prev = d;
  }
  EXPECT_NEAR(cov / n, 0.0, 0.002);
}

}  // namespace
