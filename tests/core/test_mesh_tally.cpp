// Mesh/energy tallies: binning, estimator math, projections, thread safety,
// and integration with the transport drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>

#include "core/eigenvalue.hpp"
#include "core/mesh_tally.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::core;

MeshTally::Spec unit_spec(int nx = 4, int ny = 4, int nz = 2) {
  MeshTally::Spec s;
  s.lower = {0, 0, 0};
  s.upper = {4, 4, 2};
  s.nx = nx;
  s.ny = ny;
  s.nz = nz;
  return s;
}

TEST(MeshTally, BinIndexingCoversTheBox) {
  MeshTally t(unit_spec());
  EXPECT_EQ(t.n_cells(), 32u);
  EXPECT_EQ(t.n_groups(), 1);
  // Corners and centers.
  EXPECT_EQ(t.bin_of({0.0, 0.0, 0.0}, 1.0), 0);
  EXPECT_EQ(t.bin_of({3.999, 3.999, 1.999}, 1.0),
            static_cast<std::int64_t>(t.n_cells()) - 1);
  EXPECT_EQ(t.bin_of({1.5, 0.5, 0.5}, 1.0), 1);  // ix=1, iy=0, iz=0
  // Outside.
  EXPECT_EQ(t.bin_of({-0.1, 1, 1}, 1.0), -1);
  EXPECT_EQ(t.bin_of({4.0, 1, 1}, 1.0), -1);  // upper edge is exclusive
  EXPECT_EQ(t.bin_of({1, 1, 2.5}, 1.0), -1);
}

TEST(MeshTally, EnergyGroupsSelectCorrectly) {
  MeshTally::Spec s = unit_spec(1, 1, 1);
  s.group_edges = {1e-11, 1e-6, 1e-3, 20.0};
  MeshTally t(s);
  EXPECT_EQ(t.n_groups(), 3);
  EXPECT_EQ(t.bin_of({1, 1, 1}, 1e-8), 0);   // thermal group
  EXPECT_EQ(t.bin_of({1, 1, 1}, 1e-5), 1);   // epithermal
  EXPECT_EQ(t.bin_of({1, 1, 1}, 2.0), 2);    // fast
  EXPECT_EQ(t.bin_of({1, 1, 1}, 1e-12), -1); // below structure
  EXPECT_EQ(t.bin_of({1, 1, 1}, 25.0), -1);  // above structure
}

TEST(MeshTally, CollisionEstimatorMath) {
  MeshTally t(unit_spec(1, 1, 1));
  t.score_collision({1, 1, 1}, 1.0, /*w=*/2.0, /*sigma_t=*/0.5,
                    /*nu_sigma_f=*/0.25);
  EXPECT_DOUBLE_EQ(t.flux(0), 2.0 / 0.5);
  EXPECT_DOUBLE_EQ(t.fission(0), 2.0 * 0.25 / 0.5);
  EXPECT_EQ(t.scored(), 1u);
  // Outside and degenerate sigma are dropped, not crashed.
  t.score_collision({10, 10, 10}, 1.0, 1.0, 1.0, 0.0);
  t.score_collision({1, 1, 1}, 1.0, 1.0, 0.0, 0.0);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(MeshTally, RadialMapAndSpectrumProjections) {
  MeshTally::Spec s = unit_spec(2, 2, 2);
  s.upper = {2, 2, 2};
  s.group_edges = {1e-11, 1e-3, 20.0};
  MeshTally t(s);
  // Score one collision in every (cell, group).
  for (double z : {0.5, 1.5}) {
    for (double y : {0.5, 1.5}) {
      for (double x : {0.5, 1.5}) {
        t.score_collision({x, y, z}, 1e-5, 1.0, 1.0, 0.5);  // group 0
        t.score_collision({x, y, z}, 1.0, 2.0, 1.0, 0.5);   // group 1
      }
    }
  }
  const auto radial = t.radial_flux_map();
  ASSERT_EQ(radial.size(), 4u);
  for (const double v : radial) {
    EXPECT_DOUBLE_EQ(v, 2.0 * (1.0 + 2.0));  // 2 z-planes x (w=1 + w=2)
  }
  const auto spectrum = t.energy_spectrum();
  ASSERT_EQ(spectrum.size(), 2u);
  EXPECT_DOUBLE_EQ(spectrum[0], 8.0);   // 8 cells x w=1
  EXPECT_DOUBLE_EQ(spectrum[1], 16.0);  // 8 cells x w=2
  const auto fission_map = t.radial_fission_map();
  EXPECT_DOUBLE_EQ(std::accumulate(fission_map.begin(), fission_map.end(), 0.0),
                   0.5 * (8.0 + 16.0));
}

TEST(MeshTally, ConcurrentScoringLosesNothing) {
  MeshTally t(unit_spec(1, 1, 1));
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kPer; ++j) {
        t.score_collision({1, 1, 1}, 1.0, 1.0, 2.0, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(t.flux(0), kThreads * kPer * 0.5);
  EXPECT_EQ(t.scored(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(MeshTally, ResetClears) {
  MeshTally t(unit_spec(1, 1, 1));
  t.score_collision({1, 1, 1}, 1.0, 1.0, 1.0, 1.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.flux(0), 0.0);
  EXPECT_EQ(t.scored(), 0u);
}

TEST(MeshTally, RejectsBadSpecs) {
  MeshTally::Spec s = unit_spec(0, 1, 1);
  EXPECT_THROW(MeshTally{s}, std::invalid_argument);
  s = unit_spec();
  s.upper = s.lower;
  EXPECT_THROW(MeshTally{s}, std::invalid_argument);
  s = unit_spec();
  s.group_edges = {2.0, 1.0};
  EXPECT_THROW(MeshTally{s}, std::invalid_argument);
}

TEST(LogGroupEdges, EqualLethargy) {
  const auto edges = log_group_edges(1e-9, 10.0, 10);
  ASSERT_EQ(edges.size(), 11u);
  EXPECT_DOUBLE_EQ(edges.front(), 1e-9);
  EXPECT_NEAR(edges.back(), 10.0, 1e-12);
  // Constant ratio between consecutive edges.
  const double ratio = edges[1] / edges[0];
  for (std::size_t i = 1; i + 1 < edges.size(); ++i) {
    EXPECT_NEAR(edges[i + 1] / edges[i], ratio, 1e-9 * ratio);
  }
  EXPECT_THROW(log_group_edges(0.0, 1.0, 4), std::invalid_argument);
}

// --- integration with the transport drivers --------------------------------

class MeshIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.12;
    mo.full_core = false;
    model_ = new vmc::hm::Model(vmc::hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static vmc::hm::Model* model_;
};

vmc::hm::Model* MeshIntegrationTest::model_ = nullptr;

TEST_F(MeshIntegrationTest, SimulationScoresOnlyActiveGenerations) {
  MeshTally::Spec spec;
  spec.lower = model_->source_lo;
  spec.upper = model_->source_hi;
  spec.nx = spec.ny = 4;
  spec.nz = 2;
  spec.group_edges = log_group_edges(1e-11, 20.0, 8);
  MeshTally mesh(spec);

  Settings s;
  s.n_particles = 600;
  s.n_inactive = 2;
  s.n_active = 0;  // inactive only: nothing may be scored
  s.source_lo = model_->source_lo;
  s.source_hi = model_->source_hi;
  s.mesh_tally = &mesh;
  Simulation(model_->geometry, model_->library, s).run();
  EXPECT_EQ(mesh.scored(), 0u);

  s.n_inactive = 1;
  s.n_active = 2;
  Simulation(model_->geometry, model_->library, s).run();
  EXPECT_GT(mesh.scored(), 1000u);
}

TEST_F(MeshIntegrationTest, SpectrumShowsThermalAndFastPopulations) {
  // A moderated reactor spectrum has flux both near the Watt birth energies
  // (MeV) and in the thermal range after slow-down.
  MeshTally::Spec spec;
  spec.lower = model_->source_lo;
  spec.upper = model_->source_hi;
  spec.nx = spec.ny = spec.nz = 1;
  spec.group_edges = log_group_edges(1e-11, 20.0, 12);
  MeshTally mesh(spec);

  Settings s;
  s.n_particles = 2000;
  s.n_inactive = 1;
  s.n_active = 3;
  s.source_lo = model_->source_lo;
  s.source_hi = model_->source_hi;
  s.mesh_tally = &mesh;
  Simulation(model_->geometry, model_->library, s).run();

  const auto spectrum = mesh.energy_spectrum();
  const double total = std::accumulate(spectrum.begin(), spectrum.end(), 0.0);
  ASSERT_GT(total, 0.0);
  // Thermal third and fast third both hold a nontrivial share of the flux.
  double thermal = 0.0, fast = 0.0;
  for (std::size_t g = 0; g < 4; ++g) thermal += spectrum[g];
  for (std::size_t g = 8; g < 12; ++g) fast += spectrum[g];
  EXPECT_GT(thermal / total, 0.02);
  EXPECT_GT(fast / total, 0.02);
}

TEST_F(MeshIntegrationTest, HistoryAndEventModesScoreConsistently) {
  const auto run_mode = [&](TransportMode mode) {
    MeshTally::Spec spec;
    spec.lower = model_->source_lo;
    spec.upper = model_->source_hi;
    spec.nx = spec.ny = 2;
    spec.nz = 1;
    MeshTally mesh(spec);
    Settings s;
    s.n_particles = 1500;
    s.n_inactive = 1;
    s.n_active = 2;
    s.mode = mode;
    s.source_lo = model_->source_lo;
    s.source_hi = model_->source_hi;
    s.mesh_tally = &mesh;
    Simulation(model_->geometry, model_->library, s).run();
    const auto m = mesh.radial_flux_map();
    return std::accumulate(m.begin(), m.end(), 0.0);
  };
  const double hist = run_mode(TransportMode::history);
  const double evt = run_mode(TransportMode::event);
  EXPECT_NEAR(evt, hist, 0.10 * hist);
}

}  // namespace
