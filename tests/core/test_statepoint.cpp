// Statepoint I/O: round-trip fidelity and the restart-equivalence property —
// a campaign split across a checkpoint reproduces the unsplit campaign
// generation for generation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/eigenvalue.hpp"
#include "core/statepoint.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(StatePoint, RoundTripsAllFields) {
  StatePoint sp;
  sp.seed = 0xDEADBEEF;
  sp.resample_state = 123456789;
  sp.generations_completed = 7;
  sp.k_history = {1.01, 0.99, 1.002};
  for (int i = 0; i < 100; ++i) {
    sp.source.push_back(FissionSite{{0.5 * i, -0.25 * i, 3.0}, 2.0e6 + i});
  }
  const std::string path = temp_path("roundtrip.vmcs");
  write_statepoint(path, sp);
  const StatePoint back = read_statepoint(path);
  EXPECT_TRUE(back == sp);
  std::remove(path.c_str());
}

TEST(StatePoint, EmptyBankAndHistoryAreValid) {
  StatePoint sp;
  sp.seed = 1;
  const std::string path = temp_path("empty.vmcs");
  write_statepoint(path, sp);
  EXPECT_TRUE(read_statepoint(path) == sp);
  std::remove(path.c_str());
}

TEST(StatePoint, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(read_statepoint(temp_path("does-not-exist.vmcs")),
               std::runtime_error);

  const std::string path = temp_path("corrupt.vmcs");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a statepoint at all", f);
  std::fclose(f);
  EXPECT_THROW(read_statepoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StatePoint, RejectsTruncation) {
  StatePoint sp;
  sp.seed = 5;
  sp.source.push_back(FissionSite{{1, 2, 3}, 4.0});
  const std::string path = temp_path("trunc.vmcs");
  write_statepoint(path, sp);
  // Chop the tail off.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 9), 0);
  EXPECT_THROW(read_statepoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StatePoint, RejectsTrailingGarbage) {
  // A longer-than-declared file (torn rename, concatenated junk) is as
  // corrupt as a truncated one.
  StatePoint sp;
  sp.seed = 6;
  sp.k_history = {1.0, 1.01};
  sp.source.push_back(FissionSite{{1, 2, 3}, 4.0});
  const std::string path = temp_path("tail.vmcs");
  write_statepoint(path, sp);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("junk", f);
  std::fclose(f);
  EXPECT_THROW(read_statepoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StatePoint, RejectsBitFlippedPayload) {
  StatePoint sp;
  sp.seed = 7;
  for (int i = 0; i < 20; ++i) {
    sp.source.push_back(FissionSite{{1.0 * i, 2.0 * i, 3.0 * i}, 5.0e5});
  }
  const std::string path = temp_path("flip.vmcs");
  write_statepoint(path, sp);
  // Flip one bit in the middle of the bank payload: the CRC must catch it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x10, f);
  std::fclose(f);
  EXPECT_THROW(read_statepoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StatePoint, RejectsOversizedHeaderCounts) {
  // A bit flip in the site count must be caught by the size cross-check
  // BEFORE any allocation or read trusts it — not by a failed 2^60-element
  // reserve.
  StatePoint sp;
  sp.seed = 8;
  sp.k_history = {1.0};
  sp.source.push_back(FissionSite{{1, 2, 3}, 4.0});
  const std::string path = temp_path("counts.vmcs");
  write_statepoint(path, sp);
  // Header layout: magic(4) version(4) seed(8) resample(8) gens(4) nk(8)
  // ns(8) — corrupt the high byte of nk at offset 28 + 7.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 28 + 7, SEEK_SET);
  std::fputc(0x10, f);
  std::fclose(f);
  EXPECT_THROW(read_statepoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StatePoint, RestartReproducesUnsplitCampaign) {
  // Drive the generation loop manually: 4 generations straight vs. 2 + a
  // statepoint round-trip + 2 — every generation's k must match exactly.
  vmc::hm::ModelOptions mo;
  mo.fuel = vmc::hm::FuelSize::small;
  mo.grid_scale = 0.08;
  mo.full_core = false;
  const vmc::hm::Model model = vmc::hm::build_model(mo);

  Settings st;
  st.n_particles = 400;
  st.seed = 42;
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  Simulation sim(model.geometry, model.library, st);

  const auto run_span = [&](std::vector<FissionSite> source,
                            vmc::rng::Stream resample, int first_gen,
                            int n_gens, std::vector<double>& ks,
                            StatePoint* out) {
    for (int g = first_gen; g < first_gen + n_gens; ++g) {
      std::vector<FissionSite> next;
      const GenerationResult res =
          sim.run_generation(source, next, g, /*active=*/true);
      ks.push_back(res.k_collision);
      source = resample_bank(next, st.n_particles, resample);
    }
    if (out != nullptr) {
      out->seed = st.seed;
      out->resample_state = resample.state();
      out->generations_completed = first_gen + n_gens;
      out->k_history = ks;
      out->source = source;
    }
  };

  // Unsplit reference.
  std::vector<double> ks_ref;
  run_span(sim.initial_source(), vmc::rng::Stream(st.seed ^ 0xbadc0deULL), 0,
           4, ks_ref, nullptr);

  // Split: 2 generations, checkpoint, restore, 2 more.
  std::vector<double> ks_a;
  StatePoint sp;
  run_span(sim.initial_source(), vmc::rng::Stream(st.seed ^ 0xbadc0deULL), 0,
           2, ks_a, &sp);
  const std::string path = temp_path("restart.vmcs");
  write_statepoint(path, sp);
  const StatePoint restored = read_statepoint(path);
  std::remove(path.c_str());

  std::vector<double> ks_b = restored.k_history;
  run_span(restored.source, vmc::rng::Stream(restored.resample_state),
           restored.generations_completed, 2, ks_b, nullptr);

  ASSERT_EQ(ks_ref.size(), ks_b.size());
  for (std::size_t g = 0; g < ks_ref.size(); ++g) {
    EXPECT_DOUBLE_EQ(ks_ref[g], ks_b[g]) << "generation " << g;
  }
}

}  // namespace
