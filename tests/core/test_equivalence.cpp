// The headline correctness property: the event-based (banked) tracker is a
// reorganization of the history-based tracker, not a different calculation.
// With the SIMD stages disabled the two must produce BIT-IDENTICAL particle
// fates; with SIMD enabled they agree statistically.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/event.hpp"
#include "core/history.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;
using vmc::particle::Particle;

class EquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.12;
    mo.full_core = false;
    model_ = new vmc::hm::Model(vmc::hm::build_model(mo));
    // The paper removes URR/S(a,b) for the banked comparison; so do we.
    coll_ = new vmc::physics::Collision(
        model_->library, vmc::physics::PhysicsSettings::vector_friendly());
  }
  static void TearDownTestSuite() {
    delete coll_;
    delete model_;
    coll_ = nullptr;
    model_ = nullptr;
  }

  std::vector<Particle> make_source(int n, std::uint64_t seed) const {
    std::vector<Particle> ps;
    vmc::rng::Stream s(seed ^ 0xABCD);
    int made = 0;
    while (made < n) {
      const vmc::geom::Position r{10.0 * (2.0 * s.next() - 1.0),
                                  10.0 * (2.0 * s.next() - 1.0),
                                  40.0 * (2.0 * s.next() - 1.0)};
      if (model_->geometry.find_material(r) != model_->fuel_material) continue;
      ps.push_back(Particle::born(seed, static_cast<std::uint64_t>(made), r,
                                  vmc::rng::sample_watt(s)));
      ++made;
    }
    return ps;
  }

  static std::vector<FissionSite> sorted(std::vector<FissionSite> b) {
    std::sort(b.begin(), b.end(), [](const FissionSite& a, const FissionSite& c) {
      if (a.r.x != c.r.x) return a.r.x < c.r.x;
      if (a.r.y != c.r.y) return a.r.y < c.r.y;
      if (a.r.z != c.r.z) return a.r.z < c.r.z;
      return a.energy < c.energy;
    });
    return b;
  }

  static vmc::hm::Model* model_;
  static vmc::physics::Collision* coll_;
};

vmc::hm::Model* EquivalenceTest::model_ = nullptr;
vmc::physics::Collision* EquivalenceTest::coll_ = nullptr;

TEST_F(EquivalenceTest, ScalarEventTrackerIsBitIdenticalToHistory) {
  const int n = 400;
  auto hist = make_source(n, 42);
  auto evt = hist;  // identical copies

  HistoryTracker ht(model_->geometry, model_->library, *coll_);
  TallyScores h_tally;
  EventCounts h_counts;
  std::vector<FissionSite> h_bank;
  for (auto& p : hist) ht.track(p, h_tally, h_counts, h_bank);

  EventOptions eo;
  eo.simd_lookup = false;
  eo.simd_distance = false;
  EventTracker et(model_->geometry, model_->library, *coll_, eo);
  TallyScores e_tally;
  EventCounts e_counts;
  std::vector<FissionSite> e_bank;
  et.run(evt, e_tally, e_counts, e_bank);

  // Per-particle fates: exact.
  for (int i = 0; i < n; ++i) {
    const auto& a = hist[static_cast<std::size_t>(i)];
    const auto& b = evt[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.n_collisions, b.n_collisions) << "particle " << i;
    EXPECT_EQ(a.n_crossings, b.n_crossings) << "particle " << i;
    EXPECT_EQ(a.r.x, b.r.x) << "particle " << i;
    EXPECT_EQ(a.r.y, b.r.y);
    EXPECT_EQ(a.r.z, b.r.z);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.stream.state(), b.stream.state()) << "particle " << i;
  }

  // Counters: exact.
  EXPECT_EQ(h_counts.lookups, e_counts.lookups);
  EXPECT_EQ(h_counts.collisions, e_counts.collisions);
  EXPECT_EQ(h_counts.crossings, e_counts.crossings);
  EXPECT_EQ(h_counts.nuclide_terms, e_counts.nuclide_terms);

  // Fission banks: identical multisets (ordering differs by construction).
  ASSERT_EQ(h_bank.size(), e_bank.size());
  const auto hs = sorted(h_bank);
  const auto es = sorted(e_bank);
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(hs[i].r.x, es[i].r.x);
    EXPECT_EQ(hs[i].energy, es[i].energy);
  }

  // Tallies: same sums up to floating-point association.
  EXPECT_NEAR(h_tally.k_collision, e_tally.k_collision,
              1e-9 * h_tally.k_collision);
  EXPECT_NEAR(h_tally.track_length, e_tally.track_length,
              1e-9 * h_tally.track_length);
  EXPECT_DOUBLE_EQ(h_tally.collision, e_tally.collision);
  EXPECT_DOUBLE_EQ(h_tally.absorption + h_tally.leakage,
                   e_tally.absorption + e_tally.leakage);
}

TEST_F(EquivalenceTest, GridSearchTiersPreserveEventHistoryEquivalence) {
  // The history tracker runs with the default (hash) search; a scalar event
  // tracker pinned to each grid-search tier must still reproduce its fates
  // bit-for-bit — the hash accelerator cannot perturb even one interval
  // without breaking this.
  const int n = 300;
  auto hist = make_source(n, 21);

  HistoryTracker ht(model_->geometry, model_->library, *coll_);
  TallyScores h_tally;
  EventCounts h_counts;
  std::vector<FissionSite> h_bank;
  for (auto& p : hist) ht.track(p, h_tally, h_counts, h_bank);

  for (const vmc::xs::GridSearch search :
       {vmc::xs::GridSearch::binary, vmc::xs::GridSearch::hash,
        vmc::xs::GridSearch::hash_nuclide}) {
    auto evt = make_source(n, 21);
    EventOptions eo;
    eo.simd_lookup = false;
    eo.simd_distance = false;
    eo.lookup.search = search;
    EventTracker et(model_->geometry, model_->library, *coll_, eo);
    TallyScores e_tally;
    EventCounts e_counts;
    std::vector<FissionSite> e_bank;
    et.run(evt, e_tally, e_counts, e_bank);

    for (int i = 0; i < n; ++i) {
      const auto& a = hist[static_cast<std::size_t>(i)];
      const auto& b = evt[static_cast<std::size_t>(i)];
      ASSERT_EQ(a.n_collisions, b.n_collisions)
          << "particle " << i << " search=" << static_cast<int>(search);
      ASSERT_EQ(a.energy, b.energy) << "particle " << i;
      ASSERT_EQ(a.stream.state(), b.stream.state()) << "particle " << i;
    }
    EXPECT_EQ(h_counts.collisions, e_counts.collisions);
    EXPECT_EQ(h_bank.size(), e_bank.size());
  }
}

TEST_F(EquivalenceTest, SimdEventTrackerAgreesStatistically) {
  const int n = 3000;
  auto hist = make_source(n, 7);
  auto evt = hist;

  HistoryTracker ht(model_->geometry, model_->library, *coll_);
  TallyScores h_tally;
  EventCounts h_counts;
  std::vector<FissionSite> h_bank;
  for (auto& p : hist) ht.track(p, h_tally, h_counts, h_bank);

  EventTracker et(model_->geometry, model_->library, *coll_, EventOptions{});
  TallyScores e_tally;
  EventCounts e_counts;
  std::vector<FissionSite> e_bank;
  et.run(evt, e_tally, e_counts, e_bank);

  const double kh = h_tally.k_collision / n;
  const double ke = e_tally.k_collision / n;
  EXPECT_NEAR(ke, kh, 0.05 * kh);
  EXPECT_NEAR(static_cast<double>(e_bank.size()),
              static_cast<double>(h_bank.size()),
              0.08 * static_cast<double>(h_bank.size()));
  EXPECT_NEAR(e_tally.absorption + e_tally.leakage,
              h_tally.absorption + h_tally.leakage, 1e-6);
}

TEST_F(EquivalenceTest, SimdLookupOnlyStillTracksClosely) {
  // SIMD lookups with scalar distances: the only difference is float vs
  // double interpolation of Sigma.
  const int n = 1000;
  auto a = make_source(n, 11);
  auto b = a;

  EventOptions scalar_opts;
  scalar_opts.simd_lookup = false;
  scalar_opts.simd_distance = false;
  EventTracker scalar_tracker(model_->geometry, model_->library, *coll_,
                              scalar_opts);
  EventOptions lookup_opts;
  lookup_opts.simd_lookup = true;
  lookup_opts.simd_distance = false;
  EventTracker simd_tracker(model_->geometry, model_->library, *coll_,
                            lookup_opts);

  TallyScores ta, tb;
  EventCounts ca, cb;
  std::vector<FissionSite> ba, bb;
  scalar_tracker.run(a, ta, ca, ba);
  simd_tracker.run(b, tb, cb, bb);
  EXPECT_NEAR(tb.k_collision, ta.k_collision, 0.08 * ta.k_collision);
  EXPECT_NEAR(tb.track_length, ta.track_length, 0.08 * ta.track_length);
}

}  // namespace
