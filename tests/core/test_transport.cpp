// Transport validation against analytic anchors: an infinite reflective
// medium of energy-independent nuclides, where k = nu*sigma_f/sigma_a
// exactly and mean flight lengths are known.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/history.hpp"
#include "core/event.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;
using vmc::particle::Particle;

constexpr double kNu = 2.5;
constexpr double kSigS = 3.0;
constexpr double kSigA = 2.0;
constexpr double kSigF = 1.2;

class InfiniteMediumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lib_ = std::make_unique<vmc::xs::Library>();
    const int id = lib_->add_nuclide(
        vmc::xs::make_flat_nuclide("one-group", kSigS, kSigA, kSigF, kNu));
    vmc::xs::Material m;
    m.add(id, 1.0);
    mat_ = lib_->add_material(std::move(m));
    lib_->finalize();

    // Reflective cube, side 20 cm.
    const int sx0 = geo_.add_surface(vmc::geom::Surface::x_plane(-10));
    const int sx1 = geo_.add_surface(vmc::geom::Surface::x_plane(10));
    const int sy0 = geo_.add_surface(vmc::geom::Surface::y_plane(-10));
    const int sy1 = geo_.add_surface(vmc::geom::Surface::y_plane(10));
    const int sz0 = geo_.add_surface(vmc::geom::Surface::z_plane(-10));
    const int sz1 = geo_.add_surface(vmc::geom::Surface::z_plane(10));
    for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) {
      geo_.surface(s).set_bc(vmc::geom::BoundaryCondition::reflective);
    }
    vmc::geom::Cell c;
    c.region = {{sx0, true}, {sx1, false}, {sy0, true},
                {sy1, false}, {sz0, true}, {sz1, false}};
    c.fill = mat_;
    vmc::geom::Universe root;
    root.cells = {geo_.add_cell(std::move(c))};
    geo_.set_root(geo_.add_universe(std::move(root)));
  }

  std::vector<Particle> make_source(int n, std::uint64_t seed) const {
    std::vector<Particle> ps;
    vmc::rng::Stream s(seed);
    for (int i = 0; i < n; ++i) {
      ps.push_back(Particle::born(
          seed, static_cast<std::uint64_t>(i),
          {10.0 * (2.0 * s.next() - 1.0) * 0.9,
           10.0 * (2.0 * s.next() - 1.0) * 0.9,
           10.0 * (2.0 * s.next() - 1.0) * 0.9},
          1.0));
    }
    return ps;
  }

  std::unique_ptr<vmc::xs::Library> lib_;
  vmc::geom::Geometry geo_;
  int mat_ = -1;
};

TEST_F(InfiniteMediumTest, AbsorptionEstimatorIsExactlyAnalytic) {
  // Every analog history ends in absorption (reflective, flat xs), scoring
  // exactly nu*sigma_f/sigma_a once: the estimator is deterministic.
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  TrackerOptions opt;
  opt.nu_bar = kNu;
  HistoryTracker tracker(geo_, *lib_, coll, opt);

  auto ps = make_source(500, 42);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  // The pointwise data is stored in single precision: the exact expectation
  // uses the float-rounded cross sections.
  const double k_exact = kNu * static_cast<double>(static_cast<float>(kSigF)) /
                         static_cast<double>(static_cast<float>(kSigA));
  EXPECT_NEAR(tally.k_absorption / 500.0, k_exact, 1e-12);
  // Weight conservation: everything absorbed, nothing leaked.
  EXPECT_NEAR(tally.absorption, 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(tally.leakage, 0.0);
}

TEST_F(InfiniteMediumTest, CollisionEstimatorConvergesToAnalytic) {
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  TrackerOptions opt;
  opt.nu_bar = kNu;
  HistoryTracker tracker(geo_, *lib_, coll, opt);

  const int n = 3000;
  auto ps = make_source(n, 7);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  const double k_exact = kNu * kSigF / kSigA;
  EXPECT_NEAR(tally.k_collision / n, k_exact, 0.05 * k_exact);
  EXPECT_NEAR(tally.k_tracklength / n, k_exact, 0.05 * k_exact);
}

TEST_F(InfiniteMediumTest, AnalogFissionYieldMatchesExpectation) {
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  TrackerOptions opt;
  opt.nu_bar = kNu;
  HistoryTracker tracker(geo_, *lib_, coll, opt);

  const int n = 20000;
  auto ps = make_source(n, 13);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  // E[sites per history] = k = nu*sigma_f/sigma_a.
  const double k_exact = kNu * kSigF / kSigA;
  EXPECT_NEAR(static_cast<double>(bank.size()) / static_cast<double>(n), k_exact, 0.03 * k_exact);
  // All sites inside the box, energies positive (Watt spectrum).
  for (const auto& site : bank) {
    EXPECT_LE(std::abs(site.r.x), 10.0);
    EXPECT_GT(site.energy, 0.0);
  }
}

TEST_F(InfiniteMediumTest, CollisionsPerHistoryMatchGeometricSeries) {
  // P(absorb per collision) = Sig_a/Sig_t -> mean collisions = Sig_t/Sig_a.
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  HistoryTracker tracker(geo_, *lib_, coll, TrackerOptions{});

  const int n = 10000;
  auto ps = make_source(n, 99);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  const double mean_coll =
      static_cast<double>(counts.collisions) / static_cast<double>(n);
  EXPECT_NEAR(mean_coll, (kSigS + kSigA) / kSigA, 0.05 * (kSigS + kSigA) / kSigA);
  // One lookup per flight segment: lookups == collisions + crossings.
  EXPECT_EQ(counts.lookups, counts.collisions + counts.crossings);
  EXPECT_EQ(counts.histories, static_cast<std::uint64_t>(n));
}

TEST_F(InfiniteMediumTest, TrackLengthEstimatesMeanFreePath) {
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  HistoryTracker tracker(geo_, *lib_, coll, TrackerOptions{});

  const int n = 10000;
  auto ps = make_source(n, 5);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  // Total path per history = collisions * mfp = (Sig_t/Sig_a) * (1/Sig_t)
  //                        = 1 / Sig_a.
  EXPECT_NEAR(tally.track_length / n, 1.0 / kSigA, 0.05 / kSigA);
}

TEST_F(InfiniteMediumTest, SurvivalBiasingIsUnbiased) {
  // Implicit capture must reproduce the analytic k in expectation.
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  TrackerOptions opt;
  opt.nu_bar = kNu;
  opt.survival_biasing = true;
  HistoryTracker tracker(geo_, *lib_, coll, opt);

  const int n = 4000;
  auto ps = make_source(n, 31);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);

  const double k_exact = kNu * kSigF / kSigA;
  EXPECT_NEAR(tally.k_absorption / n, k_exact, 0.03 * k_exact);
  EXPECT_NEAR(tally.k_collision / n, k_exact, 0.03 * k_exact);
  // Expected banked sites per history = k (continuous banking).
  EXPECT_NEAR(static_cast<double>(bank.size()) / static_cast<double>(n), k_exact, 0.05 * k_exact);
  // Absorbed weight ~ source weight (roulette is unbiased, no leakage).
  EXPECT_NEAR(tally.absorption, static_cast<double>(n), 0.05 * n);
}

TEST_F(InfiniteMediumTest, SurvivalBiasingReducesSiteCountVariance) {
  // In a flat-xs medium the analog ABSORPTION estimator is already
  // zero-variance, so the variance-reduction payoff shows in the fission
  // SITE counts: expected-value (continuous) banking beats the analog
  // integer-multiplicity sampling.
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  const int n = 2500;

  const auto site_count_variance = [&](bool survival) {
    TrackerOptions opt;
    opt.nu_bar = kNu;
    opt.survival_biasing = survival;
    HistoryTracker tracker(geo_, *lib_, coll, opt);
    auto ps = make_source(n, survival ? 77 : 78);
    double sum = 0.0, sum2 = 0.0;
    EventCounts counts;
    for (auto& p : ps) {
      TallyScores one;
      std::vector<FissionSite> bank;
      tracker.track(p, one, counts, bank);
      const double x = static_cast<double>(bank.size());
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / n;
    return sum2 / n - mean * mean;
  };

  const double var_analog = site_count_variance(false);
  const double var_implicit = site_count_variance(true);
  EXPECT_LT(var_implicit, 0.8 * var_analog);
}

TEST_F(InfiniteMediumTest, RouletteRespectsCutoffParameters) {
  // With an aggressive cutoff every surviving particle carries exactly
  // weight_survival after roulette; weights never linger below the cutoff.
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  TrackerOptions opt;
  opt.nu_bar = kNu;
  opt.survival_biasing = true;
  opt.weight_cutoff = 0.9;
  opt.weight_survival = 2.0;
  HistoryTracker tracker(geo_, *lib_, coll, opt);
  auto ps = make_source(500, 91);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  for (auto& p : ps) tracker.track(p, tally, counts, bank);
  for (const auto& p : ps) EXPECT_FALSE(p.alive);
  // Unbiasedness still holds under the aggressive roulette.
  const double k_exact = kNu * kSigF / kSigA;
  EXPECT_NEAR(tally.k_absorption / 500.0, k_exact, 0.10 * k_exact);
}

TEST_F(InfiniteMediumTest, EventTrackerMatchesAnalyticToo) {
  vmc::physics::Collision coll(*lib_, vmc::physics::PhysicsSettings::vector_friendly());
  EventOptions eo;
  eo.nu_bar = kNu;
  EventTracker tracker(geo_, *lib_, coll, eo);

  const int n = 2000;
  auto ps = make_source(n, 21);
  TallyScores tally;
  EventCounts counts;
  std::vector<FissionSite> bank;
  tracker.run(ps, tally, counts, bank);

  const double k_exact = kNu * kSigF / kSigA;
  EXPECT_NEAR(tally.k_absorption / n, k_exact, 2e-4 * k_exact);
  EXPECT_NEAR(tally.absorption, static_cast<double>(n), 1e-6);
  for (const auto& p : ps) EXPECT_FALSE(p.alive);
}

}  // namespace
