// Tally accumulation: the three synchronization modes must agree, and batch
// statistics must match hand-computed values.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/tally.hpp"

namespace {

using namespace vmc::core;

class TallyModeTest : public ::testing::TestWithParam<TallyMode> {};

TEST_P(TallyModeTest, SingleThreadSum) {
  TallyAccumulator acc(GetParam());
  for (int i = 1; i <= 100; ++i) {
    TallyScores s;
    s.collision = i;
    s.k_collision = 0.5 * i;
    s.leakage = 0.25;
    acc.score(s);
  }
  const TallyScores t = acc.total();
  EXPECT_DOUBLE_EQ(t.collision, 5050.0);
  EXPECT_DOUBLE_EQ(t.k_collision, 2525.0);
  EXPECT_DOUBLE_EQ(t.leakage, 25.0);
}

TEST_P(TallyModeTest, ConcurrentScoringLosesNothing) {
  TallyAccumulator acc(GetParam());
  constexpr int kThreads = 8;
  constexpr int kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc] {
      for (int i = 0; i < kPer; ++i) {
        TallyScores s;
        s.absorption = 1.0;
        s.track_length = 0.5;
        acc.score(s);
      }
    });
  }
  for (auto& th : threads) th.join();
  const TallyScores t = acc.total();
  EXPECT_DOUBLE_EQ(t.absorption, kThreads * kPer * 1.0);
  EXPECT_DOUBLE_EQ(t.track_length, kThreads * kPer * 0.5);
}

TEST_P(TallyModeTest, ResetZeroes) {
  TallyAccumulator acc(GetParam());
  TallyScores s;
  s.collision = 3.0;
  acc.score(s);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total().collision, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, TallyModeTest,
                         ::testing::Values(TallyMode::thread_local_reduce,
                                           TallyMode::atomic_add,
                                           TallyMode::critical));

TEST(TallyScores, OperatorPlusEqAddsAllFields) {
  TallyScores a, b;
  a.k_collision = 1;
  a.k_absorption = 2;
  a.k_tracklength = 3;
  a.collision = 4;
  a.absorption = 5;
  a.track_length = 6;
  a.leakage = 7;
  b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.k_collision, 2);
  EXPECT_DOUBLE_EQ(b.k_absorption, 4);
  EXPECT_DOUBLE_EQ(b.k_tracklength, 6);
  EXPECT_DOUBLE_EQ(b.collision, 8);
  EXPECT_DOUBLE_EQ(b.absorption, 10);
  EXPECT_DOUBLE_EQ(b.track_length, 12);
  EXPECT_DOUBLE_EQ(b.leakage, 14);
}

TEST(EventCounts, Accumulate) {
  EventCounts a, b;
  a.lookups = 10;
  a.nuclide_terms = 320;
  a.collisions = 5;
  a.crossings = 7;
  a.histories = 1;
  b = a;
  b += a;
  EXPECT_EQ(b.lookups, 20u);
  EXPECT_EQ(b.nuclide_terms, 640u);
  EXPECT_EQ(b.collisions, 10u);
  EXPECT_EQ(b.crossings, 14u);
  EXPECT_EQ(b.histories, 2u);
}

TEST(BatchStatistics, MeanAndStdErr) {
  BatchStatistics s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.n(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  // sample std = sqrt(2.5); stderr = sqrt(2.5/5)
  EXPECT_NEAR(s.std_err(), std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(BatchStatistics, DegenerateCases) {
  BatchStatistics s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_err(), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.std_err(), 0.0);  // undefined for n=1 -> 0
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.std_err(), 0.0);  // identical samples
}

}  // namespace
