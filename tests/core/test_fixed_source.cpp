// Fixed-source mode: analytic attenuation anchors, source sampling,
// batching statistics, and mesh-tally integration.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/fixed_source.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::core;

struct SphereProblem {
  std::unique_ptr<vmc::xs::Library> lib;
  vmc::geom::Geometry geo;
  int mat = -1;
};

SphereProblem make_sphere(double radius, double sigma_s, double sigma_a) {
  SphereProblem p;
  p.lib = std::make_unique<vmc::xs::Library>();
  const int id = p.lib->add_nuclide(
      vmc::xs::make_flat_nuclide("m", sigma_s, sigma_a, 0.0, 0.0));
  vmc::xs::Material m;
  m.add(id, 1.0);
  p.mat = p.lib->add_material(std::move(m));
  p.lib->finalize();

  const int sphere =
      p.geo.add_surface(vmc::geom::Surface::sphere(0, 0, 0, radius));
  p.geo.surface(sphere).set_bc(vmc::geom::BoundaryCondition::vacuum);
  vmc::geom::Cell inside;
  inside.region = {{sphere, false}};
  inside.fill = p.mat;
  vmc::geom::Universe root;
  root.cells = {p.geo.add_cell(std::move(inside))};
  p.geo.set_root(p.geo.add_universe(std::move(root)));
  return p;
}

FixedSourceSettings base_settings(std::size_t n = 20000) {
  FixedSourceSettings s;
  s.n_particles = n;
  s.n_batches = 4;
  s.source = ExternalSource::point_source({0, 0, 0}, 2.0);
  s.physics = vmc::physics::PhysicsSettings::vector_friendly();
  return s;
}

class AttenuationTest : public ::testing::TestWithParam<double> {};

TEST_P(AttenuationTest, PureAbsorberLeakageMatchesExponential) {
  // Point isotropic source at the center of a pure absorber of radius R:
  // leakage = e^{-Sigma_a R} exactly.
  const double radius = GetParam();
  const double sigma_a = 0.7;
  SphereProblem p = make_sphere(radius, /*sigma_s=*/1e-6, sigma_a);
  const auto r = run_fixed_source(p.geo, *p.lib, base_settings());
  const double analytic = std::exp(-sigma_a * radius);
  EXPECT_NEAR(r.leakage_fraction, analytic,
              5.0 * r.leakage_std + 0.01 * analytic)
      << "R=" << radius;
  // Conservation: leaked + absorbed = 1 per particle.
  EXPECT_NEAR(r.leakage_fraction + r.absorption_fraction, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Radii, AttenuationTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(FixedSource, ScattererLeaksMoreThanUncollidedEstimate) {
  // With scattering, collided particles still escape: leakage must exceed
  // the uncollided e^{-Sigma_t R} but stay below e^{-Sigma_a R}.
  const double radius = 2.0;
  SphereProblem p = make_sphere(radius, /*sigma_s=*/0.5, /*sigma_a=*/0.5);
  const auto r = run_fixed_source(p.geo, *p.lib, base_settings());
  EXPECT_GT(r.leakage_fraction, std::exp(-1.0 * radius));   // Sigma_t = 1.0
  EXPECT_LT(r.leakage_fraction, std::exp(-0.5 * radius) * 1.5);
}

TEST(FixedSource, CollisionCountMatchesPureAbsorberExpectation) {
  // In a large pure absorber nearly every particle collides exactly once.
  SphereProblem p = make_sphere(50.0, 1e-6, 1.0);
  const auto r = run_fixed_source(p.geo, *p.lib, base_settings(5000));
  EXPECT_NEAR(r.collisions_per_particle, 1.0, 0.02);
}

TEST(FixedSource, BoxSourceSamplesInsideTheBox) {
  SphereProblem p = make_sphere(10.0, 0.1, 0.5);
  FixedSourceSettings s = base_settings(4000);
  s.source = ExternalSource::box_source({-1, -2, -3}, {1, 2, 3}, 2.0);
  MeshTally::Spec spec;
  spec.lower = {-10, -10, -10};
  spec.upper = {10, 10, 10};
  spec.nx = spec.ny = spec.nz = 5;
  MeshTally mesh(spec);
  s.mesh_tally = &mesh;
  const auto r = run_fixed_source(p.geo, *p.lib, s);
  EXPECT_GT(mesh.scored(), 0u);
  EXPECT_GT(r.rate, 0.0);
}

TEST(FixedSource, SeedReproducibilityAndThreadInvariance) {
  SphereProblem p = make_sphere(3.0, 0.3, 0.4);
  FixedSourceSettings s = base_settings(3000);
  const auto a = run_fixed_source(p.geo, *p.lib, s);
  const auto b = run_fixed_source(p.geo, *p.lib, s);
  EXPECT_DOUBLE_EQ(a.leakage_fraction, b.leakage_fraction);

  s.n_threads = 3;
  const auto c = run_fixed_source(p.geo, *p.lib, s);
  EXPECT_NEAR(c.leakage_fraction, a.leakage_fraction, 1e-12);
}

TEST(FixedSource, WattSpectrumWhenEnergyNonPositive) {
  SphereProblem p = make_sphere(5.0, 0.2, 0.2);
  FixedSourceSettings s = base_settings(2000);
  s.source.energy = 0.0;  // Watt
  const auto r = run_fixed_source(p.geo, *p.lib, s);
  EXPECT_GT(r.counts.histories, 0u);
}

TEST(FixedSource, RejectsBadConfigs) {
  SphereProblem p = make_sphere(1.0, 0.1, 0.1);
  FixedSourceSettings s = base_settings(10);
  s.n_batches = 0;
  EXPECT_THROW(run_fixed_source(p.geo, *p.lib, s), std::invalid_argument);
}

TEST(FixedSource, FissionDoesNotMultiply) {
  // A fissile medium in fixed-source mode: fission terminates histories,
  // secondaries are not transported (shielding semantics).
  SphereProblem p = make_sphere(5.0, 0.1, 0.1);
  vmc::xs::Library lib;
  const int id = lib.add_nuclide(
      vmc::xs::make_flat_nuclide("fuel", 0.5, 2.0, 1.5, 2.43));
  vmc::xs::Material m;
  m.add(id, 1.0);
  lib.add_material(std::move(m));
  lib.finalize();
  FixedSourceSettings s = base_settings(4000);
  const auto r = run_fixed_source(p.geo, lib, s);
  // Every source particle dies exactly once: absorbed or leaked.
  EXPECT_NEAR(r.leakage_fraction + r.absorption_fraction, 1.0, 1e-9);
  EXPECT_EQ(r.counts.histories, 4u * 4000u);
}

}  // namespace
