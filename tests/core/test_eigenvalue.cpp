// Eigenvalue driver on the single-assembly H.M. configuration: batching,
// source iteration, reproducibility, and thread-count invariance.
#include <gtest/gtest.h>

#include <memory>

#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::core;

class EigenvalueTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.12;
    mo.full_core = false;
    model_ = new vmc::hm::Model(vmc::hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  Settings base_settings() const {
    Settings s;
    s.n_particles = 400;
    s.n_inactive = 1;
    s.n_active = 3;
    s.seed = 42;
    s.source_lo = model_->source_lo;
    s.source_hi = model_->source_hi;
    return s;
  }

  static vmc::hm::Model* model_;
};

vmc::hm::Model* EigenvalueTest::model_ = nullptr;

TEST_F(EigenvalueTest, ProducesReactorLikeK) {
  Simulation sim(model_->geometry, model_->library, base_settings());
  const RunResult r = sim.run();
  EXPECT_GT(r.k_eff, 0.3);
  EXPECT_LT(r.k_eff, 1.5);
  EXPECT_GT(r.k_std, 0.0);
  EXPECT_EQ(r.generations.size(), 4u);
  EXPECT_GT(r.rate_active, 0.0);
  EXPECT_GT(r.rate_inactive, 0.0);
}

TEST_F(EigenvalueTest, EstimatorsAgreeStatistically) {
  Settings s = base_settings();
  s.n_particles = 1500;
  s.n_active = 4;
  Simulation sim(model_->geometry, model_->library, s);
  const RunResult r = sim.run();
  for (const auto& g : r.generations) {
    if (!g.active) continue;
    EXPECT_NEAR(g.k_collision, g.k_absorption, 0.25 * g.k_collision);
    EXPECT_NEAR(g.k_collision, g.k_tracklength, 0.25 * g.k_collision);
  }
}

TEST_F(EigenvalueTest, SameSeedIsBitReproducible) {
  Simulation a(model_->geometry, model_->library, base_settings());
  Simulation b(model_->geometry, model_->library, base_settings());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_EQ(ra.generations.size(), rb.generations.size());
  for (std::size_t i = 0; i < ra.generations.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.generations[i].k_collision,
                     rb.generations[i].k_collision);
    EXPECT_EQ(ra.generations[i].n_sites, rb.generations[i].n_sites);
  }
}

TEST_F(EigenvalueTest, DifferentSeedsDiffer) {
  Settings s = base_settings();
  s.seed = 777;
  Simulation a(model_->geometry, model_->library, base_settings());
  Simulation b(model_->geometry, model_->library, s);
  EXPECT_NE(a.run().generations[0].k_collision,
            b.run().generations[0].k_collision);
}

TEST_F(EigenvalueTest, ThreadCountDoesNotChangePhysics) {
  // Particle-seeded streams make the transport decomposition-invariant;
  // only floating-point summation order differs.
  Settings s1 = base_settings();
  s1.n_threads = 1;
  Settings s3 = base_settings();
  s3.n_threads = 3;
  const RunResult r1 = Simulation(model_->geometry, model_->library, s1).run();
  const RunResult r3 = Simulation(model_->geometry, model_->library, s3).run();
  // Generation 0 shares the same source; site multisets must match in size
  // and the estimators to summation-order precision.
  EXPECT_EQ(r1.generations[0].n_sites, r3.generations[0].n_sites);
  EXPECT_NEAR(r1.generations[0].k_collision, r3.generations[0].k_collision,
              1e-9);
}

TEST_F(EigenvalueTest, InactiveGenerationsAreFlagged) {
  Settings s = base_settings();
  s.n_inactive = 2;
  s.n_active = 2;
  Simulation sim(model_->geometry, model_->library, s);
  const RunResult r = sim.run();
  ASSERT_EQ(r.generations.size(), 4u);
  EXPECT_FALSE(r.generations[0].active);
  EXPECT_FALSE(r.generations[1].active);
  EXPECT_TRUE(r.generations[2].active);
  EXPECT_TRUE(r.generations[3].active);
}

TEST_F(EigenvalueTest, EntropyIsPositiveAndBounded) {
  Simulation sim(model_->geometry, model_->library, base_settings());
  const RunResult r = sim.run();
  const double max_entropy = 3.0 * std::log2(8.0);  // 8^3 mesh
  for (const auto& g : r.generations) {
    EXPECT_GT(g.entropy, 0.0);
    EXPECT_LE(g.entropy, max_entropy);
  }
}

TEST_F(EigenvalueTest, WeightConservationPerGeneration) {
  Simulation sim(model_->geometry, model_->library, base_settings());
  const RunResult r = sim.run();
  for (const auto& g : r.generations) {
    // absorbed + leaked = source weight (analog transport).
    EXPECT_NEAR(g.tallies.absorption + g.tallies.leakage, 400.0, 1e-6);
  }
}

TEST_F(EigenvalueTest, SurvivalBiasingAgreesWithAnalog) {
  Settings analog = base_settings();
  analog.n_particles = 2000;
  analog.n_active = 4;
  Settings implicit = analog;
  implicit.tracker.survival_biasing = true;
  const RunResult ra =
      Simulation(model_->geometry, model_->library, analog).run();
  const RunResult ri =
      Simulation(model_->geometry, model_->library, implicit).run();
  EXPECT_NEAR(ri.k_eff, ra.k_eff, 0.08 * ra.k_eff);
  EXPECT_GT(ri.k_std, 0.0);
}

TEST_F(EigenvalueTest, ReflectiveModelNeverLeaks) {
  // The single-assembly model is reflective on all six faces: no history may
  // leak, including grazing hits where a lattice wall coincides with the
  // reflective plane (regression test for the boundary-recovery path).
  Settings s = base_settings();
  s.n_particles = 2000;
  s.n_active = 4;
  Simulation sim(model_->geometry, model_->library, s);
  const RunResult r = sim.run();
  for (const auto& g : r.generations) {
    EXPECT_DOUBLE_EQ(g.tallies.leakage, 0.0);
    EXPECT_NEAR(g.tallies.absorption, 2000.0, 1e-9);
  }
}

TEST_F(EigenvalueTest, EventModeRunsAndAgrees) {
  Settings s = base_settings();
  s.n_particles = 1200;
  s.mode = TransportMode::event;
  const RunResult re = Simulation(model_->geometry, model_->library, s).run();
  Settings sh = s;
  sh.mode = TransportMode::history;
  const RunResult rh = Simulation(model_->geometry, model_->library, sh).run();
  EXPECT_NEAR(re.k_eff, rh.k_eff, 0.15 * rh.k_eff);
}

TEST_F(EigenvalueTest, CountersAccumulateAcrossGenerations) {
  Simulation sim(model_->geometry, model_->library, base_settings());
  const RunResult r = sim.run();
  EXPECT_GT(r.counts_total.lookups, r.counts_active.lookups);
  EXPECT_EQ(r.counts_total.histories, 4u * 400u);
  EXPECT_GT(r.counts_total.nuclide_terms, r.counts_total.lookups);
}

TEST(ResampleBank, ExactCountAndSourcePreservation) {
  std::vector<vmc::particle::FissionSite> bank;
  for (int i = 0; i < 10; ++i) {
    bank.push_back({{1.0 * i, 0, 0}, 2.0});
  }
  vmc::rng::Stream s(3);
  const auto out = resample_bank(bank, 25, s);
  EXPECT_EQ(out.size(), 25u);
  for (const auto& site : out) {
    EXPECT_GE(site.r.x, 0.0);
    EXPECT_LE(site.r.x, 9.0);
  }
}

TEST(ResampleBank, EmptyBankThrows) {
  std::vector<vmc::particle::FissionSite> empty;
  vmc::rng::Stream s(3);
  EXPECT_THROW(resample_bank(empty, 10, s), std::runtime_error);
}

}  // namespace
