// Race-detection harness for shared tally accumulation and the concurrent
// fission bank.
//
// Functional under the default build — every assertion checks an exact,
// deterministic total (scores are multiples of 0.25 well below 2^53, so
// floating-point accumulation is exact in any order). Under the `tsan`
// preset the same schedules become a ThreadSanitizer harness for the three
// tally synchronization strategies and for ConcurrentBank push/append/drain.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/tally.hpp"
#include "particle/concurrent_bank.hpp"
#include "particle/particle.hpp"
#include "rng/stream.hpp"

namespace {

using vmc::core::TallyAccumulator;
using vmc::core::TallyMode;
using vmc::core::TallyScores;
using vmc::particle::ConcurrentBank;
using vmc::particle::FissionSite;

constexpr int kThreads = 8;
constexpr int kScoresPerThread = 400;

// One deterministic per-event score: every field an exact multiple of 0.25
// drawn from the thread's own RNG stream (seeded the same way transport
// seeds particle streams, so streams never overlap).
TallyScores exact_score(vmc::rng::Stream& s) {
  const auto q = [&s] {
    return 0.25 * static_cast<double>(1 + static_cast<int>(s.next() * 8.0));
  };
  TallyScores t;
  t.k_collision = q();
  t.k_absorption = q();
  t.k_tracklength = q();
  t.collision = q();
  t.absorption = q();
  t.track_length = q();
  t.leakage = q();
  return t;
}

TallyScores expected_total(std::uint64_t master) {
  TallyScores total;
  for (int t = 0; t < kThreads; ++t) {
    vmc::rng::Stream s = vmc::rng::Stream::for_particle(
        master, static_cast<std::uint64_t>(t));
    for (int i = 0; i < kScoresPerThread; ++i) total += exact_score(s);
  }
  return total;
}

void hammer(TallyAccumulator& acc, std::uint64_t master, bool batch_locally) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc, master, batch_locally, t] {
      vmc::rng::Stream s = vmc::rng::Stream::for_particle(
          master, static_cast<std::uint64_t>(t));
      TallyScores local;
      for (int i = 0; i < kScoresPerThread; ++i) {
        if (batch_locally) {
          local += exact_score(s);
        } else {
          acc.score(exact_score(s));
        }
      }
      if (batch_locally) acc.score(local);
    });
  }
  for (auto& th : threads) th.join();
}

void expect_scores_eq(const TallyScores& a, const TallyScores& b) {
  EXPECT_EQ(a.k_collision, b.k_collision);
  EXPECT_EQ(a.k_absorption, b.k_absorption);
  EXPECT_EQ(a.k_tracklength, b.k_tracklength);
  EXPECT_EQ(a.collision, b.collision);
  EXPECT_EQ(a.absorption, b.absorption);
  EXPECT_EQ(a.track_length, b.track_length);
  EXPECT_EQ(a.leakage, b.leakage);
}

TEST(TallyStress, AtomicModeMatchesSerialSum) {
  TallyAccumulator acc(TallyMode::atomic_add);
  hammer(acc, 1234, /*batch_locally=*/false);
  expect_scores_eq(acc.total(), expected_total(1234));
}

TEST(TallyStress, CriticalModeMatchesSerialSum) {
  TallyAccumulator acc(TallyMode::critical);
  hammer(acc, 5678, /*batch_locally=*/false);
  expect_scores_eq(acc.total(), expected_total(5678));
}

TEST(TallyStress, ThreadLocalReduceMatchesSerialSum) {
  TallyAccumulator acc(TallyMode::thread_local_reduce);
  hammer(acc, 91011, /*batch_locally=*/true);
  expect_scores_eq(acc.total(), expected_total(91011));
}

TEST(TallyStress, ConcurrentReadersSeeConsistentSnapshots) {
  // total() racing with score() must never tear a read (TSan checks the
  // synchronization; the assertion checks monotonicity of the exact sums).
  TallyAccumulator acc(TallyMode::critical);
  std::thread reader([&acc] {
    double last = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const double c = acc.total().collision;
      EXPECT_GE(c, last);
      last = c;
    }
  });
  hammer(acc, 111213, /*batch_locally=*/false);
  reader.join();
  expect_scores_eq(acc.total(), expected_total(111213));
}

// --- ConcurrentBank -------------------------------------------------------

constexpr int kSitesPerThread = 500;

// Encode (thread, index) into the site so drained contents are checkable.
FissionSite site_for(int tid, int i) {
  FissionSite s;
  s.r = {static_cast<double>(tid), static_cast<double>(i), 0.0};
  s.energy = 1.0 + tid;
  return s;
}

TEST(ConcurrentBankStress, ParallelPushKeepsEverySite) {
  ConcurrentBank bank(kThreads * kSitesPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bank, t] {
      for (int i = 0; i < kSitesPerThread; ++i) bank.push(site_for(t, i));
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(bank.size(), static_cast<std::size_t>(kThreads) * kSitesPerThread);

  const std::vector<FissionSite> sites = bank.drain();
  EXPECT_TRUE(bank.empty());
  // Every (thread, index) pair must appear exactly once.
  std::vector<int> seen(static_cast<std::size_t>(kThreads) * kSitesPerThread,
                        0);
  for (const auto& s : sites) {
    const auto tid = static_cast<std::size_t>(s.r.x);
    const auto idx = static_cast<std::size_t>(s.r.y);
    ASSERT_LT(tid, static_cast<std::size_t>(kThreads));
    ASSERT_LT(idx, static_cast<std::size_t>(kSitesPerThread));
    ++seen[tid * kSitesPerThread + idx];
  }
  for (const int c : seen) ASSERT_EQ(c, 1);
}

TEST(ConcurrentBankStress, ParallelBulkAppendMergesAllBatches) {
  // The transport pattern: workers batch locally, commit once per chunk.
  ConcurrentBank bank;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bank, t] {
      for (int batch = 0; batch < 5; ++batch) {
        std::vector<FissionSite> local;
        local.reserve(kSitesPerThread / 5);
        for (int i = 0; i < kSitesPerThread / 5; ++i) {
          local.push_back(site_for(t, batch * (kSitesPerThread / 5) + i));
        }
        bank.append(std::move(local));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bank.size(), static_cast<std::size_t>(kThreads) * kSitesPerThread);
}

TEST(ConcurrentBankStress, SizeIsSafeDuringGrowth) {
  ConcurrentBank bank;
  std::thread observer([&bank] {
    std::size_t last = 0;
    for (int i = 0; i < 2000; ++i) {
      const std::size_t n = bank.size();
      EXPECT_GE(n, last);
      last = n;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&bank, t] {
      for (int i = 0; i < kSitesPerThread; ++i) bank.push(site_for(t, i));
    });
  }
  for (auto& th : writers) th.join();
  observer.join();
  EXPECT_EQ(bank.size(), static_cast<std::size_t>(4) * kSitesPerThread);
}

TEST(ConcurrentBankStress, DrainWhileIdleBetweenGenerations) {
  // Generation pattern: fill in parallel, drain serially, repeat. The bank
  // must be reusable after drain with no leftover state.
  ConcurrentBank bank;
  for (int gen = 0; gen < 3; ++gen) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&bank, t] {
        std::vector<FissionSite> local;
        for (int i = 0; i < 100; ++i) local.push_back(site_for(t, i));
        bank.append(std::move(local));
      });
    }
    for (auto& th : threads) th.join();
    const auto sites = bank.drain();
    EXPECT_EQ(sites.size(), static_cast<std::size_t>(kThreads) * 100);
    EXPECT_TRUE(bank.empty());
  }
}

}  // namespace
