// The compacting event-queue scheduler (EventOptions::compact_queues) is a
// pure reorganization of the naive full-bank sweep: with the SIMD stages
// disabled the two schedules must produce BIT-IDENTICAL particle fates,
// counters, and tallies. These tests pin that invariant, plus the queue
// mechanics themselves (counting-sort stability, stable compaction) and the
// two population edge cases the naive sweep never stresses: a mass-death
// first iteration and an empty live set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/eigenvalue.hpp"
#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;
using vmc::particle::Particle;

// ---------------------------------------------------------------------------
// EventQueues mechanics (no transport involved).
// ---------------------------------------------------------------------------

TEST(EventQueues, CountingSortIsStableAndRunsCoverTheLiveSet) {
  // Live particles 0..9 with materials 2,0,1,2,0,... — the lookup queue must
  // be material-major with ascending particle order inside each material.
  const int n_materials = 3;
  const std::size_t n = 10;
  std::vector<Particle> ps(n);
  std::vector<vmc::geom::Geometry::State> states(n);
  const int mats[n] = {2, 0, 1, 2, 0, 1, 2, 0, 0, 1};
  for (std::size_t i = 0; i < n; ++i) {
    ps[i].id = i;
    ps[i].energy = 1.0 + static_cast<double>(i);
    states[i].material = mats[i];
  }

  EventQueues q;
  q.reset(n_materials, n);
  for (std::size_t i = 0; i < n; ++i) q.push_live(static_cast<std::uint32_t>(i));
  q.begin_iteration();
  q.build_lookup(ps, states);

  // Runs: one per non-empty material, contiguous, covering exactly [0, n).
  ASSERT_EQ(q.runs().size(), 3u);
  std::size_t covered = 0;
  int prev_material = -1;
  for (const MaterialRun& r : q.runs()) {
    EXPECT_EQ(r.begin, covered);
    EXPECT_GT(r.material, prev_material);  // material-major order
    prev_material = r.material;
    covered = r.end;
  }
  EXPECT_EQ(covered, n);

  // Stability: inside each run, particle indices ascend; staged energies and
  // materials are the gather of the particles in lookup order.
  for (const MaterialRun& r : q.runs()) {
    for (std::size_t k = r.begin; k < r.end; ++k) {
      const std::uint32_t i = q.lookup()[k];
      EXPECT_EQ(mats[i], r.material);
      if (k > r.begin) {
        EXPECT_LT(q.lookup()[k - 1], i);
      }
      EXPECT_EQ(q.staged_energies()[k], ps[i].energy);
      EXPECT_EQ(q.staged_materials()[k], mats[i]);
    }
  }

  // pos_ is the inverse permutation: sigma_of_live(j) must address the
  // lookup slot holding live particle j. Tag each staged slot with its
  // particle index and read it back through the live view.
  for (std::size_t k = 0; k < n; ++k) {
    q.staged_sigma()[k].total = static_cast<double>(q.lookup()[k]);
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(q.sigma_of_live(j).total, static_cast<double>(q.live()[j]));
  }
}

TEST(EventQueues, HandOffRunsSlicesRunsWithoutSpanningMaterials) {
  // hand_off_runs streams the material runs as bounded chunks: every chunk
  // stays inside one run ([begin, end) same-material), chunks are emitted in
  // lookup order covering the staging buffers exactly once, and no chunk
  // exceeds `per` slots. The offload scheduler's per-event-type queues are
  // fed straight from this walk.
  const int n_materials = 3;
  const std::size_t n = 10;
  std::vector<Particle> ps(n);
  std::vector<vmc::geom::Geometry::State> states(n);
  const int mats[n] = {2, 0, 1, 2, 0, 1, 2, 0, 0, 1};
  for (std::size_t i = 0; i < n; ++i) {
    ps[i].id = i;
    ps[i].energy = 1.0;
    states[i].material = mats[i];
  }
  EventQueues q;
  q.reset(n_materials, n);
  for (std::size_t i = 0; i < n; ++i) q.push_live(static_cast<std::uint32_t>(i));
  q.begin_iteration();
  q.build_lookup(ps, states);
  // Runs: material 0 holds 4 slots, materials 1 and 2 hold 3 each.
  ASSERT_EQ(q.runs().size(), 3u);

  for (const std::size_t per : {1u, 2u, 3u, 100u}) {
    struct Got {
      int material;
      std::size_t begin, end;
    };
    std::vector<Got> got;
    const std::size_t n_chunks = q.hand_off_runs(
        per, [&](int m, std::size_t b, std::size_t e) { got.push_back({m, b, e}); });
    EXPECT_EQ(n_chunks, got.size());

    std::size_t covered = 0;
    for (const Got& g : got) {
      EXPECT_EQ(g.begin, covered);  // contiguous, in lookup order
      EXPECT_LE(g.end - g.begin, per);
      EXPECT_GT(g.end, g.begin);
      for (std::size_t k = g.begin; k < g.end; ++k) {
        EXPECT_EQ(q.staged_materials()[k], g.material);  // never spans runs
      }
      covered = g.end;
    }
    EXPECT_EQ(covered, n);
  }

  // per = 0 is clamped to 1 (one slot per chunk), and an empty queue hands
  // off nothing.
  EXPECT_EQ(q.hand_off_runs(0, [](int, std::size_t, std::size_t) {}), n);
  EventQueues empty;
  empty.reset(1, 0);
  empty.begin_iteration();
  empty.build_lookup({}, {});
  EXPECT_EQ(empty.hand_off_runs(4, [](int, std::size_t, std::size_t) {
    FAIL() << "no chunks expected";
  }),
            0u);
}

TEST(EventQueues, CompactIsStableAndInPlace) {
  EventQueues q;
  q.reset(1, 8);
  for (std::uint32_t i = 0; i < 8; ++i) q.push_live(i);
  q.begin_iteration();
  for (const std::size_t slot : {0u, 3u, 4u, 7u}) q.mark_dead(slot);
  EXPECT_EQ(q.compact(), 4u);
  ASSERT_EQ(q.live_count(), 4u);
  const std::uint32_t expect[] = {1, 2, 5, 6};  // survivors, original order
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(q.live()[j], expect[j]);

  // Death marks are per-iteration: a fresh iteration must not resurrect the
  // previous one's marks, and compacting with no deaths is the identity.
  q.begin_iteration();
  EXPECT_EQ(q.compact(), 4u);
  q.begin_iteration();
  for (std::size_t j = 0; j < 4; ++j) q.mark_dead(j);
  EXPECT_EQ(q.compact(), 0u);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Transport equivalence: compact scheduler vs. naive full-bank sweep.
// ---------------------------------------------------------------------------

constexpr double kNu = 2.5;

/// Reflective two-material slab: x<0 is a scattering-heavy material, x>0 an
/// absorbing one, so the lookup queue really is multi-material and particles
/// die at staggered iterations.
class CompactSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { build(/*density_scale=*/1.0, /*vacuum=*/false); }

  void build(double density_scale, bool vacuum) {
    geo_ = vmc::geom::Geometry();
    lib_ = std::make_unique<vmc::xs::Library>();
    const int a = lib_->add_nuclide(
        vmc::xs::make_flat_nuclide("scatterer", 3.0, 0.4, 0.25, kNu));
    const int b = lib_->add_nuclide(
        vmc::xs::make_flat_nuclide("absorber", 0.8, 2.0, 1.1, kNu));
    vmc::xs::Material left;
    left.add(a, density_scale);
    vmc::xs::Material right;
    right.add(a, 0.3 * density_scale);
    right.add(b, 0.7 * density_scale);
    mat_left_ = lib_->add_material(std::move(left));
    mat_right_ = lib_->add_material(std::move(right));
    lib_->finalize();

    const int sx0 = geo_.add_surface(vmc::geom::Surface::x_plane(-10));
    const int smid = geo_.add_surface(vmc::geom::Surface::x_plane(0));
    const int sx1 = geo_.add_surface(vmc::geom::Surface::x_plane(10));
    const int sy0 = geo_.add_surface(vmc::geom::Surface::y_plane(-10));
    const int sy1 = geo_.add_surface(vmc::geom::Surface::y_plane(10));
    const int sz0 = geo_.add_surface(vmc::geom::Surface::z_plane(-10));
    const int sz1 = geo_.add_surface(vmc::geom::Surface::z_plane(10));
    const auto bc = vacuum ? vmc::geom::BoundaryCondition::vacuum
                           : vmc::geom::BoundaryCondition::reflective;
    for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) geo_.surface(s).set_bc(bc);

    vmc::geom::Cell cl;
    cl.region = {{sx0, true}, {smid, false}, {sy0, true},
                 {sy1, false}, {sz0, true}, {sz1, false}};
    cl.fill = mat_left_;
    vmc::geom::Cell cr;
    cr.region = {{smid, true}, {sx1, false}, {sy0, true},
                 {sy1, false}, {sz0, true}, {sz1, false}};
    cr.fill = mat_right_;
    vmc::geom::Universe root;
    root.cells = {geo_.add_cell(std::move(cl)), geo_.add_cell(std::move(cr))};
    geo_.set_root(geo_.add_universe(std::move(root)));

    coll_ = std::make_unique<vmc::physics::Collision>(
        *lib_, vmc::physics::PhysicsSettings::vector_friendly());
  }

  std::vector<Particle> make_source(int n, std::uint64_t seed) const {
    std::vector<Particle> ps;
    vmc::rng::Stream s(seed ^ 0x5151);
    for (int i = 0; i < n; ++i) {
      ps.push_back(Particle::born(seed, static_cast<std::uint64_t>(i),
                                  {9.8 * (2.0 * s.next() - 1.0),
                                   9.8 * (2.0 * s.next() - 1.0),
                                   9.8 * (2.0 * s.next() - 1.0)},
                                  1.0 + s.next()));
    }
    return ps;
  }

  struct RunOut {
    std::vector<Particle> particles;
    TallyScores tally;
    EventCounts counts;
    std::vector<FissionSite> bank;
  };

  RunOut run(bool compact, bool simd_lookup, bool simd_distance,
             std::vector<Particle> source) const {
    RunOut out;
    out.particles = std::move(source);
    EventOptions eo;
    eo.compact_queues = compact;
    eo.simd_lookup = simd_lookup;
    eo.simd_distance = simd_distance;
    eo.nu_bar = kNu;
    EventTracker et(geo_, *lib_, *coll_, eo);
    et.run(out.particles, out.tally, out.counts, out.bank);
    return out;
  }

  static void expect_bit_identical(const RunOut& a, const RunOut& b) {
    ASSERT_EQ(a.particles.size(), b.particles.size());
    for (std::size_t i = 0; i < a.particles.size(); ++i) {
      const Particle& p = a.particles[i];
      const Particle& r = b.particles[i];
      EXPECT_EQ(p.alive, r.alive) << "particle " << i;
      EXPECT_EQ(p.n_collisions, r.n_collisions) << "particle " << i;
      EXPECT_EQ(p.n_crossings, r.n_crossings) << "particle " << i;
      EXPECT_EQ(p.r.x, r.r.x) << "particle " << i;
      EXPECT_EQ(p.r.y, r.r.y) << "particle " << i;
      EXPECT_EQ(p.r.z, r.r.z) << "particle " << i;
      EXPECT_EQ(p.energy, r.energy) << "particle " << i;
      EXPECT_EQ(p.stream.state(), r.stream.state()) << "particle " << i;
    }
    EXPECT_EQ(a.counts.lookups, b.counts.lookups);
    EXPECT_EQ(a.counts.collisions, b.counts.collisions);
    EXPECT_EQ(a.counts.crossings, b.counts.crossings);
    EXPECT_EQ(a.counts.nuclide_terms, b.counts.nuclide_terms);
    // Stable compaction preserves the accumulation ORDER, so the tallies are
    // bitwise equal, not merely close.
    EXPECT_EQ(a.tally.k_collision, b.tally.k_collision);
    EXPECT_EQ(a.tally.k_absorption, b.tally.k_absorption);
    EXPECT_EQ(a.tally.k_tracklength, b.tally.k_tracklength);
    EXPECT_EQ(a.tally.collision, b.tally.collision);
    EXPECT_EQ(a.tally.absorption, b.tally.absorption);
    EXPECT_EQ(a.tally.track_length, b.tally.track_length);
    EXPECT_EQ(a.tally.leakage, b.tally.leakage);
    ASSERT_EQ(a.bank.size(), b.bank.size());
    for (std::size_t i = 0; i < a.bank.size(); ++i) {
      EXPECT_EQ(a.bank[i].r.x, b.bank[i].r.x);
      EXPECT_EQ(a.bank[i].r.y, b.bank[i].r.y);
      EXPECT_EQ(a.bank[i].r.z, b.bank[i].r.z);
      EXPECT_EQ(a.bank[i].energy, b.bank[i].energy);
    }
  }

  vmc::geom::Geometry geo_;
  std::unique_ptr<vmc::xs::Library> lib_;
  std::unique_ptr<vmc::physics::Collision> coll_;
  int mat_left_ = -1, mat_right_ = -1;
};

TEST_F(CompactSchedulerTest, BitIdenticalToNaiveWithSimdOff) {
  const auto src = make_source(600, 7);
  const auto naive = run(false, false, false, src);
  const auto compact = run(true, false, false, src);
  expect_bit_identical(naive, compact);
  EXPECT_GT(naive.counts.collisions, 0u);
  EXPECT_GT(naive.bank.size(), 0u);
}

TEST_F(CompactSchedulerTest, BitIdenticalToNaiveWithSimdLookup) {
  // The banked lookup kernel indexes each particle's energy elementwise
  // (SIMD runs over the nuclide loop), so per-particle results do not
  // depend on how the bank is grouped — the compact scheduler's sorted
  // subspans must reproduce the naive bucketed sweep bit-for-bit.
  const auto src = make_source(600, 11);
  const auto naive = run(false, true, false, src);
  const auto compact = run(true, true, false, src);
  expect_bit_identical(naive, compact);
}

TEST_F(CompactSchedulerTest, SimdDistanceAgreesStatistically) {
  // Both schedulers now run the identical masked-vlog distance stage
  // (remainder lanes go through load_partial, not a scalar std::log tail),
  // so per-particle distances are lanewise identical no matter how the
  // bank is grouped and the tallies agree to rounding.
  const auto src = make_source(600, 13);
  const auto naive = run(false, true, true, src);
  const auto compact = run(true, true, true, src);
  EXPECT_EQ(naive.counts.histories, compact.counts.histories);
  EXPECT_NEAR(naive.tally.track_length, compact.tally.track_length,
              1e-6 * naive.tally.track_length);
  EXPECT_NEAR(naive.tally.k_collision, compact.tally.k_collision,
              1e-6 * naive.tally.k_collision + 1e-12);
}

TEST_F(CompactSchedulerTest, KHistoryBitIdenticalAcrossSchedulers) {
  // Full eigenvalue campaigns (source resampling, entropy, generation loop)
  // must produce the same k history bit-for-bit with either scheduler.
  Settings s;
  s.n_particles = 300;
  s.n_inactive = 1;
  s.n_active = 2;
  s.seed = 99;
  s.mode = TransportMode::event;
  s.physics = vmc::physics::PhysicsSettings::vector_friendly();
  s.event.simd_lookup = false;
  s.event.simd_distance = false;
  s.event.nu_bar = kNu;
  s.source_lo = {-9.8, -9.8, -9.8};
  s.source_hi = {9.8, 9.8, 9.8};

  s.event.compact_queues = false;
  RunResult naive = Simulation(geo_, *lib_, s).run();
  s.event.compact_queues = true;
  RunResult compact = Simulation(geo_, *lib_, s).run();

  ASSERT_EQ(naive.k_collision_history.size(),
            compact.k_collision_history.size());
  for (std::size_t g = 0; g < naive.k_collision_history.size(); ++g) {
    EXPECT_EQ(naive.k_collision_history[g], compact.k_collision_history[g])
        << "generation " << g;
  }
  EXPECT_EQ(naive.k_eff, compact.k_eff);
  EXPECT_EQ(naive.counts_total.collisions, compact.counts_total.collisions);
}

TEST_F(CompactSchedulerTest, KHistoryBitIdenticalAcrossGridSearch) {
  // The hash-binned grid search selects the same union interval as the
  // binary search bit-for-bit, so a full eigenvalue campaign must produce an
  // identical k history with either search — in every tier, with the SIMD
  // lookup stage both on and off.
  Settings s;
  s.n_particles = 300;
  s.n_inactive = 1;
  s.n_active = 2;
  s.seed = 99;
  s.mode = TransportMode::event;
  s.physics = vmc::physics::PhysicsSettings::vector_friendly();
  s.event.simd_distance = false;
  s.event.nu_bar = kNu;
  s.source_lo = {-9.8, -9.8, -9.8};
  s.source_hi = {9.8, 9.8, 9.8};

  for (const bool simd : {false, true}) {
    s.event.simd_lookup = simd;
    s.event.lookup.search = vmc::xs::GridSearch::binary;
    RunResult binary = Simulation(geo_, *lib_, s).run();
    s.event.lookup.search = vmc::xs::GridSearch::hash;
    RunResult hash = Simulation(geo_, *lib_, s).run();
    s.event.lookup.search = vmc::xs::GridSearch::hash_nuclide;
    RunResult nuclide = Simulation(geo_, *lib_, s).run();

    ASSERT_EQ(binary.k_collision_history.size(),
              hash.k_collision_history.size());
    for (std::size_t g = 0; g < binary.k_collision_history.size(); ++g) {
      EXPECT_EQ(binary.k_collision_history[g], hash.k_collision_history[g])
          << "generation " << g << " simd=" << simd;
    }
    EXPECT_EQ(binary.k_eff, hash.k_eff);
    EXPECT_EQ(binary.counts_total.collisions, hash.counts_total.collisions);
    // The library here is an exact union, so the double-indexed tier is
    // bit-identical too (on thinned unions its banked sweep is exact while
    // the imap walk is approximate; see tests/xsdata/test_hash_grid.cpp).
    EXPECT_EQ(binary.k_eff, nuclide.k_eff);
    EXPECT_EQ(binary.counts_total.collisions,
              nuclide.counts_total.collisions);
  }
}

TEST_F(CompactSchedulerTest, MassDeathFirstIterationStaysBitIdentical) {
  // Thin, low-density, vacuum-bounded medium: the mean free path (hundreds
  // of cm) dwarfs the 20 cm box, so the overwhelming majority of particles
  // leak on their very first flight. This is the compaction stress case —
  // the live queue collapses to a sliver in iteration 1 — and the schedule
  // must stay bit-identical to the naive sweep while doing O(live) work.
  build(/*density_scale=*/0.001, /*vacuum=*/true);
  const int n = 500;
  const auto src = make_source(n, 17);
  const auto naive = run(false, false, false, src);
  const auto compact = run(true, false, false, src);
  expect_bit_identical(naive, compact);

  int died_without_collision = 0;
  for (const Particle& p : compact.particles) {
    EXPECT_FALSE(p.alive);
    if (p.n_collisions == 0) ++died_without_collision;
  }
  EXPECT_GT(died_without_collision, (9 * n) / 10)
      << "stress fixture should kill >90% of particles in iteration 1";
  EXPECT_GT(compact.tally.leakage, 0.9 * n);
}

TEST_F(CompactSchedulerTest, EmptyLiveSetTerminatesImmediately) {
  // Every particle is born outside the geometry: the live queue is empty
  // before the first iteration, the run must terminate without a single
  // lookup, and all weight lands in the leakage tally.
  const int n = 64;
  std::vector<Particle> src;
  for (int i = 0; i < n; ++i) {
    src.push_back(Particle::born(3, static_cast<std::uint64_t>(i),
                                 {100.0 + i, 100.0, 100.0}, 1.0));
  }
  const auto compact = run(true, false, false, src);
  EXPECT_EQ(compact.counts.lookups, 0u);
  EXPECT_EQ(compact.counts.collisions, 0u);
  EXPECT_EQ(compact.counts.histories, static_cast<std::uint64_t>(n));
  EXPECT_EQ(compact.tally.leakage, static_cast<double>(n));
  for (const Particle& p : compact.particles) EXPECT_FALSE(p.alive);
  // And the empty span itself is a no-op.
  std::vector<Particle> none;
  const auto empty = run(true, false, false, none);
  EXPECT_EQ(empty.counts.histories, 0u);
}

}  // namespace
