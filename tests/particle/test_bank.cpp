// SoA particle bank: round-tripping, alignment, byte accounting.
#include <gtest/gtest.h>

#include <cstdint>

#include "particle/bank.hpp"

namespace {

using namespace vmc::particle;

TEST(SoABank, PushAndExtractRoundTrip) {
  SoABank bank(10);
  for (int i = 0; i < 10; ++i) {
    bank.push({1.0 * i, 2.0 * i, 3.0 * i}, {0, 0, 1}, 0.5 + i, 1.0,
              static_cast<std::uint64_t>(i), i % 3);
  }
  ASSERT_EQ(bank.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const Particle p = bank.extract(i, /*master_seed=*/42);
    EXPECT_DOUBLE_EQ(p.r.x, 1.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.r.z, 3.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.energy, 0.5 + static_cast<double>(i));
    EXPECT_EQ(p.id, i);
    // Extracted stream equals a fresh for_particle stream.
    vmc::rng::Stream ref = vmc::rng::Stream::for_particle(42, i);
    EXPECT_EQ(p.stream.state(), ref.state());
  }
}

TEST(SoABank, PushParticleObject) {
  Particle p = Particle::born(7, 3, {1, 2, 3}, 2.0);
  SoABank bank;
  bank.push(p);
  EXPECT_EQ(bank.size(), 1u);
  EXPECT_DOUBLE_EQ(bank.x[0], 1.0);
  EXPECT_DOUBLE_EQ(bank.energy[0], 2.0);
  EXPECT_EQ(bank.id[0], 3u);
}

TEST(SoABank, ClearResets) {
  SoABank bank;
  bank.push({0, 0, 0}, {0, 0, 1}, 1.0, 1.0, 0, 0);
  bank.clear();
  EXPECT_EQ(bank.size(), 0u);
  EXPECT_TRUE(bank.empty());
  EXPECT_EQ(bank.bytes(), 0u);
}

TEST(SoABank, ColumnsAreAligned) {
  SoABank bank(1000);
  for (int i = 0; i < 1000; ++i) {
    bank.push({0, 0, 0}, {0, 0, 1}, 1.0, 1.0, 0, 0);
  }
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
  };
  EXPECT_TRUE(aligned(bank.x.data()));
  EXPECT_TRUE(aligned(bank.energy.data()));
  EXPECT_TRUE(aligned(bank.weight.data()));
  EXPECT_TRUE(aligned(bank.material.data()));
}

TEST(SoABank, ByteAccountingScalesWithSize) {
  SoABank bank;
  EXPECT_EQ(bank.bytes(), 0u);
  for (int i = 0; i < 100; ++i) {
    bank.push({0, 0, 0}, {0, 0, 1}, 1.0, 1.0, 0, 0);
  }
  EXPECT_EQ(bank.bytes(), 100 * SoABank::bytes_per_particle());
  EXPECT_GE(SoABank::bytes_per_particle(), 6 * 8 + 8 + 4 + 8 + 4);
}

TEST(Particle, BornIsDeterministicAndIsotropic) {
  const Particle a = Particle::born(9, 5, {0, 0, 0}, 2.0);
  const Particle b = Particle::born(9, 5, {0, 0, 0}, 2.0);
  EXPECT_DOUBLE_EQ(a.u.x, b.u.x);
  EXPECT_DOUBLE_EQ(a.u.z, b.u.z);
  EXPECT_NEAR(a.u.norm(), 1.0, 1e-12);
  EXPECT_TRUE(a.alive);

  // Direction distribution is isotropic over many ids.
  double zsum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    zsum += Particle::born(9, static_cast<std::uint64_t>(i), {0, 0, 0}, 1.0).u.z;
  }
  EXPECT_NEAR(zsum / n, 0.0, 0.02);
}

}  // namespace
