// FairShareQueue contract: start-time fair queuing — weighted shares, FIFO
// within a tenant, resumed jobs re-enter at the front of fair order, and
// close() drains before unblocking poppers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/queue.hpp"

namespace serve = vmc::serve;

namespace {

serve::Job make_job(const std::string& tenant, double weight,
                    std::uint64_t seq) {
  serve::Job j;
  j.spec.tenant = tenant;
  j.spec.weight = weight;
  j.spec.job_id = tenant + "-" + std::to_string(seq);
  j.seq = seq;
  return j;
}

std::vector<std::string> pop_all(serve::FairShareQueue& q) {
  q.close();
  std::vector<std::string> order;
  serve::Job j;
  while (q.pop(j)) order.push_back(j.spec.job_id);
  return order;
}

TEST(FairShareQueue, FifoWithinATenant) {
  serve::FairShareQueue q;
  for (std::uint64_t i = 0; i < 5; ++i) q.push(make_job("a", 1.0, i));
  const auto order = pop_all(q);
  ASSERT_EQ(order.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(order[i], "a-" + std::to_string(i));
  }
}

TEST(FairShareQueue, WeightedTenantDrainsProportionally) {
  // alpha (weight 2) and beta (weight 1) submit alternately; virtual finish
  // times are alpha: .5, 1, 1.5, 2 and beta: 1, 2, 3, 4, so the pop order is
  // fully determined (ties break on admission seq).
  serve::FairShareQueue q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    q.push(make_job("alpha", 2.0, seq++));
    q.push(make_job("beta", 1.0, seq++));
  }
  const auto order = pop_all(q);
  const std::vector<std::string> expect = {"alpha-0", "beta-1", "alpha-2",
                                           "alpha-4", "beta-3", "alpha-6",
                                           "beta-5",  "beta-7"};
  EXPECT_EQ(order, expect);
  // The share property the exact order implies: alpha's 4 jobs all landed in
  // the first 6 pops — twice beta's drain rate.
}

TEST(FairShareQueue, EqualWeightsInterleaveFairly) {
  // A burst from one tenant cannot starve another: after "hog" enqueues 4
  // jobs, a single "late" job still pops second, not fifth.
  serve::FairShareQueue q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) q.push(make_job("hog", 1.0, seq++));
  q.push(make_job("late", 1.0, seq++));
  const auto order = pop_all(q);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "hog-0");
  EXPECT_EQ(order[1], "late-4");
}

TEST(FairShareQueue, ResumedJobGoesToTheFrontOfFairOrder) {
  serve::FairShareQueue q;
  for (std::uint64_t i = 0; i < 3; ++i) q.push(make_job("a", 1.0, i));
  serve::Job j;
  ASSERT_TRUE(q.pop(j));
  EXPECT_EQ(j.spec.job_id, "a-0");
  // a-0's worker died: re-admitted at the current virtual time, it must pop
  // before the jobs that were already queued behind it.
  j.resumes = 1;
  q.push_resumed(std::move(j));
  ASSERT_TRUE(q.pop(j));
  EXPECT_EQ(j.spec.job_id, "a-0");
  EXPECT_EQ(j.resumes, 1);
}

TEST(FairShareQueue, CloseDrainsPendingThenUnblocks) {
  serve::FairShareQueue q;
  q.push(make_job("a", 1.0, 0));
  q.push(make_job("a", 1.0, 1));
  q.close();
  serve::Job j;
  EXPECT_TRUE(q.pop(j));
  EXPECT_TRUE(q.pop(j));
  EXPECT_FALSE(q.pop(j)) << "closed and drained must return false";
  EXPECT_EQ(q.depth(), 0u);
}

}  // namespace
