// Server end-to-end contract: admitted jobs run to completion with results,
// warm cache hits skip the library build yet reproduce a cold run's k-eff
// history bit-for-bit, admission control bounces with structured errors, and
// the manifest ledger survives result consumption.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "serve/job_spec.hpp"
#include "serve/server.hpp"

namespace serve = vmc::serve;

namespace {

serve::JobSpec tiny_spec(std::uint64_t seed = 11) {
  serve::JobSpec s;
  s.model = "small";
  s.nuclides = 4;
  s.grid_scale = 0.02;
  s.batches = 3;
  s.inactive = 1;
  s.particles = 150;
  s.seed = seed;
  return s;
}

const serve::JobResult* find_result(const std::vector<serve::JobResult>& rs,
                                    const std::string& id) {
  for (const serve::JobResult& r : rs)
    if (r.job_id == id) return &r;
  return nullptr;
}

TEST(Server, RunsAdmittedJobsToCompletion) {
  serve::Server server(serve::ServerConfig{});
  const std::string a = server.submit(tiny_spec(1));
  const std::string b = server.submit(tiny_spec(2));
  server.drain();
  const auto results = server.take_results();
  ASSERT_EQ(results.size(), 2u);
  for (const std::string& id : {a, b}) {
    const serve::JobResult* r = find_result(results, id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->status, "done");
    EXPECT_EQ(r->k_history.size(), 3u);
    EXPECT_GT(r->k_eff, 0.0);
    EXPECT_GT(r->latency_seconds, 0.0);
  }
  // Same digest: the second job must have ridden the first one's library.
  EXPECT_EQ(server.cache_stats().misses, 1u);
  EXPECT_EQ(server.cache_stats().hits, 1u);
}

TEST(Server, WarmHitIsBitIdenticalToAColdRun) {
  // Cold: a fresh server builds the library for this spec from nothing.
  std::vector<double> cold_k;
  {
    serve::Server server(serve::ServerConfig{});
    const std::string id = server.submit(tiny_spec(77));
    server.drain();
    const auto rs = server.take_results();
    const serve::JobResult* r = find_result(rs, id);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->status, "done");
    EXPECT_FALSE(r->cache_hit);
    cold_k = r->k_history;
  }
  // Warm: a different server whose cache already holds this digest (plus an
  // unrelated entry) serves the same spec as a hit — finalize/rebuild never
  // ran for it, yet the transport history must match the cold run bit for
  // bit, because the cached library is the same immutable object a cold
  // build produces.
  {
    serve::ServerConfig cfg;
    cfg.workers = 1;  // deterministic admission->run order for this check
    serve::Server server(cfg);
    serve::JobSpec other = tiny_spec(5);
    other.temperature_K = 600.0;  // different digest: populates the cache
    server.submit(other);
    server.submit(tiny_spec(123));  // same digest as the cold spec, cold here
    const std::string id = server.submit(tiny_spec(77));
    server.drain();
    const auto rs = server.take_results();
    const serve::JobResult* r = find_result(rs, id);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->status, "done");
    EXPECT_TRUE(r->cache_hit) << "third submit shares the second's digest";
    ASSERT_EQ(r->k_history.size(), cold_k.size());
    for (std::size_t g = 0; g < cold_k.size(); ++g) {
      EXPECT_EQ(r->k_history[g], cold_k[g])
          << "bitwise divergence at generation " << g;
    }
  }
}

TEST(Server, OverBudgetSubmissionsBounceWithStructuredErrors) {
  serve::ServerConfig cfg;
  cfg.max_particles = 1000;
  cfg.max_batches = 10;
  serve::Server server(cfg);

  serve::JobSpec s = tiny_spec();
  s.particles = 2000;
  try {
    server.submit(s);
    FAIL() << "over-budget particles were admitted";
  } catch (const serve::SpecRejected& e) {
    EXPECT_EQ(e.error().code, "over_budget");
    EXPECT_EQ(e.error().field, "particles");
  }

  s = tiny_spec();
  s.batches = 50;
  s.inactive = 1;
  try {
    server.submit(s);
    FAIL() << "over-budget batches were admitted";
  } catch (const serve::SpecRejected& e) {
    EXPECT_EQ(e.error().code, "over_budget");
    EXPECT_EQ(e.error().field, "batches");
  }

  s = tiny_spec();
  s.temperature_K = 10.0;  // valid physics, outside the served band
  try {
    server.submit(s);
    FAIL() << "out-of-band temperature was admitted";
  } catch (const serve::SpecRejected& e) {
    EXPECT_EQ(e.error().code, "over_budget");
    EXPECT_EQ(e.error().field, "temperature_K");
  }
  server.shutdown();
}

TEST(Server, ShutdownRefusesNewWork) {
  serve::Server server(serve::ServerConfig{});
  server.shutdown();
  try {
    server.submit(tiny_spec());
    FAIL() << "submit after shutdown was admitted";
  } catch (const serve::SpecRejected& e) {
    EXPECT_EQ(e.error().code, "unavailable");
  }
}

TEST(Server, SubmitJsonAssignsIdsAndRejectsMalformed) {
  serve::Server server(serve::ServerConfig{});
  const std::string id = server.submit_json(
      R"({"schema":"vectormc.job.v1","model":"small","nuclides":4,)"
      R"("grid_scale":0.02,"batches":2,"inactive":1,"particles":100})");
  EXPECT_FALSE(id.empty());
  EXPECT_THROW(server.submit_json("{not json"), serve::SpecRejected);
  server.drain();
  const auto rs = server.take_results();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].job_id, id);
  EXPECT_EQ(rs[0].status, "done");
}

TEST(Server, ManifestLedgerSurvivesResultConsumption) {
  serve::Server server(serve::ServerConfig{});
  server.submit(tiny_spec(3));
  server.drain();
  // The daemon consumes results to publish documents...
  EXPECT_EQ(server.take_results().size(), 1u);
  EXPECT_TRUE(server.take_results().empty());
  // ...but the end-of-run manifest still sees the whole history.
  vmc::obs::RunManifest m;
  server.fill_manifest(m);
  const std::string doc = m.json();
  EXPECT_NE(doc.find("\"jobs\""), std::string::npos);
  EXPECT_NE(doc.find("\"tenant\""), std::string::npos);
}

TEST(Server, DeviceJobsRunInEventMode) {
  serve::Server server(serve::ServerConfig{});
  serve::JobSpec s = tiny_spec(9);
  s.devices = 2;  // budget-validated and recorded; selects the event sweep
  const std::string id = server.submit(s);
  server.drain();
  const auto rs = server.take_results();
  const serve::JobResult* r = find_result(rs, id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status, "done");
}

}  // namespace
