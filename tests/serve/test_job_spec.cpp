// vectormc.job.v1 parse/validate contract: strict rejection with structured
// errors (code + field) on every malformation, lossless round-trips on every
// valid document, and content-digest semantics that hash exactly the
// library-determining axes.
#include <gtest/gtest.h>

#include <string>

#include "serve/job_spec.hpp"

namespace serve = vmc::serve;

namespace {

serve::SpecError parse_error(const std::string& text) {
  try {
    serve::parse_job_spec(text);
  } catch (const serve::SpecRejected& e) {
    return e.error();
  }
  ADD_FAILURE() << "spec was accepted: " << text;
  return {};
}

std::string valid_doc() {
  return R"({"schema":"vectormc.job.v1","tenant":"t","model":"small",)"
         R"("nuclides":8,"tier":"hash","temperature_K":600,"grid_scale":0.05,)"
         R"("batches":4,"inactive":1,"particles":500,"seed":9,"devices":0})";
}

TEST(JobSpec, ValidDocumentParses) {
  const serve::JobSpec s = serve::parse_job_spec(valid_doc());
  EXPECT_EQ(s.tenant, "t");
  EXPECT_EQ(s.model, "small");
  EXPECT_EQ(s.nuclides, 8);
  EXPECT_EQ(s.tier, vmc::xs::GridSearch::hash);
  EXPECT_DOUBLE_EQ(s.temperature_K, 600.0);
  EXPECT_DOUBLE_EQ(s.grid_scale, 0.05);
  EXPECT_EQ(s.batches, 4);
  EXPECT_EQ(s.inactive, 1);
  EXPECT_EQ(s.particles, 500u);
  EXPECT_EQ(s.seed, 9u);
}

TEST(JobSpec, RoundTripsThroughJson) {
  serve::JobSpec s = serve::parse_job_spec(valid_doc());
  s.job_id = "rt-1";
  const serve::JobSpec back = serve::parse_job_spec(s.json());
  EXPECT_EQ(back.job_id, s.job_id);
  EXPECT_EQ(back.tenant, s.tenant);
  EXPECT_EQ(back.model, s.model);
  EXPECT_EQ(back.nuclides, s.nuclides);
  EXPECT_EQ(back.tier, s.tier);
  EXPECT_EQ(back.temperature_K, s.temperature_K);  // bit-exact via %.17g
  EXPECT_EQ(back.grid_scale, s.grid_scale);
  EXPECT_EQ(back.batches, s.batches);
  EXPECT_EQ(back.particles, s.particles);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.digest(), s.digest());
}

// The malformed-spec fixture table: every entry is a distinct way a client
// can get the document wrong, and each must surface the documented
// structured error — never a coercion, never a bare string.
struct Malformed {
  const char* name;
  std::string text;
  const char* code;
  const char* field;
};

TEST(JobSpec, MalformedFixturesRejectWithStructuredErrors) {
  const Malformed fixtures[] = {
      {"truncated document",
       R"({"schema":"vectormc.job.v1","particles":)", "bad_json", ""},
      {"trailing garbage", valid_doc() + "x", "bad_json", ""},
      {"not an object", R"([1,2,3])", "wrong_type", ""},
      {"missing schema tag", R"({"tenant":"t"})", "missing_field", "schema"},
      {"wrong schema value",
       R"({"schema":"vectormc.job.v2","particles":1})", "bad_value", "schema"},
      {"unknown member",
       R"({"schema":"vectormc.job.v1","particels":100})", "unknown_field",
       "particels"},
      {"string where number expected",
       R"({"schema":"vectormc.job.v1","particles":"many"})", "wrong_type",
       "particles"},
      {"number where string expected",
       R"({"schema":"vectormc.job.v1","tenant":7})", "wrong_type", "tenant"},
      {"non-finite weight",
       R"({"schema":"vectormc.job.v1","weight":1e999})", "bad_value",
       "weight"},
      {"fractional batches",
       R"({"schema":"vectormc.job.v1","batches":2.5})", "bad_value",
       "batches"},
      {"unknown tier",
       R"({"schema":"vectormc.job.v1","tier":"quantum"})", "bad_value",
       "tier"},
      {"negative seed",
       R"({"schema":"vectormc.job.v1","seed":-1})", "bad_value", "seed"},
      {"bad model",
       R"({"schema":"vectormc.job.v1","model":"huge"})", "bad_value", "model"},
      {"two-nuclide fuel",
       R"({"schema":"vectormc.job.v1","nuclides":2})", "bad_value",
       "nuclides"},
      {"zero particles",
       R"({"schema":"vectormc.job.v1","particles":0})", "bad_value",
       "particles"},
      {"inactive >= batches",
       R"({"schema":"vectormc.job.v1","batches":3,"inactive":3})", "bad_value",
       "inactive"},
      {"zero temperature",
       R"({"schema":"vectormc.job.v1","temperature_K":0})", "bad_value",
       "temperature_K"},
      {"zero grid scale",
       R"({"schema":"vectormc.job.v1","grid_scale":0})", "bad_value",
       "grid_scale"},
      {"zero weight",
       R"({"schema":"vectormc.job.v1","weight":0})", "bad_value", "weight"},
      {"empty tenant",
       R"({"schema":"vectormc.job.v1","tenant":""})", "bad_value", "tenant"},
      {"negative devices",
       R"({"schema":"vectormc.job.v1","devices":-1})", "bad_value",
       "devices"},
  };
  for (const Malformed& m : fixtures) {
    const serve::SpecError e = parse_error(m.text);
    EXPECT_EQ(e.code, m.code) << m.name;
    EXPECT_EQ(e.field, m.field) << m.name;
    EXPECT_FALSE(e.message.empty()) << m.name;
  }
}

TEST(JobSpec, ValidateCatchesCodeBuiltSpecs) {
  serve::JobSpec s;
  s.batches = 0;
  EXPECT_THROW(serve::validate_spec(s), serve::SpecRejected);
}

// --- digest semantics ------------------------------------------------------

TEST(JobSpecDigest, RunShapingAxesDoNotChangeIt) {
  const serve::JobSpec base = serve::parse_job_spec(valid_doc());
  serve::JobSpec s = base;
  s.seed = 777;
  s.particles = 9999;
  s.batches = 10;
  s.inactive = 4;
  s.tenant = "someone-else";
  s.weight = 3.0;
  s.devices = 2;
  s.job_id = "other";
  EXPECT_EQ(s.digest(), base.digest())
      << "seed/size/tenant axes must not fragment the cache";
}

TEST(JobSpecDigest, LibraryAxesEachChangeIt) {
  const serve::JobSpec base = serve::parse_job_spec(valid_doc());
  serve::JobSpec s = base;
  s.model = "large";
  s.nuclides = 0;
  EXPECT_NE(s.digest(), base.digest());
  s = base;
  s.nuclides = 16;
  EXPECT_NE(s.digest(), base.digest());
  s = base;
  s.temperature_K = 900.0;
  EXPECT_NE(s.digest(), base.digest());
  s = base;
  s.grid_scale = 0.06;
  EXPECT_NE(s.digest(), base.digest());
}

TEST(JobSpecDigest, BinaryAndHashTiersShareALibrary) {
  // binary and hash need the same finalized index; only hash_nuclide builds
  // the per-nuclide start table, i.e. a structurally different library.
  serve::JobSpec s = serve::parse_job_spec(valid_doc());
  s.tier = vmc::xs::GridSearch::binary;
  const std::uint64_t binary = s.digest();
  s.tier = vmc::xs::GridSearch::hash;
  EXPECT_EQ(s.digest(), binary);
  s.tier = vmc::xs::GridSearch::hash_nuclide;
  EXPECT_NE(s.digest(), binary);
}

TEST(JobSpecDigest, LibraryKeyMirrorsTheDigestAxes) {
  // The cache's identity is the full key, not the 32-bit digest; the key
  // must be invariant under run-shaping axes and sensitive to every
  // library-determining one.
  const serve::JobSpec base = serve::parse_job_spec(valid_doc());
  serve::JobSpec s = base;
  s.seed = 777;
  s.particles = 9999;
  s.tenant = "someone-else";
  s.devices = 2;
  EXPECT_TRUE(s.library_key() == base.library_key());
  s = base;
  s.model = "large";
  s.nuclides = 0;
  EXPECT_FALSE(s.library_key() == base.library_key());
  s = base;
  s.nuclides = 16;
  EXPECT_FALSE(s.library_key() == base.library_key());
  s = base;
  s.temperature_K = 900.0;
  EXPECT_FALSE(s.library_key() == base.library_key());
  s = base;
  s.grid_scale = 0.06;
  EXPECT_FALSE(s.library_key() == base.library_key());
  s = base;
  s.tier = vmc::xs::GridSearch::hash_nuclide;
  EXPECT_FALSE(s.library_key() == base.library_key());
}

TEST(JobSpecDigest, NuclideOverrideMatchingDefaultIsSameLibrary) {
  // nuclides=34 spelled explicitly is the same fuel as the small default:
  // the digest hashes the EFFECTIVE count, not the raw field.
  serve::JobSpec a = serve::parse_job_spec(valid_doc());
  a.nuclides = 0;
  serve::JobSpec b = a;
  b.nuclides = a.effective_nuclides();
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
