// ModelCache contract: content-addressed sharing (pointer identity on hits),
// single-flight concurrent builds, LRU eviction against the byte budget, and
// the in-use protection that keeps running jobs' models resident.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/job_spec.hpp"

namespace serve = vmc::serve;

namespace {

// Serving-sized spec: a few nuclides on a tiny grid so builds are fast.
serve::JobSpec tiny_spec(double temperature_K = 300.0, int nuclides = 4) {
  serve::JobSpec s;
  s.model = "small";
  s.nuclides = nuclides;
  s.grid_scale = 0.02;
  s.temperature_K = temperature_K;
  return s;
}

TEST(ModelCache, HitReturnsTheSamePointerWithoutRebuilding) {
  serve::ModelCache cache;
  bool hit = true;
  const auto a = cache.acquire(tiny_spec(), &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.acquire(tiny_spec(), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get()) << "a hit must hand out the cached instance";
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(ModelCache, DistinctDigestsBuildDistinctEntries) {
  serve::ModelCache cache;
  const auto a = cache.acquire(tiny_spec(300.0));
  const auto b = cache.acquire(tiny_spec(600.0));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ModelCache, ConcurrentFirstRequestsBuildExactlyOnce) {
  serve::ModelCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const vmc::hm::Model>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&cache, &got, t] { got[static_cast<std::size_t>(t)] = cache.acquire(tiny_spec()); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  }
  // Single-flight: one build ran; every coalesced waiter counts as a hit.
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ModelCache, EvictsLeastRecentlyUsedUnderBudget) {
  serve::ModelCache cache(/*byte_budget=*/1);  // everything is over budget
  { const auto a = cache.acquire(tiny_spec(300.0)); }
  // a is now unreferenced; the next insert's budget pass evicts it.
  { const auto b = cache.acquire(tiny_spec(600.0)); }
  cache.enforce_budget();  // b unreferenced too: evicted on the eager pass
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.bytes, 0u);
}

TEST(ModelCache, NeverEvictsAModelAJobStillHolds) {
  serve::ModelCache cache(/*byte_budget=*/1);
  const auto held = cache.acquire(tiny_spec(300.0));  // kept alive: "running"
  const auto other = cache.acquire(tiny_spec(600.0));
  cache.enforce_budget();
  // Both models are referenced outside the cache: the budget is blown but
  // neither entry may be dropped.
  EXPECT_EQ(cache.stats().entries, 2u);
  bool hit = false;
  const auto again = cache.acquire(tiny_spec(300.0), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), held.get());
}

TEST(ModelCache, ReleasedEntriesBecomeEvictable) {
  serve::ModelCache cache(/*byte_budget=*/1);
  auto held = cache.acquire(tiny_spec(300.0));
  cache.enforce_budget();
  EXPECT_EQ(cache.stats().entries, 1u);
  held.reset();
  cache.enforce_budget();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ModelCache, BytesTrackTheLibraryAccounting) {
  serve::ModelCache cache;
  const auto m = cache.acquire(tiny_spec());
  const std::size_t expect = m->library.union_bytes() +
                             m->library.pointwise_bytes() +
                             m->library.hash_bytes();
  EXPECT_EQ(cache.stats().bytes, expect);
}

}  // namespace
