// ModelCache contract: content-addressed sharing (pointer identity on hits),
// single-flight concurrent builds, LRU eviction against the byte budget, and
// the in-use protection that keeps running jobs' models resident.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "resil/crc32.hpp"
#include "serve/cache.hpp"
#include "serve/job_spec.hpp"

namespace serve = vmc::serve;

namespace {

// Serving-sized spec: a few nuclides on a tiny grid so builds are fast.
serve::JobSpec tiny_spec(double temperature_K = 300.0, int nuclides = 4) {
  serve::JobSpec s;
  s.model = "small";
  s.nuclides = nuclides;
  s.grid_scale = 0.02;
  s.temperature_K = temperature_K;
  return s;
}

TEST(ModelCache, HitReturnsTheSamePointerWithoutRebuilding) {
  serve::ModelCache cache;
  bool hit = true;
  const auto a = cache.acquire(tiny_spec(), &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.acquire(tiny_spec(), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get()) << "a hit must hand out the cached instance";
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(ModelCache, DistinctDigestsBuildDistinctEntries) {
  serve::ModelCache cache;
  const auto a = cache.acquire(tiny_spec(300.0));
  const auto b = cache.acquire(tiny_spec(600.0));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ModelCache, ConcurrentFirstRequestsBuildExactlyOnce) {
  serve::ModelCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const vmc::hm::Model>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&cache, &got, t] { got[static_cast<std::size_t>(t)] = cache.acquire(tiny_spec()); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  }
  // Single-flight: one build ran; every coalesced waiter counts as a hit.
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ModelCache, EvictsLeastRecentlyUsedUnderBudget) {
  serve::ModelCache cache(/*byte_budget=*/1);  // everything is over budget
  { const auto a = cache.acquire(tiny_spec(300.0)); }
  // a is now unreferenced; the next insert's budget pass evicts it.
  { const auto b = cache.acquire(tiny_spec(600.0)); }
  cache.enforce_budget();  // b unreferenced too: evicted on the eager pass
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.bytes, 0u);
}

TEST(ModelCache, NeverEvictsAModelAJobStillHolds) {
  serve::ModelCache cache(/*byte_budget=*/1);
  const auto held = cache.acquire(tiny_spec(300.0));  // kept alive: "running"
  const auto other = cache.acquire(tiny_spec(600.0));
  cache.enforce_budget();
  // Both models are referenced outside the cache: the budget is blown but
  // neither entry may be dropped.
  EXPECT_EQ(cache.stats().entries, 2u);
  bool hit = false;
  const auto again = cache.acquire(tiny_spec(300.0), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), held.get());
}

TEST(ModelCache, ReleasedEntriesBecomeEvictable) {
  serve::ModelCache cache(/*byte_budget=*/1);
  auto held = cache.acquire(tiny_spec(300.0));
  cache.enforce_budget();
  EXPECT_EQ(cache.stats().entries, 1u);
  held.reset();
  cache.enforce_budget();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GE(cache.stats().evictions, 1u);
}

// --- digest-collision safety ----------------------------------------------
//
// The digest is a 32-bit CRC, so collisions between DIFFERENT physics are
// constructible (CRC32 is linear: four chosen trailing bytes steer the state
// anywhere). The cache must compare the full library key on lookup and treat
// such a collision as a miss — otherwise one tenant's forged spec would be
// served another tenant's model.

// Internal (pre-final-xor) CRC-32 state over `bytes`. Digest equality is
// state equality, so forging targets the state directly.
std::uint32_t crc_state(const std::vector<unsigned char>& bytes) {
  const auto& T = vmc::resil::detail::kCrc32Table;
  std::uint32_t s = 0xFFFFFFFFu;
  for (unsigned char b : bytes) s = T[(s ^ b) & 0xFFu] ^ (s >> 8);
  return s;
}

// JobSpec::digest()'s byte stream, truncated to the first `grid_bytes` bytes
// of the trailing grid_scale field.
std::vector<unsigned char> digest_stream(const serve::JobSpec& s,
                                         std::size_t grid_bytes) {
  std::vector<unsigned char> out;
  const auto add = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + n);
  };
  const char salt[] = "vectormc.job.v1";
  add(salt, sizeof salt);
  add(s.model.data(), s.model.size());
  const std::int64_t n_fuel = s.effective_nuclides();
  add(&n_fuel, sizeof n_fuel);
  const unsigned char nuclide_index =
      s.tier == vmc::xs::GridSearch::hash_nuclide;
  add(&nuclide_index, 1);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &s.temperature_K, sizeof bits);
  add(&bits, sizeof bits);
  std::memcpy(&bits, &s.grid_scale, sizeof bits);
  add(&bits, grid_bytes);
  return out;
}

// The four trailing bytes that take internal CRC state `from` to `to`.
// The table's top bytes form a permutation, so each target byte (top-down)
// pins exactly one table index, and each index is reachable because the
// message byte is free.
std::array<unsigned char, 4> crc_patch(std::uint32_t from, std::uint32_t to) {
  const auto& T = vmc::resil::detail::kCrc32Table;
  std::array<unsigned char, 256> rev{};
  for (int i = 0; i < 256; ++i)
    rev[T[static_cast<std::size_t>(i)] >> 24] = static_cast<unsigned char>(i);
  std::array<unsigned char, 4> idx{};
  std::uint32_t d = to;
  idx[3] = rev[(d >> 24) & 0xFFu];
  d ^= T[idx[3]];
  idx[2] = rev[(d >> 16) & 0xFFu];
  d ^= T[idx[2]] >> 8;
  idx[1] = rev[(d >> 8) & 0xFFu];
  d ^= T[idx[1]] >> 16;
  idx[0] = rev[d & 0xFFu];
  std::array<unsigned char, 4> patch{};
  std::uint32_t cur = from;
  for (int k = 0; k < 4; ++k) {
    patch[static_cast<std::size_t>(k)] =
        static_cast<unsigned char>((cur ^ idx[static_cast<std::size_t>(k)]) & 0xFFu);
    cur = (cur >> 8) ^ T[idx[static_cast<std::size_t>(k)]];
  }
  return patch;
}

TEST(ModelCache, ForgedDigestCollisionsNeverAliasEntries) {
  serve::JobSpec a = tiny_spec(300.0);
  serve::JobSpec b = tiny_spec(600.0);
  // Forge b's grid_scale bits so digest(b) == digest(a) while the physics
  // (temperature) differs — the adversarial-tenant construction.
  const std::uint32_t target = crc_state(digest_stream(a, 8));
  const auto patch = crc_patch(crc_state(digest_stream(b, 4)), target);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &b.grid_scale, sizeof bits);
  std::memcpy(reinterpret_cast<unsigned char*>(&bits) + 4, patch.data(), 4);
  std::memcpy(&b.grid_scale, &bits, sizeof bits);
  ASSERT_EQ(a.digest(), b.digest()) << "forge must actually collide";
  ASSERT_FALSE(a.library_key() == b.library_key());

  // Injected builder: the forged grid_scale is garbage bits, so no real
  // build must run; the cache must still keep the specs apart.
  int builds = 0;
  serve::ModelCache cache(std::size_t{256} << 20,
                          [&builds](const serve::JobSpec&) {
                            ++builds;
                            return std::make_shared<const vmc::hm::Model>();
                          });
  const auto ma = cache.acquire(a);
  bool hit = true;
  const auto mb = cache.acquire(b, &hit);
  EXPECT_FALSE(hit) << "a digest collision must read as a miss";
  EXPECT_NE(ma.get(), mb.get())
      << "colliding digests must never share a model";
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.stats().entries, 2u);
}

// --- build-failure semantics -----------------------------------------------

TEST(ModelCache, BuildFailureRethrowsToEveryCoalescedWaiter) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> builds{0};
  std::atomic<bool> fail{true};
  serve::ModelCache cache(
      std::size_t{256} << 20,
      [&](const serve::JobSpec&) -> std::shared_ptr<const vmc::hm::Model> {
        builds.fetch_add(1);
        gate.wait();
        if (fail.load()) throw std::runtime_error("injected build failure");
        return std::make_shared<const vmc::hm::Model>();
      });

  constexpr int kThreads = 6;
  std::atomic<int> arrived{0};
  std::atomic<int> caught{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      try {
        cache.acquire(tiny_spec());
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    });
  }
  // Hold the build until every thread is at (or coalesced onto) the flight.
  while (arrived.load() < kThreads)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(caught.load(), kThreads)
      << "every waiter of the failed flight must rethrow";
  EXPECT_EQ(builds.load(), 1)
      << "one failed flight, not N serial failed rebuilds";

  // The failure is not sticky: the entry is gone, the next acquire retries.
  fail.store(false);
  bool hit = true;
  const auto m = cache.acquire(tiny_spec(), &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(m.get(), nullptr);
  EXPECT_EQ(builds.load(), 2);
}

TEST(ModelCache, BytesTrackTheLibraryAccounting) {
  serve::ModelCache cache;
  const auto m = cache.acquire(tiny_spec());
  const std::size_t expect = m->library.union_bytes() +
                             m->library.pointwise_bytes() +
                             m->library.hash_bytes();
  EXPECT_EQ(cache.stats().bytes, expect);
}

}  // namespace
