// Chaos tests for the serving layer's two fault domains:
//
//   serve.accept        the ingress path dies mid-admission — the client gets
//                       a structured `unavailable` rejection and the server
//                       stays healthy for the next submit;
//   serve.worker_death  a worker dies after a generation's checkpoint — the
//                       job resumes from the statepoint at the front of its
//                       tenant's share, and PR 2's restart equivalence makes
//                       the killed-and-resumed k history bit-identical to an
//                       undisturbed run. Exhausting the resume budget (or
//                       dying with no checkpoint to resume from) fails the
//                       job with a structured `worker_death` error instead of
//                       wedging the queue.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "resil/fault.hpp"
#include "serve/job_spec.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"

namespace serve = vmc::serve;
namespace resil = vmc::resil;

namespace {

serve::JobSpec tiny_spec(std::uint64_t seed = 21) {
  serve::JobSpec s;
  s.model = "small";
  s.nuclides = 4;
  s.grid_scale = 0.02;
  s.batches = 4;
  s.inactive = 1;
  s.particles = 150;
  s.seed = seed;
  return s;
}

std::string chaos_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  serve::spool::make_dirs(dir);
  std::remove((dir + "/job_0.sp").c_str());
  return dir;
}

TEST(ChaosServe, AcceptFaultRejectsStructuredAndServerSurvives) {
  resil::FaultPlan plan;
  plan.fail_at("serve.accept", {0}, /*key=*/0);  // kill admission of seq 0
  resil::PlanGuard guard(plan);

  serve::Server server(serve::ServerConfig{});
  try {
    server.submit(tiny_spec(1));
    FAIL() << "the armed accept fault did not fire";
  } catch (const serve::SpecRejected& e) {
    EXPECT_EQ(e.error().code, "unavailable");
  }
  EXPECT_EQ(resil::fires("serve.accept"), 1u);

  // The next admission (seq 1, no rule) must sail through: an ingress fault
  // is a per-request event, not a poisoned server.
  const std::string id = server.submit(tiny_spec(2));
  server.drain();
  const auto rs = server.take_results();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].job_id, id);
  EXPECT_EQ(rs[0].status, "done");
}

TEST(ChaosServe, KilledWorkerResumesBitIdentical) {
  // Undisturbed baseline (checkpointing on, so the only difference between
  // the two runs is the injected death + resume).
  const std::string dir = chaos_dir("chaos_serve_baseline");
  std::vector<double> baseline_k;
  {
    serve::ServerConfig cfg;
    cfg.checkpoint_dir = dir;
    cfg.checkpoint_every = 1;
    serve::Server server(cfg);
    server.submit(tiny_spec(33));
    server.drain();
    const auto rs = server.take_results();
    ASSERT_EQ(rs.size(), 1u);
    ASSERT_EQ(rs[0].status, "done");
    EXPECT_EQ(rs[0].resumes, 0);
    baseline_k = rs[0].k_history;
  }
  ASSERT_EQ(baseline_k.size(), 4u);

  // Chaos run: the worker dies right after generation 1's checkpoint
  // (key = (seq 0 << 16) | gen 1). The job must resume from that statepoint
  // and replay generations 2..3 to the same bits.
  const std::string dir2 = chaos_dir("chaos_serve_killed");
  resil::FaultPlan plan;
  plan.fail_at("serve.worker_death", {0}, /*key=*/(0ull << 16) | 1ull);
  resil::PlanGuard guard(plan);
  serve::ServerConfig cfg;
  cfg.checkpoint_dir = dir2;
  cfg.checkpoint_every = 1;
  serve::Server server(cfg);
  server.submit(tiny_spec(33));
  server.drain();
  EXPECT_EQ(resil::fires("serve.worker_death"), 1u);
  const auto rs = server.take_results();
  ASSERT_EQ(rs.size(), 1u);
  ASSERT_EQ(rs[0].status, "done");
  EXPECT_EQ(rs[0].resumes, 1);
  ASSERT_EQ(rs[0].k_history.size(), baseline_k.size());
  for (std::size_t g = 0; g < baseline_k.size(); ++g) {
    EXPECT_EQ(rs[0].k_history[g], baseline_k[g])
        << "killed-and-resumed run diverged at generation " << g;
  }
}

TEST(ChaosServe, DeathWithoutCheckpointFailsStructured) {
  // No checkpoint_dir: there is nothing to resume from, so the first death
  // must fail the job with a structured error — not retry, not hang.
  resil::FaultPlan plan;
  plan.always("serve.worker_death");
  resil::PlanGuard guard(plan);
  serve::Server server(serve::ServerConfig{});
  server.submit(tiny_spec(4));
  server.drain();
  const auto rs = server.take_results();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].status, "failed");
  EXPECT_EQ(rs[0].error.code, "worker_death");
}

TEST(ChaosServe, ResumeBudgetExhaustionFailsInsteadOfLooping) {
  // Every generation kills the worker; with checkpoints available the job
  // resumes max_resumes times, then fails — bounded recovery, no livelock.
  const std::string dir = chaos_dir("chaos_serve_budget");
  resil::FaultPlan plan;
  plan.always("serve.worker_death");
  resil::PlanGuard guard(plan);
  serve::ServerConfig cfg;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 1;
  cfg.max_resumes = 2;
  serve::Server server(cfg);
  server.submit(tiny_spec(5));
  server.drain();
  const auto rs = server.take_results();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].status, "failed");
  EXPECT_EQ(rs[0].error.code, "worker_death");
  EXPECT_EQ(rs[0].resumes, cfg.max_resumes);
  EXPECT_EQ(resil::fires("serve.worker_death"),
            static_cast<std::uint64_t>(cfg.max_resumes) + 1u);
}

}  // namespace
