// Hoogenboom-Martin model builders: nuclide counts, core map, guide-tube
// layout, and geometry integrity of the full 241-assembly core.
#include <gtest/gtest.h>

#include <cmath>

#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

namespace {

using namespace vmc::hm;

TEST(HmLayout, GuideTubeCountIs25) {
  int count = 0;
  for (int iy = 0; iy < 17; ++iy) {
    for (int ix = 0; ix < 17; ++ix) {
      if (is_guide_tube(ix, iy)) ++count;
    }
  }
  EXPECT_EQ(count, 25);  // 24 guide tubes + 1 instrumentation tube
  EXPECT_TRUE(is_guide_tube(8, 8));  // central instrumentation tube
  // Quarter symmetry of the standard layout.
  for (int iy = 0; iy < 17; ++iy) {
    for (int ix = 0; ix < 17; ++ix) {
      EXPECT_EQ(is_guide_tube(ix, iy), is_guide_tube(16 - ix, iy));
      EXPECT_EQ(is_guide_tube(ix, iy), is_guide_tube(ix, 16 - iy));
    }
  }
}

TEST(HmLayout, CoreMapHas241Assemblies) {
  int count = 0;
  for (int iy = 0; iy < 19; ++iy) {
    for (int ix = 0; ix < 19; ++ix) {
      if (is_fuel_assembly(ix, iy)) ++count;
    }
  }
  EXPECT_EQ(count, 241);
  EXPECT_TRUE(is_fuel_assembly(9, 9));    // center
  EXPECT_FALSE(is_fuel_assembly(0, 0));   // corners are water
  EXPECT_FALSE(is_fuel_assembly(18, 18));
}

TEST(HmMaterials, NuclideCountsMatchPaper) {
  EXPECT_EQ(fuel_nuclide_count(FuelSize::small), 34);
  EXPECT_EQ(fuel_nuclide_count(FuelSize::large), 320);

  ModelOptions mo;
  mo.grid_scale = 0.05;
  mo.fuel = FuelSize::small;
  int fuel = -1;
  const auto lib = build_library(mo, &fuel);
  EXPECT_EQ(lib.material(fuel).size(), 34u);
  // Library adds water + clad constituents on top of the fuel nuclides.
  EXPECT_GE(lib.n_nuclides(), 34);
  EXPECT_EQ(lib.n_materials(), 3);
}

TEST(HmMaterials, LargeModelHas320FuelNuclides) {
  ModelOptions mo;
  mo.grid_scale = 0.03;
  mo.fuel = FuelSize::large;
  int fuel = -1;
  const auto lib = build_library(mo, &fuel);
  EXPECT_EQ(lib.material(fuel).size(), 320u);
}

class HmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ModelOptions mo;
    mo.grid_scale = 0.08;
    mo.fuel = FuelSize::small;
    mo.full_core = true;
    model_ = new Model(build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static Model* model_;
};

Model* HmModelTest::model_ = nullptr;

TEST_F(HmModelTest, MaterialsResolveAtKnownPoints) {
  // Center of the central assembly's central pin: the instrumentation tube
  // (water inside a zirc tube).
  EXPECT_EQ(model_->geometry.find_material({0.0, 0.0, 0.0}),
            model_->water_material);
  // One pin over (pitch 1.26): fuel.
  EXPECT_EQ(model_->geometry.find_material({1.26, 0.0, 0.0}),
            model_->fuel_material);
  // Pin cladding.
  EXPECT_EQ(model_->geometry.find_material({1.26 + 0.45, 0.0, 0.0}),
            model_->clad_material);
  // Axial reflector.
  EXPECT_EQ(model_->geometry.find_material({0.0, 0.0, 200.0}),
            model_->water_material);
  // Core corner: outside the 241-assembly map -> water.
  EXPECT_EQ(model_->geometry.find_material({-200.0, -200.0, 0.0}),
            model_->water_material);
  // Outside the root box entirely.
  EXPECT_EQ(model_->geometry.find_material({0.0, 0.0, 500.0}), -1);
}

TEST_F(HmModelTest, EveryPointInsideTheBoxResolves) {
  vmc::rng::Stream s(9);
  for (int i = 0; i < 20000; ++i) {
    const vmc::geom::Position p{(s.next() - 0.5) * 2.0 * 203.0,
                                (s.next() - 0.5) * 2.0 * 203.0,
                                (s.next() - 0.5) * 2.0 * 218.0};
    EXPECT_GE(model_->geometry.find_material(p), 0)
        << p.x << " " << p.y << " " << p.z;
  }
}

TEST_F(HmModelTest, FuelVolumeFractionIsPlausible) {
  // Fuel pellets occupy roughly 1/5 of the core volume: pin area fraction
  // (pi 0.4096^2 / 1.26^2 = 0.332) x fuel pins per assembly (264/289)
  // x assembly coverage (241/361).
  vmc::rng::Stream s(10);
  int fuel = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const vmc::geom::Position p{(s.next() - 0.5) * 2.0 * 203.49,
                                (s.next() - 0.5) * 2.0 * 203.49,
                                (s.next() - 0.5) * 2.0 * 183.0};
    if (model_->geometry.find_material(p) == model_->fuel_material) ++fuel;
  }
  const double expected = 0.332 * (264.0 / 289.0) * (241.0 / 361.0);
  EXPECT_NEAR(fuel / static_cast<double>(n), expected, 0.01);
}

TEST_F(HmModelTest, TrackingARayAcrossTheCore) {
  // A ray across the full core must make many crossings and terminate by
  // leaking through the vacuum boundary.
  vmc::geom::Geometry::State s;
  ASSERT_TRUE(model_->geometry.locate({-203.0, 0.05, 0.05}, {1, 0, 0}, s));
  int crossings = 0;
  bool leaked = false;
  for (int i = 0; i < 100000; ++i) {
    const auto b = model_->geometry.distance_to_boundary(s);
    ASSERT_GT(b.distance, 0.0);
    const auto cr = model_->geometry.cross(s, b);
    ++crossings;
    if (cr == vmc::geom::Geometry::CrossResult::leaked) {
      leaked = true;
      break;
    }
  }
  EXPECT_TRUE(leaked);
  // 19 assemblies x 17 pins x several surfaces each.
  EXPECT_GT(crossings, 500);
}

TEST_F(HmModelTest, SourceBoxCoversFuel) {
  EXPECT_LT(model_->source_lo.x, -200.0);
  EXPECT_GT(model_->source_hi.x, 200.0);
  EXPECT_NEAR(model_->source_hi.z, 183.0, 1e-9);
}

TEST(HmMiniModel, SingleAssemblyIsReflective) {
  ModelOptions mo;
  mo.grid_scale = 0.05;
  mo.full_core = false;
  const Model m = build_model(mo);
  vmc::geom::Geometry::State s;
  ASSERT_TRUE(m.geometry.locate({0.3, 0.2, 0.0}, {1, 0, 0}, s));
  // Track a long way: must never leak.
  for (int i = 0; i < 2000; ++i) {
    const auto b = m.geometry.distance_to_boundary(s);
    ASSERT_NE(m.geometry.cross(s, b), vmc::geom::Geometry::CrossResult::leaked)
        << "step " << i;
  }
}

TEST(HmOptions, UrrAndThermalToggles) {
  ModelOptions mo;
  mo.grid_scale = 0.05;
  mo.with_urr = false;
  mo.with_thermal = false;
  int fuel = -1;
  const auto lib = build_library(mo, &fuel);
  for (int n = 0; n < lib.n_nuclides(); ++n) {
    EXPECT_FALSE(lib.nuclide(n).urr.has_value());
    EXPECT_FALSE(lib.nuclide(n).thermal.has_value());
  }
  ModelOptions on;
  on.grid_scale = 0.05;
  int fuel2 = -1;
  const auto lib2 = build_library(on, &fuel2);
  bool any_urr = false, any_thermal = false;
  for (int n = 0; n < lib2.n_nuclides(); ++n) {
    any_urr |= lib2.nuclide(n).urr.has_value();
    any_thermal |= lib2.nuclide(n).thermal.has_value();
  }
  EXPECT_TRUE(any_urr);
  EXPECT_TRUE(any_thermal);
}

}  // namespace
