// Offload runtime: real banking + sweep measurements, Table II projections,
// and the Figure 3 ratio trends (offload pays off above ~1e4 particles).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

#include "exec/offload.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::exec;

class OffloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.1;
    int fuel = -1;
    lib_ = new vmc::xs::Library(vmc::hm::build_library(mo, &fuel));
    fuel_ = fuel;
    runtime_ = new OffloadRuntime(*lib_, CostModel(DeviceSpec::jlse_host()),
                                  CostModel(DeviceSpec::mic_7120a()));
  }
  static void TearDownTestSuite() {
    delete runtime_;
    delete lib_;
    runtime_ = nullptr;
    lib_ = nullptr;
  }

  static WorkProfile profile() {
    WorkProfile w;
    w.lookups_per_particle = 34.0;
    w.terms_per_lookup = 34.0;
    w.collisions_per_particle = 16.0;
    w.crossings_per_particle = 18.0;
    return w;
  }

  static vmc::xs::Library* lib_;
  static int fuel_;
  static OffloadRuntime* runtime_;
};

vmc::xs::Library* OffloadTest::lib_ = nullptr;
int OffloadTest::fuel_ = -1;
OffloadRuntime* OffloadTest::runtime_ = nullptr;

TEST_F(OffloadTest, IterationReportIsComplete) {
  const auto rep = runtime_->run_iteration(fuel_, 20000, 7);
  EXPECT_GT(rep.wall_bank_s, 0.0);
  EXPECT_GT(rep.wall_banked_lookup_s, 0.0);
  EXPECT_GT(rep.wall_scalar_lookup_s, 0.0);
  EXPECT_EQ(rep.bank_bytes, 20000 * offload_record_bytes());
  EXPECT_GT(rep.grid_bytes, 0u);
  EXPECT_GT(rep.model_transfer_s, 0.0);
  // Grid staging uses the bulk rate; check against the model formula.
  const auto& dev = runtime_->device().spec();
  EXPECT_NEAR(rep.model_grid_transfer_s,
              dev.pcie_latency_s + static_cast<double>(rep.grid_bytes) / (dev.pcie_bulk_gbs * 1e9),
              1e-9);
}

TEST_F(OffloadTest, BankingIsCheaperOnHostThanDevice) {
  // Table II: banking on the host (4 ms) vs. the MIC (21-34 ms) — a
  // write-intensive, non-vectorized operation.
  const auto rep = runtime_->run_iteration(fuel_, 10000, 3);
  EXPECT_LT(rep.model_bank_host_s, rep.model_bank_device_s);
  EXPECT_NEAR(rep.model_bank_device_s / rep.model_bank_host_s, 5.0, 3.0);
}

TEST_F(OffloadTest, RealBankedSweepIsSane) {
  // Performance comparisons belong to bench/fig2 (they depend on data
  // exceeding the cache hierarchy, which this fast-building test library
  // does not); here we only guard against catastrophic kernel regressions:
  // the SIMD sweeps must stay within a small factor of the scalar sweep
  // even in the cache-resident, compute-bound regime where scalar wins.
  double banked = 1e300, scalar = 0.0, banked_total = 1e300, scalar_total = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto r = runtime_->run_iteration(fuel_, 50000, 11 + rep);
    banked = std::min(banked, r.wall_banked_lookup_s);
    scalar = std::max(scalar, r.wall_scalar_lookup_s);
    banked_total = std::min(banked_total, r.wall_banked_total_s);
    scalar_total = std::max(scalar_total, r.wall_scalar_total_s);
  }
  EXPECT_LT(banked, 3.0 * scalar);
  EXPECT_LT(banked_total, 3.0 * scalar_total);
}

TEST_F(OffloadTest, Fig3RatiosTrendCorrectly) {
  // As N grows: transfer ratio down, device-compute ratio down, host-lookup
  // ratio up (toward its asymptotic share of generation time).
  const WorkProfile w = profile();
  const auto small = runtime_->ratios(w, 100);
  const auto mid = runtime_->ratios(w, 10000);
  const auto large = runtime_->ratios(w, 1000000);
  EXPECT_GT(small.xs_mic, mid.xs_mic);
  EXPECT_GT(mid.xs_mic, large.xs_mic);
  EXPECT_LT(small.xs_cpu, large.xs_cpu);
  EXPECT_GE(small.offload, mid.offload);
  EXPECT_GE(mid.offload, large.offload);
  // Asymptotically the host lookup share must stay below 1 (it is part of
  // the generation).
  EXPECT_LT(large.xs_cpu, 1.0);
  EXPECT_GT(large.xs_cpu, 0.2);
}

TEST_F(OffloadTest, OffloadPaysOffAboveTenThousandParticles) {
  // Fig. 3's conclusion: device lookups + transfer beat host lookups once
  // N >~ 1e4.
  const WorkProfile w = profile();
  const auto big = runtime_->ratios(w, 100000);
  EXPECT_LT(big.xs_mic + big.offload, big.xs_cpu);
  const auto tiny = runtime_->ratios(w, 200);
  EXPECT_GT(tiny.xs_mic + tiny.offload, tiny.xs_cpu);
}

TEST_F(OffloadTest, PipelineOverlapsTransferWithCompute) {
  const double t4 = runtime_->pipelined_seconds(100000, 300.0, 4);
  const double sum_unpipelined =
      4 * (runtime_->device().transfer_seconds(
               25000 * offload_record_bytes(), false) +
           runtime_->device().banked_lookup_seconds(25000, 300.0));
  EXPECT_LT(t4, sum_unpipelined);
  EXPECT_EQ(runtime_->pipelined_seconds(100000, 300.0, 0), 0.0);
}

TEST_F(OffloadTest, DepthModelReducesToLegacyPipelineAtDepthOne) {
  // For S = 1 and uniform chunks the windowed recurrence collapses to the
  // closed-form double-buffer cost, in both the transfer-bound and the
  // compute-bound regime (terms low/high swings the per-chunk balance).
  for (const double terms : {5.0, 300.0, 5000.0}) {
    for (const int banks : {1, 2, 4, 8}) {
      const std::size_t per = 100000 / static_cast<std::size_t>(banks);
      const std::vector<std::size_t> sizes(static_cast<std::size_t>(banks), per);
      const double legacy =
          runtime_->pipelined_seconds(per * banks, terms, banks);
      const double depth1 = runtime_->pipelined_depth_seconds(sizes, terms, 1);
      EXPECT_NEAR(depth1, legacy, 1e-12 * legacy)
          << "terms=" << terms << " banks=" << banks;
    }
  }
  EXPECT_EQ(runtime_->pipelined_depth_seconds({}, 300.0, 2), 0.0);
  const std::vector<std::size_t> one{1000};
  EXPECT_THROW(runtime_->pipelined_depth_seconds(one, 300.0, 0),
               std::invalid_argument);
}

TEST_F(OffloadTest, DeeperStreamsNeverHurtAndAbsorbUnevenChunks) {
  // Uneven split: a few huge chunks (compute-heavy at high terms) between
  // runs of tiny latency-dominated chunks. The in-flight window of 2*S
  // chunks lets transfers of the tiny chunks complete behind a long compute,
  // so S >= 2 strictly beats S = 1; deeper never costs more.
  std::vector<std::size_t> sizes;
  for (int rep = 0; rep < 4; ++rep) {
    sizes.push_back(200000);
    for (int k = 0; k < 6; ++k) sizes.push_back(64);
  }
  const double terms = 5000.0;
  const double s1 = runtime_->pipelined_depth_seconds(sizes, terms, 1);
  const double s2 = runtime_->pipelined_depth_seconds(sizes, terms, 2);
  const double s4 = runtime_->pipelined_depth_seconds(sizes, terms, 4);
  const double s8 = runtime_->pipelined_depth_seconds(sizes, terms, 8);
  EXPECT_LT(s2, s1);  // the fig3 depth-sweep claim
  EXPECT_LE(s4, s2);
  EXPECT_LE(s8, s4);

  // Lower bound: no schedule beats the busier lane running back to back.
  double sum_t = 0.0, sum_c = 0.0;
  for (const std::size_t n : sizes) {
    sum_t += runtime_->device().transfer_seconds(n * offload_record_bytes(),
                                                 false);
    sum_c += runtime_->device().banked_lookup_seconds(n, terms);
  }
  EXPECT_GE(s8, std::max(sum_t, sum_c));

  // Uniform chunks leave nothing for depth to absorb: all S agree.
  const std::vector<std::size_t> uniform(16, 4096);
  const double u1 = runtime_->pipelined_depth_seconds(uniform, terms, 1);
  const double u4 = runtime_->pipelined_depth_seconds(uniform, terms, 4);
  EXPECT_NEAR(u4, u1, 1e-12 * u1);
}

TEST_F(OffloadTest, ChecksumIsBitIdenticalAcrossStreamDepths) {
  // The stream scheduler changes WHEN chunks move, never what they compute
  // or the reduction order: checksums across S in {1, 2, 4} are exact
  // doubles of each other, and the in-flight high water hits the window
  // bound min(2*S, n_chunks).
  const auto es = [] {
    vmc::rng::Stream rs(17);
    vmc::simd::aligned_vector<double> v(16000);
    for (auto& e : v) {
      e = vmc::xs::kEnergyMin *
          std::pow(vmc::xs::kEnergyMax / vmc::xs::kEnergyMin, rs.next());
    }
    return v;
  }();
  OffloadRuntime rt(*lib_, CostModel(DeviceSpec::jlse_host()),
                    CostModel(DeviceSpec::mic_7120a()));
  const int n_chunks = 8;
  double ref = 0.0;
  for (const int streams : {1, 2, 4}) {
    rt.set_stream_depth(streams);
    EXPECT_EQ(rt.stream_depth(), streams);
    const auto run = rt.run_pipelined(fuel_, es, n_chunks);
    EXPECT_EQ(run.n_stages, n_chunks);
    EXPECT_EQ(run.stream_depth, streams);
    EXPECT_EQ(run.inflight_high_water, std::min(2 * streams, n_chunks));
    ASSERT_EQ(run.devices.size(), 1u);
    EXPECT_EQ(run.devices[0].streams, streams);
    EXPECT_EQ(run.devices[0].inflight_high_water,
              std::min(2 * streams, n_chunks));
    if (streams == 1) {
      ref = run.checksum;
    } else {
      EXPECT_EQ(run.checksum, ref) << "S=" << streams;
    }
  }
  EXPECT_THROW(rt.set_stream_depth(0), std::invalid_argument);
}

TEST_F(OffloadTest, RealPipelineMatchesUnpipelinedSweep) {
  // The double-buffered execution must compute exactly the same physics as
  // a single flat sweep, for any bank split.
  const std::size_t n = 20000;
  vmc::rng::Stream rs(5);
  vmc::simd::aligned_vector<double> es(n);
  for (auto& e : es) {
    e = vmc::xs::kEnergyMin *
        std::pow(vmc::xs::kEnergyMax / vmc::xs::kEnergyMin, rs.next());
  }
  vmc::simd::aligned_vector<double> flat(n);
  vmc::xs::macro_total_banked(*lib_, fuel_, es, flat);
  double ref = 0.0;
  for (const double t : flat) ref += t;

  for (const int banks : {1, 2, 4, 7}) {
    const auto run = runtime_->run_pipelined(fuel_, es, banks);
    EXPECT_EQ(run.n_stages, banks);
    EXPECT_NEAR(run.checksum, ref, 1e-9 * std::abs(ref)) << banks << " banks";
    EXPECT_GT(run.wall_s, 0.0);
  }
}

TEST_F(OffloadTest, RealPipelineHandlesDegenerateInputs) {
  const auto empty = runtime_->run_pipelined(fuel_, {}, 4);
  EXPECT_EQ(empty.n_stages, 0);
  EXPECT_EQ(runtime_->run_pipelined(fuel_, {}, 0).n_stages, 0);
  vmc::simd::aligned_vector<double> one{1e-3};
  const auto single = runtime_->run_pipelined(fuel_, one, 8);
  EXPECT_EQ(single.n_stages, 1);  // one particle -> one stage
}

TEST_F(OffloadTest, QueueFedPipelineMatchesPerMaterialSweeps) {
  // run_pipelined_queues consumes the event scheduler's compacted bank:
  // material-sorted runs over live particles only. Its checksum must equal
  // the sum of independent banked sweeps over each material's energies, and
  // its transfer volume is the live population — never the original bank.
  const int n_mats = lib_->n_materials();
  ASSERT_GE(n_mats, 2);
  const std::size_t n_source = 4096;

  // A "transport" population where half the particles already died: only
  // even ids survive to the compacted bank.
  std::vector<vmc::particle::Particle> ps(n_source);
  vmc::rng::Stream rs(23);
  for (std::size_t i = 0; i < n_source; ++i) {
    ps[i].id = i;
    ps[i].r = {rs.next(), rs.next(), rs.next()};
    ps[i].energy = vmc::xs::kEnergyMin *
                   std::pow(vmc::xs::kEnergyMax / vmc::xs::kEnergyMin, rs.next());
  }

  // Material-sorted order of the survivors (what EventQueues::build_lookup
  // produces): stable counting sort by id % n_mats.
  std::vector<std::uint32_t> order;
  std::vector<std::int32_t> mats;
  std::vector<vmc::core::MaterialRun> runs;
  double ref = 0.0;
  for (int m = 0; m < n_mats; ++m) {
    vmc::core::MaterialRun r;
    r.material = m;
    r.begin = order.size();
    vmc::simd::aligned_vector<double> es;
    for (std::size_t i = 0; i < n_source; i += 2) {
      if (static_cast<int>(i) % n_mats != m) continue;
      order.push_back(static_cast<std::uint32_t>(i));
      mats.push_back(m);
      es.push_back(ps[i].energy);
    }
    r.end = order.size();
    if (r.size() > 0) {
      runs.push_back(r);
      vmc::simd::aligned_vector<double> tot(es.size());
      vmc::xs::macro_total_banked(*lib_, m, es, tot);
      for (const double t : tot) ref += t;
    }
  }

  vmc::particle::SoABank bank;
  bank.append_compacted(ps, order, mats);
  ASSERT_EQ(bank.size(), n_source / 2);
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(bank.energy[k], ps[order[k]].energy);
    EXPECT_EQ(bank.material[k], mats[k]);
  }

  for (const int banks : {1, 3, 8}) {
    const auto run = runtime_->run_pipelined_queues(bank, runs, banks);
    EXPECT_NEAR(run.checksum, ref, 1e-9 * std::abs(ref)) << banks << " banks";
    // A material run never spans two stages, so there are at least as many
    // stages as non-empty materials.
    EXPECT_GE(run.n_stages, static_cast<int>(runs.size())) << banks;
    EXPECT_GT(run.wall_s, 0.0);
  }

  // Degenerate inputs terminate cleanly.
  vmc::particle::SoABank empty_bank;
  EXPECT_EQ(runtime_->run_pipelined_queues(empty_bank, runs, 4).n_stages, 0);
  EXPECT_EQ(runtime_->run_pipelined_queues(bank, runs, 0).n_stages, 0);
}

TEST(OffloadRecord, IncludesTrackingState) {
  // The device-resident sweep needs kinematics + geometry stack + RNG seed.
  EXPECT_GE(offload_record_bytes(),
            vmc::particle::SoABank::bytes_per_particle() + 64);
}

}  // namespace
