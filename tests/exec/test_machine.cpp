// Device cost models: the calibration bands the paper's cross-device claims
// rest on (alpha ~ 0.61-0.62, banked ~10x, Table I/II magnitudes).
#include <gtest/gtest.h>

#include "exec/machine.hpp"

namespace {

using namespace vmc::exec;

/// A per-particle work profile representative of H.M. Large transport.
WorkProfile hm_large_profile() {
  WorkProfile w;
  w.lookups_per_particle = 34.0;
  w.terms_per_lookup = 323.0;
  w.collisions_per_particle = 16.0;
  w.crossings_per_particle = 18.0;
  return w;
}

TEST(DeviceSpec, FactoryNamesAndThreads) {
  EXPECT_EQ(DeviceSpec::jlse_host().hw_threads, 32);
  EXPECT_EQ(DeviceSpec::mic_7120a().hw_threads, 244);
  EXPECT_GT(DeviceSpec::mic_7120a().pcie_bank_gbs, 0.0);
  EXPECT_EQ(DeviceSpec::jlse_host().pcie_bank_gbs, 0.0);  // not a coprocessor
}

TEST(CostModel, AlphaInPaperBandOnJlse) {
  // alpha = CPU rate / MIC rate = 0.61 +- 0.02 (inactive) / 0.62 +- 0.01
  // (active) for N >= 1e4, Fig. 5 / Table III.
  const CostModel cpu(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  const WorkProfile w = hm_large_profile();
  for (std::size_t n : {std::size_t{100000}, std::size_t{1000000}}) {
    const double alpha =
        cpu.calculation_rate(w, n) / mic.calculation_rate(w, n);
    EXPECT_GT(alpha, 0.55) << "n=" << n;
    EXPECT_LT(alpha, 0.70) << "n=" << n;
  }
}

TEST(CostModel, CpuBeatsMicAtSmallParticleCounts) {
  // Fig. 5: the MIC needs >= ~1e4 particles; below that its overheads and
  // slow cores lose to the CPU.
  const CostModel cpu(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  const WorkProfile w = hm_large_profile();
  EXPECT_GT(cpu.calculation_rate(w, 1000), mic.calculation_rate(w, 1000));
  EXPECT_LT(cpu.calculation_rate(w, 200000), mic.calculation_rate(w, 200000));
}

TEST(CostModel, RateSaturatesWithN) {
  const CostModel mic(DeviceSpec::mic_7120a());
  const WorkProfile w = hm_large_profile();
  const double r3 = mic.calculation_rate(w, 1000);
  const double r5 = mic.calculation_rate(w, 100000);
  const double r6 = mic.calculation_rate(w, 1000000);
  EXPECT_LT(r3, r5);
  EXPECT_NEAR(r5, r6, 0.15 * r6);  // near-saturated by 1e5
}

TEST(CostModel, BankedLookupSpeedupIsPaperScale) {
  // Fig. 2: banked SIMD lookups on the MIC ~10x history lookups on the CPU
  // for the 320-nuclide material.
  const CostModel cpu(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  const std::size_t n = 1000000;
  const double t_history_cpu = cpu.scalar_lookup_seconds(n, 323.0);
  const double t_banked_mic = mic.banked_lookup_seconds(n, 323.0);
  const double speedup = t_history_cpu / t_banked_mic;
  EXPECT_GT(speedup, 6.0);
  EXPECT_LT(speedup, 16.0);
}

TEST(CostModel, StampedeAlphaIsLower) {
  // Paper: alpha = 0.42 on Stampede at 1e6 particles.
  const CostModel cpu(DeviceSpec::stampede_host());
  const CostModel mic(DeviceSpec::mic_se10p());
  const WorkProfile w = hm_large_profile();
  const double alpha =
      cpu.calculation_rate(w, 1000000) / mic.calculation_rate(w, 1000000);
  EXPECT_GT(alpha, 0.35);
  EXPECT_LT(alpha, 0.55);
}

TEST(CostModel, TransferMatchesTableII) {
  const CostModel mic(DeviceSpec::mic_7120a());
  // 496 MB bank -> ~460 ms; 1.31 GB grid at bulk rate -> ~262 ms;
  // "1 second for every 5 GB".
  EXPECT_NEAR(mic.transfer_seconds(496u << 20, false), 0.46, 0.06);
  EXPECT_NEAR(mic.transfer_seconds(5'000'000'000ULL, true), 1.0, 0.05);
}

TEST(CostModel, NaiveSampleMatchesTableIMagnitudes) {
  // Table I: 1e11 samples: CPU 412 s, MIC 8243 s.
  const CostModel cpu(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  const std::size_t n = 100000000000ULL;
  EXPECT_NEAR(cpu.naive_sample_seconds(n), 412.0, 412.0 * 0.15);
  // The paper ran the MIC naive case with 122 threads.
  EXPECT_NEAR(mic.naive_sample_seconds(n, 122), 8243.0, 8243.0 * 0.25);
}

TEST(CostModel, BandwidthKernelMatchesTableIOptimized) {
  // Optimized-1 moves 3 arrays x 4 B x 1e11 = 1.2 TB: CPU 40.6 s, MIC 21 s.
  const CostModel cpu(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  const std::size_t bytes = 1'200'000'000'000ULL;
  EXPECT_NEAR(cpu.bandwidth_kernel_seconds(bytes), 40.6, 40.6 * 0.15);
  EXPECT_NEAR(mic.bandwidth_kernel_seconds(bytes), 21.0, 21.0 * 0.15);
}

TEST(CostModel, ParallelSpeedupShape) {
  const CostModel cpu(DeviceSpec::jlse_host());
  EXPECT_DOUBLE_EQ(cpu.parallel_speedup(1), 1.0);
  EXPECT_GT(cpu.parallel_speedup(32), 20.0);
  EXPECT_LE(cpu.parallel_speedup(32), 32.0);
  // Requesting more threads than hardware clamps.
  EXPECT_DOUBLE_EQ(cpu.parallel_speedup(64), cpu.parallel_speedup(32));
  // 0 = all hardware threads.
  EXPECT_DOUBLE_EQ(cpu.parallel_speedup(0), cpu.parallel_speedup(32));
}

TEST(WorkProfile, FromCountsAverages) {
  vmc::core::EventCounts c;
  c.histories = 100;
  c.lookups = 3400;
  c.nuclide_terms = 3400 * 34;
  c.collisions = 1600;
  c.crossings = 1800;
  const WorkProfile w = WorkProfile::from_counts(c);
  EXPECT_DOUBLE_EQ(w.lookups_per_particle, 34.0);
  EXPECT_DOUBLE_EQ(w.terms_per_lookup, 34.0);
  EXPECT_DOUBLE_EQ(w.collisions_per_particle, 16.0);
  EXPECT_DOUBLE_EQ(w.crossings_per_particle, 18.0);
}

TEST(WorkProfile, EmptyCountsAreSafe) {
  const WorkProfile w = WorkProfile::from_counts(vmc::core::EventCounts{});
  EXPECT_DOUBLE_EQ(w.lookups_per_particle, 0.0);
  EXPECT_DOUBLE_EQ(w.terms_per_lookup, 0.0);
}

TEST(CostModel, GenerationTimeDecomposesSensibly) {
  const CostModel cpu(DeviceSpec::jlse_host());
  const WorkProfile w = hm_large_profile();
  const double per_particle_ns = cpu.history_ns_per_particle(w);
  EXPECT_GT(per_particle_ns, 0.0);
  const double t = cpu.generation_seconds(w, 100000);
  EXPECT_NEAR(t,
              1e5 * per_particle_ns * 1e-9 / cpu.effective_speedup(100000, 0) +
                  cpu.spec().generation_overhead_s,
              1e-12);
  // The ramp only matters at small N.
  EXPECT_LT(cpu.effective_speedup(100, 0), 0.8 * cpu.parallel_speedup(0));
  EXPECT_GT(cpu.effective_speedup(1000000, 0), 0.99 * cpu.parallel_speedup(0));
}

}  // namespace
