// Distributed eigenvalue driver: the decomposition-invariance guarantee —
// any rank count and any quota split reproduces the serial run (identical
// histories and banks; tallies to summation-order precision) — plus the
// communication pattern's bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "core/eigenvalue.hpp"
#include "exec/distributed.hpp"
#include "exec/load_balance.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc;

class DistributedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hm::ModelOptions mo;
    mo.fuel = hm::FuelSize::small;
    mo.grid_scale = 0.1;
    mo.full_core = false;
    model_ = new hm::Model(hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  exec::DistributedSettings base() const {
    exec::DistributedSettings s;
    s.n_total = 600;
    s.n_inactive = 1;
    s.n_active = 3;
    s.seed = 42;
    s.source_lo = model_->source_lo;
    s.source_hi = model_->source_hi;
    return s;
  }

  static hm::Model* model_;
};

hm::Model* DistributedTest::model_ = nullptr;

TEST_F(DistributedTest, SingleRankMatchesSerialDriverExactly) {
  const exec::DistributedSettings ds = base();
  comm::World world(1);
  const auto dist = exec::run_distributed(world, model_->geometry,
                                          model_->library, ds, {600});

  core::Settings ss;
  ss.n_particles = ds.n_total;
  ss.n_inactive = ds.n_inactive;
  ss.n_active = ds.n_active;
  ss.seed = ds.seed;
  ss.source_lo = ds.source_lo;
  ss.source_hi = ds.source_hi;
  const auto serial =
      core::Simulation(model_->geometry, model_->library, ss).run();

  ASSERT_EQ(dist.k_per_generation.size(), serial.generations.size());
  for (std::size_t g = 0; g < serial.generations.size(); ++g) {
    EXPECT_DOUBLE_EQ(dist.k_per_generation[g],
                     serial.generations[g].k_collision)
        << "generation " << g;
  }
}

class RankCountTest : public ::testing::TestWithParam<int> {};

TEST_F(DistributedTest, AnyRankCountIsBitIdentical) {
  const exec::DistributedSettings ds = base();
  comm::World w1(1);
  const auto ref = exec::run_distributed(w1, model_->geometry,
                                         model_->library, ds, {600});
  for (const int ranks : {2, 3, 5}) {
    comm::World wn(ranks);
    const auto quotas = exec::uniform_counts(600, ranks);
    const auto got = exec::run_distributed(wn, model_->geometry,
                                           model_->library, ds, quotas);
    ASSERT_EQ(got.k_per_generation.size(), ref.k_per_generation.size());
    for (std::size_t g = 0; g < ref.k_per_generation.size(); ++g) {
      // Histories and banks are bit-identical; the k scalar differs only by
      // the allreduce's summation association (last-ulp noise). Were the
      // physics decomposition-dependent, the generations would diverge
      // macroscopically within one resampling step.
      EXPECT_NEAR(got.k_per_generation[g], ref.k_per_generation[g],
                  1e-12 * ref.k_per_generation[g])
          << ranks << " ranks, generation " << g;
    }
    EXPECT_NEAR(got.k_eff, ref.k_eff, 1e-12 * ref.k_eff);
  }
}

TEST_F(DistributedTest, HeterogeneousQuotasAreBitIdenticalToo) {
  // The Eq. 3 split assigns unequal blocks (MIC ranks get more); the result
  // must still be invariant — only wall time may differ.
  const exec::DistributedSettings ds = base();
  comm::World w1(1);
  const auto ref = exec::run_distributed(w1, model_->geometry,
                                         model_->library, ds, {600});
  comm::World w2(2);
  const auto quotas = exec::per_rank_counts(600, 1, 1, 0.62);
  ASSERT_EQ(quotas.size(), 2u);
  EXPECT_GT(quotas[0], quotas[1]);  // the "MIC" rank gets the bigger share
  const auto got = exec::run_distributed(w2, model_->geometry,
                                         model_->library, ds, quotas);
  for (std::size_t g = 0; g < ref.k_per_generation.size(); ++g) {
    EXPECT_NEAR(got.k_per_generation[g], ref.k_per_generation[g],
                1e-12 * ref.k_per_generation[g]);
  }
}

TEST_F(DistributedTest, ReportsPhysicalQuantities) {
  const exec::DistributedSettings ds = base();
  comm::World world(3);
  const auto r = exec::run_distributed(world, model_->geometry,
                                       model_->library, ds,
                                       exec::uniform_counts(600, 3));
  EXPECT_GT(r.k_eff, 0.3);
  EXPECT_LT(r.k_eff, 1.5);
  EXPECT_GE(r.k_std, 0.0);
  // Reflective mini model: no leakage.
  EXPECT_DOUBLE_EQ(r.leakage_fraction, 0.0);
  EXPECT_EQ(r.quotas.size(), 3u);
}

TEST_F(DistributedTest, RejectsInconsistentQuotas) {
  const exec::DistributedSettings ds = base();
  comm::World world(2);
  EXPECT_THROW(exec::run_distributed(world, model_->geometry, model_->library,
                                     ds, {600}),
               std::invalid_argument);  // quota count != ranks
  EXPECT_THROW(exec::run_distributed(world, model_->geometry, model_->library,
                                     ds, {300, 200}),
               std::invalid_argument);  // sum != n_total
}

}  // namespace
