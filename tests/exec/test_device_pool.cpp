// DevicePool: the deterministic device roster behind the multi-device
// offload executor. The paper's alpha = 0.62 symmetric split generalizes to
// rate-proportional shares alpha_d = r_d / sum r_j; assign() must turn those
// into contiguous largest-remainder blocks as a pure function of
// (n_chunks, specs) — scheduling never depends on timing or faults.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/device_pool.hpp"

namespace {

using namespace vmc::exec;

std::vector<CostModel> mixed_pool() {
  return {CostModel(DeviceSpec::mic_7120a()), CostModel(DeviceSpec::mic_se10p()),
          CostModel(DeviceSpec::jlse_host())};
}

TEST(DevicePool, RejectsEmptyDeviceList) {
  EXPECT_THROW(DevicePool({}, BreakerPolicy{}), std::invalid_argument);
}

TEST(DevicePool, RejectsInvalidBreakerPolicy) {
  EXPECT_THROW(DevicePool(mixed_pool(), BreakerPolicy{1, 0, 2}),
               std::invalid_argument);
}

TEST(DevicePool, SharesAreRateProportionalAndSumToOne) {
  const DevicePool pool(mixed_pool(), BreakerPolicy{});
  ASSERT_EQ(pool.size(), 3u);
  const auto& s = pool.shares();
  double total = 0.0;
  for (const double a : s) {
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1.0);
    total += a;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Identical devices get identical shares.
  const DevicePool twins({CostModel(DeviceSpec::mic_7120a()),
                          CostModel(DeviceSpec::mic_7120a())},
                         BreakerPolicy{});
  EXPECT_DOUBLE_EQ(twins.shares()[0], 0.5);
  EXPECT_DOUBLE_EQ(twins.shares()[1], 0.5);
}

TEST(DevicePool, AssignCoversEveryChunkWithContiguousBlocks) {
  const DevicePool pool(mixed_pool(), BreakerPolicy{});
  for (const std::size_t n : {1u, 2u, 7u, 16u, 101u}) {
    const auto owner = pool.assign(n);
    ASSERT_EQ(owner.size(), n);
    // Contiguous blocks in device order: the owner sequence never decreases
    // and never skips past pool.size().
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(owner[i], pool.size());
      if (i > 0) {
        EXPECT_GE(owner[i], owner[i - 1]);
      }
    }
  }
}

TEST(DevicePool, AssignQuotasTrackSharesWithinOne) {
  // Largest remainder: every device's block is within one chunk of its
  // exact fractional entitlement share * n.
  const DevicePool pool(mixed_pool(), BreakerPolicy{});
  const std::size_t n = 64;
  const auto owner = pool.assign(n);
  std::vector<int> quota(pool.size(), 0);
  for (const std::size_t d : owner) ++quota[d];
  for (std::size_t d = 0; d < pool.size(); ++d) {
    const double exact = pool.shares()[d] * static_cast<double>(n);
    EXPECT_GE(static_cast<double>(quota[d]), exact - 1.0);
    EXPECT_LE(static_cast<double>(quota[d]), exact + 1.0);
  }
}

TEST(DevicePool, AssignIsDeterministic) {
  const DevicePool a(mixed_pool(), BreakerPolicy{});
  const DevicePool b(mixed_pool(), BreakerPolicy{});
  EXPECT_EQ(a.assign(37), b.assign(37));
}

TEST(DevicePool, SingleDeviceOwnsEverything) {
  const DevicePool pool({CostModel(DeviceSpec::mic_7120a())}, BreakerPolicy{});
  EXPECT_DOUBLE_EQ(pool.shares()[0], 1.0);
  const auto owner = pool.assign(9);
  for (const std::size_t d : owner) EXPECT_EQ(d, 0u);
}

TEST(DevicePool, AcceptingDevicesExcludesTrippedAndHalfOpen) {
  DevicePool pool(mixed_pool(), BreakerPolicy{});
  // All healthy at the start.
  EXPECT_EQ(pool.accepting_devices(),
            (std::vector<std::size_t>{0, 1, 2}));

  // Trip device 1 (trip_after = 3 consecutive failures).
  for (int i = 0; i < 3; ++i) pool.at(1).health.record_chunk(4, false);
  EXPECT_EQ(pool.accepting_devices(), (std::vector<std::size_t>{0, 2}));

  // A suspect device still accepts rescheduled work.
  pool.at(0).health.record_chunk(1, true);
  EXPECT_EQ(pool.accepting_devices(), (std::vector<std::size_t>{0, 2}));

  // Walk device 1 into half_open: still not accepting — it owes a probe,
  // not a batch.
  pool.at(1).health.admit();
  pool.at(1).health.admit();
  ASSERT_EQ(pool.at(1).health.state(), HealthState::half_open);
  EXPECT_EQ(pool.accepting_devices(), (std::vector<std::size_t>{0, 2}));
}

}  // namespace
