// Eq. 3 static load balancing — including the paper's own worked example —
// and the runtime alpha estimator.
#include <gtest/gtest.h>

#include <numeric>

#include "exec/load_balance.hpp"

namespace {

using namespace vmc::exec;

TEST(BalanceEq3, PaperWorkedExample) {
  // "For our H.M. Large experiment with 1e7 particles, choosing alpha = 0.62
  //  estimates n_mic = 6,172,840 and n_cpu = 3,827,160 for a single-node
  //  execution" (1 MIC + 1 CPU).
  const StaticSplit s = balance_eq3(10'000'000, 1, 1, 0.62);
  EXPECT_NEAR(static_cast<double>(s.n_mic), 6'172'840.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.n_cpu), 3'827'160.0, 1.0);
}

TEST(BalanceEq3, RatioFollowsAlpha) {
  const StaticSplit s = balance_eq3(1'000'000, 2, 3, 0.5);
  EXPECT_NEAR(static_cast<double>(s.n_cpu) / static_cast<double>(s.n_mic), 0.5,
              0.01);
}

TEST(BalanceEq3, DegenerateConfigurations) {
  const StaticSplit mic_only = balance_eq3(1000, 4, 0, 0.62);
  EXPECT_EQ(mic_only.n_mic, 250u);
  EXPECT_EQ(mic_only.n_cpu, 0u);
  const StaticSplit cpu_only = balance_eq3(1000, 0, 4, 0.62);
  EXPECT_EQ(cpu_only.n_cpu, 250u);
  EXPECT_THROW(balance_eq3(1000, 0, 0, 0.62), std::invalid_argument);
  EXPECT_THROW(balance_eq3(1000, 1, 1, -1.0), std::invalid_argument);
}

class PerRankCase
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int, double>> {};

TEST_P(PerRankCase, CountsSumExactlyToTotal) {
  const auto [n, p_mic, p_cpu, alpha] = GetParam();
  const auto counts = per_rank_counts(n, p_mic, p_cpu, alpha);
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(p_mic + p_cpu));
  const std::size_t sum = std::accumulate(counts.begin(), counts.end(),
                                          std::size_t{0});
  EXPECT_EQ(sum, n);
  // MIC ranks (listed first) get at least as many as CPU ranks when
  // alpha < 1.
  if (p_mic > 0 && p_cpu > 0 && alpha < 1.0 && n > 100) {
    EXPECT_GE(counts.front() + 1, counts.back());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, PerRankCase,
    ::testing::Values(std::make_tuple(std::size_t{10'000'000}, 1, 1, 0.62),
                      std::make_tuple(std::size_t{10'000'000}, 2, 1, 0.62),
                      std::make_tuple(std::size_t{1'000'000}, 512, 512, 0.42),
                      std::make_tuple(std::size_t{997}, 3, 2, 0.7),
                      std::make_tuple(std::size_t{7}, 2, 3, 1.3),
                      std::make_tuple(std::size_t{0}, 1, 1, 0.62)));

TEST(UniformCounts, EvenSplitWithRemainder) {
  const auto c = uniform_counts(10, 3);
  EXPECT_EQ(c[0], 4u);
  EXPECT_EQ(c[1], 3u);
  EXPECT_EQ(c[2], 3u);
  EXPECT_THROW(uniform_counts(10, 0), std::invalid_argument);
}

TEST(AlphaEstimator, ConvergesToMeasuredRatio) {
  AlphaEstimator est(1.0);
  EXPECT_DOUBLE_EQ(est.alpha(), 1.0);  // first batch: uniform
  est.observe(4050.0, 6641.0);
  EXPECT_NEAR(est.alpha(), 4050.0 / 6641.0, 1e-9);  // jumps to measurement
  est.observe(4050.0, 6641.0);
  est.observe(4050.0, 6641.0);
  EXPECT_NEAR(est.alpha(), 0.61, 0.01);
  EXPECT_EQ(est.observations(), 3);
}

TEST(AlphaEstimator, IgnoresDegenerateRates) {
  AlphaEstimator est(1.0);
  est.observe(0.0, 100.0);
  est.observe(100.0, 0.0);
  EXPECT_DOUBLE_EQ(est.alpha(), 1.0);
  EXPECT_EQ(est.observations(), 0);
}

TEST(AlphaEstimator, SmoothsNoisyObservations) {
  AlphaEstimator est(1.0);
  est.observe(600.0, 1000.0);   // 0.6
  est.observe(700.0, 1000.0);   // 0.7 -> 0.65
  EXPECT_NEAR(est.alpha(), 0.65, 1e-9);
}

}  // namespace
