// Race-detection harness for vmc::exec::ThreadPool.
//
// These tests are functional under the default build (the assertions all
// check exact counts) and become a race harness under the `tsan` preset,
// where ThreadSanitizer watches the same schedules for data races, lock
// inversions, and use-after-free on the queue. Everything is deterministic:
// fixed thread counts, fixed task counts, no timing assumptions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace {

using vmc::exec::ThreadPool;

constexpr int kProducers = 8;
constexpr int kTasksPerProducer = 250;

TEST(ThreadPoolStress, SubmitStormFromManyThreads) {
  // Many external threads submitting concurrently exercises the queue's
  // mutex from both sides (producers and the pool's own workers).
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&pool, &hits] {
      std::vector<std::future<void>> fs;
      fs.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        fs.push_back(pool.submit(
            [&hits] { hits.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : fs) f.get();
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(hits.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> marks(kN);
  for (int round = 0; round < 4; ++round) {
    pool.parallel_for(kN, [&marks](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        marks[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(marks[i].load(), 4) << "index " << i;
  }
}

TEST(ThreadPoolStress, WaitIdleObservesAllPriorSubmissions) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  for (int round = 1; round <= 10; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    // Everything submitted before wait_idle returned must have run.
    EXPECT_EQ(hits.load(), 64 * round);
  }
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  // The destructor contract: stop accepting nothing new, but finish every
  // task already queued. With one worker and a pile of tasks most of the
  // queue is still pending when the destructor begins.
  std::atomic<int> hits{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(hits.load(), 500);
}

TEST(ThreadPoolStress, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not kill its worker thread.
  std::atomic<int> hits{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 100; ++i) {
    fs.push_back(pool.submit(
        [&hits] { hits.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPoolStress, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t begin, std::size_t /*end*/) {
                          if (begin == 0) {
                            throw std::runtime_error("chunk failed");
                          }
                        }),
      std::runtime_error);
  // Pool must remain usable after the failed sweep.
  std::atomic<int> hits{0};
  pool.parallel_for(1000, [&hits](std::size_t begin, std::size_t end) {
    hits.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
  });
  EXPECT_EQ(hits.load(), 1000);
}

TEST(ThreadPoolStress, RapidConstructDestroyCycles) {
  // Startup/shutdown handshake: workers parked in cv_.wait must all see
  // stop_ and exit, even when the pool dies immediately.
  for (int cycle = 0; cycle < 50; ++cycle) {
    ThreadPool pool(4);
    if (cycle % 2 == 0) {
      pool.submit([] {}).get();
    }
  }
  SUCCEED();
}

TEST(ThreadPoolStress, NestedSubmitFromWorker) {
  // A task submitting follow-up work into its own pool must not deadlock
  // the queue lock (submit only holds mu_ for the push).
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  std::promise<void> done;
  pool.submit([&pool, &hits, &done] {
    hits.fetch_add(1);
    pool.submit([&hits, &done] {
      hits.fetch_add(1);
      done.set_value();
    });
  });
  done.get_future().get();
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 2);
}

}  // namespace
