// Symmetric-mode runner: the Table III structure (original vs. load
// balanced vs. ideal) and the Figure 6/7 scaling behaviour.
#include <gtest/gtest.h>

#include "exec/symmetric.hpp"

namespace {

using namespace vmc::exec;

WorkProfile hm_large_profile() {
  WorkProfile w;
  w.lookups_per_particle = 34.0;
  w.terms_per_lookup = 323.0;
  w.collisions_per_particle = 16.0;
  w.crossings_per_particle = 18.0;
  return w;
}

TEST(Symmetric, UnbalancedLosesToBalanced) {
  // Table III: uniform assignment under-uses the MIC; Eq. 3 recovers most
  // of the ideal rate.
  const SymmetricRunner runner(NodeSetup::jlse(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto original = runner.run_batch(w, 100000, 1, std::nullopt);
  const auto balanced = runner.run_batch(w, 100000, 1, 0.62);
  EXPECT_GT(balanced.rate, original.rate);
  // Original: >= 10% below ideal; balanced: within 10% of ideal.
  EXPECT_LT(original.rate, 0.90 * original.ideal_rate);
  EXPECT_GT(balanced.rate, 0.90 * balanced.ideal_rate);
}

TEST(Symmetric, TwoMicsWidenTheGap) {
  // Table III: CPU + 2 MIC is 32% below ideal unbalanced (vs. 16% for
  // CPU + 1 MIC) because two-thirds of the ranks now idle behind the CPU.
  const SymmetricRunner one(NodeSetup::jlse(1),
                            vmc::comm::ClusterModel::stampede());
  const SymmetricRunner two(NodeSetup::jlse(2),
                            vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto r1 = one.run_batch(w, 100000, 1, std::nullopt);
  const auto r2 = two.run_batch(w, 100000, 1, std::nullopt);
  const double deficit1 = 1.0 - r1.rate / r1.ideal_rate;
  const double deficit2 = 1.0 - r2.rate / r2.ideal_rate;
  EXPECT_GT(deficit2, deficit1);
}

TEST(Symmetric, BalancedEqualizesRankTimes) {
  const SymmetricRunner runner(NodeSetup::jlse(2),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto original = runner.run_batch(w, 300000, 1, std::nullopt);
  const auto balanced = runner.run_batch(w, 300000, 1, 0.62);
  const double spread_orig = original.slowest_rank_s / original.fastest_rank_s;
  const double spread_bal = balanced.slowest_rank_s / balanced.fastest_rank_s;
  EXPECT_LT(spread_bal, spread_orig);
  EXPECT_LT(spread_bal, 1.2);
}

TEST(Symmetric, CpuPlusTwoMicsBeatsLoneDevices) {
  // The headline: 1.6x for MIC vs. CPU, ~2.5x for CPU+1MIC, ~4x for
  // CPU+2MIC (load balanced), relative to CPU-only.
  const vmc::comm::ClusterModel fabric = vmc::comm::ClusterModel::stampede();
  const WorkProfile w = hm_large_profile();
  const std::size_t n = 100000;

  const NodeSetup jlse1 = NodeSetup::jlse(1);
  const double cpu_rate = jlse1.cpu.calculation_rate(w, n);
  const double mic_rate = jlse1.mic.calculation_rate(w, n);
  EXPECT_NEAR(mic_rate / cpu_rate, 1.6, 0.25);

  const auto bal1 =
      SymmetricRunner(jlse1, fabric).run_batch(w, n, 1, 0.62);
  const auto bal2 =
      SymmetricRunner(NodeSetup::jlse(2), fabric).run_batch(w, n, 1, 0.62);
  EXPECT_NEAR(bal1.rate / cpu_rate, 2.5, 0.5);
  EXPECT_NEAR(bal2.rate / cpu_rate, 4.0, 0.8);
}

TEST(Symmetric, StrongScalingEfficiencyAt128Nodes) {
  // Fig. 6: 95% of ideal at 128 nodes relative to the 4-node measurement.
  const SymmetricRunner runner(NodeSetup::stampede(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const std::size_t n_total = 10'000'000;
  const auto base = runner.run_batch(w, n_total, 4, 0.42);
  const auto big = runner.run_batch(w, n_total, 128, 0.42);
  const double efficiency = (big.rate / 128.0) / (base.rate / 4.0);
  EXPECT_GT(efficiency, 0.90);
  EXPECT_LE(efficiency, 1.02);
}

TEST(Symmetric, StrongScalingTailsAt1024Nodes) {
  // Fig. 6's 1-MIC curve tails at 2^10 nodes: ~6.6k particles per MIC is
  // too few to keep 244 threads busy.
  const SymmetricRunner runner(NodeSetup::stampede(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const std::size_t n_total = 10'000'000;
  const auto n128 = runner.run_batch(w, n_total, 128, 0.42);
  const auto n1024 = runner.run_batch(w, n_total, 1024, 0.42);
  const double eff_1024 = (n1024.rate / 1024.0) / (n128.rate / 128.0);
  EXPECT_LT(eff_1024, 0.92);  // visibly degraded
  EXPECT_GT(eff_1024, 0.30);  // but not collapsed
}

TEST(Symmetric, WeakScalingStaysFlat) {
  // Fig. 7: n = 1e6 per node, >= 94% efficiency to 128 nodes.
  const SymmetricRunner runner(NodeSetup::stampede(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto r1 = runner.run_batch(w, 1'000'000, 1, 0.42);
  const auto r128 = runner.run_batch(w, 128'000'000, 128, 0.42);
  const double efficiency = (r128.rate / 128.0) / r1.rate;
  EXPECT_GT(efficiency, 0.94);
  EXPECT_LE(efficiency, 1.02);
}

TEST(Symmetric, AdaptiveAlphaConvergesAfterOneBatch) {
  // Section V future-work feature: batch 0 uniform, batch 1+ balanced from
  // measured rates.
  const SymmetricRunner runner(NodeSetup::jlse(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto batches = runner.run_adaptive(w, 100000, 1, 4);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_GT(batches[1].rate, batches[0].rate * 1.05);
  EXPECT_NEAR(batches[2].rate, batches[1].rate, 0.10 * batches[1].rate);
  // Converged batches approach the ideal.
  EXPECT_GT(batches[3].rate, 0.88 * batches[3].ideal_rate);
}

TEST(Symmetric, CommCostIsSmallButNonzero) {
  const SymmetricRunner runner(NodeSetup::stampede(1),
                               vmc::comm::ClusterModel::stampede());
  const WorkProfile w = hm_large_profile();
  const auto r = runner.run_batch(w, 10'000'000, 64, 0.42);
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_LT(r.comm_seconds, 0.05 * r.batch_seconds);
}

}  // namespace
