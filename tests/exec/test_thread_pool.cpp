// ThreadPool: completion, exception-free teardown, parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "exec/thread_pool.hpp"

namespace {

using vmc::exec::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> counter{0};
  pool.parallel_for(17, [&](std::size_t begin, std::size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 17);
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor joins after the queue empties.
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
