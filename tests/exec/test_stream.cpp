// Stream ring state machine + per-event-type kernel queues: the two halves
// of the persistent offload scheduler. The Stream tests pin the lifecycle
// (every legal transition, every illegal one throwing), the bounded ring
// (capacity, high water), and the in-order drain contract (begin_compute /
// skip_compute / retire act on the OLDEST slot only). The queue tests pin
// FIFO order per kind, ordinal preservation, and pop_fair's starvation
// freedom — a burst on one kind can never shut out the others.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/kernel_queue.hpp"
#include "exec/stream.hpp"

namespace {

using namespace vmc::exec;

// ---------------------------------------------------------------------------
// Stream: lifecycle and ring bounds.
// ---------------------------------------------------------------------------

TEST(Stream, FullLifecycleRoundTrip) {
  Stream st(0);
  EXPECT_EQ(st.index(), 0);
  EXPECT_EQ(st.capacity(), Stream::kRingDepth);
  EXPECT_TRUE(st.idle());
  EXPECT_TRUE(st.can_stage());
  EXPECT_EQ(st.high_water(), 0);

  const int slot = st.stage(7);
  EXPECT_EQ(st.in_flight(), 1);
  EXPECT_FALSE(st.idle());
  EXPECT_FALSE(st.front_transferred(7));  // staged, not transferred yet

  st.begin_transfer(slot);
  EXPECT_FALSE(st.front_transferred(7));
  st.mark_transferred(slot);
  EXPECT_TRUE(st.front_transferred(7));
  EXPECT_FALSE(st.front_transferred(8));  // wrong position never matches

  EXPECT_EQ(st.front_slot(), slot);
  st.begin_compute(slot);
  st.finish_compute(slot);
  EXPECT_EQ(st.retire(), 7u);
  EXPECT_TRUE(st.idle());
  EXPECT_EQ(st.high_water(), 1);
}

TEST(Stream, RingIsBoundedAndStagesInOrder) {
  Stream st(1, 2);
  const int a = st.stage(0);
  const int b = st.stage(1);
  EXPECT_NE(a, b);
  EXPECT_FALSE(st.can_stage());
  EXPECT_THROW(st.stage(2), std::logic_error);  // ring full
  EXPECT_EQ(st.in_flight(), 2);
  EXPECT_EQ(st.high_water(), 2);

  // Drain the oldest; position 1 is NOT the front until 0 retires.
  st.begin_transfer(a);
  st.mark_transferred(a);
  st.begin_transfer(b);
  st.mark_transferred(b);
  EXPECT_TRUE(st.front_transferred(0));
  EXPECT_FALSE(st.front_transferred(1));
  st.begin_compute(a);
  st.finish_compute(a);
  EXPECT_EQ(st.retire(), 0u);
  EXPECT_TRUE(st.front_transferred(1));
  EXPECT_TRUE(st.can_stage());  // slot freed
  st.begin_compute(b);
  st.finish_compute(b);
  EXPECT_EQ(st.retire(), 1u);
  EXPECT_EQ(st.high_water(), 2);  // high water survives the drain
}

TEST(Stream, IllegalTransitionsThrow) {
  Stream st(0);
  const int slot = st.stage(0);
  // Compute before the transfer completed.
  EXPECT_THROW(st.begin_compute(slot), std::logic_error);
  EXPECT_THROW(st.mark_transferred(slot), std::logic_error);  // skipped begin
  st.begin_transfer(slot);
  EXPECT_THROW(st.begin_transfer(slot), std::logic_error);  // double begin
  st.mark_transferred(slot);
  EXPECT_THROW(st.finish_compute(slot), std::logic_error);  // never computing
  st.begin_compute(slot);
  EXPECT_THROW(st.retire(), std::logic_error);  // still computing
  st.finish_compute(slot);
  st.retire();
  EXPECT_THROW(st.retire(), std::logic_error);     // empty ring
  EXPECT_THROW(st.front_slot(), std::logic_error);  // empty ring
}

TEST(Stream, ComputeIsOldestSlotOnly) {
  // The in-order guarantee: even with both slots transferred, only the
  // oldest may start computing or be skipped.
  Stream st(0, 2);
  const int a = st.stage(4);
  const int b = st.stage(5);
  st.begin_transfer(b);  // DMA order is the driver's business; ring allows it
  st.mark_transferred(b);
  st.begin_transfer(a);
  st.mark_transferred(a);
  EXPECT_THROW(st.begin_compute(b), std::logic_error);
  EXPECT_THROW(st.skip_compute(b), std::logic_error);
  st.begin_compute(a);
  st.finish_compute(a);
  EXPECT_EQ(st.retire(), 4u);
  st.begin_compute(b);
  st.finish_compute(b);
  EXPECT_EQ(st.retire(), 5u);
}

TEST(Stream, SkipComputeDrainsDeniedChunksInOrder) {
  // A breaker-denied chunk still occupies its slot until its in-order turn:
  // skip_compute moves transferred -> readback without a kernel, and retire
  // frees it exactly like a computed chunk.
  Stream st(0, 2);
  const int a = st.stage(0);
  st.begin_transfer(a);
  st.mark_transferred(a);
  EXPECT_THROW(st.skip_compute(st.stage(1)), std::logic_error);  // not oldest
  st.skip_compute(a);
  EXPECT_EQ(st.retire(), 0u);
  const int b = st.front_slot();
  st.begin_transfer(b);
  st.mark_transferred(b);
  st.begin_compute(b);
  st.finish_compute(b);
  EXPECT_EQ(st.retire(), 1u);
  EXPECT_TRUE(st.idle());
}

TEST(Stream, MoveConstructionCarriesState) {
  Stream a(3, 2);
  const int slot = a.stage(9);
  a.begin_transfer(slot);
  a.mark_transferred(slot);
  Stream b(std::move(a));
  EXPECT_EQ(b.index(), 3);
  EXPECT_EQ(b.in_flight(), 1);
  EXPECT_TRUE(b.front_transferred(9));
  b.begin_compute(slot);
  b.finish_compute(slot);
  EXPECT_EQ(b.retire(), 9u);
}

TEST(Stream, PhaseNamesAreStable) {
  EXPECT_STREQ(to_string(ChunkPhase::empty), "empty");
  EXPECT_STREQ(to_string(ChunkPhase::staged), "staged");
  EXPECT_STREQ(to_string(ChunkPhase::transferring), "transferring");
  EXPECT_STREQ(to_string(ChunkPhase::transferred), "transferred");
  EXPECT_STREQ(to_string(ChunkPhase::computing), "computing");
  EXPECT_STREQ(to_string(ChunkPhase::readback), "readback");
}

// ---------------------------------------------------------------------------
// KernelQueue / KernelQueueSet.
// ---------------------------------------------------------------------------

KernelChunk chunk(EventKind kind, std::size_t ordinal) {
  KernelChunk c;
  c.kind = kind;
  c.material = static_cast<int>(ordinal % 3);
  c.begin = 100 * ordinal;
  c.end = 100 * ordinal + 50;
  c.ordinal = ordinal;
  return c;
}

TEST(KernelQueue, FifoWithCountersAndKindCheck) {
  KernelQueue q(EventKind::distance);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
  q.push(chunk(EventKind::distance, 0));
  q.push(chunk(EventKind::distance, 1));
  EXPECT_THROW(q.push(chunk(EventKind::lookup, 2)), std::logic_error);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
  EXPECT_EQ(q.pop().ordinal, 0u);
  EXPECT_EQ(q.pop().ordinal, 1u);
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.popped(), 2u);
  EXPECT_EQ(q.high_water(), 2u);  // sticky across the drain
}

TEST(KernelQueueSet, PopFairRotatesAcrossKinds) {
  // One chunk of each kind: pop_fair serves each exactly once, regardless of
  // push order, and returns nullopt when drained.
  KernelQueueSet qs;
  qs.push(chunk(EventKind::collision, 2));
  qs.push(chunk(EventKind::lookup, 0));
  qs.push(chunk(EventKind::distance, 1));
  EXPECT_EQ(qs.size(), 3u);
  int seen[kEventKinds] = {0, 0, 0};
  for (int i = 0; i < kEventKinds; ++i) {
    const auto c = qs.pop_fair();
    ASSERT_TRUE(c.has_value());
    ++seen[static_cast<int>(c->kind)];
  }
  for (int k = 0; k < kEventKinds; ++k) EXPECT_EQ(seen[k], 1);
  EXPECT_TRUE(qs.empty());
  EXPECT_FALSE(qs.pop_fair().has_value());
}

TEST(KernelQueueSet, BurstOnOneKindCannotStarveTheOthers) {
  // 64 lookup chunks vs one distance and one collision chunk: the minority
  // kinds must be served within one full rotation (<= kEventKinds pops),
  // not after the burst drains.
  KernelQueueSet qs;
  for (std::size_t i = 0; i < 64; ++i) qs.push(chunk(EventKind::lookup, i));
  qs.push(chunk(EventKind::distance, 64));
  qs.push(chunk(EventKind::collision, 65));

  int pops_until_distance = 0, pops_until_collision = 0, pops = 0;
  while (const auto c = qs.pop_fair()) {
    ++pops;
    if (c->kind == EventKind::distance) pops_until_distance = pops;
    if (c->kind == EventKind::collision) pops_until_collision = pops;
  }
  EXPECT_EQ(pops, 66);
  EXPECT_LE(pops_until_distance, kEventKinds);
  EXPECT_LE(pops_until_collision, kEventKinds);
}

TEST(KernelQueueSet, OrdinalsSurviveRotation) {
  // The determinism hook: rotation may reorder SERVICE, but every chunk
  // keeps the global ordinal assigned at push time, so a consumer that
  // scatters into ordinal slots reconstructs the global chunk order exactly.
  KernelQueueSet qs;
  const EventKind kinds[] = {EventKind::lookup,    EventKind::lookup,
                             EventKind::collision, EventKind::distance,
                             EventKind::lookup,    EventKind::distance};
  for (std::size_t i = 0; i < 6; ++i) qs.push(chunk(kinds[i], i));
  std::vector<KernelChunk> by_ordinal(6);
  while (const auto c = qs.pop_fair()) by_ordinal.at(c->ordinal) = *c;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(by_ordinal[i].ordinal, i);
    EXPECT_EQ(by_ordinal[i].kind, kinds[i]);
    EXPECT_EQ(by_ordinal[i].begin, 100 * i);
  }
}

TEST(KernelQueueSet, FairnessResumesPastLastServedKind) {
  // After serving lookup, the next pop must consider distance FIRST even if
  // more lookup work arrived in between — the cursor advances past the kind
  // it just served.
  KernelQueueSet qs;
  qs.push(chunk(EventKind::lookup, 0));
  const auto first = qs.pop_fair();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, EventKind::lookup);
  qs.push(chunk(EventKind::lookup, 1));
  qs.push(chunk(EventKind::distance, 2));
  const auto second = qs.pop_fair();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->kind, EventKind::distance);
}

TEST(KernelQueueSet, KindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::lookup), "lookup");
  EXPECT_STREQ(to_string(EventKind::distance), "distance");
  EXPECT_STREQ(to_string(EventKind::collision), "collision");
}

}  // namespace
