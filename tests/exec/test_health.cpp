// HealthMonitor: the per-device circuit breaker driven purely by counts —
// chunk outcomes and scheduling denials — so a device's state trajectory is
// a pure function of its outcome sequence, never of wall-clock or thread
// timing. These tests walk the full healthy -> suspect -> tripped ->
// half_open -> {healthy | tripped} cycle one transition at a time.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exec/health.hpp"

namespace {

using namespace vmc::exec;

TEST(BreakerPolicy, ValidateRejectsNonPositiveThresholds) {
  EXPECT_NO_THROW(BreakerPolicy{}.validate());
  EXPECT_THROW((BreakerPolicy{0, 3, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((BreakerPolicy{1, 0, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((BreakerPolicy{1, 3, -1}.validate()), std::invalid_argument);
  EXPECT_THROW(HealthMonitor(BreakerPolicy{1, 0, 2}), std::invalid_argument);
}

TEST(HealthMonitor, CleanChunksStayHealthy) {
  HealthMonitor m;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(m.admit());
    m.record_chunk(/*faults=*/0, /*succeeded=*/true);
    EXPECT_EQ(m.state(), HealthState::healthy);
  }
  EXPECT_EQ(m.trips(), 0);
  EXPECT_EQ(m.denials(), 0);
  EXPECT_EQ(m.faulted_chunks(), 0);
}

TEST(HealthMonitor, RetriedChunkMakesSuspectCleanChunkHeals) {
  HealthMonitor m;  // suspect_after = 1
  m.record_chunk(/*faults=*/2, /*succeeded=*/true);
  EXPECT_EQ(m.state(), HealthState::suspect);
  EXPECT_TRUE(m.admit());  // suspect devices still take work
  m.record_chunk(0, true);
  EXPECT_EQ(m.state(), HealthState::healthy);
  EXPECT_EQ(m.faulted_chunks(), 1);
  EXPECT_EQ(m.failed_chunks(), 0);
}

TEST(HealthMonitor, ConsecutiveFailuresTripTheBreaker) {
  HealthMonitor m;  // trip_after = 3
  m.record_chunk(4, false);
  EXPECT_EQ(m.state(), HealthState::suspect);
  m.record_chunk(4, false);
  EXPECT_EQ(m.state(), HealthState::suspect);
  m.record_chunk(4, false);
  EXPECT_EQ(m.state(), HealthState::tripped);
  EXPECT_EQ(m.trips(), 1);
  EXPECT_EQ(m.failed_chunks(), 3);
  EXPECT_FALSE(m.admit());
}

TEST(HealthMonitor, SuccessBetweenFailuresResetsTheTripStreak) {
  // trip_after counts CONSECUTIVE failures: an intervening success (even a
  // shaky one) proves the device is alive and restarts the count.
  HealthMonitor m;
  m.record_chunk(4, false);
  m.record_chunk(4, false);
  m.record_chunk(1, true);  // delivered after a retry
  m.record_chunk(4, false);
  m.record_chunk(4, false);
  EXPECT_EQ(m.state(), HealthState::suspect);
  EXPECT_EQ(m.trips(), 0);
}

TEST(HealthMonitor, CooldownDenialsOpenTheProbeWindow) {
  HealthMonitor m;  // cooldown_denials = 2
  for (int i = 0; i < 3; ++i) m.record_chunk(4, false);
  ASSERT_EQ(m.state(), HealthState::tripped);
  EXPECT_FALSE(m.admit());  // denial 1
  EXPECT_EQ(m.state(), HealthState::tripped);
  EXPECT_FALSE(m.admit());  // denial 2: opens the half-open window...
  EXPECT_EQ(m.state(), HealthState::half_open);
  EXPECT_TRUE(m.admit());  // ...and THIS admit is the single probe
  EXPECT_EQ(m.probes(), 1);
  EXPECT_EQ(m.denials(), 2);
  // The probe is in flight: no second chunk may pass before its outcome.
  EXPECT_FALSE(m.admit());
}

TEST(HealthMonitor, CleanProbeClosesTheBreaker) {
  HealthMonitor m;
  for (int i = 0; i < 3; ++i) m.record_chunk(4, false);
  m.admit();
  m.admit();
  ASSERT_TRUE(m.admit());  // probe
  m.record_chunk(0, true);
  EXPECT_EQ(m.state(), HealthState::healthy);
  EXPECT_TRUE(m.admit());
}

TEST(HealthMonitor, ShakyProbeReopensAsSuspectNotHealthy) {
  HealthMonitor m;
  for (int i = 0; i < 3; ++i) m.record_chunk(4, false);
  m.admit();
  m.admit();
  ASSERT_TRUE(m.admit());
  m.record_chunk(/*faults=*/1, /*succeeded=*/true);
  EXPECT_EQ(m.state(), HealthState::suspect);
  EXPECT_TRUE(m.admit());
}

TEST(HealthMonitor, FailedProbeRetripsImmediately) {
  HealthMonitor m;
  for (int i = 0; i < 3; ++i) m.record_chunk(4, false);
  m.admit();
  m.admit();
  ASSERT_TRUE(m.admit());
  m.record_chunk(4, false);  // the probe itself fails
  EXPECT_EQ(m.state(), HealthState::tripped);
  EXPECT_EQ(m.trips(), 2);
  // The cooldown restarted: the same denial count reopens the window.
  EXPECT_FALSE(m.admit());
  EXPECT_FALSE(m.admit());
  EXPECT_EQ(m.state(), HealthState::half_open);
}

TEST(HealthMonitor, ToStringCoversEveryState) {
  EXPECT_EQ(to_string(HealthState::healthy), "healthy");
  EXPECT_EQ(to_string(HealthState::suspect), "suspect");
  EXPECT_EQ(to_string(HealthState::tripped), "tripped");
  EXPECT_EQ(to_string(HealthState::half_open), "half_open");
}

}  // namespace
