// Collision physics: kinematic bounds, reaction balance, URR and
// S(alpha,beta) behaviour, nuclide sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "physics/collision.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::physics;
using namespace vmc::xs;

TEST(ElasticKinematics, EnergyWithinAlphaBounds) {
  // E' in [alpha E, E] with alpha = ((A-1)/(A+1))^2.
  for (double awr : {1.0, 12.0, 238.0}) {
    const double alpha =
        ((awr - 1.0) / (awr + 1.0)) * ((awr - 1.0) / (awr + 1.0));
    for (double mu : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
      const ElasticOut out = elastic_kinematics(2.0, awr, mu);
      EXPECT_GE(out.energy, 2.0 * alpha - 1e-12);
      EXPECT_LE(out.energy, 2.0 + 1e-12);
      EXPECT_GE(out.mu_lab, -1.0);
      EXPECT_LE(out.mu_lab, 1.0);
    }
  }
}

TEST(ElasticKinematics, HydrogenForwardScatters) {
  // For A = 1 the lab cosine is never negative.
  for (double mu = -0.99; mu < 1.0; mu += 0.05) {
    EXPECT_GE(elastic_kinematics(1.0, 1.0, mu).mu_lab, -1e-9);
  }
  // Head-on collision with hydrogen stops the neutron.
  EXPECT_NEAR(elastic_kinematics(1.0, 1.0, -1.0).energy, 0.0, 1e-12);
}

TEST(ElasticKinematics, HeavyTargetLosesLittleEnergy) {
  const ElasticOut out = elastic_kinematics(1.0, 238.0, 0.0);
  EXPECT_GT(out.energy, 0.99);
}

class CollisionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lib_ = std::make_unique<Library>();
    // Flat scatterer + flat fissile absorber: analytic reaction fractions.
    scat_ = lib_->add_nuclide(make_flat_nuclide("scat", 10.0, 0.0001, 0.0, 0.0, 12.0));
    fis_ = lib_->add_nuclide(make_flat_nuclide("fis", 2.0, 8.0, 6.0, 2.5, 235.0));
    Material m;
    m.add(scat_, 1.0);
    m.add(fis_, 1.0);
    mat_ = lib_->add_material(std::move(m));
    lib_->finalize();
  }
  std::unique_ptr<Library> lib_;
  int scat_ = -1, fis_ = -1, mat_ = -1;
};

TEST_F(CollisionFixture, SampleNuclideFollowsTotalsRatio) {
  Collision coll(*lib_, PhysicsSettings::vector_friendly());
  vmc::rng::Stream s(1);
  const double sigma_t = 10.0001 + 10.0;  // both nuclides, density 1
  int n_fis = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (coll.sample_nuclide(mat_, 0.5, sigma_t, s) == fis_) ++n_fis;
  }
  EXPECT_NEAR(n_fis / static_cast<double>(n), 10.0 / 20.0, 0.01);
}

TEST_F(CollisionFixture, ReactionFractionsMatchCrossSections) {
  Collision coll(*lib_, PhysicsSettings::vector_friendly());
  vmc::rng::Stream s(2);
  const XsSet macro = macro_xs_history(*lib_, mat_, 0.5);
  int scatters = 0, captures = 0, fissions = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const CollisionResult r = coll.collide(mat_, 0.5, {0, 0, 1}, macro, s);
    switch (r.type) {
      case CollisionType::scatter: ++scatters; break;
      case CollisionType::capture: ++captures; break;
      case CollisionType::fission: ++fissions; break;
    }
  }
  // Analytic fractions: absorption = Sig_a/Sig_t; fission share of
  // absorption in the fissile nuclide = 6/8.
  const double f_abs = macro.absorption / macro.total;
  EXPECT_NEAR((captures + fissions) / static_cast<double>(n), f_abs, 0.01);
  EXPECT_NEAR(fissions / static_cast<double>(captures + fissions + 1e-300),
              6.0 / 8.0, 0.02);
}

TEST_F(CollisionFixture, FissionYieldMatchesNu) {
  Collision coll(*lib_, PhysicsSettings::vector_friendly());
  vmc::rng::Stream s(3);
  const XsSet macro = macro_xs_history(*lib_, mat_, 0.5);
  long total_neutrons = 0;
  int fissions = 0;
  for (int i = 0; i < 300000; ++i) {
    const CollisionResult r = coll.collide(mat_, 0.5, {0, 0, 1}, macro, s);
    if (r.type == CollisionType::fission) {
      ++fissions;
      total_neutrons += r.n_fission_neutrons;
    }
  }
  ASSERT_GT(fissions, 1000);
  EXPECT_NEAR(static_cast<double>(total_neutrons) / static_cast<double>(fissions), 2.5, 0.02);
}

TEST_F(CollisionFixture, ScatterPreservesDirectionNorm) {
  Collision coll(*lib_, PhysicsSettings::full());
  vmc::rng::Stream s(4);
  const XsSet macro = macro_xs_history(*lib_, mat_, 1.0e-3);
  for (int i = 0; i < 1000; ++i) {
    const CollisionResult r = coll.collide(mat_, 1.0e-3, {0, 0, 1}, macro, s);
    if (r.type == CollisionType::scatter) {
      EXPECT_NEAR(r.direction.norm(), 1.0, 1e-9);
      EXPECT_GT(r.energy, 0.0);
      // Free-gas can upscatter a little; far more than kT would be a bug.
      EXPECT_LT(r.energy, 1.0e-3 + 50.0 * 2.53e-8);
    }
  }
}

TEST_F(CollisionFixture, ScatteringModeratesOnAverage) {
  Collision coll(*lib_, PhysicsSettings::vector_friendly());
  vmc::rng::Stream s(5);
  const XsSet macro = macro_xs_history(*lib_, mat_, 1.0);
  double esum = 0.0;
  int n = 0;
  for (int i = 0; i < 50000; ++i) {
    const CollisionResult r = coll.collide(mat_, 1.0, {0, 0, 1}, macro, s);
    if (r.type == CollisionType::scatter) {
      esum += r.energy;
      ++n;
    }
  }
  ASSERT_GT(n, 1000);
  const double mean = esum / n;
  EXPECT_LT(mean, 1.0);   // energy goes down on average
  EXPECT_GT(mean, 0.5);   // mixed C-12-ish/heavy target: modest loss
}

TEST(UrrSampling, FactorsChangeMicroXsAndConsumeRng) {
  auto p = SynthParams::u238_like();
  p.grid_points = 400;
  p.n_resonances = 30;
  p.with_urr = true;
  Library lib;
  const int id = lib.add_nuclide(make_synthetic_nuclide("u", 1, p));
  Material m;
  m.add(id, 1.0);
  lib.add_material(std::move(m));
  lib.finalize();
  const double e_urr = lib.nuclide(id).urr->e_min * 2.0;

  Collision with(lib, PhysicsSettings::full());
  Collision without(lib, PhysicsSettings::vector_friendly());

  vmc::rng::Stream s1(1);
  vmc::rng::Stream s2(1);
  const XsSet a = with.micro_xs(id, e_urr, s1);
  const XsSet b = without.micro_xs(id, e_urr, s2);
  EXPECT_NE(s1.state(), s2.state());  // URR consumed a random number
  EXPECT_GT(a.total, 0.0);
  EXPECT_GT(b.total, 0.0);
  // Expectation over many band samples stays near the smooth value.
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += with.micro_xs(id, e_urr, s1).total;
  mean /= n;
  EXPECT_NEAR(mean, b.total, 0.35 * b.total);
}

TEST(ThermalScattering, TablesActivateBelowCutoff) {
  auto p = SynthParams::light_like(1.0);
  p.with_thermal = true;
  Library lib;
  const int id = lib.add_nuclide(make_synthetic_nuclide("h", 1, p));
  Material m;
  m.add(id, 1.0);
  const int mid = lib.add_material(std::move(m));
  lib.finalize();
  const double cutoff = lib.nuclide(id).thermal->cutoff;

  Collision with(lib, PhysicsSettings::full());
  Collision without(lib, PhysicsSettings::vector_friendly());
  vmc::rng::Stream s1(3), s2(3);
  const double e = cutoff / 8.0;
  const XsSet a = with.micro_xs(id, e, s1);
  const XsSet b = without.micro_xs(id, e, s2);
  EXPECT_NE(a.scatter, b.scatter);  // S(a,b) modifies the channel

  // Thermal scattering keeps outgoing energy in the thermal range and
  // produces unit directions.
  const XsSet macro = macro_xs_history(lib, mid, e);
  for (int i = 0; i < 2000; ++i) {
    const CollisionResult r = with.collide(mid, e, {0, 0, 1}, macro, s1);
    if (r.type == CollisionType::scatter) {
      EXPECT_NEAR(r.direction.norm(), 1.0, 1e-9);
      EXPECT_GT(r.energy, 0.0);
      EXPECT_LT(r.energy, 100.0 * cutoff);
    }
  }
}

TEST(PhysicsSettings, VectorFriendlyDisablesBranchyTreatments) {
  const PhysicsSettings v = PhysicsSettings::vector_friendly();
  EXPECT_FALSE(v.enable_urr);
  EXPECT_FALSE(v.enable_thermal);
  EXPECT_FALSE(v.enable_free_gas);
  const PhysicsSettings f = PhysicsSettings::full();
  EXPECT_TRUE(f.enable_urr);
  EXPECT_TRUE(f.enable_thermal);
}

}  // namespace
