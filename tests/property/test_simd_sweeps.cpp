// Exhaustive-by-exponent accuracy sweeps for the vectorized math kernels:
// every binade of the float range is sampled, so a regression in the
// mantissa normalization or the 2^n scaling cannot hide between spot checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "rng/stream.hpp"
#include "simd/simd.hpp"

namespace {

using vmc::simd::Vec;

float float_from_parts(int exponent, std::uint32_t mantissa) {
  const std::uint32_t bits =
      (static_cast<std::uint32_t>(exponent + 127) << 23) |
      (mantissa & 0x7fffffu);
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

class BinadeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BinadeSweep, VlogAccurateInEveryBinade) {
  const int exponent = GetParam();
  vmc::rng::Stream s(static_cast<std::uint64_t>(exponent + 200));
  constexpr int N = 16;
  for (int trial = 0; trial < 40; ++trial) {
    Vec<float, N> x;
    for (int i = 0; i < N; ++i) {
      x.set(i, float_from_parts(exponent,
                                static_cast<std::uint32_t>(s.next() * 0x800000)));
    }
    const auto r = vmc::simd::vlog(x);
    for (int i = 0; i < N; ++i) {
      const float ref = std::log(x[i]);
      EXPECT_NEAR(r[i], ref, std::abs(ref) * 4e-6f + 4e-6f)
          << "x=" << x[i] << " exp=" << exponent;
    }
  }
}

TEST_P(BinadeSweep, VexpRoundTripsVlogInEveryBinade) {
  const int exponent = GetParam();
  if (exponent > 80) GTEST_SKIP() << "exp(log(x)) overflows float";
  vmc::rng::Stream s(static_cast<std::uint64_t>(exponent + 500));
  constexpr int N = 16;
  for (int trial = 0; trial < 20; ++trial) {
    Vec<float, N> x;
    for (int i = 0; i < N; ++i) {
      x.set(i, float_from_parts(exponent,
                                static_cast<std::uint32_t>(s.next() * 0x800000)));
    }
    const auto rt = vmc::simd::vexp(vmc::simd::vlog(x));
    for (int i = 0; i < N; ++i) {
      EXPECT_NEAR(rt[i], x[i], x[i] * 1e-5f) << "exp=" << exponent;
    }
  }
}

// Every 8th binade of the normal float range (plus the extremes).
INSTANTIATE_TEST_SUITE_P(Binades, BinadeSweep,
                         ::testing::Values(-126, -120, -96, -64, -32, -8, -1,
                                           0, 1, 8, 32, 64, 96, 120, 127));

class DoubleBinadeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DoubleBinadeSweep, VlogDoubleAccurate) {
  const int exponent = GetParam();
  vmc::rng::Stream s(static_cast<std::uint64_t>(exponent + 2000));
  constexpr int N = 8;
  const double base = std::ldexp(1.0, exponent);
  for (int trial = 0; trial < 40; ++trial) {
    Vec<double, N> x;
    for (int i = 0; i < N; ++i) x.set(i, base * (1.0 + s.next()));
    const auto r = vmc::simd::vlog(x);
    for (int i = 0; i < N; ++i) {
      const double ref = std::log(x[i]);
      EXPECT_NEAR(r[i], ref, std::abs(ref) * 2e-15 + 2e-15)
          << "x=" << x[i] << " exp=" << exponent;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Binades, DoubleBinadeSweep,
                         ::testing::Values(-1022, -900, -512, -128, -16, -1, 0,
                                           1, 16, 128, 512, 900, 1023));

TEST(GatherSweep, AllLanePermutations) {
  // Gathers with adversarial index patterns: identity, reversed, constant,
  // strided, and duplicated lanes.
  constexpr int N = 16;
  using VF = Vec<float, N>;
  using VI = Vec<std::int32_t, N>;
  vmc::simd::aligned_vector<float> table(1024);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i) * 0.5f;
  }
  const auto check = [&](VI idx) {
    const VF g = VF::gather(table.data(), idx);
    for (int i = 0; i < N; ++i) {
      ASSERT_EQ(g[i], table[static_cast<std::size_t>(idx[i])]);
    }
  };
  check(VI::iota(0, 1));
  check(VI::iota(15, -1));
  check(VI(511));
  check(VI::iota(0, 64));
  VI dup;
  for (int i = 0; i < N; ++i) dup.set(i, (i % 3) * 100);
  check(dup);
}

}  // namespace
