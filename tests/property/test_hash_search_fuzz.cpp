// Property fuzz for the hash-binned energy-grid accelerator: across random
// libraries (random grid shapes, random thinning, random bins/decade), every
// hash-search tier must select bit-identical union intervals to
// std::upper_bound — for random energies AND the adversarial set (grid
// front/back, exact grid points, nextafter neighbours, bucket-edge bit
// patterns, out-of-range energies). A single off-by-one here silently skews
// every cross section downstream, so the check is EQ, never NEAR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "rng/stream.hpp"
#include "xsdata/hash_grid.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;

double from_hi32(std::int32_t hi, std::uint32_t lo) {
  const std::int64_t bits =
      (static_cast<std::int64_t>(hi) << 32) | static_cast<std::int64_t>(lo);
  double e;
  std::memcpy(&e, &bits, sizeof(e));
  return e;
}

class HashSearchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HashSearchFuzz, RandomLibrariesResolveBitIdentically) {
  const int round = GetParam();
  vmc::rng::Stream cfg(static_cast<std::uint64_t>(round) * 7919 + 11);

  // Random library shape: nuclide count, grid sizes, thinning, bins/decade.
  const int nn = 2 + static_cast<int>(cfg.next() * 12.0);
  const bool thin = cfg.next() < 0.5;
  const std::size_t max_union =
      thin ? 600 + static_cast<std::size_t>(cfg.next() * 3000.0) : (1u << 20);
  Library lib(max_union);
  Material m;
  for (int i = 0; i < nn; ++i) {
    SynthParams p = (i % 3 == 0) ? SynthParams::u238_like()
                                 : (i % 3 == 1)
                                       ? SynthParams::u235_like()
                                       : SynthParams::fission_product_like();
    p.grid_points = 60 + static_cast<int>(cfg.next() * 400.0);
    p.n_resonances = 10 + static_cast<int>(cfg.next() * 40.0);
    lib.add_nuclide(make_synthetic_nuclide(
        "f" + std::to_string(round) + "_" + std::to_string(i),
        static_cast<std::uint64_t>(round * 100 + i), p));
    m.add(i, 1e-3 * (1.0 + cfg.next()));
  }
  lib.add_material(std::move(m));
  const int bpd_choices[] = {7, 64, 1024};
  const int bpd = bpd_choices[static_cast<int>(cfg.next() * 2.999)];
  lib.set_hash_options({bpd, true});
  lib.finalize();

  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  ASSERT_FALSE(hg.empty());

  // Energy set: random log-uniform + adversarial.
  std::vector<double> es;
  vmc::rng::Stream s(static_cast<std::uint64_t>(round) + 31337);
  for (int i = 0; i < 1500; ++i) {
    es.push_back(kEnergyMin * std::pow(kEnergyMax / kEnergyMin, s.next()));
  }
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 40; ++i) {
    const std::size_t u =
        static_cast<std::size_t>(s.next() * static_cast<double>(ug.size()));
    const double g = ug.energy[std::min(u, ug.size() - 1)];
    es.push_back(g);
    es.push_back(std::nextafter(g, 0.0));
    es.push_back(std::nextafter(g, inf));
  }
  es.push_back(ug.energy.front());
  es.push_back(ug.energy.back());
  es.push_back(ug.energy.front() * 0.25);
  es.push_back(ug.energy.back() * 4.0);
  const std::int32_t h0 = HashGrid::hi32(ug.energy.front());
  const std::int32_t span = HashGrid::hi32(ug.energy.back()) - h0;
  for (int k = 0; k <= 32; ++k) {
    const std::int32_t h =
        h0 + static_cast<std::int32_t>(
                 (static_cast<std::int64_t>(span) * k) / 32);
    es.push_back(from_hi32(h, 0u));
    es.push_back(from_hi32(h, 0xFFFFFFFFu));
  }

  // Tier (a): scalar find is bitwise upper_bound.
  for (const double e : es) {
    ASSERT_EQ(hg.find(ug.energy, e), ug.find(e))
        << "E=" << e << " round=" << round << " bpd=" << bpd;
  }

  // Tier (c): the batched SIMD search agrees lane-for-lane (odd sizes too).
  std::vector<std::int32_t> us(es.size());
  hg.find_banked(ug.energy, es, us.data());
  for (std::size_t i = 0; i < es.size(); ++i) {
    ASSERT_EQ(static_cast<std::size_t>(us[i]), ug.find(es[i]))
        << "E=" << es[i] << " round=" << round;
  }
  const std::size_t odd = es.size() % 2 == 0 ? es.size() - 1 : es.size();
  hg.find_banked(ug.energy, std::span<const double>(es.data(), odd),
                 us.data());
  for (std::size_t i = 0; i < odd; ++i) {
    ASSERT_EQ(static_cast<std::size_t>(us[i]), ug.find(es[i]));
  }

  // Tier (b) + full kernels: every scalar tier is bitwise identical.
  constexpr XsLookupOptions kB{GridSearch::binary};
  constexpr XsLookupOptions kH{GridSearch::hash};
  constexpr XsLookupOptions kN{GridSearch::hash_nuclide};
  for (std::size_t i = 0; i < es.size(); i += 17) {
    const XsSet a = macro_xs_history(lib, 0, es[i], kB);
    const XsSet b = macro_xs_history(lib, 0, es[i], kH);
    const XsSet c = macro_xs_history(lib, 0, es[i], kN);
    ASSERT_EQ(a.total, b.total) << "E=" << es[i];
    ASSERT_EQ(a.total, c.total) << "E=" << es[i];
    ASSERT_EQ(a.fission, b.fission);
    ASSERT_EQ(a.fission, c.fission);
  }
  std::vector<XsSet> ob(es.size()), oh(es.size());
  macro_xs_banked(lib, 0, es, ob, kB);
  macro_xs_banked(lib, 0, es, oh, kH);
  for (std::size_t i = 0; i < es.size(); ++i) {
    ASSERT_EQ(ob[i].total, oh[i].total) << "E=" << es[i];
    ASSERT_EQ(ob[i].absorption, oh[i].absorption);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, HashSearchFuzz, ::testing::Range(0, 8));

}  // namespace
