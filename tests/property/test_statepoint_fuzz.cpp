// Property fuzz: statepoint corruption detection. For EVERY single-byte
// corruption of a valid statepoint file — bit flips, truncations, trailing
// garbage — read_statepoint either throws or returns the original object.
// There is no third outcome: silently resuming from damaged state is the
// one failure mode a checkpoint format must not have.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/statepoint.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

StatePoint sample_statepoint() {
  StatePoint sp;
  sp.seed = 0xABCDEF;
  sp.resample_state = 987654321;
  sp.generations_completed = 5;
  vmc::rng::Stream rs(17);
  for (int i = 0; i < 5; ++i) sp.k_history.push_back(0.9 + 0.2 * rs.next());
  for (int i = 0; i < 40; ++i) {
    sp.source.push_back(FissionSite{
        {rs.next() * 10 - 5, rs.next() * 10 - 5, rs.next() * 10 - 5},
        1.0e6 * rs.next() + 1.0});
  }
  return sp;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StatePointFuzz, EveryByteFlipIsDetectedOrHarmless) {
  const StatePoint sp = sample_statepoint();
  const std::string path = temp_path("fuzz-base.vmcs");
  write_statepoint(path, sp);
  const std::vector<char> good = slurp(path);
  ASSERT_FALSE(good.empty());

  const std::string target = temp_path("fuzz-flip.vmcs");
  int detected = 0;
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    for (const unsigned char mask : {0x01, 0x80, 0xFF}) {
      std::vector<char> bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      if (bad[pos] == good[pos]) continue;  // flip was a no-op
      spit(target, bad);
      try {
        const StatePoint back = read_statepoint(target);
        // Not detected: only acceptable if the object is untouched (cannot
        // happen for a real flip — but the property, not the mechanism, is
        // the contract).
        EXPECT_TRUE(back == sp) << "undetected corruption at byte " << pos;
      } catch (const std::runtime_error&) {
        ++detected;
      }
    }
  }
  EXPECT_GT(detected, 0);
  std::remove(path.c_str());
  std::remove(target.c_str());
}

TEST(StatePointFuzz, EveryTruncationLengthIsRejected) {
  const StatePoint sp = sample_statepoint();
  const std::string path = temp_path("fuzz-trunc-base.vmcs");
  write_statepoint(path, sp);
  const std::vector<char> good = slurp(path);

  const std::string target = temp_path("fuzz-trunc.vmcs");
  for (std::size_t len = 0; len < good.size(); ++len) {
    spit(target, {good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW(read_statepoint(target), std::runtime_error)
        << "accepted a file truncated to " << len << " of " << good.size()
        << " bytes";
  }
  std::remove(path.c_str());
  std::remove(target.c_str());
}

TEST(StatePointFuzz, TrailingGarbageIsRejected) {
  const StatePoint sp = sample_statepoint();
  const std::string path = temp_path("fuzz-tail-base.vmcs");
  write_statepoint(path, sp);
  const std::vector<char> good = slurp(path);

  const std::string target = temp_path("fuzz-tail.vmcs");
  for (const std::size_t extra : {std::size_t{1}, std::size_t{8},
                                  std::size_t{32}, good.size()}) {
    std::vector<char> bad = good;
    bad.insert(bad.end(), extra, '\0');
    spit(target, bad);
    EXPECT_THROW(read_statepoint(target), std::runtime_error)
        << extra << " garbage bytes appended";
  }
  std::remove(path.c_str());
  std::remove(target.c_str());
}

}  // namespace
