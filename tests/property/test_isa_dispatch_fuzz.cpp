// Forced-ISA dispatch fuzz: the multi-ISA kernel backends are only safe to
// dispatch between if they are indistinguishable. For random libraries and
// random simulations, EVERY level this host can execute (scalar upward) must
// produce bit-identical results to the level-0 scalar oracle — union
// intervals from the batched search, all six lookup-kernel outputs, the
// distance stage, and whole-simulation k-eff histories and mesh tallies.
// EQ, never NEAR: a single rounding difference between backends would make
// VMC_SIMD_ISA (and CPU generation!) a physics parameter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "core/eigenvalue.hpp"
#include "core/mesh_tally.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "simd/dispatch.hpp"
#include "xsdata/kernels.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc::xs;
namespace simd = vmc::simd;

/// RAII force of one backend level; always restores env/CPUID dispatch.
class ForcedIsa {
 public:
  explicit ForcedIsa(simd::IsaLevel l) { simd::force_isa(l); }
  ~ForcedIsa() { simd::clear_forced_isa(); }
  ForcedIsa(const ForcedIsa&) = delete;
  ForcedIsa& operator=(const ForcedIsa&) = delete;
};

std::vector<simd::IsaLevel> dispatchable_levels() {
  std::vector<simd::IsaLevel> v;
  for (int i = 0; i < simd::kNumIsaLevels; ++i) {
    const auto l = static_cast<simd::IsaLevel>(i);
    if (simd::host_supports(l)) v.push_back(l);
  }
  return v;
}

class IsaDispatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IsaDispatchFuzz, LookupKernelsMatchScalarOracleOnEveryLevel) {
  const int round = GetParam();
  vmc::rng::Stream cfg(static_cast<std::uint64_t>(round) * 6089 + 17);

  // Random library shape (same family as the hash-search fuzz).
  const int nn = 2 + static_cast<int>(cfg.next() * 12.0);
  const bool thin = cfg.next() < 0.5;
  const std::size_t max_union =
      thin ? 600 + static_cast<std::size_t>(cfg.next() * 3000.0) : (1u << 20);
  Library lib(max_union);
  Material m;
  for (int i = 0; i < nn; ++i) {
    SynthParams p = (i % 3 == 0) ? SynthParams::u238_like()
                                 : (i % 3 == 1)
                                       ? SynthParams::u235_like()
                                       : SynthParams::fission_product_like();
    p.grid_points = 60 + static_cast<int>(cfg.next() * 400.0);
    p.n_resonances = 10 + static_cast<int>(cfg.next() * 40.0);
    lib.add_nuclide(make_synthetic_nuclide(
        "isa" + std::to_string(round) + "_" + std::to_string(i),
        static_cast<std::uint64_t>(round * 100 + i), p));
    m.add(i, 1e-3 * (1.0 + cfg.next()));
  }
  lib.add_material(std::move(m));
  const int bpd_choices[] = {7, 64, 1024};
  lib.set_hash_options({bpd_choices[round % 3], true});
  lib.finalize();
  const auto& ug = lib.union_grid();

  // Energies: random log-uniform plus grid points and their neighbours (the
  // interval-edge cases where a backend disagreement would hide). Odd count
  // on purpose — every lane width gets a masked remainder tile.
  std::vector<double> es;
  vmc::rng::Stream s(static_cast<std::uint64_t>(round) + 90001);
  for (int i = 0; i < 701; ++i) {
    es.push_back(kEnergyMin * std::pow(kEnergyMax / kEnergyMin, s.next()));
  }
  for (int i = 0; i < 25; ++i) {
    const std::size_t u =
        static_cast<std::size_t>(s.next() * static_cast<double>(ug.size()));
    const double g = ug.energy[std::min(u, ug.size() - 1)];
    es.push_back(g);
    es.push_back(std::nextafter(g, 0.0));
  }

  constexpr XsLookupOptions kB{GridSearch::binary};
  constexpr XsLookupOptions kH{GridSearch::hash};
  constexpr XsLookupOptions kN{GridSearch::hash_nuclide};
  const std::size_t ne = es.size();

  // Scalar oracle results for every kernel.
  std::vector<std::int32_t> us0(ne);
  std::vector<XsSet> xsb0(ne), xsh0(ne), xsn0(ne), outer0(ne), sc0(ne);
  std::vector<double> tot0(ne), hist0(ne);
  {
    ForcedIsa f(simd::IsaLevel::scalar);
    lib.hash_grid().find_banked(ug.energy, es, us0.data());
    macro_xs_banked(lib, 0, es, xsb0, kB);
    macro_xs_banked(lib, 0, es, xsh0, kH);
    macro_xs_banked(lib, 0, es, xsn0, kN);
    macro_xs_banked_outer(lib, 0, es, outer0, kH);
    macro_total_banked(lib, 0, es, tot0, kH);
    macro_xs_banked_scalar(lib, 0, es, sc0, kN);
    for (std::size_t i = 0; i < ne; ++i) {
      hist0[i] = macro_total_history(lib, 0, es[i], kH);
    }
  }

  for (const simd::IsaLevel level : dispatchable_levels()) {
    ForcedIsa f(level);
    SCOPED_TRACE(std::string("backend ") + simd::isa_display_name(level) +
                 " round " + std::to_string(round));
    ASSERT_EQ(simd::dispatch().isa, level);

    std::vector<std::int32_t> us(ne);
    lib.hash_grid().find_banked(ug.energy, es, us.data());
    for (std::size_t i = 0; i < ne; ++i) {
      ASSERT_EQ(us[i], us0[i]) << "union interval diverged, E=" << es[i];
    }

    std::vector<XsSet> xs(ne), outer(ne), sc(ne);
    std::vector<double> tot(ne);
    const auto expect_sets = [&](const std::vector<XsSet>& got,
                                 const std::vector<XsSet>& want,
                                 const char* kernel) {
      for (std::size_t i = 0; i < ne; ++i) {
        ASSERT_EQ(got[i].total, want[i].total)
            << kernel << " total diverged, E=" << es[i];
        ASSERT_EQ(got[i].scatter, want[i].scatter) << kernel;
        ASSERT_EQ(got[i].absorption, want[i].absorption) << kernel;
        ASSERT_EQ(got[i].fission, want[i].fission) << kernel;
      }
    };
    macro_xs_banked(lib, 0, es, xs, kB);
    expect_sets(xs, xsb0, "xs_banked/binary");
    macro_xs_banked(lib, 0, es, xs, kH);
    expect_sets(xs, xsh0, "xs_banked/hash");
    macro_xs_banked(lib, 0, es, xs, kN);
    expect_sets(xs, xsn0, "xs_banked/hash_nuclide");
    macro_xs_banked_outer(lib, 0, es, outer, kH);
    expect_sets(outer, outer0, "xs_banked_outer");
    macro_xs_banked_scalar(lib, 0, es, sc, kN);
    expect_sets(sc, sc0, "xs_banked_scalar");
    macro_total_banked(lib, 0, es, tot, kH);
    for (std::size_t i = 0; i < ne; ++i) {
      ASSERT_EQ(tot[i], tot0[i]) << "total_banked diverged, E=" << es[i];
      ASSERT_EQ(macro_total_history(lib, 0, es[i], kH), hist0[i]);
    }
  }
}

TEST_P(IsaDispatchFuzz, DistanceKernelMatchesScalarOracleOnEveryLevel) {
  const int round = GetParam();
  vmc::rng::Stream s(static_cast<std::uint64_t>(round) * 40503 + 7);
  const std::size_t n = 97 + static_cast<std::size_t>(s.next() * 400.0);
  std::vector<double> xi(n), st(n), want(n), got(n);
  for (std::size_t i = 0; i < n; ++i) {
    xi[i] = s.next();
    if (xi[i] <= 0.0) xi[i] = 0.5;
    // Include zero total cross sections: the kernel's -log(xi)/0 = +inf path.
    st[i] = s.next() < 0.05 ? 0.0 : s.next() * 10.0;
  }
  kern::kernel_table(simd::IsaLevel::scalar)
      .distance(xi.data(), st.data(), want.data(),
                static_cast<std::int64_t>(n));
  for (const simd::IsaLevel level : dispatchable_levels()) {
    SCOPED_TRACE(simd::isa_display_name(level));
    const kern::IsaKernels& k = kern::kernel_table(level);
    EXPECT_EQ(k.level, static_cast<std::int32_t>(level));
    k.distance(xi.data(), st.data(), got.data(),
               static_cast<std::int64_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      // Bitwise, inf-and-all: compare via EQ on doubles (inf==inf holds).
      ASSERT_EQ(got[i], want[i]) << "i=" << i << " xi=" << xi[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, IsaDispatchFuzz, ::testing::Range(0, 4));

/// Whole-simulation invariant: k-eff history and mesh tallies of an
/// event-mode eigenvalue run (banked SIMD lookups + distance) are bitwise
/// identical under every dispatchable backend. This is the serve warm==cold
/// property extended across ISA levels — the simulation service may dispatch
/// on whatever the host supports without perturbing physics.
TEST(IsaDispatchSimulationFuzz, EventModeRunIsBitwiseIsaInvariant) {
  vmc::hm::ModelOptions mo;
  mo.fuel = vmc::hm::FuelSize::small;
  mo.fuel_nuclides = 6;
  mo.grid_scale = 0.02;
  mo.full_core = false;
  const vmc::hm::Model model = vmc::hm::build_model(mo);

  const auto run_once = [&]() {
    vmc::core::MeshTally::Spec ms;
    ms.lower = model.source_lo;
    ms.upper = model.source_hi;
    ms.nx = ms.ny = 3;
    ms.nz = 1;
    ms.group_edges = vmc::core::log_group_edges(1e-11, 20.0, 4);
    vmc::core::MeshTally mesh(ms);
    vmc::core::Settings st;
    st.n_particles = 120;
    st.n_inactive = 1;
    st.n_active = 2;
    st.seed = 99;
    st.mode = vmc::core::TransportMode::event;
    st.mesh_tally = &mesh;
    st.source_lo = model.source_lo;
    st.source_hi = model.source_hi;
    vmc::core::Simulation sim(model.geometry, model.library, st);
    const vmc::core::RunResult r = sim.run();
    std::pair<std::vector<double>, std::vector<double>> fp{
        r.k_collision_history, mesh.energy_spectrum()};
    return fp;
  };

  std::pair<std::vector<double>, std::vector<double>> want;
  {
    ForcedIsa f(simd::IsaLevel::scalar);
    want = run_once();
  }
  ASSERT_FALSE(want.first.empty());
  for (const simd::IsaLevel level : dispatchable_levels()) {
    ForcedIsa f(level);
    SCOPED_TRACE(simd::isa_display_name(level));
    const auto got = run_once();
    ASSERT_EQ(got.first.size(), want.first.size());
    for (std::size_t g = 0; g < want.first.size(); ++g) {
      EXPECT_EQ(got.first[g], want.first[g])
          << "k history diverged at generation " << g;
    }
    ASSERT_EQ(got.second.size(), want.second.size());
    for (std::size_t b = 0; b < want.second.size(); ++b) {
      EXPECT_EQ(got.second[b], want.second[b])
          << "mesh tally diverged in group " << b;
    }
  }
}

}  // namespace
