// Warm-vs-cold fuzz for the serving layer's cache contract: for randomized
// job-spec shapes (model size, nuclide count, tier, temperature, run shape),
// a simulation run against a cache-acquired model is bit-identical — k-eff
// history AND mesh tallies — to one against a freshly built model of the
// same spec. This is the property that makes a cache hit safe: skipping
// finalize/rebuild may change latency, never physics.
#include <gtest/gtest.h>

#include <vector>

#include "core/eigenvalue.hpp"
#include "core/mesh_tally.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "serve/cache.hpp"
#include "serve/job_spec.hpp"

namespace serve = vmc::serve;

namespace {

serve::JobSpec random_spec(vmc::rng::Stream& s) {
  serve::JobSpec spec;
  spec.model = s.next() < 0.85 ? "small" : "large";
  const int nuc[] = {0, 4, 6, 10};
  spec.nuclides = nuc[static_cast<int>(s.next() * 4.0) % 4];
  if (spec.model == "large" && spec.nuclides == 0) spec.nuclides = 10;
  const vmc::xs::GridSearch tiers[] = {vmc::xs::GridSearch::binary,
                                       vmc::xs::GridSearch::hash,
                                       vmc::xs::GridSearch::hash_nuclide};
  spec.tier = tiers[static_cast<int>(s.next() * 3.0) % 3];
  const double temps[] = {300.0, 450.0, 900.0, 1800.0};
  spec.temperature_K = temps[static_cast<int>(s.next() * 4.0) % 4];
  spec.grid_scale = 0.015 + 0.01 * s.next();
  spec.batches = 2 + (static_cast<int>(s.next() * 2.0) % 2);
  spec.inactive = 1;
  spec.particles = 80 + static_cast<std::uint64_t>(s.next() * 80.0);
  spec.seed = static_cast<std::uint64_t>(s.next() * 1.0e6);
  serve::validate_spec(spec);
  return spec;
}

struct RunFingerprint {
  std::vector<double> k_history;
  std::vector<double> spectrum;
};

RunFingerprint run_once(const vmc::hm::Model& model, const serve::JobSpec& spec) {
  vmc::core::MeshTally::Spec ms;
  ms.lower = model.source_lo;
  ms.upper = model.source_hi;
  ms.nx = ms.ny = 3;
  ms.nz = 1;
  ms.group_edges = vmc::core::log_group_edges(1e-11, 20.0, 4);
  vmc::core::MeshTally mesh(ms);

  vmc::core::Settings st = spec.settings();
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  st.mesh_tally = &mesh;
  vmc::core::Simulation sim(model.geometry, model.library, st);
  const vmc::core::RunResult r = sim.run();
  return {r.k_collision_history, mesh.energy_spectrum()};
}

TEST(ServeFuzz, WarmModelReproducesColdRunBitwise) {
  vmc::rng::Stream shapes(0x5EFEFF5EULL);
  serve::ModelCache cache;
  for (int round = 0; round < 6; ++round) {
    const serve::JobSpec spec = random_spec(shapes);
    SCOPED_TRACE("round " + std::to_string(round) + " digest " +
                 std::to_string(spec.digest()));

    // Cold: a from-scratch build of this spec's model, no cache involved.
    const vmc::hm::Model cold = vmc::hm::build_model(spec.model_options());
    const RunFingerprint want = run_once(cold, spec);

    // Warm: whatever the shared cache hands out for the digest (a build on
    // the first encounter, the cached instance on repeats).
    const auto warm = cache.acquire(spec);
    const RunFingerprint got = run_once(*warm, spec);

    ASSERT_EQ(got.k_history.size(), want.k_history.size());
    for (std::size_t g = 0; g < want.k_history.size(); ++g) {
      EXPECT_EQ(got.k_history[g], want.k_history[g])
          << "k history diverged at generation " << g;
    }
    ASSERT_EQ(got.spectrum.size(), want.spectrum.size());
    for (std::size_t b = 0; b < want.spectrum.size(); ++b) {
      EXPECT_EQ(got.spectrum[b], want.spectrum[b])
          << "mesh tally diverged in group " << b;
    }
  }
}

TEST(ServeFuzz, RepeatAcquireIsAlwaysTheIdenticalObject) {
  vmc::rng::Stream shapes(0x5EFEFF5FULL);
  serve::ModelCache cache;
  for (int round = 0; round < 8; ++round) {
    serve::JobSpec spec = random_spec(shapes);
    spec.grid_scale = 0.02;  // collapse to few digests so repeats happen
    spec.temperature_K = 300.0;
    const auto a = cache.acquire(spec);
    const auto b = cache.acquire(spec);
    EXPECT_EQ(a.get(), b.get());
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
