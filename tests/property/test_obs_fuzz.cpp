// Property fuzz: every document the observability layer emits must parse.
// Metric names, label keys/values, help strings, span names, and injected
// args are driven from deterministic random bytes — including quotes,
// backslashes, control characters, and high-bit bytes — and the invariant is
// unconditional: chrome_json() always passes json_parse, prometheus() always
// passes prometheus_validate, manifests always parse. A consumer (Perfetto,
// a scraper) must never see a syntactically broken artifact no matter what
// strings instrumentation code feeds in.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::obs;

// Deterministic byte-string generator over a hostile alphabet.
std::string fuzz_string(vmc::rng::Stream& rs, std::size_t max_len) {
  static const char alphabet[] =
      "abzABZ019_:-. \t\"\\{}[],\n\x01\x1f\x7f\xc3\xa9\xf0";
  const std::size_t len =
      static_cast<std::size_t>(rs.next() * static_cast<double>(max_len + 1));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += alphabet[static_cast<std::size_t>(
        rs.next() * static_cast<double>(sizeof(alphabet) - 1))];
  }
  return out;
}

double fuzz_value(vmc::rng::Stream& rs) {
  const double u = rs.next();
  if (u < 0.05) return std::numeric_limits<double>::quiet_NaN();
  if (u < 0.10) return std::numeric_limits<double>::infinity();
  if (u < 0.15) return -std::numeric_limits<double>::infinity();
  if (u < 0.25) return 0.0;
  return (rs.next() - 0.5) * 1e12;
}

TEST(ObsFuzz, EveryPrometheusExpositionValidates) {
  for (std::uint64_t round = 0; round < 30; ++round) {
    vmc::rng::Stream rs(1000 + round);
    MetricsRegistry reg;
    const int n_series = 1 + static_cast<int>(rs.next() * 12);
    for (int i = 0; i < n_series; ++i) {
      const std::string name = fuzz_string(rs, 24);
      Labels labels;
      const int n_labels = static_cast<int>(rs.next() * 3);
      for (int l = 0; l < n_labels; ++l) {
        labels.emplace_back(fuzz_string(rs, 10), fuzz_string(rs, 16));
      }
      const double pick = rs.next();
      try {
        if (pick < 0.4) {
          reg.counter(name, labels, fuzz_string(rs, 30))
              .inc(static_cast<std::uint64_t>(rs.next() * 1e6));
        } else if (pick < 0.7) {
          reg.gauge(name, labels, fuzz_string(rs, 30)).set(fuzz_value(rs));
        } else {
          const Histogram h =
              reg.histogram(name, {0.1, 1.0, 10.0}, labels, fuzz_string(rs, 30));
          for (int o = 0; o < 5; ++o) h.observe(fuzz_value(rs));
        }
      } catch (const std::logic_error&) {
        // Random names may collide with a different type — a rejected
        // registration is correct behaviour, not an emission.
      }
    }
    const MetricsSnapshot snap = reg.snapshot();
    std::string err;
    EXPECT_TRUE(prometheus_validate(snap.prometheus(), &err))
        << "round " << round << ": " << err << "\n"
        << snap.prometheus();
    EXPECT_TRUE(json_valid(snap.json(), &err))
        << "round " << round << ": " << err;
  }
}

TEST(ObsFuzz, EveryChromeTraceParses) {
  // Literal pool for begin/instant (the ring stores pointers, so the names
  // must outlive the tracer); hostile content goes through the injection
  // API, which copies.
  static const char* kNames[] = {"sweep", "bank\"quoted\"", "a\\b", "tab\there"};
  static const char* kCats[] = {"core", "off\nload"};

  for (std::uint64_t round = 0; round < 30; ++round) {
    vmc::rng::Stream rs(2000 + round);
    Tracer t(/*ring_capacity=*/64);  // small ring: overflow path exercised
    t.set_enabled(true);
    const int n_ops = 1 + static_cast<int>(rs.next() * 120);
    int open = 0;
    for (int i = 0; i < n_ops; ++i) {
      const double pick = rs.next();
      const char* name = kNames[static_cast<std::size_t>(rs.next() * 4)];
      const char* cat = kCats[static_cast<std::size_t>(rs.next() * 2)];
      if (pick < 0.3) {
        t.begin(name, cat);
        ++open;
      } else if (pick < 0.5) {
        t.end();  // may be unbalanced on purpose
        if (open > 0) --open;
      } else if (pick < 0.65) {
        t.instant(name, cat);
      } else if (pick < 0.8) {
        JsonWriter args;
        args.begin_object();
        args.member(fuzz_string(rs, 8), fuzz_value(rs));
        args.end_object();
        t.inject_span(static_cast<int>(rs.next() * 3),
                      static_cast<int>(rs.next() * 4), fuzz_string(rs, 20),
                      fuzz_string(rs, 10), rs.next(), rs.next(), args.str());
      } else if (pick < 0.9) {
        t.inject_instant(1, 2, fuzz_string(rs, 20), fuzz_string(rs, 10),
                         rs.next());
      } else {
        t.set_process_name(static_cast<int>(rs.next() * 3), fuzz_string(rs, 16));
        t.set_thread_name(static_cast<int>(rs.next() * 3),
                          static_cast<int>(rs.next() * 4), fuzz_string(rs, 16));
      }
    }
    while (open-- > 0) t.end();
    const std::string doc = t.chrome_json();
    std::string err;
    EXPECT_TRUE(json_valid(doc, &err)) << "round " << round << ": " << err;
  }
}

TEST(ObsFuzz, EveryManifestParses) {
  for (std::uint64_t round = 0; round < 20; ++round) {
    vmc::rng::Stream rs(3000 + round);
    RunManifest m;
    m.set_run_kind(fuzz_string(rs, 20));
    if (rs.next() < 0.5) {
      m.set_seed(static_cast<std::uint64_t>(rs.next() * 1e18));
    }
    std::vector<double> k;
    const int n_gen = static_cast<int>(rs.next() * 8);
    for (int i = 0; i < n_gen; ++i) k.push_back(fuzz_value(rs));
    m.set_k_history(k);
    const int n_extra = static_cast<int>(rs.next() * 5);
    for (int i = 0; i < n_extra; ++i) {
      if (rs.next() < 0.5) {
        m.set_extra(fuzz_string(rs, 12), fuzz_string(rs, 24));
      } else {
        m.set_extra(fuzz_string(rs, 12), fuzz_value(rs));
      }
    }
    if (rs.next() < 0.5) m.capture_fault_summary();
    if (rs.next() < 0.5) m.capture_metrics();
    std::string err;
    EXPECT_TRUE(json_valid(m.json(), &err)) << "round " << round << ": " << err;
  }
}

}  // namespace
