// Property-based geometry fuzzing: randomized pin-lattice geometries must
// satisfy tracking invariants for every sampled configuration —
//  * every interior point locates to a material,
//  * random rays walk to the boundary with positive finite segments,
//  * reflective boxes never leak,
//  * Monte Carlo volume fractions match the analytic pin areas.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::geom;

struct FuzzConfig {
  std::uint64_t seed;
  int nx, ny;
  double pitch;
  double pin_radius;
  bool reflective;
};

/// Build an (nx x ny) lattice of pin universes inside a box sized exactly to
/// the lattice, with randomizable pin radius.
Geometry build_lattice(const FuzzConfig& cfg) {
  Geometry g;
  const int s_pin = g.add_surface(Surface::z_cylinder(0, 0, cfg.pin_radius));

  Cell pin;
  pin.region = {{s_pin, false}};
  pin.fill = 0;
  Cell gap;
  gap.region = {{s_pin, true}};
  gap.fill = 1;
  Universe u_pin;
  u_pin.cells = {g.add_cell(std::move(pin)), g.add_cell(std::move(gap))};
  const int uid = g.add_universe(std::move(u_pin));

  Lattice lat;
  lat.nx = cfg.nx;
  lat.ny = cfg.ny;
  lat.pitch = cfg.pitch;
  lat.x0 = -0.5 * cfg.nx * cfg.pitch;
  lat.y0 = -0.5 * cfg.ny * cfg.pitch;
  lat.universe.assign(static_cast<std::size_t>(cfg.nx) *
                          static_cast<std::size_t>(cfg.ny),
                      uid);
  lat.outer = uid;
  const int lid = g.add_lattice(std::move(lat));

  const double wx = 0.5 * cfg.nx * cfg.pitch;
  const double wy = 0.5 * cfg.ny * cfg.pitch;
  const int sx0 = g.add_surface(Surface::x_plane(-wx));
  const int sx1 = g.add_surface(Surface::x_plane(wx));
  const int sy0 = g.add_surface(Surface::y_plane(-wy));
  const int sy1 = g.add_surface(Surface::y_plane(wy));
  const int sz0 = g.add_surface(Surface::z_plane(-10));
  const int sz1 = g.add_surface(Surface::z_plane(10));
  const auto bc = cfg.reflective ? BoundaryCondition::reflective
                                 : BoundaryCondition::vacuum;
  for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) g.surface(s).set_bc(bc);

  Cell root_cell;
  root_cell.region = {{sx0, true}, {sx1, false}, {sy0, true},
                      {sy1, false}, {sz0, true}, {sz1, false}};
  root_cell.fill_type = FillType::lattice;
  root_cell.fill = lid;
  Universe root;
  root.cells = {g.add_cell(std::move(root_cell))};
  g.set_root(g.add_universe(std::move(root)));
  return g;
}

FuzzConfig config_from_seed(std::uint64_t seed, bool reflective) {
  vmc::rng::Stream s(seed * 977 + 3);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.nx = 1 + static_cast<int>(s.next() * 6);
  cfg.ny = 1 + static_cast<int>(s.next() * 6);
  cfg.pitch = 0.5 + 2.0 * s.next();
  cfg.pin_radius = cfg.pitch * (0.1 + 0.35 * s.next());  // always fits
  cfg.reflective = reflective;
  return cfg;
}

class GeometryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometryFuzz, EveryInteriorPointLocates) {
  const FuzzConfig cfg = config_from_seed(GetParam(), false);
  const Geometry g = build_lattice(cfg);
  vmc::rng::Stream s(cfg.seed);
  const double wx = 0.5 * cfg.nx * cfg.pitch;
  const double wy = 0.5 * cfg.ny * cfg.pitch;
  for (int i = 0; i < 3000; ++i) {
    const Position p{wx * (2.0 * s.next() - 1.0) * 0.9999,
                     wy * (2.0 * s.next() - 1.0) * 0.9999,
                     10.0 * (2.0 * s.next() - 1.0) * 0.9999};
    EXPECT_GE(g.find_material(p), 0) << p.x << " " << p.y << " " << p.z;
  }
}

TEST_P(GeometryFuzz, VacuumRaysTerminateWithFiniteSegments) {
  const FuzzConfig cfg = config_from_seed(GetParam(), false);
  const Geometry g = build_lattice(cfg);
  vmc::rng::Stream s(cfg.seed ^ 0xF00D);
  const double wx = 0.5 * cfg.nx * cfg.pitch;
  const double wy = 0.5 * cfg.ny * cfg.pitch;
  for (int ray = 0; ray < 150; ++ray) {
    Geometry::State st;
    const Position p{wx * (2.0 * s.next() - 1.0) * 0.99,
                     wy * (2.0 * s.next() - 1.0) * 0.99,
                     9.9 * (2.0 * s.next() - 1.0)};
    const Direction u =
        direction_from_angles(2.0 * s.next() - 1.0, 6.2831853 * s.next());
    ASSERT_TRUE(g.locate(p, u, st));
    bool leaked = false;
    for (int step = 0; step < 5000; ++step) {
      const auto b = g.distance_to_boundary(st);
      ASSERT_GT(b.distance, 0.0);
      ASSERT_NE(b.distance, kInfDistance);
      if (g.cross(st, b) == Geometry::CrossResult::leaked) {
        leaked = true;
        break;
      }
    }
    EXPECT_TRUE(leaked) << "ray never left a vacuum-bounded box";
  }
}

TEST_P(GeometryFuzz, ReflectiveBoxNeverLeaksAndStaysInside) {
  const FuzzConfig cfg = config_from_seed(GetParam(), true);
  const Geometry g = build_lattice(cfg);
  vmc::rng::Stream s(cfg.seed ^ 0xBEEF);
  const double wx = 0.5 * cfg.nx * cfg.pitch;
  const double wy = 0.5 * cfg.ny * cfg.pitch;
  Geometry::State st;
  const Position p{wx * 0.4, -wy * 0.3, 1.0};
  ASSERT_TRUE(g.locate(
      p, direction_from_angles(2.0 * s.next() - 1.0, 6.2831853 * s.next()),
      st));
  for (int step = 0; step < 3000; ++step) {
    const auto b = g.distance_to_boundary(st);
    ASSERT_NE(b.distance, kInfDistance);
    ASSERT_NE(g.cross(st, b), Geometry::CrossResult::leaked) << "step " << step;
    const Position q = st.position();
    EXPECT_LE(std::abs(q.x), wx * (1.0 + 1e-9));
    EXPECT_LE(std::abs(q.y), wy * (1.0 + 1e-9));
    EXPECT_LE(std::abs(q.z), 10.0 * (1.0 + 1e-9));
  }
}

TEST_P(GeometryFuzz, MonteCarloPinVolumeMatchesAnalytic) {
  const FuzzConfig cfg = config_from_seed(GetParam(), false);
  const Geometry g = build_lattice(cfg);
  vmc::rng::Stream s(cfg.seed ^ 0xCAFE);
  const double wx = 0.5 * cfg.nx * cfg.pitch;
  const double wy = 0.5 * cfg.ny * cfg.pitch;
  int pin = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const Position p{wx * (2.0 * s.next() - 1.0), wy * (2.0 * s.next() - 1.0),
                     10.0 * (2.0 * s.next() - 1.0)};
    if (g.find_material(p) == 0) ++pin;
  }
  const double frac_analytic = 3.14159265358979 * cfg.pin_radius *
                               cfg.pin_radius / (cfg.pitch * cfg.pitch);
  EXPECT_NEAR(pin / static_cast<double>(n), frac_analytic,
              4.0 * std::sqrt(frac_analytic / n) + 0.003);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
