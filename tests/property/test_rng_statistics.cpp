// Statistical property battery for the RNG substrate: chi-square uniformity
// per stream, pairwise serial independence, cross-stream independence, and
// the skip-ahead/decomposition invariance the transport relies on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rng/streamset.hpp"

namespace {

using namespace vmc::rng;

/// Chi-square statistic for `bins` equal-width bins over [0,1).
template <class Next>
double chi_square(int n, int bins, Next&& next) {
  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  for (int i = 0; i < n; ++i) {
    const double x = next();
    const int b = std::min(bins - 1, static_cast<int>(x * bins));
    counts[static_cast<std::size_t>(b)]++;
  }
  const double expect = static_cast<double>(n) / bins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expect;
    chi2 += d * d / expect;
  }
  return chi2;
}

class StreamSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamSeedTest, ChiSquareUniformity) {
  Stream s = Stream::for_particle(GetParam(), 12345);
  // 64 bins, 64000 samples: chi2 ~ chi2(63); reject above the ~99.99th
  // percentile (~115) — a real defect lands far beyond.
  const double chi2 = chi_square(64000, 64, [&] { return s.next(); });
  EXPECT_LT(chi2, 115.0);
  EXPECT_GT(chi2, 25.0);  // suspiciously *too* uniform is also a bug
}

TEST_P(StreamSeedTest, PairsFillTheUnitSquare) {
  // 2D serial test: consecutive pairs binned on an 8x8 grid.
  Stream s = Stream::for_particle(GetParam(), 777);
  std::array<int, 64> counts{};
  const int n = 64000;
  for (int i = 0; i < n; ++i) {
    const int bx = std::min(7, static_cast<int>(s.next() * 8));
    const int by = std::min(7, static_cast<int>(s.next() * 8));
    counts[static_cast<std::size_t>(by * 8 + bx)]++;
  }
  const double expect = n / 64.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expect) * (c - expect) / expect;
  }
  EXPECT_LT(chi2, 115.0);  // chi2(63) upper tail
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSeedTest,
                         ::testing::Values(1, 42, 31337, 0xDEADBEEF,
                                           (1ULL << 62) + 1));

TEST(RngProperty, CrossStreamCorrelationIsNegligible) {
  // Particle streams i and j must be uncorrelated for all tested pairs.
  const std::uint64_t master = 97;
  const int n = 20000;
  for (const auto& [i, j] : {std::pair{0, 1}, std::pair{1, 2},
                            std::pair{0, 1000}, std::pair{7, 7000000}}) {
    Stream a = Stream::for_particle(master, static_cast<std::uint64_t>(i));
    Stream b = Stream::for_particle(master, static_cast<std::uint64_t>(j));
    double cov = 0.0;
    for (int k = 0; k < n; ++k) {
      cov += (a.next() - 0.5) * (b.next() - 0.5);
    }
    // sd of the estimator ~ 1/(12 sqrt(n)); allow 5 sigma.
    EXPECT_NEAR(cov / n, 0.0, 5.0 / (12.0 * std::sqrt(n)))
        << "streams " << i << "," << j;
  }
}

TEST(RngProperty, DecompositionInvariance) {
  // The sum of draws over particles is identical no matter how histories
  // are partitioned — the property that makes thread/rank counts irrelevant.
  const std::uint64_t master = 5;
  const int particles = 64;
  const int draws = 100;
  double serial_sum = 0.0;
  for (int p = 0; p < particles; ++p) {
    Stream s = Stream::for_particle(master, static_cast<std::uint64_t>(p));
    for (int d = 0; d < draws; ++d) serial_sum += s.next();
  }
  // "Parallel": interleave particles in chunks, as a scheduler would.
  double chunked_sum = 0.0;
  for (int chunk = 0; chunk < 8; ++chunk) {
    for (int p = chunk; p < particles; p += 8) {
      Stream s = Stream::for_particle(master, static_cast<std::uint64_t>(p));
      for (int d = 0; d < draws; ++d) chunked_sum += s.next();
    }
  }
  EXPECT_NEAR(serial_sum, chunked_sum, 1e-9);
}

TEST(RngProperty, StreamSetFillsAreUniformPerStream) {
  StreamSet set(8, 1234);
  for (int k = 0; k < 8; ++k) {
    std::vector<float> v(32768);
    set.fill_uniform(k, v);
    std::size_t i = 0;
    const double chi2 =
        chi_square(static_cast<int>(v.size()), 32, [&] { return v[i++]; });
    EXPECT_LT(chi2, 75.0) << "stream " << k;  // chi2(31) far tail
  }
}

TEST(RngProperty, SkipAheadComposesOverRandomSplits) {
  vmc::rng::Stream picker(9);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t total =
        static_cast<std::uint64_t>(picker.next() * 1e12) + 1;
    const std::uint64_t first =
        static_cast<std::uint64_t>(picker.next() * static_cast<double>(total));
    const std::uint64_t seed = 1 + trial;
    EXPECT_EQ(lcg_skip_ahead(seed, total),
              lcg_skip_ahead(lcg_skip_ahead(seed, first), total - first))
        << "total=" << total << " first=" << first;
  }
}

}  // namespace
