// Multi-seed fuzz of the headline equivalence property: for EVERY seed, the
// scalar event-based tracker reproduces the history-based tracker's particle
// fates bit-for-bit, and physics settings (URR, thermal, free-gas) don't
// break the equivalence — only the SIMD arithmetic may perturb it.
#include <gtest/gtest.h>

#include <memory>

#include "core/event.hpp"
#include "core/history.hpp"
#include "hm/hm_model.hpp"

namespace {

using namespace vmc::core;
using vmc::particle::FissionSite;
using vmc::particle::Particle;

struct FuzzCase {
  std::uint64_t seed;
  bool full_physics;
};

class EquivalenceFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.1;
    mo.full_core = false;
    model_ = new vmc::hm::Model(vmc::hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  std::vector<Particle> make_source(int n, std::uint64_t seed) const {
    std::vector<Particle> ps;
    vmc::rng::Stream s(seed ^ 0x5EED);
    int made = 0;
    while (made < n) {
      const vmc::geom::Position r{10.0 * (2.0 * s.next() - 1.0),
                                  10.0 * (2.0 * s.next() - 1.0),
                                  45.0 * (2.0 * s.next() - 1.0)};
      if (model_->geometry.find_material(r) != model_->fuel_material) continue;
      ps.push_back(Particle::born(seed, static_cast<std::uint64_t>(made), r,
                                  vmc::rng::sample_watt(s)));
      ++made;
    }
    return ps;
  }

  static vmc::hm::Model* model_;
};

vmc::hm::Model* EquivalenceFuzz::model_ = nullptr;

TEST_P(EquivalenceFuzz, ScalarEventEqualsHistoryBitwise) {
  const FuzzCase c = GetParam();
  const auto physics = c.full_physics
                           ? vmc::physics::PhysicsSettings::full()
                           : vmc::physics::PhysicsSettings::vector_friendly();
  vmc::physics::Collision coll(model_->library, physics);

  const int n = 150;
  auto hist = make_source(n, c.seed);
  auto evt = hist;

  HistoryTracker ht(model_->geometry, model_->library, coll);
  TallyScores h_tally;
  EventCounts h_counts;
  std::vector<FissionSite> h_bank;
  for (auto& p : hist) ht.track(p, h_tally, h_counts, h_bank);

  EventOptions eo;
  eo.simd_lookup = false;
  eo.simd_distance = false;
  EventTracker et(model_->geometry, model_->library, coll, eo);
  TallyScores e_tally;
  EventCounts e_counts;
  std::vector<FissionSite> e_bank;
  et.run(evt, e_tally, e_counts, e_bank);

  for (int i = 0; i < n; ++i) {
    const auto& a = hist[static_cast<std::size_t>(i)];
    const auto& b = evt[static_cast<std::size_t>(i)];
    ASSERT_EQ(a.n_collisions, b.n_collisions)
        << "seed=" << c.seed << " particle=" << i;
    ASSERT_EQ(a.n_crossings, b.n_crossings);
    ASSERT_EQ(a.energy, b.energy);
    ASSERT_EQ(a.r.x, b.r.x);
    ASSERT_EQ(a.stream.state(), b.stream.state());
  }
  EXPECT_EQ(h_counts.collisions, e_counts.collisions);
  EXPECT_EQ(h_bank.size(), e_bank.size());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EquivalenceFuzz,
    ::testing::Values(FuzzCase{11, false}, FuzzCase{22, false},
                      FuzzCase{33, false}, FuzzCase{44, true},
                      FuzzCase{55, true}, FuzzCase{66, true},
                      FuzzCase{0xABCDEF, true}),
    [](const ::testing::TestParamInfo<FuzzCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) +
             (tpi.param.full_physics ? "_full" : "_vecfriendly");
    });

}  // namespace
