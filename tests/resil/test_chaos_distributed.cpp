// Chaos: rank deaths against the distributed eigenvalue driver. The
// contract under attack — survivors adopt the dead rank's tally blocks
// whole and replay them from the banked source, so k_eff and every
// per-generation k are BIT-identical to the fault-free run.
#include <gtest/gtest.h>

#include <memory>

#include "comm/comm.hpp"
#include "exec/distributed.hpp"
#include "exec/load_balance.hpp"
#include "hm/hm_model.hpp"
#include "resil/fault.hpp"

namespace {

using namespace vmc;
namespace resil = vmc::resil;

class ChaosDistributedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hm::ModelOptions mo;
    mo.fuel = hm::FuelSize::small;
    mo.grid_scale = 0.1;
    mo.full_core = false;
    model_ = new hm::Model(hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  exec::DistributedSettings base() const {
    exec::DistributedSettings s;
    s.n_total = 600;
    s.n_inactive = 1;
    s.n_active = 3;
    s.seed = 42;
    s.source_lo = model_->source_lo;
    s.source_hi = model_->source_hi;
    return s;
  }

  exec::DistributedResult fault_free(int ranks) const {
    comm::World world(ranks);
    return exec::run_distributed(world, model_->geometry, model_->library,
                                 base(), exec::uniform_counts(600, ranks));
  }

  static hm::Model* model_;
};

hm::Model* ChaosDistributedTest::model_ = nullptr;

TEST_F(ChaosDistributedTest, KilledRankIsBitIdenticalToFaultFreeRun) {
  const auto ref = fault_free(3);
  ASSERT_TRUE(ref.dead_ranks.empty());
  ASSERT_EQ(ref.blocks_replayed, 0u);

  // Rank 1 dies at the top of generation 2 (hit index == generation for the
  // comm.rank_death point, keyed by rank).
  resil::FaultPlan plan;
  plan.fail_at("comm.rank_death", {2}, /*key=*/1);
  resil::PlanGuard guard(plan);

  comm::World world(3);
  const auto got =
      exec::run_distributed(world, model_->geometry, model_->library, base(),
                            exec::uniform_counts(600, 3));

  ASSERT_EQ(got.dead_ranks, std::vector<int>{1});
  // Rank 1's block is adopted for generations 2 and 3.
  EXPECT_EQ(got.blocks_replayed, 2u);
  ASSERT_EQ(got.k_per_generation.size(), ref.k_per_generation.size());
  for (std::size_t g = 0; g < ref.k_per_generation.size(); ++g) {
    EXPECT_DOUBLE_EQ(got.k_per_generation[g], ref.k_per_generation[g])
        << "generation " << g;
  }
  EXPECT_DOUBLE_EQ(got.k_eff, ref.k_eff);
  EXPECT_DOUBLE_EQ(got.k_std, ref.k_std);
  EXPECT_DOUBLE_EQ(got.leakage_fraction, ref.leakage_fraction);
}

TEST_F(ChaosDistributedTest, CascadingDeathsStayBitIdentical) {
  const auto ref = fault_free(4);

  // Rank 2 dies at generation 1, rank 3 at generation 3: the survivors'
  // adoption bookkeeping has to stay consistent across successive failures.
  resil::FaultPlan plan;
  plan.fail_at("comm.rank_death", {1}, /*key=*/2);
  plan.fail_at("comm.rank_death", {3}, /*key=*/3);
  resil::PlanGuard guard(plan);

  comm::World world(4);
  const auto got =
      exec::run_distributed(world, model_->geometry, model_->library, base(),
                            exec::uniform_counts(600, 4));

  ASSERT_EQ(got.dead_ranks, (std::vector<int>{2, 3}));
  // Block 2 replays in gens 1..3 (3 block-generations), block 3 in gen 3.
  EXPECT_EQ(got.blocks_replayed, 4u);
  ASSERT_EQ(got.k_per_generation.size(), ref.k_per_generation.size());
  for (std::size_t g = 0; g < ref.k_per_generation.size(); ++g) {
    EXPECT_DOUBLE_EQ(got.k_per_generation[g], ref.k_per_generation[g])
        << "generation " << g;
  }
  EXPECT_DOUBLE_EQ(got.k_eff, ref.k_eff);
}

TEST_F(ChaosDistributedTest, LoneSurvivorFinishesTheCampaign) {
  const auto ref = fault_free(3);

  // Both non-root ranks die at generation 1: rank 0 adopts everything.
  resil::FaultPlan plan;
  plan.fail_at("comm.rank_death", {1}, /*key=*/1);
  plan.fail_at("comm.rank_death", {1}, /*key=*/2);
  resil::PlanGuard guard(plan);

  comm::World world(3);
  const auto got =
      exec::run_distributed(world, model_->geometry, model_->library, base(),
                            exec::uniform_counts(600, 3));

  ASSERT_EQ(got.dead_ranks, (std::vector<int>{1, 2}));
  for (std::size_t g = 0; g < ref.k_per_generation.size(); ++g) {
    EXPECT_DOUBLE_EQ(got.k_per_generation[g], ref.k_per_generation[g])
        << "generation " << g;
  }
  EXPECT_DOUBLE_EQ(got.k_eff, ref.k_eff);
}

TEST_F(ChaosDistributedTest, RootDeathIsUnrecoverable) {
  resil::FaultPlan plan;
  plan.fail_at("comm.rank_death", {1}, /*key=*/0);
  resil::PlanGuard guard(plan);

  comm::World world(2);
  EXPECT_THROW(exec::run_distributed(world, model_->geometry, model_->library,
                                     base(), exec::uniform_counts(600, 2)),
               comm::Error);
}

TEST_F(ChaosDistributedTest, InjectedSendFaultSurfacesAsCommError) {
  // A poisoned link is NOT recoverable silently — it must surface as a
  // diagnosable comm::Error, not a hang or wrong answer.
  resil::FaultPlan plan;
  plan.always("comm.send", /*key=*/0);  // every message into rank 0 fails
  resil::PlanGuard guard(plan);

  exec::DistributedSettings s = base();
  s.recv_timeout = std::chrono::milliseconds(2000);  // fail fast, not in 60 s
  comm::World world(2);
  EXPECT_THROW(exec::run_distributed(world, model_->geometry, model_->library,
                                     s, exec::uniform_counts(600, 2)),
               comm::Error);
}

}  // namespace
