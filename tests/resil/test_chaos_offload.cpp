// Chaos: injected PCIe/device faults against the offload pipeline. The
// contract under attack — retries are invisible to the physics (bit-level:
// same kernel re-runs), and exhausted retries degrade to the scalar host
// kernel, whose agreement with the SIMD kernel is the documented cross-
// kernel bound (3e-4/element, tests/xsdata/test_lookup.cpp) — so degraded
// checksums are compared at kKernelAgreement, not the same-kernel 1e-9.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/offload.hpp"
#include "hm/hm_model.hpp"
#include "resil/fault.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

namespace {

using namespace vmc::exec;
namespace resil = vmc::resil;

// Relative checksum tolerance when a stage ran the scalar fallback kernel
// instead of the SIMD one (observed ~1e-8 on this bank; bounded by the
// per-element cross-kernel tolerance).
constexpr double kKernelAgreement = 1e-6;

class ChaosOffloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.1;
    int fuel = -1;
    lib_ = new vmc::xs::Library(vmc::hm::build_library(mo, &fuel));
    fuel_ = fuel;
    runtime_ = new OffloadRuntime(*lib_, CostModel(DeviceSpec::jlse_host()),
                                  CostModel(DeviceSpec::mic_7120a()));
    // Injected faults should not slow the suite down with real backoff.
    runtime_->set_retry_policy({/*max_retries=*/3, /*base_backoff_s=*/1e-9,
                                /*backoff_multiplier=*/2.0});
  }
  static void TearDownTestSuite() {
    delete runtime_;
    delete lib_;
    runtime_ = nullptr;
    lib_ = nullptr;
  }

  // The fault-free reference: one flat banked sweep.
  static vmc::simd::aligned_vector<double> energies(std::size_t n) {
    vmc::rng::Stream rs(5);
    vmc::simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = vmc::xs::kEnergyMin *
          std::pow(vmc::xs::kEnergyMax / vmc::xs::kEnergyMin, rs.next());
    }
    return es;
  }
  static double reference_checksum(const vmc::simd::aligned_vector<double>& es) {
    vmc::simd::aligned_vector<double> flat(es.size());
    vmc::xs::macro_total_banked(*lib_, fuel_, es, flat);
    double ref = 0.0;
    for (const double t : flat) ref += t;
    return ref;
  }

  static vmc::xs::Library* lib_;
  static int fuel_;
  static OffloadRuntime* runtime_;
};

vmc::xs::Library* ChaosOffloadTest::lib_ = nullptr;
int ChaosOffloadTest::fuel_ = -1;
OffloadRuntime* ChaosOffloadTest::runtime_ = nullptr;

TEST_F(ChaosOffloadTest, TransientTransferFaultIsRetriedNotDegraded) {
  const auto es = energies(20000);
  const double ref = reference_checksum(es);

  // Stage 1's first transfer attempt fails; the retry succeeds.
  resil::FaultPlan plan;
  plan.fail_at("offload.transfer", {0}, /*key=*/1);
  resil::PlanGuard guard(plan);

  const auto run = runtime_->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.n_stages, 4);
  EXPECT_GE(run.retries, 1);
  EXPECT_EQ(run.degraded_stages, 0);
  EXPECT_FALSE(run.degraded());
  EXPECT_NEAR(run.checksum, ref, 1e-9 * std::abs(ref));
  EXPECT_EQ(resil::fires("offload.transfer"), 1u);
}

TEST_F(ChaosOffloadTest, DeadTransferLinkDegradesStageChecksumIntact) {
  const auto es = energies(20000);
  const double ref = reference_checksum(es);

  // Stage 2's link is down for good: every attempt fails, retries exhaust,
  // and the stage must run on the host — same physics, cross-kernel bound.
  resil::FaultPlan plan;
  plan.always("offload.transfer", /*key=*/2);
  resil::PlanGuard guard(plan);

  const auto run = runtime_->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.n_stages, 4);
  EXPECT_EQ(run.degraded_stages, 1);
  EXPECT_TRUE(run.degraded());
  EXPECT_NEAR(run.checksum, ref, kKernelAgreement * std::abs(ref));
  // 1 initial attempt + max_retries, all fired.
  EXPECT_EQ(resil::fires("offload.transfer"),
            1u + static_cast<unsigned>(runtime_->retry_policy().max_retries));
}

TEST_F(ChaosOffloadTest, DeadDeviceSweepDegradesStageChecksumIntact) {
  const auto es = energies(20000);
  const double ref = reference_checksum(es);

  resil::FaultPlan plan;
  plan.always("offload.compute", /*key=*/0);
  resil::PlanGuard guard(plan);

  const auto run = runtime_->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.degraded_stages, 1);
  EXPECT_NEAR(run.checksum, ref, kKernelAgreement * std::abs(ref));
}

TEST_F(ChaosOffloadTest, EveryStageDegradedStillMatches) {
  // Worst case: the device is simply gone. All stages fall back to the
  // host; the run completes with the right physics anyway.
  const auto es = energies(10000);
  const double ref = reference_checksum(es);

  resil::FaultPlan plan;
  plan.always("offload.transfer");
  resil::PlanGuard guard(plan);

  const auto run = runtime_->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.degraded_stages, 4);
  EXPECT_NEAR(run.checksum, ref, kKernelAgreement * std::abs(ref));
}

TEST_F(ChaosOffloadTest, IterationRetriesTransientComputeFault) {
  resil::FaultPlan plan;
  plan.fail_at("offload.compute", {0}, /*key=*/0);  // banked lookup sweep
  resil::PlanGuard guard(plan);

  const auto rep = runtime_->run_iteration(fuel_, 5000, 7);
  EXPECT_EQ(rep.retries, 1);
  EXPECT_FALSE(rep.degraded);
}

TEST_F(ChaosOffloadTest, IterationDegradesOnPersistentComputeFault) {
  resil::FaultPlan plan;
  plan.always("offload.compute");
  resil::PlanGuard guard(plan);

  const auto rep = runtime_->run_iteration(fuel_, 5000, 7);
  EXPECT_TRUE(rep.degraded);
  // The report is still complete: the fallback sweeps really ran.
  EXPECT_GT(rep.wall_banked_lookup_s, 0.0);
  EXPECT_GT(rep.wall_banked_total_s, 0.0);
}

TEST_F(ChaosOffloadTest, UnarmedRunReportsCleanResilienceFields) {
  const auto es = energies(5000);
  const auto run = runtime_->run_pipelined(fuel_, es, 2);
  EXPECT_EQ(run.retries, 0);
  EXPECT_EQ(run.degraded_stages, 0);
  EXPECT_FALSE(run.degraded());
}

}  // namespace
