// Chaos: injected PCIe/device faults against the multi-device offload
// executor. The contract under attack is BIT-IDENTITY: every cascade tier
// (retry on the owning device, reschedule to a healthy peer, host floor)
// runs the SAME banked kernel over the same staged bits, and per-chunk
// results reduce with ordered_sum in global chunk order — so the pipelined
// checksum under ANY armed FaultPlan is EXPECT_EQ-equal (exact doubles) to
// the fault-free run. Scenarios per the acceptance bar, each over >= 3
// seeds: (a) transient faults on every device, (b) one device permanently
// dead (trips mid-run, work steals to peers), (c) all devices dead (full
// host degradation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/offload.hpp"
#include "hm/hm_model.hpp"
#include "resil/fault.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

namespace {

using namespace vmc::exec;
namespace resil = vmc::resil;

constexpr std::uint64_t kSeeds[] = {5, 11, 23};

class ChaosOffloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.1;
    int fuel = -1;
    lib_ = new vmc::xs::Library(vmc::hm::build_library(mo, &fuel));
    fuel_ = fuel;

    const CostModel host(DeviceSpec::jlse_host());
    const CostModel mic_a(DeviceSpec::mic_7120a());
    const CostModel mic_b(DeviceSpec::mic_se10p());
    pools_[0] = new OffloadRuntime(*lib_, host, {mic_a});
    pools_[1] = new OffloadRuntime(*lib_, host, {mic_a, mic_b});
    pools_[2] = new OffloadRuntime(*lib_, host, {mic_a, mic_b, mic_a, mic_b});
    for (OffloadRuntime* rt : pools_) {
      // Injected faults should not slow the suite down with real backoff.
      rt->set_retry_policy({/*max_retries=*/3, /*base_backoff_s=*/1e-9,
                            /*backoff_multiplier=*/2.0});
    }
  }
  static void TearDownTestSuite() {
    for (OffloadRuntime*& rt : pools_) {
      delete rt;
      rt = nullptr;
    }
    delete lib_;
    lib_ = nullptr;
  }

  static vmc::simd::aligned_vector<double> energies(std::size_t n,
                                                    std::uint64_t seed) {
    vmc::rng::Stream rs(seed);
    vmc::simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = vmc::xs::kEnergyMin *
          std::pow(vmc::xs::kEnergyMax / vmc::xs::kEnergyMin, rs.next());
    }
    return es;
  }

  // The bit-identity reference: the SAME pipelined run with no plan armed.
  static double fault_free_checksum(const OffloadRuntime& rt,
                                    const vmc::simd::aligned_vector<double>& es,
                                    int n_banks) {
    resil::disarm();  // paranoia: never measure the reference under a plan
    const auto run = rt.run_pipelined(fuel_, es, n_banks);
    EXPECT_EQ(run.degraded_stages, 0);
    EXPECT_EQ(run.retries, 0);
    return run.checksum;
  }

  static vmc::xs::Library* lib_;
  static int fuel_;
  static OffloadRuntime* pools_[3];  // 1, 2, and 4 modeled devices
};

vmc::xs::Library* ChaosOffloadTest::lib_ = nullptr;
int ChaosOffloadTest::fuel_ = -1;
OffloadRuntime* ChaosOffloadTest::pools_[3] = {nullptr, nullptr, nullptr};

// --- sanity: the pipeline itself --------------------------------------------

TEST_F(ChaosOffloadTest, FaultFreePipelineMatchesFlatSweep) {
  // The chunked + ordered_sum checksum agrees with one flat banked sweep to
  // reduction-reassociation tolerance (the chunking changes the summation
  // tree, nothing else).
  const auto es = energies(20000, 5);
  vmc::simd::aligned_vector<double> flat(es.size());
  vmc::xs::macro_total_banked(*lib_, fuel_, es, flat);
  double ref = 0.0;
  for (const double t : flat) ref += t;
  for (OffloadRuntime* rt : pools_) {
    const auto run = rt->run_pipelined(fuel_, es, 8);
    EXPECT_EQ(run.n_stages, 8);
    EXPECT_NEAR(run.checksum, ref, 1e-9 * std::abs(ref));
  }
}

TEST_F(ChaosOffloadTest, FaultFreeChecksumIsDeterministicAcrossPoolSizes) {
  // ordered_sum in global chunk order makes the checksum independent of how
  // many devices swept the chunks — the value depends only on (bits, chunk
  // split), so 1-, 2- and 4-device pools agree bitwise.
  const auto es = energies(12000, 11);
  const double one = pools_[0]->run_pipelined(fuel_, es, 8).checksum;
  EXPECT_EQ(one, pools_[1]->run_pipelined(fuel_, es, 8).checksum);
  EXPECT_EQ(one, pools_[2]->run_pipelined(fuel_, es, 8).checksum);
}

// --- scenario (a): transient faults on every device -------------------------

TEST_F(ChaosOffloadTest, TransientFaultsOnEveryDeviceAreBitInvisible) {
  for (OffloadRuntime* rt : pools_) {
    for (const std::uint64_t seed : kSeeds) {
      const auto es = energies(12000, seed);
      const double ref = fault_free_checksum(*rt, es, 8);

      // Wildcard-key probability rules hit every device x stream x chunk
      // attempt independently; p = 0.4 makes retries near-certain and lets
      // some chunks exhaust into the reschedule/degrade tiers too.
      resil::FaultPlan plan;
      plan.with_probability("offload.transfer", 0.4, seed);
      plan.with_probability("offload.compute", 0.4, seed + 1);
      resil::PlanGuard guard(plan);

      const auto run = rt->run_pipelined(fuel_, es, 8);
      EXPECT_EQ(run.n_stages, 8);
      EXPECT_EQ(run.checksum, ref)
          << "devices=" << rt->device_count() << " seed=" << seed;
      EXPECT_GT(resil::hits("offload.transfer"), 0u);
      EXPECT_EQ(run.devices.size(), rt->device_count());
    }
  }
}

TEST_F(ChaosOffloadTest, SingleTransientTransferFaultIsRetriedNotDegraded) {
  // Pinpoint injection: chunk 1's first transfer attempt on device 0 fails,
  // the retry succeeds; nothing reschedules or degrades.
  const auto es = energies(12000, 5);
  const double ref = fault_free_checksum(*pools_[0], es, 4);

  resil::FaultPlan plan;
  plan.fail_at("offload.transfer", {0}, resil::device_key(0, 0, 1));
  resil::PlanGuard guard(plan);

  const auto run = pools_[0]->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.n_stages, 4);
  EXPECT_GE(run.retries, 1);
  EXPECT_EQ(run.rescheduled_stages, 0);
  EXPECT_EQ(run.degraded_stages, 0);
  EXPECT_FALSE(run.degraded());
  EXPECT_EQ(run.checksum, ref);
  EXPECT_EQ(resil::fires("offload.transfer"), 1u);
}

// --- scenario (b): one device permanently dead ------------------------------

TEST_F(ChaosOffloadTest, DeadDeviceTripsAndWorkStealsToPeersBitIdentical) {
  for (OffloadRuntime* rt : {pools_[1], pools_[2]}) {
    for (const std::uint64_t seed : kSeeds) {
      const auto es = energies(12000, seed);
      // 16 chunks: even a quarter-share device owns >= trip_after of them,
      // so the dead device is guaranteed to trip BEFORE phase 2 and drop
      // out of the accepting set (nothing reaches the host floor).
      const double ref = fault_free_checksum(*rt, es, 16);

      // Device 1's whole fault domain (every stream, every chunk) is down
      // for the entire run: the masked rule matches any key whose device
      // field is 1.
      resil::FaultPlan plan;
      plan.always("offload.transfer", resil::device_key(1, 0, 0),
                  resil::kDeviceKeyMask);
      resil::PlanGuard guard(plan);

      const auto run = rt->run_pipelined(fuel_, es, 16);
      EXPECT_EQ(run.checksum, ref)
          << "devices=" << rt->device_count() << " seed=" << seed;

      // The dead device completed nothing, tripped its breaker mid-run, and
      // its share moved to healthy peers — not to the host floor.
      const auto& dead = run.devices.at(1);
      EXPECT_EQ(dead.chunks_ok, 0);
      EXPECT_GT(dead.chunks_failed, 0);
      EXPECT_GE(dead.trips, 1);
      EXPECT_NE(dead.final_state, HealthState::healthy);
      EXPECT_GT(run.rescheduled_stages, 0);
      EXPECT_EQ(run.degraded_stages, 0);
      int steals = 0;
      for (const auto& d : run.devices) steals += d.steals_in;
      EXPECT_EQ(steals, run.rescheduled_stages);
    }
  }
}

TEST_F(ChaosOffloadTest, DeadChunkOnSoleDeviceFallsToHostFloorBitIdentical) {
  // Single device, one chunk's link permanently down: retries exhaust in
  // phase 1, the phase-2 reschedule lands on the same sole device (still
  // healthy — one failure < trip_after) and fails again, the host floor
  // sweeps it. 2 x (1 initial + max_retries) fires.
  const auto es = energies(12000, 5);
  const double ref = fault_free_checksum(*pools_[0], es, 4);

  resil::FaultPlan plan;
  plan.always("offload.transfer", resil::device_key(0, 0, 2));
  resil::PlanGuard guard(plan);

  const auto run = pools_[0]->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.degraded_stages, 1);
  EXPECT_TRUE(run.degraded());
  EXPECT_EQ(run.checksum, ref);
  EXPECT_EQ(
      resil::fires("offload.transfer"),
      2u * (1u + static_cast<unsigned>(pools_[0]->retry_policy().max_retries)));
}

TEST_F(ChaosOffloadTest, DeadComputeStreamFallsToHostFloorBitIdentical) {
  // Same cascade, but the fault domain is the compute stream: the transfer
  // lands, the sweep never does.
  const auto es = energies(12000, 5);
  const double ref = fault_free_checksum(*pools_[0], es, 4);

  resil::FaultPlan plan;
  plan.always("offload.compute", resil::device_key(0, 1, 0));
  resil::PlanGuard guard(plan);

  const auto run = pools_[0]->run_pipelined(fuel_, es, 4);
  EXPECT_EQ(run.degraded_stages, 1);
  EXPECT_EQ(run.checksum, ref);
}

// --- scenario (c): all devices dead -----------------------------------------

TEST_F(ChaosOffloadTest, AllDevicesDeadFullyDegradesBitIdentical) {
  for (OffloadRuntime* rt : pools_) {
    for (const std::uint64_t seed : kSeeds) {
      const auto es = energies(12000, seed);
      const double ref = fault_free_checksum(*rt, es, 8);

      // Every transfer attempt on every device fails: breakers trip, the
      // accepting set empties, and the entire run lands on the host floor.
      resil::FaultPlan plan;
      plan.always("offload.transfer");
      resil::PlanGuard guard(plan);

      const auto run = rt->run_pipelined(fuel_, es, 8);
      EXPECT_EQ(run.degraded_stages, run.n_stages)
          << "devices=" << rt->device_count() << " seed=" << seed;
      EXPECT_EQ(run.checksum, ref)
          << "devices=" << rt->device_count() << " seed=" << seed;
      for (const auto& d : run.devices) EXPECT_EQ(d.chunks_ok, 0);
    }
  }
}

// --- stream-depth chaos matrix ----------------------------------------------

TEST_F(ChaosOffloadTest, MidFlightStreamFaultsAreBitInvisibleAtAnyDepth) {
  // The acceptance matrix: (1, 2, 4 devices) x (S = 1, 2, 4) x 3 seeds. One
  // device x stream fault domain — device 0's transfer lane for stream
  // (1 % S) — is down for the whole run via the device+stream masked rule,
  // so faults strike chunks mid-flight inside the ring while sibling streams
  // keep moving. Every row must reproduce the fault-free checksum exactly.
  // Local runtimes: stream depth is runtime state and the shared fixtures
  // stay depth-1 for the legacy scenarios.
  const CostModel host(DeviceSpec::jlse_host());
  const CostModel mic_a(DeviceSpec::mic_7120a());
  const CostModel mic_b(DeviceSpec::mic_se10p());
  const std::vector<std::vector<CostModel>> pools = {
      {mic_a}, {mic_a, mic_b}, {mic_a, mic_b, mic_a, mic_b}};
  for (const auto& devices : pools) {
    OffloadRuntime rt(*lib_, host, devices);
    rt.set_retry_policy({3, 1e-9, 2.0});
    for (const std::uint64_t seed : kSeeds) {
      const auto es = energies(12000, seed);
      const double ref = fault_free_checksum(rt, es, 8);
      for (const int streams : {1, 2, 4}) {
        rt.set_stream_depth(streams);
        const std::uint64_t lane =
            resil::transfer_lane(1 % static_cast<std::uint64_t>(streams));
        resil::FaultPlan plan;
        plan.always("offload.transfer", resil::device_key(0, lane, 0),
                    resil::kDeviceStreamKeyMask);
        resil::PlanGuard guard(plan);
        const auto run = rt.run_pipelined(fuel_, es, 8);
        EXPECT_EQ(run.stream_depth, streams);
        EXPECT_EQ(run.checksum, ref)
            << "devices=" << rt.device_count() << " S=" << streams
            << " seed=" << seed;
        EXPECT_GT(resil::fires("offload.transfer"), 0u);
      }
      rt.set_stream_depth(1);
    }
  }
}

TEST_F(ChaosOffloadTest, DeviceMaskedKillIsDepthInvariant) {
  // A whole-device kill (every lane, so it fires identically at any S) must
  // yield the same bits at S = 1, 2, 4: the cascade's reroute decisions ride
  // chunk outcomes, which the stream schedule never changes.
  const CostModel host(DeviceSpec::jlse_host());
  OffloadRuntime rt(*lib_, host,
                    {CostModel(DeviceSpec::mic_7120a()),
                     CostModel(DeviceSpec::mic_se10p())});
  rt.set_retry_policy({3, 1e-9, 2.0});
  for (const std::uint64_t seed : kSeeds) {
    const auto es = energies(12000, seed);
    const double ref = fault_free_checksum(rt, es, 16);
    for (const int streams : {1, 2, 4}) {
      rt.set_stream_depth(streams);
      resil::FaultPlan plan;
      plan.always("offload.transfer", resil::device_key(1, 0, 0),
                  resil::kDeviceKeyMask);
      resil::PlanGuard guard(plan);
      const auto run = rt.run_pipelined(fuel_, es, 16);
      EXPECT_EQ(run.checksum, ref) << "S=" << streams << " seed=" << seed;
      EXPECT_EQ(run.devices.at(1).chunks_ok, 0) << "S=" << streams;
      EXPECT_GT(run.rescheduled_stages, 0) << "S=" << streams;
      EXPECT_EQ(run.degraded_stages, 0) << "S=" << streams;
    }
    rt.set_stream_depth(1);
  }
}

// --- persistent scheduler: all-dead short-circuit and recovery ---------------

TEST_F(ChaosOffloadTest, PersistentAllDeadShortCircuitsThenRecovers) {
  // Long-lived scheduler, every breaker tripped: subsequent runs must reach
  // the host floor WITHOUT touching a single fault point (no wasted
  // transfer attempts into dead devices), still bit-identical — and the
  // denial-per-run cooldown keeps advancing so the pool eventually probes
  // its way back to healthy.
  const CostModel host(DeviceSpec::jlse_host());
  const CostModel mic(DeviceSpec::mic_7120a());
  OffloadRuntime rt(*lib_, host, {mic, mic},
                    BreakerPolicy{/*suspect_after=*/1, /*trip_after=*/3,
                                  /*cooldown_denials=*/3});
  rt.set_retry_policy({3, 1e-9, 2.0});
  rt.set_persistent_scheduler(true);
  ASSERT_TRUE(rt.persistent_scheduler());

  const auto es = energies(12000, 5);
  resil::disarm();
  const double ref = rt.run_pipelined(fuel_, es, 8).checksum;

  {
    resil::FaultPlan plan;
    plan.always("offload.transfer");
    resil::PlanGuard guard(plan);

    // Run 1: every transfer fails, both breakers trip mid-run, everything
    // lands on the host floor. Two identical devices own 4 chunks each:
    // 3 failures trip the breaker, the 4th chunk's denial starts the
    // cooldown at 1.
    const auto dead = rt.run_pipelined(fuel_, es, 8);
    EXPECT_EQ(dead.degraded_stages, dead.n_stages);
    EXPECT_EQ(dead.checksum, ref);
    for (const auto& d : dead.devices) {
      EXPECT_EQ(d.final_state, HealthState::tripped);
      EXPECT_EQ(d.chunks_ok, 0);
    }
    const std::uint64_t hits_after_dead = resil::hits("offload.transfer");
    EXPECT_GT(hits_after_dead, 0u);

    // Runs 2 and 3: all-tripped at entry -> short-circuit. The armed plan
    // proves no fault point is touched: hits stay frozen. Checksums stay
    // bit-identical, nothing is in flight, and each run charges one denial
    // (cooldown 1 -> 2 -> 3 = half_open armed for the next run).
    for (int sc = 0; sc < 2; ++sc) {
      const auto run = rt.run_pipelined(fuel_, es, 8);
      EXPECT_EQ(run.checksum, ref) << "short-circuit run " << sc;
      EXPECT_EQ(run.degraded_stages, run.n_stages);
      EXPECT_EQ(run.inflight_high_water, 0);
      EXPECT_EQ(resil::hits("offload.transfer"), hits_after_dead)
          << "short-circuit run " << sc << " touched a fault point";
      for (const auto& d : run.devices) {
        EXPECT_EQ(d.chunks_ok, 0);
        EXPECT_EQ(d.retries, 0);
      }
    }
  }

  // Fault cleared: the breakers are half_open, so the pipeline runs normally
  // again; each device's probe succeeds and closes its breaker. Full
  // recovery, same bits.
  const auto recovered = rt.run_pipelined(fuel_, es, 8);
  EXPECT_EQ(recovered.checksum, ref);
  EXPECT_EQ(recovered.degraded_stages, 0);
  int ok = 0;
  for (const auto& d : recovered.devices) {
    EXPECT_EQ(d.final_state, HealthState::healthy);
    EXPECT_GE(d.probes, 1);
    ok += d.chunks_ok;
  }
  EXPECT_EQ(ok, recovered.n_stages);

  // Turning the persistent scheduler off drops the carried pool: the next
  // run starts from healthy breakers as the independent-runs contract
  // requires.
  rt.set_persistent_scheduler(false);
  const auto fresh = rt.run_pipelined(fuel_, es, 8);
  EXPECT_EQ(fresh.checksum, ref);
  EXPECT_EQ(fresh.degraded_stages, 0);
  for (const auto& d : fresh.devices) EXPECT_EQ(d.probes, 0);
}

// --- the single-device iteration path ---------------------------------------

TEST_F(ChaosOffloadTest, IterationRetriesTransientComputeFault) {
  resil::FaultPlan plan;
  plan.fail_at("offload.compute", {0}, /*key=*/0);  // banked lookup sweep
  resil::PlanGuard guard(plan);

  const auto rep = pools_[0]->run_iteration(fuel_, 5000, 7);
  EXPECT_EQ(rep.retries, 1);
  EXPECT_FALSE(rep.degraded);
}

TEST_F(ChaosOffloadTest, IterationDegradesOnPersistentComputeFault) {
  resil::FaultPlan plan;
  plan.always("offload.compute");
  resil::PlanGuard guard(plan);

  const auto rep = pools_[0]->run_iteration(fuel_, 5000, 7);
  EXPECT_TRUE(rep.degraded);
  // The report is still complete: the fallback sweeps really ran.
  EXPECT_GT(rep.wall_banked_lookup_s, 0.0);
  EXPECT_GT(rep.wall_banked_total_s, 0.0);
}

TEST_F(ChaosOffloadTest, UnarmedRunReportsCleanResilienceFields) {
  const auto es = energies(5000, 5);
  const auto run = pools_[1]->run_pipelined(fuel_, es, 2);
  EXPECT_EQ(run.retries, 0);
  EXPECT_EQ(run.rescheduled_stages, 0);
  EXPECT_EQ(run.degraded_stages, 0);
  EXPECT_FALSE(run.degraded());
  ASSERT_EQ(run.devices.size(), 2u);
  int ok = 0;
  for (const auto& d : run.devices) {
    EXPECT_EQ(d.final_state, HealthState::healthy);
    EXPECT_EQ(d.chunks_failed, 0);
    EXPECT_EQ(d.trips, 0);
    ok += d.chunks_ok;
  }
  EXPECT_EQ(ok, run.n_stages);
}

}  // namespace
