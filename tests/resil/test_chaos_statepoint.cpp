// Chaos: a crash torn into the checkpoint path. The contract under attack —
// a failed statepoint write NEVER damages the previous checkpoint, the torn
// temp file is detected as garbage, and resuming reproduces the
// uninterrupted campaign's k history exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/eigenvalue.hpp"
#include "core/statepoint.hpp"
#include "hm/hm_model.hpp"
#include "resil/fault.hpp"

namespace {

using namespace vmc::core;
namespace resil = vmc::resil;

class ChaosStatepointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vmc::hm::ModelOptions mo;
    mo.fuel = vmc::hm::FuelSize::small;
    mo.grid_scale = 0.08;
    mo.full_core = false;
    model_ = new vmc::hm::Model(vmc::hm::build_model(mo));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  Settings base() const {
    Settings st;
    st.n_particles = 400;
    st.n_inactive = 1;
    st.n_active = 3;
    st.seed = 42;
    st.source_lo = model_->source_lo;
    st.source_hi = model_->source_hi;
    return st;
  }

  static std::string temp_path(const char* name) {
    return std::string(::testing::TempDir()) + "/" + name;
  }

  static vmc::hm::Model* model_;
};

vmc::hm::Model* ChaosStatepointTest::model_ = nullptr;

TEST_F(ChaosStatepointTest, TornWritePreservesCheckpointAndResumesExactly) {
  // Uninterrupted reference campaign: 4 generations, no checkpointing.
  const RunResult ref =
      Simulation(model_->geometry, model_->library, base()).run();
  ASSERT_EQ(ref.k_collision_history.size(), 4u);

  // Checkpointed campaign: statepoints after generations 2 and 4. The
  // second write (hit index 1) crashes mid-fwrite — header and k history
  // are out, the bank and CRC never make it.
  const std::string path = temp_path("chaos.vmcs");
  Settings st = base();
  st.checkpoint_every = 2;
  st.checkpoint_path = path;
  {
    resil::FaultPlan plan;
    plan.fail_at("statepoint.write", {1});
    resil::PlanGuard guard(plan);
    EXPECT_THROW(Simulation(model_->geometry, model_->library, st).run(),
                 std::runtime_error);
    EXPECT_EQ(resil::fires("statepoint.write"), 1u);
  }

  // The torn temp file is on disk — and is rejected as the garbage it is.
  EXPECT_THROW(read_statepoint(path + ".tmp"), std::runtime_error);

  // The PREVIOUS checkpoint (2 generations completed) survived untouched.
  const StatePoint sp = read_statepoint(path);
  EXPECT_EQ(sp.generations_completed, 2);
  ASSERT_EQ(sp.k_history.size(), 2u);
  EXPECT_DOUBLE_EQ(sp.k_history[0], ref.k_collision_history[0]);
  EXPECT_DOUBLE_EQ(sp.k_history[1], ref.k_collision_history[1]);

  // Resume from it: generations 2..3 re-run, and the assembled history is
  // EXACTLY the uninterrupted campaign's.
  Settings rs = base();
  rs.resume_from = path;
  const RunResult resumed =
      Simulation(model_->geometry, model_->library, rs).run();
  EXPECT_EQ(resumed.first_generation, 2);
  ASSERT_EQ(resumed.k_collision_history.size(),
            ref.k_collision_history.size());
  for (std::size_t g = 0; g < ref.k_collision_history.size(); ++g) {
    EXPECT_DOUBLE_EQ(resumed.k_collision_history[g],
                     ref.k_collision_history[g])
        << "generation " << g;
  }

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(ChaosStatepointTest, ResumeRefusesSeedMismatch) {
  const std::string path = temp_path("seed-mismatch.vmcs");
  Settings st = base();
  st.checkpoint_every = 2;
  st.checkpoint_path = path;
  Simulation(model_->geometry, model_->library, st).run();

  Settings rs = base();
  rs.seed = 43;  // a DIFFERENT campaign
  rs.resume_from = path;
  EXPECT_THROW(Simulation(model_->geometry, model_->library, rs).run(),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(ChaosStatepointTest, CheckpointedRunMatchesUncheckpointedRun) {
  // Checkpointing must be an observer: with no faults armed, a campaign
  // that writes statepoints produces the identical history to one that
  // doesn't.
  const RunResult ref =
      Simulation(model_->geometry, model_->library, base()).run();

  const std::string path = temp_path("observer.vmcs");
  Settings st = base();
  st.checkpoint_every = 1;
  st.checkpoint_path = path;
  const RunResult got =
      Simulation(model_->geometry, model_->library, st).run();

  ASSERT_EQ(got.k_collision_history.size(), ref.k_collision_history.size());
  for (std::size_t g = 0; g < ref.k_collision_history.size(); ++g) {
    EXPECT_DOUBLE_EQ(got.k_collision_history[g], ref.k_collision_history[g]);
  }
  // The final checkpoint reflects the whole campaign.
  EXPECT_EQ(read_statepoint(path).generations_completed, 4);
  std::remove(path.c_str());
}

}  // namespace
