// Fault-injection registry: unarmed fault points cost nothing and never
// fire; armed plans fire deterministically from (seed, point, key, hit).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "resil/fault.hpp"
#include "resil/retry.hpp"

namespace {

using namespace vmc::resil;

TEST(FaultPlan, UnarmedPointsNeverFire) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault_fires("offload.transfer", static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(fires("offload.transfer"), 0u);
}

TEST(FaultPlan, FailAtFiresExactlyOnListedHits) {
  FaultPlan plan;
  plan.fail_at("offload.compute", {0, 2});
  PlanGuard guard(plan);
  EXPECT_TRUE(fault_fires("offload.compute"));   // hit 0
  EXPECT_FALSE(fault_fires("offload.compute"));  // hit 1
  EXPECT_TRUE(fault_fires("offload.compute"));   // hit 2
  EXPECT_FALSE(fault_fires("offload.compute"));  // hit 3
  EXPECT_EQ(fires("offload.compute"), 2u);
  EXPECT_EQ(hits("offload.compute"), 4u);
}

TEST(FaultPlan, KeyedRulesOnlyMatchTheirKey) {
  FaultPlan plan;
  plan.always("offload.transfer", /*key=*/3);
  PlanGuard guard(plan);
  EXPECT_FALSE(fault_fires("offload.transfer", 0));
  EXPECT_FALSE(fault_fires("offload.transfer", 2));
  EXPECT_TRUE(fault_fires("offload.transfer", 3));
  EXPECT_TRUE(fault_fires("offload.transfer", 3));
}

TEST(FaultPlan, HitCountersAreIndependentPerKey) {
  // fail_at on hit 1 with a wildcard key: each key has its own counter, so
  // every key's SECOND hit fires regardless of interleaving.
  FaultPlan plan;
  plan.fail_at("comm.send", {1});
  PlanGuard guard(plan);
  EXPECT_FALSE(fault_fires("comm.send", 7));  // key 7, hit 0
  EXPECT_FALSE(fault_fires("comm.send", 9));  // key 9, hit 0
  EXPECT_TRUE(fault_fires("comm.send", 9));   // key 9, hit 1
  EXPECT_TRUE(fault_fires("comm.send", 7));   // key 7, hit 1
}

TEST(FaultPlan, ProbabilityIsReproducibleAcrossArms) {
  const auto sample = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.with_probability("comm.send", 0.5, seed);
    PlanGuard guard(plan);
    std::uint64_t mask = 0;
    for (int i = 0; i < 64; ++i) {
      if (fault_fires("comm.send")) mask |= (std::uint64_t{1} << i);
    }
    return mask;
  };
  const std::uint64_t a = sample(123);
  EXPECT_EQ(a, sample(123));   // same seed: identical decision sequence
  EXPECT_NE(a, sample(321));   // different seed: different chaos
  EXPECT_NE(a, 0u);            // p = 0.5 over 64 draws: some fire...
  EXPECT_NE(a, ~std::uint64_t{0});  // ...and some don't
}

TEST(FaultPlan, ArmRejectsUnknownPointNames) {
  FaultPlan plan;
  plan.always("offload.trnsfer");  // typo
  EXPECT_THROW(arm(plan), std::invalid_argument);
  // The failed arm must leave the registry unarmed.
  EXPECT_FALSE(fault_fires("offload.transfer"));
}

TEST(FaultPlan, CountersReadableAfterDisarm) {
  {
    FaultPlan plan;
    plan.always("statepoint.write");
    PlanGuard guard(plan);
    EXPECT_TRUE(fault_fires("statepoint.write"));
  }
  // PlanGuard has disarmed: the point is inert again, but the counts from
  // the armed window survive for post-mortem assertions...
  EXPECT_FALSE(fault_fires("statepoint.write"));
  EXPECT_EQ(fires("statepoint.write"), 1u);
  EXPECT_EQ(hits("statepoint.write"), 1u);
  // ...until the next arm resets them.
  FaultPlan fresh;
  fresh.fail_at("comm.send", {99});
  PlanGuard guard(fresh);
  EXPECT_EQ(fires("statepoint.write"), 0u);
}

// --- input validation --------------------------------------------------------
// retry_with_backoff itself is covered in isolation in test_retry.cpp.

TEST(FaultPlanValidation, RejectsProbabilityOutsideUnitInterval) {
  FaultPlan plan;
  EXPECT_THROW(plan.with_probability("comm.send", -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(plan.with_probability("comm.send", 1.0001, 1),
               std::invalid_argument);
  EXPECT_THROW(plan.with_probability("comm.send",
                                     std::numeric_limits<double>::quiet_NaN(),
                                     1),
               std::invalid_argument);
  // The boundary values are legal (p = 0 never fires, p = 1 always does).
  EXPECT_NO_THROW(plan.with_probability("comm.send", 0.0, 1));
  EXPECT_NO_THROW(plan.with_probability("comm.send", 1.0, 2, /*key=*/9));
}

TEST(FaultPlanValidation, RejectsEmptyHitList) {
  FaultPlan plan;
  try {
    plan.fail_at("offload.transfer", {});
    FAIL() << "empty hit list must be rejected";
  } catch (const std::invalid_argument& e) {
    // The message names the point and points at always().
    EXPECT_NE(std::string(e.what()).find("offload.transfer"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("always()"), std::string::npos);
  }
}

TEST(FaultPlanValidation, ArmRejectsDuplicateRulesForSamePointAndKey) {
  FaultPlan plan;
  plan.fail_at("offload.compute", {0}, /*key=*/5);
  plan.always("offload.compute", /*key=*/5);
  try {
    arm(plan);
    FAIL() << "duplicate (point, key) rules must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("offload.compute"),
              std::string::npos);
  }
  EXPECT_FALSE(fault_fires("offload.compute", 5));  // left unarmed

  // Same key under DIFFERENT masks composes: a broad device-down rule plus a
  // pinpoint chunk rule are distinct domains, not duplicates.
  FaultPlan layered;
  layered.always("offload.compute", device_key(1, 0, 0), kDeviceKeyMask);
  layered.fail_at("offload.compute", {0}, device_key(1, 0, 0));
  EXPECT_NO_THROW(arm(layered));
  disarm();
}

// --- device-keyed fault domains ---------------------------------------------

TEST(FaultPlanDeviceKeys, PackingIsDisjointAndMaskable) {
  const std::uint64_t k = device_key(3, 1, 0x1234);
  EXPECT_EQ(k >> 48, 3u);
  EXPECT_EQ((k >> 32) & 0xFFFFu, 1u);
  EXPECT_EQ(k & 0xFFFFFFFFu, 0x1234u);
  // The masks select exactly their fields.
  EXPECT_EQ(k & kDeviceKeyMask, device_key(3, 0, 0));
  EXPECT_EQ(k & kDeviceStreamKeyMask, device_key(3, 1, 0));
}

TEST(FaultPlanDeviceKeys, DeviceMaskMatchesEveryStreamAndOrdinal) {
  FaultPlan plan;
  plan.always("offload.compute", device_key(2, 0, 0), kDeviceKeyMask);
  PlanGuard guard(plan);
  EXPECT_TRUE(fault_fires("offload.compute", device_key(2, 0, 0)));
  EXPECT_TRUE(fault_fires("offload.compute", device_key(2, 1, 77)));
  EXPECT_FALSE(fault_fires("offload.compute", device_key(1, 0, 0)));
  EXPECT_FALSE(fault_fires("offload.compute", device_key(3, 1, 77)));
}

TEST(FaultPlanDeviceKeys, StreamMaskPinsDeviceAndStream) {
  FaultPlan plan;
  // Device 1's transfer stream (stream 0) is down; its compute stream works.
  plan.always("offload.transfer", device_key(1, 0, 0), kDeviceStreamKeyMask);
  PlanGuard guard(plan);
  EXPECT_TRUE(fault_fires("offload.transfer", device_key(1, 0, 5)));
  EXPECT_TRUE(fault_fires("offload.transfer", device_key(1, 0, 99)));
  EXPECT_FALSE(fault_fires("offload.transfer", device_key(1, 1, 5)));
  EXPECT_FALSE(fault_fires("offload.transfer", device_key(0, 0, 5)));
}

TEST(FaultPlanDeviceKeys, MaskedRulesKeepPerExactKeyHitCounters) {
  // A masked fail_at({0}) rule fires on the FIRST attempt of every chunk in
  // the domain independently — hit counters stay per exact caller key, so
  // "hit 0" means each chunk's first attempt, not the domain's first hit.
  FaultPlan plan;
  plan.fail_at("offload.transfer", {0}, device_key(0, 0, 0), kDeviceKeyMask);
  PlanGuard guard(plan);
  EXPECT_TRUE(fault_fires("offload.transfer", device_key(0, 0, 4)));
  EXPECT_FALSE(fault_fires("offload.transfer", device_key(0, 0, 4)));
  EXPECT_TRUE(fault_fires("offload.transfer", device_key(0, 1, 9)));
  EXPECT_FALSE(fault_fires("offload.transfer", device_key(0, 1, 9)));
}

}  // namespace
