// Fault-injection registry: unarmed fault points cost nothing and never
// fire; armed plans fire deterministically from (seed, point, key, hit).
#include <gtest/gtest.h>

#include <cstdint>

#include "resil/fault.hpp"
#include "resil/retry.hpp"

namespace {

using namespace vmc::resil;

TEST(FaultPlan, UnarmedPointsNeverFire) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault_fires("offload.transfer", static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(fires("offload.transfer"), 0u);
}

TEST(FaultPlan, FailAtFiresExactlyOnListedHits) {
  FaultPlan plan;
  plan.fail_at("offload.compute", {0, 2});
  PlanGuard guard(plan);
  EXPECT_TRUE(fault_fires("offload.compute"));   // hit 0
  EXPECT_FALSE(fault_fires("offload.compute"));  // hit 1
  EXPECT_TRUE(fault_fires("offload.compute"));   // hit 2
  EXPECT_FALSE(fault_fires("offload.compute"));  // hit 3
  EXPECT_EQ(fires("offload.compute"), 2u);
  EXPECT_EQ(hits("offload.compute"), 4u);
}

TEST(FaultPlan, KeyedRulesOnlyMatchTheirKey) {
  FaultPlan plan;
  plan.always("offload.transfer", /*key=*/3);
  PlanGuard guard(plan);
  EXPECT_FALSE(fault_fires("offload.transfer", 0));
  EXPECT_FALSE(fault_fires("offload.transfer", 2));
  EXPECT_TRUE(fault_fires("offload.transfer", 3));
  EXPECT_TRUE(fault_fires("offload.transfer", 3));
}

TEST(FaultPlan, HitCountersAreIndependentPerKey) {
  // fail_at on hit 1 with a wildcard key: each key has its own counter, so
  // every key's SECOND hit fires regardless of interleaving.
  FaultPlan plan;
  plan.fail_at("comm.send", {1});
  PlanGuard guard(plan);
  EXPECT_FALSE(fault_fires("comm.send", 7));  // key 7, hit 0
  EXPECT_FALSE(fault_fires("comm.send", 9));  // key 9, hit 0
  EXPECT_TRUE(fault_fires("comm.send", 9));   // key 9, hit 1
  EXPECT_TRUE(fault_fires("comm.send", 7));   // key 7, hit 1
}

TEST(FaultPlan, ProbabilityIsReproducibleAcrossArms) {
  const auto sample = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.with_probability("comm.send", 0.5, seed);
    PlanGuard guard(plan);
    std::uint64_t mask = 0;
    for (int i = 0; i < 64; ++i) {
      if (fault_fires("comm.send")) mask |= (std::uint64_t{1} << i);
    }
    return mask;
  };
  const std::uint64_t a = sample(123);
  EXPECT_EQ(a, sample(123));   // same seed: identical decision sequence
  EXPECT_NE(a, sample(321));   // different seed: different chaos
  EXPECT_NE(a, 0u);            // p = 0.5 over 64 draws: some fire...
  EXPECT_NE(a, ~std::uint64_t{0});  // ...and some don't
}

TEST(FaultPlan, ArmRejectsUnknownPointNames) {
  FaultPlan plan;
  plan.always("offload.trnsfer");  // typo
  EXPECT_THROW(arm(plan), std::invalid_argument);
  // The failed arm must leave the registry unarmed.
  EXPECT_FALSE(fault_fires("offload.transfer"));
}

TEST(FaultPlan, CountersReadableAfterDisarm) {
  {
    FaultPlan plan;
    plan.always("statepoint.write");
    PlanGuard guard(plan);
    EXPECT_TRUE(fault_fires("statepoint.write"));
  }
  // PlanGuard has disarmed: the point is inert again, but the counts from
  // the armed window survive for post-mortem assertions...
  EXPECT_FALSE(fault_fires("statepoint.write"));
  EXPECT_EQ(fires("statepoint.write"), 1u);
  EXPECT_EQ(hits("statepoint.write"), 1u);
  // ...until the next arm resets them.
  FaultPlan fresh;
  fresh.fail_at("comm.send", {99});
  PlanGuard guard(fresh);
  EXPECT_EQ(fires("statepoint.write"), 0u);
}

TEST(RetryBackoff, CountsRetriesAndRethrowsWhenExhausted) {
  RetryPolicy fast{/*max_retries=*/3, /*base_backoff_s=*/0.0,
                   /*backoff_multiplier=*/2.0};
  int attempts = 0;
  const int retries = retry_with_backoff(fast, [&] {
    if (++attempts < 3) throw TransientError("flaky");
  });
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(attempts, 3);

  attempts = 0;
  EXPECT_THROW(retry_with_backoff(fast,
                                  [&] {
                                    ++attempts;
                                    throw TransientError("down for good");
                                  }),
               TransientError);
  EXPECT_EQ(attempts, 4);  // initial try + max_retries
}

TEST(RetryBackoff, NonTransientErrorsPropagateImmediately) {
  RetryPolicy fast{3, 0.0, 2.0};
  int attempts = 0;
  EXPECT_THROW(retry_with_backoff(fast,
                                  [&] {
                                    ++attempts;
                                    throw std::logic_error("bug, not weather");
                                  }),
               std::logic_error);
  EXPECT_EQ(attempts, 1);
}

TEST(FaultPlan, FaultErrorIsTransient) {
  // retry_with_backoff's catch contract: injected faults are retryable.
  static_assert(std::is_base_of_v<TransientError, FaultError>);
  static_assert(std::is_base_of_v<std::runtime_error, TransientError>);
}

}  // namespace
