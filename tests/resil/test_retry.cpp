// retry_with_backoff in isolation: the recovery half of the transient-fault
// story, tested without any pipeline around it. Covers the deterministic
// backoff schedule, the exhaustion path (rethrows the LAST error), the
// non-transient passthrough, and the zero-cost property when nothing faults.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "prof/profiler.hpp"
#include "resil/fault.hpp"
#include "resil/retry.hpp"

namespace {

using namespace vmc::resil;

TEST(RetryBackoff, CountsRetriesAndRethrowsWhenExhausted) {
  RetryPolicy fast{/*max_retries=*/3, /*base_backoff_s=*/0.0,
                   /*backoff_multiplier=*/2.0};
  int attempts = 0;
  const int retries = retry_with_backoff(fast, [&] {
    if (++attempts < 3) throw TransientError("flaky");
  });
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(attempts, 3);

  attempts = 0;
  EXPECT_THROW(retry_with_backoff(fast,
                                  [&] {
                                    ++attempts;
                                    throw TransientError("down for good");
                                  }),
               TransientError);
  EXPECT_EQ(attempts, 4);  // initial try + max_retries
}

TEST(RetryBackoff, ExhaustionRethrowsTheLastError) {
  // Each attempt throws a distinguishable error; the caller must see the
  // final one (the freshest diagnosis of why the stage is down).
  RetryPolicy fast{2, 0.0, 2.0};
  int attempts = 0;
  try {
    retry_with_backoff(fast, [&] {
      throw TransientError("attempt " + std::to_string(++attempts));
    });
    FAIL() << "retries must exhaust";
  } catch (const TransientError& e) {
    EXPECT_STREQ(e.what(), "attempt 3");  // 1 initial + 2 retries
  }
}

TEST(RetryBackoff, BackoffScheduleIsDeterministicExponential) {
  // base 2 ms doubling over 3 retries: the sleeps sum to at least
  // 2 + 4 + 8 = 14 ms. sleep_for guarantees a lower bound, so this is a
  // timing assertion that cannot flake on a loaded runner.
  RetryPolicy policy{3, 2e-3, 2.0};
  const double t0 = vmc::prof::now_seconds();
  EXPECT_THROW(
      retry_with_backoff(policy, [] { throw TransientError("down"); }),
      TransientError);
  EXPECT_GE(vmc::prof::now_seconds() - t0, 14e-3);
}

TEST(RetryBackoff, ZeroRetriesMeansSingleAttempt) {
  RetryPolicy none{0, 0.0, 2.0};
  int attempts = 0;
  EXPECT_THROW(retry_with_backoff(none,
                                  [&] {
                                    ++attempts;
                                    throw TransientError("once");
                                  }),
               TransientError);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryBackoff, NonTransientErrorsPropagateImmediately) {
  RetryPolicy fast{3, 0.0, 2.0};
  int attempts = 0;
  EXPECT_THROW(retry_with_backoff(fast,
                                  [&] {
                                    ++attempts;
                                    throw std::logic_error("bug, not weather");
                                  }),
               std::logic_error);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryBackoff, ZeroCostWhenNoFaultArmed) {
  // An absurd base backoff proves no sleep happens on the success path: the
  // op (guarded by an UNarmed fault point) succeeds on its first attempt,
  // so a single hidden backoff would hang the test past its timeout.
  RetryPolicy glacial{3, /*base_backoff_s=*/1000.0, 2.0};
  {
    // Arm + disarm a throwaway plan: arming resets the surviving hit/fire
    // counters earlier tests may have left behind.
    FaultPlan reset;
    reset.always("comm.send");
    PlanGuard guard(reset);
  }
  int attempts = 0;
  const double t0 = vmc::prof::now_seconds();
  const int retries = retry_with_backoff(glacial, [&] {
    ++attempts;
    if (fault_fires("offload.compute", 42)) {
      throw FaultError("never: nothing is armed");
    }
  });
  EXPECT_EQ(retries, 0);
  EXPECT_EQ(attempts, 1);
  EXPECT_LT(vmc::prof::now_seconds() - t0, 1.0);
  EXPECT_EQ(hits("offload.compute"), 0u);  // unarmed points count nothing
}

TEST(RetryBackoff, FaultErrorIsTransient) {
  // retry_with_backoff's catch contract: injected faults are retryable.
  static_assert(std::is_base_of_v<TransientError, FaultError>);
  static_assert(std::is_base_of_v<std::runtime_error, TransientError>);
}

}  // namespace
