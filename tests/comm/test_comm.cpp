// In-process message passing: point-to-point ordering, collectives against
// serial references, and the cluster cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>

#include "comm/cluster_model.hpp"
#include "comm/comm.hpp"
#include "rng/stream.hpp"

namespace {

using namespace vmc::comm;

class WorldSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizeTest, AllreduceSumMatchesSerial) {
  const int ranks = GetParam();
  World world(ranks);
  std::vector<double> results(static_cast<std::size_t>(ranks));
  world.run([&](Comm& c) {
    // Deterministic per-rank vector.
    std::vector<double> mine(16);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = (c.rank() + 1) * 100.0 + static_cast<double>(i);
    }
    const auto sum = c.allreduce_sum(mine);
    // Serial reference.
    for (std::size_t i = 0; i < mine.size(); ++i) {
      double expect = 0.0;
      for (int r = 0; r < c.size(); ++r) {
        expect += (r + 1) * 100.0 + static_cast<double>(i);
      }
      ASSERT_DOUBLE_EQ(sum[i], expect);
    }
    results[static_cast<std::size_t>(c.rank())] = sum[0];
  });
  // Every rank saw the same result.
  for (int r = 1; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

TEST_P(WorldSizeTest, BarrierSynchronizesRepeatedly) {
  const int ranks = GetParam();
  World world(ranks);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  world.run([&](Comm& c) {
    for (int phase = 0; phase < 3; ++phase) {
      phase_counts[phase].fetch_add(1);
      c.barrier();
      // After the barrier, everyone must have registered this phase.
      EXPECT_EQ(phase_counts[phase].load(), ranks);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldSizeTest, ::testing::Values(1, 2, 3, 7, 16));

TEST(Comm, SendRecvPreservesOrderPerTag) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        c.send_value(1, /*tag=*/5, i);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(c.recv_value<int>(0, 5), i);
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 111);
      c.send_value(1, 2, 222);
    } else {
      // Receive in the opposite order of sending: tags must not block each
      // other.
      EXPECT_EQ(c.recv_value<int>(0, 2), 222);
      EXPECT_EQ(c.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(Comm, TypedVectorsRoundTrip) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint64_t> v(100);
      std::iota(v.begin(), v.end(), 7);
      c.send(1, 0, v);
    } else {
      const auto v = c.recv<std::uint64_t>(0, 0);
      ASSERT_EQ(v.size(), 100u);
      EXPECT_EQ(v.front(), 7u);
      EXPECT_EQ(v.back(), 106u);
    }
  });
}

TEST(Comm, BcastDistributesRootData) {
  World world(4);
  world.run([&](Comm& c) {
    std::vector<int> data;
    if (c.rank() == 2) data = {1, 2, 3, 4, 5};
    c.bcast(data, /*root=*/2);
    ASSERT_EQ(data.size(), 5u);
    EXPECT_EQ(data[4], 5);
  });
}

TEST(Comm, GatherConcatenatesInRankOrder) {
  World world(3);
  world.run([&](Comm& c) {
    std::vector<int> mine(static_cast<std::size_t>(c.rank()) + 1, c.rank());
    const auto all = c.gather(mine, /*root=*/0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 1u + 2u + 3u);
      EXPECT_EQ(all[0], 0);
      EXPECT_EQ(all[1], 1);
      EXPECT_EQ(all[2], 1);
      EXPECT_EQ(all[3], 2);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, AllreduceMaxAndScalars) {
  World world(5);
  world.run([&](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 4.0);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 5.0);
    EXPECT_EQ(c.allreduce_sum(std::uint64_t{10}), 50u);
  });
}

TEST(Comm, FissionBankStyleExchange) {
  // The eigenvalue loop's pattern: gather per-rank site counts, rebalance.
  World world(4);
  world.run([&](Comm& c) {
    const std::uint64_t my_sites = 100 + 10 * static_cast<std::uint64_t>(c.rank());
    const std::uint64_t total = c.allreduce_sum(my_sites);
    EXPECT_EQ(total, 100u + 110 + 120 + 130);
  });
}

TEST(Comm, ExceptionsPropagateToCaller) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank fail");
                 // rank 0 exits cleanly
               }),
               std::runtime_error);
}

TEST(Comm, RejectsBadRanks) {
  EXPECT_THROW(World(0), std::invalid_argument);
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v{1};
      EXPECT_THROW(c.send(7, 0, v), std::out_of_range);
    }
  });
}

TEST(Comm, RecvValueRejectsEmptyMessageDescriptively) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/4, std::vector<int>{});  // zero values, not one
    } else {
      try {
        c.recv_value<int>(0, 4);
        FAIL() << "empty message must not yield a value";
      } catch (const Error& e) {
        // The message must name the offender: source rank and tag.
        const std::string what = e.what();
        EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
        EXPECT_NE(what.find("tag 4"), std::string::npos) << what;
      }
    }
  });
}

TEST(Comm, RecvForDeliversWithinDeadline) {
  World world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 6, 77);
    } else {
      const auto v = c.recv_for<int>(0, 6, std::chrono::milliseconds(5000));
      ASSERT_EQ(v.size(), 1u);
      EXPECT_EQ(v[0], 77);
    }
  });
}

TEST(Comm, RecvForTimesOutOnSilence) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& c) {
                 if (c.rank() == 1) {
                   // Nobody ever sends on this tag.
                   c.recv_for<int>(0, 9, std::chrono::milliseconds(50));
                 }
               }),
               Error);
}

TEST(Comm, RecvFromDeadRankThrowsInsteadOfHanging) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& c) {
                 if (c.rank() == 0) {
                   c.die();
                   return;
                 }
                 c.recv<int>(0, 3);  // must wake and fail, not block forever
               }),
               Error);
}

TEST(Comm, DeadRankIsExcludedFromCollectives) {
  World world(3);
  world.run([&](Comm& c) {
    if (c.rank() == 2) {
      c.die();
      return;
    }
    c.barrier();  // completes with 2 live ranks
    EXPECT_FALSE(c.alive(2));
    EXPECT_EQ(c.dead_ranks(), std::vector<int>{2});
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
    std::vector<int> mine{c.rank()};
    const auto all = c.gather(mine, /*root=*/0);
    if (c.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{0, 1}));  // rank 2 skipped
    }
  });
}

TEST(CommFuzz, RandomMessageStormIsLossless) {
  // Property fuzz: every rank sends a random number of random-size messages
  // on random tags to random peers; receivers drain them in a fixed
  // (source, tag) order. Totals must balance exactly — no loss, no
  // duplication, no deadlock.
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    constexpr int kRanks = 4;
    constexpr int kTags = 3;
    // Deterministic plan, computed identically by every rank.
    int plan[kRanks][kRanks][kTags] = {};      // messages src -> dst on tag
    long payload_sum[kRanks] = {};             // expected sum per receiver
    vmc::rng::Stream planner(seed);
    for (int src = 0; src < kRanks; ++src) {
      for (int dst = 0; dst < kRanks; ++dst) {
        if (dst == src) continue;
        for (int tag = 0; tag < kTags; ++tag) {
          plan[src][dst][tag] = static_cast<int>(planner.next() * 4);
        }
      }
    }
    World world(kRanks);
    world.run([&](Comm& c) {
      vmc::rng::Stream gen(seed * 1000 + static_cast<std::uint64_t>(c.rank()));
      long sent_total = 0;
      // Send phase: random sizes, contents derived from the stream.
      for (int dst = 0; dst < kRanks; ++dst) {
        if (dst == c.rank()) continue;
        for (int tag = 0; tag < kTags; ++tag) {
          for (int m = 0; m < plan[c.rank()][dst][tag]; ++m) {
            std::vector<int> payload(1 + static_cast<std::size_t>(gen.next() * 50));
            for (auto& x : payload) {
              x = static_cast<int>(gen.next() * 1000);
              sent_total += x;
            }
            c.send(dst, tag, payload);
          }
        }
      }
      // Receive phase: drain in deterministic order.
      long received = 0;
      for (int src = 0; src < kRanks; ++src) {
        if (src == c.rank()) continue;
        for (int tag = 0; tag < kTags; ++tag) {
          for (int m = 0; m < plan[src][c.rank()][tag]; ++m) {
            for (const int x : c.recv<int>(src, tag)) received += x;
          }
        }
      }
      // Global balance: sum of all sent == sum of all received.
      const double sent_global = c.allreduce_sum(static_cast<double>(sent_total));
      const double recv_global = c.allreduce_sum(static_cast<double>(received));
      EXPECT_DOUBLE_EQ(sent_global, recv_global) << "seed " << seed;
      (void)payload_sum;
    });
  }
}

TEST(ClusterModel, CollectiveCostScalesLogarithmically) {
  const ClusterModel m = ClusterModel::stampede();
  const double t2 = m.allreduce_seconds(2, 1024);
  const double t1024 = m.allreduce_seconds(1024, 1024);
  EXPECT_NEAR(t1024 / t2, 10.0, 0.5);  // log2(1024) / log2(2)
  EXPECT_EQ(m.allreduce_seconds(1, 1024), 0.0);
}

TEST(ClusterModel, BandwidthTermDominatesLargePayloads) {
  const ClusterModel m = ClusterModel::stampede();
  const double small = m.p2p_seconds(64);
  const double large = m.p2p_seconds(1u << 30);
  EXPECT_GT(large, 100.0 * small);
  EXPECT_NEAR(large, m.latency_s + (1u << 30) / (m.bandwidth_gbs * 1e9),
              1e-12);
}

}  // namespace
