// Windowed multipole: construction invariants, physical behaviour
// (positivity of the total away from interference dips, Doppler smoothing),
// and agreement between the original and vectorized kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "multipole/doppler.hpp"
#include "multipole/multipole.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

namespace {

using vmc::multipole::doppler_width;
using vmc::multipole::MpXs;
using vmc::multipole::WindowedMultipole;

WindowedMultipole make_default(std::uint64_t seed = 1) {
  WindowedMultipole::Params p;
  return WindowedMultipole::make_synthetic(seed, p);
}

TEST(Multipole, ConstructionInvariants) {
  const WindowedMultipole m = make_default();
  EXPECT_EQ(m.n_windows(), 100);
  EXPECT_GT(m.n_poles(), 100u);
  EXPECT_EQ(m.poles_per_window_fixed() % 8, 0);  // padded to lanes
  EXPECT_GT(m.data_bytes(), 0u);
}

TEST(Multipole, DeterministicBySeed) {
  const WindowedMultipole a = make_default(5);
  const WindowedMultipole b = make_default(5);
  const double dop = doppler_width(2.53e-8, 238.0);
  for (double e : {2e-5, 1e-4, 1e-3, 5e-2}) {
    EXPECT_EQ(a.evaluate(e, dop).total, b.evaluate(e, dop).total);
  }
  const WindowedMultipole c = make_default(6);
  EXPECT_NE(a.evaluate(1e-3, dop).total, c.evaluate(1e-3, dop).total);
}

TEST(Multipole, FixedKernelMatchesOriginal) {
  // The vectorized fixed-poles kernel uses the region-3 Faddeeva; agreement
  // with the original w4 kernel should be at the Humlicek tolerance.
  const WindowedMultipole m = make_default(11);
  const double dop = doppler_width(2.53e-8, 238.0);
  vmc::rng::Stream s(3);
  for (int i = 0; i < 500; ++i) {
    const double e =
        m.e_min() * std::pow(m.e_max() / m.e_min(), s.next()) * 0.999;
    const MpXs a = m.evaluate(e, dop);
    const MpXs b = m.evaluate_fixed(e, dop);
    // The vector kernel applies the region-3 rational everywhere, including
    // arguments the scalar w4 handles with regions I/II; ~1% agreement is
    // the accuracy trade the paper's vectorized RSBench variant makes.
    const double tol_t = 2e-2 * std::abs(a.total) + 5e-2;
    EXPECT_NEAR(b.total, a.total, tol_t) << "E=" << e;
    EXPECT_NEAR(b.absorption, a.absorption,
                2e-2 * std::abs(a.absorption) + 5e-2);
    EXPECT_NEAR(b.fission, a.fission, 2e-2 * std::abs(a.fission) + 5e-2);
  }
}

TEST(Multipole, DopplerBroadeningSmoothsPeaks) {
  // Higher temperature -> wider Doppler width -> lower, broader peaks:
  // the max of sigma_t over a fine scan must decrease with T.
  const WindowedMultipole m = make_default(13);
  const double cold = doppler_width(2.53e-8, 238.0);    // 293 K
  const double hot = doppler_width(2.53e-7, 238.0);     // ~2930 K
  double max_cold = 0.0, max_hot = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double e = m.e_min() + (m.e_max() - m.e_min()) * i / 20000.0;
    max_cold = std::max(max_cold, m.evaluate(e, cold).total);
    max_hot = std::max(max_hot, m.evaluate(e, hot).total);
  }
  EXPECT_LT(max_hot, max_cold);
}

TEST(Multipole, NonFissionableHasZeroFissionChannel) {
  WindowedMultipole::Params p;
  p.fissionable = false;
  const WindowedMultipole m = WindowedMultipole::make_synthetic(2, p);
  const double dop = doppler_width(2.53e-8, 238.0);
  vmc::rng::Stream s(5);
  for (int i = 0; i < 100; ++i) {
    const double e = m.e_min() * std::pow(m.e_max() / m.e_min(), s.next());
    EXPECT_NEAR(m.evaluate(e, dop).fission, 0.0, 1e-12);
    EXPECT_NEAR(m.evaluate_fixed(e, dop).fission, 0.0, 1e-12);
  }
}

TEST(Multipole, MemoryFootprintIsCompact) {
  // The method's selling point: far less data than pointwise tables.
  // ~1200 poles x a few complex numbers should be well under a MB.
  const WindowedMultipole m = make_default();
  EXPECT_LT(m.data_bytes(), 1u << 20);
}

TEST(Multipole, ResonanceStructureIsPresent) {
  const WindowedMultipole m = make_default(17);
  const double dop = doppler_width(2.53e-8, 238.0);
  double mx = -1e300, mn = 1e300;
  for (int i = 1; i < 50000; ++i) {
    const double e = m.e_min() + (m.e_max() - m.e_min()) * i / 50000.0;
    const double t = m.evaluate(e, dop).total;
    mx = std::max(mx, t);
    mn = std::min(mn, t);
  }
  EXPECT_GT(mx - mn, 1.0);  // peaks rise well above the background
}

TEST(BroadenedNuclide, ProducesValidPointwiseData) {
  const WindowedMultipole m = make_default(21);
  vmc::multipole::BroadenOptions opt;
  opt.grid_points = 800;
  const vmc::xs::Nuclide n =
      vmc::multipole::broadened_nuclide(m, "mp-u238", opt);
  ASSERT_EQ(n.grid_size(), 800u);
  EXPECT_TRUE(std::is_sorted(n.energy.begin(), n.energy.end()));
  for (std::size_t i = 0; i < n.grid_size(); ++i) {
    EXPECT_GT(n.total[i], 0.0f);
    EXPECT_GE(n.scatter[i], 0.0f);
    EXPECT_GT(n.absorption[i], 0.0f);
    EXPECT_NEAR(n.total[i], n.scatter[i] + n.absorption[i],
                1e-4f * n.total[i]);
  }
}

TEST(BroadenedNuclide, HotterTemperatureFlattensResonances) {
  const WindowedMultipole m = make_default(22);
  vmc::multipole::BroadenOptions cold;
  cold.kt_mev = vmc::multipole::kt_from_kelvin(293.6);
  cold.grid_points = 2000;
  vmc::multipole::BroadenOptions hot = cold;
  hot.kt_mev = vmc::multipole::kt_from_kelvin(2400.0);
  const auto nc = vmc::multipole::broadened_nuclide(m, "cold", cold);
  const auto nh = vmc::multipole::broadened_nuclide(m, "hot", hot);
  float max_cold = 0.0f, max_hot = 0.0f;
  for (std::size_t i = 0; i < nc.grid_size(); ++i) {
    max_cold = std::max(max_cold, nc.total[i]);
    max_hot = std::max(max_hot, nh.total[i]);
  }
  EXPECT_LT(max_hot, max_cold);
}

TEST(BroadenedNuclide, UsableInALibraryWithLookups) {
  const WindowedMultipole m = make_default(23);
  vmc::multipole::BroadenOptions opt;
  opt.grid_points = 500;
  opt.fissionable = true;
  vmc::xs::Library lib;
  const int id = lib.add_nuclide(
      vmc::multipole::broadened_nuclide(m, "mp", opt));
  vmc::xs::Material mat;
  mat.add(id, 0.02);
  const int mid = lib.add_material(std::move(mat));
  lib.finalize();
  const auto s = vmc::xs::macro_xs_history(lib, mid, 1e-3);
  EXPECT_GT(s.total, 0.0);
  EXPECT_GT(s.fission, 0.0);
}

TEST(KtFromKelvin, RoomTemperatureAnchor) {
  EXPECT_NEAR(vmc::multipole::kt_from_kelvin(293.6), 2.53e-8, 2e-10);
}

TEST(DopplerWidth, ScalesWithTemperatureAndMass) {
  EXPECT_GT(doppler_width(2.53e-7, 238.0), doppler_width(2.53e-8, 238.0));
  EXPECT_GT(doppler_width(2.53e-8, 1.0), doppler_width(2.53e-8, 238.0));
  EXPECT_NEAR(doppler_width(2.53e-8, 238.0),
              std::sqrt(2.53e-8 / 238.0), 1e-15);
}

}  // namespace
