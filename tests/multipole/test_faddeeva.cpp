// Faddeeva function: known values, symmetry relations, and agreement
// between the scalar w4 and the vectorized region-3 kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "multipole/faddeeva.hpp"
#include "rng/stream.hpp"

namespace {

using vmc::multipole::faddeeva;
using vmc::multipole::faddeeva_region3;

TEST(Faddeeva, OriginIsOne) {
  const auto w = faddeeva({0.0, 0.0});
  EXPECT_NEAR(w.real(), 1.0, 2e-4);
  EXPECT_NEAR(w.imag(), 0.0, 2e-4);
}

TEST(Faddeeva, PureImaginaryMatchesErfcx) {
  // w(iy) = erfcx(y) = exp(y^2) erfc(y), real.
  for (double y : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const auto w = faddeeva({0.0, y});
    const double ref = std::exp(y * y) * std::erfc(y);
    EXPECT_NEAR(w.real(), ref, 2e-4 * ref + 2e-4) << "y=" << y;
    EXPECT_NEAR(w.imag(), 0.0, 1e-4);
  }
}

TEST(Faddeeva, RealAxisRealPartIsGaussian) {
  // w(x) = exp(-x^2) + i * 2 Dawson(x) / sqrt(pi): Re part is the Gaussian.
  for (double x : {0.0, 0.3, 1.0, 2.0}) {
    const auto w = faddeeva({x, 0.0});
    EXPECT_NEAR(w.real(), std::exp(-x * x), 3e-4) << "x=" << x;
  }
}

TEST(Faddeeva, MirrorSymmetry) {
  // w(-conj(z)) = conj(w(z)).
  vmc::rng::Stream s(3);
  for (int i = 0; i < 100; ++i) {
    const std::complex<double> z(10.0 * (s.next() - 0.5), 5.0 * s.next());
    const auto a = faddeeva(z);
    const auto b = faddeeva({-z.real(), z.imag()});
    EXPECT_NEAR(b.real(), a.real(), 1e-6 + 1e-4 * std::abs(a.real()));
    EXPECT_NEAR(b.imag(), -a.imag(), 1e-6 + 1e-4 * std::abs(a.imag()));
  }
}

TEST(Faddeeva, AsymptoticBehaviourAtLargeArgument) {
  // w(z) ~ i / (sqrt(pi) z) for |z| -> inf.
  const double inv_sqrt_pi = 0.5641895835477563;
  for (double x : {30.0, 100.0}) {
    const auto w = faddeeva({x, 1.0});
    EXPECT_NEAR(w.imag(), inv_sqrt_pi / x, 0.05 * inv_sqrt_pi / x);
  }
}

TEST(Faddeeva, LowerHalfPlaneReflection) {
  // w(z) for Im z < 0 via w(z) = 2 exp(-z^2) - conj(w(conj(z))).
  const std::complex<double> z(1.0, -0.5);
  const auto w = faddeeva(z);
  const auto expected =
      2.0 * std::exp(-z * z) - std::conj(faddeeva(std::conj(z)));
  EXPECT_NEAR(w.real(), expected.real(), 1e-10);
  EXPECT_NEAR(w.imag(), expected.imag(), 1e-10);
}

TEST(FaddeevaRegion3, MatchesScalarInItsDomain) {
  // Region 3 is used by the vector kernel for |x| + y in the window range;
  // verify lane-by-lane against the full scalar implementation.
  constexpr int N = 8;
  vmc::rng::Stream s(7);
  for (int trial = 0; trial < 100; ++trial) {
    vmc::simd::Vec<double, N> x, y;
    for (int i = 0; i < N; ++i) {
      x.set(i, 4.0 * (s.next() - 0.5));
      y.set(i, 0.9 + 2.0 * s.next());  // comfortably in region 3
    }
    vmc::simd::Vec<double, N> re, im;
    faddeeva_region3(x, y, re, im);
    for (int i = 0; i < N; ++i) {
      const auto ref = faddeeva({x[i], y[i]});
      EXPECT_NEAR(re[i], ref.real(), 5e-4 + 1e-3 * std::abs(ref.real()))
          << "z=(" << x[i] << "," << y[i] << ")";
      EXPECT_NEAR(im[i], ref.imag(), 5e-4 + 1e-3 * std::abs(ref.imag()));
    }
  }
}

TEST(FaddeevaRegion3, StableForLargeArguments) {
  constexpr int N = 4;
  vmc::simd::Vec<double, N> x(1000.0), y(500.0), re, im;
  faddeeva_region3(x, y, re, im);
  for (int i = 0; i < N; ++i) {
    EXPECT_TRUE(std::isfinite(re[i]));
    EXPECT_TRUE(std::isfinite(im[i]));
  }
}

}  // namespace
