// vmc_loadgen: seeded traffic generator + latency/cache report for vmc_serve.
//
// Generates a deterministic multi-tenant job stream — thousands of small
// H.M. jobs with mixed temperatures, grid-search tiers, and fuel-nuclide
// counts, plus a sprinkling of H.M. Large (320-nuclide) jobs — and drives it
// either through an in-process Server (default; what the serve-smoke CI job
// gates) or through a running vmc_served daemon's file-drop inbox
// (--inbox/--outbox), exercising the full claim/publish transport.
//
// Emits BENCH_serve_loadgen.json (vectormc.bench.v1): ten submission-order
// windows with p50/p99 job latency and the cache-hit-rate series, gated in
// CI by vmc_bench_diff against bench/baselines/BENCH_serve_loadgen.json.
// The job count scales with VMC_BENCH_SCALE; per-job work is fixed so the
// latency distribution, not the job mix, is what scale changes.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json/json.hpp"
#include "rng/stream.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"

namespace {

using vmc::serve::JobSpec;

struct Args {
  std::size_t jobs = 2000;   // pre-scale
  int workers = 4;
  std::uint64_t seed = 1;
  std::string inbox;         // non-empty: drive an external daemon
  std::string outbox;
  std::size_t cache_mb = 512;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--jobs")
      a.jobs = static_cast<std::size_t>(std::atoll(next().c_str()));
    else if (flag == "--workers")
      a.workers = std::atoi(next().c_str());
    else if (flag == "--seed")
      a.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    else if (flag == "--inbox")
      a.inbox = next();
    else if (flag == "--outbox")
      a.outbox = next();
    else if (flag == "--cache-mb")
      a.cache_mb = static_cast<std::size_t>(std::atoll(next().c_str()));
    else {
      std::fprintf(stderr,
                   "usage: vmc_loadgen [--jobs N] [--workers N] [--seed S]\n"
                   "        [--cache-mb MB] [--inbox DIR --outbox DIR]\n");
      std::exit(2);
    }
  }
  return a;
}

/// Deterministic traffic: the i-th job depends only on (seed, i).
JobSpec make_job(vmc::rng::Stream& ts, std::size_t i) {
  JobSpec s;
  s.seed = 1000 + i;
  s.grid_scale = 0.05;  // serving-sized libraries; the mix, not size, varies
  s.inactive = 1;
  static const char* kTenants[] = {"alpha", "beta", "gamma"};
  s.tenant = kTenants[i % 3];
  s.weight = s.tenant == std::string("alpha") ? 2.0 : 1.0;

  const double r = ts.next();
  static const double kTemps[] = {300.0, 600.0, 900.0, 1200.0};
  s.temperature_K = kTemps[static_cast<int>(ts.next() * 4.0) & 3];
  static const vmc::xs::GridSearch kTiers[] = {
      vmc::xs::GridSearch::binary, vmc::xs::GridSearch::hash,
      vmc::xs::GridSearch::hash_nuclide};
  s.tier = kTiers[static_cast<int>(ts.next() * 3.0) % 3];

  if (i % 64 == 63) {
    // The occasional H.M. Large: the full 320-nuclide fuel.
    s.model = "large";
    s.batches = 3;
    s.particles = 200;
  } else {
    s.model = "small";
    static const int kNuclides[] = {8, 16, 34};
    s.nuclides = kNuclides[static_cast<int>(r * 3.0) % 3];
    s.batches = 3 + (static_cast<int>(ts.next() * 3.0) % 3);
    s.particles = 200 + static_cast<std::uint64_t>(ts.next() * 300.0);
  }
  return s;
}

struct Sample {
  std::size_t index = 0;  // submission order
  double latency_s = 0.0;
  bool cache_hit = false;
  bool done = false;
};

double quantile_ms(std::vector<double>& ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

std::vector<Sample> run_in_process(const Args& args,
                                   const std::vector<JobSpec>& specs) {
  vmc::serve::ServerConfig cfg;
  cfg.workers = args.workers;
  cfg.cache_bytes = args.cache_mb << 20;
  // The bench submits the whole stream up front; the queue-depth admission
  // guard is a daemon-facing limit and must never bounce scaled runs.
  cfg.max_queue_depth = std::max(cfg.max_queue_depth, specs.size() + 1);
  vmc::serve::Server server(cfg);

  std::vector<Sample> samples(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    JobSpec s = specs[i];
    s.job_id = "load-" + std::to_string(i);
    server.submit(std::move(s));
  }
  server.drain();

  for (const vmc::serve::JobResult& r : server.take_results()) {
    const std::size_t idx =
        static_cast<std::size_t>(std::atoll(r.job_id.c_str() + 5));
    if (idx >= samples.size()) continue;
    samples[idx] = {idx, r.latency_seconds, r.cache_hit, r.status == "done"};
  }
  const auto cs = server.cache_stats();
  std::printf("cache: %llu hits / %llu misses / %llu evictions, %zu bytes\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cs.bytes);
  server.shutdown();
  return samples;
}

std::vector<Sample> run_against_daemon(const Args& args,
                                       const std::vector<JobSpec>& specs) {
  namespace spool = vmc::serve::spool;
  std::vector<Sample> samples(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "load-%06zu", i);
    JobSpec s = specs[i];
    s.job_id = name;
    spool::write_file_atomic(args.inbox + "/" + name + ".json", s.json());
  }

  std::size_t seen = 0;
  const double deadline = vmc::prof::now_seconds() + 600.0;
  while (seen < specs.size()) {
    if (vmc::prof::now_seconds() > deadline) {
      std::fprintf(stderr, "vmc_loadgen: daemon timed out (%zu/%zu results)\n",
                   seen, specs.size());
      std::exit(1);
    }
    seen = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (samples[i].done) {
        ++seen;
        continue;
      }
      char name[48];
      std::snprintf(name, sizeof name, "load-%06zu.result.json", i);
      const std::string path = args.outbox + "/" + name;
      if (!spool::file_exists(path)) continue;
      const vmc::json::JsonValue doc = vmc::json::json_parse(spool::read_file(path));
      Sample s;
      s.index = i;
      if (const auto* v = doc.find("latency_seconds")) s.latency_s = v->number;
      if (const auto* v = doc.find("cache_hit")) s.cache_hit = v->boolean;
      if (const auto* v = doc.find("status")) s.done = v->string == "done";
      samples[i] = s;
      ++seen;
    }
    if (seen < specs.size()) spool::sleep_seconds(0.05);
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const std::size_t n_jobs = vmc::bench::scaled(args.jobs);

  vmc::bench::Report report(
      "serve_loadgen", "serve load test",
      "multi-tenant traffic against vmc_serve: p50/p99 job latency and "
      "cache-hit rate over submission-order windows");

  vmc::rng::Stream ts(0x10ADC0DEULL ^ args.seed);  // traffic stream
  std::vector<JobSpec> specs;
  specs.reserve(n_jobs);
  for (std::size_t i = 0; i < n_jobs; ++i) specs.push_back(make_job(ts, i));

  const double t0 = vmc::prof::now_seconds();
  const std::vector<Sample> samples = args.inbox.empty()
                                          ? run_in_process(args, specs)
                                          : run_against_daemon(args, specs);
  const double wall = vmc::prof::now_seconds() - t0;

  // Ten submission-order windows: early windows are cold (library builds in
  // the latency path), late windows should be all warm — the report shape
  // shows the cache doing its job.
  const std::size_t kWindows = 10;
  std::size_t all_done = 0, all_hits = 0;
  for (std::size_t w = 0; w < kWindows; ++w) {
    const std::size_t lo = w * samples.size() / kWindows;
    const std::size_t hi = (w + 1) * samples.size() / kWindows;
    std::vector<double> ms;
    std::size_t hits = 0, done = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (!samples[i].done) continue;
      ++done;
      if (samples[i].cache_hit) ++hits;
      ms.push_back(samples[i].latency_s * 1000.0);
    }
    all_done += done;
    all_hits += hits;
    const double hit_rate = done > 0 ? static_cast<double>(hits) /
                                           static_cast<double>(done)
                                     : 0.0;
    const double p50 = quantile_ms(ms, 0.50);
    const double p99 = quantile_ms(ms, 0.99);
    std::printf("window %2zu: %4zu jobs | hit rate %5.3f | p50 %8.2f ms | "
                "p99 %8.2f ms\n",
                w + 1, done, hit_rate, p50, p99);
    report.row({{"window", static_cast<double>(w + 1)},
                {"jobs", static_cast<double>(done)},
                {"cache_hit_rate", hit_rate},
                {"p50_ms", p50},
                {"p99_ms", p99}});
  }

  report.note("jobs_total", static_cast<double>(n_jobs));
  report.note("jobs_done", static_cast<double>(all_done));
  report.note("overall_hit_rate",
              all_done > 0 ? static_cast<double>(all_hits) /
                                 static_cast<double>(all_done)
                           : 0.0);
  report.note("workers", static_cast<double>(args.workers));
  report.note("wall_seconds", wall);
  report.note("transport", args.inbox.empty() ? "in-process" : "file-drop");
  std::printf("%zu/%zu jobs done in %.2fs, overall hit rate %.3f\n", all_done,
              n_jobs, wall,
              all_done > 0
                  ? static_cast<double>(all_hits) / static_cast<double>(all_done)
                  : 0.0);
  return all_done == n_jobs ? 0 : 1;
}
