// vmc_run — the command-line face of VectorMC: build a Hoogenboom-Martin
// model, run the k-eigenvalue simulation, optionally tally a mesh/spectrum
// and plot the geometry.
//
//   vmc_run [options]
//     --model <assembly|small|large>   geometry + fuel (default assembly)
//     --particles <N>                  particles per generation (default 5000)
//     --inactive <N>                   inactive batches (default 3)
//     --active <N>                     active batches (default 7)
//     --seed <S>                       master seed (default 42)
//     --threads <T>                    worker threads (default 1)
//     --mode <history|event>           transport algorithm (default history)
//     --survival-biasing               implicit capture + Russian roulette
//     --grid-scale <X>                 synthetic-grid scale (default 0.3)
//     --mesh <NXY> [--groups <G>]      radial mesh tally + energy spectrum
//     --plot                           ASCII slice of the model at z = 0
//     --job-spec <file>                run a vectormc.job.v1 document (the
//                                      same schema vmc_served accepts; see
//                                      README.md) — overrides the model/run
//                                      flags above
//     --print-dispatch                 print the selected SIMD backend and
//                                      every host-dispatchable level, then
//                                      exit (the CI dispatch-sweep probe)
//     --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/eigenvalue.hpp"
#include "core/mesh_tally.hpp"
#include "core/tally.hpp"
#include "geom/plot.hpp"
#include "hm/hm_model.hpp"
#include "serve/job_spec.hpp"
#include "serve/spool.hpp"
#include "simd/simd.hpp"

namespace {

struct Args {
  std::string model = "assembly";
  std::size_t particles = 5000;
  int inactive = 3;
  int active = 7;
  std::uint64_t seed = 42;
  int threads = 1;
  std::string mode = "history";
  bool survival_biasing = false;
  double grid_scale = 0.3;
  int mesh = 0;
  int groups = 8;
  bool plot = false;
  bool print_dispatch = false;
  std::string job_spec;
};

/// --print-dispatch: one `selected=` line plus one line per backend level
/// with its host support, parseable by the CI dispatch-sweep probe.
/// Exits non-zero if dispatch() itself rejects VMC_SIMD_ISA, so a forced
/// unsupported level fails the probe the same way it fails the run.
[[noreturn]] void print_dispatch_and_exit() {
  try {
    const vmc::simd::DispatchInfo d = vmc::simd::dispatch();
    std::printf("selected=%s isa=%s simd_bits=%d lanes_f32=%d lanes_f64=%d\n",
                d.env_name, d.name, d.simd_bits, d.lanes_f32, d.lanes_f64);
    for (int i = 0; i < vmc::simd::kNumIsaLevels; ++i) {
      const auto l = static_cast<vmc::simd::IsaLevel>(i);
      std::printf("level=%s supported=%d\n", vmc::simd::isa_env_name(l),
                  vmc::simd::host_supports(l) ? 1 : 0);
    }
    std::exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmc_run: %s\n", e.what());
    std::exit(1);
  }
}

[[noreturn]] void usage(int code) {
  std::puts(
      "vmc_run --model <assembly|small|large> --particles N --inactive N\n"
      "        --active N --seed S --threads T --mode <history|event>\n"
      "        [--survival-biasing] [--grid-scale X] [--mesh NXY]\n"
      "        [--groups G] [--plot] [--job-spec FILE] [--print-dispatch]");
  std::exit(code);
}

Args parse(int argc, char** argv) {
  Args a;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--model") {
      a.model = need_value(i);
    } else if (flag == "--particles") {
      a.particles = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--inactive") {
      a.inactive = std::atoi(need_value(i));
    } else if (flag == "--active") {
      a.active = std::atoi(need_value(i));
    } else if (flag == "--seed") {
      a.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--threads") {
      a.threads = std::atoi(need_value(i));
    } else if (flag == "--mode") {
      a.mode = need_value(i);
    } else if (flag == "--survival-biasing") {
      a.survival_biasing = true;
    } else if (flag == "--grid-scale") {
      a.grid_scale = std::atof(need_value(i));
    } else if (flag == "--mesh") {
      a.mesh = std::atoi(need_value(i));
    } else if (flag == "--groups") {
      a.groups = std::atoi(need_value(i));
    } else if (flag == "--plot") {
      a.plot = true;
    } else if (flag == "--job-spec") {
      a.job_spec = need_value(i);
    } else if (flag == "--print-dispatch") {
      a.print_dispatch = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(2);
    }
  }
  if (a.model != "assembly" && a.model != "small" && a.model != "large") {
    std::fprintf(stderr, "bad --model %s\n", a.model.c_str());
    usage(2);
  }
  if (a.mode != "history" && a.mode != "event") {
    std::fprintf(stderr, "bad --mode %s\n", a.mode.c_str());
    usage(2);
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vmc;
  const Args args = parse(argc, argv);
  if (args.print_dispatch) print_dispatch_and_exit();

  // --job-spec: the CLI runs the exact document a served job would, so a
  // result can be reproduced outside the daemon byte-for-byte.
  serve::JobSpec spec;
  const bool use_spec = !args.job_spec.empty();
  if (use_spec) {
    try {
      spec = serve::parse_job_spec(serve::spool::read_file(args.job_spec));
    } catch (const serve::SpecRejected& e) {
      std::fprintf(stderr, "vmc_run: job spec rejected [%s] %s: %s\n",
                   e.error().code.c_str(), e.error().field.c_str(),
                   e.error().message.c_str());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vmc_run: %s\n", e.what());
      return 2;
    }
  }

  hm::ModelOptions mo;
  if (use_spec) {
    mo = spec.model_options();
    std::printf("vmc_run: job-spec %s model=%s nuclides=%d tier=%s T=%.0fK "
                "particles=%llu batches=%d digest=%llu\n",
                args.job_spec.c_str(), spec.model.c_str(),
                spec.effective_nuclides(), serve::tier_name(spec.tier),
                spec.temperature_K,
                static_cast<unsigned long long>(spec.particles), spec.batches,
                static_cast<unsigned long long>(spec.digest()));
  } else {
    mo.full_core = args.model != "assembly";
    mo.fuel = args.model == "large" ? hm::FuelSize::large : hm::FuelSize::small;
    mo.grid_scale = args.grid_scale;
    std::printf("vmc_run: model=%s particles=%zu batches=%d+%d mode=%s%s\n",
                args.model.c_str(), args.particles, args.inactive, args.active,
                args.mode.c_str(),
                args.survival_biasing ? " (survival biasing)" : "");
  }
  const hm::Model model = hm::build_model(mo);
  std::printf("library: %d nuclides, %zu union-grid points, %.1f MB "
              "(%.1f MB hash index)\n",
              model.library.n_nuclides(), model.library.union_grid().size(),
              static_cast<double>(model.library.union_bytes() +
                                  model.library.pointwise_bytes() +
                                  model.library.hash_bytes()) /
                  1e6,
              static_cast<double>(model.library.hash_bytes()) / 1e6);

  if (args.plot) {
    const double w = args.model == "assembly" ? 10.71 : 203.49;
    std::printf("\n%s\n",
                geom::ascii_slice(model.geometry, 0.0, {-w, -w, 0},
                                  {w, w, 0}, 76, 38, ".#o")
                    .c_str());
  }

  core::Settings st;
  if (use_spec) {
    st = spec.settings();
    st.n_threads = args.threads;  // execution width is the operator's call
  } else {
    st.n_particles = args.particles;
    st.n_inactive = args.inactive;
    st.n_active = args.active;
    st.seed = args.seed;
    st.n_threads = args.threads;
    st.mode = args.mode == "event" ? core::TransportMode::event
                                   : core::TransportMode::history;
    st.tracker.survival_biasing = args.survival_biasing;
  }
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;

  std::unique_ptr<core::MeshTally> mesh;
  if (args.mesh > 0) {
    core::MeshTally::Spec mspec;
    mspec.lower = model.source_lo;
    mspec.upper = model.source_hi;
    mspec.nx = mspec.ny = args.mesh;
    mspec.nz = 1;
    mspec.group_edges = core::log_group_edges(1e-11, 20.0, args.groups);
    mesh = std::make_unique<core::MeshTally>(mspec);
    st.mesh_tally = mesh.get();
  }

  core::Simulation sim(model.geometry, model.library, st);
  const core::RunResult r = sim.run();

  std::printf("\n%-6s %-4s %10s %10s %10s %9s\n", "gen", "", "k_coll",
              "k_track", "entropy", "sites");
  for (std::size_t g = 0; g < r.generations.size(); ++g) {
    const auto& gen = r.generations[g];
    std::printf("%-6zu %-4s %10.5f %10.5f %10.3f %9zu\n", g,
                gen.active ? "(a)" : "(i)", gen.k_collision,
                gen.k_tracklength, gen.entropy, gen.n_sites);
  }
  std::printf("\nk_eff = %.5f +- %.5f\n", r.k_eff, r.k_std);
  std::printf("rates: %.0f n/s active, %.0f n/s inactive\n", r.rate_active,
              r.rate_inactive);
  std::printf("work: %.1f lookups, %.1f collisions, %.1f crossings per "
              "particle\n",
              static_cast<double>(r.counts_total.lookups) /
                  static_cast<double>(r.counts_total.histories),
              static_cast<double>(r.counts_total.collisions) /
                  static_cast<double>(r.counts_total.histories),
              static_cast<double>(r.counts_total.crossings) /
                  static_cast<double>(r.counts_total.histories));

  if (mesh) {
    const auto spectrum = mesh->energy_spectrum();
    const double total = vmc::core::ordered_sum(spectrum);
    std::printf("\nflux spectrum (%d equal-lethargy groups, fraction):\n",
                args.groups);
    for (std::size_t g = 0; g < spectrum.size(); ++g) {
      const int bars = static_cast<int>(60.0 * spectrum[g] / total + 0.5);
      std::printf("  g%-3zu %6.3f %s\n", g, spectrum[g] / total,
                  std::string(static_cast<std::size_t>(bars), '#').c_str());
    }
  }
  return 0;
}
