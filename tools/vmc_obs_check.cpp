// vmc_obs_check: validates the observability artifacts a traced VectorMC run
// leaves behind. Used by the example smoke tests and the CI obs-smoke job to
// prove the instrumented pipeline produces well-formed, mutually consistent
// documents — not merely files that exist.
//
//   vmc_obs_check <dir>              full artifact-directory check:
//     <dir>/trace.json      parses as Chrome trace_event JSON and contains
//                           both host (pid 0) and simulated-device (pid 1)
//                           duration events, plus the per-stream device
//                           tracks ("stream <s> (modeled)" thread names and
//                           model:stream_sweep spans);
//     <dir>/metrics.prom    passes the Prometheus text-exposition validator
//                           and contains the bank-sweep, offload-retry,
//                           degraded-stage, and in-flight-depth series;
//     <dir>/manifest.json   schema vectormc.manifest.v1, non-empty machine
//                           ISA, and a k_history that exactly matches the
//                           driver's own record in <dir>/driver_k.json.
//
//   vmc_obs_check --trace <file>     single-file trace check
//   vmc_obs_check --metrics <file>   single-file exposition check
//   vmc_obs_check --bench <file>     BENCH_*.json schema (vectormc.bench.v1)
//   vmc_obs_check --serve <dir>      vmc_served artifact directory: every
//                                    vmc_serve_* metric family present as a
//                                    sample line in metrics.prom, a valid
//                                    trace.json, and a manifest.json with a
//                                    non-empty jobs[] whose records carry
//                                    job_id/tenant/status/digest
//
// Exit status 0 on success; 1 with one line per failure otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using vmc::obs::JsonValue;

int n_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "vmc_obs_check: FAIL: %s\n", what.c_str());
  ++n_failures;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail("cannot read " + path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool parse_file(const std::string& path, JsonValue* out) {
  std::string text;
  if (!read_file(path, &text)) return false;
  try {
    *out = vmc::obs::json_parse(text);
  } catch (const std::exception& e) {
    fail(path + " is not valid JSON: " + e.what());
    return false;
  }
  return true;
}

const JsonValue* object_get(const JsonValue& v, const char* key) {
  return v.type == JsonValue::Type::object ? v.find(key) : nullptr;
}

// --- trace ---------------------------------------------------------------

// aux_pid/aux_label name the second process lane the trace must contain in
// addition to host (pid 0): the simulated device (pid 1) for traced runs,
// the serve control plane (pid 2) for daemon runs.
void check_trace(const std::string& path, double aux_pid = 1.0,
                 const char* aux_label = "simulated-device") {
  JsonValue doc;
  if (!parse_file(path, &doc)) return;
  const JsonValue* events = object_get(doc, "traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::array) {
    fail(path + ": missing traceEvents array");
    return;
  }
  std::size_t host_spans = 0;
  std::size_t device_spans = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = object_get(e, "ph");
    const JsonValue* pid = object_get(e, "pid");
    if (ph == nullptr || pid == nullptr) {
      fail(path + ": event without ph/pid");
      return;
    }
    if (ph->string != "X") continue;
    const JsonValue* ts = object_get(e, "ts");
    const JsonValue* dur = object_get(e, "dur");
    const JsonValue* name = object_get(e, "name");
    if (ts == nullptr || dur == nullptr || name == nullptr ||
        name->string.empty()) {
      fail(path + ": complete event missing ts/dur/name");
      return;
    }
    if (dur->number < 0.0) {
      fail(path + ": negative-duration span '" + name->string + "'");
      return;
    }
    if (pid->number == 0.0) ++host_spans;
    if (pid->number == aux_pid) ++device_spans;
  }
  if (host_spans == 0) fail(path + ": no host (pid 0) duration events");
  if (device_spans == 0) {
    fail(path + ": no " + aux_label + " (pid " +
         std::to_string(static_cast<int>(aux_pid)) + ") duration events");
  }
}

// Per-stream device tracks: the pipelined offload path injects, for every
// stream s of each device that completed chunks, a modeled track named
// "stream <s> (modeled)" carrying model:stream_transfer / model:stream_sweep
// spans. Their absence means the scheduler ran but the per-stream
// observability went dead.
void check_stream_tracks(const std::string& path) {
  JsonValue doc;
  if (!parse_file(path, &doc)) return;
  const JsonValue* events = object_get(doc, "traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::array) return;
  std::size_t stream_names = 0;
  std::size_t stream_spans = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = object_get(e, "ph");
    const JsonValue* name = object_get(e, "name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->string == "M" && name->string == "thread_name") {
      const JsonValue* args = object_get(e, "args");
      const JsonValue* tn = args ? object_get(*args, "name") : nullptr;
      if (tn != nullptr && tn->string.rfind("stream ", 0) == 0) ++stream_names;
    }
    if (ph->string == "X" && name->string == "model:stream_sweep") {
      ++stream_spans;
    }
  }
  if (stream_names == 0) {
    fail(path + ": no per-stream thread_name metadata ('stream <s> ...')");
  }
  if (stream_spans == 0) {
    fail(path + ": no model:stream_sweep spans on the device tracks");
  }
}

// --- metrics -------------------------------------------------------------

void check_metrics(const std::string& path, bool require_offload_series) {
  std::string text;
  if (!read_file(path, &text)) return;
  std::string err;
  if (!vmc::obs::prometheus_validate(text, &err)) {
    fail(path + " fails exposition validation: " + err);
    return;
  }
  if (!require_offload_series) return;
  for (const char* series :
       {"vmc_bank_sweep_particles_total", "vmc_offload_retries_total",
        "vmc_offload_degraded_stages_total", "vmc_offload_inflight_chunks"}) {
    // Must appear as a sample line, not merely in a HELP comment.
    bool found = false;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind(series, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) fail(path + ": missing series " + series);
  }
}

// --- manifest ------------------------------------------------------------

void check_manifest(const std::string& manifest_path,
                    const std::string& driver_k_path) {
  JsonValue doc;
  if (!parse_file(manifest_path, &doc)) return;

  const JsonValue* schema = object_get(doc, "schema");
  if (schema == nullptr || schema->string != "vectormc.manifest.v1") {
    fail(manifest_path + ": schema is not vectormc.manifest.v1");
    return;
  }
  const JsonValue* machine = object_get(doc, "machine");
  const JsonValue* isa = machine ? object_get(*machine, "isa") : nullptr;
  if (isa == nullptr || isa->string.empty()) {
    fail(manifest_path + ": machine.isa missing or empty");
  }
  const JsonValue* k_hist = object_get(doc, "k_history");
  if (k_hist == nullptr || k_hist->type != JsonValue::Type::array) {
    fail(manifest_path + ": k_history missing");
    return;
  }

  // device_health records (when present) must carry the stream-scheduler
  // fields: depth >= 1 and a numeric in-flight high-water mark.
  const JsonValue* dh = object_get(doc, "device_health");
  if (dh != nullptr && dh->type == JsonValue::Type::array) {
    for (std::size_t i = 0; i < dh->array.size(); ++i) {
      const JsonValue& rec = dh->array[i];
      const JsonValue* streams = object_get(rec, "streams");
      const JsonValue* hw = object_get(rec, "inflight_high_water");
      if (streams == nullptr || streams->type != JsonValue::Type::number ||
          streams->number < 1.0) {
        fail(manifest_path + ": device_health[" + std::to_string(i) +
             "] missing streams >= 1");
      }
      if (hw == nullptr || hw->type != JsonValue::Type::number ||
          hw->number < 0.0) {
        fail(manifest_path + ": device_health[" + std::to_string(i) +
             "] missing numeric inflight_high_water");
      }
    }
  }

  JsonValue driver;
  if (!parse_file(driver_k_path, &driver)) return;
  const JsonValue* driver_k = object_get(driver, "k_history");
  if (driver_k == nullptr || driver_k->type != JsonValue::Type::array) {
    fail(driver_k_path + ": k_history missing");
    return;
  }
  if (k_hist->array.size() != driver_k->array.size()) {
    fail("manifest k_history has " + std::to_string(k_hist->array.size()) +
         " entries, driver recorded " +
         std::to_string(driver_k->array.size()));
    return;
  }
  if (k_hist->array.empty()) {
    fail("manifest k_history is empty — the traced run produced no "
         "generations");
    return;
  }
  for (std::size_t i = 0; i < k_hist->array.size(); ++i) {
    // Both documents were printed by the same %.17g writer from the same
    // doubles, so exact equality is the correct test: any difference means
    // the manifest captured a different run than the driver.
    if (k_hist->array[i].number != driver_k->array[i].number) {
      fail("k_history mismatch at generation " + std::to_string(i) + ": " +
           std::to_string(k_hist->array[i].number) + " vs " +
           std::to_string(driver_k->array[i].number));
      return;
    }
  }
}

// --- bench ---------------------------------------------------------------

void check_bench(const std::string& path) {
  JsonValue doc;
  if (!parse_file(path, &doc)) return;
  const JsonValue* schema = object_get(doc, "schema");
  if (schema == nullptr || schema->string != "vectormc.bench.v1") {
    fail(path + ": schema is not vectormc.bench.v1");
    return;
  }
  for (const char* key : {"name", "artifact", "description", "isa"}) {
    const JsonValue* v = object_get(doc, key);
    if (v == nullptr || v->type != JsonValue::Type::string ||
        v->string.empty()) {
      fail(path + ": missing or empty string field '" + key + "'");
    }
  }
  const JsonValue* rows = object_get(doc, "rows");
  if (rows == nullptr || rows->type != JsonValue::Type::array ||
      rows->array.empty()) {
    fail(path + ": rows missing or empty");
    return;
  }
  for (const JsonValue& row : rows->array) {
    if (row.type != JsonValue::Type::object || row.object.empty()) {
      fail(path + ": row is not a non-empty object");
      return;
    }
    for (const auto& [k, v] : row.object) {
      if (v.type != JsonValue::Type::number &&
          v.type != JsonValue::Type::null) {
        fail(path + ": row cell '" + k + "' is not numeric");
        return;
      }
    }
  }
}

// --- serve ---------------------------------------------------------------

void check_serve(const std::string& dir) {
  // Trace: the daemon injects per-job serve spans under pid 2 alongside the
  // workers' host simulation spans.
  check_trace(dir + "/trace.json", /*aux_pid=*/2.0, "serve");

  // Metrics: exposition-valid, and every serve family present as a sample
  // line (not merely a HELP comment) — a family that never registered means
  // a metric path in the server went dead.
  const std::string prom = dir + "/metrics.prom";
  std::string text;
  if (read_file(prom, &text)) {
    std::string err;
    if (!vmc::obs::prometheus_validate(text, &err)) {
      fail(prom + " fails exposition validation: " + err);
    } else {
      for (const char* series :
           {"vmc_serve_jobs_submitted_total", "vmc_serve_admission_rejects_total",
            "vmc_serve_jobs_completed_total", "vmc_serve_cache_hits_total",
            "vmc_serve_cache_misses_total", "vmc_serve_cache_evictions_total",
            "vmc_serve_worker_deaths_total", "vmc_serve_generations_total",
            "vmc_serve_queue_depth", "vmc_serve_cache_bytes",
            "vmc_serve_job_latency_seconds"}) {
        bool found = false;
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
          if (line.rfind(series, 0) == 0) {
            found = true;
            break;
          }
        }
        if (!found) fail(prom + ": missing series " + series);
      }
    }
  }

  // Manifest: served runs carry a jobs[] ledger instead of a driver_k.json
  // cross-check — each record must identify the job and its cache outcome.
  const std::string manifest = dir + "/manifest.json";
  JsonValue doc;
  if (!parse_file(manifest, &doc)) return;
  const JsonValue* schema = object_get(doc, "schema");
  if (schema == nullptr || schema->string != "vectormc.manifest.v1") {
    fail(manifest + ": schema is not vectormc.manifest.v1");
    return;
  }
  const JsonValue* kind = object_get(doc, "run_kind");
  if (kind == nullptr || kind->string != "vmc_served") {
    fail(manifest + ": run_kind is not vmc_served");
  }
  const JsonValue* jobs = object_get(doc, "jobs");
  if (jobs == nullptr || jobs->type != JsonValue::Type::array ||
      jobs->array.empty()) {
    fail(manifest + ": jobs array missing or empty");
    return;
  }
  for (std::size_t i = 0; i < jobs->array.size(); ++i) {
    const JsonValue& job = jobs->array[i];
    for (const char* key : {"job_id", "tenant", "status"}) {
      const JsonValue* v = object_get(job, key);
      if (v == nullptr || v->type != JsonValue::Type::string ||
          v->string.empty()) {
        fail(manifest + ": jobs[" + std::to_string(i) +
             "] missing string field '" + key + "'");
        return;
      }
    }
    for (const char* key : {"digest", "latency_seconds"}) {
      const JsonValue* v = object_get(job, key);
      if (v == nullptr || v->type != JsonValue::Type::number) {
        fail(manifest + ": jobs[" + std::to_string(i) +
             "] missing numeric field '" + key + "'");
        return;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    check_trace(argv[2]);
  } else if (argc == 3 && std::strcmp(argv[1], "--metrics") == 0) {
    check_metrics(argv[2], /*require_offload_series=*/false);
  } else if (argc == 3 && std::strcmp(argv[1], "--bench") == 0) {
    check_bench(argv[2]);
  } else if (argc == 3 && std::strcmp(argv[1], "--serve") == 0) {
    check_serve(argv[2]);
  } else if (argc == 2 && argv[1][0] != '-') {
    const std::string dir = argv[1];
    check_trace(dir + "/trace.json");
    check_stream_tracks(dir + "/trace.json");
    check_metrics(dir + "/metrics.prom", /*require_offload_series=*/true);
    check_manifest(dir + "/manifest.json", dir + "/driver_k.json");
  } else {
    std::fprintf(stderr,
                 "usage: vmc_obs_check <artifact-dir>\n"
                 "       vmc_obs_check --trace <trace.json>\n"
                 "       vmc_obs_check --metrics <metrics.prom>\n"
                 "       vmc_obs_check --bench <BENCH_*.json>\n"
                 "       vmc_obs_check --serve <artifact-dir>\n");
    return 2;
  }
  if (n_failures == 0) {
    std::printf("vmc_obs_check: OK\n");
    return 0;
  }
  return 1;
}
