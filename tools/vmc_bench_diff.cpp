// vmc_bench_diff: compare two `vectormc.bench.v1` benchmark reports (or a
// directory of candidate BENCH_*.json files against committed baselines) and
// fail on performance regressions.
//
// Series direction is inferred from the cell name, matching the harnesses'
// naming convention (bench/bench_util.hpp):
//   *_per_s, *_rate, *speedup, *ratio   higher is better
//   *_s, *_ms, *_seconds, *_bytes       lower is better
//   anything else                       informational (identity cells like
//                                       n_banked, section, compact_queues)
// A candidate value is a REGRESSION when it is worse than the baseline by
// more than the series' fractional tolerance (--tolerance, overridable per
// series with --series name=tol). Schema problems — wrong schema string,
// mismatched report name, mismatched bench_scale, mismatched isa, row
// identity drift — are hard errors: a baseline measured at one scale must
// never be compared against a candidate run at another, and a baseline
// measured on one SIMD backend must never gate a candidate dispatched to a
// different one (baselines live per-ISA under bench/baselines/<isa>/).
//
// Exit codes: 0 = no regressions, 1 = regression(s), 2 = usage/schema error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace {

using vmc::obs::JsonValue;

enum class Direction : unsigned char { higher_better, lower_better, info };

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Direction direction_of(std::string_view name) {
  // Higher-better suffixes first: "_per_s" would otherwise match "_s".
  for (const char* hb : {"_per_s", "_rate", "speedup", "ratio"}) {
    if (ends_with(name, hb)) return Direction::higher_better;
  }
  for (const char* lb : {"_s", "_ms", "_seconds", "_bytes"}) {
    if (ends_with(name, lb)) return Direction::lower_better;
  }
  return Direction::info;
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::higher_better: return "higher-better";
    case Direction::lower_better: return "lower-better";
    case Direction::info: return "info";
  }
  return "?";
}

struct Options {
  double tolerance = 0.25;
  std::map<std::string, double> series_tolerance;
  bool quiet = false;
};

struct CompareResult {
  int regressions = 0;
  int schema_errors = 0;
  int compared = 0;
};

double series_tolerance(const Options& opt, const std::string& name) {
  const auto it = opt.series_tolerance.find(name);
  return it != opt.series_tolerance.end() ? it->second : opt.tolerance;
}

/// Validate the parts of the vectormc.bench.v1 shape this tool relies on.
bool check_shape(const JsonValue& doc, const std::string& label,
                 std::string* err) {
  if (!doc.is_object()) {
    *err = label + ": top level is not an object";
    return false;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "vectormc.bench.v1") {
    *err = label + ": schema is not \"vectormc.bench.v1\"";
    return false;
  }
  for (const char* key : {"name", "isa"}) {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_string()) {
      *err = label + ": missing string member \"" + key + "\"";
      return false;
    }
  }
  const JsonValue* scale = doc.find("bench_scale");
  if (scale == nullptr || !scale->is_number()) {
    *err = label + ": missing numeric member \"bench_scale\"";
    return false;
  }
  const JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    *err = label + ": missing \"rows\" array";
    return false;
  }
  for (std::size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    if (!row.is_object() || row.object.empty()) {
      *err = label + ": row " + std::to_string(i) + " is not a non-empty object";
      return false;
    }
    for (const auto& [k, v] : row.object) {
      if (!v.is_number()) {
        *err = label + ": row " + std::to_string(i) + " cell \"" + k +
               "\" is not a number";
        return false;
      }
    }
  }
  return true;
}

CompareResult compare_reports(const JsonValue& base, const JsonValue& cand,
                              const Options& opt) {
  CompareResult res;
  std::string err;
  if (!check_shape(base, "baseline", &err) ||
      !check_shape(cand, "candidate", &err)) {
    std::fprintf(stderr, "vmc_bench_diff: %s\n", err.c_str());
    res.schema_errors = 1;
    return res;
  }
  const std::string& name = base.find("name")->string;
  if (cand.find("name")->string != name) {
    std::fprintf(stderr,
                 "vmc_bench_diff: report name mismatch: baseline \"%s\" vs "
                 "candidate \"%s\"\n",
                 name.c_str(), cand.find("name")->string.c_str());
    res.schema_errors = 1;
    return res;
  }
  const double base_scale = base.find("bench_scale")->number;
  const double cand_scale = cand.find("bench_scale")->number;
  if (base_scale != cand_scale) {
    std::fprintf(stderr,
                 "vmc_bench_diff: %s: bench_scale mismatch (baseline %g, "
                 "candidate %g) — measurements are not comparable\n",
                 name.c_str(), base_scale, cand_scale);
    res.schema_errors = 1;
    return res;
  }
  if (base.find("isa")->string != cand.find("isa")->string) {
    // A cross-ISA comparison is meaningless, in both directions: AVX-512
    // rates vs an SSE2 baseline "pass" vacuously, and the reverse fails
    // spuriously. Baselines are committed per backend; compare like with
    // like or refresh the <isa> baseline directory.
    std::fprintf(stderr,
                 "vmc_bench_diff: %s: ISA mismatch (baseline %s, candidate "
                 "%s) — baselines are per-backend; compare against "
                 "bench/baselines/<isa>/ for the dispatched backend\n",
                 name.c_str(), base.find("isa")->string.c_str(),
                 cand.find("isa")->string.c_str());
    res.schema_errors = 1;
    return res;
  }

  const auto& brows = base.find("rows")->array;
  const auto& crows = cand.find("rows")->array;
  if (brows.size() != crows.size()) {
    std::fprintf(stderr,
                 "vmc_bench_diff: %s: row count mismatch (baseline %zu, "
                 "candidate %zu)\n",
                 name.c_str(), brows.size(), crows.size());
    res.schema_errors = 1;
    return res;
  }

  if (!opt.quiet) std::printf("%s (%zu rows):\n", name.c_str(), brows.size());
  for (std::size_t i = 0; i < brows.size(); ++i) {
    const auto& brow = brows[i].object;
    const auto& crow = crows[i].object;
    // Row identity: rows are matched by index; the first cell is the row's
    // key (n_banked=1000, section=3, ...) and must agree exactly.
    if (brow.front().first != crow.front().first ||
        brow.front().second.number != crow.front().second.number) {
      std::fprintf(stderr,
                   "vmc_bench_diff: %s: row %zu identity mismatch (baseline "
                   "%s=%g, candidate %s=%g)\n",
                   name.c_str(), i, brow.front().first.c_str(),
                   brow.front().second.number, crow.front().first.c_str(),
                   crow.front().second.number);
      ++res.schema_errors;
      continue;
    }
    const std::string row_key =
        brow.front().first + "=" +
        [&] {
          std::ostringstream os;
          os << brow.front().second.number;
          return os.str();
        }();
    for (const auto& [cell, bval] : brow) {
      const JsonValue* cv = crows[i].find(cell);
      if (cv == nullptr) {
        std::fprintf(stderr,
                     "vmc_bench_diff: %s: row %zu (%s) lost cell \"%s\"\n",
                     name.c_str(), i, row_key.c_str(), cell.c_str());
        ++res.schema_errors;
        continue;
      }
      const Direction dir = direction_of(cell);
      const double b = bval.number;
      const double c = cv->number;
      if (dir == Direction::info || b == 0.0) continue;
      ++res.compared;
      const double tol = series_tolerance(opt, cell);
      const double rel = (c - b) / std::abs(b);
      const bool regressed = dir == Direction::higher_better ? rel < -tol
                                                             : rel > tol;
      if (regressed) ++res.regressions;
      if (!opt.quiet || regressed) {
        std::printf("  %-12s %-28s %12.4g -> %12.4g  %+7.1f%%  [%s, tol "
                    "%.0f%%]%s\n",
                    row_key.c_str(), cell.c_str(), b, c, 100.0 * rel,
                    direction_name(dir), 100.0 * tol,
                    regressed ? "  REGRESSED" : "");
      }
    }
  }
  return res;
}

std::string read_file(const std::filesystem::path& p, std::string* err) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *err = "cannot open " + p.string();
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool load_report(const std::filesystem::path& p, JsonValue* out) {
  std::string err;
  const std::string text = read_file(p, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "vmc_bench_diff: %s\n", err.c_str());
    return false;
  }
  try {
    *out = vmc::obs::json_parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmc_bench_diff: %s: %s\n", p.string().c_str(),
                 e.what());
    return false;
  }
  return true;
}

int compare_files(const std::filesystem::path& base_path,
                  const std::filesystem::path& cand_path, const Options& opt) {
  JsonValue base, cand;
  if (!load_report(base_path, &base) || !load_report(cand_path, &cand)) return 2;
  const CompareResult r = compare_reports(base, cand, opt);
  if (r.schema_errors > 0) return 2;
  if (r.regressions > 0) {
    std::printf("%d regression(s) across %d compared series\n", r.regressions,
                r.compared);
    return 1;
  }
  std::printf("OK: %d series within tolerance\n", r.compared);
  return 0;
}

/// Directory mode: every BENCH_*.json in `baselines` must exist in
/// `candidates` and pass; extra candidate reports (new benches without a
/// committed baseline yet) are noted but do not fail.
int compare_dirs(const std::filesystem::path& baselines,
                 const std::filesystem::path& candidates, const Options& opt) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(baselines) || !fs::is_directory(candidates)) {
    std::fprintf(stderr, "vmc_bench_diff: %s and %s must be directories\n",
                 baselines.string().c_str(), candidates.string().c_str());
    return 2;
  }
  std::vector<fs::path> base_files;
  for (const auto& e : fs::directory_iterator(baselines)) {
    const std::string f = e.path().filename().string();
    if (e.is_regular_file() && f.rfind("BENCH_", 0) == 0 &&
        ends_with(f, ".json")) {
      base_files.push_back(e.path());
    }
  }
  std::sort(base_files.begin(), base_files.end());
  if (base_files.empty()) {
    std::fprintf(stderr, "vmc_bench_diff: no BENCH_*.json baselines in %s\n",
                 baselines.string().c_str());
    return 2;
  }
  int worst = 0;
  for (const auto& bp : base_files) {
    const fs::path cp = candidates / bp.filename();
    if (!fs::exists(cp)) {
      std::fprintf(stderr, "vmc_bench_diff: candidate report %s is missing\n",
                   cp.string().c_str());
      worst = std::max(worst, 2);
      continue;
    }
    worst = std::max(worst, compare_files(bp, cp, opt));
  }
  return worst;
}

// --------------------------------------------------------------------------
// Self-test: the comparison semantics this tool promises, proven in-process
// (registered as a CTest, so CI cannot ship a vmc_bench_diff that waves
// regressions through).
// --------------------------------------------------------------------------

std::string make_report(double scale, double rate, double seconds,
                        double speedup, double n = 1000.0,
                        const char* isa = "testisa") {
  vmc::obs::JsonWriter w;
  w.begin_object();
  w.member("schema", "vectormc.bench.v1");
  w.member("name", "selftest");
  w.member("artifact", "self-test");
  w.member("description", "synthetic");
  w.member("isa", isa);
  w.member("simd_bits", 512);
  w.member("bench_scale", scale);
  w.key("notes").begin_object();
  w.end_object();
  w.key("rows").begin_array();
  w.begin_object();
  w.member("n_banked", n);
  w.member("lookup_per_s", rate);
  w.member("sweep_s", seconds);
  w.member("queue_speedup", speedup);
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

#define SELF_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "self-test FAILED at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      return 1;                                                            \
    }                                                                      \
  } while (0)

int self_test() {
  Options opt;
  opt.tolerance = 0.10;
  opt.quiet = true;

  SELF_CHECK(direction_of("host_banked_per_s") == Direction::higher_better);
  SELF_CHECK(direction_of("queue_speedup") == Direction::higher_better);
  SELF_CHECK(direction_of("model_ratio") == Direction::higher_better);
  SELF_CHECK(direction_of("union_s") == Direction::lower_better);
  SELF_CHECK(direction_of("bank_bytes") == Direction::lower_better);
  SELF_CHECK(direction_of("n_banked") == Direction::info);
  SELF_CHECK(direction_of("compact_queues") == Direction::info);

  const JsonValue base =
      vmc::obs::json_parse(make_report(1.0, 1e6, 2.0, 1.5));

  // Identical reports: clean pass.
  auto r = compare_reports(base, base, opt);
  SELF_CHECK(r.schema_errors == 0 && r.regressions == 0 && r.compared == 3);

  // Small drift inside tolerance: pass.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 0.95e6, 2.1, 1.45)), opt);
  SELF_CHECK(r.schema_errors == 0 && r.regressions == 0);

  // Rate collapse (higher-better): regression.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 0.5e6, 2.0, 1.5)), opt);
  SELF_CHECK(r.regressions == 1);

  // Time blow-up (lower-better): regression.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 1e6, 3.0, 1.5)), opt);
  SELF_CHECK(r.regressions == 1);

  // Faster is never a regression, in either direction.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 2e6, 0.5, 3.0)), opt);
  SELF_CHECK(r.regressions == 0);

  // Per-series tolerance override beats the global one.
  Options loose = opt;
  loose.series_tolerance["lookup_per_s"] = 0.60;
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 0.5e6, 2.0, 1.5)), loose);
  SELF_CHECK(r.regressions == 0);

  // bench_scale mismatch: schema error, never a silent pass.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(0.1, 1e6, 2.0, 1.5)), opt);
  SELF_CHECK(r.schema_errors == 1);

  // ISA mismatch: schema error (per-ISA baselines), never a silent pass.
  r = compare_reports(
      base,
      vmc::obs::json_parse(make_report(1.0, 1e6, 2.0, 1.5, 1000.0, "AVX2")),
      opt);
  SELF_CHECK(r.schema_errors == 1 && r.regressions == 0);

  // Row identity drift (different n_banked): schema error.
  r = compare_reports(
      base, vmc::obs::json_parse(make_report(1.0, 1e6, 2.0, 1.5, 2000.0)),
      opt);
  SELF_CHECK(r.schema_errors == 1);

  // Wrong schema string: schema error.
  JsonValue bad = base;
  for (auto& [k, v] : bad.object) {
    if (k == "schema") v.string = "vectormc.bench.v2";
  }
  r = compare_reports(base, bad, opt);
  SELF_CHECK(r.schema_errors == 1);

  std::printf("vmc_bench_diff self-test: all checks passed\n");
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: vmc_bench_diff [options] <baseline.json> <candidate.json>\n"
      "       vmc_bench_diff [options] --baselines <dir> <candidate_dir>\n"
      "       vmc_bench_diff --self-test\n"
      "options:\n"
      "  --tolerance X      global fractional tolerance (default 0.25)\n"
      "  --series NAME=TOL  per-series tolerance override (repeatable)\n"
      "  --quiet            only print regressions and errors\n"
      "exit: 0 = within tolerance, 1 = regression, 2 = usage/schema error\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::filesystem::path baselines;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--self-test") return self_test();
    if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--tolerance" && i + 1 < argc) {
      opt.tolerance = std::atof(argv[++i]);
    } else if (a == "--baselines" && i + 1 < argc) {
      baselines = argv[++i];
    } else if (a == "--series" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        usage();
        return 2;
      }
      opt.series_tolerance[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (!a.empty() && a[0] == '-') {
      usage();
      return 2;
    } else {
      positional.emplace_back(a);
    }
  }
  if (!baselines.empty()) {
    if (positional.size() != 1) {
      usage();
      return 2;
    }
    return compare_dirs(baselines, positional[0], opt);
  }
  if (positional.size() != 2) {
    usage();
    return 2;
  }
  return compare_files(positional[0], positional[1], opt);
}
