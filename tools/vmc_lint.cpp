// vmc_lint — VectorMC-specific static checks the compiler can't do.
//
// The SIMD/banking design only wins if a handful of project invariants hold
// everywhere, forever. Each is enforced here and registered as a CTest.
//
// The tool runs in three passes:
//   1. a lightweight lexer per file: comments and string/char literals are
//      blanked (line structure preserved), preprocessor lines are diverted to
//      a directive record, and the rest becomes a token stream with per-token
//      brace depth — so rules match real code, never prose or macros;
//   2. per-file rules over lines (the legacy regex family) and over tokens
//      (the SIMD-portability family below);
//   3. cross-file passes: rng-stream derivation overlap, and the stale-allow
//      audit of every suppression marker.
//
// Line-scoped legacy rules:
//
//   raw-alloc        No raw new[] / malloc-family allocation in the SIMD,
//                    particle-bank, or cross-section layers: every kernel
//                    buffer must come from vmc::simd::aligned allocation so
//                    the 64-byte-alignment contract (paper, Algorithm 4)
//                    can't silently rot.
//   unaligned-simd-buffer
//                    No plain std::vector<arithmetic> in src/simd/ or the
//                    banked lookup kernels — use simd::aligned_vector.
//   raw-rand         No rand()/std::rand()/srand() outside src/rng/: the
//                    reproducibility contract requires every draw to come
//                    from a per-particle LCG stream.
//   hot-loop-mutex   No mutex/lock/condvar types in per-particle transport
//                    code (physics, geometry, multipole, SoA bank, history
//                    and event loops). Cross-thread traffic must go through
//                    the sanctioned types (ConcurrentBank, TallyAccumulator,
//                    ThreadPool) that live outside the hot path.
//   stream-overlap   Two direct rng::Stream constructions with the same
//                    seed-derivation expression produce the SAME stream —
//                    a silent correlation bug. Every direct construction in
//                    library code must use a distinct derivation (or
//                    Stream::for_particle).
//   raw-clock        No direct std::chrono::*_clock::now() outside src/prof/
//                    and src/obs/: every timestamp must flow through
//                    prof::now_seconds() (one epoch, one clock) or the obs
//                    tracer, or traces/metrics/profiles silently disagree
//                    about what "now" means. (bench/ is exempt by scope; the
//                    harnesses there already use prof::now_seconds().)
//   unchecked-io     No statement-position fwrite/fread whose return value
//                    is discarded: a short write is how a full disk turns
//                    into a corrupt statepoint. Check the count like
//                    statepoint.cpp's CheckedWriter/CheckedReader (that file
//                    is the sanctioned exception — its helpers ARE the
//                    check).
//   hot-loop-binary-search
//                    No std::upper_bound/std::lower_bound outside
//                    src/xsdata/: the hash-binned energy-grid accelerator
//                    (xsdata/hash_grid.hpp) exists so per-particle grid
//                    searches never re-grow an O(log n) binary search in
//                    transport code. Grid resolution must go through
//                    Library's lookup kernels (or HashGrid directly).
//   blocking-in-worker
//                    No sleeps (std::this_thread::sleep_for/until) and no
//                    blocking file I/O (fstream family, fopen,
//                    std::filesystem) in src/serve/ outside the sanctioned
//                    spool helpers (src/serve/spool.*): a worker that blocks
//                    on the filesystem stalls every queued tenant behind it,
//                    and a sleep in the serve control plane turns latency
//                    SLOs into lottery tickets. All spool traffic goes
//                    through serve::spool, which is the one place allowed to
//                    touch the disk and the clock.
//
// Token-scoped SIMD-portability rules (the backend-confinement precondition
// for the multi-ISA Vec<T, Backend> work, ROADMAP item 1):
//
//   raw-intrinsic    No _mm*/__m128/__m256/__m512/__mmask tokens and no
//                    *intrin.h includes outside src/simd/: ISA-specific code
//                    must live behind Vec/Mask, or runtime dispatch breaks
//                    the day lane width becomes a template parameter.
//   hardcoded-lane-width
//                    No literal lane counts in kernels, banks, event queues,
//                    or remainder math: Vec<float, 8>, `j += 16` strides,
//                    `n % 8` / `n / 8 * 8` round-downs, and width-named
//                    constants bound to literals all pin the code to one
//                    ISA. Use simd::width_v<T> / Vec::width.
//   unmasked-remainder
//                    A loop striding by the vector width over a bank must
//                    pair with a load_partial/store_partial masked tail in
//                    the same enclosing block (the paper's Algorithm-4
//                    remainder contract) — scalar tail loops reintroduce the
//                    very divergence the masked idiom removes. Padded-by-
//                    construction loops carry an allow marker.
//   float-order-dependence
//                    No std::accumulate / raw `+=` reductions over float
//                    spans on tally/k-eff paths outside the sanctioned
//                    helpers (core::ordered_sum*, TallyAccumulator):
//                    summation order is part of the event==history and
//                    recovery==healthy bit-exactness contracts.
//   naked-catch-in-exec
//                    No `catch (...)` in src/exec/ that neither rethrows
//                    (`throw;`) nor routes through a named resil:: recovery
//                    helper: the executor's fault-domain cascade (retry ->
//                    reschedule -> host floor) only stays observable and
//                    deterministic if every swallowed fault is accounted for
//                    by the resilience layer, never silently dropped.
//   stale-allow      An allow marker that no longer suppresses anything (or
//                    names an unknown rule) is itself an error, so exception
//                    lists can't rot.
//
// A deliberate exception is annotated on its line (or the line above) with:
//     vmc-lint: allow(<rule-name>)
//
// Usage:
//   vmc_lint [--json] <repo-root>   scan src/, tools/, bench/, examples/
//   vmc_lint --self-test            run each rule against seeded positive and
//                                   negative snippets
//
// Exit codes: 0 = clean tree, 1 = violations found, 2 = bad invocation or
// I/O error (so CI can tell a dirty tree from a broken tool).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool violation_less(const Violation& a, const Violation& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

struct Token {
  enum class Kind { ident, number, punct };
  Kind kind;
  std::string text;
  std::size_t line = 0;  // 1-based
  int depth = 0;         // brace depth at the token
};

struct PpLine {
  std::size_t line = 0;  // 1-based
  std::string text;      // comment/string-blanked directive text
};

struct Marker {
  std::string rule;
  std::size_t line = 0;  // 1-based
  bool used = false;
};

struct SourceFile {
  std::string rel_path;              // forward-slash path relative to root
  std::vector<std::string> raw;      // original lines (marker detection)
  std::vector<std::string> code;     // comments/strings blanked
  std::vector<Token> tokens;         // token stream (preprocessor excluded)
  std::vector<PpLine> pp;            // preprocessor directives
  std::vector<Marker> markers;       // allow markers, usage-tracked
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Blank out comments and string/char literals, preserving line structure so
// reported line numbers match the file. Rules then match real code only,
// while allow-markers are still found in the raw text.
std::vector<std::string> strip_comments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string r;
    r.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          r += "  ";
          i += 2;
        } else {
          r += ' ';
          ++i;
        }
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // rest of line is a comment
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        r += "  ";
        i += 2;
      } else if (line[i] == '"' || line[i] == '\'') {
        const char q = line[i];
        r += q;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            r += "  ";
            i += 2;
          } else if (line[i] == q) {
            r += q;
            ++i;
            break;
          } else {
            r += ' ';
            ++i;
          }
        }
      } else {
        r += line[i];
        ++i;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Lex the blanked code into a token stream, diverting preprocessor lines
// (including backslash continuations) into f.pp. Tracks brace depth: a '{'
// carries the depth outside it, its matching '}' the same value, so "first
// '}' with depth < d" finds the end of the block enclosing a token at depth
// d.
void tokenize(SourceFile& f) {
  static constexpr std::string_view kTwoChar[] = {
      "+=", "-=", "*=", "/=", "%=", "::", "->", "==", "!=",
      "<=", ">=", "&&", "||", "++", "--", "<<", ">>"};
  int depth = 0;
  bool pp_cont = false;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    const std::size_t first = line.find_first_not_of(" \t");
    if (pp_cont || (first != std::string::npos && line[first] == '#')) {
      f.pp.push_back({li + 1, line});
      pp_cont = !line.empty() && line.back() == '\\';
      continue;
    }
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      Token t;
      t.line = li + 1;
      t.depth = depth;
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < line.size() && ident_char(line[j])) ++j;
        t.kind = Token::Kind::ident;
        t.text = line.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i + 1;
        while (j < line.size()) {
          const char d = line[j];
          if (ident_char(d) || d == '.' || d == '\'') {
            // exponent sign belongs to the number: 1e-3, 0x1p+2
            if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                j + 1 < line.size() &&
                (line[j + 1] == '+' || line[j + 1] == '-')) {
              j += 2;
            } else {
              ++j;
            }
          } else {
            break;
          }
        }
        t.kind = Token::Kind::number;
        t.text = line.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::Kind::punct;
        t.text = std::string(1, c);
        for (const std::string_view op : kTwoChar) {
          if (line.compare(i, op.size(), op) == 0) {
            t.text = std::string(op);
            break;
          }
        }
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          depth = depth > 0 ? depth - 1 : 0;
          t.depth = depth;
        }
        i += t.text.size();
      }
      f.tokens.push_back(std::move(t));
    }
  }
}

const std::regex kAllowMarker(R"(vmc-lint:\s*allow\(([A-Za-z0-9-]+)\))");

void parse_markers(SourceFile& f) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kAllowMarker);
         it != std::sregex_iterator(); ++it) {
      f.markers.push_back({(*it)[1].str(), i + 1, false});
    }
  }
}

SourceFile make_file(const std::string& rel, const std::string& content) {
  SourceFile f;
  f.rel_path = rel;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) f.raw.push_back(line);
  f.code = strip_comments(f.raw);
  tokenize(f);
  parse_markers(f);
  return f;
}

// An allow marker suppresses a finding of its rule on its own line or the
// line directly below; consulting one marks it used, which is what the
// stale-allow audit keys on.
bool allowed(SourceFile& f, std::size_t line, const std::string& rule) {
  bool hit = false;
  for (Marker& m : f.markers) {
    if (m.rule == rule && (m.line == line || m.line + 1 == line)) {
      m.used = true;
      hit = true;
    }
  }
  return hit;
}

// --- rule scope table -------------------------------------------------------
//
// Every rule declares the path prefixes it covers and the sanctioned
// exceptions it carves back out. A file outside a rule's scope is not a
// blanket skip of the file — the other rules still see it — which is how
// e.g. bench/ keeps its documented raw-clock exemption while still being
// checked for intrinsics and stale allows.

struct RuleScope {
  std::string_view rule;
  std::vector<std::string_view> include;  // path prefixes
  std::vector<std::string_view> exclude;  // path prefixes
};

const std::vector<std::string_view> kAllRoots = {"src/", "tools/", "bench/",
                                                 "examples/"};

const RuleScope kScopes[] = {
    {"raw-alloc", {"src/simd/", "src/particle/", "src/xsdata/"}, {}},
    {"unaligned-simd-buffer", {"src/simd/", "src/xsdata/lookup."}, {}},
    {"raw-rand", kAllRoots, {"src/rng/"}},
    {"hot-loop-mutex",
     {"src/simd/", "src/physics/", "src/geom/", "src/multipole/", "src/hm/",
      "src/rng/", "src/core/history.", "src/core/event.", "src/particle/bank."},
     {}},
    // Benches/examples are separate processes, so a repeated literal seed
    // across them is not an in-process overlap. src/exec/stream.* declares
    // the offload exec::Stream ring — a pipeline stage, not an RNG stream —
    // so its constructors are not seed derivations.
    {"stream-overlap",
     {"src/", "tools/"},
     {"src/rng/", "src/exec/stream.", "src/exec/kernel_queue."}},
    // The offload stream advance loop must stay non-blocking: chunk
    // completion is signalled through the slot-phase atomics and the driver
    // polls + yields. A sleep or a blocking future/condvar wait on that path
    // re-serializes the rings into the old lockstep double-buffer loop.
    {"lockstep-wait-in-stream",
     {"src/exec/stream.", "src/exec/kernel_queue.", "src/exec/offload."},
     {}},
    // src/prof/ defines the sanctioned monotonic clock (prof::now_seconds);
    // src/obs/ is allowed system_clock for wall-time manifest stamps; the
    // bench harnesses already route through prof::now_seconds and keep their
    // documented exemption via scope.
    {"raw-clock", {"src/", "tools/", "examples/"}, {"src/prof/", "src/obs/"}},
    // statepoint.cpp hosts the sanctioned CheckedWriter/CheckedReader
    // wrappers; every raw call there feeds a checked helper.
    {"unchecked-io", kAllRoots, {"src/core/statepoint.cpp"}},
    // src/xsdata/ owns the sanctioned searches (UnionGrid::find, HashGrid's
    // window resolution); everywhere else must call those.
    {"hot-loop-binary-search", kAllRoots, {"src/xsdata/"}},
    // serve::spool (spool.hpp/.cpp) is the one sanctioned home for disk and
    // sleep in the serving stack; workers and the control plane must stay
    // non-blocking.
    {"blocking-in-worker", {"src/serve/"}, {"src/serve/spool."}},
    // src/simd/ is the one sanctioned home for ISA-specific code.
    {"raw-intrinsic", kAllRoots, {"src/simd/"}},
    // The multi-ISA backend boundary: only src/simd/ and the per-level
    // kernel TU may carry ISA-retargeting attributes/pragmas; everything
    // else gets its ISA from its TU's build flags and runtime dispatch.
    {"isa-flag-leak", kAllRoots, {"src/simd/", "src/xsdata/kernels_isa."}},
    // Kernels, banks, event queues, leapfrog RNG fills, and the bench
    // kernels that mirror them. src/simd/ itself is the backend: literal
    // widths there (specializations, width tables) are the implementation.
    {"hardcoded-lane-width",
     {"src/xsdata/", "src/particle/", "src/multipole/", "src/hm/",
      "src/core/event", "src/rng/streamset", "bench/"},
     {}},
    // Bank-sweep kernel files. bench/ is exempt: the ablation harnesses
    // (e.g. tab1's opt2 tier) keep deliberate scalar tails to reproduce the
    // paper's pre-masking variants.
    {"unmasked-remainder",
     {"src/xsdata/", "src/multipole/", "src/hm/", "src/core/event"},
     {}},
    // Tally/k-eff paths. src/core/tally.* is the sanctioned home of the
    // ordered reductions; src/comm's allreduce is the fixed-order collective
    // itself.
    {"float-order-dependence", {"src/core/", "src/exec/", "tools/vmc_run.cpp"},
     {"src/core/tally."}},
    // The executor is where fault domains live: a catch-all that drops the
    // exception on the floor erases a fault the cascade was supposed to
    // account for.
    {"naked-catch-in-exec", {"src/exec/"}, {}},
    {"stale-allow", kAllRoots, {}},
};

bool in_scope(std::string_view rule, const std::string& rel) {
  for (const RuleScope& s : kScopes) {
    if (s.rule != rule) continue;
    bool inc = false;
    for (const std::string_view p : s.include) {
      if (starts_with(rel, p)) inc = true;
    }
    if (!inc) return false;
    for (const std::string_view p : s.exclude) {
      if (starts_with(rel, p)) return false;
    }
    return true;
  }
  return false;
}

const std::set<std::string, std::less<>> kKnownRules = {
    "raw-alloc",      "unaligned-simd-buffer", "raw-rand",
    "hot-loop-mutex", "stream-overlap",        "raw-clock",
    "unchecked-io",   "hot-loop-binary-search", "raw-intrinsic",
    "isa-flag-leak",  "hardcoded-lane-width", "unmasked-remainder",
    "float-order-dependence", "naked-catch-in-exec", "blocking-in-worker",
    "lockstep-wait-in-stream", "stale-allow"};

// --- legacy line rules ------------------------------------------------------

const std::regex kRawAlloc(
    R"(\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\(|\b_mm_malloc\b|\bnew\s+[A-Za-z_][\w:<>,\s]*\[)");
const std::regex kPlainVector(
    R"(std::vector<\s*(float|double|char|short|int|long|unsigned|std::u?int\d+_t|std::size_t|std::ptrdiff_t)\b)");
const std::regex kRawRand(R"(\bstd::rand\b|\bsrand\s*\(|\brand\s*\()");
const std::regex kMutexFamily(
    R"(std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable))");
// Direct construction: `Stream name(args)`, `Stream name{args}`, or a
// temporary `Stream(args)`. Stream::for_particle is the sanctioned factory;
// `StreamSet` and `Stream&` parameter declarations must not match.
const std::regex kStreamCtor(
    R"(\bStream(?:\s+[A-Za-z_]\w*)?\s*[({]([^)}]*)[)}])");
const std::regex kIntLiteral(R"(0[xX][0-9a-fA-F]+|\b\d+\b)");
const std::regex kRawClock(
    R"(std::chrono::(steady_clock|system_clock|high_resolution_clock)::now\s*\()");
// Statement-position fread/fwrite: the call starts the line or follows a
// statement/block boundary, so its return value is discarded. Calls inside
// an if/assignment/comparison have a non-boundary prefix and don't match.
const std::regex kUncheckedIo(
    R"((?:^|[;{}])\s*(?:std::)?f(?:read|write)\s*\()");
// A call, not an identifier: `upper_bounds` or a member named lower_bound
// without a call don't match.
const std::regex kBinarySearch(
    R"(\b(?:std::)?(?:upper|lower)_bound\s*\()");
// Sleeps and blocking file I/O in serving code: the sleep_for/sleep_until
// calls, any fstream-family object, C fopen, and std::filesystem operations
// (each of which can block on disk for unbounded time).
const std::regex kBlockingInWorker(
    R"(std::this_thread::sleep_(?:for|until)|\bstd::(?:i|o)?fstream\b|\bfopen\s*\(|\bstd::filesystem\b)");
// Blocking waits on the stream advance path: sleeps, future/condvar
// .wait()/.wait_for()/.wait_until(), and ThreadPool::wait_idle() barriers.
// The driver loop must poll the slot-phase atomics and yield instead.
const std::regex kLockstepWait(
    R"(std::this_thread::sleep_(?:for|until)|\.\s*wait(?:_for|_until)?\s*\(|\bwait_idle\s*\()");

// Two seed derivations overlap when they mix in the same constants, even if
// the non-constant part is spelled differently (`settings.seed` vs
// `settings_.seed`): the tag constants ARE the stream identity. Key a
// construction by its integer literals when it has any, else by the
// whitespace-stripped expression.
std::string derivation_key(const std::string& args) {
  std::string lits;
  for (auto it = std::sregex_iterator(args.begin(), args.end(), kIntLiteral);
       it != std::sregex_iterator(); ++it) {
    if (!lits.empty()) lits += ',';
    lits += it->str();
  }
  if (!lits.empty()) return lits;
  std::string out;
  for (const char c : args) {
    if (c != ' ' && c != '\t') out += c;
  }
  return out;
}

using StreamCtorMap =
    std::map<std::string, std::vector<std::pair<std::string, std::size_t>>>;

void scan_lines(SourceFile& f, std::vector<Violation>& out,
                StreamCtorMap& stream_ctors) {
  const std::string& rel = f.rel_path;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.empty()) continue;
    const std::size_t ln = i + 1;

    if (in_scope("raw-alloc", rel) && std::regex_search(line, kRawAlloc) &&
        !allowed(f, ln, "raw-alloc")) {
      out.push_back({rel, ln, "raw-alloc",
                     "raw allocation in an aligned-buffer layer; use "
                     "vmc::simd::aligned_vector / AlignedAllocator"});
    }

    if (in_scope("unaligned-simd-buffer", rel) &&
        std::regex_search(line, kPlainVector) &&
        line.find("AlignedAllocator") == std::string::npos &&
        !allowed(f, ln, "unaligned-simd-buffer")) {
      out.push_back({rel, ln, "unaligned-simd-buffer",
                     "plain std::vector of arithmetic type in SIMD kernel "
                     "code; use simd::aligned_vector"});
    }

    if (in_scope("raw-rand", rel) && std::regex_search(line, kRawRand) &&
        !allowed(f, ln, "raw-rand")) {
      out.push_back({rel, ln, "raw-rand",
                     "rand()/srand() outside src/rng/; draw from a "
                     "vmc::rng::Stream instead"});
    }

    if (in_scope("hot-loop-mutex", rel) &&
        std::regex_search(line, kMutexFamily) &&
        !allowed(f, ln, "hot-loop-mutex")) {
      out.push_back({rel, ln, "hot-loop-mutex",
                     "mutex/lock/condvar in per-particle hot-path code; "
                     "route cross-thread traffic through ConcurrentBank / "
                     "TallyAccumulator / ThreadPool"});
    }

    if (in_scope("raw-clock", rel) && std::regex_search(line, kRawClock) &&
        !allowed(f, ln, "raw-clock")) {
      out.push_back({rel, ln, "raw-clock",
                     "direct std::chrono clock call outside src/prof//"
                     "src/obs/; use prof::now_seconds() so all timestamps "
                     "share one epoch"});
    }

    if (in_scope("unchecked-io", rel) &&
        std::regex_search(line, kUncheckedIo) &&
        !allowed(f, ln, "unchecked-io")) {
      out.push_back({rel, ln, "unchecked-io",
                     "fwrite/fread return value discarded; a short "
                     "read/write must be detected — check the count as "
                     "statepoint.cpp's CheckedWriter/CheckedReader do"});
    }

    if (in_scope("hot-loop-binary-search", rel) &&
        std::regex_search(line, kBinarySearch) &&
        !allowed(f, ln, "hot-loop-binary-search")) {
      out.push_back({rel, ln, "hot-loop-binary-search",
                     "std::upper_bound/lower_bound outside src/xsdata/; "
                     "grid searches belong in the lookup kernels, which use "
                     "the hash-binned accelerator (xsdata/hash_grid.hpp)"});
    }

    if (in_scope("blocking-in-worker", rel) &&
        std::regex_search(line, kBlockingInWorker) &&
        !allowed(f, ln, "blocking-in-worker")) {
      out.push_back({rel, ln, "blocking-in-worker",
                     "sleep/blocking file I/O in serving code outside "
                     "serve::spool; workers and the control plane must stay "
                     "non-blocking — route disk and sleeps through the spool "
                     "helpers (src/serve/spool.hpp)"});
    }

    if (in_scope("lockstep-wait-in-stream", rel) &&
        std::regex_search(line, kLockstepWait) &&
        !allowed(f, ln, "lockstep-wait-in-stream")) {
      out.push_back({rel, ln, "lockstep-wait-in-stream",
                     "sleep/blocking wait on the stream advance path; the "
                     "scheduler must stay non-blocking — poll the slot-phase "
                     "atomics and std::this_thread::yield() so transfers of "
                     "chunk k+1 overlap compute of chunk k"});
    }

    if (in_scope("stream-overlap", rel)) {
      std::smatch m;
      std::string tail = line;
      while (std::regex_search(tail, m, kStreamCtor)) {
        const std::string args = m[1].str();
        // Default construction and the factory path are fine.
        if (!args.empty() && args.find("for_particle") == std::string::npos &&
            !allowed(f, ln, "stream-overlap")) {
          stream_ctors[derivation_key(args)].push_back({rel, ln});
        }
        tail = m.suffix().str();
      }
    }
  }
}

// --- token rule helpers -----------------------------------------------------

// Numeric token -> value string with integer suffixes stripped; "" when the
// token is not a plain decimal integer.
std::string int_value(const std::string& t) {
  std::size_t end = 0;
  while (end < t.size() && std::isdigit(static_cast<unsigned char>(t[end]))) {
    ++end;
  }
  if (end == 0) return "";
  for (std::size_t i = end; i < t.size(); ++i) {
    const char c = t[i];
    if (c != 'u' && c != 'U' && c != 'l' && c != 'L') return "";
  }
  return t.substr(0, end);
}

bool is_lane_literal(const std::string& t, bool allow_two) {
  const std::string v = int_value(t);
  if (allow_two && v == "2") return true;
  return v == "4" || v == "8" || v == "16" || v == "32" || v == "64";
}

// Index of the ')' closing the '(' at index open, or tokens.size().
std::size_t match_paren(const std::vector<Token>& T, std::size_t open) {
  int pd = 0;
  for (std::size_t i = open; i < T.size(); ++i) {
    if (T[i].kind != Token::Kind::punct) continue;
    if (T[i].text == "(") ++pd;
    if (T[i].text == ")") {
      --pd;
      if (pd == 0) return i;
    }
  }
  return T.size();
}

// Index one past the enclosing block of the token at index i: the first '}'
// whose depth is below the token's. Used to scan "the rest of the block
// after a loop" for the masked tail.
std::size_t block_end(const std::vector<Token>& T, std::size_t i) {
  const int d = T[i].depth;
  for (std::size_t j = i + 1; j < T.size(); ++j) {
    if (T[j].kind == Token::Kind::punct && T[j].text == "}" &&
        T[j].depth < d) {
      return j;
    }
  }
  return T.size();
}

bool is_boundary(const Token& t) {
  return t.kind == Token::Kind::punct &&
         (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ")");
}

struct TokenRuleCtx {
  SourceFile& f;
  std::vector<Violation>& out;
  std::set<std::pair<std::size_t, std::string>> seen;  // (line, rule) dedup

  void fire(std::size_t line, const std::string& rule,
            const std::string& message) {
    if (!seen.insert({line, rule}).second) return;
    if (allowed(f, line, rule)) return;
    out.push_back({f.rel_path, line, rule, message});
  }
};

// raw-intrinsic: _mm*/__m128/__m256/__m512/__mmask identifiers and
// *intrin.h includes outside src/simd/.
void rule_raw_intrinsic(TokenRuleCtx& c) {
  for (const Token& t : c.f.tokens) {
    if (t.kind != Token::Kind::ident) continue;
    if (starts_with(t.text, "_mm") || starts_with(t.text, "__m128") ||
        starts_with(t.text, "__m256") || starts_with(t.text, "__m512") ||
        starts_with(t.text, "__mmask")) {
      c.fire(t.line, "raw-intrinsic",
             "raw SIMD intrinsic '" + t.text +
                 "' outside src/simd/; ISA-specific code must live behind "
                 "the Vec/Mask backend (simd/vec.hpp)");
    }
  }
  static const std::regex kIntrinHeader(R"(include\s*<[^>]*intrin[^>]*>)");
  for (const PpLine& p : c.f.pp) {
    if (std::regex_search(p.text, kIntrinHeader)) {
      c.fire(p.line, "raw-intrinsic",
             "ISA intrinsic header included outside src/simd/; the Vec/Mask "
             "backend owns all intrinsic headers");
    }
  }
}

// isa-flag-leak: per-function/per-pragma ISA retargeting outside the
// sanctioned multi-ISA structure (src/simd/ + the per-level kernel TU
// src/xsdata/kernels_isa.cpp, whose -m flags live in CMake). Function
// multiversioning (`target_clones`), `__attribute__((target(...)))`, and
// `#pragma GCC target`/`push_options`/`optimize` all re-flag code inside a
// TU the build system compiled for one ISA — exactly the comdat/ODR hazard
// the per-TU backend layout exists to prevent. So are literal `-mavx*` /
// `-msse*` flag spellings reaching code (e.g. a _Pragma string).
void rule_isa_flag_leak(TokenRuleCtx& c) {
  const auto& T = c.f.tokens;
  for (std::size_t i = 0; i < T.size(); ++i) {
    if (T[i].kind != Token::Kind::ident) continue;
    if (T[i].text == "target_clones") {
      c.fire(T[i].line, "isa-flag-leak",
             "target_clones multiversioning outside src/simd/; add the "
             "kernel to the per-ISA TU family (src/xsdata/kernels_isa.cpp) "
             "so the dispatcher and the bitwise-identity fuzz cover it");
    }
    if (T[i].text == "__attribute__" && i + 3 < T.size() &&
        T[i + 1].text == "(" && T[i + 2].text == "(" &&
        (T[i + 3].text == "target" || T[i + 3].text == "target_clones")) {
      c.fire(T[i].line, "isa-flag-leak",
             "__attribute__((target...)) retargets one function inside a "
             "TU compiled for another ISA; per-ISA code belongs in the "
             "kernel TU family behind simd::dispatch()");
    }
  }
  static const std::regex kTargetPragma(
      R"(pragma\s+(GCC|clang)\s+(target|push_options|optimize)\b)");
  static const std::regex kIsaFlag(R"(-m(avx|sse)[0-9a-z.]*\b)");
  for (const PpLine& p : c.f.pp) {
    if (std::regex_search(p.text, kTargetPragma)) {
      c.fire(p.line, "isa-flag-leak",
             "ISA/optimization pragma re-flags code mid-TU; backend flags "
             "are per-TU CMake options on the kernel object libraries");
    }
  }
  for (std::size_t i = 0; i < c.f.code.size(); ++i) {
    if (std::regex_search(c.f.code[i], kIsaFlag)) {
      c.fire(i + 1, "isa-flag-leak",
             "literal -mavx*/-msse* flag in code; ISA flags live only in "
             "the per-level kernel objects (src/xsdata/CMakeLists.txt)");
    }
  }
}

// hardcoded-lane-width: literal lane counts in template args, for-loop
// strides, modulo/round-down remainder math, and width-named constants.
void rule_hardcoded_lane_width(TokenRuleCtx& c) {
  const std::vector<Token>& T = c.f.tokens;
  const char* kMsg =
      "literal lane count in kernel/bank code; size it with simd::width_v<T> "
      "/ Vec::width so lane width can become a backend parameter";
  for (std::size_t i = 0; i < T.size(); ++i) {
    const Token& t = T[i];
    // Vec<T, 8> / Mask<T, 4>
    if (t.kind == Token::Kind::ident &&
        (t.text == "Vec" || t.text == "Mask") && i + 1 < T.size() &&
        T[i + 1].text == "<") {
      for (std::size_t j = i + 2; j < T.size() && j < i + 24; ++j) {
        const std::string& s = T[j].text;
        if (s == ">" || s == ">>" || s == ";" || s == "{") break;
        if (s == "," && j + 1 < T.size() &&
            T[j + 1].kind == Token::Kind::number &&
            is_lane_literal(T[j + 1].text, /*allow_two=*/true)) {
          c.fire(T[j + 1].line, "hardcoded-lane-width", kMsg);
        }
      }
    }
    // for (...; ...; j += 16)
    if (t.kind == Token::Kind::ident && t.text == "for" && i + 1 < T.size() &&
        T[i + 1].text == "(") {
      const std::size_t close = match_paren(T, i + 1);
      int semis = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (T[j].text == ";") ++semis;
        if (semis == 2 && T[j].text == "+=" && j + 1 < close &&
            T[j + 1].kind == Token::Kind::number &&
            is_lane_literal(T[j + 1].text, false)) {
          c.fire(T[j + 1].line, "hardcoded-lane-width", kMsg);
        }
      }
    }
    // n % 8 remainder math
    if (t.kind == Token::Kind::punct && t.text == "%" && i + 1 < T.size() &&
        T[i + 1].kind == Token::Kind::number &&
        is_lane_literal(T[i + 1].text, false)) {
      c.fire(T[i + 1].line, "hardcoded-lane-width", kMsg);
    }
    // n / 8 * 8 round-down
    if (t.kind == Token::Kind::punct && t.text == "/" && i + 3 < T.size() &&
        T[i + 1].kind == Token::Kind::number && T[i + 2].text == "*" &&
        T[i + 3].kind == Token::Kind::number &&
        T[i + 1].text == T[i + 3].text &&
        is_lane_literal(T[i + 1].text, false)) {
      c.fire(T[i + 1].line, "hardcoded-lane-width", kMsg);
    }
    // constexpr int kLanes = 16;
    if (t.kind == Token::Kind::ident && i + 2 < T.size() &&
        T[i + 1].text == "=" && T[i + 2].kind == Token::Kind::number &&
        is_lane_literal(T[i + 2].text, false)) {
      std::string lower;
      for (const char ch : t.text) {
        lower += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      if (lower.find("lane") != std::string::npos ||
          lower.find("width") != std::string::npos) {
        c.fire(t.line, "hardcoded-lane-width", kMsg);
      }
    }
  }
}

// Identifiers whose initializer references the portable width (and the
// width spellings themselves): the strides the remainder rule watches.
std::set<std::string> width_idents(const std::vector<Token>& T) {
  std::set<std::string> w = {"width_v", "native_lanes"};
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != Token::Kind::ident || T[i + 1].text != "=") continue;
    for (std::size_t j = i + 2; j < T.size() && j < i + 32; ++j) {
      if (T[j].text == ";") break;
      if (T[j].kind == Token::Kind::ident &&
          (T[j].text == "width_v" || T[j].text == "native_lanes")) {
        w.insert(T[i].text);
        break;
      }
    }
  }
  return w;
}

// unmasked-remainder: a for loop striding by the vector width whose
// enclosing block never touches load_partial/store_partial has a scalar (or
// missing) remainder path.
void rule_unmasked_remainder(TokenRuleCtx& c) {
  const std::vector<Token>& T = c.f.tokens;
  const std::set<std::string> widths = width_idents(T);
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != Token::Kind::ident || T[i].text != "for" ||
        T[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_paren(T, i + 1);
    int semis = 0;
    bool stride = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (T[j].text == ";") ++semis;
      if (semis == 2 && T[j].text == "+=" && j + 1 < close) {
        for (std::size_t k = j + 1; k < close; ++k) {
          if (T[k].kind == Token::Kind::ident && widths.count(T[k].text)) {
            stride = true;
          }
        }
      }
    }
    if (!stride) continue;
    bool masked = false;
    const std::size_t end = block_end(T, i);
    for (std::size_t j = i; j < end; ++j) {
      if (T[j].kind == Token::Kind::ident &&
          (T[j].text == "load_partial" || T[j].text == "store_partial")) {
        masked = true;
        break;
      }
    }
    if (!masked) {
      c.fire(T[i].line, "unmasked-remainder",
             "width-stride loop with no load_partial/store_partial masked "
             "tail in its enclosing block (Algorithm-4 remainder contract); "
             "mask the remainder, or annotate padded-by-construction loops");
    }
  }
}

// float-order-dependence helpers: declared float scalars and float
// containers in this file.
struct FloatDecls {
  std::set<std::string> scalars;
  std::set<std::string> containers;
};

FloatDecls float_decls(const std::vector<Token>& T) {
  FloatDecls d;
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind == Token::Kind::ident &&
        (T[i].text == "double" || T[i].text == "float") &&
        T[i + 1].kind == Token::Kind::ident &&
        (i + 2 >= T.size() || T[i + 2].text != "(")) {
      d.scalars.insert(T[i + 1].text);
    }
    if (T[i].kind == Token::Kind::ident &&
        (T[i].text == "vector" || T[i].text == "aligned_vector" ||
         T[i].text == "span") &&
        T[i + 1].text == "<") {
      std::size_t j = i + 2;
      if (j < T.size() && T[j].text == "const") ++j;
      if (j < T.size() &&
          (T[j].text == "double" || T[j].text == "float")) {
        for (std::size_t k = j + 1; k < T.size() && k < j + 6; ++k) {
          if (T[k].text == ">>") break;  // nested arg of an outer template
          if (T[k].text == ">") {
            std::size_t m = k + 1;  // reference/pointer params still count
            while (m < T.size() &&
                   (T[m].text == "&" || T[m].text == "*" ||
                    T[m].text == "const")) {
              ++m;
            }
            if (m < T.size() && T[m].kind == Token::Kind::ident) {
              d.containers.insert(T[m].text);
            }
            break;
          }
        }
      }
    }
  }
  return d;
}

// Token-index intervals lying inside loop bodies (braced or single
// statement).
std::vector<std::pair<std::size_t, std::size_t>> loop_extents(
    const std::vector<Token>& T) {
  std::vector<std::pair<std::size_t, std::size_t>> ext;
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != Token::Kind::ident ||
        (T[i].text != "for" && T[i].text != "while") ||
        T[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_paren(T, i + 1);
    if (close >= T.size()) continue;
    if (close + 1 < T.size() && T[close + 1].text == "{") {
      ext.push_back({close + 1, block_end(T, close + 2)});
    } else {
      std::size_t j = close + 1;
      while (j < T.size() && T[j].text != ";") ++j;
      ext.push_back({close + 1, j});
    }
  }
  return ext;
}

bool in_any_extent(
    const std::vector<std::pair<std::size_t, std::size_t>>& ext,
    std::size_t i) {
  for (const auto& [b, e] : ext) {
    if (i >= b && i < e) return true;
  }
  return false;
}

// float-order-dependence: std::accumulate with a float init, and raw
// `+=`/`-=` reductions of float scalars inside loops when the terms come
// from a float container (or the loop ranges over one).
void rule_float_order(TokenRuleCtx& c) {
  const std::vector<Token>& T = c.f.tokens;
  const FloatDecls d = float_decls(T);
  const auto ext = loop_extents(T);
  const char* kMsg =
      "order-dependent float reduction on a tally/k-eff path; use "
      "core::ordered_sum / ordered_sum_strided (or TallyAccumulator) so the "
      "event==history and recovery bit-exactness contracts can't rot";

  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    // std::accumulate(..., 0.0)
    if (T[i].kind == Token::Kind::ident && T[i].text == "accumulate" &&
        T[i + 1].text == "(") {
      const std::size_t close = match_paren(T, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        const bool float_literal = T[j].kind == Token::Kind::number &&
                                   T[j].text.find('.') != std::string::npos;
        const bool float_type = T[j].kind == Token::Kind::ident &&
                                (T[j].text == "double" || T[j].text == "float");
        if (float_literal || float_type) {
          c.fire(T[i].line, "float-order-dependence", kMsg);
          break;
        }
      }
    }
    // range-for over float elements, reduction in the body
    if (T[i].kind == Token::Kind::ident && T[i].text == "for" &&
        T[i + 1].text == "(") {
      const std::size_t close = match_paren(T, i + 1);
      bool range = false;
      bool float_var = false;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (T[j].text == ";") break;
        if (T[j].text == ":") {
          range = true;
          break;
        }
        if (T[j].kind == Token::Kind::ident &&
            (T[j].text == "double" || T[j].text == "float")) {
          float_var = true;
        }
      }
      if (range && float_var) {
        const std::size_t end = block_end(T, i);
        for (std::size_t j = close + 1; j + 1 < end; ++j) {
          if (T[j].kind == Token::Kind::ident && d.scalars.count(T[j].text) &&
              (T[j + 1].text == "+=" || T[j + 1].text == "-=") &&
              (j == 0 || is_boundary(T[j - 1]))) {
            c.fire(T[j].line, "float-order-dependence", kMsg);
          }
        }
      }
    }
    // scalar += container[...] inside a loop — unless the terms already go
    // through the sanctioned ordered reduction (chunked ordered_sum results
    // accumulated in fixed chunk order are the recommended idiom, not a
    // violation of it).
    if (T[i].kind == Token::Kind::ident && d.scalars.count(T[i].text) &&
        (T[i + 1].text == "+=" || T[i + 1].text == "-=") &&
        (i == 0 || is_boundary(T[i - 1])) && in_any_extent(ext, i)) {
      bool indexed = false;
      bool sanctioned = false;
      for (std::size_t j = i + 2; j < T.size(); ++j) {
        if (T[j].text == ";") break;
        if (T[j].kind != Token::Kind::ident) continue;
        if (starts_with(T[j].text, "ordered_sum")) sanctioned = true;
        if (d.containers.count(T[j].text) && j + 1 < T.size() &&
            T[j + 1].text == "[") {
          indexed = true;
        }
      }
      if (indexed && !sanctioned) {
        c.fire(T[i].line, "float-order-dependence", kMsg);
      }
    }
  }
}

// naked-catch-in-exec: a `catch (...)` handler in src/exec/ must either
// rethrow (`throw;`) or hand the fault to a named resil:: recovery helper.
// Typed catches (e.g. resil::TransientError) are deliberate and exempt.
void rule_naked_catch(TokenRuleCtx& c) {
  const std::vector<Token>& T = c.f.tokens;
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != Token::Kind::ident || T[i].text != "catch" ||
        T[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_paren(T, i + 1);
    // `...` tokenizes as three '.' puncts; anything else is a typed catch.
    if (close != i + 5 || T[i + 2].text != "." || T[i + 3].text != "." ||
        T[i + 4].text != ".") {
      continue;
    }
    if (close + 1 >= T.size() || T[close + 1].text != "{") continue;
    const int open_depth = T[close + 1].depth;
    bool routed = false;
    std::size_t j = close + 2;
    for (; j < T.size(); ++j) {
      if (T[j].kind == Token::Kind::punct && T[j].text == "}" &&
          T[j].depth == open_depth) {
        break;  // end of the handler body
      }
      // Bare rethrow: `throw ;`
      if (T[j].kind == Token::Kind::ident && T[j].text == "throw" &&
          j + 1 < T.size() && T[j + 1].text == ";") {
        routed = true;
      }
      // Named recovery helper: `resil::<helper>(`
      if (T[j].kind == Token::Kind::ident && T[j].text == "resil" &&
          j + 3 < T.size() && T[j + 1].text == "::" &&
          T[j + 2].kind == Token::Kind::ident && T[j + 3].text == "(") {
        routed = true;
      }
    }
    if (!routed) {
      c.fire(T[i].line, "naked-catch-in-exec",
             "catch (...) in src/exec/ swallows a fault anonymously; rethrow "
             "(`throw;`) or route it through a named resil:: recovery helper "
             "so the retry/reschedule/degrade cascade stays accounted for");
    }
  }
}

// --- analyzer ---------------------------------------------------------------

struct ScanResult {
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
};

class Analyzer {
 public:
  void add(SourceFile f) { files_.push_back(std::move(f)); }

  ScanResult run() {
    ScanResult r;
    StreamCtorMap stream_ctors;
    for (SourceFile& f : files_) {
      scan_lines(f, r.violations, stream_ctors);
      TokenRuleCtx ctx{f, r.violations, {}};
      if (in_scope("raw-intrinsic", f.rel_path)) rule_raw_intrinsic(ctx);
      if (in_scope("isa-flag-leak", f.rel_path)) rule_isa_flag_leak(ctx);
      if (in_scope("hardcoded-lane-width", f.rel_path)) {
        rule_hardcoded_lane_width(ctx);
      }
      if (in_scope("unmasked-remainder", f.rel_path)) {
        rule_unmasked_remainder(ctx);
      }
      if (in_scope("float-order-dependence", f.rel_path)) {
        rule_float_order(ctx);
      }
      if (in_scope("naked-catch-in-exec", f.rel_path)) rule_naked_catch(ctx);
    }
    // Cross-file pass 1: stream derivation overlap.
    for (const auto& [args, sites] : stream_ctors) {
      if (sites.size() < 2) continue;
      for (const auto& [file, line] : sites) {
        r.violations.push_back(
            {file, line, "stream-overlap",
             "rng::Stream seed derivation [" + args + "] appears at " +
                 std::to_string(sites.size()) +
                 " sites: identical streams => correlated histories. "
                 "Use a distinct xor tag or Stream::for_particle"});
      }
    }
    // Cross-file pass 2: every allow marker must have earned its keep.
    for (SourceFile& f : files_) {
      if (!in_scope("stale-allow", f.rel_path)) continue;
      for (const Marker& m : f.markers) {
        if (m.used) continue;
        const bool known = kKnownRules.count(m.rule) != 0;
        r.violations.push_back(
            {f.rel_path, m.line, "stale-allow",
             known ? "allow(" + m.rule +
                         ") no longer suppresses anything; the exception "
                         "has rotted — remove the marker"
                   : "allow(" + m.rule +
                         ") names an unknown rule; fix the spelling or "
                         "remove the marker"});
      }
    }
    r.files_scanned = files_.size();
    std::sort(r.violations.begin(), r.violations.end(), violation_less);
    return r;
  }

 private:
  std::vector<SourceFile> files_;
};

// --- tree scan --------------------------------------------------------------

int load_tree(const fs::path& root, Analyzer& a) {
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
        continue;
      }
      // Skip the linter itself: its rule tables contain the very tokens the
      // rules search for.
      if (e.path().filename() == "vmc_lint.cpp") continue;
      paths.push_back(e.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.rel_path = fs::relative(p, root).generic_string();
    std::ifstream in(p);
    if (!in) {
      std::fprintf(stderr, "vmc_lint: cannot read %s\n", p.string().c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) f.raw.push_back(line);
    if (in.bad()) {
      std::fprintf(stderr, "vmc_lint: I/O error reading %s\n",
                   p.string().c_str());
      return 1;
    }
    f.code = strip_comments(f.raw);
    tokenize(f);
    parse_markers(f);
    a.add(std::move(f));
  }
  return 0;
}

// --- output -----------------------------------------------------------------

std::map<std::string, std::size_t> rule_summary(const ScanResult& r) {
  std::map<std::string, std::size_t> counts;
  for (const Violation& v : r.violations) ++counts[v.rule];
  return counts;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const ScanResult& r, const std::string& root) {
  std::string j = "{\n  \"schema\": \"vectormc.lint.v1\",\n";
  j += "  \"root\": \"" + json_escape(root) + "\",\n";
  j += "  \"files_scanned\": " + std::to_string(r.files_scanned) + ",\n";
  j += "  \"clean\": " + std::string(r.violations.empty() ? "true" : "false") +
       ",\n  \"violations\": [";
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    const Violation& v = r.violations[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"file\": \"" + json_escape(v.file) +
         "\", \"line\": " + std::to_string(v.line) + ", \"rule\": \"" +
         json_escape(v.rule) + "\", \"message\": \"" + json_escape(v.message) +
         "\"}";
  }
  j += r.violations.empty() ? "],\n" : "\n  ],\n";
  j += "  \"summary\": {";
  const auto counts = rule_summary(r);
  std::size_t i = 0;
  for (const auto& [rule, n] : counts) {
    j += i++ == 0 ? "\n" : ",\n";
    j += "    \"" + json_escape(rule) + "\": " + std::to_string(n);
  }
  j += counts.empty() ? "}\n" : "\n  }\n";
  j += "}\n";
  std::fputs(j.c_str(), stdout);
}

void print_text(const ScanResult& r) {
  for (const Violation& v : r.violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (r.violations.empty()) {
    std::printf("vmc_lint: clean (%zu files)\n", r.files_scanned);
    return;
  }
  std::fprintf(stderr, "vmc_lint: %zu violation(s) in %zu file(s) scanned\n",
               r.violations.size(), r.files_scanned);
  for (const auto& [rule, n] : rule_summary(r)) {
    std::fprintf(stderr, "  %-24s %zu\n", rule.c_str(), n);
  }
}

// --- self test --------------------------------------------------------------

ScanResult scan_snippet(const std::string& rel, const std::string& content) {
  Analyzer a;
  a.add(make_file(rel, content));
  return a.run();
}

int self_test() {
  struct Case {
    const char* name;
    const char* rel;
    const char* content;
    const char* rule;  // rule expected to fire; "" = expect clean
  };
  const Case cases[] = {
      // --- raw-alloc ---
      {"malloc in simd fires", "src/simd/kernel.cpp",
       "double* p = (double*)malloc(n * sizeof(double));", "raw-alloc"},
      {"array new in bank fires", "src/particle/scratch.cpp",
       "auto* buf = new float[n];", "raw-alloc"},
      {"malloc outside scope is clean", "src/comm/comm.cpp",
       "void* p = malloc(64);", ""},
      {"malloc in comment is clean", "src/simd/kernel.cpp",
       "// the paper used _mm_malloc here", ""},
      {"allow marker silences raw-alloc", "src/simd/kernel.cpp",
       "// vmc-lint: allow(raw-alloc)\nauto* p = new double[8];", ""},
      // --- unaligned-simd-buffer ---
      {"plain vector in simd fires", "src/simd/sweep.cpp",
       "std::vector<double> buf(n);", "unaligned-simd-buffer"},
      {"plain vector in banked lookup fires", "src/xsdata/lookup.cpp",
       "std::vector<float> xs(n);", "unaligned-simd-buffer"},
      {"aligned vector is clean", "src/simd/sweep.cpp",
       "simd::aligned_vector<double> buf(n);", ""},
      {"vector of structs is clean", "src/simd/sweep.cpp",
       "std::vector<Span> spans;", ""},
      // --- raw-rand ---
      {"rand in physics fires", "src/physics/collision.cpp",
       "const int r = rand();", "raw-rand"},
      {"std::rand in tools fires", "tools/vmc_run.cpp",
       "double u = std::rand() / (double)RAND_MAX;", "raw-rand"},
      {"rand in bench fires", "bench/fig9_harness.cpp",
       "const int r = rand();", "raw-rand"},
      {"rand inside identifier is clean", "src/physics/collision.cpp",
       "const double strand(int);", ""},
      {"rand in src/rng is clean", "src/rng/compat.hpp",
       "inline int wrap() { return rand(); }", ""},
      // --- hot-loop-mutex ---
      {"mutex in collision fires", "src/physics/collision.cpp",
       "static std::mutex mu;", "hot-loop-mutex"},
      {"lock_guard in SoA bank fires", "src/particle/bank.cpp",
       "std::lock_guard lk(mu_);", "hot-loop-mutex"},
      {"mutex in thread pool is clean", "src/exec/thread_pool.cpp",
       "std::mutex mu_;", ""},
      {"mutex in concurrent bank is clean", "src/particle/concurrent_bank.cpp",
       "std::lock_guard lk(mu_);", ""},
      // --- raw-clock ---
      {"steady_clock in core fires", "src/core/eigenvalue.cpp",
       "const auto t0 = std::chrono::steady_clock::now();", "raw-clock"},
      {"system_clock in tools fires", "tools/vmc_run.cpp",
       "auto wall = std::chrono::system_clock::now();", "raw-clock"},
      {"high_resolution_clock fires", "src/exec/thread_pool.cpp",
       "auto t = std::chrono::high_resolution_clock::now();", "raw-clock"},
      {"clock in src/prof is clean", "src/prof/profiler.hpp",
       "return std::chrono::steady_clock::now().time_since_epoch();", ""},
      {"clock in src/obs is clean", "src/obs/manifest.cpp",
       "const auto now = std::chrono::system_clock::now();", ""},
      {"clock in bench is exempt by scope", "bench/bench_common.hpp",
       "const auto t0 = std::chrono::steady_clock::now();", ""},
      {"clock in comment is clean", "src/core/eigenvalue.cpp",
       "// std::chrono::steady_clock::now() would drift from prof", ""},
      {"duration types without now() are clean", "src/exec/distributed.cpp",
       "std::chrono::milliseconds timeout(500);", ""},
      {"allow marker silences raw-clock", "src/core/statepoint.cpp",
       "// vmc-lint: allow(raw-clock)\n"
       "auto stamp = std::chrono::system_clock::now();", ""},
      // --- unchecked-io ---
      {"unchecked fwrite fires", "src/core/mesh_io.cpp",
       "std::fwrite(buf, 1, n, f);", "unchecked-io"},
      {"unchecked fread after block fires", "tools/vmc_dump.cpp",
       "while (more) { fread(buf, 1, n, f); }", "unchecked-io"},
      {"checked fwrite is clean", "src/core/mesh_io.cpp",
       "if (std::fwrite(buf, 1, n, f) != n) { fail(); }", ""},
      {"assigned fread is clean", "src/core/mesh_io.cpp",
       "const std::size_t got = std::fread(buf, 1, n, f);", ""},
      {"statepoint checked helpers are exempt", "src/core/statepoint.cpp",
       "std::fwrite(p, 1, n, f);", ""},
      {"fread in a comment is clean", "src/core/mesh_io.cpp",
       "// fread(buf, 1, n, f); would lose errors here", ""},
      {"allow marker silences unchecked-io", "src/core/mesh_io.cpp",
       "// vmc-lint: allow(unchecked-io)\nfwrite(magic, 1, 4, f);", ""},
      // --- hot-loop-binary-search ---
      {"upper_bound in core fires", "src/core/mesh_tally.cpp",
       "const auto it = std::upper_bound(e.begin(), e.end(), x);",
       "hot-loop-binary-search"},
      {"lower_bound in tools fires", "tools/vmc_dump.cpp",
       "auto it = lower_bound(v.begin(), v.end(), key);",
       "hot-loop-binary-search"},
      {"upper_bound in xsdata is clean", "src/xsdata/hash_grid.cpp",
       "auto it = std::upper_bound(g + lo, g + hi, e);", ""},
      {"upper_bounds identifier is clean", "src/obs/metrics.cpp",
       "const auto& upper_bounds = h.upper_bounds;", ""},
      {"upper_bound in comment is clean", "src/core/event.cpp",
       "// replaces the per-particle std::upper_bound(...)", ""},
      {"allow marker silences binary-search", "src/core/mesh_tally.cpp",
       "// vmc-lint: allow(hot-loop-binary-search)\n"
       "const auto it = std::upper_bound(e.begin(), e.end(), x);", ""},
      // --- blocking-in-worker ---
      {"sleep_for in server fires", "src/serve/server.cpp",
       "std::this_thread::sleep_for(std::chrono::milliseconds(10));",
       "blocking-in-worker"},
      {"ifstream in cache fires", "src/serve/cache.cpp",
       "std::ifstream in(path, std::ios::binary);", "blocking-in-worker"},
      {"fopen in queue fires", "src/serve/queue.cpp",
       "FILE* f = fopen(path.c_str(), \"rb\");", "blocking-in-worker"},
      {"filesystem op in server fires", "src/serve/server.cpp",
       "std::filesystem::rename(src, dst);", "blocking-in-worker"},
      {"spool helpers are exempt", "src/serve/spool.cpp",
       "std::this_thread::sleep_for(std::chrono::duration<double>(s));", ""},
      {"ofstream outside serve is clean", "src/core/mesh_io.cpp",
       "std::ofstream out(path);", ""},
      {"condvar wait in server is clean", "src/serve/server.cpp",
       "idle_.wait(lk, [&] { return inflight_ == 0; });", ""},
      {"sleep in serve comment is clean", "src/serve/server.cpp",
       "// never std::this_thread::sleep_for here; spool owns the clock", ""},
      {"allow marker silences blocking-in-worker", "src/serve/cache.cpp",
       "// vmc-lint: allow(blocking-in-worker)\n"
       "std::ifstream probe(path);", ""},
      // --- lockstep-wait-in-stream ---
      {"sleep in stream advance fires", "src/exec/stream.cpp",
       "std::this_thread::sleep_for(std::chrono::microseconds(50));",
       "lockstep-wait-in-stream"},
      {"future wait in offload fires", "src/exec/offload.cpp",
       "xfer_done.wait();", "lockstep-wait-in-stream"},
      {"timed wait in kernel queue fires", "src/exec/kernel_queue.cpp",
       "cv_.wait_for(lk, std::chrono::milliseconds(1));",
       "lockstep-wait-in-stream"},
      {"wait_idle barrier in offload fires", "src/exec/offload.cpp",
       "dma.wait_idle();", "lockstep-wait-in-stream"},
      {"yield poll loop is clean", "src/exec/offload.cpp",
       "if (!st.front_transferred(next_compute)) { "
       "std::this_thread::yield(); continue; }", ""},
      {"sleep outside the stream path is clean", "src/exec/machine.cpp",
       "std::this_thread::sleep_for(std::chrono::milliseconds(5));", ""},
      {"wait in stream comment is clean", "src/exec/stream.cpp",
       "// never .wait() here; the DMA lane signals via the slot phase", ""},
      {"allow marker silences lockstep-wait", "src/exec/offload.cpp",
       "// terminal drain barrier. vmc-lint: allow(lockstep-wait-in-stream)\n"
       "dma.wait_idle();", ""},
      // --- stream-overlap ---
      {"duplicate stream tags fire", "src/core/a.cpp",
       "rng::Stream s(seed ^ 0xbadc0deULL);\n"
       "rng::Stream t(seed ^ 0xbadc0deULL);", "stream-overlap"},
      {"distinct stream tags are clean", "src/core/b.cpp",
       "rng::Stream s(seed ^ 0x11ULL);\nrng::Stream t(seed ^ 0x22ULL);", ""},
      {"for_particle is clean", "src/core/c.cpp",
       "auto s = rng::Stream::for_particle(master, id);\n"
       "auto t = rng::Stream::for_particle(master, id2);", ""},
      {"allowed mirror stream is clean", "src/exec/d.cpp",
       "rng::Stream a(seed ^ 0x7ULL);\n"
       "// vmc-lint: allow(stream-overlap)\n"
       "rng::Stream b(seed ^ 0x7ULL);", ""},
      // --- raw-intrinsic ---
      {"mm256 intrinsic in kernel fires", "src/xsdata/lookup.cpp",
       "__m256 v = _mm256_loadu_ps(p);", "raw-intrinsic"},
      {"mm512 intrinsic in bench fires", "bench/fig2_lookup_rates.cpp",
       "acc = _mm512_add_ps(acc, v);", "raw-intrinsic"},
      {"immintrin include fires", "src/core/event.cpp",
       "#include <immintrin.h>", "raw-intrinsic"},
      {"emmintrin include fires", "src/exec/offload.cpp",
       "#include <emmintrin.h>", "raw-intrinsic"},
      {"intrinsics in src/simd are clean", "src/simd/vec.hpp",
       "__m512 r = _mm512_i32gather_ps(iv, p, 4);", ""},
      {"intrinsic in comment is clean", "src/xsdata/lookup.cpp",
       "// the paper's kernel used _mm512_load_ps here", ""},
      {"mmask type fires", "src/physics/collision.cpp",
       "__mmask16 m = 0xffff;", "raw-intrinsic"},
      {"allow marker silences raw-intrinsic", "src/exec/offload.cpp",
       "// vmc-lint: allow(raw-intrinsic)\n_mm_pause();", ""},
      // --- isa-flag-leak ---
      {"target attribute in kernel fires", "src/xsdata/lookup.cpp",
       "__attribute__((target(\"avx2\"))) void k(const double* p);",
       "isa-flag-leak"},
      {"target_clones in core fires", "src/core/event.cpp",
       "[[gnu::target_clones(\"avx2\", \"default\")]] void sweep();",
       "isa-flag-leak"},
      {"GCC target pragma fires", "src/physics/collision.cpp",
       "#pragma GCC target(\"avx512f\")", "isa-flag-leak"},
      {"push_options pragma fires", "src/exec/offload.cpp",
       "#pragma GCC push_options", "isa-flag-leak"},
      {"target attribute in src/simd is clean", "src/simd/vec.hpp",
       "__attribute__((target(\"avx2\"))) inline __m256 g(const float* p);",
       ""},
      {"per-ISA kernel TU is exempt", "src/xsdata/kernels_isa.cpp",
       "#pragma GCC push_options", ""},
      {"target pragma in comment is clean", "src/core/event.cpp",
       "// #pragma GCC target would re-flag this TU; dispatch instead", ""},
      {"diagnostic pragma is clean", "src/xsdata/lookup.cpp",
       "#pragma GCC diagnostic push", ""},
      {"aligned attribute is clean", "src/particle/bank.cpp",
       "struct __attribute__((aligned(64))) Slab { double v[8]; };", ""},
      {"allow marker silences isa-flag-leak", "src/exec/offload.cpp",
       "// vmc-lint: allow(isa-flag-leak)\n#pragma GCC push_options", ""},
      // --- hardcoded-lane-width ---
      {"literal Vec lanes fires", "src/xsdata/kern.cpp",
       "simd::Vec<float, 8> v(0.0f);", "hardcoded-lane-width"},
      {"literal Mask lanes fires", "src/particle/bank.cpp",
       "simd::Mask<float, 16> alive;", "hardcoded-lane-width"},
      {"literal stride loop fires", "src/core/event.cpp",
       "for (std::size_t j = 0; j < n; j += 16) { work(j); }",
       "hardcoded-lane-width"},
      {"literal round-down fires", "src/xsdata/kern.cpp",
       "const std::size_t nv = n / 8 * 8;", "hardcoded-lane-width"},
      {"modulo lane literal fires", "src/xsdata/kern.cpp",
       "const int r = n % 16;", "hardcoded-lane-width"},
      {"width-named literal decl fires", "src/particle/bank.cpp",
       "constexpr int kLanes = 16;", "hardcoded-lane-width"},
      {"width_v decl is clean", "src/xsdata/kern.cpp",
       "constexpr int kLanes = simd::width_v<float>;", ""},
      {"Vec with width ident is clean", "src/xsdata/kern.cpp",
       "using VF = simd::Vec<float, kLanes>;", ""},
      {"ident stride loop is clean", "src/core/event.cpp",
       "for (std::size_t j = 0; j < n; j += step) { work(j); }", ""},
      {"tile depth constant is clean", "src/xsdata/kern.cpp",
       "constexpr int P = 8;", ""},
      {"literal width outside kernel scope is clean", "src/geom/csg.cpp",
       "const int faces = n % 8;", ""},
      {"allow marker silences lane width", "src/xsdata/kern.cpp",
       "// vmc-lint: allow(hardcoded-lane-width)\n"
       "const std::size_t nv = n / 8 * 8;", ""},
      // --- unmasked-remainder ---
      {"stride loop without masked tail fires", "src/xsdata/sweep.cpp",
       "constexpr int kW = simd::width_v<float>;\n"
       "void f(const float* p, int n) {\n"
       "  for (int i = 0; i < n; i += kW) {\n"
       "    consume(VF::loadu(p + i));\n"
       "  }\n"
       "}\n", "unmasked-remainder"},
      {"masked tail in body is clean", "src/xsdata/sweep.cpp",
       "constexpr int kW = simd::width_v<float>;\n"
       "void f(const float* p, int n) {\n"
       "  for (int i = 0; i < n; i += kW) {\n"
       "    const int rem = n - i;\n"
       "    consume(VF::load_partial(p + i, rem, 0.0f));\n"
       "  }\n"
       "}\n", ""},
      {"masked tail after loop is clean", "src/core/event.cpp",
       "constexpr int L = simd::native_lanes<double>;\n"
       "void g(const double* p, double* q, std::size_t nv, std::size_t n) {\n"
       "  for (std::size_t j = 0; j < nv; j += L) {\n"
       "    step(VD::load(p + j), q + j);\n"
       "  }\n"
       "  tail(VD::load_partial(p + nv, n - nv, 1.0), q + nv);\n"
       "}\n", ""},
      {"padded loop with allow marker is clean", "src/multipole/wmp.cpp",
       "constexpr int L = simd::width_v<double>;\n"
       "void g(int n) {\n"
       "  // count padded to a lane multiple. vmc-lint: allow(unmasked-remainder)\n"
       "  for (int k = 0; k < n; k += L) {\n"
       "    use(k);\n"
       "  }\n"
       "}\n", ""},
      {"non-width stride loop is clean", "src/xsdata/sweep.cpp",
       "void f(int n, int chunk) {\n"
       "  for (int i = 0; i < n; i += chunk) {\n"
       "    use(i);\n"
       "  }\n"
       "}\n", ""},
      {"stride loop in bench is exempt by scope", "bench/tab1.cpp",
       "constexpr int L = simd::native_lanes<float>;\n"
       "void f(const float* p, std::size_t nv) {\n"
       "  for (std::size_t j = 0; j < nv; j += L) {\n"
       "    use(VF::load(p + j));\n"
       "  }\n"
       "}\n", ""},
      // --- float-order-dependence ---
      {"float accumulate fires", "src/exec/driver.cpp",
       "const double s = std::accumulate(v.begin(), v.end(), 0.0);",
       "float-order-dependence"},
      {"integer accumulate is clean", "src/exec/driver.cpp",
       "const std::size_t s =\n"
       "    std::accumulate(q.begin(), q.end(), std::size_t{0});", ""},
      {"range-for float reduction fires", "src/core/driver.cpp",
       "double total = 0.0;\n"
       "void f(const std::vector<double>& totals) {\n"
       "  for (const double t : totals) {\n"
       "    total += t;\n"
       "  }\n"
       "}\n", "float-order-dependence"},
      {"indexed float reduction fires", "src/core/driver.cpp",
       "void f(const std::vector<double>& global, std::size_t n) {\n"
       "  double k_coll = 0.0;\n"
       "  for (std::size_t b = 0; b < n; ++b) {\n"
       "    k_coll += global[3 * b + 0];\n"
       "  }\n"
       "}\n", "float-order-dependence"},
      {"ordered_sum call is clean", "src/core/driver.cpp",
       "const double k = core::ordered_sum_strided(global, 3, 0);", ""},
      {"accumulating ordered_sum chunks is clean", "src/exec/pipe.cpp",
       "void f(const std::vector<double>& chunks, std::size_t n) {\n"
       "  std::vector<double> totals(n);\n"
       "  double checksum = 0.0;\n"
       "  for (std::size_t i = 0; i < n; ++i) {\n"
       "    checksum += core::ordered_sum(totals[i]);\n"
       "  }\n"
       "}\n", ""},
      {"counter reduction is clean", "src/core/driver.cpp",
       "void f(const std::vector<Bank>& banks) {\n"
       "  std::size_t total = 0;\n"
       "  for (const auto& b : banks) {\n"
       "    total += b.size();\n"
       "  }\n"
       "}\n", ""},
      {"single update outside loop is clean", "src/core/driver.cpp",
       "std::vector<double> v;\n"
       "double x = 0.0;\n"
       "void bump() {\n"
       "  x += v[0];\n"
       "}\n", ""},
      {"reduction in sanctioned tally file is clean", "src/core/tally.cpp",
       "double ordered_sum(std::span<const double> xs) {\n"
       "  double s = 0.0;\n"
       "  for (const double x : xs) s += x;\n"
       "  return s;\n"
       "}\n", ""},
      {"float reduction outside scope is clean", "src/comm/comm.cpp",
       "void f(const std::vector<double>& in) {\n"
       "  double s = 0.0;\n"
       "  for (const double x : in) {\n"
       "    s += x;\n"
       "  }\n"
       "}\n", ""},
      {"allow marker silences float-order", "src/exec/driver.cpp",
       "// vmc-lint: allow(float-order-dependence)\n"
       "const double s = std::accumulate(v.begin(), v.end(), 0.0);", ""},
      // --- naked-catch-in-exec ---
      {"swallowing catch-all in exec fires", "src/exec/offload.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  } catch (...) {\n"
       "    count = 0;\n"
       "  }\n"
       "}\n", "naked-catch-in-exec"},
      {"rethrowing catch-all is clean", "src/exec/offload.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  } catch (...) {\n"
       "    cleanup();\n"
       "    throw;\n"
       "  }\n"
       "}\n", ""},
      {"catch-all routed through resil helper is clean",
       "src/exec/offload.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  } catch (...) {\n"
       "    resil::record_degrade(\"offload.compute\");\n"
       "  }\n"
       "}\n", ""},
      {"typed catch is clean", "src/exec/offload.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  } catch (const resil::TransientError&) {\n"
       "    out.ok = false;\n"
       "  }\n"
       "}\n", ""},
      {"throwing a NEW exception does not sanction the swallow",
       "src/exec/pipe.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  } catch (...) {\n"
       "    if (fatal) throw std::runtime_error(\"x\");\n"
       "  }\n"
       "}\n", "naked-catch-in-exec"},
      {"catch-all outside exec is clean", "src/core/statepoint.cpp",
       "void f() {\n"
       "  try {\n"
       "    read();\n"
       "  } catch (...) {\n"
       "    ok = false;\n"
       "  }\n"
       "}\n", ""},
      {"allow marker silences naked-catch", "src/exec/offload.cpp",
       "void f() {\n"
       "  try {\n"
       "    sweep();\n"
       "  // vmc-lint: allow(naked-catch-in-exec)\n"
       "  } catch (...) {\n"
       "    best_effort_trace();\n"
       "  }\n"
       "}\n", ""},
      // --- stale-allow ---
      {"stale allow marker fires", "src/core/driver.cpp",
       "// vmc-lint: allow(raw-clock)\n"
       "const double t = prof::now_seconds();", "stale-allow"},
      {"unknown rule in allow marker fires", "src/core/driver.cpp",
       "// vmc-lint: allow(no-such-rule)\nint x = 0;", "stale-allow"},
  };

  int failures = 0;
  for (const Case& c : cases) {
    const ScanResult r = scan_snippet(c.rel, c.content);
    const bool fired = !r.violations.empty();
    const bool want_fire = c.rule[0] != '\0';
    bool ok = fired == want_fire;
    if (ok && want_fire) {
      ok = false;
      for (const auto& v : r.violations) {
        if (v.rule == c.rule) ok = true;
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "SELF-TEST FAIL: %s (expected %s, got %zu "
                   "violation(s)%s%s)\n",
                   c.name, want_fire ? c.rule : "clean", r.violations.size(),
                   fired ? ": " : "",
                   fired ? r.violations.front().rule.c_str() : "");
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("vmc_lint self-test: %zu cases ok\n",
                sizeof(cases) / sizeof(cases[0]));
    return 0;
  }
  return 2;  // a mis-firing rule means the tool is broken, not the tree dirty
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool run_self_test = false;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == "--self-test") {
      run_self_test = true;
    } else if (a == "--json") {
      json = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "vmc_lint: unknown option %s\n", argv[i]);
      std::fprintf(stderr, "usage: vmc_lint [--json] <repo-root> | --self-test\n");
      return 2;
    } else if (root_arg.empty()) {
      root_arg = std::string(a);
    } else {
      std::fprintf(stderr, "usage: vmc_lint [--json] <repo-root> | --self-test\n");
      return 2;
    }
  }
  if (run_self_test) return self_test();
  if (root_arg.empty()) {
    std::fprintf(stderr, "usage: vmc_lint [--json] <repo-root> | --self-test\n");
    return 2;
  }
  const fs::path root(root_arg);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "vmc_lint: %s has no src/ directory\n",
                 root_arg.c_str());
    return 2;
  }
  Analyzer a;
  if (load_tree(root, a) != 0) return 2;
  const ScanResult r = a.run();
  if (json) {
    print_json(r, root_arg);
  } else {
    print_text(r);
  }
  return r.violations.empty() ? 0 : 1;
}
