// vmc_lint — VectorMC-specific static checks the compiler can't do.
//
// The SIMD/banking design only wins if a handful of project invariants hold
// everywhere, forever. Each is enforced here and registered as a CTest:
//
//   raw-alloc        No raw new[] / malloc-family allocation in the SIMD,
//                    particle-bank, or cross-section layers: every kernel
//                    buffer must come from vmc::simd::aligned allocation so
//                    the 64-byte-alignment contract (paper, Algorithm 4)
//                    can't silently rot.
//   unaligned-simd-buffer
//                    No plain std::vector<arithmetic> in src/simd/ or the
//                    banked lookup kernels — use simd::aligned_vector.
//   raw-rand         No rand()/std::rand()/srand() outside src/rng/: the
//                    reproducibility contract requires every draw to come
//                    from a per-particle LCG stream.
//   hot-loop-mutex   No mutex/lock/condvar types in per-particle transport
//                    code (physics, geometry, multipole, SoA bank, history
//                    and event loops). Cross-thread traffic must go through
//                    the sanctioned types (ConcurrentBank, TallyAccumulator,
//                    ThreadPool) that live outside the hot path.
//   stream-overlap   Two direct rng::Stream constructions with the same
//                    seed-derivation expression produce the SAME stream —
//                    a silent correlation bug. Every direct construction in
//                    library code must use a distinct derivation (or
//                    Stream::for_particle).
//   raw-clock        No direct std::chrono::*_clock::now() outside src/prof/
//                    and src/obs/: every timestamp must flow through
//                    prof::now_seconds() (one epoch, one clock) or the obs
//                    tracer, or traces/metrics/profiles silently disagree
//                    about what "now" means. (bench/ is not scanned; the
//                    harnesses there already use prof::now_seconds().)
//   unchecked-io     No statement-position fwrite/fread whose return value
//                    is discarded: a short write is how a full disk turns
//                    into a corrupt statepoint. Check the count like
//                    statepoint.cpp's CheckedWriter/CheckedReader (that file
//                    is the sanctioned exception — its helpers ARE the
//                    check).
//   hot-loop-binary-search
//                    No std::upper_bound/std::lower_bound outside
//                    src/xsdata/: the hash-binned energy-grid accelerator
//                    (xsdata/hash_grid.hpp) exists so per-particle grid
//                    searches never re-grow an O(log n) binary search in
//                    transport code. Grid resolution must go through
//                    Library's lookup kernels (or HashGrid directly).
//
// A deliberate exception is annotated on its line (or the line above) with:
//     vmc-lint: allow(<rule-name>)
//
// Usage:
//   vmc_lint <repo-root>    scan src/ and tools/ under <repo-root>
//   vmc_lint --self-test    run each rule against seeded positive/negative
//                           snippets and fail if any rule mis-fires
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel_path;             // forward-slash path relative to root
  std::vector<std::string> raw;     // original lines (marker detection)
  std::vector<std::string> code;    // lines with comments/strings blanked
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool has_allow_marker(const SourceFile& f, std::size_t line_idx,
                      const std::string& rule) {
  const std::string marker = "vmc-lint: allow(" + rule + ")";
  if (f.raw[line_idx].find(marker) != std::string::npos) return true;
  return line_idx > 0 &&
         f.raw[line_idx - 1].find(marker) != std::string::npos;
}

// Blank out comments and string/char literals, preserving line structure so
// reported line numbers match the file. Rules then match real code only,
// while allow-markers are still found in the raw text.
std::vector<std::string> strip_comments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string r;
    r.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          r += "  ";
          i += 2;
        } else {
          r += ' ';
          ++i;
        }
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // rest of line is a comment
      } else if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        r += "  ";
        i += 2;
      } else if (line[i] == '"' || line[i] == '\'') {
        const char q = line[i];
        r += q;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            r += "  ";
            i += 2;
          } else if (line[i] == q) {
            r += q;
            ++i;
            break;
          } else {
            r += ' ';
            ++i;
          }
        }
      } else {
        r += line[i];
        ++i;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

// --- rule scoping ----------------------------------------------------------

bool in_any_dir(const std::string& rel,
                std::initializer_list<std::string_view> dirs) {
  for (const auto d : dirs) {
    if (starts_with(rel, d)) return true;
  }
  return false;
}

bool raw_alloc_scope(const std::string& rel) {
  return in_any_dir(rel, {"src/simd/", "src/particle/", "src/xsdata/"});
}

bool aligned_buffer_scope(const std::string& rel) {
  return in_any_dir(rel, {"src/simd/"}) ||
         starts_with(rel, "src/xsdata/lookup.");
}

bool raw_rand_scope(const std::string& rel) {
  return !in_any_dir(rel, {"src/rng/"});
}

bool hot_loop_scope(const std::string& rel) {
  return in_any_dir(rel, {"src/simd/", "src/physics/", "src/geom/",
                          "src/multipole/", "src/hm/", "src/rng/"}) ||
         starts_with(rel, "src/core/history.") ||
         starts_with(rel, "src/core/event.") ||
         starts_with(rel, "src/particle/bank.");
}

bool stream_overlap_scope(const std::string& rel) {
  // Library + tools code only: benches/examples are separate processes, so
  // a repeated literal seed across them is not an in-process overlap.
  return (in_any_dir(rel, {"src/", "tools/"}) &&
          !in_any_dir(rel, {"src/rng/"}));
}

bool raw_clock_scope(const std::string& rel) {
  // src/prof/ defines the sanctioned monotonic clock (prof::now_seconds);
  // src/obs/ is allowed system_clock for wall-time manifest stamps. Everyone
  // else inherits their timebase.
  return in_any_dir(rel, {"src/", "tools/"}) &&
         !in_any_dir(rel, {"src/prof/", "src/obs/"});
}

bool binary_search_scope(const std::string& rel) {
  // src/xsdata/ owns the sanctioned searches (UnionGrid::find, HashGrid's
  // window resolution); everywhere else must call those.
  return in_any_dir(rel, {"src/", "tools/"}) &&
         !in_any_dir(rel, {"src/xsdata/"});
}

bool unchecked_io_scope(const std::string& rel) {
  // statepoint.cpp hosts the sanctioned CheckedWriter/CheckedReader wrappers
  // (every raw call there feeds a checked helper or an if); everywhere else
  // a discarded fread/fwrite silently loses I/O errors.
  return in_any_dir(rel, {"src/", "tools/"}) &&
         rel != "src/core/statepoint.cpp";
}

// --- per-line rules --------------------------------------------------------

const std::regex kRawAlloc(
    R"(\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\(|\b_mm_malloc\b|\bnew\s+[A-Za-z_][\w:<>,\s]*\[)");
const std::regex kPlainVector(
    R"(std::vector<\s*(float|double|char|short|int|long|unsigned|std::u?int\d+_t|std::size_t|std::ptrdiff_t)\b)");
const std::regex kRawRand(R"(\bstd::rand\b|\bsrand\s*\(|\brand\s*\()");
const std::regex kMutexFamily(
    R"(std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable))");
// Direct construction: `Stream name(args)`, `Stream name{args}`, or a
// temporary `Stream(args)`. Stream::for_particle is the sanctioned factory;
// `StreamSet` and `Stream&` parameter declarations must not match.
const std::regex kStreamCtor(
    R"(\bStream(?:\s+[A-Za-z_]\w*)?\s*[({]([^)}]*)[)}])");
const std::regex kIntLiteral(R"(0[xX][0-9a-fA-F]+|\b\d+\b)");
const std::regex kRawClock(
    R"(std::chrono::(steady_clock|system_clock|high_resolution_clock)::now\s*\()");
// Statement-position fread/fwrite: the call starts the line or follows a
// statement/block boundary, so its return value is discarded. Calls inside
// an if/assignment/comparison have a non-boundary prefix and don't match.
const std::regex kUncheckedIo(
    R"((?:^|[;{}])\s*(?:std::)?f(?:read|write)\s*\()");
// A call, not an identifier: `upper_bounds` or a member named lower_bound
// without a call don't match.
const std::regex kBinarySearch(
    R"(\b(?:std::)?(?:upper|lower)_bound\s*\()");

// Two seed derivations overlap when they mix in the same constants, even if
// the non-constant part is spelled differently (`settings.seed` vs
// `settings_.seed`): the tag constants ARE the stream identity. Key a
// construction by its integer literals when it has any, else by the
// whitespace-stripped expression.
std::string derivation_key(const std::string& args) {
  std::string lits;
  for (auto it = std::sregex_iterator(args.begin(), args.end(), kIntLiteral);
       it != std::sregex_iterator(); ++it) {
    if (!lits.empty()) lits += ',';
    lits += it->str();
  }
  if (!lits.empty()) return lits;
  std::string out;
  for (const char c : args) {
    if (c != ' ' && c != '\t') out += c;
  }
  return out;
}

void scan_file(const SourceFile& f, std::vector<Violation>& out,
               std::map<std::string, std::vector<std::pair<std::string, std::size_t>>>&
                   stream_ctors) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (line.empty()) continue;

    if (raw_alloc_scope(f.rel_path) &&
        std::regex_search(line, kRawAlloc) &&
        !has_allow_marker(f, i, "raw-alloc")) {
      out.push_back({f.rel_path, i + 1, "raw-alloc",
                     "raw allocation in an aligned-buffer layer; use "
                     "vmc::simd::aligned_vector / AlignedAllocator"});
    }

    if (aligned_buffer_scope(f.rel_path) &&
        std::regex_search(line, kPlainVector) &&
        line.find("AlignedAllocator") == std::string::npos &&
        !has_allow_marker(f, i, "unaligned-simd-buffer")) {
      out.push_back({f.rel_path, i + 1, "unaligned-simd-buffer",
                     "plain std::vector of arithmetic type in SIMD kernel "
                     "code; use simd::aligned_vector"});
    }

    if (raw_rand_scope(f.rel_path) &&
        std::regex_search(line, kRawRand) &&
        !has_allow_marker(f, i, "raw-rand")) {
      out.push_back({f.rel_path, i + 1, "raw-rand",
                     "rand()/srand() outside src/rng/; draw from a "
                     "vmc::rng::Stream instead"});
    }

    if (hot_loop_scope(f.rel_path) &&
        std::regex_search(line, kMutexFamily) &&
        !has_allow_marker(f, i, "hot-loop-mutex")) {
      out.push_back({f.rel_path, i + 1, "hot-loop-mutex",
                     "mutex/lock/condvar in per-particle hot-path code; "
                     "route cross-thread traffic through ConcurrentBank / "
                     "TallyAccumulator / ThreadPool"});
    }

    if (raw_clock_scope(f.rel_path) &&
        std::regex_search(line, kRawClock) &&
        !has_allow_marker(f, i, "raw-clock")) {
      out.push_back({f.rel_path, i + 1, "raw-clock",
                     "direct std::chrono clock call outside src/prof//"
                     "src/obs/; use prof::now_seconds() so all timestamps "
                     "share one epoch"});
    }

    if (unchecked_io_scope(f.rel_path) &&
        std::regex_search(line, kUncheckedIo) &&
        !has_allow_marker(f, i, "unchecked-io")) {
      out.push_back({f.rel_path, i + 1, "unchecked-io",
                     "fwrite/fread return value discarded; a short "
                     "read/write must be detected — check the count as "
                     "statepoint.cpp's CheckedWriter/CheckedReader do"});
    }

    if (binary_search_scope(f.rel_path) &&
        std::regex_search(line, kBinarySearch) &&
        !has_allow_marker(f, i, "hot-loop-binary-search")) {
      out.push_back({f.rel_path, i + 1, "hot-loop-binary-search",
                     "std::upper_bound/lower_bound outside src/xsdata/; "
                     "grid searches belong in the lookup kernels, which use "
                     "the hash-binned accelerator (xsdata/hash_grid.hpp)"});
    }

    if (stream_overlap_scope(f.rel_path)) {
      std::smatch m;
      std::string tail = line;
      while (std::regex_search(tail, m, kStreamCtor)) {
        const std::string args = m[1].str();
        // Default construction and the factory path are fine.
        if (!args.empty() && args.find("for_particle") == std::string::npos &&
            !has_allow_marker(f, i, "stream-overlap")) {
          stream_ctors[derivation_key(args)].push_back({f.rel_path, i + 1});
        }
        tail = m.suffix().str();
      }
    }
  }
}

void finish_stream_rule(
    const std::map<std::string,
                   std::vector<std::pair<std::string, std::size_t>>>& ctors,
    std::vector<Violation>& out) {
  for (const auto& [args, sites] : ctors) {
    if (sites.size() < 2) continue;
    for (const auto& [file, line] : sites) {
      out.push_back({file, line, "stream-overlap",
                     "rng::Stream seed derivation [" + args + "] appears at " +
                     std::to_string(sites.size()) +
                     " sites: identical streams => correlated histories. "
                     "Use a distinct xor tag or Stream::for_particle"});
    }
  }
}

std::vector<Violation> scan_tree(const fs::path& root) {
  std::vector<Violation> out;
  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>>
      stream_ctors;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".cc") {
        continue;
      }
      // Skip the linter itself: its rule tables contain the very tokens the
      // rules search for.
      if (e.path().filename() == "vmc_lint.cpp") continue;
      SourceFile f;
      f.rel_path = fs::relative(e.path(), root).generic_string();
      std::ifstream in(e.path());
      std::string line;
      while (std::getline(in, line)) f.raw.push_back(line);
      f.code = strip_comments(f.raw);
      scan_file(f, out, stream_ctors);
    }
  }
  finish_stream_rule(stream_ctors, out);
  return out;
}

// --- self test -------------------------------------------------------------

SourceFile make_file(const std::string& rel, const std::string& content) {
  SourceFile f;
  f.rel_path = rel;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) f.raw.push_back(line);
  f.code = strip_comments(f.raw);
  return f;
}

int self_test() {
  struct Case {
    const char* name;
    const char* rel;
    const char* content;
    const char* rule;   // rule expected to fire; "" = expect clean
  };
  const Case cases[] = {
      {"malloc in simd fires", "src/simd/kernel.cpp",
       "double* p = (double*)malloc(n * sizeof(double));", "raw-alloc"},
      {"array new in bank fires", "src/particle/scratch.cpp",
       "auto* buf = new float[n];", "raw-alloc"},
      {"malloc outside scope is clean", "src/comm/comm.cpp",
       "void* p = malloc(64);", ""},
      {"malloc in comment is clean", "src/simd/kernel.cpp",
       "// the paper used _mm_malloc here", ""},
      {"allow marker silences raw-alloc", "src/simd/kernel.cpp",
       "// vmc-lint: allow(raw-alloc)\nauto* p = new double[8];", ""},
      {"plain vector in simd fires", "src/simd/sweep.cpp",
       "std::vector<double> buf(n);", "unaligned-simd-buffer"},
      {"plain vector in banked lookup fires", "src/xsdata/lookup.cpp",
       "std::vector<float> xs(n);", "unaligned-simd-buffer"},
      {"aligned vector is clean", "src/simd/sweep.cpp",
       "simd::aligned_vector<double> buf(n);", ""},
      {"vector of structs is clean", "src/simd/sweep.cpp",
       "std::vector<Span> spans;", ""},
      {"rand in physics fires", "src/physics/collision.cpp",
       "const int r = rand();", "raw-rand"},
      {"std::rand in tools fires", "tools/vmc_run.cpp",
       "double u = std::rand() / (double)RAND_MAX;", "raw-rand"},
      {"rand inside identifier is clean", "src/physics/collision.cpp",
       "const double strand(int);", ""},
      {"rand in src/rng is clean", "src/rng/compat.hpp",
       "inline int wrap() { return rand(); }", ""},
      {"mutex in collision fires", "src/physics/collision.cpp",
       "static std::mutex mu;", "hot-loop-mutex"},
      {"lock_guard in SoA bank fires", "src/particle/bank.cpp",
       "std::lock_guard lk(mu_);", "hot-loop-mutex"},
      {"mutex in thread pool is clean", "src/exec/thread_pool.cpp",
       "std::mutex mu_;", ""},
      {"mutex in concurrent bank is clean", "src/particle/concurrent_bank.cpp",
       "std::lock_guard lk(mu_);", ""},
      {"steady_clock in core fires", "src/core/eigenvalue.cpp",
       "const auto t0 = std::chrono::steady_clock::now();", "raw-clock"},
      {"system_clock in tools fires", "tools/vmc_run.cpp",
       "auto wall = std::chrono::system_clock::now();", "raw-clock"},
      {"high_resolution_clock fires", "src/exec/thread_pool.cpp",
       "auto t = std::chrono::high_resolution_clock::now();", "raw-clock"},
      {"clock in src/prof is clean", "src/prof/profiler.hpp",
       "return std::chrono::steady_clock::now().time_since_epoch();", ""},
      {"clock in src/obs is clean", "src/obs/manifest.cpp",
       "const auto now = std::chrono::system_clock::now();", ""},
      {"clock in comment is clean", "src/core/eigenvalue.cpp",
       "// std::chrono::steady_clock::now() would drift from prof", ""},
      {"duration types without now() are clean", "src/exec/distributed.cpp",
       "std::chrono::milliseconds timeout(500);", ""},
      {"allow marker silences raw-clock", "src/core/statepoint.cpp",
       "// vmc-lint: allow(raw-clock)\n"
       "auto stamp = std::chrono::system_clock::now();", ""},
      {"unchecked fwrite fires", "src/core/mesh_io.cpp",
       "std::fwrite(buf, 1, n, f);", "unchecked-io"},
      {"unchecked fread after block fires", "tools/vmc_dump.cpp",
       "while (more) { fread(buf, 1, n, f); }", "unchecked-io"},
      {"checked fwrite is clean", "src/core/mesh_io.cpp",
       "if (std::fwrite(buf, 1, n, f) != n) { fail(); }", ""},
      {"assigned fread is clean", "src/core/mesh_io.cpp",
       "const std::size_t got = std::fread(buf, 1, n, f);", ""},
      {"statepoint checked helpers are exempt", "src/core/statepoint.cpp",
       "std::fwrite(p, 1, n, f);", ""},
      {"fread in a comment is clean", "src/core/mesh_io.cpp",
       "// fread(buf, 1, n, f); would lose errors here", ""},
      {"allow marker silences unchecked-io", "src/core/mesh_io.cpp",
       "// vmc-lint: allow(unchecked-io)\nfwrite(magic, 1, 4, f);", ""},
      {"upper_bound in core fires", "src/core/mesh_tally.cpp",
       "const auto it = std::upper_bound(e.begin(), e.end(), x);",
       "hot-loop-binary-search"},
      {"lower_bound in tools fires", "tools/vmc_dump.cpp",
       "auto it = lower_bound(v.begin(), v.end(), key);",
       "hot-loop-binary-search"},
      {"upper_bound in xsdata is clean", "src/xsdata/hash_grid.cpp",
       "auto it = std::upper_bound(g + lo, g + hi, e);", ""},
      {"upper_bounds identifier is clean", "src/obs/metrics.cpp",
       "const auto& upper_bounds = h.upper_bounds;", ""},
      {"upper_bound in comment is clean", "src/core/event.cpp",
       "// replaces the per-particle std::upper_bound(...)", ""},
      {"allow marker silences binary-search", "src/core/mesh_tally.cpp",
       "// vmc-lint: allow(hot-loop-binary-search)\n"
       "const auto it = std::upper_bound(e.begin(), e.end(), x);", ""},
      {"duplicate stream tags fire", "src/core/a.cpp",
       "rng::Stream s(seed ^ 0xbadc0deULL);\n"
       "rng::Stream t(seed ^ 0xbadc0deULL);", "stream-overlap"},
      {"distinct stream tags are clean", "src/core/b.cpp",
       "rng::Stream s(seed ^ 0x11ULL);\nrng::Stream t(seed ^ 0x22ULL);", ""},
      {"for_particle is clean", "src/core/c.cpp",
       "auto s = rng::Stream::for_particle(master, id);\n"
       "auto t = rng::Stream::for_particle(master, id2);", ""},
      {"allowed mirror stream is clean", "src/exec/d.cpp",
       "rng::Stream a(seed ^ 0x7ULL);\n"
       "// vmc-lint: allow(stream-overlap)\n"
       "rng::Stream b(seed ^ 0x7ULL);", ""},
  };

  int failures = 0;
  for (const Case& c : cases) {
    std::vector<Violation> out;
    std::map<std::string, std::vector<std::pair<std::string, std::size_t>>>
        ctors;
    scan_file(make_file(c.rel, c.content), out, ctors);
    finish_stream_rule(ctors, out);
    const bool fired = !out.empty();
    const bool want_fire = c.rule[0] != '\0';
    bool ok = fired == want_fire;
    if (ok && want_fire) {
      ok = false;
      for (const auto& v : out) {
        if (v.rule == c.rule) ok = true;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "SELF-TEST FAIL: %s (expected %s, got %zu "
                   "violation(s)%s%s)\n",
                   c.name, want_fire ? c.rule : "clean", out.size(),
                   fired ? ": " : "", fired ? out.front().rule.c_str() : "");
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("vmc_lint self-test: %zu cases ok\n",
                sizeof(cases) / sizeof(cases[0]));
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string_view(argv[1]) == "--self-test") {
    return self_test();
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: vmc_lint <repo-root> | --self-test\n");
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "vmc_lint: %s has no src/ directory\n", argv[1]);
    return 2;
  }
  const std::vector<Violation> vs = scan_tree(root);
  for (const auto& v : vs) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (vs.empty()) {
    std::printf("vmc_lint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "vmc_lint: %zu violation(s)\n", vs.size());
  return 1;
}
