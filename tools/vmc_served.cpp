// vmc_served: the vmc_serve daemon over a file-drop inbox.
//
// Clients drop vectormc.job.v1 documents (*.json) into --inbox; the daemon
// claims each (rename — safe against concurrent producers and peer daemons),
// admits it through the serve stack, and publishes a vectormc.result.v1 per
// job into --outbox as <basename>.result.json (atomic tmp+rename, so pollers
// never see a torn document). Rejections publish a result too, carrying the
// structured error. Touching `<inbox>/STOP` drains in-flight work, writes
// the observability artifacts (metrics.prom, manifest.json, trace.json when
// --obs-dir is set), and exits 0.
//
// Usage:
//   vmc_served --inbox DIR --outbox DIR [--workers N] [--cache-mb MB]
//              [--checkpoint-dir DIR] [--checkpoint-every G]
//              [--obs-dir DIR] [--poll-ms MS]
//
// The file-drop transport was chosen over a socket deliberately: it is
// load-balancer-friendly (N daemons can share one inbox via rename claims),
// trivially scriptable in CI, and needs no privileged ports in containers.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"

namespace {

struct Args {
  std::string inbox;
  std::string outbox;
  std::string obs_dir;
  vmc::serve::ServerConfig cfg;
  double poll_seconds = 0.05;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --inbox DIR --outbox DIR [--workers N]\n"
               "        [--cache-mb MB] [--checkpoint-dir DIR]\n"
               "        [--checkpoint-every G] [--obs-dir DIR] [--poll-ms MS]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--inbox") {
      a.inbox = next();
    } else if (flag == "--outbox") {
      a.outbox = next();
    } else if (flag == "--workers") {
      a.cfg.workers = std::atoi(next().c_str());
    } else if (flag == "--cache-mb") {
      a.cfg.cache_bytes = static_cast<std::size_t>(std::atoll(next().c_str()))
                          << 20;
    } else if (flag == "--checkpoint-dir") {
      a.cfg.checkpoint_dir = next();
    } else if (flag == "--checkpoint-every") {
      a.cfg.checkpoint_every = std::atoi(next().c_str());
    } else if (flag == "--obs-dir") {
      a.obs_dir = next();
    } else if (flag == "--poll-ms") {
      a.poll_seconds = std::atof(next().c_str()) / 1000.0;
    } else {
      usage(argv[0]);
    }
  }
  if (a.inbox.empty() || a.outbox.empty()) usage(argv[0]);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (!args.cfg.checkpoint_dir.empty())
    vmc::serve::spool::make_dirs(args.cfg.checkpoint_dir);
  if (!args.obs_dir.empty()) {
    vmc::serve::spool::make_dirs(args.obs_dir);
    vmc::obs::tracer().set_enabled(true);
  }

  vmc::serve::Server server(args.cfg);
  vmc::serve::InboxConfig inbox;
  inbox.inbox = args.inbox;
  inbox.outbox = args.outbox;
  inbox.poll_seconds = args.poll_seconds;

  const std::size_t published = vmc::serve::run_inbox(server, inbox);
  server.shutdown();

  const auto cache = server.cache_stats();
  std::printf("vmc_served: %zu results published | cache %llu hits / %llu "
              "misses / %llu evictions, %zu bytes resident\n",
              published, static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions), cache.bytes);

  if (!args.obs_dir.empty()) {
    vmc::obs::RunManifest manifest;
    manifest.set_run_kind("vmc_served");
    server.fill_manifest(manifest);
    manifest.capture_fault_summary();
    manifest.capture_metrics();
    manifest.write(args.obs_dir + "/manifest.json");
    vmc::serve::spool::write_file_atomic(
        args.obs_dir + "/metrics.prom",
        vmc::obs::metrics().snapshot().prometheus());
    vmc::obs::tracer().write(args.obs_dir + "/trace.json");
  }
  return 0;
}
