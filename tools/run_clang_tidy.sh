#!/usr/bin/env bash
# Run clang-tidy over the VectorMC sources with the repo's .clang-tidy
# profile (bugprone-*, concurrency-*, performance-*, and the narrowing
# checks — see .clang-tidy for the rationale).
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [file...]
#
#   build-dir   a configured CMake build tree with compile_commands.json
#               (default: build). Configured automatically if missing.
#   file...     restrict the run to these sources (e.g. the files changed in
#               a PR); default is every .cpp under src/, tools/, bench/, and
#               examples/ — the same roots vmc_lint scans.
#
# Exit codes (mirrors vmc_lint so CI can tell the cases apart):
#   0  clean — or clang-tidy is not installed (the container toolchain is
#      GCC-only; CI installs clang-tidy in the static-analysis job), so
#      local ctest runs don't fail on a missing optional tool
#   1  clang-tidy reported findings
#   2  setup failure (CMake configure failed, no sources to check found)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (install it or" \
       "use the CI static-analysis job)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: generating compile_commands.json in ${build_dir}"
  if ! cmake -B "${build_dir}" -S "${repo_root}" \
             -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
             -DVMC_NATIVE_ARCH=OFF >/dev/null; then
    echo "run_clang_tidy.sh: cmake configure failed" >&2
    exit 2
  fi
fi

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tools" \
                            "${repo_root}/bench" "${repo_root}/examples" \
                            -name '*.cpp' 2>/dev/null | sort)
fi
# Drop anything without a compile command (headers, removed files).
srcs=()
for f in "${files[@]}"; do
  [[ "$f" == *.cpp ]] && srcs+=("$f")
done
if [[ ${#srcs[@]} -eq 0 ]]; then
  echo "run_clang_tidy.sh: no .cpp files to check" >&2
  exit 2
fi

echo "run_clang_tidy.sh: checking ${#srcs[@]} file(s)"
status=0
for f in "${srcs[@]}"; do
  clang-tidy -p "${build_dir}" --quiet "$f" || status=1
done
exit ${status}
