// Shared helpers for the per-figure/table benchmark harnesses.
//
// Every harness prints a self-describing report: the paper artifact it
// regenerates, the machine context, then rows/series matching the paper's
// layout. `scale()` (env VMC_BENCH_SCALE, default 1.0) multiplies particle
// counts and grid sizes so the same binaries run in seconds for smoke tests
// and at full fidelity for real measurements.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "exec/machine.hpp"
#include "obs/json.hpp"
#include "prof/profiler.hpp"
#include "simd/simd.hpp"

namespace vmc::bench {

/// Global size multiplier from VMC_BENCH_SCALE.
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("VMC_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  return s <= 0.0 ? 1.0 : s;
}

inline std::size_t scaled(std::size_t n) {
  const double v = static_cast<double>(n) * scale();
  return v < 1.0 ? 1 : static_cast<std::size_t>(v);
}

/// Standard report header.
inline void header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("VectorMC reproduction: %s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("  ISA backend: %s (%d-bit vectors, host max %s), "
              "bench scale: %.3g\n",
              simd::dispatch().name, simd::dispatch().simd_bits,
              simd::isa_display_name(simd::host_max_isa()), scale());
  std::printf("==============================================================\n");
}

/// Machine-readable companion to the printed report. Harnesses construct a
/// Report instead of calling header() bare, then record the same numbers
/// they print as named rows; when the VMC_BENCH_JSON env var names a
/// directory, the destructor writes BENCH_<slug>.json there through the obs
/// JSON writer — every figure/table file shares the one serializer and the
/// one schema (`vectormc.bench.v1`, checked by tests/obs/test_bench_schema
/// and tools/vmc_obs_check --bench).
class Report {
 public:
  static constexpr const char* kSchema = "vectormc.bench.v1";

  Report(const char* slug, const char* artifact, const char* description)
      : slug_(slug), artifact_(artifact), description_(description) {
    header(artifact, description);
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    // Flush is best-effort: a benchmark must never fail because an artifact
    // directory is missing or read-only.
    try {
      flush();
    } catch (...) {
    }
  }

  Report& note(const char* key, const std::string& value) {
    string_notes_.emplace_back(key, value);
    return *this;
  }
  Report& note(const char* key, double value) {
    number_notes_.emplace_back(key, value);
    return *this;
  }

  /// One table row: named numeric cells, column order preserved.
  Report& row(std::initializer_list<std::pair<const char*, double>> cells) {
    std::vector<std::pair<std::string, double>> r;
    r.reserve(cells.size());
    for (const auto& [k, v] : cells) r.emplace_back(k, v);
    rows_.push_back(std::move(r));
    return *this;
  }

  /// The BENCH_<slug>.json document.
  std::string json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.member("schema", kSchema);
    w.member("name", slug_);
    w.member("artifact", artifact_);
    w.member("description", description_);
    // The dispatched backend the measured kernels ran on (vmc_bench_diff
    // keys baselines by this field and refuses cross-ISA comparisons).
    w.member("isa", simd::dispatch().name);
    w.member("simd_bits", simd::dispatch().simd_bits);
    w.member("bench_scale", scale());
    w.key("notes").begin_object();
    for (const auto& [k, v] : string_notes_) w.member(k, v);
    for (const auto& [k, v] : number_notes_) w.member(k, v);
    w.end_object();
    w.key("rows").begin_array();
    for (const auto& r : rows_) {
      w.begin_object();
      for (const auto& [k, v] : r) w.member(k, v);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

  /// Write BENCH_<slug>.json into $VMC_BENCH_JSON (no-op when unset).
  void flush() const {
    const char* dir = std::getenv("VMC_BENCH_JSON");
    if (dir == nullptr || dir[0] == '\0') return;
    std::filesystem::create_directories(dir);
    const std::string path = std::string(dir) + "/BENCH_" + slug_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << json();
  }

 private:
  std::string slug_;
  std::string artifact_;
  std::string description_;
  std::vector<std::pair<std::string, std::string>> string_notes_;
  std::vector<std::pair<std::string, double>> number_notes_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

/// Best-of-k wall time for a callable.
template <class Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = prof::now_seconds();
    fn();
    const double dt = prof::now_seconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

/// The measured per-particle work profile used when a harness needs device
/// projections without running a full transport simulation first.
inline exec::WorkProfile default_hm_large_profile() {
  exec::WorkProfile w;
  w.lookups_per_particle = 34.0;
  w.terms_per_lookup = 323.0;
  w.collisions_per_particle = 16.0;
  w.crossings_per_particle = 18.0;
  return w;
}

}  // namespace vmc::bench
