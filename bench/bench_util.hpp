// Shared helpers for the per-figure/table benchmark harnesses.
//
// Every harness prints a self-describing report: the paper artifact it
// regenerates, the machine context, then rows/series matching the paper's
// layout. `scale()` (env VMC_BENCH_SCALE, default 1.0) multiplies particle
// counts and grid sizes so the same binaries run in seconds for smoke tests
// and at full fidelity for real measurements.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/machine.hpp"
#include "prof/profiler.hpp"
#include "simd/simd.hpp"

namespace vmc::bench {

/// Global size multiplier from VMC_BENCH_SCALE.
inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("VMC_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  return s <= 0.0 ? 1.0 : s;
}

inline std::size_t scaled(std::size_t n) {
  const double v = static_cast<double>(n) * scale();
  return v < 1.0 ? 1 : static_cast<std::size_t>(v);
}

/// Standard report header.
inline void header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("VectorMC reproduction: %s\n", artifact);
  std::printf("  %s\n", description);
  std::printf("  host ISA: %s (%d-bit vectors), bench scale: %.3g\n",
              simd::isa_name(), simd::native_bits(), scale());
  std::printf("==============================================================\n");
}

/// Best-of-k wall time for a callable.
template <class Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = prof::now_seconds();
    fn();
    const double dt = prof::now_seconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

/// The measured per-particle work profile used when a harness needs device
/// projections without running a full transport simulation first.
inline exec::WorkProfile default_hm_large_profile() {
  exec::WorkProfile w;
  w.lookups_per_particle = 34.0;
  w.terms_per_lookup = 323.0;
  w.collisions_per_particle = 16.0;
  w.crossings_per_particle = 18.0;
  return w;
}

}  // namespace vmc::bench
