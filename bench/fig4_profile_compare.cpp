// Figure 4: TAU-style comparison profile of the full-physics history-based
// simulation, host CPU vs. MIC (native mode).
//
// The host column is measured for real with the prof timers enabled. The
// MIC column is the device projection: each routine's time is scaled by the
// calibrated per-op cost ratio of its class (lookups benefit from the MIC's
// bandwidth and thread count; serial-heavy routines do not), reproducing the
// paper's observation that the bottleneck lookup routines run FASTER on the
// MIC while the total comes out ~1.5x faster.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"
#include "prof/report.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 4",
                "comparison profile: host CPU vs. MIC native, H.M. Large");

  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::large;
  mo.grid_scale = std::min(1.0, 0.25 * bench::scale());
  const hm::Model model = hm::build_model(mo);

  prof::registry().reset();
  core::Settings st;
  st.n_particles = bench::scaled(2000);
  st.n_inactive = 1;
  st.n_active = 1;
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  st.tracker.profile = true;
  st.physics = physics::PhysicsSettings::full();
  core::Simulation sim(model.geometry, model.library, st);
  const core::RunResult run = sim.run();

  prof::Profile host = prof::registry().snapshot("Host CPU");
  host.label = "Host CPU";

  // Project the MIC-native profile: per-routine wall = host wall *
  // (mic_per_thread_cost / host_per_thread_cost) / (thread ratio).
  const exec::DeviceSpec cpu = exec::DeviceSpec::jlse_host();
  const exec::DeviceSpec mic = exec::DeviceSpec::mic_7120a();
  const double thread_ratio = (mic.hw_threads * mic.thread_efficiency) /
                              (cpu.hw_threads * cpu.thread_efficiency);
  const auto op_ratio = [&](const std::string& name) {
    if (name == "calculate_xs") {
      return mic.ns_lookup_term / cpu.ns_lookup_term;
    }
    if (name == "collide") {
      return mic.ns_collision_base / cpu.ns_collision_base;
    }
    if (name == "distance_to_boundary" || name == "cross_surface") {
      return mic.ns_crossing / cpu.ns_crossing;
    }
    return 4.2;  // default scalar penalty
  };
  prof::Profile mic_native;
  mic_native.label = "MIC native";
  for (const auto& [name, st2] : host.timers) {
    prof::TimerStats scaled = st2;
    const double f = op_ratio(name) / thread_ratio;
    scaled.inclusive_s *= f;
    scaled.exclusive_s *= f;
    mic_native.timers[name] = scaled;
  }

  prof::print_comparison(std::cout, host, mic_native, 12);

  const double total_host = host.total_exclusive();
  const double total_mic = mic_native.total_exclusive();
  std::printf(
      "\ntotal simulation time: host %.2fs vs MIC %.2fs -> MIC %.2fx faster\n"
      "(paper: 96 min vs 65 min -> 1.5x; top routines are the cross-section\n"
      "lookups and run faster on the MIC)\n",
      total_host, total_mic, total_host / total_mic);
  std::printf("k_eff of the profiled run: %.4f +- %.4f\n", run.k_eff,
              run.k_std);
  return 0;
}
