// Figure 5: calculation rate (neutrons/second) vs. particles per node for
// inactive and active batches, CPU vs. MIC, H.M. Large.
//
// The work profile is measured from real inactive and active generations of
// our transport core (they differ: active batches score tallies), then
// converted to device rates with the calibrated models. The paper's alpha =
// 0.61 +- 0.02 (inactive) / 0.62 +- 0.01 (active) bands are reported.
#include <cstdio>

#include "bench_util.hpp"
#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 5",
                "calculation rate vs. particles: CPU vs. MIC, H.M. Large");

  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::large;
  mo.grid_scale = std::min(1.0, 0.25 * bench::scale());
  const hm::Model model = hm::build_model(mo);

  core::Settings st;
  st.n_particles = bench::scaled(2000);
  st.n_inactive = 1;
  st.n_active = 2;
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  core::Simulation sim(model.geometry, model.library, st);
  const core::RunResult run = sim.run();

  core::EventCounts inactive_counts, active_counts;
  for (const auto& g : run.generations) {
    (g.active ? active_counts : inactive_counts) += g.counts;
  }
  const exec::WorkProfile w_i = exec::WorkProfile::from_counts(inactive_counts);
  const exec::WorkProfile w_a = exec::WorkProfile::from_counts(active_counts);
  std::printf("this-host measured rates: inactive %.0f n/s, active %.0f n/s\n",
              run.rate_inactive, run.rate_active);
  std::printf("k_eff = %.4f +- %.4f\n\n", run.k_eff, run.k_std);

  const exec::CostModel cpu(exec::DeviceSpec::jlse_host());
  const exec::CostModel mic(exec::DeviceSpec::mic_7120a());

  for (const auto& [label, w] :
       {std::pair{"inactive batches", w_i}, std::pair{"active batches", w_a}}) {
    std::printf("--- %s ---\n", label);
    std::printf("%12s %14s %14s %10s\n", "particles", "CPU (n/s)", "MIC (n/s)",
                "alpha");
    for (const std::size_t n :
         {std::size_t{1000}, std::size_t{10000}, std::size_t{100000},
          std::size_t{1000000}, std::size_t{10000000}}) {
      const double rc = cpu.calculation_rate(w, n);
      const double rm = mic.calculation_rate(w, n);
      std::printf("%12zu %14.0f %14.0f %10.3f\n", n, rc, rm, rc / rm);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: MIC 1.5-2x the CPU for N >= 1e4 (alpha ~ 0.61-0.62);\n"
      "below 1e4 the MIC's 244 threads starve and the CPU wins.\n"
      "Memory limits (16 GB MIC): between 1e7 and 1e8 particles per node.\n");
  return 0;
}
