// Table III: symmetric-mode calculation rates on one JLSE node — original
// (uniform MPI split) vs. Eq. 3 static load balancing with alpha = 0.62.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "exec/symmetric.hpp"

int main() {
  using namespace vmc;
  bench::header("Table III",
                "symmetric-mode rates, original vs. load balanced (alpha=0.62)");

  const exec::WorkProfile w = bench::default_hm_large_profile();
  const std::size_t n = 100000;  // paper: 1e5 active particles
  const comm::ClusterModel fabric = comm::ClusterModel::stampede();

  const exec::NodeSetup jlse1 = exec::NodeSetup::jlse(1);
  const double cpu_rate = jlse1.cpu.calculation_rate(w, n);
  const double mic_rate = jlse1.mic.calculation_rate(w, n);
  const double alpha = cpu_rate / mic_rate;

  std::printf("%-16s %14s %14s %12s %12s\n", "configuration", "original",
              "balanced", "ideal", "bal/ideal");
  std::printf("%-16s %14.0f %14s %12s %12s   (paper: 4,050)\n", "CPU only",
              cpu_rate, "N/A", "-", "-");
  std::printf("%-16s %14.0f %14s %12s %12s   (paper: 6,641)\n", "MIC only",
              mic_rate, "N/A", "-", "-");

  for (const int mics : {1, 2}) {
    const exec::SymmetricRunner runner(exec::NodeSetup::jlse(mics), fabric);
    const auto original = runner.run_batch(w, n, 1, std::nullopt);
    const auto balanced = runner.run_batch(w, n, 1, 0.62);
    std::printf("%-16s %14.0f %14.0f %12.0f %11.1f%%   (paper: %s)\n",
                mics == 1 ? "CPU + 1 MIC" : "CPU + 2 MIC", original.rate,
                balanced.rate, balanced.ideal_rate,
                100.0 * balanced.rate / balanced.ideal_rate,
                mics == 1 ? "8,988 -> 10,068" : "11,860 -> 17,098");
    std::printf("%-16s original %.1f%% below ideal (paper: %s), balanced "
                "%.1f%% below\n",
                "", 100.0 * (1.0 - original.rate / original.ideal_rate),
                mics == 1 ? "16%" : "32%",
                100.0 * (1.0 - balanced.rate / balanced.ideal_rate));
  }

  std::printf("\nmeasured alpha = %.3f (paper: 0.62)\n", alpha);
  std::printf("relative speedups vs CPU-only (paper: MIC 1.6x, CPU+1MIC 2.5x, "
              "CPU+2MIC 4.2x):\n");
  const exec::SymmetricRunner r1(exec::NodeSetup::jlse(1), fabric);
  const exec::SymmetricRunner r2(exec::NodeSetup::jlse(2), fabric);
  std::printf("  MIC/CPU = %.2fx, (CPU+1MIC)/CPU = %.2fx, (CPU+2MIC)/CPU = %.2fx\n",
              mic_rate / cpu_rate,
              r1.run_batch(w, n, 1, 0.62).rate / cpu_rate,
              r2.run_batch(w, n, 1, 0.62).rate / cpu_rate);

  // The Section V adaptive-alpha feature.
  std::printf("\nruntime alpha estimation (batch 0 uniform, then measured):\n");
  const auto batches = r2.run_adaptive(w, n, 1, 4);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::printf("  batch %zu: %.0f n/s (%.1f%% of ideal)\n", b,
                batches[b].rate,
                100.0 * batches[b].rate / batches[b].ideal_rate);
  }
  return 0;
}
