// Table III: symmetric-mode calculation rates on one JLSE node — original
// (uniform MPI split) vs. Eq. 3 static load balancing with alpha = 0.62 —
// plus the k-device generalization alpha_d = r_d / sum r_j that the
// multi-device offload executor schedules by (exec/device_pool.hpp).
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "exec/device_pool.hpp"
#include "exec/offload.hpp"
#include "exec/symmetric.hpp"

int main() {
  using namespace vmc;
  bench::Report report(
      "tab3_symmetric_lb", "Table III",
      "symmetric-mode rates, original vs. load balanced (alpha=0.62), and "
      "the k-device generalized split");

  const exec::WorkProfile w = bench::default_hm_large_profile();
  const std::size_t n = 100000;  // paper: 1e5 active particles
  const comm::ClusterModel fabric = comm::ClusterModel::stampede();

  const exec::NodeSetup jlse1 = exec::NodeSetup::jlse(1);
  const double cpu_rate = jlse1.cpu.calculation_rate(w, n);
  const double mic_rate = jlse1.mic.calculation_rate(w, n);
  const double alpha = cpu_rate / mic_rate;

  std::printf("%-16s %14s %14s %12s %12s\n", "configuration", "original",
              "balanced", "ideal", "bal/ideal");
  std::printf("%-16s %14.0f %14s %12s %12s   (paper: 4,050)\n", "CPU only",
              cpu_rate, "N/A", "-", "-");
  std::printf("%-16s %14.0f %14s %12s %12s   (paper: 6,641)\n", "MIC only",
              mic_rate, "N/A", "-", "-");
  report.row({{"mics", 0.0}, {"original_rate", cpu_rate},
              {"balanced_rate", cpu_rate}, {"ideal_rate", cpu_rate}});

  for (const int mics : {1, 2}) {
    const exec::SymmetricRunner runner(exec::NodeSetup::jlse(mics), fabric);
    const auto original = runner.run_batch(w, n, 1, std::nullopt);
    const auto balanced = runner.run_batch(w, n, 1, 0.62);
    std::printf("%-16s %14.0f %14.0f %12.0f %11.1f%%   (paper: %s)\n",
                mics == 1 ? "CPU + 1 MIC" : "CPU + 2 MIC", original.rate,
                balanced.rate, balanced.ideal_rate,
                100.0 * balanced.rate / balanced.ideal_rate,
                mics == 1 ? "8,988 -> 10,068" : "11,860 -> 17,098");
    std::printf("%-16s original %.1f%% below ideal (paper: %s), balanced "
                "%.1f%% below\n",
                "", 100.0 * (1.0 - original.rate / original.ideal_rate),
                mics == 1 ? "16%" : "32%",
                100.0 * (1.0 - balanced.rate / balanced.ideal_rate));
    report.row({{"mics", static_cast<double>(mics)},
                {"original_rate", original.rate},
                {"balanced_rate", balanced.rate},
                {"ideal_rate", balanced.ideal_rate}});
  }

  std::printf("\nmeasured alpha = %.3f (paper: 0.62)\n", alpha);
  std::printf("relative speedups vs CPU-only (paper: MIC 1.6x, CPU+1MIC 2.5x, "
              "CPU+2MIC 4.2x):\n");
  const exec::SymmetricRunner r1(exec::NodeSetup::jlse(1), fabric);
  const exec::SymmetricRunner r2(exec::NodeSetup::jlse(2), fabric);
  std::printf("  MIC/CPU = %.2fx, (CPU+1MIC)/CPU = %.2fx, (CPU+2MIC)/CPU = %.2fx\n",
              mic_rate / cpu_rate,
              r1.run_batch(w, n, 1, 0.62).rate / cpu_rate,
              r2.run_batch(w, n, 1, 0.62).rate / cpu_rate);

  // The Section V adaptive-alpha feature.
  std::printf("\nruntime alpha estimation (batch 0 uniform, then measured):\n");
  const auto batches = r2.run_adaptive(w, n, 1, 4);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::printf("  batch %zu: %.0f n/s (%.1f%% of ideal)\n", b,
                batches[b].rate,
                100.0 * batches[b].rate / batches[b].ideal_rate);
  }

  // The k-device generalization the offload executor schedules by:
  // alpha_d = r_d / sum r_j over each device's modeled banked-lookup rate.
  // With one device this is the degenerate alpha = 1; the paper's two-way
  // 0.62/0.38 split is the k = 1 host+MIC case of the same formula.
  std::printf("\ngeneralized split alpha_d = r_d / sum r_j "
              "(mixed MIC generations):\n");
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<exec::CostModel> devices;
    for (std::size_t d = 0; d < k; ++d) {
      devices.emplace_back(d % 2 == 0 ? exec::DeviceSpec::mic_7120a()
                                      : exec::DeviceSpec::mic_se10p());
    }
    const exec::DevicePool pool(devices, exec::BreakerPolicy{});
    std::printf("  %zu device(s):", k);
    for (std::size_t d = 0; d < k; ++d) {
      std::printf(" alpha_%zu = %.3f", d, pool.shares()[d]);
      report.row({{"pool_devices", static_cast<double>(k)},
                  {"device_index", static_cast<double>(d)},
                  {"alpha_d", pool.shares()[d]}});
    }
    std::printf("\n");
  }
  return 0;
}
