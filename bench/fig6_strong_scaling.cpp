// Figure 6: strong scaling of the H.M. Large simulation (1e7 total
// particles) on the Stampede model, to 2^10 nodes.
//
// Three curves: CPU-only, CPU+1 MIC, CPU+2 MIC (the paper's 2-MIC curve
// stops at 384 nodes because only 384 Stampede nodes had two MICs).
// Expected shape: ~95% efficiency at 128 nodes; the 1-MIC curve tails at
// 1,024 nodes where each MIC gets only ~6.6k particles.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "exec/symmetric.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 6", "strong scaling, H.M. Large, N = 1e7 (Stampede)");

  const exec::WorkProfile w = bench::default_hm_large_profile();
  const std::size_t n_total = 10'000'000;
  const double alpha = 0.42;  // the paper's measured Stampede alpha
  const comm::ClusterModel fabric = comm::ClusterModel::stampede();

  struct Curve {
    const char* name;
    int mics;
    int max_nodes;
  };
  for (const Curve c : {Curve{"CPU only", 0, 1024}, Curve{"CPU + 1 MIC", 1, 1024},
                        Curve{"CPU + 2 MIC", 2, 384}}) {
    std::printf("--- %s ---\n", c.name);
    std::printf("%8s %14s %14s %12s\n", "nodes", "rate (n/s)", "batch (s)",
                "efficiency");
    double base_rate_per_node = 0.0;
    for (int nodes = 4; nodes <= c.max_nodes; nodes *= 2) {
      exec::NodeSetup setup = exec::NodeSetup::stampede(std::max(1, c.mics));
      if (c.mics == 0) setup.mic_ranks_per_node = 0;
      const exec::SymmetricRunner runner(setup, fabric);
      const auto r = runner.run_batch(
          w, n_total, nodes,
          c.mics == 0 ? std::optional<double>{} : std::optional<double>{alpha});
      const double per_node = r.rate / nodes;
      if (base_rate_per_node == 0.0) base_rate_per_node = per_node;
      std::printf("%8d %14.0f %14.3f %11.1f%%\n", nodes, r.rate,
                  r.batch_seconds, 100.0 * per_node / base_rate_per_node);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: near-perfect strong scaling (95%% of ideal at 128 nodes,\n"
      "17,664 cores); the 1-MIC curve tails at 1,024 nodes because Eq. 3\n"
      "assigns only ~6,643 particles to each MIC and alpha drifts.\n");
  return 0;
}
