// Figure 7: weak scaling of the H.M. Large simulation with N = 1e6
// particles per node on the Stampede model.
#include <cstdio>

#include "bench_util.hpp"
#include "exec/symmetric.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 7", "weak scaling, H.M. Large, N = 1e6 per node");

  const exec::WorkProfile w = bench::default_hm_large_profile();
  const double alpha = 0.42;
  const comm::ClusterModel fabric = comm::ClusterModel::stampede();

  for (const int mics : {1, 2}) {
    std::printf("--- CPU + %d MIC ---\n", mics);
    std::printf("%8s %16s %14s %12s\n", "nodes", "total rate (n/s)",
                "batch (s)", "efficiency");
    const exec::SymmetricRunner runner(exec::NodeSetup::stampede(mics), fabric);
    double base = 0.0;
    const int max_nodes = mics == 2 ? 384 : 512;
    for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
      const std::size_t n_total = 1'000'000ULL * static_cast<std::size_t>(nodes);
      const auto r = runner.run_batch(w, n_total, nodes, alpha);
      const double per_node = r.rate / nodes;
      if (base == 0.0) base = per_node;
      std::printf("%8d %16.0f %14.3f %11.1f%%\n", nodes, r.rate,
                  r.batch_seconds, 100.0 * per_node / base);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: >= 94%% weak-scaling efficiency at all scales to 128\n"
      "nodes; flat out to 2^9-2^10 nodes (the paper's footnote prediction,\n"
      "95%% distributed efficiency at 512 MICs / 39,424 cores).\n");
  return 0;
}
