// Figure 3: per-iteration cost of banking / offloading / computing cross
// sections, normalized to the host generation time, vs. number of particles.
//
// The paper's conclusion — offloading pays off above ~1e4 particles — shows
// up as the (xs-on-MIC + transfer) curve dropping below the xs-on-CPU curve.
#include <cstdio>

#include "bench_util.hpp"
#include "core/eigenvalue.hpp"
#include "exec/offload.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"

int main() {
  using namespace vmc;
  bench::Report report("fig3_offload_ratio", "Figure 3",
                       "offload/bank/compute time relative to generation time");

  // Measure the real per-particle work profile from a short H.M. Small run.
  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::small;
  mo.grid_scale = std::min(1.0, 0.3 * bench::scale());
  const hm::Model model = hm::build_model(mo);

  core::Settings st;
  st.n_particles = bench::scaled(2000);
  st.n_inactive = 1;
  st.n_active = 2;
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  core::Simulation sim(model.geometry, model.library, st);
  const core::RunResult run = sim.run();
  const exec::WorkProfile measured =
      exec::WorkProfile::from_counts(run.counts_total);
  std::printf(
      "measured work profile (H.M. Small): %.1f lookups/particle, %.0f\n"
      "nuclide terms/lookup, %.1f collisions, %.1f crossings per particle\n",
      measured.lookups_per_particle, measured.terms_per_lookup,
      measured.collisions_per_particle, measured.crossings_per_particle);
  // The measured average is diluted by moderator lookups (3-nuclide water
  // dominates the lookup count); the paper's offload iteration banks fuel
  // lookups, so the ratio sweep uses the fuel-material profile.
  exec::WorkProfile w = measured;
  w.terms_per_lookup = 34.0;
  std::printf("ratio sweep uses the fuel-material profile: %.0f terms/lookup\n\n",
              w.terms_per_lookup);
  report.note("model", "H.M. Small")
      .note("lookups_per_particle", measured.lookups_per_particle)
      .note("terms_per_lookup", w.terms_per_lookup);

  // Device-count families: the paper's single MIC plus 2- and 4-device
  // pools (alternating MIC generations). The device leg uses the
  // generalized-alpha split — transfers serialize over the one PCIe
  // complex, each device sweeps its share concurrently.
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<exec::CostModel> devices;
    for (std::size_t d = 0; d < k; ++d) {
      devices.emplace_back(d % 2 == 0 ? exec::DeviceSpec::mic_7120a()
                                      : exec::DeviceSpec::mic_se10p());
    }
    const exec::OffloadRuntime runtime(
        model.library, exec::CostModel(exec::DeviceSpec::jlse_host()),
        devices);

    std::printf("--- %zu modeled device(s) ---\n", k);
    std::printf("%10s %14s %12s %12s %12s %12s\n", "particles",
                "generation(s)", "bank(CPU)", "offload", "xs(pool)",
                "xs(CPU)");
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{300}, std::size_t{1000},
          std::size_t{3000}, std::size_t{10000}, std::size_t{30000},
          std::size_t{100000}, std::size_t{1000000}}) {
      const auto r = runtime.pool_ratios(w, n);
      std::printf("%10zu %14.4f %12.4f %12.4f %12.4f %12.4f\n", n,
                  r.generation_s, r.bank_cpu, r.offload, r.xs_mic, r.xs_cpu);
      report.row({{"devices", static_cast<double>(k)},
                  {"particles", static_cast<double>(n)},
                  {"generation_s", r.generation_s},
                  {"bank_cpu", r.bank_cpu},
                  {"offload", r.offload},
                  {"xs_mic", r.xs_mic},
                  {"xs_cpu", r.xs_cpu}});
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: offload and xs(MIC) ratios fall with N, xs(CPU) rises;\n"
      "offload + xs(MIC) crosses below xs(CPU) above ~1e4 particles. More\n"
      "devices shrink the xs(pool) leg (concurrent shares) while the\n"
      "serialized transfer leg stays put — the link saturates first.\n\n");

  // Stream-depth sweep (S = 1, 2, 4): the scheduler's in-flight window of
  // 2*S chunks over deterministic UNEVEN chunk sizes. Uniform chunks leave
  // nothing for depth to absorb (the double buffer already hides the steady
  // state); the event scheduler's compacted material runs are anything but
  // uniform — short moderator runs between long fuel runs — so the sweep
  // draws spiky sizes from a fixed-seed stream. Pure cost-model numbers
  // (no wall clock), so the S >= 2 gain is machine-independent and
  // perf-smoke gates it tightly via overlap_vs_depth1_ratio.
  {
    bench::Report depth("fig3_depth_sweep", "Figure 3 (stream-depth sweep)",
                        "modeled pipeline seconds vs stream depth S over "
                        "uneven chunk sizes");
    // One chunk sweeps a whole iteration's lookups for its particles.
    const double terms = w.lookups_per_particle * w.terms_per_lookup;
    // Chunk sizes are deliberately NOT bench::scaled(): the sweep is pure
    // cost model (no wall clock), so scaling would only change which regime
    // is exercised. The gain regime needs the fuel spike's compute (~42 ms
    // at 200k particles) to exceed a few moderator transfers' fixed PCIe
    // latency (~5 ms each); shrunken spikes compute faster than one small
    // transfer and nothing ever stalls, hiding the effect being measured.
    rng::Stream sizes_rs(2026);
    std::vector<std::size_t> sizes;
    double total = 0.0;
    for (int i = 0; i < 28; ++i) {
      // Every 7th chunk is a long fuel run; the rest are short
      // latency-bound moderator runs.
      const std::size_t sz = i % 7 == 0 ? 200000
                                        : 32 + static_cast<std::size_t>(
                                                   sizes_rs.next() * 96.0);
      sizes.push_back(sz);
      total += static_cast<double>(sz);
    }
    const exec::OffloadRuntime runtime(
        model.library, exec::CostModel(exec::DeviceSpec::jlse_host()),
        exec::CostModel(exec::DeviceSpec::mic_7120a()));
    depth.note("n_chunks", static_cast<double>(sizes.size()))
        .note("total_particles", total)
        .note("terms_per_chunk_particle", terms);
    std::printf("--- stream-depth sweep: %zu uneven chunks, %.0f particles ---\n",
                sizes.size(), total);
    std::printf("%8s %18s %22s\n", "streams", "pipeline (model s)",
                "overlap vs depth-1");
    const double s1 = runtime.pipelined_depth_seconds(sizes, terms, 1);
    for (const int streams : {1, 2, 4}) {
      const double s = runtime.pipelined_depth_seconds(sizes, terms, streams);
      const double ratio = s1 / s;
      std::printf("%8d %18.6f %21.4fx\n", streams, s, ratio);
      depth.row({{"streams", static_cast<double>(streams)},
                 {"model_pipeline_s", s},
                 {"overlap_vs_depth1_ratio", ratio}});
    }
    std::printf(
        "\ndepth S widens the in-flight window to 2*S chunks: transfers of\n"
        "the short runs complete behind a long compute instead of\n"
        "serializing after it, so S >= 2 strictly beats the paper's double\n"
        "buffer whenever chunk sizes are uneven.\n");
  }
  return 0;
}
