// Figure 3: per-iteration cost of banking / offloading / computing cross
// sections, normalized to the host generation time, vs. number of particles.
//
// The paper's conclusion — offloading pays off above ~1e4 particles — shows
// up as the (xs-on-MIC + transfer) curve dropping below the xs-on-CPU curve.
#include <cstdio>

#include "bench_util.hpp"
#include "core/eigenvalue.hpp"
#include "exec/offload.hpp"
#include "hm/hm_model.hpp"

int main() {
  using namespace vmc;
  bench::Report report("fig3_offload_ratio", "Figure 3",
                       "offload/bank/compute time relative to generation time");

  // Measure the real per-particle work profile from a short H.M. Small run.
  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::small;
  mo.grid_scale = std::min(1.0, 0.3 * bench::scale());
  const hm::Model model = hm::build_model(mo);

  core::Settings st;
  st.n_particles = bench::scaled(2000);
  st.n_inactive = 1;
  st.n_active = 2;
  st.source_lo = model.source_lo;
  st.source_hi = model.source_hi;
  core::Simulation sim(model.geometry, model.library, st);
  const core::RunResult run = sim.run();
  const exec::WorkProfile measured =
      exec::WorkProfile::from_counts(run.counts_total);
  std::printf(
      "measured work profile (H.M. Small): %.1f lookups/particle, %.0f\n"
      "nuclide terms/lookup, %.1f collisions, %.1f crossings per particle\n",
      measured.lookups_per_particle, measured.terms_per_lookup,
      measured.collisions_per_particle, measured.crossings_per_particle);
  // The measured average is diluted by moderator lookups (3-nuclide water
  // dominates the lookup count); the paper's offload iteration banks fuel
  // lookups, so the ratio sweep uses the fuel-material profile.
  exec::WorkProfile w = measured;
  w.terms_per_lookup = 34.0;
  std::printf("ratio sweep uses the fuel-material profile: %.0f terms/lookup\n\n",
              w.terms_per_lookup);
  report.note("model", "H.M. Small")
      .note("lookups_per_particle", measured.lookups_per_particle)
      .note("terms_per_lookup", w.terms_per_lookup);

  // Device-count families: the paper's single MIC plus 2- and 4-device
  // pools (alternating MIC generations). The device leg uses the
  // generalized-alpha split — transfers serialize over the one PCIe
  // complex, each device sweeps its share concurrently.
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<exec::CostModel> devices;
    for (std::size_t d = 0; d < k; ++d) {
      devices.emplace_back(d % 2 == 0 ? exec::DeviceSpec::mic_7120a()
                                      : exec::DeviceSpec::mic_se10p());
    }
    const exec::OffloadRuntime runtime(
        model.library, exec::CostModel(exec::DeviceSpec::jlse_host()),
        devices);

    std::printf("--- %zu modeled device(s) ---\n", k);
    std::printf("%10s %14s %12s %12s %12s %12s\n", "particles",
                "generation(s)", "bank(CPU)", "offload", "xs(pool)",
                "xs(CPU)");
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{300}, std::size_t{1000},
          std::size_t{3000}, std::size_t{10000}, std::size_t{30000},
          std::size_t{100000}, std::size_t{1000000}}) {
      const auto r = runtime.pool_ratios(w, n);
      std::printf("%10zu %14.4f %12.4f %12.4f %12.4f %12.4f\n", n,
                  r.generation_s, r.bank_cpu, r.offload, r.xs_mic, r.xs_cpu);
      report.row({{"devices", static_cast<double>(k)},
                  {"particles", static_cast<double>(n)},
                  {"generation_s", r.generation_s},
                  {"bank_cpu", r.bank_cpu},
                  {"offload", r.offload},
                  {"xs_mic", r.xs_mic},
                  {"xs_cpu", r.xs_cpu}});
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: offload and xs(MIC) ratios fall with N, xs(CPU) rises;\n"
      "offload + xs(MIC) crosses below xs(CPU) above ~1e4 particles. More\n"
      "devices shrink the xs(pool) leg (concurrent shares) while the\n"
      "serialized transfer leg stays put — the link saturates first.\n");
  return 0;
}
