// Table II: per-iteration banking and offload overheads for H.M. Small and
// H.M. Large with 1e5 banked particles.
//
// Byte counts are real (our lean SoA bank records + the actual library
// footprint); times come from the PCIe/device cost models calibrated to the
// paper's measurements. The host banking time is also measured for real on
// this machine.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "exec/offload.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

namespace {

void run_case(vmc::bench::Report& report, const char* label,
              vmc::hm::FuelSize fuel, std::size_t n) {
  using namespace vmc;
  hm::ModelOptions mo;
  mo.fuel = fuel;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel_mat = -1;
  const xs::Library lib = hm::build_library(mo, &fuel_mat);
  const exec::OffloadRuntime runtime(
      lib, exec::CostModel(exec::DeviceSpec::jlse_host()),
      exec::CostModel(exec::DeviceSpec::mic_7120a()));
  const auto rep = runtime.run_iteration(fuel_mat, n, 7);

  std::printf("--- %s (%zu particles) ---\n", label, n);
  std::printf("%-38s %12.1f ms   (paper: 4 ms)\n",
              "banking (host, model)", rep.model_bank_host_s * 1e3);
  std::printf("%-38s %12.1f ms   (this host, measured)\n",
              "banking (host, measured)", rep.wall_bank_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 21 / 34 ms)\n",
              "banking (MIC, model)", rep.model_bank_device_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 460 / 2,210 ms)\n",
              "transfer time (PCIe, model)", rep.model_transfer_s * 1e3);
  std::printf("%-38s %12.2f MB   (paper: 496 MB / 2.84 GB)\n",
              "bank size transferred", static_cast<double>(rep.bank_bytes) / 1e6);
  std::printf("%-38s %12.2f MB   (paper: 1.31 / 8.37 GB)\n",
              "energy grid size transferred", static_cast<double>(rep.grid_bytes) / 1e6);
  std::printf("%-38s %12.1f ms\n", "energy grid staging (model, amortized)",
              rep.model_grid_transfer_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 17 / 101 ms)\n",
              "compute bank cross sections (MIC)",
              rep.model_compute_device_s * 1e3);
  std::printf("%-38s %12.1f ms\n\n", "compute bank cross sections (host)",
              rep.model_compute_host_s * 1e3);
  report.note("case", label);
  report.row({{"n_fuel_nuclides",
               static_cast<double>(lib.material(fuel_mat).size())},
              {"particles", static_cast<double>(n)},
              {"bank_host_model_ms", rep.model_bank_host_s * 1e3},
              // "_millis" not "_ms": sub-ms measured wall, info-direction
              // for vmc_bench_diff (the model times above stay gated).
              {"bank_host_measured_millis", rep.wall_bank_s * 1e3},
              {"bank_mic_model_ms", rep.model_bank_device_s * 1e3},
              {"transfer_model_ms", rep.model_transfer_s * 1e3},
              {"bank_bytes", static_cast<double>(rep.bank_bytes)},
              {"grid_bytes", static_cast<double>(rep.grid_bytes)},
              {"grid_staging_model_ms", rep.model_grid_transfer_s * 1e3},
              {"compute_mic_model_ms", rep.model_compute_device_s * 1e3},
              {"compute_host_model_ms", rep.model_compute_host_s * 1e3}});
}

// Real double-buffered pipelined sweeps across modeled device pools of
// 1/2/4 devices. No faults are armed (chaos runs are excluded from all
// timing measurements), so the breaker/steal/degrade counters recorded here
// must be zero — a nonzero value in a bench report is itself a regression
// (spurious degradation would silently re-attribute device time to the
// host).
void run_pool_sweeps(vmc::bench::Report& report) {
  using namespace vmc;
  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::small;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel_mat = -1;
  const xs::Library lib = hm::build_library(mo, &fuel_mat);

  const std::size_t n = bench::scaled(100000);
  rng::Stream rs(2);
  simd::aligned_vector<double> es(n);
  for (auto& e : es) {
    e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
  }

  std::printf("--- pipelined sweep, H.M. Small, %zu particles, 8 banks ---\n",
              n);
  std::printf("%8s %12s %10s %12s %12s %10s\n", "devices", "wall (ms)",
              "stages", "retries", "degraded", "trips");
  int total_retries = 0;
  int total_rescheduled = 0;
  int total_degraded = 0;
  int total_trips = 0;
  int total_steals = 0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<exec::CostModel> devices;
    for (std::size_t d = 0; d < k; ++d) {
      devices.emplace_back(d % 2 == 0 ? exec::DeviceSpec::mic_7120a()
                                      : exec::DeviceSpec::mic_se10p());
    }
    const exec::OffloadRuntime runtime(
        lib, exec::CostModel(exec::DeviceSpec::jlse_host()), devices);
    // Counters and checksum are deterministic across repeats; only the
    // wall time is noisy at this scale, so report the best of five.
    auto run = runtime.run_pipelined(fuel_mat, es, 8);
    for (int rep = 1; rep < 5; ++rep) {
      const double best = run.wall_s;
      run = runtime.run_pipelined(fuel_mat, es, 8);
      if (best < run.wall_s) run.wall_s = best;
    }
    int trips = 0;
    int steals = 0;
    int chunks_ok = 0;
    for (const auto& dr : run.devices) {
      trips += dr.trips;
      steals += dr.steals_in;
      chunks_ok += dr.chunks_ok;
    }
    std::printf("%8zu %12.2f %10d %12d %12d %10d\n", k, run.wall_s * 1e3,
                run.n_stages, run.retries, run.degraded_stages, trips);
    // Named to dodge vmc_bench_diff's "_ms" lower-better suffix: a
    // couple-of-ms wall on a shared runner is pure scheduler noise, so it
    // is recorded info-direction; the deterministic counters and stage
    // counts below are the gated signal.
    report.row({{"devices", static_cast<double>(k)},
                {"particles", static_cast<double>(n)},
                {"pipeline_wall_millis", run.wall_s * 1e3},
                {"stages", static_cast<double>(run.n_stages)},
                {"chunks_ok", static_cast<double>(chunks_ok)},
                {"retries", static_cast<double>(run.retries)},
                {"rescheduled_stages",
                 static_cast<double>(run.rescheduled_stages)},
                {"degraded_stages", static_cast<double>(run.degraded_stages)},
                {"breaker_trips", static_cast<double>(trips)},
                {"steals_in", static_cast<double>(steals)}});
    total_retries += run.retries;
    total_rescheduled += run.rescheduled_stages;
    total_degraded += run.degraded_stages;
    total_trips += trips;
    total_steals += steals;
  }
  report.note("retries_total", static_cast<double>(total_retries))
      .note("rescheduled_stages_total", static_cast<double>(total_rescheduled))
      .note("degraded_stages_total", static_cast<double>(total_degraded))
      .note("breaker_trips_total", static_cast<double>(total_trips))
      .note("steals_in_total", static_cast<double>(total_steals));
  std::printf("\n");
}

// Stream-depth rows: the same real pipelined sweep driven at S = 1, 2 and 4
// streams per device. The checksum-relevant outcome (stages, chunk counts,
// breaker counters) and the in-flight high water are deterministic — the
// window bound is min(2*S, chunks per device) — so they are recorded as the
// regression signal; wall time stays info-direction like the pool sweep's.
void run_depth_sweeps(vmc::bench::Report& report) {
  using namespace vmc;
  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::small;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel_mat = -1;
  const xs::Library lib = hm::build_library(mo, &fuel_mat);

  const std::size_t n = bench::scaled(100000);
  rng::Stream rs(2);
  simd::aligned_vector<double> es(n);
  for (auto& e : es) {
    e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
  }

  exec::OffloadRuntime runtime(
      lib, exec::CostModel(exec::DeviceSpec::jlse_host()),
      {exec::CostModel(exec::DeviceSpec::mic_7120a()),
       exec::CostModel(exec::DeviceSpec::mic_se10p())});

  std::printf(
      "--- stream-depth sweep, 2 devices, %zu particles, 8 banks ---\n", n);
  std::printf("%8s %12s %10s %12s %12s\n", "streams", "wall (ms)", "stages",
              "in-flight", "chunks ok");
  for (const int streams : {1, 2, 4}) {
    runtime.set_stream_depth(streams);
    auto run = runtime.run_pipelined(fuel_mat, es, 8);
    for (int rep = 1; rep < 5; ++rep) {
      const double best = run.wall_s;
      run = runtime.run_pipelined(fuel_mat, es, 8);
      if (best < run.wall_s) run.wall_s = best;
    }
    int trips = 0;
    int chunks_ok = 0;
    for (const auto& dr : run.devices) {
      trips += dr.trips;
      chunks_ok += dr.chunks_ok;
    }
    std::printf("%8d %12.2f %10d %12d %12d\n", streams, run.wall_s * 1e3,
                run.n_stages, run.inflight_high_water, chunks_ok);
    report.row({{"streams", static_cast<double>(streams)},
                {"particles", static_cast<double>(n)},
                {"pipeline_wall_millis", run.wall_s * 1e3},
                {"stages", static_cast<double>(run.n_stages)},
                {"inflight_high_water",
                 static_cast<double>(run.inflight_high_water)},
                {"chunks_ok", static_cast<double>(chunks_ok)},
                {"retries", static_cast<double>(run.retries)},
                {"degraded_stages", static_cast<double>(run.degraded_stages)},
                {"breaker_trips", static_cast<double>(trips)}});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace vmc;
  bench::Report report("tab2_offload_overhead", "Table II",
                       "banking + offload overheads per iteration "
                       "(1e5 particles)");
  std::printf(
      "note: our bank records are lean SoA (%zu B/particle vs. OpenMC's\n"
      "~5 KB Fortran particle objects) and the synthetic library is smaller\n"
      "than ENDF data, so absolute sizes are below the paper's; the cost\n"
      "structure (bank << transfer, grid paid once) is preserved.\n\n",
      exec::offload_record_bytes());

  const std::size_t n = bench::scaled(100000);
  run_case(report, "H.M. Small (34 fuel nuclides)", hm::FuelSize::small, n);
  run_case(report, "H.M. Large (320 fuel nuclides)", hm::FuelSize::large, n);
  run_pool_sweeps(report);
  run_depth_sweeps(report);
  return 0;
}
