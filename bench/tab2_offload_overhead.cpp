// Table II: per-iteration banking and offload overheads for H.M. Small and
// H.M. Large with 1e5 banked particles.
//
// Byte counts are real (our lean SoA bank records + the actual library
// footprint); times come from the PCIe/device cost models calibrated to the
// paper's measurements. The host banking time is also measured for real on
// this machine.
#include <cstdio>

#include "bench_util.hpp"
#include "exec/offload.hpp"
#include "hm/hm_model.hpp"

namespace {

void run_case(vmc::bench::Report& report, const char* label,
              vmc::hm::FuelSize fuel, std::size_t n) {
  using namespace vmc;
  hm::ModelOptions mo;
  mo.fuel = fuel;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel_mat = -1;
  const xs::Library lib = hm::build_library(mo, &fuel_mat);
  const exec::OffloadRuntime runtime(
      lib, exec::CostModel(exec::DeviceSpec::jlse_host()),
      exec::CostModel(exec::DeviceSpec::mic_7120a()));
  const auto rep = runtime.run_iteration(fuel_mat, n, 7);

  std::printf("--- %s (%zu particles) ---\n", label, n);
  std::printf("%-38s %12.1f ms   (paper: 4 ms)\n",
              "banking (host, model)", rep.model_bank_host_s * 1e3);
  std::printf("%-38s %12.1f ms   (this host, measured)\n",
              "banking (host, measured)", rep.wall_bank_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 21 / 34 ms)\n",
              "banking (MIC, model)", rep.model_bank_device_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 460 / 2,210 ms)\n",
              "transfer time (PCIe, model)", rep.model_transfer_s * 1e3);
  std::printf("%-38s %12.2f MB   (paper: 496 MB / 2.84 GB)\n",
              "bank size transferred", static_cast<double>(rep.bank_bytes) / 1e6);
  std::printf("%-38s %12.2f MB   (paper: 1.31 / 8.37 GB)\n",
              "energy grid size transferred", static_cast<double>(rep.grid_bytes) / 1e6);
  std::printf("%-38s %12.1f ms\n", "energy grid staging (model, amortized)",
              rep.model_grid_transfer_s * 1e3);
  std::printf("%-38s %12.1f ms   (paper: 17 / 101 ms)\n",
              "compute bank cross sections (MIC)",
              rep.model_compute_device_s * 1e3);
  std::printf("%-38s %12.1f ms\n\n", "compute bank cross sections (host)",
              rep.model_compute_host_s * 1e3);
  report.note("case", label);
  report.row({{"n_fuel_nuclides",
               static_cast<double>(lib.material(fuel_mat).size())},
              {"particles", static_cast<double>(n)},
              {"bank_host_model_ms", rep.model_bank_host_s * 1e3},
              {"bank_host_measured_ms", rep.wall_bank_s * 1e3},
              {"bank_mic_model_ms", rep.model_bank_device_s * 1e3},
              {"transfer_model_ms", rep.model_transfer_s * 1e3},
              {"bank_bytes", static_cast<double>(rep.bank_bytes)},
              {"grid_bytes", static_cast<double>(rep.grid_bytes)},
              {"grid_staging_model_ms", rep.model_grid_transfer_s * 1e3},
              {"compute_mic_model_ms", rep.model_compute_device_s * 1e3},
              {"compute_host_model_ms", rep.model_compute_host_s * 1e3}});
}

}  // namespace

int main() {
  using namespace vmc;
  bench::Report report("tab2_offload_overhead", "Table II",
                       "banking + offload overheads per iteration "
                       "(1e5 particles)");
  std::printf(
      "note: our bank records are lean SoA (%zu B/particle vs. OpenMC's\n"
      "~5 KB Fortran particle objects) and the synthetic library is smaller\n"
      "than ENDF data, so absolute sizes are below the paper's; the cost\n"
      "structure (bank << transfer, grid paid once) is preserved.\n\n",
      exec::offload_record_bytes());

  const std::size_t n = bench::scaled(100000);
  run_case(report, "H.M. Small (34 fuel nuclides)", hm::FuelSize::small, n);
  run_case(report, "H.M. Large (320 fuel nuclides)", hm::FuelSize::large, n);
  return 0;
}
