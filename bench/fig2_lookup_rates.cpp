// Figure 2: cross-section lookup rates vs. number of banked particles —
// banking method vs. history method on the H.M. Large material.
//
// Two layers, per DESIGN.md:
//  * measured on THIS host: the scalar history sweep vs. the banked
//    (tiled SIMD) sweep, both computing Sigma_t like Algorithm 1;
//  * projected onto the paper's hardware: history on the 16-core CPU vs.
//    banked on the MIC via the calibrated cost models — this is the pair of
//    curves Figure 2 plots, with its ~10x separation.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/event_queue.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "xsdata/hash_grid.hpp"
#include "xsdata/lookup.hpp"

int main() {
  using namespace vmc;
  bench::Report report("fig2_lookup_rates", "Figure 2",
                       "lookup rates: banking (MIC) vs. history (CPU), "
                       "H.M. Large");

  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::large;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel = -1;
  const xs::Library lib = hm::build_library(mo, &fuel);
  const double terms = static_cast<double>(lib.material(fuel).size());
  std::printf("library: %d nuclides, union grid %zu pts (walk %d), %.1f MB "
              "(+%.1f MB hash index, %d buckets)\n\n",
              lib.n_nuclides(), lib.union_grid().size(),
              lib.union_grid().walk_bound,
              static_cast<double>(lib.union_bytes() + lib.pointwise_bytes()) / 1e6,
              static_cast<double>(lib.hash_bytes()) / 1e6,
              lib.hash_grid().n_buckets());
  report.note("material", "H.M. Large fuel")
      .note("n_nuclides", static_cast<double>(lib.n_nuclides()))
      .note("union_grid_points", static_cast<double>(lib.union_grid().size()))
      .note("hash_bytes", static_cast<double>(lib.hash_bytes()))
      .note("hash_buckets", static_cast<double>(lib.hash_grid().n_buckets()))
      .note("hash_max_bucket_points",
            static_cast<double>(lib.hash_grid().max_bucket_points()));

  // Grid-search modes under test. `binary` is the pre-accelerator ablation
  // baseline (std::upper_bound on the union grid); `hash` is the production
  // default (bucketed window + batched SIMD search, bit-identical results).
  constexpr xs::XsLookupOptions kBinary{xs::GridSearch::binary};
  constexpr xs::XsLookupOptions kHash{xs::GridSearch::hash};

  const exec::CostModel cpu(exec::DeviceSpec::jlse_host());
  const exec::CostModel mic(exec::DeviceSpec::mic_7120a());

  std::printf("%10s | %15s %15s %8s | %15s %8s | %17s %17s %8s\n", "N banked",
              "host scalar/s", "host banked/s", "speedup", "hash banked/s",
              "hash spd", "model CPU hist/s", "model MIC bank/s", "ratio");
  for (const std::size_t n_base :
       {std::size_t{1000}, std::size_t{3000}, std::size_t{10000},
        std::size_t{30000}, std::size_t{100000}}) {
    const std::size_t n = bench::scaled(n_base);
    rng::Stream rs(n);
    simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    }
    simd::aligned_vector<double> out(n);

    const double t_banked = bench::best_seconds(3, [&] {
      xs::macro_total_banked(lib, fuel, es, out, kBinary);
    });
    const double t_hash = bench::best_seconds(3, [&] {
      xs::macro_total_banked(lib, fuel, es, out, kHash);
    });
    const double t_scalar = bench::best_seconds(3, [&] {
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = xs::macro_total_history(lib, fuel, es[j], kBinary);
      }
    });

    // Paper-hardware projection (lookups/second at full thread counts).
    const double model_cpu =
        static_cast<double>(n) / cpu.scalar_lookup_seconds(n, terms);
    const double model_mic =
        static_cast<double>(n) / mic.banked_lookup_seconds(n, terms);

    std::printf("%10zu | %15.3e %15.3e %7.2fx | %15.3e %7.2fx | %17.3e %17.3e "
                "%7.2fx\n",
                n, static_cast<double>(n) / t_scalar,
                static_cast<double>(n) / t_banked, t_scalar / t_banked,
                static_cast<double>(n) / t_hash, t_banked / t_hash, model_cpu,
                model_mic, model_mic / model_cpu);
    report.row({{"n_banked", static_cast<double>(n)},
                {"host_scalar_per_s", static_cast<double>(n) / t_scalar},
                {"host_banked_per_s", static_cast<double>(n) / t_banked},
                {"host_speedup", t_scalar / t_banked},
                {"host_hash_banked_per_s", static_cast<double>(n) / t_hash},
                {"hash_kernel_speedup", t_banked / t_hash},
                {"model_cpu_history_per_s", model_cpu},
                {"model_mic_banked_per_s", model_mic},
                {"model_ratio", model_mic / model_cpu}});
  }

  // --- grid-search rate, isolated -----------------------------------------
  // The accelerator's own figure of merit: union-grid interval resolutions
  // per second with the rest of Algorithm 1 stripped away. `binary` is a
  // scalar std::upper_bound per energy (what every kernel did before the
  // hash grid existed); `hash` is HashGrid::find_banked, the batched SIMD
  // bucket + bounded-walk search the banked kernels now stage through. Both
  // produce identical interval indices — only the search differs.
  const auto& ug = lib.union_grid();
  const auto& hg = lib.hash_grid();
  std::printf("\ngrid-search rate (interval resolutions/s, search only):\n");
  std::printf("%10s | %15s %15s %8s\n", "N banked", "binary/s", "hash SIMD/s",
              "speedup");
  for (const std::size_t n_base : {std::size_t{10000}, std::size_t{100000}}) {
    const std::size_t n = bench::scaled(n_base);
    rng::Stream rs(n ^ 0x51D);
    simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    }
    simd::aligned_vector<std::int32_t> us(n);
    volatile std::int64_t sink = 0;

    const double t_bin = bench::best_seconds(3, [&] {
      std::int64_t acc = 0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += static_cast<std::int64_t>(ug.find(es[j]));
      }
      sink = acc;
    });
    const double t_hash = bench::best_seconds(3, [&] {
      hg.find_banked(ug.energy, es, us.data());
      sink = us[n - 1];
    });

    std::printf("%10zu | %15.3e %15.3e %7.2fx\n", n,
                static_cast<double>(n) / t_bin, static_cast<double>(n) / t_hash,
                t_bin / t_hash);
    report.row({{"search_n", static_cast<double>(n)},
                {"search_binary_per_s", static_cast<double>(n) / t_bin},
                {"search_hash_banked_per_s", static_cast<double>(n) / t_hash},
                {"search_speedup", t_bin / t_hash}});
  }

  // --- ISA lane-width sweep -------------------------------------------------
  // The multi-ISA dispatch refactor's own figure of merit: the SAME binary,
  // the SAME data, every backend level this run may dispatch (scalar up to
  // the selected level — bounded by the selection, not the host, so a
  // VMC_SIMD_ISA-pinned run has a deterministic row set for its per-ISA
  // baseline). Results are bitwise identical across rows (the forced-ISA
  // fuzz proves it); only the rate moves with lane width.
  {
    const simd::IsaLevel selected = simd::dispatch().isa;
    const std::size_t n = bench::scaled(30000);
    rng::Stream rs(n ^ 0xA5A5);
    simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    }
    simd::aligned_vector<double> out(n);
    simd::aligned_vector<std::int32_t> us(n);
    std::printf("\nISA lane-width sweep (forced backend, same data):\n");
    std::printf("%10s %6s | %15s %15s\n", "backend", "bits", "total banked/s",
                "search/s");
    double banked_rate[simd::kNumIsaLevels] = {};
    for (int li = 0; li <= static_cast<int>(selected); ++li) {
      const auto level = static_cast<simd::IsaLevel>(li);
      simd::force_isa(level);
      const double t_total = bench::best_seconds(3, [&] {
        xs::macro_total_banked(lib, fuel, es, out, kHash);
      });
      const double t_search = bench::best_seconds(3, [&] {
        hg.find_banked(ug.energy, es, us.data());
      });
      banked_rate[li] = static_cast<double>(n) / t_total;
      std::printf("%10s %6d | %15.3e %15.3e\n", simd::isa_display_name(level),
                  simd::isa_simd_bits(level), banked_rate[li],
                  static_cast<double>(n) / t_search);
      report.row(
          {{"sweep_level", static_cast<double>(li)},
           {"sweep_simd_bits", static_cast<double>(simd::isa_simd_bits(level))},
           {"sweep_total_banked_per_s", banked_rate[li]},
           {"sweep_search_per_s", static_cast<double>(n) / t_search}});
    }
    simd::clear_forced_isa();
    if (selected >= simd::IsaLevel::avx2 && banked_rate[1] > 0.0) {
      // The hardware-gather payoff the dispatch refactor exists for.
      std::printf("  AVX2-vs-SSE2 banked lookup: %.2fx\n",
                  banked_rate[2] / banked_rate[1]);
      report.note("sweep_banked_avx2_over_sse2", banked_rate[2] / banked_rate[1]);
    }
  }

  std::printf(
      "\npaper shape: banking on the MIC ~10x the CPU history rate; the\n"
      "host-measured columns show the same-silicon SIMD+tiling gain, which\n"
      "is smaller on an out-of-order AVX-512 core (see EXPERIMENTS.md).\n");

  // --- multi-material queue sweep ------------------------------------------
  // The event scheduler's per-iteration lookup organization, isolated from
  // transport: a mixed-material live set swept either the naive way (bucket
  // indices per material, copy energies into scratch, sweep, scatter the
  // results back) or through EventQueues (one stable counting sort, then
  // contiguous same-material subspan sweeps of the staging buffer).
  // On a ~300-nuclide material the kernel dominates and the full-sweep
  // columns converge; the organize-only columns isolate the per-iteration
  // bookkeeping the queue scheduler removes (the transport-level effect is
  // benched end-to-end in abl_kernels section [6]).
  const int n_mats = lib.n_materials();
  std::printf("\nmulti-material queue sweep (%d materials, full XsSet):\n",
              n_mats);
  std::printf("%10s | %15s %15s %8s | %15s %15s %8s\n", "N live",
              "rebucket/s", "queued/s", "speedup", "org rebucket/s",
              "org queued/s", "speedup");
  for (const std::size_t n_base : {std::size_t{10000}, std::size_t{100000}}) {
    const std::size_t qn = bench::scaled(n_base);
    rng::Stream qs(qn ^ 0x9E37);
    std::vector<particle::Particle> ps(qn);
    std::vector<geom::Geometry::State> states(qn);
    for (std::size_t i = 0; i < qn; ++i) {
      ps[i].id = i;
      ps[i].energy = xs::kEnergyMin *
                     std::pow(xs::kEnergyMax / xs::kEnergyMin, qs.next());
      states[i].material =
          static_cast<std::int32_t>(qs.next() * static_cast<double>(n_mats)) %
          n_mats;
    }

    // Naive: what run_naive's stage 1 does every iteration.
    std::vector<xs::XsSet> sigma(qn);
    std::vector<std::vector<std::uint32_t>> buckets(
        static_cast<std::size_t>(n_mats));
    simd::aligned_vector<double> bucket_e;
    std::vector<xs::XsSet> bucket_sigma;
    const double t_rebucket = bench::best_seconds(3, [&] {
      for (auto& b : buckets) b.clear();
      for (std::size_t i = 0; i < qn; ++i) {
        buckets[static_cast<std::size_t>(states[i].material)].push_back(
            static_cast<std::uint32_t>(i));
      }
      for (int m = 0; m < n_mats; ++m) {
        const auto& bucket = buckets[static_cast<std::size_t>(m)];
        if (bucket.empty()) continue;
        bucket_e.resize(bucket.size());
        bucket_sigma.resize(bucket.size());
        for (std::size_t j = 0; j < bucket.size(); ++j) {
          bucket_e[j] = ps[bucket[j]].energy;
        }
        xs::macro_xs_banked(lib, m, bucket_e, bucket_sigma, kHash);
        for (std::size_t j = 0; j < bucket.size(); ++j) {
          sigma[bucket[j]] = bucket_sigma[j];
        }
      }
    });

    // Queued: what run_compact's stage 1 does every iteration.
    core::EventQueues q;
    q.reset(n_mats, qn);
    for (std::size_t i = 0; i < qn; ++i) {
      q.push_live(static_cast<std::uint32_t>(i));
    }
    q.begin_iteration();
    const double t_queued = bench::best_seconds(3, [&] {
      q.build_lookup(ps, states);
      for (const core::MaterialRun& r : q.runs()) {
        xs::macro_xs_banked(lib, r.material,
                            q.staged_energies().subspan(r.begin, r.size()),
                            q.staged_sigma().subspan(r.begin, r.size()), kHash);
      }
    });

    // Organization only: the bucket/copy/scatter bookkeeping vs. the one
    // stable counting sort, kernels excluded from both sides.
    const double t_org_rebucket = bench::best_seconds(3, [&] {
      for (auto& b : buckets) b.clear();
      for (std::size_t i = 0; i < qn; ++i) {
        buckets[static_cast<std::size_t>(states[i].material)].push_back(
            static_cast<std::uint32_t>(i));
      }
      for (int m = 0; m < n_mats; ++m) {
        const auto& bucket = buckets[static_cast<std::size_t>(m)];
        if (bucket.empty()) continue;
        bucket_e.resize(bucket.size());
        bucket_sigma.resize(bucket.size());
        for (std::size_t j = 0; j < bucket.size(); ++j) {
          bucket_e[j] = ps[bucket[j]].energy;
        }
        for (std::size_t j = 0; j < bucket.size(); ++j) {
          sigma[bucket[j]] = bucket_sigma[j];
        }
      }
    });
    const double t_org_queued = bench::best_seconds(3, [&] {
      q.build_lookup(ps, states);
    });

    std::printf("%10zu | %15.3e %15.3e %7.2fx | %15.3e %15.3e %7.2fx\n", qn,
                static_cast<double>(qn) / t_rebucket,
                static_cast<double>(qn) / t_queued, t_rebucket / t_queued,
                static_cast<double>(qn) / t_org_rebucket,
                static_cast<double>(qn) / t_org_queued,
                t_org_rebucket / t_org_queued);
    report.row({{"queue_n", static_cast<double>(qn)},
                {"rebucket_per_s", static_cast<double>(qn) / t_rebucket},
                {"queued_per_s", static_cast<double>(qn) / t_queued},
                {"queue_speedup", t_rebucket / t_queued},
                {"organize_rebucket_per_s",
                 static_cast<double>(qn) / t_org_rebucket},
                {"organize_queued_per_s",
                 static_cast<double>(qn) / t_org_queued},
                {"organize_speedup", t_org_rebucket / t_org_queued}});
  }
  return 0;
}
