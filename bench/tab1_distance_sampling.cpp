// Table I + Algorithms 3/4: the distance-sampling micro-benchmark.
//
// Three REAL implementations, measured on this host:
//  * Naive      (Algorithm 3): one posix rand_r clone call + scalar log per
//                particle;
//  * Optimized-1: block-filled vectorized RNG (StreamSet, the VSL
//                substitute) + an auto-vectorizable loop;
//  * Optimized-2 (Algorithm 4): block RNG + explicit SIMD intrinsics
//                (-log(R)/X with the 16-lane vectorized log).
// Plus the calibrated Table I projection for the paper's CPU-32t and
// MIC-122t rows.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "rng/streamset.hpp"
#include "simd/simd.hpp"

namespace {

using namespace vmc;

void run_naive(std::size_t n, int iters, const float* x, float* d) {
  unsigned seed = 12345;
  for (int it = 0; it < iters; ++it) {
    for (std::size_t j = 0; j < n; ++j) {
      const float r = static_cast<float>(rng::posix_rand_r(&seed) + 1) /
                      (static_cast<float>(rng::kPosixRandMax) + 2.0f);
      d[j] = -std::log(r) / x[j];
    }
  }
}

void run_opt1(std::size_t n, int iters, const float* x, float* r, float* d) {
  rng::StreamSet streams(4);
  for (int it = 0; it < iters; ++it) {
    streams.fill_uniform(0, {r, n});
    for (std::size_t j = 0; j < n; ++j) {  // compiler-vectorizable
      d[j] = -std::log(r[j] + 1e-12f) / x[j];
    }
  }
}

void run_opt2(std::size_t n, int iters, const float* x, float* r, float* d) {
  using VF = simd::vfloat;
  constexpr int L = simd::native_lanes<float>;
  rng::StreamSet streams(4);
  const std::size_t nv = n / L * L;
  for (int it = 0; it < iters; ++it) {
    streams.fill_uniform(0, {r, n});
    for (std::size_t j = 0; j < nv; j += L) {
      // Lines 12-18 of Algorithm 4, with vlog in place of SVML.
      const VF v1 = VF::load(r + j);
      const VF v2 = VF::load(x + j);
      const VF v3 = simd::vlog(v1 + VF(1e-12f));
      const VF v4 = v3 / v2;
      const VF v6 = v4 * VF(-1.0f);
      v6.store(d + j);
    }
    for (std::size_t j = nv; j < n; ++j) {
      d[j] = -std::log(r[j] + 1e-12f) / x[j];
    }
  }
}

}  // namespace

int main() {
  bench::header("Table I / Algorithms 3-4",
                "distance-sampling micro-benchmark: naive vs. optimized");

  const std::size_t n = bench::scaled(1000000);  // paper: 1e7
  const int iters = std::max(1, static_cast<int>(20 * bench::scale()));
  std::printf("N = %zu, iters = %d (paper: N = 1e7, iters = 1e4)\n\n", n,
              iters);

  simd::aligned_vector<float> x(n), r(n), d(n);
  rng::StreamSet init(1);
  init.fill_uniform(0, x);
  for (auto& v : x) v = 0.1f + 2.0f * v;  // Sigma_t values

  const double t_naive =
      bench::best_seconds(2, [&] { run_naive(n, iters, x.data(), d.data()); });
  const double checksum_naive = static_cast<double>(d[n / 2]);
  const double t_opt1 = bench::best_seconds(
      2, [&] { run_opt1(n, iters, x.data(), r.data(), d.data()); });
  const double t_opt2 = bench::best_seconds(
      2, [&] { run_opt2(n, iters, x.data(), r.data(), d.data()); });

  std::printf("measured on this host (single thread):\n");
  std::printf("%-22s %12s %14s\n", "implementation", "time (s)", "vs naive");
  std::printf("%-22s %12.3f %13.1fx\n", "Naive (Alg. 3)", t_naive, 1.0);
  std::printf("%-22s %12.3f %13.1fx\n", "Optimized-1 (VSL)", t_opt1,
              t_naive / t_opt1);
  std::printf("%-22s %12.3f %13.1fx\n", "Optimized-2 (Alg. 4)", t_opt2,
              t_naive / t_opt2);
  std::printf("(checksum %.4g)\n\n", checksum_naive);

  // Paper-hardware projection at the paper's problem size.
  const std::size_t samples = 100000000000ULL;  // 1e7 * 1e4
  const std::size_t bytes = 3 * 4 * samples;    // R, X, D arrays streamed
  const exec::CostModel cpu(exec::DeviceSpec::jlse_host());
  const exec::CostModel mic(exec::DeviceSpec::mic_7120a());
  std::printf("Table I projection (paper problem size, paper hardware):\n");
  std::printf("%-20s %12s %14s %14s\n", "", "Naive (s)", "Optimized-1(s)",
              "Optimized-2(s)");
  std::printf("%-20s %12.0f %14.1f %14.1f   (paper: 412 / 40.6 / 36.6)\n",
              "CPU - 32 threads", cpu.naive_sample_seconds(samples),
              cpu.bandwidth_kernel_seconds(bytes),
              cpu.bandwidth_kernel_seconds(bytes, 1.10));
  std::printf("%-20s %12.0f %14.1f %14.1f   (paper: 8,243 / 21.0 / 18.9)\n",
              "MIC - 122 threads", mic.naive_sample_seconds(samples, 122),
              mic.bandwidth_kernel_seconds(bytes),
              mic.bandwidth_kernel_seconds(bytes, 1.10));
  return 0;
}
