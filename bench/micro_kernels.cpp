// google-benchmark micro-kernels for the SIMD substrate primitives the
// reproduction is built on: vectorized log/exp, gathers, RNG block fills,
// and the Faddeeva function.
#include <benchmark/benchmark.h>

#include <cmath>

#include "multipole/faddeeva.hpp"
#include "rng/streamset.hpp"
#include "simd/simd.hpp"

namespace {

using namespace vmc;

void BM_ScalarLog(benchmark::State& state) {
  const std::size_t n = 4096;
  simd::aligned_vector<float> x(n), y(n);
  rng::StreamSet s(1);
  s.fill_uniform(0, x);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] = std::log(x[i] + 1e-9f);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ScalarLog);

void BM_VectorLog(benchmark::State& state) {
  using VF = simd::vfloat;
  constexpr int L = simd::native_lanes<float>;
  const std::size_t n = 4096;
  simd::aligned_vector<float> x(n), y(n);
  rng::StreamSet s(1);
  s.fill_uniform(0, x);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; i += L) {
      simd::vlog(VF::load(x.data() + i) + VF(1e-9f)).store(y.data() + i);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_VectorLog);

void BM_VectorExpDouble(benchmark::State& state) {
  using VD = simd::vdouble;
  constexpr int L = simd::native_lanes<double>;
  const std::size_t n = 4096;
  simd::aligned_vector<double> x(n), y(n);
  rng::StreamSet s(1);
  s.fill_uniform(0, x);
  for (auto& v : x) v = -20.0 + 40.0 * v;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; i += L) {
      simd::vexp(VD::load(x.data() + i)).store(y.data() + i);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_VectorExpDouble);

void BM_Gather(benchmark::State& state) {
  using VF = simd::vfloat;
  using VI = simd::Vec<std::int32_t, simd::native_lanes<float>>;
  constexpr int L = simd::native_lanes<float>;
  const std::size_t table_size = static_cast<std::size_t>(state.range(0));
  simd::aligned_vector<float> table(table_size, 1.5f);
  simd::aligned_vector<std::int32_t> idx(4096);
  rng::Stream rs(7);
  for (auto& i : idx) {
    i = static_cast<std::int32_t>(rs.next() * static_cast<double>(table_size));
  }
  VF acc(0.0f);
  for (auto _ : state) {
    for (std::size_t i = 0; i < idx.size(); i += L) {
      acc += VF::gather(table.data(), VI::load(idx.data() + i));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * idx.size()));
}
BENCHMARK(BM_Gather)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 24);

void BM_RngBlockFill(benchmark::State& state) {
  rng::StreamSet s(1);
  simd::aligned_vector<float> out(65536);
  for (auto _ : state) {
    s.fill_uniform(0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_RngBlockFill);

void BM_RngScalarDraws(benchmark::State& state) {
  rng::Stream s(1);
  simd::aligned_vector<float> out(65536);
  for (auto _ : state) {
    for (auto& v : out) v = s.next_float();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * out.size()));
}
BENCHMARK(BM_RngScalarDraws);

void BM_FaddeevaScalar(benchmark::State& state) {
  rng::Stream rs(3);
  std::vector<std::complex<double>> zs(1024);
  for (auto& z : zs) z = {4.0 * (rs.next() - 0.5), 0.5 + 3.0 * rs.next()};
  std::complex<double> acc{};
  for (auto _ : state) {
    for (const auto& z : zs) acc += multipole::faddeeva(z);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * zs.size()));
}
BENCHMARK(BM_FaddeevaScalar);

void BM_FaddeevaVector(benchmark::State& state) {
  constexpr int L = simd::native_lanes<double>;
  using VD = simd::Vec<double, L>;
  rng::Stream rs(3);
  simd::aligned_vector<double> xs(1024), ys(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 4.0 * (rs.next() - 0.5);
    ys[i] = 0.9 + 3.0 * rs.next();
  }
  VD acc(0.0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < xs.size(); i += L) {
      VD re, im;
      multipole::faddeeva_region3(VD::load(xs.data() + i),
                                  VD::load(ys.data() + i), re, im);
      acc += re;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * xs.size()));
}
BENCHMARK(BM_FaddeevaVector);

}  // namespace

BENCHMARK_MAIN();
