// Figure 8: RSBench (windowed multipole) execution time — original vs.
// vectorized implementation.
//
// Both kernels are real and measured on this host: the original variable-
// poles-per-window scalar w4 evaluation vs. the fixed-poles-per-window SIMD
// evaluation (the paper's "assuring vectorization and fixing the number of
// poles per window"). Projections for the Stampede CPU and MIC follow.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "multipole/multipole.hpp"
#include "rng/stream.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 8", "RSBench: original vs. vectorized multipole");

  multipole::WindowedMultipole::Params params;
  params.n_windows = 200;
  params.poles_per_window_mean = 16;
  params.poles_per_window_fixed = 24;
  const auto wmp = multipole::WindowedMultipole::make_synthetic(7, params);
  const double dopp = multipole::doppler_width(2.53e-8, 238.0);
  std::printf("pole data: %zu poles, %d windows, %.1f KB total (the\n"
              "\"remarkably low memory cost\" vs. %s of pointwise data)\n\n",
              wmp.n_poles(), wmp.n_windows(), static_cast<double>(wmp.data_bytes()) / 1e3,
              "hundreds of MB");

  const std::size_t n = bench::scaled(300000);
  rng::Stream rs(3);
  std::vector<double> es(n);
  for (auto& e : es) {
    e = wmp.e_min() * std::pow(wmp.e_max() / wmp.e_min(), rs.next()) * 0.999;
  }

  double sink = 0.0;
  const double t_orig = bench::best_seconds(3, [&] {
    double acc = 0.0;
    for (const double e : es) acc += wmp.evaluate(e, dopp).total;
    sink = acc;
  });
  const double check_orig = sink;
  const double t_vec = bench::best_seconds(3, [&] {
    double acc = 0.0;
    for (const double e : es) acc += wmp.evaluate_fixed(e, dopp).total;
    sink = acc;
  });

  std::printf("measured on this host (%zu lookups):\n", n);
  std::printf("%-28s %10.3f s   (%8.0f lookups/s)\n", "original (scalar w4)",
              t_orig, static_cast<double>(n) / t_orig);
  std::printf("%-28s %10.3f s   (%8.0f lookups/s)\n",
              "vectorized (fixed poles)", t_vec, static_cast<double>(n) / t_vec);
  std::printf("speedup: %.2fx   (checksum agreement: %.3g vs %.3g)\n\n",
              t_orig / t_vec, check_orig, sink);

  // Stampede projection: the multipole kernel is compute-bound (Faddeeva
  // evaluations), so device times scale with FLOP throughput rather than
  // memory bandwidth; the MIC's wide vectors shine once vectorized.
  const double host_vec_speedup = t_orig / t_vec;
  std::printf("Figure 8 shape (Stampede projection):\n");
  std::printf("  CPU original : 1.00 (normalized)\n");
  std::printf("  CPU vectorized: %.2f\n", 1.0 / host_vec_speedup);
  std::printf("  MIC original : %.2f (scalar penalty / thread ratio)\n",
              4.2 * 1.13 / 6.86);
  std::printf("  MIC vectorized: %.2f (512-bit lanes on compute-bound W)\n",
              4.2 * 1.13 / 6.86 / (host_vec_speedup * 2.0));
  std::printf(
      "\npaper shape: vectorization + fixed poles/window gives the MIC the\n"
      "advantage; RSBench reaches ~2x the FLOP rate of table lookups.\n");
  return 0;
}
