// Ablation benches for the design choices the paper calls out:
//  1. unionized energy grid vs. per-nuclide binary search [Leppänen 2009],
//  2. AoS vs. SoA nuclide data layout (Section III-A1's key optimization),
//  3. vectorizing the inner (nuclide) loop vs. the outer (particle) loop
//     (the paper's "important observation"),
//  4. tally synchronization: thread-local reduction vs. atomics vs. critical
//     sections (Section III-B's full-physics optimizations),
//  5. user-defined phase-space tallies (Section III-B1's caveat),
//  6. the compacting event-queue scheduler vs. the naive full-bank sweep
//     (EventOptions::compact_queues — src/core/event_queue.hpp),
//  7. union-grid search: binary search vs. the hash-binned accelerator's
//     tiers (XsLookupOptions::search — src/xsdata/hash_grid.hpp). All three
//     return bit-identical intervals; only the search cost differs, and on
//     the small fuel the search is a large fraction of the lookup.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"
#include "xsdata/lookup.hpp"

int main() {
  using namespace vmc;
  bench::Report report("abl_kernels", "Ablations",
                       "unionized grid / SoA / inner-vs-outer / tallies / "
                       "queue scheduler");

  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::small;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  const hm::Model model = hm::build_model(mo);
  const xs::Library& lib = model.library;
  const int fuel = model.fuel_material;

  const std::size_t n = bench::scaled(30000);
  rng::Stream rs(5);
  simd::aligned_vector<double> es(n);
  for (auto& e : es) {
    e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
  }
  std::vector<xs::XsSet> out(n);

  // --- 1. unionized vs. binary search -------------------------------------
  const double t_union = bench::best_seconds(3, [&] {
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = xs::macro_xs_history(lib, fuel, es[j]);
    }
  });
  const double t_search = bench::best_seconds(3, [&] {
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = xs::macro_xs_search(lib, fuel, es[j]);
    }
  });
  std::printf("[1] unionized grid: %.1f ms vs per-nuclide search: %.1f ms "
              "-> %.2fx\n",
              t_union * 1e3, t_search * 1e3, t_search / t_union);
  report.row({{"section", 1},
              {"union_s", t_union},
              {"search_s", t_search},
              {"union_speedup", t_search / t_union}});

  // --- 2. AoS vs. SoA -------------------------------------------------------
  const xs::AosLibrary aos(lib);
  const double t_aos = bench::best_seconds(3, [&] {
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = xs::macro_xs_aos(aos, lib.material(fuel), es[j]);
    }
  });
  std::printf("[2] SoA search: %.1f ms vs AoS search: %.1f ms -> %.2fx\n",
              t_search * 1e3, t_aos * 1e3, t_aos / t_search);
  report.row({{"section", 2},
              {"soa_s", t_search},
              {"aos_s", t_aos},
              {"soa_speedup", t_aos / t_search}});

  // --- 3. inner vs. outer loop vectorization --------------------------------
  const double t_inner = bench::best_seconds(3, [&] {
    xs::macro_xs_banked(lib, fuel, es, out);
  });
  const double t_outer = bench::best_seconds(3, [&] {
    xs::macro_xs_banked_outer(lib, fuel, es, out);
  });
  std::printf("[3] inner(nuclide)-loop SIMD: %.1f ms vs outer(particle)-loop "
              "SIMD: %.1f ms (paper: inner wins on the MIC's 512-bit unit; "
              "on OOO hosts they are close)\n",
              t_inner * 1e3, t_outer * 1e3);
  report.row({{"section", 3}, {"inner_s", t_inner}, {"outer_s", t_outer}});

  // --- 4. tally synchronization ---------------------------------------------
  std::printf("[4] tally synchronization (full simulation, %zu particles):\n",
              bench::scaled(3000));
  int tally_mode = 0;
  for (const auto& [name, mode] :
       {std::pair{"thread_local_reduce", core::TallyMode::thread_local_reduce},
        std::pair{"atomic_add", core::TallyMode::atomic_add},
        std::pair{"critical", core::TallyMode::critical}}) {
    core::Settings st;
    st.n_particles = bench::scaled(3000);
    st.n_inactive = 1;
    st.n_active = 1;
    st.n_threads = 4;
    st.tally_mode = mode;
    st.source_lo = model.source_lo;
    st.source_hi = model.source_hi;
    core::Simulation sim(model.geometry, model.library, st);
    const auto r = sim.run();
    std::printf("    %-22s %8.0f n/s (k = %.4f)\n", name, r.rate_active,
                r.k_eff);
    report.row({{"tally_mode", static_cast<double>(tally_mode++)},
                {"particles_per_s", r.rate_active}});
  }

  // --- 5. phase-space tallies (Section III-B1's caveat) --------------------
  std::printf("[5] active-batch rate with user-defined phase-space tallies:\n");
  for (const bool with_mesh : {false, true}) {
    core::MeshTally::Spec spec;
    spec.lower = model.source_lo;
    spec.upper = model.source_hi;
    spec.nx = spec.ny = 17;
    spec.nz = 8;
    spec.group_edges = core::log_group_edges(1e-11, 20.0, 16);
    core::MeshTally mesh(spec);
    core::Settings st;
    st.n_particles = bench::scaled(3000);
    st.n_inactive = 1;
    st.n_active = 2;
    st.source_lo = model.source_lo;
    st.source_hi = model.source_hi;
    if (with_mesh) st.mesh_tally = &mesh;
    core::Simulation sim(model.geometry, model.library, st);
    const auto r = sim.run();
    std::printf("    %-22s %8.0f n/s\n",
                with_mesh ? "17x17x8 x 16 groups" : "global tallies only",
                r.rate_active);
    report.row({{"mesh_tally", with_mesh ? 1.0 : 0.0},
                {"particles_per_s", r.rate_active}});
  }

  // --- 6. event-transport queue scheduler -----------------------------------
  // Full event-mode eigenvalue generations, identical physics and RNG
  // streams, only the schedule differs: naive full-bank sweep (re-bucket +
  // re-sort every iteration) vs. the compacting queue scheduler (persistent
  // live queue, counting-sort material runs, O(live) per iteration). With
  // the SIMD stages on this is the transport hot path of Figure 5.
  std::printf("[6] event transport scheduler (lookups/s, %zu particles):\n",
              bench::scaled(4000));
  double lookup_rate[2] = {0.0, 0.0};
  for (const bool compact : {false, true}) {
    core::Settings st;
    st.n_particles = bench::scaled(4000);
    st.n_inactive = 1;
    st.n_active = 3;
    st.mode = core::TransportMode::event;
    st.physics = physics::PhysicsSettings::vector_friendly();
    st.event.compact_queues = compact;
    st.source_lo = model.source_lo;
    st.source_hi = model.source_hi;
    core::Simulation sim(model.geometry, model.library, st);
    const auto r = sim.run();
    const double rate =
        r.active_seconds > 0.0
            ? static_cast<double>(r.counts_active.lookups) / r.active_seconds
            : 0.0;
    lookup_rate[compact ? 1 : 0] = rate;
    std::printf("    %-22s %12.3e lookups/s  %8.0f n/s (k = %.4f)\n",
                compact ? "compact_queues" : "naive_banked", rate,
                r.rate_active, r.k_eff);
    report.row({{"compact_queues", compact ? 1.0 : 0.0},
                {"lookups_per_s", rate},
                {"particles_per_s", r.rate_active}});
  }
  if (lookup_rate[0] > 0.0) {
    std::printf("    queue-scheduler speedup: %.2fx\n",
                lookup_rate[1] / lookup_rate[0]);
    report.note("queue_scheduler_speedup", lookup_rate[1] / lookup_rate[0]);
  }

  // --- 7. grid-search ablation ---------------------------------------------
  // The banked total-Sigma kernel with each union-grid search strategy. On
  // the 34-nuclide small fuel the per-particle binary search is a sizeable
  // share of the kernel, so the accelerator's effect shows directly here
  // (fig2 carries the same comparison at H.M. Large scale plus the isolated
  // search rates).
  std::printf("[7] union-grid search in macro_total_banked (%zu energies, "
              "%d buckets, %d max window):\n",
              n, lib.hash_grid().n_buckets(),
              lib.hash_grid().max_bucket_points());
  simd::aligned_vector<double> tot(n);
  int search_mode = 0;
  double search_s[3] = {0.0, 0.0, 0.0};
  for (const auto& [name, search] :
       {std::pair{"binary_search", xs::GridSearch::binary},
        std::pair{"hash_union", xs::GridSearch::hash},
        std::pair{"hash_double_index", xs::GridSearch::hash_nuclide}}) {
    const xs::XsLookupOptions opt{search};
    const double t = bench::best_seconds(3, [&] {
      xs::macro_total_banked(lib, fuel, es, tot, opt);
    });
    search_s[search_mode] = t;
    std::printf("    %-22s %12.3e lookups/s\n", name,
                static_cast<double>(n) / t);
    report.row({{"section", 7},
                {"grid_search", static_cast<double>(search_mode++)},
                {"lookups_per_s", static_cast<double>(n) / t}});
  }
  if (search_s[1] > 0.0) {
    std::printf("    hash-vs-binary speedup: %.2fx\n",
                search_s[0] / search_s[1]);
    report.note("grid_search_hash_speedup", search_s[0] / search_s[1]);
  }

  // --- 8. ISA backend ablation ----------------------------------------------
  // The full-XsSet banked kernel under every backend level this run may
  // dispatch (scalar up to the selected level, so a VMC_SIMD_ISA-pinned run
  // has a deterministic row set). Same binary, same data, bit-identical
  // outputs — the rate isolates what lane width alone buys on the
  // 34-nuclide small fuel.
  std::printf("[8] macro_xs_banked per ISA backend (%zu energies):\n", n);
  {
    const simd::IsaLevel selected = simd::dispatch().isa;
    constexpr xs::XsLookupOptions kHash{xs::GridSearch::hash};
    for (int li = 0; li <= static_cast<int>(selected); ++li) {
      const auto level = static_cast<simd::IsaLevel>(li);
      simd::force_isa(level);
      const double t = bench::best_seconds(3, [&] {
        xs::macro_xs_banked(lib, fuel, es, out, kHash);
      });
      std::printf("    %-10s (%3d-bit)   %12.3e lookups/s\n",
                  simd::isa_display_name(level), simd::isa_simd_bits(level),
                  static_cast<double>(n) / t);
      report.row(
          {{"sweep_level", static_cast<double>(li)},
           {"sweep_simd_bits", static_cast<double>(simd::isa_simd_bits(level))},
           {"sweep_lookups_per_s", static_cast<double>(n) / t}});
    }
    simd::clear_forced_isa();
  }
  return 0;
}
