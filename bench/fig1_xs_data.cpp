// Figure 1: total cross section of the U-238-like synthetic nuclide across
// the full energy range — the resonance forest the lookup benchmarks walk —
// plus the cross-section memory accounting that forest implies: pointwise
// data, the unionized grid (Table II's transfer size), and the hash-binned
// energy-grid index, swept over bins/decade to show the memory/window
// tradeoff (see EXPERIMENTS.md).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "hm/hm_model.hpp"
#include "rng/stream.hpp"
#include "xsdata/hash_grid.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

int main() {
  using namespace vmc;
  bench::Report report("fig1_xs_data", "Figure 1",
                       "U-238 sigma_t vs. energy + xs-data memory accounting "
                       "and hash-index bins/decade sweep");

  const auto params = xs::SynthParams::u238_like();
  const xs::Nuclide u238 = xs::make_synthetic_nuclide("U238", 92238, params);
  std::printf("grid points: %zu, resolved resonances: %d over [%.2e, %.2e] MeV\n",
              u238.grid_size(), params.n_resonances, params.res_e_min,
              params.res_e_max);
  std::printf("URR range: [%.3e, %.3e] MeV with %d probability bands\n\n",
              u238.urr->e_min, u238.urr->e_max, u238.urr->n_bands);

  std::printf("%14s %14s %14s %14s\n", "E (MeV)", "sigma_t (b)", "sigma_s (b)",
              "sigma_a (b)");
  // Log-spaced scan; in the resolved range also report the local peak so the
  // resonance structure is visible at this row resolution.
  const int rows = 60;
  for (int i = 0; i < rows; ++i) {
    const double e_lo =
        xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin,
                                  static_cast<double>(i) / rows);
    const double e_hi =
        xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin,
                                  static_cast<double>(i + 1) / rows);
    const xs::XsSet mid = u238.evaluate(std::sqrt(e_lo * e_hi));
    std::printf("%14.4e %14.4f %14.4f %14.4f", std::sqrt(e_lo * e_hi),
                mid.total, mid.scatter, mid.absorption);
    if (e_hi > params.res_e_min && e_lo < params.res_e_max) {
      // Peak within the bin (resonance spike).
      float peak = 0.0f;
      for (std::size_t g = 0; g < u238.grid_size(); ++g) {
        if (u238.energy[g] >= e_lo && u238.energy[g] < e_hi) {
          peak = std::max(peak, u238.total[g]);
        }
      }
      std::printf("   peak %10.1f", static_cast<double>(peak));
    }
    std::printf("\n");
  }

  // Shape checks mirrored from the paper's Figure 1: 1/v at thermal,
  // resonance forest in the keV region, smooth ~10 b at MeV energies.
  const double t_thermal = u238.evaluate(2.53e-8).total;
  const double t_fast = u238.evaluate(2.0).total;
  std::printf("\nshape: sigma_t(0.0253 eV) = %.2f b, sigma_t(2 MeV) = %.2f b\n",
              t_thermal, t_fast);

  // --- xs-data memory accounting + hash-index sweep -------------------------
  // The H.M. Large library the lookup figures run on: pointwise data, union
  // grid, and the hash-binned index in double-indexed (tier-b) mode. The
  // sweep rebuilds the index at several bins/decade settings and times the
  // hash-accelerated banked kernel at each, making the memory-vs-window
  // tradeoff measurable: more buckets -> narrower resolve windows -> faster
  // searches, at linear index cost (the per-bucket per-nuclide start table
  // dominates).
  hm::ModelOptions mo;
  mo.fuel = hm::FuelSize::large;
  mo.grid_scale = std::min(1.0, 0.5 * bench::scale());
  int fuel = -1;
  xs::Library lib = hm::build_library(mo, &fuel);
  std::printf("\nH.M. Large library: %d nuclides, union grid %zu pts\n",
              lib.n_nuclides(), lib.union_grid().size());
  std::printf("  pointwise data: %8.2f MB\n",
              static_cast<double>(lib.pointwise_bytes()) / 1e6);
  std::printf("  union grid+map: %8.2f MB\n",
              static_cast<double>(lib.union_bytes()) / 1e6);
  report.note("n_nuclides", static_cast<double>(lib.n_nuclides()))
      .note("union_grid_points", static_cast<double>(lib.union_grid().size()))
      .note("union_bytes", static_cast<double>(lib.union_bytes()))
      .note("pointwise_bytes", static_cast<double>(lib.pointwise_bytes()));

  const std::size_t n = bench::scaled(30000);
  rng::Stream rs(1);
  simd::aligned_vector<double> es(n);
  for (auto& e : es) {
    e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
  }
  simd::aligned_vector<double> out(n);
  constexpr xs::XsLookupOptions kHash{xs::GridSearch::hash};

  std::printf("\nhash index (double-indexed) vs. bins/decade:\n");
  std::printf("%12s %10s %11s %12s %10s %14s\n", "bins/decade", "buckets",
              "max window", "index MB", "of union", "hash banked/s");
  for (const int bpd : {64, 256, 1024, 4096}) {
    lib.rebuild_hash({bpd, true});
    const auto& hg = lib.hash_grid();
    const double t_hash = bench::best_seconds(3, [&] {
      xs::macro_total_banked(lib, fuel, es, out, kHash);
    });
    const double ratio = static_cast<double>(lib.hash_bytes()) /
                         static_cast<double>(lib.union_bytes());
    std::printf("%12d %10d %11d %12.2f %9.1f%% %14.3e\n", bpd, hg.n_buckets(),
                hg.max_bucket_points(),
                static_cast<double>(lib.hash_bytes()) / 1e6, 100.0 * ratio,
                static_cast<double>(n) / t_hash);
    report.row(
        {{"bins_per_decade", static_cast<double>(bpd)},
         {"n_buckets", static_cast<double>(hg.n_buckets())},
         {"max_bucket_points", static_cast<double>(hg.max_bucket_points())},
         {"hash_bytes", static_cast<double>(lib.hash_bytes())},
         {"hash_over_union", ratio},
         {"hash_banked_per_s", static_cast<double>(n) / t_hash}});
  }

  // Restore the default index and report the headline budget check: at the
  // default bins/decade the double-indexed accelerator must stay a small
  // fraction of the union grid it accelerates (<= 25% is the design budget).
  lib.rebuild_hash({});
  const double ratio = static_cast<double>(lib.hash_bytes()) /
                       static_cast<double>(lib.union_bytes());
  std::printf("\ndefault index (%d bins/decade): %.2f MB = %.1f%% of union "
              "grid -> budget (<= 25%%): %s\n",
              xs::HashGridOptions{}.bins_per_decade,
              static_cast<double>(lib.hash_bytes()) / 1e6, 100.0 * ratio,
              ratio <= 0.25 ? "ok" : "EXCEEDED");
  report.note("hash_bytes_default", static_cast<double>(lib.hash_bytes()))
      .note("hash_over_union_default", ratio);
  return 0;
}
