// Figure 1: total cross section of the U-238-like synthetic nuclide across
// the full energy range — the resonance forest the lookup benchmarks walk.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "xsdata/synth.hpp"

int main() {
  using namespace vmc;
  bench::header("Figure 1", "U-238 total cross section vs. energy (synthetic)");

  const auto params = xs::SynthParams::u238_like();
  const xs::Nuclide u238 = xs::make_synthetic_nuclide("U238", 92238, params);
  std::printf("grid points: %zu, resolved resonances: %d over [%.2e, %.2e] MeV\n",
              u238.grid_size(), params.n_resonances, params.res_e_min,
              params.res_e_max);
  std::printf("URR range: [%.3e, %.3e] MeV with %d probability bands\n\n",
              u238.urr->e_min, u238.urr->e_max, u238.urr->n_bands);

  std::printf("%14s %14s %14s %14s\n", "E (MeV)", "sigma_t (b)", "sigma_s (b)",
              "sigma_a (b)");
  // Log-spaced scan; in the resolved range also report the local peak so the
  // resonance structure is visible at this row resolution.
  const int rows = 60;
  for (int i = 0; i < rows; ++i) {
    const double e_lo =
        xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin,
                                  static_cast<double>(i) / rows);
    const double e_hi =
        xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin,
                                  static_cast<double>(i + 1) / rows);
    const xs::XsSet mid = u238.evaluate(std::sqrt(e_lo * e_hi));
    std::printf("%14.4e %14.4f %14.4f %14.4f", std::sqrt(e_lo * e_hi),
                mid.total, mid.scatter, mid.absorption);
    if (e_hi > params.res_e_min && e_lo < params.res_e_max) {
      // Peak within the bin (resonance spike).
      float peak = 0.0f;
      for (std::size_t g = 0; g < u238.grid_size(); ++g) {
        if (u238.energy[g] >= e_lo && u238.energy[g] < e_hi) {
          peak = std::max(peak, u238.total[g]);
        }
      }
      std::printf("   peak %10.1f", static_cast<double>(peak));
    }
    std::printf("\n");
  }

  // Shape checks mirrored from the paper's Figure 1: 1/v at thermal,
  // resonance forest in the keV region, smooth ~10 b at MeV energies.
  const double t_thermal = u238.evaluate(2.53e-8).total;
  const double t_fast = u238.evaluate(2.0).total;
  std::printf("\nshape: sigma_t(0.0253 eV) = %.2f b, sigma_t(2 MeV) = %.2f b\n",
              t_thermal, t_fast);
  return 0;
}
