# Empty dependencies file for vmc_comm.
# This may be replaced when dependencies are built.
