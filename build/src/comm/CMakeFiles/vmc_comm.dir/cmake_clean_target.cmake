file(REMOVE_RECURSE
  "libvmc_comm.a"
)
