file(REMOVE_RECURSE
  "CMakeFiles/vmc_comm.dir/comm.cpp.o"
  "CMakeFiles/vmc_comm.dir/comm.cpp.o.d"
  "libvmc_comm.a"
  "libvmc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
