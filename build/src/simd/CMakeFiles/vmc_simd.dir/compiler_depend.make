# Empty compiler generated dependencies file for vmc_simd.
# This may be replaced when dependencies are built.
