file(REMOVE_RECURSE
  "libvmc_simd.a"
)
