file(REMOVE_RECURSE
  "CMakeFiles/vmc_simd.dir/simd.cpp.o"
  "CMakeFiles/vmc_simd.dir/simd.cpp.o.d"
  "libvmc_simd.a"
  "libvmc_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
