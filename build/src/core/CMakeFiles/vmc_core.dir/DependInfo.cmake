
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/eigenvalue.cpp" "src/core/CMakeFiles/vmc_core.dir/eigenvalue.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/eigenvalue.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/vmc_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/event.cpp.o.d"
  "/root/repo/src/core/fixed_source.cpp" "src/core/CMakeFiles/vmc_core.dir/fixed_source.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/fixed_source.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/vmc_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/history.cpp.o.d"
  "/root/repo/src/core/mesh_tally.cpp" "src/core/CMakeFiles/vmc_core.dir/mesh_tally.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/mesh_tally.cpp.o.d"
  "/root/repo/src/core/statepoint.cpp" "src/core/CMakeFiles/vmc_core.dir/statepoint.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/statepoint.cpp.o.d"
  "/root/repo/src/core/tally.cpp" "src/core/CMakeFiles/vmc_core.dir/tally.cpp.o" "gcc" "src/core/CMakeFiles/vmc_core.dir/tally.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xsdata/CMakeFiles/vmc_xsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vmc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/particle/CMakeFiles/vmc_particle.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/vmc_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/vmc_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/vmc_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/vmc_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
