# Empty dependencies file for vmc_core.
# This may be replaced when dependencies are built.
