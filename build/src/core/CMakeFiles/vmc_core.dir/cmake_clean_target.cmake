file(REMOVE_RECURSE
  "libvmc_core.a"
)
