file(REMOVE_RECURSE
  "CMakeFiles/vmc_core.dir/eigenvalue.cpp.o"
  "CMakeFiles/vmc_core.dir/eigenvalue.cpp.o.d"
  "CMakeFiles/vmc_core.dir/event.cpp.o"
  "CMakeFiles/vmc_core.dir/event.cpp.o.d"
  "CMakeFiles/vmc_core.dir/fixed_source.cpp.o"
  "CMakeFiles/vmc_core.dir/fixed_source.cpp.o.d"
  "CMakeFiles/vmc_core.dir/history.cpp.o"
  "CMakeFiles/vmc_core.dir/history.cpp.o.d"
  "CMakeFiles/vmc_core.dir/mesh_tally.cpp.o"
  "CMakeFiles/vmc_core.dir/mesh_tally.cpp.o.d"
  "CMakeFiles/vmc_core.dir/statepoint.cpp.o"
  "CMakeFiles/vmc_core.dir/statepoint.cpp.o.d"
  "CMakeFiles/vmc_core.dir/tally.cpp.o"
  "CMakeFiles/vmc_core.dir/tally.cpp.o.d"
  "libvmc_core.a"
  "libvmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
