file(REMOVE_RECURSE
  "CMakeFiles/vmc_exec.dir/distributed.cpp.o"
  "CMakeFiles/vmc_exec.dir/distributed.cpp.o.d"
  "CMakeFiles/vmc_exec.dir/load_balance.cpp.o"
  "CMakeFiles/vmc_exec.dir/load_balance.cpp.o.d"
  "CMakeFiles/vmc_exec.dir/machine.cpp.o"
  "CMakeFiles/vmc_exec.dir/machine.cpp.o.d"
  "CMakeFiles/vmc_exec.dir/offload.cpp.o"
  "CMakeFiles/vmc_exec.dir/offload.cpp.o.d"
  "CMakeFiles/vmc_exec.dir/symmetric.cpp.o"
  "CMakeFiles/vmc_exec.dir/symmetric.cpp.o.d"
  "CMakeFiles/vmc_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/vmc_exec.dir/thread_pool.cpp.o.d"
  "libvmc_exec.a"
  "libvmc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
