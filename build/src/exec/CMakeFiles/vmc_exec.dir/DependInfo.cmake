
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/distributed.cpp" "src/exec/CMakeFiles/vmc_exec.dir/distributed.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/distributed.cpp.o.d"
  "/root/repo/src/exec/load_balance.cpp" "src/exec/CMakeFiles/vmc_exec.dir/load_balance.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/load_balance.cpp.o.d"
  "/root/repo/src/exec/machine.cpp" "src/exec/CMakeFiles/vmc_exec.dir/machine.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/machine.cpp.o.d"
  "/root/repo/src/exec/offload.cpp" "src/exec/CMakeFiles/vmc_exec.dir/offload.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/offload.cpp.o.d"
  "/root/repo/src/exec/symmetric.cpp" "src/exec/CMakeFiles/vmc_exec.dir/symmetric.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/symmetric.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "src/exec/CMakeFiles/vmc_exec.dir/thread_pool.cpp.o" "gcc" "src/exec/CMakeFiles/vmc_exec.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vmc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/particle/CMakeFiles/vmc_particle.dir/DependInfo.cmake"
  "/root/repo/build/src/xsdata/CMakeFiles/vmc_xsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/vmc_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/vmc_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vmc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/vmc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/vmc_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
