file(REMOVE_RECURSE
  "libvmc_exec.a"
)
