# Empty dependencies file for vmc_exec.
# This may be replaced when dependencies are built.
