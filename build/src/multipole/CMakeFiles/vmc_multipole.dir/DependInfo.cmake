
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multipole/doppler.cpp" "src/multipole/CMakeFiles/vmc_multipole.dir/doppler.cpp.o" "gcc" "src/multipole/CMakeFiles/vmc_multipole.dir/doppler.cpp.o.d"
  "/root/repo/src/multipole/faddeeva.cpp" "src/multipole/CMakeFiles/vmc_multipole.dir/faddeeva.cpp.o" "gcc" "src/multipole/CMakeFiles/vmc_multipole.dir/faddeeva.cpp.o.d"
  "/root/repo/src/multipole/multipole.cpp" "src/multipole/CMakeFiles/vmc_multipole.dir/multipole.cpp.o" "gcc" "src/multipole/CMakeFiles/vmc_multipole.dir/multipole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/vmc_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/vmc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/xsdata/CMakeFiles/vmc_xsdata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
