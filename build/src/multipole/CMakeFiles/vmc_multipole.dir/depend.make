# Empty dependencies file for vmc_multipole.
# This may be replaced when dependencies are built.
