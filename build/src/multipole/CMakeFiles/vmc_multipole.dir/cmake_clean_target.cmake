file(REMOVE_RECURSE
  "libvmc_multipole.a"
)
