file(REMOVE_RECURSE
  "CMakeFiles/vmc_multipole.dir/doppler.cpp.o"
  "CMakeFiles/vmc_multipole.dir/doppler.cpp.o.d"
  "CMakeFiles/vmc_multipole.dir/faddeeva.cpp.o"
  "CMakeFiles/vmc_multipole.dir/faddeeva.cpp.o.d"
  "CMakeFiles/vmc_multipole.dir/multipole.cpp.o"
  "CMakeFiles/vmc_multipole.dir/multipole.cpp.o.d"
  "libvmc_multipole.a"
  "libvmc_multipole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_multipole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
