file(REMOVE_RECURSE
  "libvmc_rng.a"
)
