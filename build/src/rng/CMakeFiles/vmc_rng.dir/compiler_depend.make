# Empty compiler generated dependencies file for vmc_rng.
# This may be replaced when dependencies are built.
