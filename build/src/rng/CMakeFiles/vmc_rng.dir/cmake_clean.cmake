file(REMOVE_RECURSE
  "CMakeFiles/vmc_rng.dir/streamset.cpp.o"
  "CMakeFiles/vmc_rng.dir/streamset.cpp.o.d"
  "libvmc_rng.a"
  "libvmc_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
