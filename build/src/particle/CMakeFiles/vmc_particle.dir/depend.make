# Empty dependencies file for vmc_particle.
# This may be replaced when dependencies are built.
