file(REMOVE_RECURSE
  "libvmc_particle.a"
)
