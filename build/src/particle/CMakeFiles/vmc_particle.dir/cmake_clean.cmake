file(REMOVE_RECURSE
  "CMakeFiles/vmc_particle.dir/bank.cpp.o"
  "CMakeFiles/vmc_particle.dir/bank.cpp.o.d"
  "libvmc_particle.a"
  "libvmc_particle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_particle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
