file(REMOVE_RECURSE
  "libvmc_geom.a"
)
