
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/geometry.cpp" "src/geom/CMakeFiles/vmc_geom.dir/geometry.cpp.o" "gcc" "src/geom/CMakeFiles/vmc_geom.dir/geometry.cpp.o.d"
  "/root/repo/src/geom/plot.cpp" "src/geom/CMakeFiles/vmc_geom.dir/plot.cpp.o" "gcc" "src/geom/CMakeFiles/vmc_geom.dir/plot.cpp.o.d"
  "/root/repo/src/geom/surface.cpp" "src/geom/CMakeFiles/vmc_geom.dir/surface.cpp.o" "gcc" "src/geom/CMakeFiles/vmc_geom.dir/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
