# Empty compiler generated dependencies file for vmc_geom.
# This may be replaced when dependencies are built.
