file(REMOVE_RECURSE
  "CMakeFiles/vmc_geom.dir/geometry.cpp.o"
  "CMakeFiles/vmc_geom.dir/geometry.cpp.o.d"
  "CMakeFiles/vmc_geom.dir/plot.cpp.o"
  "CMakeFiles/vmc_geom.dir/plot.cpp.o.d"
  "CMakeFiles/vmc_geom.dir/surface.cpp.o"
  "CMakeFiles/vmc_geom.dir/surface.cpp.o.d"
  "libvmc_geom.a"
  "libvmc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
