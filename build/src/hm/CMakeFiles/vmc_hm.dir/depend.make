# Empty dependencies file for vmc_hm.
# This may be replaced when dependencies are built.
