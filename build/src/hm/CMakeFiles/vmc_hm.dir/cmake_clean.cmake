file(REMOVE_RECURSE
  "CMakeFiles/vmc_hm.dir/hm_model.cpp.o"
  "CMakeFiles/vmc_hm.dir/hm_model.cpp.o.d"
  "libvmc_hm.a"
  "libvmc_hm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
