file(REMOVE_RECURSE
  "libvmc_hm.a"
)
