file(REMOVE_RECURSE
  "CMakeFiles/vmc_xsdata.dir/library.cpp.o"
  "CMakeFiles/vmc_xsdata.dir/library.cpp.o.d"
  "CMakeFiles/vmc_xsdata.dir/lookup.cpp.o"
  "CMakeFiles/vmc_xsdata.dir/lookup.cpp.o.d"
  "CMakeFiles/vmc_xsdata.dir/nuclide.cpp.o"
  "CMakeFiles/vmc_xsdata.dir/nuclide.cpp.o.d"
  "CMakeFiles/vmc_xsdata.dir/synth.cpp.o"
  "CMakeFiles/vmc_xsdata.dir/synth.cpp.o.d"
  "libvmc_xsdata.a"
  "libvmc_xsdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_xsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
