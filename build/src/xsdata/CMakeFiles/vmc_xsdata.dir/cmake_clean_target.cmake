file(REMOVE_RECURSE
  "libvmc_xsdata.a"
)
