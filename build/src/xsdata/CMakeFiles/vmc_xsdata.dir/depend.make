# Empty dependencies file for vmc_xsdata.
# This may be replaced when dependencies are built.
