file(REMOVE_RECURSE
  "libvmc_prof.a"
)
