# Empty compiler generated dependencies file for vmc_prof.
# This may be replaced when dependencies are built.
