file(REMOVE_RECURSE
  "CMakeFiles/vmc_prof.dir/profiler.cpp.o"
  "CMakeFiles/vmc_prof.dir/profiler.cpp.o.d"
  "CMakeFiles/vmc_prof.dir/report.cpp.o"
  "CMakeFiles/vmc_prof.dir/report.cpp.o.d"
  "libvmc_prof.a"
  "libvmc_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
