file(REMOVE_RECURSE
  "libvmc_physics.a"
)
