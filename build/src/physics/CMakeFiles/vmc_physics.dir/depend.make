# Empty dependencies file for vmc_physics.
# This may be replaced when dependencies are built.
