file(REMOVE_RECURSE
  "CMakeFiles/vmc_physics.dir/collision.cpp.o"
  "CMakeFiles/vmc_physics.dir/collision.cpp.o.d"
  "libvmc_physics.a"
  "libvmc_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
