# Empty compiler generated dependencies file for full_core.
# This may be replaced when dependencies are built.
