file(REMOVE_RECURSE
  "CMakeFiles/full_core.dir/full_core.cpp.o"
  "CMakeFiles/full_core.dir/full_core.cpp.o.d"
  "full_core"
  "full_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
