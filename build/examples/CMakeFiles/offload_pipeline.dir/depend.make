# Empty dependencies file for offload_pipeline.
# This may be replaced when dependencies are built.
