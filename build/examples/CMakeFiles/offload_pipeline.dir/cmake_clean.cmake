file(REMOVE_RECURSE
  "CMakeFiles/offload_pipeline.dir/offload_pipeline.cpp.o"
  "CMakeFiles/offload_pipeline.dir/offload_pipeline.cpp.o.d"
  "offload_pipeline"
  "offload_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
