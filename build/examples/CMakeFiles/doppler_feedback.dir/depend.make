# Empty dependencies file for doppler_feedback.
# This may be replaced when dependencies are built.
