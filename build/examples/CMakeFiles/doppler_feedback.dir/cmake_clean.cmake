file(REMOVE_RECURSE
  "CMakeFiles/doppler_feedback.dir/doppler_feedback.cpp.o"
  "CMakeFiles/doppler_feedback.dir/doppler_feedback.cpp.o.d"
  "doppler_feedback"
  "doppler_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppler_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
