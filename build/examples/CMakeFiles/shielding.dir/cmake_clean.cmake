file(REMOVE_RECURSE
  "CMakeFiles/shielding.dir/shielding.cpp.o"
  "CMakeFiles/shielding.dir/shielding.cpp.o.d"
  "shielding"
  "shielding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shielding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
