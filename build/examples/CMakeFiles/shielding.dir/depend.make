# Empty dependencies file for shielding.
# This may be replaced when dependencies are built.
