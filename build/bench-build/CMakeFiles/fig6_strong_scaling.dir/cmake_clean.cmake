file(REMOVE_RECURSE
  "../bench/fig6_strong_scaling"
  "../bench/fig6_strong_scaling.pdb"
  "CMakeFiles/fig6_strong_scaling.dir/fig6_strong_scaling.cpp.o"
  "CMakeFiles/fig6_strong_scaling.dir/fig6_strong_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
