# Empty dependencies file for fig2_lookup_rates.
# This may be replaced when dependencies are built.
