# Empty dependencies file for tab2_offload_overhead.
# This may be replaced when dependencies are built.
