file(REMOVE_RECURSE
  "../bench/tab2_offload_overhead"
  "../bench/tab2_offload_overhead.pdb"
  "CMakeFiles/tab2_offload_overhead.dir/tab2_offload_overhead.cpp.o"
  "CMakeFiles/tab2_offload_overhead.dir/tab2_offload_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_offload_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
