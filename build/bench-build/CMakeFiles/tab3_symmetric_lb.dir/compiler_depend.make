# Empty compiler generated dependencies file for tab3_symmetric_lb.
# This may be replaced when dependencies are built.
