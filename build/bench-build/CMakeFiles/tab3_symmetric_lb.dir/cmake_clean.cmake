file(REMOVE_RECURSE
  "../bench/tab3_symmetric_lb"
  "../bench/tab3_symmetric_lb.pdb"
  "CMakeFiles/tab3_symmetric_lb.dir/tab3_symmetric_lb.cpp.o"
  "CMakeFiles/tab3_symmetric_lb.dir/tab3_symmetric_lb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_symmetric_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
