file(REMOVE_RECURSE
  "../bench/tab1_distance_sampling"
  "../bench/tab1_distance_sampling.pdb"
  "CMakeFiles/tab1_distance_sampling.dir/tab1_distance_sampling.cpp.o"
  "CMakeFiles/tab1_distance_sampling.dir/tab1_distance_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_distance_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
