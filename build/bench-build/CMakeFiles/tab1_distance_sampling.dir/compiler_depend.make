# Empty compiler generated dependencies file for tab1_distance_sampling.
# This may be replaced when dependencies are built.
