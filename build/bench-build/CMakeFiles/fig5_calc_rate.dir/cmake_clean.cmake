file(REMOVE_RECURSE
  "../bench/fig5_calc_rate"
  "../bench/fig5_calc_rate.pdb"
  "CMakeFiles/fig5_calc_rate.dir/fig5_calc_rate.cpp.o"
  "CMakeFiles/fig5_calc_rate.dir/fig5_calc_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_calc_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
