# Empty compiler generated dependencies file for fig4_profile_compare.
# This may be replaced when dependencies are built.
