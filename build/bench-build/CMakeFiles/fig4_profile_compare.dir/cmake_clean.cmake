file(REMOVE_RECURSE
  "../bench/fig4_profile_compare"
  "../bench/fig4_profile_compare.pdb"
  "CMakeFiles/fig4_profile_compare.dir/fig4_profile_compare.cpp.o"
  "CMakeFiles/fig4_profile_compare.dir/fig4_profile_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_profile_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
