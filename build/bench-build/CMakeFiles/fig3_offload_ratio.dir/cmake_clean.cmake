file(REMOVE_RECURSE
  "../bench/fig3_offload_ratio"
  "../bench/fig3_offload_ratio.pdb"
  "CMakeFiles/fig3_offload_ratio.dir/fig3_offload_ratio.cpp.o"
  "CMakeFiles/fig3_offload_ratio.dir/fig3_offload_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_offload_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
