# Empty compiler generated dependencies file for fig3_offload_ratio.
# This may be replaced when dependencies are built.
