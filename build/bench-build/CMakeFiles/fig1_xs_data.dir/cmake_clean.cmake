file(REMOVE_RECURSE
  "../bench/fig1_xs_data"
  "../bench/fig1_xs_data.pdb"
  "CMakeFiles/fig1_xs_data.dir/fig1_xs_data.cpp.o"
  "CMakeFiles/fig1_xs_data.dir/fig1_xs_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_xs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
