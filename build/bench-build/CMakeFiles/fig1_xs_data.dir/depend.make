# Empty dependencies file for fig1_xs_data.
# This may be replaced when dependencies are built.
