file(REMOVE_RECURSE
  "../bench/abl_kernels"
  "../bench/abl_kernels.pdb"
  "CMakeFiles/abl_kernels.dir/abl_kernels.cpp.o"
  "CMakeFiles/abl_kernels.dir/abl_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
