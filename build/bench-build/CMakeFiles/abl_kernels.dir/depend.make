# Empty dependencies file for abl_kernels.
# This may be replaced when dependencies are built.
