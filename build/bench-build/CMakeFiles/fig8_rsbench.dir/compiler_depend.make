# Empty compiler generated dependencies file for fig8_rsbench.
# This may be replaced when dependencies are built.
