file(REMOVE_RECURSE
  "../bench/fig8_rsbench"
  "../bench/fig8_rsbench.pdb"
  "CMakeFiles/fig8_rsbench.dir/fig8_rsbench.cpp.o"
  "CMakeFiles/fig8_rsbench.dir/fig8_rsbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
