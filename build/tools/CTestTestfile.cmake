# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[vmc_run_smoke]=] "/root/repo/build/tools/vmc_run" "--model" "assembly" "--particles" "300" "--inactive" "1" "--active" "2" "--grid-scale" "0.08" "--mesh" "4" "--plot")
set_tests_properties([=[vmc_run_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[vmc_run_event_smoke]=] "/root/repo/build/tools/vmc_run" "--model" "assembly" "--particles" "300" "--inactive" "1" "--active" "1" "--mode" "event" "--grid-scale" "0.08")
set_tests_properties([=[vmc_run_event_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
