file(REMOVE_RECURSE
  "CMakeFiles/vmc_run.dir/vmc_run.cpp.o"
  "CMakeFiles/vmc_run.dir/vmc_run.cpp.o.d"
  "vmc_run"
  "vmc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
