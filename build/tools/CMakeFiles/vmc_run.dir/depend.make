# Empty dependencies file for vmc_run.
# This may be replaced when dependencies are built.
