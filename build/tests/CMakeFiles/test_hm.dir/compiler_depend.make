# Empty compiler generated dependencies file for test_hm.
# This may be replaced when dependencies are built.
