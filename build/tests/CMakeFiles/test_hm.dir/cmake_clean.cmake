file(REMOVE_RECURSE
  "CMakeFiles/test_hm.dir/hm/test_hm_model.cpp.o"
  "CMakeFiles/test_hm.dir/hm/test_hm_model.cpp.o.d"
  "test_hm"
  "test_hm.pdb"
  "test_hm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
