file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_equivalence_fuzz.cpp.o"
  "CMakeFiles/test_property.dir/property/test_equivalence_fuzz.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_geometry_fuzz.cpp.o"
  "CMakeFiles/test_property.dir/property/test_geometry_fuzz.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_rng_statistics.cpp.o"
  "CMakeFiles/test_property.dir/property/test_rng_statistics.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_simd_sweeps.cpp.o"
  "CMakeFiles/test_property.dir/property/test_simd_sweeps.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
