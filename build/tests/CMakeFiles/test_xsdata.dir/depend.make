# Empty dependencies file for test_xsdata.
# This may be replaced when dependencies are built.
