file(REMOVE_RECURSE
  "CMakeFiles/test_xsdata.dir/xsdata/test_library.cpp.o"
  "CMakeFiles/test_xsdata.dir/xsdata/test_library.cpp.o.d"
  "CMakeFiles/test_xsdata.dir/xsdata/test_lookup.cpp.o"
  "CMakeFiles/test_xsdata.dir/xsdata/test_lookup.cpp.o.d"
  "CMakeFiles/test_xsdata.dir/xsdata/test_nuclide.cpp.o"
  "CMakeFiles/test_xsdata.dir/xsdata/test_nuclide.cpp.o.d"
  "CMakeFiles/test_xsdata.dir/xsdata/test_synth.cpp.o"
  "CMakeFiles/test_xsdata.dir/xsdata/test_synth.cpp.o.d"
  "test_xsdata"
  "test_xsdata.pdb"
  "test_xsdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
