file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/exec/test_distributed.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_distributed.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_load_balance.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_load_balance.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_machine.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_machine.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_offload.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_offload.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_symmetric.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_symmetric.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/test_thread_pool.cpp.o"
  "CMakeFiles/test_exec.dir/exec/test_thread_pool.cpp.o.d"
  "test_exec"
  "test_exec.pdb"
  "test_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
