file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_eigenvalue.cpp.o"
  "CMakeFiles/test_core.dir/core/test_eigenvalue.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_equivalence.cpp.o"
  "CMakeFiles/test_core.dir/core/test_equivalence.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fixed_source.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fixed_source.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mesh_tally.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mesh_tally.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_statepoint.cpp.o"
  "CMakeFiles/test_core.dir/core/test_statepoint.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_tally.cpp.o"
  "CMakeFiles/test_core.dir/core/test_tally.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transport.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transport.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
