file(REMOVE_RECURSE
  "CMakeFiles/test_particle.dir/particle/test_bank.cpp.o"
  "CMakeFiles/test_particle.dir/particle/test_bank.cpp.o.d"
  "test_particle"
  "test_particle.pdb"
  "test_particle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_particle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
