
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/particle/test_bank.cpp" "tests/CMakeFiles/test_particle.dir/particle/test_bank.cpp.o" "gcc" "tests/CMakeFiles/test_particle.dir/particle/test_bank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/vmc_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/vmc_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/vmc_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/xsdata/CMakeFiles/vmc_xsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/vmc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/particle/CMakeFiles/vmc_particle.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/vmc_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/vmc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vmc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/multipole/CMakeFiles/vmc_multipole.dir/DependInfo.cmake"
  "/root/repo/build/src/hm/CMakeFiles/vmc_hm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
