# Empty dependencies file for test_particle.
# This may be replaced when dependencies are built.
