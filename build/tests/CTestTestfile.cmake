# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_xsdata[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_particle[1]_include.cmake")
include("/root/repo/build/tests/test_physics[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_multipole[1]_include.cmake")
include("/root/repo/build/tests/test_hm[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
