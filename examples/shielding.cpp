// Fixed-source shielding scenario: a monoenergetic point source at the
// center of an absorbing sphere, verified against the analytic attenuation
// e^{-Sigma_a R} — the classic transport sanity problem, and a demonstration
// of the fixed-source run mode and the ASCII geometry plotter.
//
//   $ ./shielding [n_particles]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/fixed_source.hpp"
#include "geom/plot.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc;

struct Shield {
  xs::Library lib;
  geom::Geometry geo;
};

Shield build(double radius, double sigma_a) {
  Shield s;
  const int absorber = s.lib.add_nuclide(
      xs::make_flat_nuclide("absorber", /*s=*/1e-4, sigma_a, 0.0, 0.0));
  xs::Material m;
  m.add(absorber, 1.0);
  const int mat = s.lib.add_material(std::move(m));
  s.lib.finalize();

  const int sphere = s.geo.add_surface(geom::Surface::sphere(0, 0, 0, radius));
  s.geo.surface(sphere).set_bc(geom::BoundaryCondition::vacuum);
  geom::Cell inside;
  inside.region = {{sphere, false}};
  inside.fill = mat;
  geom::Universe root;
  root.cells = {s.geo.add_cell(std::move(inside))};
  s.geo.set_root(s.geo.add_universe(std::move(root)));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const double sigma_a = 0.8;  // 1/cm

  std::printf("point source in an absorbing sphere (Sigma_a = %.2f /cm)\n\n",
              sigma_a);
  std::printf("%10s %18s %18s %12s\n", "R (cm)", "measured leakage",
              "analytic e^-SR", "error");
  for (const double radius : {0.5, 1.0, 2.0, 4.0}) {
    Shield shield = build(radius, sigma_a);
    core::FixedSourceSettings fs;
    fs.n_particles = n / 5;
    fs.n_batches = 5;
    fs.source = core::ExternalSource::point_source({0, 0, 0}, 2.0);
    fs.physics = vmc::physics::PhysicsSettings::vector_friendly();
    const auto r = core::run_fixed_source(shield.geo, shield.lib, fs);
    const double analytic = std::exp(-sigma_a * radius);
    std::printf("%10.1f %12.5f +- %.5f %18.5f %11.2f%%\n", radius,
                r.leakage_fraction, r.leakage_std, analytic,
                100.0 * (r.leakage_fraction - analytic) / analytic);
  }

  // Plot a two-region shield to show the geometry raster.
  std::printf("\nASCII slice of a pin-in-sphere shield (z = 0):\n");
  Shield shield = build(4.0, sigma_a);
  std::printf("%s", geom::ascii_slice(shield.geo, 0.0, {-5, -5, 0},
                                      {5, 5, 0}, 40, 20)
                        .c_str());
  std::printf("\n(the '#' disc is the absorber; blank is outside the "
              "geometry)\n");
  return 0;
}
