// Full-core scenario: the complete 241-assembly Hoogenboom-Martin PWR with
// vacuum boundaries — the paper's actual benchmark problem — run in both
// transport modes, with the measured work profile projected onto the
// paper's CPU and MIC.
//
//   $ ./full_core [n_particles] [small|large]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/eigenvalue.hpp"
#include "core/mesh_tally.hpp"
#include "exec/machine.hpp"
#include "hm/hm_model.hpp"

int main(int argc, char** argv) {
  using namespace vmc;

  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const bool large = argc > 2 && std::strcmp(argv[2], "large") == 0;

  hm::ModelOptions options;
  options.fuel = large ? hm::FuelSize::large : hm::FuelSize::small;
  options.full_core = true;
  options.grid_scale = large ? 0.25 : 0.5;
  std::printf("building H.M. %s full core (241 assemblies, %d fuel "
              "nuclides)...\n",
              large ? "Large" : "Small",
              hm::fuel_nuclide_count(options.fuel));
  const hm::Model model = hm::build_model(options);
  std::printf("library: %.1f MB pointwise + %.1f MB unionized grid\n\n",
              static_cast<double>(model.library.pointwise_bytes()) / 1e6,
              static_cast<double>(model.library.union_bytes()) / 1e6);

  core::Settings settings;
  settings.n_particles = n;
  settings.n_inactive = 2;
  settings.n_active = 4;
  settings.source_lo = model.source_lo;
  settings.source_hi = model.source_hi;

  // A 19x19 radial mesh aligned with the assembly lattice: the power map.
  core::MeshTally::Spec mesh_spec;
  mesh_spec.lower = model.source_lo;
  mesh_spec.upper = model.source_hi;
  mesh_spec.nx = mesh_spec.ny = 19;
  mesh_spec.nz = 1;
  core::MeshTally power_mesh(mesh_spec);

  for (const auto mode : {core::TransportMode::history,
                          core::TransportMode::event}) {
    settings.mode = mode;
    settings.mesh_tally =
        mode == core::TransportMode::history ? &power_mesh : nullptr;
    core::Simulation sim(model.geometry, model.library, settings);
    const core::RunResult r = sim.run();
    std::printf("%-8s mode: k_eff = %.5f +- %.5f, rate = %.0f n/s "
                "(inactive %.0f n/s)\n",
                mode == core::TransportMode::history ? "history" : "event",
                r.k_eff, r.k_std, r.rate_active, r.rate_inactive);

    if (mode == core::TransportMode::history) {
      // Leakage fraction: the full core leaks, unlike the mini model.
      double leaked = 0.0, absorbed = 0.0;
      for (const auto& g : r.generations) {
        leaked += g.tallies.leakage;
        absorbed += g.tallies.absorption;
      }
      std::printf("  leakage fraction: %.2f%%\n",
                  100.0 * leaked / (leaked + absorbed));

      // Project to the paper's hardware.
      const exec::WorkProfile w =
          exec::WorkProfile::from_counts(r.counts_total);
      const exec::CostModel cpu(exec::DeviceSpec::jlse_host());
      const exec::CostModel mic(exec::DeviceSpec::mic_7120a());
      std::printf("  paper-hardware projection at 1e5 particles: CPU %.0f "
                  "n/s, MIC %.0f n/s (alpha = %.2f)\n",
                  cpu.calculation_rate(w, 100000),
                  mic.calculation_rate(w, 100000),
                  cpu.calculation_rate(w, 100000) /
                      mic.calculation_rate(w, 100000));
    }
  }

  // Assembly-wise radial power distribution (fission-rate map), normalized
  // to the core mean — the "detailed power density calculation" the H.M.
  // benchmark was designed for.
  const auto fmap = power_mesh.radial_fission_map();
  double mean = 0.0;
  int fueled = 0;
  for (int iy = 0; iy < 19; ++iy) {
    for (int ix = 0; ix < 19; ++ix) {
      if (hm::is_fuel_assembly(ix, iy)) {
        mean += fmap[static_cast<std::size_t>(iy * 19 + ix)];
        ++fueled;
      }
    }
  }
  mean /= fueled;
  std::printf("\nassembly power map (x10, center rows; '..' = water):\n");
  for (int iy = 6; iy <= 12; ++iy) {
    std::printf("  ");
    for (int ix = 0; ix < 19; ++ix) {
      if (!hm::is_fuel_assembly(ix, iy)) {
        std::printf(" ..");
      } else {
        std::printf(" %2.0f",
                    10.0 * fmap[static_cast<std::size_t>(iy * 19 + ix)] / mean);
      }
    }
    std::printf("\n");
  }
  std::printf("(expect center-peaked power falling toward the core edge)\n");
  return 0;
}
