// Heterogeneous-cluster scenario: symmetric-mode execution with real
// message passing between ranks (the in-process MPI substitute) plus Eq. 3
// static load balancing across CPU and MIC ranks.
//
// Four ranks transport disjoint particle blocks of one generation of the
// mini H.M. model, allreduce their tallies — exactly OpenMC's symmetric-mode
// communication pattern — and then the Eq. 3 balancer is demonstrated on
// the Table III configurations.
//
//   $ ./heterogeneous_cluster [n_particles]
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "comm/comm.hpp"
#include "core/eigenvalue.hpp"
#include "exec/distributed.hpp"
#include "exec/symmetric.hpp"
#include "hm/hm_model.hpp"

int main(int argc, char** argv) {
  using namespace vmc;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8000;

  hm::ModelOptions options;
  options.fuel = hm::FuelSize::small;
  options.full_core = false;
  options.grid_scale = 0.2;
  const hm::Model model = hm::build_model(options);

  // --- real multi-rank generation over the comm library -------------------
  constexpr int kRanks = 4;
  std::printf("part 1: one generation across %d MPI-style ranks\n", kRanks);
  comm::World world(kRanks);
  world.run([&](comm::Comm& c) {
    core::Settings st;
    st.n_particles = n / kRanks;
    st.n_inactive = 0;
    st.n_active = 1;
    st.seed = 42 + static_cast<std::uint64_t>(c.rank());
    st.source_lo = model.source_lo;
    st.source_hi = model.source_hi;
    core::Simulation sim(model.geometry, model.library, st);
    auto source = sim.initial_source();
    std::vector<particle::FissionSite> next;
    const auto gen = sim.run_generation(source, next, 0, /*active=*/true);

    // OpenMC's per-batch pattern: allreduce the global tallies and the
    // fission-site count.
    const std::vector<double> local{
        gen.tallies.k_collision, gen.tallies.absorption, gen.tallies.leakage,
        static_cast<double>(next.size())};
    const std::vector<double> global = c.allreduce_sum(local);
    c.barrier();
    if (c.rank() == 0) {
      std::printf("  global: k_coll = %.4f, absorbed = %.0f, leaked = %.0f, "
                  "sites = %.0f\n",
                  global[0] / static_cast<double>(n), global[1], global[2],
                  global[3]);
    }
  });

  // --- Eq. 3 balancing across heterogeneous devices ------------------------
  std::printf("\npart 2: Eq. 3 static load balancing (Table III setup)\n");
  const exec::WorkProfile w = [] {
    exec::WorkProfile p;
    p.lookups_per_particle = 34.0;
    p.terms_per_lookup = 323.0;
    p.collisions_per_particle = 16.0;
    p.crossings_per_particle = 18.0;
    return p;
  }();
  const exec::StaticSplit split = exec::balance_eq3(10'000'000, 1, 1, 0.62);
  std::printf("  1e7 particles, alpha = 0.62: n_mic = %zu, n_cpu = %zu "
              "(paper: 6,172,840 / 3,827,160)\n",
              split.n_mic, split.n_cpu);

  const exec::SymmetricRunner runner(exec::NodeSetup::jlse(2),
                                     comm::ClusterModel::stampede());
  const auto unbalanced = runner.run_batch(w, 100000, 1, std::nullopt);
  const auto balanced = runner.run_batch(w, 100000, 1, 0.62);
  std::printf("  CPU + 2 MIC: %.0f n/s uniform -> %.0f n/s balanced "
              "(ideal %.0f)\n",
              unbalanced.rate, balanced.rate, balanced.ideal_rate);

  std::printf("\npart 3: runtime alpha estimation (Section V)\n");
  for (const auto& batch : runner.run_adaptive(w, 100000, 1, 3)) {
    std::printf("  rate %.0f n/s (%.1f%% of ideal)\n", batch.rate,
                100.0 * batch.rate / batch.ideal_rate);
  }

  // --- full distributed eigenvalue iteration with Eq. 3 quotas ------------
  std::printf("\npart 4: distributed eigenvalue run, Eq. 3 quotas "
              "(1 'MIC' + 1 'CPU' rank)\n");
  exec::DistributedSettings ds;
  ds.n_total = n;
  ds.n_inactive = 2;
  ds.n_active = 4;
  ds.source_lo = model.source_lo;
  ds.source_hi = model.source_hi;
  comm::World world2(2);
  const auto quotas = exec::per_rank_counts(n, 1, 1, 0.62);
  const auto dr = exec::run_distributed(world2, model.geometry, model.library,
                                        ds, quotas);
  std::printf("  quotas: %zu / %zu particles, k_eff = %.5f +- %.5f\n",
              dr.quotas[0], dr.quotas[1], dr.k_eff, dr.k_std);
  std::printf("  (the split changes wall time only: histories and banks are\n"
              "   identical to a serial run — see tests/exec/test_distributed)\n");
  return 0;
}
