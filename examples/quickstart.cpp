// Quickstart: build a reactor model, run a k-eigenvalue simulation, print
// the results. ~30 lines of API use.
//
//   $ ./quickstart [n_particles]
#include <cstdio>
#include <cstdlib>

#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"

int main(int argc, char** argv) {
  using namespace vmc;

  // 1. Build a model: one Hoogenboom-Martin fuel assembly with reflective
  //    boundaries (an infinite lattice) and the 34-nuclide fuel.
  hm::ModelOptions options;
  options.fuel = hm::FuelSize::small;
  options.full_core = false;   // single assembly, fast
  options.grid_scale = 0.25;   // reduced synthetic grids for a quick start
  const hm::Model model = hm::build_model(options);
  std::printf("model: %d nuclides, %zu-point unionized grid\n",
              model.library.n_nuclides(), model.library.union_grid().size());

  // 2. Configure the simulation.
  core::Settings settings;
  settings.n_particles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  settings.n_inactive = 3;   // source-convergence batches (no tallies)
  settings.n_active = 7;     // tally batches
  settings.seed = 42;
  settings.source_lo = model.source_lo;
  settings.source_hi = model.source_hi;

  // 3. Run and report.
  core::Simulation simulation(model.geometry, model.library, settings);
  const core::RunResult result = simulation.run();

  std::printf("\n%-12s %10s %10s %10s %8s\n", "generation", "k_coll",
              "k_track", "entropy", "sites");
  for (std::size_t g = 0; g < result.generations.size(); ++g) {
    const auto& gen = result.generations[g];
    std::printf("%8zu %-3s %10.4f %10.4f %10.3f %8zu\n", g,
                gen.active ? "(a)" : "(i)", gen.k_collision, gen.k_tracklength,
                gen.entropy, gen.n_sites);
  }
  std::printf("\nk_eff = %.5f +- %.5f\n", result.k_eff, result.k_std);
  std::printf("calculation rate: %.0f neutrons/second (active batches)\n",
              result.rate_active);
  return 0;
}
