// Temperature-feedback scenario (the Section IV-B motivation): the same
// windowed-multipole pole set reconstructs cross sections at two fuel
// temperatures; a pin-cell eigenvalue run at each shows the Doppler effect
// on resonance absorption — with one compact pole set instead of one
// pointwise library per temperature.
//
//   $ ./doppler_feedback [n_particles]
#include <cstdio>
#include <cstdlib>

#include "core/eigenvalue.hpp"
#include "multipole/doppler.hpp"
#include "xsdata/lookup.hpp"
#include "xsdata/synth.hpp"

namespace {

using namespace vmc;

/// Infinite (reflective-box) medium: multipole-broadened resonant absorber
/// + hydrogen-like moderator + a flat fissile driver.
struct TempCase {
  xs::Library lib;
  geom::Geometry geo;
  int mat = -1;
};

TempCase build_case(const multipole::WindowedMultipole& wmp, double kelvin) {
  TempCase c;
  multipole::BroadenOptions opt;
  opt.kt_mev = multipole::kt_from_kelvin(kelvin);
  opt.awr = 238.0;
  opt.grid_points = 3000;
  const int absorber = c.lib.add_nuclide(
      multipole::broadened_nuclide(wmp, "mp-absorber", opt));
  auto h = xs::SynthParams::light_like(1.0);
  h.with_thermal = false;
  h.grid_points = 400;
  const int moderator =
      c.lib.add_nuclide(xs::make_synthetic_nuclide("H1", 1, h));
  const int driver = c.lib.add_nuclide(
      xs::make_flat_nuclide("driver", 4.0, 2.0, 1.6, 2.43));
  xs::Material m;
  m.add(absorber, 0.005);
  m.add(moderator, 0.06);
  m.add(driver, 0.004);
  c.mat = c.lib.add_material(std::move(m));
  c.lib.finalize();

  const int sx0 = c.geo.add_surface(geom::Surface::x_plane(-20));
  const int sx1 = c.geo.add_surface(geom::Surface::x_plane(20));
  const int sy0 = c.geo.add_surface(geom::Surface::y_plane(-20));
  const int sy1 = c.geo.add_surface(geom::Surface::y_plane(20));
  const int sz0 = c.geo.add_surface(geom::Surface::z_plane(-20));
  const int sz1 = c.geo.add_surface(geom::Surface::z_plane(20));
  for (int s : {sx0, sx1, sy0, sy1, sz0, sz1}) {
    c.geo.surface(s).set_bc(geom::BoundaryCondition::reflective);
  }
  geom::Cell cell;
  cell.region = {{sx0, true}, {sx1, false}, {sy0, true},
                 {sy1, false}, {sz0, true}, {sz1, false}};
  cell.fill = c.mat;
  geom::Universe root;
  root.cells = {c.geo.add_cell(std::move(cell))};
  c.geo.set_root(c.geo.add_universe(std::move(root)));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  multipole::WindowedMultipole::Params params;
  params.n_windows = 150;
  params.poles_per_window_mean = 10;
  const auto wmp = multipole::WindowedMultipole::make_synthetic(42, params);
  std::printf("pole set: %zu poles, %.1f KB — reconstructs sigma(E, T) at\n"
              "ANY temperature (vs. one pointwise library per temperature)\n\n",
              wmp.n_poles(), static_cast<double>(wmp.data_bytes()) / 1e3);

  for (const double kelvin : {293.6, 1200.0}) {
    TempCase c = build_case(wmp, kelvin);
    // Peak resonance cross section at this temperature.
    double peak = 0.0;
    for (double e = wmp.e_min(); e < wmp.e_max() * 0.99; e *= 1.002) {
      peak = std::max(peak,
                      xs::macro_xs_history(c.lib, c.mat, e).total);
    }
    core::Settings st;
    st.n_particles = n;
    st.n_inactive = 3;
    st.n_active = 8;
    st.source_lo = {-20, -20, -20};
    st.source_hi = {20, 20, 20};
    core::Simulation sim(c.geo, c.lib, st);
    const auto r = sim.run();
    std::printf("T = %7.1f K: peak Sigma_t = %7.3f /cm, k_inf = %.5f "
                "+- %.5f\n",
                kelvin, peak, r.k_eff, r.k_std);
  }
  std::printf(
      "\nDoppler broadening flattens the resonance peaks (lower peak\n"
      "Sigma_t at 1200 K) while conserving the resonance integral — the\n"
      "physics the multipole method delivers without extra memory.\n");
  return 0;
}
