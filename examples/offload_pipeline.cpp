// Offload scenario: the event-based banking pipeline of Section III-A —
// bank particles into a SoA bank, sweep the banked cross-section kernel,
// and account for the (simulated) PCIe offload, with double-buffered
// transfer/compute overlap.
//
// Observability: set VMC_OBS_DIR=<dir> to enable tracing and drop four
// artifacts there — trace.json (Chrome trace_event, loads in Perfetto with
// measured host tracks next to cost-model device tracks), metrics.prom
// (Prometheus text exposition), manifest.json (run manifest, schema
// vectormc.manifest.v1), and driver_k.json (the driver's own k history, for
// independent cross-validation by tools/vmc_obs_check). Set VMC_OBS_FAULTS=1
// to additionally arm a small deterministic fault plan so the retry and
// degraded-stage series are exercised. Set VMC_DEVICES=1|2|4 to size the
// modeled device pool (default 1; the nightly chaos matrix runs all three) —
// the manifest then carries one device_health record per device. Set
// VMC_STREAMS=1|2|4 to pick the per-device stream depth S (default 2): each
// device keeps up to 2*S chunks in flight, and the report below prints the
// depth it ran with plus the in-flight high-water mark per device.
//
//   $ ./offload_pipeline [n_particles]
//   $ VMC_OBS_DIR=/tmp/obs VMC_DEVICES=2 VMC_STREAMS=4 ./offload_pipeline 20000
//     (add VMC_OBS_FAULTS=1 to also arm the deterministic fault plan)
#include <cstdio>
#include <cstdlib>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/eigenvalue.hpp"
#include "exec/offload.hpp"
#include "hm/hm_model.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/fault.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"

int main(int argc, char** argv) {
  using namespace vmc;

  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  const char* obs_dir = std::getenv("VMC_OBS_DIR");
  const char* obs_faults = std::getenv("VMC_OBS_FAULTS");
  const bool inject = obs_faults != nullptr && obs_faults[0] == '1';
  if (obs_dir != nullptr) {
    std::filesystem::create_directories(obs_dir);
    obs::tracer().set_enabled(true);
  }

  hm::ModelOptions options;
  options.fuel = hm::FuelSize::small;
  options.grid_scale = 0.5;
  const hm::Model model = hm::build_model(options);
  const xs::Library& lib = model.library;
  const int fuel = model.fuel_material;

  // VMC_DEVICES sizes the modeled pool: alternating MIC generations so the
  // generalized-alpha split is visibly heterogeneous.
  const char* devices_env = std::getenv("VMC_DEVICES");
  std::size_t n_devices =
      devices_env != nullptr ? std::strtoull(devices_env, nullptr, 10) : 1;
  if (n_devices < 1) n_devices = 1;
  std::vector<exec::CostModel> devices;
  for (std::size_t d = 0; d < n_devices; ++d) {
    devices.emplace_back(d % 2 == 0 ? exec::DeviceSpec::mic_7120a()
                                    : exec::DeviceSpec::mic_se10p());
  }
  exec::OffloadRuntime runtime(
      lib, exec::CostModel(exec::DeviceSpec::jlse_host()), devices);

  // VMC_STREAMS picks the per-device stream depth (default 2 so the plain
  // run already overlaps two chunks per device).
  const char* streams_env = std::getenv("VMC_STREAMS");
  std::size_t n_streams =
      streams_env != nullptr ? std::strtoull(streams_env, nullptr, 10) : 2;
  if (n_streams < 1) n_streams = 1;
  runtime.set_stream_depth(static_cast<int>(n_streams));

  std::printf("offload pipeline, %zu particles, %zu-nuclide material, "
              "%zu modeled device(s), stream depth %d\n\n",
              n, lib.material(fuel).size(), runtime.device_count(),
              runtime.stream_depth());
  const auto rep = runtime.run_iteration(fuel, n, /*seed=*/1);

  std::printf("this host, measured:\n");
  std::printf("  bank %zu particles        : %8.2f ms (%zu B/particle)\n", n,
              rep.wall_bank_s * 1e3, exec::offload_record_bytes());
  std::printf("  banked SIMD sweep (4-ch)  : %8.2f ms\n",
              rep.wall_banked_lookup_s * 1e3);
  std::printf("  banked SIMD sweep (total) : %8.2f ms\n",
              rep.wall_banked_total_s * 1e3);
  std::printf("  scalar history sweep      : %8.2f ms\n\n",
              rep.wall_scalar_lookup_s * 1e3);

  std::printf("Xeon Phi offload projection (calibrated models):\n");
  std::printf("  bank on host              : %8.2f ms\n",
              rep.model_bank_host_s * 1e3);
  std::printf("  PCIe transfer (%6.1f MB) : %8.2f ms\n", static_cast<double>(rep.bank_bytes) / 1e6,
              rep.model_transfer_s * 1e3);
  std::printf("  compute on MIC            : %8.2f ms\n",
              rep.model_compute_device_s * 1e3);
  std::printf("  compute on host (scalar)  : %8.2f ms\n\n",
              rep.model_compute_host_s * 1e3);

  std::printf("double-buffered pipeline (4 banks of %zu):\n", n / 4);
  // Really execute the overlap: each device's "DMA" lane stages the next
  // bank while its driver sweeps the current one. Kept for the manifest's
  // per-device health records below.
  exec::OffloadRuntime::PipelineRun pipe;
  {
    vmc::rng::Stream rs(2);
    vmc::simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    }
    if (inject) {
      // Deterministic chaos on device 0's fault domains: chunk 1's first
      // transfer attempt fails (retried to success), chunk 3's compute
      // stream fails persistently (reschedule, then the host floor).
      // Exercises the retry, reschedule, and degraded-stage series. Chunk g
      // rides device 0's stream g % S, so the lane half of the key follows
      // the configured depth (at S=1 these are the legacy lanes 0 and 1).
      resil::FaultPlan plan;
      plan.fail_at("offload.transfer", {0},
                   resil::device_key(0, resil::transfer_lane(1 % n_streams), 1));
      plan.always("offload.compute",
                  resil::device_key(0, resil::compute_lane(3 % n_streams), 3));
      resil::PlanGuard guard(plan);
      pipe = runtime.run_pipelined(fuel, es, 4);
      std::printf("  real pipelined sweep      : %8.2f ms over %d stages "
                  "(checksum %.3e, %d retries, %d rescheduled, %d degraded)\n",
                  pipe.wall_s * 1e3, pipe.n_stages, pipe.checksum,
                  pipe.retries, pipe.rescheduled_stages, pipe.degraded_stages);
    } else {
      pipe = runtime.run_pipelined(fuel, es, 4);
      std::printf("  real pipelined sweep      : %8.2f ms over %d stages "
                  "(checksum %.3e)\n",
                  pipe.wall_s * 1e3, pipe.n_stages, pipe.checksum);
    }
    std::printf("  stream depth %d, in-flight high water %d chunk(s) "
                "(window bound 2 x S = %d)\n",
                pipe.stream_depth, pipe.inflight_high_water,
                2 * pipe.stream_depth);
    for (std::size_t d = 0; d < pipe.devices.size(); ++d) {
      const auto& dr = pipe.devices[d];
      std::printf("  device %zu (%s): %s, %d ok / %d failed / %d skipped, "
                  "%d retries, %d trips, %d steals in, "
                  "%d streams, high water %d\n",
                  d, dr.name.c_str(),
                  std::string(exec::to_string(dr.final_state)).c_str(),
                  dr.chunks_ok, dr.chunks_failed, dr.chunks_skipped,
                  dr.retries, dr.trips, dr.steals_in, dr.streams,
                  dr.inflight_high_water);
    }
  }
  const double terms = static_cast<double>(lib.material(fuel).size());
  const double pipelined = runtime.pipelined_seconds(n, terms, 4);
  const double serial =
      4 * (runtime.device().transfer_seconds(
               n / 4 * exec::offload_record_bytes(), false) +
           runtime.device().banked_lookup_seconds(n / 4, terms));
  std::printf("  without overlap: %.2f ms, with overlap: %.2f ms\n",
              serial * 1e3, pipelined * 1e3);
  std::printf(
      "  (overlap hides min(transfer, compute) per stage; with our lean\n"
      "   bank records the link is the bottleneck, so the savings equal the\n"
      "   device compute time)\n");

  // A short eigenvalue run on the same model: gives the trace real transport
  // spans (generation / xs_lookup_banked / ...) and the manifest a k history.
  core::Settings settings;
  settings.n_particles = 300;
  settings.n_inactive = 1;
  settings.n_active = 2;
  settings.seed = 42;
  settings.n_threads = 2;
  settings.mode = core::TransportMode::event;
  settings.source_lo = model.source_lo;
  settings.source_hi = model.source_hi;
  core::Simulation simulation(model.geometry, model.library, settings);
  const core::RunResult result = simulation.run();
  std::printf("\neigenvalue check (%zu particles, %d generations): "
              "k_eff = %.5f +- %.5f\n",
              settings.n_particles, settings.n_inactive + settings.n_active,
              result.k_eff, result.k_std);

  std::printf(
      "\nverdict (Fig. 3): offloading pays off once the bank exceeds ~1e4\n"
      "particles; the one-time energy-grid staging amortizes over batches.\n");

  if (obs_dir != nullptr) {
    const std::string dir(obs_dir);
    obs::tracer().write(dir + "/trace.json");

    std::ofstream prom(dir + "/metrics.prom", std::ios::binary);
    prom << obs::metrics().snapshot().prometheus();
    prom.close();

    obs::RunManifest manifest;
    manifest.set_run_kind("offload_pipeline")
        .set_seed(settings.seed)
        .set_k_history(result.k_collision_history)
        .set_extra("n_offload_particles", static_cast<double>(n))
        .set_extra("n_eigenvalue_particles",
                   static_cast<double>(settings.n_particles))
        .set_extra("device", runtime.device().spec().name)
        .set_extra("n_devices", static_cast<double>(runtime.device_count()))
        .set_extra("n_streams", static_cast<double>(runtime.stream_depth()))
        .set_extra("inflight_high_water",
                   static_cast<double>(pipe.inflight_high_water))
        .set_extra("grid_hash_bytes",
                   static_cast<double>(model.library.hash_bytes()))
        .set_extra("faults_injected", inject ? "yes" : "no")
        .capture_fault_summary()
        .capture_metrics();
    for (const auto& dr : pipe.devices) {
      obs::RunManifest::DeviceHealth dh;
      dh.device = dr.name;
      dh.state = std::string(exec::to_string(dr.final_state));
      dh.chunks_ok = static_cast<std::uint64_t>(dr.chunks_ok);
      dh.chunks_failed = static_cast<std::uint64_t>(dr.chunks_failed);
      dh.chunks_skipped = static_cast<std::uint64_t>(dr.chunks_skipped);
      dh.retries = static_cast<std::uint64_t>(dr.retries);
      dh.trips = static_cast<std::uint64_t>(dr.trips);
      dh.probes = static_cast<std::uint64_t>(dr.probes);
      dh.steals_in = static_cast<std::uint64_t>(dr.steals_in);
      dh.streams = static_cast<std::uint64_t>(dr.streams);
      dh.inflight_high_water =
          static_cast<std::uint64_t>(dr.inflight_high_water);
      manifest.add_device_health(dh);
    }
    manifest.write(dir + "/manifest.json");

    // The driver's own record of the k history, written independently of the
    // manifest so a checker can cross-validate the two documents.
    obs::JsonWriter w;
    w.begin_object();
    w.member("schema", "vectormc.driver_k.v1");
    w.key("k_history").begin_array();
    for (double k : result.k_collision_history) w.value(k);
    w.end_array();
    w.end_object();
    std::ofstream dk(dir + "/driver_k.json", std::ios::binary);
    dk << w.str();
    dk.close();

    std::printf("\nobservability artifacts written to %s\n", obs_dir);
  }
  return 0;
}
