// Offload scenario: the event-based banking pipeline of Section III-A —
// bank particles into a SoA bank, sweep the banked cross-section kernel,
// and account for the (simulated) PCIe offload, with double-buffered
// transfer/compute overlap.
//
//   $ ./offload_pipeline [n_particles]
#include <cstdio>
#include <cstdlib>

#include <cmath>

#include "exec/offload.hpp"
#include "rng/stream.hpp"
#include "xsdata/lookup.hpp"
#include "hm/hm_model.hpp"

int main(int argc, char** argv) {
  using namespace vmc;

  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  hm::ModelOptions options;
  options.fuel = hm::FuelSize::small;
  options.grid_scale = 0.5;
  int fuel = -1;
  const xs::Library lib = hm::build_library(options, &fuel);

  const exec::OffloadRuntime runtime(
      lib, exec::CostModel(exec::DeviceSpec::jlse_host()),
      exec::CostModel(exec::DeviceSpec::mic_7120a()));

  std::printf("offload pipeline, %zu particles, %zu-nuclide material\n\n", n,
              lib.material(fuel).size());
  const auto rep = runtime.run_iteration(fuel, n, /*seed=*/1);

  std::printf("this host, measured:\n");
  std::printf("  bank %zu particles        : %8.2f ms (%zu B/particle)\n", n,
              rep.wall_bank_s * 1e3, exec::offload_record_bytes());
  std::printf("  banked SIMD sweep (4-ch)  : %8.2f ms\n",
              rep.wall_banked_lookup_s * 1e3);
  std::printf("  banked SIMD sweep (total) : %8.2f ms\n",
              rep.wall_banked_total_s * 1e3);
  std::printf("  scalar history sweep      : %8.2f ms\n\n",
              rep.wall_scalar_lookup_s * 1e3);

  std::printf("Xeon Phi offload projection (calibrated models):\n");
  std::printf("  bank on host              : %8.2f ms\n",
              rep.model_bank_host_s * 1e3);
  std::printf("  PCIe transfer (%6.1f MB) : %8.2f ms\n", static_cast<double>(rep.bank_bytes) / 1e6,
              rep.model_transfer_s * 1e3);
  std::printf("  compute on MIC            : %8.2f ms\n",
              rep.model_compute_device_s * 1e3);
  std::printf("  compute on host (scalar)  : %8.2f ms\n\n",
              rep.model_compute_host_s * 1e3);

  std::printf("double-buffered pipeline (4 banks of %zu):\n", n / 4);
  // Really execute the overlap: a "DMA" pool thread stages the next bank
  // while the "device" thread sweeps the current one.
  {
    vmc::rng::Stream rs(2);
    vmc::simd::aligned_vector<double> es(n);
    for (auto& e : es) {
      e = xs::kEnergyMin * std::pow(xs::kEnergyMax / xs::kEnergyMin, rs.next());
    }
    const auto run = runtime.run_pipelined(fuel, es, 4);
    std::printf("  real 2-thread pipeline    : %8.2f ms over %d stages "
                "(checksum %.3e)\n",
                run.wall_s * 1e3, run.n_stages, run.checksum);
  }
  const double terms = static_cast<double>(lib.material(fuel).size());
  const double pipelined = runtime.pipelined_seconds(n, terms, 4);
  const double serial =
      4 * (runtime.device().transfer_seconds(
               n / 4 * exec::offload_record_bytes(), false) +
           runtime.device().banked_lookup_seconds(n / 4, terms));
  std::printf("  without overlap: %.2f ms, with overlap: %.2f ms\n",
              serial * 1e3, pipelined * 1e3);
  std::printf(
      "  (overlap hides min(transfer, compute) per stage; with our lean\n"
      "   bank records the link is the bottleneck, so the savings equal the\n"
      "   device compute time)\n");
  std::printf(
      "\nverdict (Fig. 3): offloading pays off once the bank exceeds ~1e4\n"
      "particles; the one-time energy-grid staging amortizes over batches.\n");
  return 0;
}
