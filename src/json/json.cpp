#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmc::json {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (done_) throw std::logic_error("JsonWriter: value after document end");
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("JsonWriter: second top-level value");
    return;
  }
  if (stack_.back() == '{') {
    if (!pending_key_) throw std::logic_error("JsonWriter: object value without key");
    pending_key_ = false;
  } else {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{')
    throw std::logic_error("JsonWriter: end_object outside object");
  if (pending_key_) throw std::logic_error("JsonWriter: end_object with pending key");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[')
    throw std::logic_error("JsonWriter: end_array outside array");
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != '{')
    throw std::logic_error("JsonWriter: key outside object");
  if (pending_key_) throw std::logic_error("JsonWriter: two keys in a row");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    // %.17g round-trips every double; trim to a clean integer form when exact.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  pre_value();
  out_.append(json.data(), json.size());
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty())
    throw std::logic_error("JsonWriter: document has unclosed containers");
  if (out_.empty()) throw std::logic_error("JsonWriter: empty document");
  return out_;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  for (const auto& [name, v] : object)
    if (name == k) return &v;
  return nullptr;
}

namespace {

// Recursive-descent parser. Strict: rejects trailing garbage, caps depth.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw std::runtime_error("json parse error: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type = JsonValue::Type::string;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::boolean;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::boolean;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = JsonValue::Type::null;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // Surrogate pairs: decode to UTF-8 only for the BMP; pairs are
          // combined, lone surrogates rejected.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("lone high surrogate");
            pos_ += 2;
            unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9')
        code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        fail("bad hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("bad number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad fraction");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool json_valid(std::string_view text, std::string* error) {
  try {
    (void)json_parse(text);
    return true;
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return false;
  }
}

}  // namespace vmc::json
