// Minimal JSON layer shared across the codebase.
//
// Everything vectormc emits or consumes as JSON — metric snapshots, Chrome
// trace_event files, run manifests, the benchmark harnesses' BENCH_*.json
// reports, and the serving layer's vectormc.job.v1 specs — goes through ONE
// streaming writer and ONE strict parser, so escaping, number formatting, and
// error semantics cannot drift between subsystems. Historically this lived in
// src/obs; it moved here when src/serve needed the parser without dragging in
// the metrics registry. obs/json.hpp forwards to this header for existing
// includes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vmc::json {

/// JSON-escape `s` (quotes, backslashes, control characters; non-ASCII bytes
/// pass through untouched — documents are byte-oriented, not validated UTF-8).
std::string json_escape(std::string_view s);

/// Streaming JSON writer with structural bookkeeping: commas and key/value
/// alternation are handled here, misuse (value with a pending key in an
/// array, end_object inside an array, ...) throws std::logic_error so a bad
/// exporter fails loudly in tests instead of emitting garbage.
///
/// Non-finite doubles serialize as null (JSON has no Inf/NaN); exporters
/// that need those values must encode them as strings themselves (the
/// Prometheus text exposition does).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Splice a pre-serialized JSON value verbatim. The caller must guarantee
  /// `json` is a complete valid value (use json_valid); this is the single
  /// escape hatch from the structural bookkeeping, for embedding documents
  /// produced by another JsonWriter.
  JsonWriter& raw_value(std::string_view json);

  /// key(k) + value(v) in one call.
  template <class T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document. Throws std::logic_error if containers are still
  /// open — a truncated document must never escape silently.
  const std::string& str() const;

 private:
  void pre_value();

  std::string out_;
  std::vector<char> stack_;   // '{' or '['
  std::vector<bool> first_;   // first element at each level
  bool pending_key_ = false;
  bool done_ = false;
};

/// Parsed JSON document (order-preserving object members).
struct JsonValue {
  enum class Type : unsigned char { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::null; }
  bool is_number() const { return type == Type::number; }
  bool is_string() const { return type == Type::string; }
  bool is_array() const { return type == Type::array; }
  bool is_object() const { return type == Type::object; }

  /// First member named `k`, or nullptr (objects only).
  const JsonValue* find(std::string_view k) const;
};

/// Strict recursive-descent parse of a complete document: one top-level
/// value, no trailing bytes, nesting capped at 256 levels. Throws
/// std::runtime_error with byte offset on malformed input.
JsonValue json_parse(std::string_view text);

/// Validation wrapper: true if `text` parses; on failure stores the parse
/// error in *error when non-null.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace vmc::json
