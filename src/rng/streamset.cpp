#include "rng/streamset.hpp"

#include <array>

#include "simd/simd.hpp"

namespace vmc::rng {

namespace {

// Lane-parallel LCG advance: lane i holds state of position base+i in the
// stream; each vector step advances every lane by `Lanes` positions using the
// composite jump (G, C) = lcg_jump(Lanes).
template <int Lanes, class Out>
std::uint64_t fill_leapfrog(std::uint64_t state, std::span<Out> out) {
  static const LcgJump jump = lcg_jump(Lanes);

  // Seed the lanes: lane i = state advanced by (i+1) single steps, so lane i
  // produces draws 1+i, 1+i+Lanes, ... exactly like sequential next() calls.
  std::array<std::uint64_t, Lanes> lane{};
  std::uint64_t s = state;
  for (int i = 0; i < Lanes; ++i) {
    s = lcg_next(s);
    lane[static_cast<size_t>(i)] = s;
  }

  const std::size_t n = out.size();
  const std::size_t nvec = n / Lanes * Lanes;
  std::size_t j = 0;
  for (; j < nvec; j += Lanes) {
    for (int i = 0; i < Lanes; ++i) {  // auto-vectorizable: pure lane math
      const std::uint64_t x = lane[static_cast<size_t>(i)];
      if constexpr (sizeof(Out) == 4) {
        out[j + static_cast<size_t>(i)] = lcg_to_float(x);
      } else {
        out[j + static_cast<size_t>(i)] = lcg_to_double(x);
      }
      lane[static_cast<size_t>(i)] = jump(x);
    }
  }
  // Scalar tail, continuing the exact sequence.
  std::uint64_t tail = lcg_skip_ahead(state, j);
  for (; j < n; ++j) {
    tail = lcg_next(tail);
    if constexpr (sizeof(Out) == 4) {
      out[j] = lcg_to_float(tail);
    } else {
      out[j] = lcg_to_double(tail);
    }
  }
  return lcg_skip_ahead(state, n);
}

}  // namespace

StreamSet::StreamSet(int nstreams, std::uint64_t master) {
  states_.reserve(static_cast<size_t>(nstreams));
  for (int k = 0; k < nstreams; ++k) {
    states_.push_back(
        lcg_skip_ahead(master, static_cast<std::uint64_t>(k) * kStreamStride));
  }
}

void StreamSet::fill_uniform(int k, std::span<float> out) {
  auto& st = states_[static_cast<size_t>(k)];
  st = fill_leapfrog<simd::width_v<float>>(st, out);
}

void StreamSet::fill_uniform(int k, std::span<double> out) {
  auto& st = states_[static_cast<size_t>(k)];
  st = fill_leapfrog<simd::width_v<double>>(st, out);
}

void StreamSet::fill_uniform_scalar(int k, std::span<float> out) {
  auto& st = states_[static_cast<size_t>(k)];
  Stream s(st);
  for (auto& x : out) x = s.next_float();
  st = s.state();
}

}  // namespace vmc::rng
