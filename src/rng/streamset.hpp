// Multi-stream batched random number generation — the VSL substitute.
//
// The paper's Optimized-1/-2 kernels (Algorithm 4) replace one library call
// per random number with MKL/VSL block fills: `nstreams` independent streams
// each fill a slice of the output array using vectorized generation
// ("skip-ahead"/"leap-frog" streams, VSL_BRNG_MT2203 set). `StreamSet`
// reproduces that API shape on top of our 63-bit LCG: stream k is the master
// sequence skipped ahead by k * kStreamStride, and each fill is computed with
// SIMD lanes that leap-frog through the stream, so the output of
// `fill_uniform` is bit-identical to drawing the same stream scalar-wise
// (tested in tests/rng/test_streamset.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/lcg.hpp"
#include "rng/stream.hpp"

namespace vmc::rng {

/// Separation between StreamSet streams in the master sequence. Large enough
/// that no realistic fill ever overlaps the next stream.
inline constexpr std::uint64_t kStreamStride = 1ULL << 40;

class StreamSet {
 public:
  /// Create `nstreams` independent streams derived from `master`.
  explicit StreamSet(int nstreams, std::uint64_t master = 1);

  int size() const { return static_cast<int>(states_.size()); }

  /// Fill `out` with uniform floats in [0, 1) from stream `k`, advancing it.
  /// Vectorized with lane leap-frogging; equivalent to out[i] =
  /// stream_k.next_float() for i = 0..n-1.
  void fill_uniform(int k, std::span<float> out);

  /// Double-precision variant.
  void fill_uniform(int k, std::span<double> out);

  /// Scalar reference implementation (used by tests and the Naive kernel).
  void fill_uniform_scalar(int k, std::span<float> out);

  /// Raw state of stream `k` (for checkpoint/verification).
  std::uint64_t state(int k) const { return states_[static_cast<size_t>(k)]; }

 private:
  std::vector<std::uint64_t> states_;
};

/// POSIX `rand_r` reference clone (the C-standard sample LCG). This is the
/// deliberately weak, call-per-number generator of the paper's *Naive*
/// distance-sampling kernel (Algorithm 3); it exists so the Table I contrast
/// between per-call scalar RNG and block-vectorized RNG is reproduced
/// faithfully.
inline int posix_rand_r(unsigned* seedp) {
  *seedp = *seedp * 1103515245u + 12345u;
  return static_cast<int>((*seedp / 65536u) % 32768u);
}
inline constexpr int kPosixRandMax = 32767;

}  // namespace vmc::rng
