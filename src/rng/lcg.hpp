// 63-bit linear congruential generator with O(log n) skip-ahead.
//
// This is the generator OpenMC itself uses (L'Ecuyer's 63-bit LCG,
// g = 2806196910506780709, c = 1, M = 2^63). The skip-ahead is what makes
// Monte Carlo transport reproducible regardless of the parallel
// decomposition: particle i always consumes the same random sequence whether
// it is tracked by one thread among 244 on a MIC or serially on the host —
// the property every cross-implementation test in this repo leans on.
#pragma once

#include <cstdint>

namespace vmc::rng {

/// LCG parameters (OpenMC defaults).
inline constexpr std::uint64_t kLcgMult = 2806196910506780709ULL;
inline constexpr std::uint64_t kLcgAdd = 1ULL;
inline constexpr int kLcgBits = 63;
inline constexpr std::uint64_t kLcgMask = (1ULL << kLcgBits) - 1;
/// Random numbers reserved per particle history (OpenMC's stride).
inline constexpr std::uint64_t kParticleStride = 152917ULL;

/// Advance a seed by one step: x <- (g*x + c) mod 2^63.
constexpr std::uint64_t lcg_next(std::uint64_t x) {
  return (kLcgMult * x + kLcgAdd) & kLcgMask;
}

/// Composite multiplier/increment for advancing `n` steps at once:
/// x_{k+n} = G*x_k + C with G = g^n, C = c*(g^n-1)/(g-1), all mod 2^63.
struct LcgJump {
  std::uint64_t mult;
  std::uint64_t add;

  /// Apply the jump to a seed.
  constexpr std::uint64_t operator()(std::uint64_t x) const {
    return (mult * x + add) & kLcgMask;
  }

  /// Compose two jumps: first `a` steps then `b` steps.
  friend constexpr LcgJump operator*(LcgJump b, LcgJump a) {
    return {(b.mult * a.mult) & kLcgMask, (b.mult * a.add + b.add) & kLcgMask};
  }
};

/// Compute the n-step jump in O(log n) (binary "exponentiation" on the
/// affine map). This is the standard parallel-LCG algorithm [Brown 1994].
constexpr LcgJump lcg_jump(std::uint64_t n) {
  LcgJump result{1, 0};                 // identity
  LcgJump step{kLcgMult, kLcgAdd};      // one LCG step
  while (n != 0) {
    if (n & 1ULL) result = step * result;
    step = step * step;
    n >>= 1;
  }
  return result;
}

/// Advance `seed` by `n` steps in O(log n).
constexpr std::uint64_t lcg_skip_ahead(std::uint64_t seed, std::uint64_t n) {
  return lcg_jump(n)(seed);
}

/// Map a 63-bit state to a double in [0, 1).
constexpr double lcg_to_double(std::uint64_t x) {
  return static_cast<double>(x) * (1.0 / 9223372036854775808.0);  // 2^-63
}

/// Map a 63-bit state to a float in [0, 1).
constexpr float lcg_to_float(std::uint64_t x) {
  // Use the top 24 bits so the value is exactly representable and < 1.
  return static_cast<float>(x >> (kLcgBits - 24)) * (1.0f / 16777216.0f);
}

}  // namespace vmc::rng
