// Per-particle random number stream and the sampling helpers built on it.
#pragma once

#include <cmath>
#include <cstdint>

#include "rng/lcg.hpp"

namespace vmc::rng {

/// A single random-number stream. Each particle history owns one, seeded
/// deterministically from (master seed, particle id) so results are
/// independent of thread count, rank count, and execution model — the
/// reproducibility contract OpenMC provides and our history-vs-event
/// equivalence tests require.
class Stream {
 public:
  Stream() = default;
  explicit Stream(std::uint64_t seed) : state_(seed & kLcgMask) {}

  /// Stream for particle `id` of generation `gen` under `master` seed.
  static Stream for_particle(std::uint64_t master, std::uint64_t id) {
    return Stream(lcg_skip_ahead(master, id * kParticleStride));
  }

  /// Next uniform double in [0, 1).
  double next() {
    state_ = lcg_next(state_);
    return lcg_to_double(state_);
  }

  /// Next uniform float in [0, 1).
  float next_float() {
    state_ = lcg_next(state_);
    return lcg_to_float(state_);
  }

  /// Advance without producing a value.
  void skip(std::uint64_t n) { state_ = lcg_skip_ahead(state_, n); }

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_ = 1;
};

// ---------------------------------------------------------------------------
// Sampling helpers (Section II-A2 of the paper).
// ---------------------------------------------------------------------------

/// Distance to the next collision, Eq. (1): d = -ln(xi) / Sigma_t.
inline double sample_distance(Stream& s, double sigma_t) {
  return -std::log(s.next()) / sigma_t;
}

/// Cosine of an isotropic scattering angle: mu = 2 xi - 1.
inline double sample_mu(Stream& s) { return 2.0 * s.next() - 1.0; }

/// Azimuthal angle in [0, 2 pi).
inline double sample_phi(Stream& s) {
  return 2.0 * 3.14159265358979323846 * s.next();
}

/// Watt fission spectrum (standard a/b parameterization, sampled with the
/// Everett-Cashwell rejection-free algorithm). Default a, b are the U-235
/// thermal-fission constants; energies are in MeV.
inline double sample_watt(Stream& s, double a = 0.988, double b = 2.249) {
  // Watt = Maxwellian(a) boosted by a fission-fragment frame shift
  // E_f = a^2 b / 4: E = E_M + E_f + 2 mu sqrt(E_M E_f), mu uniform.
  double w;
  {
    const double r1 = s.next();
    const double r2 = s.next();
    const double r3 = s.next();
    const double c = std::cos(0.5 * 3.14159265358979323846 * r3);
    w = -a * (std::log(r1) + std::log(r2) * c * c);
  }
  const double ef = 0.25 * a * a * b;
  return w + ef + (2.0 * s.next() - 1.0) * 2.0 * std::sqrt(ef * w);
}

/// Maxwellian spectrum with temperature parameter T (MeV).
inline double sample_maxwell(Stream& s, double t) {
  const double r1 = s.next();
  const double r2 = s.next();
  const double r3 = s.next();
  const double c = std::cos(0.5 * 3.14159265358979323846 * r3);
  return -t * (std::log(r1) + std::log(r2) * c * c);
}

}  // namespace vmc::rng
