#include "physics/collision.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vmc::physics {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

ElasticOut elastic_kinematics(double e_in, double awr, double mu_cm) {
  const double a = awr;
  const double alpha = ((a - 1.0) / (a + 1.0)) * ((a - 1.0) / (a + 1.0));
  ElasticOut out;
  out.energy = 0.5 * e_in * ((1.0 + alpha) + (1.0 - alpha) * mu_cm);
  // A = 1 head-on collision: the neutron stops; the direction is moot but
  // must not be NaN.
  const double denom = std::sqrt(std::max(1e-20, a * a + 1.0 + 2.0 * a * mu_cm));
  out.mu_lab = std::clamp((1.0 + a * mu_cm) / denom, -1.0, 1.0);
  return out;
}

xs::XsSet Collision::micro_xs(int nuclide, double e, rng::Stream& rng) const {
  const auto& nuc = lib_.nuclide(nuclide);
  xs::XsSet sigma = nuc.evaluate(e);

  // URR probability tables [Levitt 1972]: in the unresolved range the
  // pointwise values are replaced by band-sampled factors. Note the CDF walk
  // — the conditional cascade Section II-A3 describes.
  if (settings_.enable_urr && nuc.urr && nuc.urr->contains(e)) {
    const auto& u = *nuc.urr;
    // Incident-energy interval.
    std::size_t ie = 0;
    while (ie + 2 < u.energy.size() && u.energy[ie + 1] <= e) ++ie;
    const std::size_t row = ie * static_cast<std::size_t>(u.n_bands);
    const float xi = static_cast<float>(rng.next());
    int b = 0;
    while (b + 1 < u.n_bands && u.cdf[row + static_cast<std::size_t>(b)] < xi) {
      ++b;
    }
    const std::size_t k = row + static_cast<std::size_t>(b);
    sigma.scatter *= u.f_scatter[k];
    sigma.absorption *= u.f_absorption[k];
    sigma.fission *= u.f_fission[k];
    sigma.total = sigma.scatter + sigma.absorption;
  }

  // S(alpha,beta): below the thermal cutoff the scattering channel is
  // replaced by the bound-atom table values.
  if (settings_.enable_thermal && nuc.thermal && nuc.thermal->contains(e)) {
    const auto& t = *nuc.thermal;
    std::size_t ie = 0;
    while (ie + 2 < t.inel_energy.size() && t.inel_energy[ie + 1] <= e) ++ie;
    const double f = std::clamp(
        (e - t.inel_energy[ie]) / (t.inel_energy[ie + 1] - t.inel_energy[ie]),
        0.0, 1.0);
    double inel = t.inel_xs[ie] + f * (t.inel_xs[ie + 1] - t.inel_xs[ie]);
    // Coherent elastic: 1/E times the cumulative structure factor of the
    // Bragg edges below e (the loop-with-break the paper calls out).
    double coh = 0.0;
    for (std::size_t k = 0; k < t.bragg_edge.size(); ++k) {
      if (t.bragg_edge[k] > e) break;
      coh = t.bragg_weight[k];
    }
    coh *= 2.53e-8 / e;  // normalized so coherent xs ~ O(barns) near thermal
    sigma.scatter = inel + coh;
    sigma.total = sigma.scatter + sigma.absorption;
  }

  return sigma;
}

int Collision::sample_nuclide(int material, double e, double sigma_t,
                              rng::Stream& rng) const {
  const auto& mat = lib_.material(material);
  const double target = rng.next() * sigma_t;
  double acc = 0.0;
  for (std::size_t i = 0; i < mat.size(); ++i) {
    // Note: deterministic pointwise value here (no URR resampling) so the
    // sum reproduces the macroscopic total used for `target`.
    const auto& nuc = lib_.nuclide(mat.nuclides[i]);
    acc += mat.density[i] * nuc.evaluate(e).total;
    if (acc >= target) return mat.nuclides[i];
  }
  return mat.nuclides[mat.size() - 1];
}

CollisionResult Collision::collide(int material, double e, geom::Direction u,
                                   const xs::XsSet& macro,
                                   rng::Stream& rng) const {
  const int nuclide = sample_nuclide(material, e, macro.total, rng);
  const auto& nuc = lib_.nuclide(nuclide);
  const xs::XsSet micro = micro_xs(nuclide, e, rng);

  // Reaction selection: absorption if xi * sigma_t < sigma_a (Section
  // II-A2), then fission within absorption by sigma_f / sigma_a.
  const double xi = rng.next();
  if (xi * micro.total < micro.absorption) {
    if (nuc.fissionable && micro.absorption > 0.0 &&
        rng.next() * micro.absorption < micro.fission) {
      // Analog fission multiplicity: floor(nu) + Bernoulli(frac(nu)).
      const double nu = nuc.nu;
      int n = static_cast<int>(nu);
      if (rng.next() < nu - n) ++n;
      CollisionResult res;
      res.type = CollisionType::fission;
      res.n_fission_neutrons = n;
      return res;
    }
    CollisionResult res;
    res.type = CollisionType::capture;
    return res;
  }

  // Scattering.
  if (settings_.enable_thermal && nuc.thermal && nuc.thermal->contains(e)) {
    return thermal_scatter(*nuc.thermal, e, u, rng);
  }
  return scatter(nuclide, e, u, rng);
}

CollisionResult Collision::force_scatter(int material, double e,
                                         geom::Direction u,
                                         const xs::XsSet& macro,
                                         rng::Stream& rng) const {
  const int nuclide = sample_nuclide(material, e, macro.total, rng);
  const auto& nuc = lib_.nuclide(nuclide);
  if (settings_.enable_thermal && nuc.thermal && nuc.thermal->contains(e)) {
    return thermal_scatter(*nuc.thermal, e, u, rng);
  }
  return scatter(nuclide, e, u, rng);
}

CollisionResult Collision::scatter(int nuclide, double e, geom::Direction u,
                                   rng::Stream& rng) const {
  const auto& nuc = lib_.nuclide(nuclide);
  double e_eff = e;

  // Free-gas target motion: below ~400 kT the target's thermal velocity
  // matters. We use the standard effective-energy treatment: sample a
  // relative energy from the Maxwellian-adjusted distribution. (Simplified
  // sampling — adds the extra RNG draws and branches of the real treatment.)
  if (settings_.enable_free_gas &&
      e < 400.0 * settings_.temperature_mev && nuc.awr < 250.0) {
    const double kt = settings_.temperature_mev;
    const double et = -kt * std::log(rng.next() * rng.next() + 1e-300) / 2.0;
    const double mu_t = 2.0 * rng.next() - 1.0;
    // Relative energy of neutron vs. moving target (non-relativistic).
    e_eff = std::max(1e-11, e + et / nuc.awr -
                     2.0 * mu_t * std::sqrt(e * et / nuc.awr));
  }

  const double mu_cm = 2.0 * rng.next() - 1.0;  // isotropic in CM
  const ElasticOut out = elastic_kinematics(e_eff, nuc.awr, mu_cm);
  const double phi = 2.0 * kPi * rng.next();

  CollisionResult res;
  res.type = CollisionType::scatter;
  res.energy = std::max(1e-11, out.energy);
  res.direction = geom::rotate_direction(u, out.mu_lab, phi);
  return res;
}

CollisionResult Collision::thermal_scatter(const xs::ThermalTable& t, double e,
                                           geom::Direction u,
                                           rng::Stream& rng) const {
  CollisionResult res;
  res.type = CollisionType::scatter;

  // Split coherent-elastic vs. incoherent-inelastic by their cross sections
  // at e (recomputed here — branch-heavy by design, matching the real code).
  std::size_t ie = 0;
  while (ie + 2 < t.inel_energy.size() && t.inel_energy[ie + 1] <= e) ++ie;
  const double f = std::clamp(
      (e - t.inel_energy[ie]) / (t.inel_energy[ie + 1] - t.inel_energy[ie]),
      0.0, 1.0);
  const double inel = t.inel_xs[ie] + f * (t.inel_xs[ie + 1] - t.inel_xs[ie]);
  double coh = 0.0;
  std::size_t n_edges = 0;
  for (std::size_t k = 0; k < t.bragg_edge.size(); ++k) {
    if (t.bragg_edge[k] > e) break;
    coh = t.bragg_weight[k];
    n_edges = k + 1;
  }
  coh *= 2.53e-8 / e;

  if (n_edges > 0 && rng.next() * (inel + coh) < coh) {
    // Coherent elastic: pick a Bragg edge below e by structure-factor
    // weight; energy unchanged, mu set by the edge.
    const double xi = rng.next() * t.bragg_weight[n_edges - 1];
    std::size_t k = 0;
    while (k + 1 < n_edges && t.bragg_weight[k] < xi) ++k;
    const double mu = std::clamp(1.0 - 2.0 * t.bragg_edge[k] / e, -1.0, 1.0);
    res.energy = e;
    res.direction = geom::rotate_direction(u, mu, 2.0 * kPi * rng.next());
    return res;
  }

  // Incoherent inelastic: pick one of the discrete outgoing lines.
  const int k = std::min<int>(t.n_out - 1,
                              static_cast<int>(rng.next() * t.n_out));
  const std::size_t base = ie * static_cast<std::size_t>(t.n_out);
  const std::size_t idx = base + static_cast<std::size_t>(k);
  res.energy = std::max(1e-11, static_cast<double>(t.out_energy[idx]));
  const double mu = std::clamp(static_cast<double>(t.out_mu[idx]), -1.0, 1.0);
  res.direction = geom::rotate_direction(u, mu, 2.0 * kPi * rng.next());
  return res;
}

}  // namespace vmc::physics
