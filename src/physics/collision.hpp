// Collision physics: nuclide sampling, reaction selection, scattering
// kinematics, fission yield — including the two treatments the paper
// identifies as the obstacles to vectorization: URR probability tables and
// S(alpha,beta) thermal scattering (Section II-A3).
//
// `PhysicsSettings::vector_friendly()` reproduces the paper's
// micro-benchmark configuration, where "it was also necessary to remove the
// blocks that handle S(alpha,beta) and URR calculations to achieve
// vectorization" — both treatments off, free-gas thermal off.
#pragma once

#include "geom/vec3.hpp"
#include "rng/stream.hpp"
#include "xsdata/library.hpp"
#include "xsdata/lookup.hpp"

namespace vmc::physics {

struct PhysicsSettings {
  bool enable_urr = true;      // URR probability-table sampling
  bool enable_thermal = true;  // S(alpha,beta) tables
  bool enable_free_gas = true; // free-gas target motion below 400 kT
  double temperature_mev = 2.53e-8;  // kT at 293.6 K

  /// Full physics (the native/symmetric-mode configuration).
  static PhysicsSettings full() { return {}; }
  /// The banking micro-benchmark configuration: all branchy treatments off.
  static PhysicsSettings vector_friendly() {
    PhysicsSettings s;
    s.enable_urr = false;
    s.enable_thermal = false;
    s.enable_free_gas = false;
    return s;
  }
};

/// What happened at a collision site.
enum class CollisionType : unsigned char { scatter, capture, fission };

struct CollisionResult {
  CollisionType type = CollisionType::scatter;
  double energy = 0.0;          // outgoing energy (scatter only)
  geom::Direction direction{}; // outgoing direction (scatter only)
  int n_fission_neutrons = 0;   // sites to bank (fission only)
};

class Collision {
 public:
  Collision(const xs::Library& lib, PhysicsSettings settings)
      : lib_(lib), settings_(settings) {}

  const PhysicsSettings& settings() const { return settings_; }

  /// Microscopic cross sections of one nuclide at energy e, with URR
  /// probability-table factors applied when enabled and in range (consumes
  /// one random number in that case — the data-dependent RNG consumption
  /// that breaks lockstep vectorization).
  xs::XsSet micro_xs(int nuclide, double e, rng::Stream& rng) const;

  /// Sample the colliding nuclide within `material` (probability
  /// proportional to its macroscopic total at e).
  int sample_nuclide(int material, double e, double sigma_t,
                     rng::Stream& rng) const;

  /// Full analog collision: sample nuclide, reaction, and outgoing state.
  CollisionResult collide(int material, double e, geom::Direction u,
                          const xs::XsSet& macro, rng::Stream& rng) const;

  /// Implicit-capture collision (survival biasing): the reaction is forced
  /// to scatter — the caller deposits the absorbed weight fraction itself.
  CollisionResult force_scatter(int material, double e, geom::Direction u,
                                const xs::XsSet& macro,
                                rng::Stream& rng) const;

 private:
  CollisionResult scatter(int nuclide, double e, geom::Direction u,
                          rng::Stream& rng) const;
  CollisionResult thermal_scatter(const xs::ThermalTable& t, double e,
                                  geom::Direction u, rng::Stream& rng) const;

  const xs::Library& lib_;
  PhysicsSettings settings_;
};

/// Elastic-scattering energy transfer for target-at-rest kinematics:
/// outgoing energy and lab cosine given CM cosine `mu_cm` and mass ratio A.
struct ElasticOut {
  double energy;
  double mu_lab;
};
ElasticOut elastic_kinematics(double e_in, double awr, double mu_cm);

}  // namespace vmc::physics
