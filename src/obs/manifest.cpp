#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "resil/fault.hpp"
#include "simd/simd.hpp"

namespace vmc::obs {

namespace {

std::string iso8601_utc_now() {
  const std::time_t t = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

}  // namespace

RunManifest::RunManifest() : timestamp_utc_(iso8601_utc_now()) {}

RunManifest& RunManifest::set_run_kind(std::string_view kind) {
  run_kind_ = std::string(kind);
  return *this;
}

RunManifest& RunManifest::set_seed(std::uint64_t seed) {
  has_seed_ = true;
  seed_ = seed;
  return *this;
}

RunManifest& RunManifest::set_k_history(const std::vector<double>& k_history) {
  k_history_ = k_history;
  return *this;
}

RunManifest& RunManifest::set_extra(std::string_view key, std::string_view value) {
  extra_strings_.emplace_back(std::string(key), std::string(value));
  return *this;
}

RunManifest& RunManifest::set_extra(std::string_view key, double value) {
  extra_numbers_.emplace_back(std::string(key), value);
  return *this;
}

RunManifest& RunManifest::capture_fault_summary() {
  has_faults_ = true;
  faults_.clear();
  for (std::string_view point : resil::kFaultPoints) {
    FaultSummary fs;
    fs.point = std::string(point);
    fs.hits = resil::hits(point);
    fs.fires = resil::fires(point);
    faults_.push_back(std::move(fs));
  }
  return *this;
}

RunManifest& RunManifest::add_device_health(const DeviceHealth& d) {
  device_health_.push_back(d);
  return *this;
}

RunManifest& RunManifest::add_job(const JobRecord& j) {
  jobs_.push_back(j);
  return *this;
}

RunManifest& RunManifest::capture_metrics() {
  metrics_json_ = metrics().snapshot().json();
  return *this;
}

std::string RunManifest::json() const {
  JsonWriter w;
  w.begin_object();
  w.member("schema", "vectormc.manifest.v1");
  w.member("timestamp_utc", timestamp_utc_);
  w.member("run_kind", run_kind_);

  w.key("machine").begin_object();
  // The SELECTED backend (CPUID dispatch / VMC_SIMD_ISA), i.e. what the hot
  // kernels executed — not what this TU was compiled to. The forced-ISA CI
  // matrix asserts on this field.
  w.member("isa", simd::dispatch().name);
  w.member("simd_bits", simd::dispatch().simd_bits);
  w.member("compiled_isa", simd::isa_name());
  w.member("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.end_object();

  w.key("build").begin_object();
#if defined(__VERSION__)
  w.member("compiler", __VERSION__);
#else
  w.member("compiler", "unknown");
#endif
#if defined(NDEBUG)
  w.member("asserts", false);
#else
  w.member("asserts", true);
#endif
#if defined(__OPTIMIZE__)
  w.member("optimized", true);
#else
  w.member("optimized", false);
#endif
  w.end_object();

  if (has_seed_)
    w.member("seed", seed_);
  else
    w.key("seed").null();

  w.key("k_history").begin_array();
  for (double k : k_history_) w.value(k);
  w.end_array();

  if (has_faults_) {
    w.key("fault_summary").begin_array();
    for (const auto& f : faults_) {
      w.begin_object();
      w.member("point", f.point);
      w.member("hits", f.hits);
      w.member("fires", f.fires);
      w.end_object();
    }
    w.end_array();
  }

  if (!device_health_.empty()) {
    w.key("device_health").begin_array();
    for (const auto& d : device_health_) {
      w.begin_object();
      w.member("device", d.device);
      w.member("state", d.state);
      w.member("chunks_ok", d.chunks_ok);
      w.member("chunks_failed", d.chunks_failed);
      w.member("chunks_skipped", d.chunks_skipped);
      w.member("retries", d.retries);
      w.member("trips", d.trips);
      w.member("probes", d.probes);
      w.member("steals_in", d.steals_in);
      w.member("streams", d.streams);
      w.member("inflight_high_water", d.inflight_high_water);
      w.end_object();
    }
    w.end_array();
  }

  if (!jobs_.empty()) {
    w.key("jobs").begin_array();
    for (const auto& j : jobs_) {
      w.begin_object();
      w.member("job_id", j.job_id);
      w.member("tenant", j.tenant);
      w.member("status", j.status);
      w.member("digest", j.digest);
      w.member("cache_hit", j.cache_hit);
      w.member("resumes", j.resumes);
      w.member("latency_seconds", j.latency_seconds);
      w.member("k_eff", j.k_eff);
      w.end_object();
    }
    w.end_array();
  }

  if (!extra_strings_.empty() || !extra_numbers_.empty()) {
    w.key("extra").begin_object();
    for (const auto& [k, v] : extra_strings_) w.member(k, v);
    for (const auto& [k, v] : extra_numbers_) w.member(k, v);
    w.end_object();
  }

  if (!metrics_json_.empty()) w.key("metrics").raw_value(metrics_json_);

  w.end_object();
  return w.str();
}

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs::RunManifest: cannot open " + path);
  out << json();
  out.flush();
  if (!out) throw std::runtime_error("obs::RunManifest: write failed for " + path);
}

}  // namespace vmc::obs
