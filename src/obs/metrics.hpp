// Metrics registry: labeled counter/gauge/histogram families with a
// lock-free hot path.
//
// Registration (`counter()`, `gauge()`, `histogram()`) takes the registry
// mutex and returns a small handle wrapping a pointer to stable atomic
// storage; after that, `inc`/`set`/`observe` are plain relaxed atomic
// operations — no lock, no allocation — so handles can live inside transport
// inner loops. Series are deduplicated by (name, sorted labels): a second
// registration of the same series returns a handle to the same cells, which
// is what lets e.g. every `EventTracker::run` call share one
// `vmc_bank_sweep_particles_total{kernel="xs_lookup",isa="avx2"}` counter.
//
// Snapshots are point-in-time copies exportable as Prometheus text
// exposition (scrape-compatible) or JSON (via obs::JsonWriter, schema
// `vectormc.metrics.v1`). Relaxed atomics mean a snapshot taken mid-sweep
// may be a few increments stale per thread — fine for rate/occupancy
// observability, and documented in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vmc::obs {

/// Label set for one series. Order-insensitive: the registry sorts by key
/// before deduplication and export.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

struct CounterCell {
  std::atomic<std::uint64_t> v{0};
};

struct GaugeCell {
  std::atomic<double> v{0.0};
};

struct HistogramCells {
  explicit HistogramCells(std::vector<double> upper_bounds);
  std::vector<double> bounds;  // ascending upper bounds; +inf bucket implicit
  // buckets.size() == bounds.size() + 1; the last bucket is the overflow
  // (+inf) bucket so no observation is ever dropped.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

}  // namespace detail

/// Monotonic counter handle. Copyable, trivially cheap; `inc` is one relaxed
/// atomic add.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) const {
    if (c_) c_->v.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return c_ ? c_->v.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* c) : c_(c) {}
  detail::CounterCell* c_ = nullptr;
};

/// Last-value gauge handle; `set`/`add` are relaxed atomics.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (g_) g_->v.store(v, std::memory_order_relaxed);
  }
  void add(double d) const {
    if (!g_) return;
    double cur = g_->v.load(std::memory_order_relaxed);
    while (!g_->v.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return g_ ? g_->v.load(std::memory_order_relaxed) : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* g) : g_(g) {}
  detail::GaugeCell* g_ = nullptr;
};

/// Fixed-bucket histogram handle. `observe` is a branchless-ish bucket scan
/// (bucket counts are small and fixed at registration) plus relaxed atomics.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;
  std::uint64_t count() const {
    return h_ ? h_->count.load(std::memory_order_relaxed) : 0;
  }
  double sum() const { return h_ ? h_->sum.load(std::memory_order_relaxed) : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCells* h) : h_(h) {}
  detail::HistogramCells* h_ = nullptr;
};

/// Point-in-time copy of one series.
struct SeriesSnapshot {
  Labels labels;
  // counter: integer in `counter_value`; gauge: `gauge_value`;
  // histogram: buckets (cumulative on export), count, sum.
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<std::uint64_t> bucket_counts;  // per-bucket (NOT cumulative)
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
};

/// Point-in-time copy of one family (all series sharing a name and type).
struct FamilySnapshot {
  enum class Type : unsigned char { counter, gauge, histogram };
  std::string name;
  std::string help;
  Type type = Type::counter;
  std::vector<double> bounds;  // histogram families only
  std::vector<SeriesSnapshot> series;
};

struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  /// Prometheus text exposition (version 0.0.4): # HELP/# TYPE headers,
  /// histogram `_bucket{le=...}`/`_sum`/`_count` expansion, cumulative
  /// buckets including `le="+Inf"`.
  std::string prometheus() const;

  /// JSON document, schema `vectormc.metrics.v1`.
  std::string json() const;
};

/// Registry of metric families. Registration is mutex-guarded; returned
/// handles are valid for the registry's lifetime (cells are heap-allocated
/// and never move). Re-registering an existing (name, labels) series returns
/// the same cells; re-registering a name with a different type (or a
/// histogram with different bounds) throws std::logic_error.
class MetricsRegistry {
 public:
  Counter counter(std::string_view name, Labels labels = {},
                  std::string_view help = "");
  Gauge gauge(std::string_view name, Labels labels = {},
              std::string_view help = "");
  Histogram histogram(std::string_view name, std::vector<double> upper_bounds,
                      Labels labels = {}, std::string_view help = "");

  MetricsSnapshot snapshot() const;

  /// Zero every counter/gauge/histogram cell (families and series remain
  /// registered). For test isolation; not thread-safe against concurrent
  /// observers in the sense that mixed old/new values may be seen.
  void reset();

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<detail::CounterCell> counter;
    std::unique_ptr<detail::GaugeCell> gauge;
    std::unique_ptr<detail::HistogramCells> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    FamilySnapshot::Type type = FamilySnapshot::Type::counter;
    std::vector<double> bounds;
    std::vector<Series> series;
  };

  Family& family_locked(std::string_view name, FamilySnapshot::Type type,
                        std::string_view help, const std::vector<double>* bounds);
  Series& series_locked(Family& fam, Labels&& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
};

/// Process-wide registry used by the built-in instrumentation.
MetricsRegistry& metrics();

/// Sanitize an arbitrary string into the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (invalid characters become '_').
std::string sanitize_metric_name(std::string_view name);

/// Quantile estimate from fixed-bucket histogram data (per-bucket counts,
/// NOT cumulative; `counts.size() == bounds.size() + 1`). Linear
/// interpolation within the located bucket; the overflow bucket clamps to
/// the last bound. Returns NaN for empty data or q outside [0,1].
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts, double q);

/// Structural validation of a Prometheus text exposition: every non-comment
/// line must look like `name{labels} value` with a parseable value, # TYPE
/// lines must name a known type, and label syntax must balance. Returns true
/// when valid; otherwise stores a message in *error when non-null.
bool prometheus_validate(std::string_view text, std::string* error = nullptr);

}  // namespace vmc::obs
