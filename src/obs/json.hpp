// Compatibility forwarder: the JSON writer/parser moved to src/json so the
// serving layer can parse job specs without linking the metrics registry.
// Existing obs-side code and includes keep working through these aliases;
// new code should include "json/json.hpp" directly.
#pragma once

#include "json/json.hpp"

namespace vmc::obs {

using json::json_escape;
using json::JsonWriter;
using json::JsonValue;
using json::json_parse;
using json::json_valid;

}  // namespace vmc::obs
