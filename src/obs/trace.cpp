#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

#include "obs/json.hpp"
#include "prof/profiler.hpp"

namespace vmc::obs {

namespace {
constexpr int kMaxOpenSpans = 64;

// Never-reused instance ids key the thread_local buffer cache. Keying by
// `this` would be wrong: a new Tracer constructed at a dead Tracer's address
// (routine for stack-allocated tracers in tests) would inherit the dead
// one's freed ThreadBufs.
std::atomic<std::uint64_t> next_tracer_id{1};
}  // namespace

// Per-thread ring of events. Owned by the Tracer (deleted in its dtor, same
// lifetime pattern as prof::Registry::ThreadState); the thread_local map in
// local() only caches pointers.
struct Tracer::ThreadBuf {
  explicit ThreadBuf(std::size_t cap) : ring(cap) {}
  std::vector<Event> ring;
  std::size_t head = 0;       // next write position
  std::uint64_t total = 0;    // events ever written (total - size = dropped)
  struct Open {
    const char* name;
    const char* cat;
    double t0_us;
  };
  Open open[kMaxOpenSpans];
  int depth = 0;
  int tid = 0;
  std::mutex mu;  // ring writes vs. chrome_json()/clear()

  void push(const Event& e) {
    std::lock_guard<std::mutex> lk(mu);
    ring[head] = e;
    head = (head + 1) % ring.size();
    ++total;
  }
};

Tracer::Tracer(std::size_t ring_capacity)
    : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      ring_cap_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_s_(prof::now_seconds()) {}

Tracer::~Tracer() {
  std::lock_guard<std::mutex> lk(mu_);
  for (ThreadBuf* t : threads_) delete t;
}

double Tracer::now_s() const { return prof::now_seconds() - epoch_s_; }

Tracer::ThreadBuf& Tracer::local() {
  thread_local std::map<std::uint64_t, ThreadBuf*> per_tracer;
  ThreadBuf*& tb = per_tracer[id_];
  if (tb == nullptr) {
    tb = new ThreadBuf(ring_cap_);
    std::lock_guard<std::mutex> lk(mu_);
    tb->tid = next_tid_++;
    threads_.push_back(tb);
  }
  return *tb;
}

void Tracer::begin(const char* name, const char* cat) {
  if (!enabled()) return;
  ThreadBuf& tb = local();
  if (tb.depth >= kMaxOpenSpans) return;  // overflow: drop, never corrupt
  tb.open[tb.depth++] = {name, cat, now_s() * 1e6};
}

void Tracer::end() {
  // Deliberately NOT gated on enabled(): a span opened while enabled must
  // close even if the tracer was disabled mid-span (Tracer::Scope relies on
  // this), or the open-span stack leaks and the event is lost.
  ThreadBuf& tb = local();
  if (tb.depth <= 0) return;  // unbalanced end: drop
  const auto& o = tb.open[--tb.depth];
  Event e;
  e.name = o.name;
  e.cat = o.cat;
  e.ts_us = o.t0_us;
  e.dur_us = now_s() * 1e6 - o.t0_us;
  e.ph = 'X';
  tb.push(e);
}

void Tracer::instant(const char* name, const char* cat) {
  if (!enabled()) return;
  ThreadBuf& tb = local();
  Event e;
  e.name = name;
  e.cat = cat;
  e.ts_us = now_s() * 1e6;
  e.ph = 'i';
  tb.push(e);
}

void Tracer::inject_span(int pid, int tid, std::string_view name,
                         std::string_view cat, double ts_s, double dur_s,
                         std::string_view args_json) {
  if (!enabled()) return;
  if (!args_json.empty() && !json_valid(args_json))
    throw std::logic_error("inject_span: args_json is not valid JSON");
  Injected ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.args_json = std::string(args_json);
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_us = ts_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  ev.ph = 'X';
  std::lock_guard<std::mutex> lk(mu_);
  injected_.push_back(std::move(ev));
}

void Tracer::inject_instant(int pid, int tid, std::string_view name,
                            std::string_view cat, double ts_s) {
  if (!enabled()) return;
  Injected ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_us = ts_s * 1e6;
  ev.ph = 'i';
  std::lock_guard<std::mutex> lk(mu_);
  injected_.push_back(std::move(ev));
}

void Tracer::set_process_name(int pid, std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [p, n] : process_names_)
    if (p == pid) {
      n = std::string(name);
      return;
    }
  process_names_.emplace_back(pid, std::string(name));
}

void Tracer::set_thread_name(int pid, int tid, std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [key, n] : thread_names_)
    if (key.first == pid && key.second == tid) {
      n = std::string(name);
      return;
    }
  thread_names_.emplace_back(std::make_pair(pid, tid), std::string(name));
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t d = 0;
  for (ThreadBuf* tb : threads_) {
    std::lock_guard<std::mutex> tlk(tb->mu);
    if (tb->total > tb->ring.size()) d += tb->total - tb->ring.size();
  }
  return d;
}

std::string Tracer::chrome_json() const {
  // Collect everything under the tracer lock, then serialize unlocked.
  struct Flat {
    std::string name, cat, args_json;
    int pid, tid;
    double ts_us, dur_us;
    char ph;
  };
  std::vector<Flat> events;
  std::uint64_t dropped_events = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (ThreadBuf* tb : threads_) {
      std::lock_guard<std::mutex> tlk(tb->mu);
      const std::size_t n = std::min<std::uint64_t>(tb->total, tb->ring.size());
      if (tb->total > tb->ring.size()) dropped_events += tb->total - tb->ring.size();
      // Oldest surviving event first.
      std::size_t start = tb->total > tb->ring.size() ? tb->head : 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = tb->ring[(start + i) % tb->ring.size()];
        events.push_back(
            Flat{e.name, e.cat, {}, kHostPid, tb->tid, e.ts_us, e.dur_us, e.ph});
      }
    }
    for (const Injected& ev : injected_)
      events.push_back(Flat{ev.name, ev.cat, ev.args_json, ev.pid, ev.tid,
                            ev.ts_us, ev.dur_us, ev.ph});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Flat& a, const Flat& b) { return a.ts_us < b.ts_us; });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [pid, name] : process_names_) {
      w.begin_object();
      w.member("name", "process_name");
      w.member("ph", "M");
      w.member("pid", pid);
      w.member("tid", 0);
      w.key("args").begin_object().member("name", name).end_object();
      w.end_object();
    }
    for (const auto& [key, name] : thread_names_) {
      w.begin_object();
      w.member("name", "thread_name");
      w.member("ph", "M");
      w.member("pid", key.first);
      w.member("tid", key.second);
      w.key("args").begin_object().member("name", name).end_object();
      w.end_object();
    }
  }
  for (const Flat& e : events) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.cat.empty() ? std::string("vmc") : e.cat);
    w.member("ph", std::string(1, e.ph));
    w.member("ts", e.ts_us);
    if (e.ph == 'X') w.member("dur", e.dur_us);
    w.member("pid", e.pid);
    w.member("tid", e.tid);
    if (e.ph == 'i') w.member("s", "t");  // instant scope: thread
    if (!e.args_json.empty()) {
      // Validated at injection time too, but re-check here: a raw splice is
      // the one escape hatch from the writer's "output always parses"
      // invariant.
      if (!json_valid(e.args_json))
        throw std::logic_error("inject_span: args_json is not valid JSON");
      w.key("args").raw_value(e.args_json);
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.member("emitter", "vmc_obs");
  w.member("dropped_events", dropped_events);
  w.end_object();
  w.end_object();
  return w.str();
}

void Tracer::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs::Tracer: cannot open " + path);
  out << chrome_json();
  out.flush();
  if (!out) throw std::runtime_error("obs::Tracer: write failed for " + path);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (ThreadBuf* tb : threads_) {
    std::lock_guard<std::mutex> tlk(tb->mu);
    tb->head = 0;
    tb->total = 0;
    tb->depth = 0;
  }
  injected_.clear();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

}  // namespace vmc::obs
