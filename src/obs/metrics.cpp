#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace vmc::obs {

namespace detail {

HistogramCells::HistogramCells(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)),
      buckets(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  if (bounds.empty())
    throw std::logic_error("histogram requires at least one bucket bound");
  if (!std::is_sorted(bounds.begin(), bounds.end()))
    throw std::logic_error("histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds.size(); ++i) buckets[i].store(0);
}

}  // namespace detail

void Histogram::observe(double v) const {
  if (!h_) return;
  // Linear scan: bucket lists are short (O(10)) and the branch predictor
  // learns the common bucket fast; a binary search would cost more here.
  std::size_t i = 0;
  const std::size_t nb = h_->bounds.size();
  while (i < nb && v > h_->bounds[i]) ++i;
  h_->buckets[i].fetch_add(1, std::memory_order_relaxed);
  h_->count.fetch_add(1, std::memory_order_relaxed);
  double cur = h_->sum.load(std::memory_order_relaxed);
  while (!h_->sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* type_name(FamilySnapshot::Type t) {
  switch (t) {
    case FamilySnapshot::Type::counter: return "counter";
    case FamilySnapshot::Type::gauge: return "gauge";
    case FamilySnapshot::Type::histogram: return "histogram";
  }
  return "untyped";
}

// HELP text escapes backslash and newline (exposition format 0.0.4); an
// unescaped newline would make the rest of the help parse as a sample line.
std::string help_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

// Prometheus label values escape \, ", and newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_val = {}) {
  if (labels.empty() && !extra_key) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_metric_name(k);
    out += "=\"";
    out += prom_escape(v);
    out += '"';
  }
  if (extra_key) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += prom_escape(extra_val);
    out += '"';
  }
  out += '}';
  return out;
}

std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
              (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    std::string_view name, FamilySnapshot::Type type, std::string_view help,
    const std::vector<double>* bounds) {
  for (auto& f : families_) {
    if (f->name == name) {
      if (f->type != type)
        throw std::logic_error("metric family '" + std::string(name) +
                               "' re-registered with different type");
      if (type == FamilySnapshot::Type::histogram && bounds && f->bounds != *bounds)
        throw std::logic_error("histogram family '" + std::string(name) +
                               "' re-registered with different bounds");
      if (f->help.empty() && !help.empty()) f->help = std::string(help);
      return *f;
    }
  }
  auto f = std::make_unique<Family>();
  f->name = sanitize_metric_name(name);
  f->help = std::string(help);
  f->type = type;
  if (bounds) f->bounds = *bounds;
  families_.push_back(std::move(f));
  return *families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series_locked(Family& fam,
                                                        Labels&& labels) {
  for (auto& s : fam.series)
    if (s.labels == labels) return s;
  fam.series.push_back(Series{});
  fam.series.back().labels = std::move(labels);
  return fam.series.back();
}

Counter MetricsRegistry::counter(std::string_view name, Labels labels,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Family& fam = family_locked(name, FamilySnapshot::Type::counter, help, nullptr);
  Series& s = series_locked(fam, sorted(std::move(labels)));
  if (!s.counter) s.counter = std::make_unique<detail::CounterCell>();
  return Counter(s.counter.get());
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels,
                             std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Family& fam = family_locked(name, FamilySnapshot::Type::gauge, help, nullptr);
  Series& s = series_locked(fam, sorted(std::move(labels)));
  if (!s.gauge) s.gauge = std::make_unique<detail::GaugeCell>();
  return Gauge(s.gauge.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds,
                                     Labels labels, std::string_view help) {
  std::lock_guard<std::mutex> lk(mu_);
  Family& fam =
      family_locked(name, FamilySnapshot::Type::histogram, help, &upper_bounds);
  Series& s = series_locked(fam, sorted(std::move(labels)));
  if (!s.histogram)
    s.histogram = std::make_unique<detail::HistogramCells>(std::move(upper_bounds));
  return Histogram(s.histogram.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  snap.families.reserve(families_.size());
  for (const auto& f : families_) {
    FamilySnapshot fs;
    fs.name = f->name;
    fs.help = f->help;
    fs.type = f->type;
    fs.bounds = f->bounds;
    for (const auto& s : f->series) {
      SeriesSnapshot ss;
      ss.labels = s.labels;
      if (s.counter) ss.counter_value = s.counter->v.load(std::memory_order_relaxed);
      if (s.gauge) ss.gauge_value = s.gauge->v.load(std::memory_order_relaxed);
      if (s.histogram) {
        const std::size_t nb = s.histogram->bounds.size() + 1;
        ss.bucket_counts.resize(nb);
        for (std::size_t i = 0; i < nb; ++i)
          ss.bucket_counts[i] = s.histogram->buckets[i].load(std::memory_order_relaxed);
        ss.hist_count = s.histogram->count.load(std::memory_order_relaxed);
        ss.hist_sum = s.histogram->sum.load(std::memory_order_relaxed);
      }
      fs.series.push_back(std::move(ss));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& f : families_) {
    for (auto& s : f->series) {
      if (s.counter) s.counter->v.store(0);
      if (s.gauge) s.gauge->v.store(0.0);
      if (s.histogram) {
        for (std::size_t i = 0; i <= s.histogram->bounds.size(); ++i)
          s.histogram->buckets[i].store(0);
        s.histogram->count.store(0);
        s.histogram->sum.store(0.0);
      }
    }
  }
}

std::string MetricsSnapshot::prometheus() const {
  std::string out;
  for (const auto& f : families) {
    if (!f.help.empty()) out += "# HELP " + f.name + " " + help_escape(f.help) + "\n";
    out += "# TYPE " + f.name + " " + type_name(f.type) + "\n";
    for (const auto& s : f.series) {
      switch (f.type) {
        case FamilySnapshot::Type::counter:
          out += f.name + label_block(s.labels) + " " +
                 std::to_string(s.counter_value) + "\n";
          break;
        case FamilySnapshot::Type::gauge:
          out += f.name + label_block(s.labels) + " " + fmt_double(s.gauge_value) +
                 "\n";
          break;
        case FamilySnapshot::Type::histogram: {
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < f.bounds.size(); ++i) {
            cum += s.bucket_counts.size() > i ? s.bucket_counts[i] : 0;
            out += f.name + "_bucket" +
                   label_block(s.labels, "le", fmt_double(f.bounds[i])) + " " +
                   std::to_string(cum) + "\n";
          }
          cum += s.bucket_counts.empty() ? 0 : s.bucket_counts.back();
          out += f.name + "_bucket" + label_block(s.labels, "le", "+Inf") + " " +
                 std::to_string(cum) + "\n";
          out += f.name + "_sum" + label_block(s.labels) + " " +
                 fmt_double(s.hist_sum) + "\n";
          out += f.name + "_count" + label_block(s.labels) + " " +
                 std::to_string(s.hist_count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::json() const {
  JsonWriter w;
  w.begin_object();
  w.member("schema", "vectormc.metrics.v1");
  w.key("families").begin_array();
  for (const auto& f : families) {
    w.begin_object();
    w.member("name", f.name);
    w.member("help", f.help);
    w.member("type", type_name(f.type));
    if (f.type == FamilySnapshot::Type::histogram) {
      w.key("bounds").begin_array();
      for (double b : f.bounds) w.value(b);
      w.end_array();
    }
    w.key("series").begin_array();
    for (const auto& s : f.series) {
      w.begin_object();
      w.key("labels").begin_object();
      for (const auto& [k, v] : s.labels) w.member(k, v);
      w.end_object();
      switch (f.type) {
        case FamilySnapshot::Type::counter:
          w.member("value", s.counter_value);
          break;
        case FamilySnapshot::Type::gauge:
          w.member("value", s.gauge_value);
          break;
        case FamilySnapshot::Type::histogram:
          w.key("buckets").begin_array();
          for (std::uint64_t c : s.bucket_counts) w.value(c);
          w.end_array();
          w.member("count", s.hist_count);
          w.member("sum", s.hist_sum);
          break;
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

MetricsRegistry& metrics() {
  static MetricsRegistry reg;
  return reg;
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts, double q) {
  if (q < 0.0 || q > 1.0 || bounds.empty() || counts.size() != bounds.size() + 1)
    return std::nan("");
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return std::nan("");
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double prev = cum;
    cum += static_cast<double>(counts[i]);
    if (cum >= target && counts[i] > 0) {
      // Overflow bucket has no upper bound: clamp to the last finite bound.
      if (i == bounds.size()) return bounds.back();
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          counts[i] == 0 ? 0.0
                         : (target - prev) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds.back();
}

bool prometheus_validate(std::string_view text, std::string* error) {
  auto fail = [&](std::size_t line_no, const std::string& what) {
    if (error)
      *error = "prometheus line " + std::to_string(line_no) + ": " + what;
    return false;
  };
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# HELP name text" and "# TYPE name type" comments are checked.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(line_no, "TYPE missing type token");
        std::string_view t = rest.substr(sp + 1);
        if (t != "counter" && t != "gauge" && t != "histogram" &&
            t != "summary" && t != "untyped")
          return fail(line_no, "unknown TYPE '" + std::string(t) + "'");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t i = 0;
    auto name_char = [&](char c, bool first) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
             (!first && std::isdigit(static_cast<unsigned char>(c)));
    };
    if (i >= line.size() || !name_char(line[i], true))
      return fail(line_no, "bad metric name start");
    while (i < line.size() && name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      ++i;
      bool first_label = true;
      while (i < line.size() && line[i] != '}') {
        if (!first_label) {
          if (line[i] != ',') return fail(line_no, "expected ',' between labels");
          ++i;
        }
        first_label = false;
        if (i >= line.size() || !name_char(line[i], true))
          return fail(line_no, "bad label name");
        while (i < line.size() && name_char(line[i], false)) ++i;
        if (i >= line.size() || line[i] != '=')
          return fail(line_no, "expected '=' after label name");
        ++i;
        if (i >= line.size() || line[i] != '"')
          return fail(line_no, "expected '\"' to open label value");
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') ++i;  // escaped char
          ++i;
        }
        if (i >= line.size()) return fail(line_no, "unterminated label value");
        ++i;  // closing quote
      }
      if (i >= line.size()) return fail(line_no, "unterminated label block");
      ++i;  // '}'
    }
    if (i >= line.size() || line[i] != ' ')
      return fail(line_no, "expected space before value");
    ++i;
    std::string_view val = line.substr(i);
    if (val.empty()) return fail(line_no, "missing value");
    if (val != "NaN" && val != "+Inf" && val != "-Inf") {
      char* end = nullptr;
      std::string v(val);
      (void)std::strtod(v.c_str(), &end);
      if (end != v.c_str() + v.size())
        return fail(line_no, "unparseable value '" + v + "'");
    }
  }
  return true;
}

}  // namespace vmc::obs
