// Run manifest: one JSON document per run that answers "what exactly ran?"
//
// A figure or table measurement is only reproducible if the machine, build,
// SIMD configuration, seeds, injected-fault schedule, and convergence
// history that produced it travel with the number. The manifest bundles all
// of that plus a final metric snapshot into a single self-describing file
// (schema `vectormc.manifest.v1`) written next to the trace/metrics
// artifacts, and is what tools/vmc_obs_check cross-validates against the
// driver's own k-history.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vmc::obs {

class RunManifest {
 public:
  /// Captures the machine (SIMD ISA, vector width, hardware concurrency)
  /// and build (compiler, optimization/assert state) description plus a UTC
  /// timestamp at construction.
  RunManifest();

  RunManifest& set_run_kind(std::string_view kind);  // e.g. "offload_pipeline"
  RunManifest& set_seed(std::uint64_t seed);
  RunManifest& set_k_history(const std::vector<double>& k_history);

  /// Free-form extras (command-line echoes, scenario names, sizes, ...).
  RunManifest& set_extra(std::string_view key, std::string_view value);
  RunManifest& set_extra(std::string_view key, double value);

  /// Record per-fault-point hit/fire totals from src/resil. Call after the
  /// faulted section (counters survive disarm until the next arm()).
  RunManifest& capture_fault_summary();

  /// One modeled offload device's end-of-run health record (breaker state +
  /// cascade accounting). Plain strings/counts so obs stays independent of
  /// exec; the executor's PipelineRun::DeviceReport maps onto this 1:1.
  struct DeviceHealth {
    std::string device;          // e.g. "0: mic_7120a"
    std::string state;           // healthy | suspect | tripped | half_open
    std::uint64_t chunks_ok = 0;
    std::uint64_t chunks_failed = 0;
    std::uint64_t chunks_skipped = 0;
    std::uint64_t retries = 0;
    std::uint64_t trips = 0;
    std::uint64_t probes = 0;
    std::uint64_t steals_in = 0;
    std::uint64_t streams = 1;             // stream depth S the run drove
    std::uint64_t inflight_high_water = 0; // most chunks in flight at once
  };
  RunManifest& add_device_health(const DeviceHealth& d);

  /// One served job's end-of-run record (vmc_serve). Plain strings/numbers
  /// so obs stays independent of serve; the daemon maps its JobResult onto
  /// this 1:1 and vmc_obs_check --serve validates the resulting array.
  struct JobRecord {
    std::string job_id;
    std::string tenant;
    std::string status;          // done | rejected | failed
    std::uint64_t digest = 0;    // content-address of the cached library
    bool cache_hit = false;
    int resumes = 0;             // worker deaths survived via checkpoint
    double latency_seconds = 0;  // submit -> completion wall time
    double k_eff = 0;
  };
  RunManifest& add_job(const JobRecord& j);

  /// Embed a snapshot of the global metrics registry.
  RunManifest& capture_metrics();

  /// The manifest document (schema `vectormc.manifest.v1`).
  std::string json() const;

  /// json() to a file; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string timestamp_utc_;
  std::string run_kind_;
  bool has_seed_ = false;
  std::uint64_t seed_ = 0;
  std::vector<double> k_history_;
  std::vector<std::pair<std::string, std::string>> extra_strings_;
  std::vector<std::pair<std::string, double>> extra_numbers_;
  struct FaultSummary {
    std::string point;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  std::vector<FaultSummary> faults_;
  bool has_faults_ = false;
  std::vector<DeviceHealth> device_health_;
  std::vector<JobRecord> jobs_;
  std::string metrics_json_;  // pre-serialized snapshot, spliced raw
};

}  // namespace vmc::obs
