// Structured tracer: per-thread ring-buffered span/instant events exported
// as Chrome `trace_event` JSON (chrome://tracing, Perfetto).
//
// Hot-path design mirrors prof::Registry: each thread gets a ThreadBuf
// registered on first use (thread_local map keyed by tracer address, so
// multiple tracers — e.g. the global one plus a test-local one — coexist);
// recording a span is a bounds-check, a ring write, and no allocation after
// the ring warms up. Span/instant names and categories MUST be string
// literals (or otherwise outlive the tracer): events store `const char*`, not
// copies, which is what keeps a disabled-tracer check down to one relaxed
// atomic load and an enabled record to ~tens of ns.
//
// The injection API is the bridge to the exec::Machine device model: the
// offload/symmetric runtimes compute *modeled* transfer/compute durations for
// paper hardware (MIC-7120A etc.), and inject_span places those on a
// synthetic device process track (pid kDevicePid) next to the measured host
// track (pid kHostPid), so Perfetto renders measured host activity and
// simulated device activity on one timeline — the Fig. 4-style comparison
// view EXPERIMENTS.md documents.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vmc::obs {

class Tracer {
 public:
  /// Process ids used in the exported trace: measured host activity vs
  /// synthetic (cost-model) device activity.
  static constexpr int kHostPid = 0;
  static constexpr int kDevicePid = 1;

  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; when disabled every record call is one relaxed load.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Seconds since this tracer's epoch (monotonic, via prof::now_seconds).
  double now_s() const;

  /// Open/close a span on the calling thread's track. `name` and `cat` must
  /// be string literals (stored by pointer). Unbalanced ends are dropped.
  void begin(const char* name, const char* cat);
  void end();

  /// Zero-duration instant event on the calling thread's track.
  void instant(const char* name, const char* cat);

  /// RAII span: begins on construction if the tracer is enabled, ends on
  /// destruction. Captures enabledness at construction so an enable/disable
  /// flip mid-span cannot unbalance the ring.
  class Scope {
   public:
    Scope(Tracer& t, const char* name, const char* cat) : t_(t), armed_(t.enabled()) {
      if (armed_) t_.begin(name, cat);
    }
    ~Scope() {
      if (armed_) t_.end();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer& t_;
    bool armed_;
  };

  /// Injection API: place an event on an arbitrary (pid, tid) track with an
  /// explicit timestamp/duration in tracer seconds (now_s() clock). Strings
  /// are copied; `args_json` (optional) must be a complete JSON object and is
  /// embedded verbatim as the event's "args". Used for cost-model device
  /// tracks; also usable by tests.
  void inject_span(int pid, int tid, std::string_view name, std::string_view cat,
                   double ts_s, double dur_s, std::string_view args_json = {});
  void inject_instant(int pid, int tid, std::string_view name,
                      std::string_view cat, double ts_s);

  /// Track naming (Chrome metadata events).
  void set_process_name(int pid, std::string_view name);
  void set_thread_name(int pid, int tid, std::string_view name);

  /// Chrome trace_event JSON document ({"traceEvents": [...], ...}).
  /// Collects every thread's ring plus injected events, sorted by timestamp.
  std::string chrome_json() const;

  /// chrome_json() to a file; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  /// Drop all recorded and injected events (track names survive).
  void clear();

  /// Events overwritten because a thread ring filled (reported in the
  /// exported JSON so truncation is never silent).
  std::uint64_t dropped() const;

 private:
  struct Event {
    const char* name = nullptr;  // literal
    const char* cat = nullptr;   // literal
    double ts_us = 0.0;
    double dur_us = 0.0;
    char ph = 'X';  // 'X' complete, 'i' instant
  };
  struct Injected {
    std::string name, cat, args_json;
    int pid = 0, tid = 0;
    double ts_us = 0.0, dur_us = 0.0;
    char ph = 'X';
  };
  struct ThreadBuf;

  ThreadBuf& local();

  std::atomic<bool> enabled_{false};
  const std::uint64_t id_;  // never reused; keys the thread_local buf cache
  const std::size_t ring_cap_;
  const double epoch_s_;

  mutable std::mutex mu_;  // guards thread list, injected events, track names
  std::vector<ThreadBuf*> threads_;
  std::vector<Injected> injected_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::vector<std::pair<std::pair<int, int>, std::string>> thread_names_;
  int next_tid_ = 1;
};

/// Process-wide tracer used by the built-in instrumentation. Disabled by
/// default; drivers enable it (e.g. examples honour VMC_OBS_DIR).
Tracer& tracer();

}  // namespace vmc::obs
