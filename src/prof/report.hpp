// Profile reporting: TAU-style flat profiles and side-by-side comparison
// profiles (the format of the paper's Figure 4).
#pragma once

#include <iosfwd>
#include <string>

#include "prof/profiler.hpp"

namespace vmc::prof {

/// Print a flat profile sorted by exclusive time.
void print_profile(std::ostream& os, const Profile& p, int top_n = 20);

/// Print two profiles side by side with per-routine ratios, sorted by the
/// first profile's exclusive time. This is the Fig. 4 comparison view
/// ("Host CPU" vs. "MIC native"): for each routine, exclusive seconds on
/// each platform and the a/b ratio.
void print_comparison(std::ostream& os, const Profile& a, const Profile& b,
                      int top_n = 12);

/// Format seconds with an adaptive unit (ms below 1 s, etc.).
std::string format_seconds(double s);

}  // namespace vmc::prof
