#include "prof/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <shared_mutex>

namespace vmc::prof {

std::vector<std::pair<std::string, TimerStats>> Profile::by_exclusive() const {
  std::vector<std::pair<std::string, TimerStats>> v(timers.begin(),
                                                    timers.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second.exclusive_s > b.second.exclusive_s;
  });
  return v;
}

double Profile::total_exclusive() const {
  double t = 0.0;
  for (const auto& [name, st] : timers) t += st.exclusive_s;
  return t;
}

namespace {
constexpr int kMaxDepth = 64;

// Never-reused instance ids key the thread_local state cache: keying by
// `this` would hand a Registry constructed at a dead Registry's address the
// dead one's freed ThreadStates.
std::atomic<std::uint64_t> next_registry_id{1};
}  // namespace

struct Registry::ThreadState {
  struct Slot {
    std::uint64_t calls = 0;
    double inclusive_s = 0.0;
    double exclusive_s = 0.0;
  };
  struct Frame {
    int index;
    double t0;
    double child_s;
  };
  std::vector<Slot> slots;
  Frame stack[kMaxDepth];
  int depth = 0;
  std::mutex mu;  // protects slots growth vs. snapshot
};

Registry::Registry()
    : id_(next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() {
  std::lock_guard lk(mu_);
  for (ThreadState* t : threads_) delete t;
}

TimerHandle Registry::handle(const std::string& name) {
  {
    // Fast path: already-registered names (the steady state — transport code
    // calls handle() once per iteration per timer) need only a shared lock.
    std::shared_lock lk(mu_);
    auto it = name_to_index_.find(name);
    if (it != name_to_index_.end()) return TimerHandle{it->second};
  }
  std::lock_guard lk(mu_);
  auto [it, inserted] =
      name_to_index_.try_emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return TimerHandle{it->second};
}

Registry::ThreadState& Registry::local() {
  thread_local std::map<std::uint64_t, ThreadState*> per_registry;
  ThreadState*& ts = per_registry[id_];
  if (ts == nullptr) {
    ts = new ThreadState();
    std::lock_guard lk(mu_);
    threads_.push_back(ts);
  }
  return *ts;
}

void Registry::start(TimerHandle h) {
  ThreadState& ts = local();
  if (static_cast<std::size_t>(h.index) >= ts.slots.size()) {
    std::lock_guard lk(ts.mu);
    ts.slots.resize(static_cast<std::size_t>(h.index) + 1);
  }
  ts.stack[ts.depth++] = {h.index, now_seconds(), 0.0};
}

void Registry::stop(TimerHandle h) {
  ThreadState& ts = local();
  auto& frame = ts.stack[--ts.depth];
  (void)h;  // nesting discipline is the caller's contract
  const double dt = now_seconds() - frame.t0;
  auto& slot = ts.slots[static_cast<std::size_t>(frame.index)];
  slot.calls += 1;
  slot.inclusive_s += dt;
  slot.exclusive_s += dt - frame.child_s;
  if (ts.depth > 0) ts.stack[ts.depth - 1].child_s += dt;
}

void Registry::add_sample(TimerHandle h, double seconds, std::uint64_t calls) {
  ThreadState& ts = local();
  if (static_cast<std::size_t>(h.index) >= ts.slots.size()) {
    std::lock_guard lk(ts.mu);
    ts.slots.resize(static_cast<std::size_t>(h.index) + 1);
  }
  auto& slot = ts.slots[static_cast<std::size_t>(h.index)];
  slot.calls += calls;
  slot.inclusive_s += seconds;
  slot.exclusive_s += seconds;
}

Profile Registry::snapshot(const std::string& label) const {
  Profile p;
  p.label = label;
  std::shared_lock lk(mu_);  // keeps threads_/names_ stable; slots have own locks
  for (ThreadState* ts : threads_) {
    std::lock_guard tlk(ts->mu);
    for (std::size_t i = 0; i < ts->slots.size(); ++i) {
      const auto& slot = ts->slots[i];
      if (slot.calls == 0) continue;
      auto& agg = p.timers[names_[i]];
      agg.calls += slot.calls;
      agg.inclusive_s += slot.inclusive_s;
      agg.exclusive_s += slot.exclusive_s;
    }
  }
  return p;
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (ThreadState* ts : threads_) {
    std::lock_guard tlk(ts->mu);
    for (auto& slot : ts->slots) slot = {};
    ts->depth = 0;
  }
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace vmc::prof
