#include "prof/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

namespace vmc::prof {

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", s);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

void print_profile(std::ostream& os, const Profile& p, int top_n) {
  char buf[256];
  os << "=== Profile: " << p.label << " ===\n";
  std::snprintf(buf, sizeof(buf), "%-42s %12s %14s %14s\n", "routine", "calls",
                "exclusive", "inclusive");
  os << buf;
  int n = 0;
  for (const auto& [name, st] : p.by_exclusive()) {
    if (n++ >= top_n) break;
    std::snprintf(buf, sizeof(buf), "%-42s %12llu %14s %14s\n", name.c_str(),
                  static_cast<unsigned long long>(st.calls),
                  format_seconds(st.exclusive_s).c_str(),
                  format_seconds(st.inclusive_s).c_str());
    os << buf;
  }
}

void print_comparison(std::ostream& os, const Profile& a, const Profile& b,
                      int top_n) {
  char buf[256];
  os << "=== Comparison profile: [" << a.label << "] vs [" << b.label
     << "] (exclusive time) ===\n";
  std::snprintf(buf, sizeof(buf), "%-42s %14s %14s %9s\n", "routine",
                a.label.substr(0, 14).c_str(), b.label.substr(0, 14).c_str(),
                "ratio");
  os << buf;

  // Union of routine names, ordered by profile a's exclusive time.
  std::vector<std::pair<std::string, double>> order;
  std::set<std::string> seen;
  for (const auto& [name, st] : a.by_exclusive()) {
    order.emplace_back(name, st.exclusive_s);
    seen.insert(name);
  }
  for (const auto& [name, st] : b.timers) {
    if (!seen.count(name)) order.emplace_back(name, 0.0);
  }

  int n = 0;
  for (const auto& [name, unused] : order) {
    (void)unused;
    if (n++ >= top_n) break;
    const auto ita = a.timers.find(name);
    const auto itb = b.timers.find(name);
    const double ta = ita == a.timers.end() ? 0.0 : ita->second.exclusive_s;
    const double tb = itb == b.timers.end() ? 0.0 : itb->second.exclusive_s;
    const double ratio = tb > 0.0 ? ta / tb : 0.0;
    std::snprintf(buf, sizeof(buf), "%-42s %14s %14s %8.2fx\n", name.c_str(),
                  format_seconds(ta).c_str(), format_seconds(tb).c_str(),
                  ratio);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "%-42s %14s %14s\n", "TOTAL",
                format_seconds(a.total_exclusive()).c_str(),
                format_seconds(b.total_exclusive()).c_str());
  os << buf;
}

}  // namespace vmc::prof
