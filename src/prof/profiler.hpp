// Lightweight nested-timer profiler — VectorMC's stand-in for the TAU
// parallel performance system the paper instruments OpenMC with.
//
// Provides named timers with per-thread inclusive/exclusive accumulation
// (exclusive = inclusive minus time spent in nested child timers, the
// quantity TAU's comparison profiles display in Fig. 4), plus an injection
// API so device-model-simulated times can be recorded alongside measured
// wall-clock times.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace vmc::prof {

/// Aggregated statistics for one named timer.
struct TimerStats {
  std::uint64_t calls = 0;
  double inclusive_s = 0.0;
  double exclusive_s = 0.0;
};

/// A complete profile: timer name -> stats, plus a label for reports.
struct Profile {
  std::string label;
  std::map<std::string, TimerStats> timers;

  /// Timers sorted by descending exclusive time (TAU's default ordering).
  std::vector<std::pair<std::string, TimerStats>> by_exclusive() const;

  /// Total exclusive time across all timers.
  double total_exclusive() const;
};

/// Handle to a registered timer; cheap to copy, index into the registry.
struct TimerHandle {
  int index = -1;
};

/// Timer registry. Thread-safe registration; start/stop are per-thread and
/// lock-free on the hot path. One global instance (`registry()`) serves the
/// transport code; tests may create their own.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or look up) a timer by name. Read-mostly: a lookup of an
  /// already-registered name takes only a shared lock, so concurrent
  /// handle() calls from a pool of worker threads (the per-iteration pattern
  /// in core::EventTracker) don't serialize on the registry.
  TimerHandle handle(const std::string& name);

  /// Start/stop the timer on the calling thread. Must nest properly.
  void start(TimerHandle h);
  void stop(TimerHandle h);

  /// Record an externally computed duration (e.g. a device-model simulated
  /// time) as one call of timer `h`, with no nesting bookkeeping.
  void add_sample(TimerHandle h, double seconds, std::uint64_t calls = 1);

  /// Aggregate all threads' data into a Profile.
  Profile snapshot(const std::string& label) const;

  /// Zero all accumulated data (keeps registered names).
  void reset();

 private:
  struct ThreadState;
  ThreadState& local();

  const std::uint64_t id_;  // never reused; keys the thread_local state cache
  mutable std::shared_mutex mu_;
  std::vector<std::string> names_;
  std::map<std::string, int> name_to_index_;
  std::vector<ThreadState*> threads_;  // guarded by mu_
};

/// Process-wide registry used by the transport core.
Registry& registry();

/// RAII scope guard: times the enclosing scope under `h`.
class ScopedTimer {
 public:
  ScopedTimer(Registry& r, TimerHandle h) : r_(r), h_(h) { r_.start(h_); }
  explicit ScopedTimer(TimerHandle h) : ScopedTimer(registry(), h) {}
  ~ScopedTimer() { r_.stop(h_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& r_;
  TimerHandle h_;
};

/// Monotonic wall-clock seconds.
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace vmc::prof
