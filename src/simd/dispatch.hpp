// Runtime CPUID dispatch for the multi-ISA kernel backends.
//
// Selection order:
//   1. `force_isa()` (test/bench hook, e.g. the fig2 lane-width sweep and
//      the forced-ISA property fuzz) — must name a host-supported level;
//   2. the VMC_SIMD_ISA environment variable (scalar|sse2|avx2|avx512).
//      Requesting a level the host cannot execute is a HARD error (throws,
//      naming both the request and the host maximum): silently clamping
//      would let CI "pass" a backend it never ran;
//   3. otherwise the widest level CPUID reports (AVX-512 requires F+DQ,
//      matching the per-TU compile flags).
//
// The result only chooses which kernel TABLE the hot paths call through
// (src/xsdata/kernels.hpp); every table is always compiled in, so one binary
// serves every level.
#pragma once

#include "simd/backend.hpp"

namespace vmc::simd {

/// Widest level this host can execute (CPUID probe, cached).
IsaLevel host_max_isa();

/// Can this host execute `l`?
bool host_supports(IsaLevel l);

/// Parse a VMC_SIMD_ISA spelling ("sse2", ...). Returns false on unknown.
bool parse_isa_name(const char* s, IsaLevel& out);

/// The selected backend (force hook > env override > CPUID max). Throws
/// std::runtime_error on an invalid or host-unsupported VMC_SIMD_ISA value.
DispatchInfo dispatch();

/// Force a level for this process (overrides VMC_SIMD_ISA). Throws
/// std::runtime_error if the host cannot execute it. Thread-safe; used by
/// the lane-width sweeps and the forced-ISA fuzz to walk every dispatchable
/// level inside one process.
void force_isa(IsaLevel l);

/// Drop a force_isa() override; dispatch() falls back to env/CPUID.
void clear_forced_isa();

}  // namespace vmc::simd
