// Architecture width detection for the VectorMC portable SIMD layer.
//
// The paper's kernels target the Xeon Phi's 512-bit vector units via
// `_mm512_*` intrinsics. We select the widest vector unit the host offers at
// compile time and expose it as `native_bytes`; on an AVX-512 host the
// Algorithm-4 reproduction therefore runs with genuine 16-lane float vectors,
// exactly like the paper's `_m512` registers.
#pragma once

#include <cstddef>

namespace vmc::simd {

#if defined(__AVX512F__)
inline constexpr int native_bytes = 64;
inline constexpr const char* native_isa = "AVX-512";
#elif defined(__AVX2__)
inline constexpr int native_bytes = 32;
inline constexpr const char* native_isa = "AVX2";
#elif defined(__AVX__)
inline constexpr int native_bytes = 32;
inline constexpr const char* native_isa = "AVX";
#elif defined(__SSE2__) || defined(__x86_64__)
inline constexpr int native_bytes = 16;
inline constexpr const char* native_isa = "SSE2";
#else
inline constexpr int native_bytes = 8;
inline constexpr const char* native_isa = "scalar";
#endif

/// Number of lanes of element type T in the widest native vector register.
template <class T>
inline constexpr int native_lanes = native_bytes / static_cast<int>(sizeof(T));

/// Kernel-facing lane count. Stride loops, bank padding, and remainder math
/// outside src/simd/ must be sized with `width_v<T>` (or `Vec::width`), never
/// a literal lane count — enforced by vmc_lint (hardcoded-lane-width) so the
/// multi-ISA backends of ROADMAP item 1 can turn the width into a backend
/// template parameter without touching kernel call sites. Today it is simply
/// the native width.
template <class T>
inline constexpr int width_v = native_lanes<T>;

/// Cache line / ideal alignment in bytes (also the MIC's vector alignment,
/// which the paper aligns all key data structures to).
inline constexpr std::size_t cacheline_bytes = 64;

/// Round `n` down to a multiple of `step` (vector-loop trip count).
constexpr std::size_t round_down(std::size_t n, std::size_t step) {
  return n - n % step;
}

/// Round `n` up to a multiple of `step` (padded allocation size).
constexpr std::size_t round_up(std::size_t n, std::size_t step) {
  return (n + step - 1) / step * step;
}

}  // namespace vmc::simd
