// Architecture width detection for the VectorMC portable SIMD layer.
//
// The paper's kernels target the Xeon Phi's 512-bit vector units via
// `_mm512_*` intrinsics. We select the widest vector unit the host offers at
// compile time and expose it as `native_bytes`; on an AVX-512 host the
// Algorithm-4 reproduction therefore runs with genuine 16-lane float vectors,
// exactly like the paper's `_m512` registers.
//
// Multi-ISA backends: a translation unit may pin the width instead of
// detecting it by defining `VMC_SIMD_LEVEL` (0 = scalar oracle, one lane of
// every type; 1 = SSE2/128-bit; 2 = AVX2/256-bit; 3 = AVX-512/512-bit). The
// per-ISA hot-kernel TUs in src/xsdata use this together with per-TU `-m`
// flags so one binary carries every backend and selects one at runtime
// (src/simd/dispatch.hpp).
//
// ODR shield: every ISA-dependent entity in this layer (`native_bytes`,
// `width_v`, `Vec`, `Mask`, `vlog`, ...) lives inside the `VMC_SIMD_ABI`
// inline namespace, whose name encodes the selected width AND whether the TU
// is a per-ISA kernel TU (which additionally compiles with
// -ffp-contract=off). Without the tag, identical template instantiations
// compiled under different `-m` flags would be merged by the linker and a
// narrow-ISA call path could end up executing wide-ISA code — an instant
// SIGILL on hosts without that ISA. With the tag, each flag combination
// mangles distinctly and never cross-links. Width-independent helpers
// (`cacheline_bytes`, `round_up`, `aligned_vector`) stay OUTSIDE the tag:
// they participate in shared data-structure layouts and must be one entity
// program-wide.
#pragma once

#include <cstddef>

#define VMC_SIMD_PP_CAT2(a, b) a##b
#define VMC_SIMD_PP_CAT(a, b) VMC_SIMD_PP_CAT2(a, b)

#if defined(VMC_SIMD_KERNEL_TU)
#define VMC_SIMD_ABI_TAIL k
#else
#define VMC_SIMD_ABI_TAIL n
#endif

#if defined(VMC_SIMD_LEVEL)
#if VMC_SIMD_LEVEL == 0
#define VMC_SIMD_FORCE_SCALAR 1
#define VMC_SIMD_ABI_BASE abi_s1_
#elif VMC_SIMD_LEVEL == 1
#define VMC_SIMD_BYTES 16
#define VMC_SIMD_ISA_NAME "SSE2"
#define VMC_SIMD_ABI_BASE abi_b16_
#elif VMC_SIMD_LEVEL == 2
#define VMC_SIMD_BYTES 32
#define VMC_SIMD_ISA_NAME "AVX2"
#define VMC_SIMD_ABI_BASE abi_b32_
#elif VMC_SIMD_LEVEL == 3
#define VMC_SIMD_BYTES 64
#define VMC_SIMD_ISA_NAME "AVX-512"
#define VMC_SIMD_ABI_BASE abi_b64_
#else
#error "VMC_SIMD_LEVEL must be 0 (scalar), 1 (SSE2), 2 (AVX2) or 3 (AVX-512)"
#endif
#elif defined(__AVX512F__)
#define VMC_SIMD_BYTES 64
#define VMC_SIMD_ISA_NAME "AVX-512"
#define VMC_SIMD_ABI_BASE abi_b64_
#elif defined(__AVX2__)
#define VMC_SIMD_BYTES 32
#define VMC_SIMD_ISA_NAME "AVX2"
#define VMC_SIMD_ABI_BASE abi_b32_
#elif defined(__AVX__)
#define VMC_SIMD_BYTES 32
#define VMC_SIMD_ISA_NAME "AVX"
#define VMC_SIMD_ABI_BASE abi_b32_
#elif defined(__SSE2__) || defined(__x86_64__)
#define VMC_SIMD_BYTES 16
#define VMC_SIMD_ISA_NAME "SSE2"
#define VMC_SIMD_ABI_BASE abi_b16_
#else
#define VMC_SIMD_BYTES 8
#define VMC_SIMD_ISA_NAME "scalar"
#define VMC_SIMD_ABI_BASE abi_b8_
#endif

#define VMC_SIMD_ABI VMC_SIMD_PP_CAT(VMC_SIMD_ABI_BASE, VMC_SIMD_ABI_TAIL)

namespace vmc::simd {

/// Cache line / ideal alignment in bytes (also the MIC's vector alignment,
/// which the paper aligns all key data structures to). Width-independent:
/// shared data-structure layouts depend on it, so it must stay outside the
/// ABI tag.
inline constexpr std::size_t cacheline_bytes = 64;

/// Round `n` down to a multiple of `step` (vector-loop trip count).
constexpr std::size_t round_down(std::size_t n, std::size_t step) {
  return n - n % step;
}

/// Round `n` up to a multiple of `step` (padded allocation size).
constexpr std::size_t round_up(std::size_t n, std::size_t step) {
  return (n + step - 1) / step * step;
}

inline namespace VMC_SIMD_ABI {

#if defined(VMC_SIMD_FORCE_SCALAR)
// Scalar oracle backend: one lane of EVERY element type. This is the
// reference the property-fuzz suites compare every wider backend against
// bit-for-bit, so it must express "width 1", not "8-byte registers".
inline constexpr int native_bytes = 8;
inline constexpr const char* native_isa = "scalar";

template <class T>
inline constexpr int native_lanes = 1;
#else
inline constexpr int native_bytes = VMC_SIMD_BYTES;
inline constexpr const char* native_isa = VMC_SIMD_ISA_NAME;

/// Number of lanes of element type T in the widest native vector register.
template <class T>
inline constexpr int native_lanes = native_bytes / static_cast<int>(sizeof(T));
#endif

/// Kernel-facing lane count. Stride loops, bank padding, and remainder math
/// outside src/simd/ must be sized with `width_v<T>` (or `Vec::width`), never
/// a literal lane count — enforced by vmc_lint (hardcoded-lane-width) so the
/// multi-ISA kernel TUs can pin the width per backend without touching
/// kernel call sites.
template <class T>
inline constexpr int width_v = native_lanes<T>;

}  // inline namespace VMC_SIMD_ABI

}  // namespace vmc::simd
