// 64-byte-aligned allocation helpers.
//
// The paper reports that forcing key data structures onto 64-byte boundaries
// (`_mm_malloc` in Algorithm 4, plus "alignment of key data structures was
// forced to lie on 64-byte boundaries" in the full-physics port) was one of
// the load-bearing optimizations on the MIC. `aligned_vector<T>` is the
// standard-C++ equivalent.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

#include "simd/width.hpp"

namespace vmc::simd {

/// Minimal standard-conforming allocator returning storage aligned to
/// `Align` bytes (default: one cache line, which is also the widest vector
/// register on AVX-512 and the MIC).
template <class T, std::size_t Align = cacheline_bytes>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T), "alignment weaker than natural");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_array_new_length();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned — the SoA particle banks and
/// cross-section grids all use this.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace vmc::simd
