// ISA backend identities for the multi-ISA kernel family.
//
// One VectorMC binary carries the hot kernels (the six lookup kernels,
// HashGrid::find_banked, and the EventQueues distance stage) compiled once
// per ISA level in separately-flagged translation units. This header names
// those levels; src/simd/dispatch.hpp selects one at runtime via CPUID (with
// a VMC_SIMD_ISA env override), and src/xsdata/kernels.hpp holds the
// function tables the selected level routes through.
//
// Level 0 (`scalar`) is the oracle: every wider backend must produce
// bitwise-identical k-eff, tallies, and lookup results against it
// (tests/property/test_isa_dispatch_fuzz.cpp).
#pragma once

#include <cstdint>

namespace vmc::simd {

/// Runtime-dispatchable backend levels, ordered by width. The numeric values
/// are load-bearing: they index the per-level kernel tables and match the
/// VMC_SIMD_LEVEL macro the per-ISA TUs are compiled with.
enum class IsaLevel : std::uint8_t {
  scalar = 0,  ///< 1 lane of every type; the bit-exactness oracle
  sse2 = 1,    ///< 128-bit (x86-64 baseline)
  avx2 = 2,    ///< 256-bit, hardware gathers
  avx512 = 3,  ///< 512-bit (F+DQ), the paper's MIC register width
};

inline constexpr int kNumIsaLevels = 4;

/// What the dispatcher selected (or was forced to).
struct DispatchInfo {
  IsaLevel isa = IsaLevel::scalar;
  const char* name = "scalar";      ///< display name ("AVX2", ...)
  const char* env_name = "scalar";  ///< VMC_SIMD_ISA spelling ("avx2", ...)
  int simd_bits = 64;               ///< vector register width of the backend
  int lanes_f32 = 1;                ///< float lanes at that width
  int lanes_f64 = 1;                ///< double lanes at that width
};

/// Display name, e.g. "AVX-512" — matches the strings the compile-time
/// `native_isa` constant uses, so manifests stay comparable.
const char* isa_display_name(IsaLevel l);

/// Environment-variable spelling, e.g. "avx512" (the VMC_SIMD_ISA values).
const char* isa_env_name(IsaLevel l);

/// Vector register width in bits for a level (scalar reports 64).
int isa_simd_bits(IsaLevel l);

/// Fully-populated DispatchInfo for a level.
DispatchInfo isa_info(IsaLevel l);

}  // namespace vmc::simd
