// Portable fixed-width SIMD vector type built on GCC/Clang vector extensions.
//
// This is VectorMC's substitute for the Intel `_mm512_*` intrinsics used in
// the paper's Algorithm 4. `Vec<float, 16>` on an AVX-512 host compiles to
// the same 512-bit registers and instructions (vmovaps/vmulps/...) the paper
// hand-coded, while the identical source also builds for AVX2 (8 lanes) or
// plain scalar hardware. Only this header touches compiler extensions; all
// kernels use the typed API.
//
// Everything in this header lives inside the `VMC_SIMD_ABI` inline namespace
// (see simd/width.hpp): the per-ISA kernel TUs instantiate these templates
// under different `-m` flags, and the ABI tag keeps those instantiations
// from ever being merged across translation units.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "simd/width.hpp"

namespace vmc::simd {

namespace detail {
template <class T>
struct IntFor;
template <>
struct IntFor<float> {
  using type = std::int32_t;
};
template <>
struct IntFor<double> {
  using type = std::int64_t;
};
template <>
struct IntFor<std::int32_t> {
  using type = std::int32_t;
};
template <>
struct IntFor<std::int64_t> {
  using type = std::int64_t;
};
}  // namespace detail

inline namespace VMC_SIMD_ABI {

template <class T, int N>
struct Vec;

/// Lane-wise boolean mask produced by comparisons; each lane is all-ones
/// (true) or zero, matching the hardware comparison result convention.
template <class T, int N>
struct Mask {
  using int_type = typename detail::IntFor<T>::type;
  using native_type
      __attribute__((vector_size(N * sizeof(T)))) = int_type;

  native_type m;

  /// True lane?
  bool operator[](int i) const { return m[i] != 0; }

  friend Mask operator&(Mask a, Mask b) { return {a.m & b.m}; }
  friend Mask operator|(Mask a, Mask b) { return {a.m | b.m}; }
  friend Mask operator^(Mask a, Mask b) { return {a.m ^ b.m}; }
  Mask operator!() const { return {~m}; }

  /// Any lane true.
  bool any() const {
    for (int i = 0; i < N; ++i) {
      if (m[i] != 0) return true;
    }
    return false;
  }
  /// All lanes true.
  bool all() const {
    for (int i = 0; i < N; ++i) {
      if (m[i] == 0) return false;
    }
    return true;
  }
  /// Number of true lanes (used by the bank compaction kernels).
  int count() const {
    int c = 0;
    for (int i = 0; i < N; ++i) c += (m[i] != 0);
    return c;
  }

  /// Re-type the mask lane-wise (e.g. a double comparison driving an int32
  /// index blend). Lanes stay all-ones/all-zero across the width change.
  template <class U>
  Mask<U, N> convert() const {
    return {__builtin_convertvector(m, typename Mask<U, N>::native_type)};
  }

  static Mask none() { return {native_type{} != native_type{}}; }
};

template <class T, int N>
struct Vec {
  static_assert(std::is_arithmetic_v<T>);
  static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be 2^k");

  using value_type = T;
  using mask_type = Mask<T, N>;
  using native_type __attribute__((vector_size(N * sizeof(T)))) = T;
  using int_type = typename detail::IntFor<T>::type;
  using native_int __attribute__((vector_size(N * sizeof(T)))) = int_type;

  static constexpr int lanes = N;
  /// Portable spelling of the lane count for kernel code. Kernels must size
  /// stride loops and remainder math with `Vec::width` or `simd::width_v<T>`
  /// (vmc_lint rule hardcoded-lane-width), never a literal, so lane width
  /// can stay a per-backend constant without touching call sites.
  static constexpr int width = N;

  native_type v;

  Vec() = default;
  /// Broadcast a scalar to all lanes.
  Vec(T scalar) : v(native_type{} + scalar) {}  // NOLINT(google-explicit-constructor)
  /// Wrap a native vector register. A factory rather than a constructor so
  /// it cannot collide with the scalar-broadcast constructor under GCC's
  /// dependent vector-attribute handling.
  static Vec from(native_type n) {
    Vec r;
    r.v = n;
    return r;
  }

  T operator[](int i) const { return v[i]; }
  void set(int i, T x) { v[i] = x; }

  // --- memory ---------------------------------------------------------

  /// Load N contiguous elements from a 64-byte-aligned address.
  static Vec load(const T* p) {
    return from(*reinterpret_cast<const native_type*>(
        __builtin_assume_aligned(p, cacheline_bytes)));
  }
  /// Load N contiguous elements from an arbitrary address.
  static Vec loadu(const T* p) {
    native_type n;
    std::memcpy(&n, p, sizeof(n));
    return from(n);
  }
  /// Store to a 64-byte-aligned address.
  void store(T* p) const {
    *reinterpret_cast<native_type*>(
        __builtin_assume_aligned(p, cacheline_bytes)) = v;
  }
  /// Store to an arbitrary address.
  void storeu(T* p) const { std::memcpy(p, &v, sizeof(v)); }

  /// Masked remainder load: the first `k` lanes from `p`, the rest `fill`.
  /// `fill` must keep the inactive lanes arithmetically harmless (e.g. 1.0
  /// ahead of a log or a divide) — the vector kernels evaluate all lanes.
  static Vec load_partial(const T* p, int k, T fill = T{}) {
    Vec r(fill);
    if (k > 0) std::memcpy(&r.v, p, static_cast<std::size_t>(k) * sizeof(T));
    return r;
  }
  /// Masked remainder store: only the first `k` lanes reach memory.
  void store_partial(T* p, int k) const {
    if (k > 0) std::memcpy(p, &v, static_cast<std::size_t>(k) * sizeof(T));
  }

  /// {start, start+step, start+2*step, ...} — loop-index vectors.
  static Vec iota(T start = T{0}, T step = T{1}) {
    Vec r;
    for (int i = 0; i < N; ++i) r.v[i] = start + step * static_cast<T>(i);
    return r;
  }

  /// Gather base[idx[i]] for each lane. On AVX2/AVX-512 the compiler is free
  /// to emit vgather; the cross-section lookup kernels are built on this.
  template <class I>
  static Vec gather(const T* base, const I* idx) {
    Vec r;
    for (int i = 0; i < N; ++i) r.v[i] = base[idx[i]];
    return r;
  }
  template <class I, int M>
  static Vec gather(const T* base, Vec<I, M> idx) {
    static_assert(M == N);
    // Hardware gather where available: GCC does not turn the scalar lane
    // loop into vgather on its own, and the banked lookup kernel's speedup
    // over the scalar path depends on the gather overlapping many cache
    // misses at once (the effect the paper exploits on the MIC). The AVX-512
    // and AVX2 blocks chain (AVX-512 implies AVX2): a 512-bit backend still
    // uses the 256/128-bit gathers for its narrower index vectors (e.g. the
    // 8-lane double search tiles of HashGrid::find_banked).
#if defined(__AVX512F__)
    // GCC's _mm512_i32gather_* seed their destination with
    // _mm512_undefined_*(), which trips -Wmaybe-uninitialized at every
    // inlined call site even though the gather overwrites all lanes.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    if constexpr (std::is_same_v<T, float> && N == 16 &&
                  std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m512i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m512 g = _mm512_i32gather_ps(vi, base, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, double> && N == 8 &&
                         std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m256i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m512d g = _mm512_i32gather_pd(vi, base, 8);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, std::int32_t> && N == 16 &&
                         std::is_same_v<I, std::int32_t>) {
      // int32 gather: the imap rows and hash-grid bucket tables.
      Vec r;
      __m512i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m512i g = _mm512_i32gather_epi32(vi, base, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else
#endif
#if defined(__AVX2__)
    if constexpr (std::is_same_v<T, float> && N == 8 &&
                  std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m256i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m256 g = _mm256_i32gather_ps(base, vi, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, double> && N == 4 &&
                         std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m128i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m256d g = _mm256_i32gather_pd(base, vi, 8);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, std::int32_t> && N == 8 &&
                         std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m256i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m256i g =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), vi, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, float> && N == 4 &&
                         std::is_same_v<I, std::int32_t>) {
      // 128-bit gathers: the AVX2 backend's 4-lane double search tiles
      // carry 4-lane int32 index/float payload companions.
      Vec r;
      __m128i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m128 g = _mm_i32gather_ps(base, vi, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else if constexpr (std::is_same_v<T, std::int32_t> && N == 4 &&
                         std::is_same_v<I, std::int32_t>) {
      Vec r;
      __m128i vi;
      std::memcpy(&vi, &idx.v, sizeof(vi));
      const __m128i g =
          _mm_i32gather_epi32(reinterpret_cast<const int*>(base), vi, 4);
      std::memcpy(&r.v, &g, sizeof(r.v));
      return r;
    } else
#endif
    {
      Vec r;
      for (int i = 0; i < N; ++i) {
        r.v[i] = base[static_cast<std::size_t>(idx[i])];
      }
      return r;
    }
#if defined(__AVX512F__)
#pragma GCC diagnostic pop
#endif
  }

  // --- arithmetic ------------------------------------------------------

  friend Vec operator+(Vec a, Vec b) { return from(a.v + b.v); }
  friend Vec operator-(Vec a, Vec b) { return from(a.v - b.v); }
  friend Vec operator*(Vec a, Vec b) { return from(a.v * b.v); }
  friend Vec operator/(Vec a, Vec b) { return from(a.v / b.v); }
  Vec operator-() const { return from(-v); }

  Vec& operator+=(Vec b) {
    v += b.v;
    return *this;
  }
  Vec& operator-=(Vec b) {
    v -= b.v;
    return *this;
  }
  Vec& operator*=(Vec b) {
    v *= b.v;
    return *this;
  }
  Vec& operator/=(Vec b) {
    v /= b.v;
    return *this;
  }

  // --- integer shifts --------------------------------------------------

  friend Vec operator>>(Vec a, int s) {
    static_assert(std::is_integral_v<T>, "shift requires integer lanes");
    return from(a.v >> s);
  }
  friend Vec operator<<(Vec a, int s) {
    static_assert(std::is_integral_v<T>, "shift requires integer lanes");
    return from(a.v << s);
  }

  /// Lane-wise value conversion (C cast semantics per lane: float->int
  /// truncates toward zero, int->float rounds to nearest).
  template <class U>
  Vec<U, N> convert() const {
    Vec<U, N> r;
    r.v = __builtin_convertvector(v, typename Vec<U, N>::native_type);
    return r;
  }

  // --- comparisons -----------------------------------------------------

  friend mask_type operator<(Vec a, Vec b) { return {a.v < b.v}; }
  friend mask_type operator<=(Vec a, Vec b) { return {a.v <= b.v}; }
  friend mask_type operator>(Vec a, Vec b) { return {a.v > b.v}; }
  friend mask_type operator>=(Vec a, Vec b) { return {a.v >= b.v}; }
  friend mask_type operator==(Vec a, Vec b) { return {a.v == b.v}; }
  friend mask_type operator!=(Vec a, Vec b) { return {a.v != b.v}; }

  // --- bit casts -------------------------------------------------------

  /// Reinterpret the lane bits as the same-width signed integer vector.
  Vec<int_type, N> bitcast_int() const {
    Vec<int_type, N> r;
    std::memcpy(&r.v, &v, sizeof(v));
    return r;
  }
  /// Reinterpret same-width integer lanes as this floating type.
  static Vec bitcast_from(Vec<int_type, N> b) {
    Vec r;
    std::memcpy(&r.v, &b.v, sizeof(b.v));
    return r;
  }

  // --- horizontal reductions -------------------------------------------

  T hsum() const {
    T s{0};
    for (int i = 0; i < N; ++i) s += v[i];
    return s;
  }
  T hmin() const {
    T s = v[0];
    for (int i = 1; i < N; ++i) s = v[i] < s ? v[i] : s;
    return s;
  }
  T hmax() const {
    T s = v[0];
    for (int i = 1; i < N; ++i) s = v[i] > s ? v[i] : s;
    return s;
  }
};

/// Lane-wise blend: mask ? a : b (the vector-predication primitive that
/// replaces the branchy scalar code when vectorizing S(α,β)/URR-style logic).
template <class T, int N>
Vec<T, N> select(Mask<T, N> m, Vec<T, N> a, Vec<T, N> b) {
  return Vec<T, N>::from(m.m ? a.v : b.v);
}

template <class T, int N>
Vec<T, N> min(Vec<T, N> a, Vec<T, N> b) {
  return select(a < b, a, b);
}

template <class T, int N>
Vec<T, N> max(Vec<T, N> a, Vec<T, N> b) {
  return select(a > b, a, b);
}

template <class T, int N>
Vec<T, N> abs(Vec<T, N> a) {
  return select(a < Vec<T, N>(T{0}), -a, a);
}

/// Multiply-add a*b + c. Written as plain vector ops so it stays a single
/// vmul+vadd (or one vfmadd under -ffp-contract=fast, which the base build
/// enables): a per-lane std::fma loop would decay to scalar libm calls.
/// The per-ISA kernel TUs compile with -ffp-contract=off instead, so every
/// backend evaluates mul-then-add — the bitwise-identity contract across
/// lane widths requires one rounding behaviour everywhere, and SSE2 has no
/// FMA instruction to fuse with.
template <class T, int N>
Vec<T, N> fma(Vec<T, N> a, Vec<T, N> b, Vec<T, N> c) {
  return Vec<T, N>::from(a.v * b.v + c.v);
}

template <class T, int N>
Vec<T, N> sqrt(Vec<T, N> a) {
  Vec<T, N> r;
  for (int i = 0; i < N; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}

/// Natural-width aliases: on an AVX-512 host build vfloat is 16 lanes,
/// matching the paper's `_m512` register of "16 floating point elements".
using vfloat = Vec<float, native_lanes<float>>;
using vdouble = Vec<double, native_lanes<double>>;
using vint32 = Vec<std::int32_t, native_lanes<std::int32_t>>;
using vint64 = Vec<std::int64_t, native_lanes<std::int64_t>>;

}  // inline namespace VMC_SIMD_ABI

}  // namespace vmc::simd
