// Umbrella header for the VectorMC portable SIMD layer.
#pragma once

#include "simd/aligned.hpp"  // IWYU pragma: export
#include "simd/math.hpp"     // IWYU pragma: export
#include "simd/vec.hpp"      // IWYU pragma: export
#include "simd/width.hpp"    // IWYU pragma: export

namespace vmc::simd {

/// Human-readable name of the instruction set the library was compiled for
/// ("AVX-512", "AVX2", ...). Reported by every benchmark header.
const char* isa_name();

/// Vector width in bits the `vfloat`/`vdouble` aliases use.
int native_bits();

}  // namespace vmc::simd
