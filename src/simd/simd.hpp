// Umbrella header for the VectorMC portable SIMD layer.
#pragma once

#include "simd/aligned.hpp"   // IWYU pragma: export
#include "simd/backend.hpp"   // IWYU pragma: export
#include "simd/dispatch.hpp"  // IWYU pragma: export
#include "simd/math.hpp"      // IWYU pragma: export
#include "simd/vec.hpp"       // IWYU pragma: export
#include "simd/width.hpp"     // IWYU pragma: export

namespace vmc::simd {

/// Human-readable name of the instruction set THIS translation unit's
/// `vfloat`/`vdouble` aliases compile to. For the backend the hot kernels
/// actually execute (the runtime-dispatched level, which is what manifests
/// and bench reports must carry), use `dispatch().name` instead.
const char* isa_name();

/// Vector width in bits the `vfloat`/`vdouble` aliases use at compile time.
/// The dispatched counterpart is `dispatch().simd_bits`.
int native_bits();

}  // namespace vmc::simd
