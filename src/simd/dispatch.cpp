#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vmc::simd {

namespace {

struct LevelMeta {
  const char* display;
  const char* env;
  int bits;
  int lanes_f32;
  int lanes_f64;
};

// Indexed by IsaLevel value. Display names match the compile-time
// `native_isa` strings so manifests and metrics labels stay comparable.
constexpr LevelMeta kLevels[kNumIsaLevels] = {
    {"scalar", "scalar", 64, 1, 1},
    {"SSE2", "sse2", 128, 4, 2},
    {"AVX2", "avx2", 256, 8, 4},
    {"AVX-512", "avx512", 512, 16, 8},
};

IsaLevel probe_host_max() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX-512 needs F+DQ: the avx512 kernel TU compiles with
  // -mavx512f -mavx512dq, so both must execute.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return IsaLevel::avx512;
  }
  if (__builtin_cpu_supports("avx2")) return IsaLevel::avx2;
  return IsaLevel::sse2;  // x86-64 baseline
#else
  return IsaLevel::scalar;
#endif
}

/// Env-resolved default level. Parsed once; a bad value throws on EVERY
/// dispatch() call (hard startup error, not a one-shot warning).
IsaLevel env_default() {
  static const IsaLevel l = [] {
    const char* env = std::getenv("VMC_SIMD_ISA");
    if (env == nullptr || env[0] == '\0') return host_max_isa();
    IsaLevel req;
    if (!parse_isa_name(env, req)) {
      throw std::runtime_error(
          std::string("VMC_SIMD_ISA=") + env +
          " is not a backend level (valid: scalar, sse2, avx2, avx512)");
    }
    if (!host_supports(req)) {
      throw std::runtime_error(
          std::string("VMC_SIMD_ISA=") + env + " requests the " +
          isa_display_name(req) +
          " backend, but this host only supports up to " +
          isa_display_name(host_max_isa()) +
          " — refusing to run (unset VMC_SIMD_ISA or pick a supported "
          "level)");
    }
    return req;
  }();
  return l;
}

// force_isa() override; -1 = none. Relaxed is enough: callers that force a
// level and then run kernels do so from one thread or with their own
// synchronization (the fuzz harness runs levels sequentially).
std::atomic<int> g_forced{-1};

}  // namespace

const char* isa_display_name(IsaLevel l) {
  return kLevels[static_cast<int>(l)].display;
}

const char* isa_env_name(IsaLevel l) {
  return kLevels[static_cast<int>(l)].env;
}

int isa_simd_bits(IsaLevel l) { return kLevels[static_cast<int>(l)].bits; }

DispatchInfo isa_info(IsaLevel l) {
  const LevelMeta& m = kLevels[static_cast<int>(l)];
  return DispatchInfo{l, m.display, m.env, m.bits, m.lanes_f32, m.lanes_f64};
}

IsaLevel host_max_isa() {
  static const IsaLevel l = probe_host_max();
  return l;
}

bool host_supports(IsaLevel l) {
  return static_cast<int>(l) <= static_cast<int>(host_max_isa());
}

bool parse_isa_name(const char* s, IsaLevel& out) {
  const std::string v(s == nullptr ? "" : s);
  for (int i = 0; i < kNumIsaLevels; ++i) {
    if (v == kLevels[i].env) {
      out = static_cast<IsaLevel>(i);
      return true;
    }
  }
  return false;
}

DispatchInfo dispatch() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return isa_info(static_cast<IsaLevel>(forced));
  return isa_info(env_default());
}

void force_isa(IsaLevel l) {
  if (!host_supports(l)) {
    throw std::runtime_error(
        std::string("force_isa(") + isa_display_name(l) +
        "): host only supports up to " + isa_display_name(host_max_isa()));
  }
  g_forced.store(static_cast<int>(l), std::memory_order_relaxed);
}

void clear_forced_isa() { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace vmc::simd
