// Vectorized transcendental functions (log, exp) for Vec<float,N> and
// Vec<double,N>.
//
// The paper's optimized distance-sampling kernel (Algorithm 4) relies on
// Intel's SVML `_mm512_log_ps`; that library is ICC-only, so VectorMC ships
// its own lane-parallel implementations using the classic Cephes polynomial /
// rational approximations. Accuracy targets (validated in
// tests/simd/test_math.cpp): float ≤ 4 ulp, double ≤ 2e-15 relative over the
// full finite range, which comfortably exceeds what Monte Carlo distance
// sampling needs.
#pragma once

#include <cstdint>
#include <limits>

#include "simd/vec.hpp"

namespace vmc::simd {

inline namespace VMC_SIMD_ABI {

/// Natural logarithm, lane-wise, single precision.
/// log(0) = -inf, log(x<0) = NaN, log(inf) = inf. Denormal inputs are
/// treated as zero (flush-to-zero, matching MIC behaviour).
template <int N>
Vec<float, N> vlog(Vec<float, N> x) {
  using VF = Vec<float, N>;
  using VI = Vec<std::int32_t, N>;

  const VI ix = x.bitcast_int();
  // Exponent such that mantissa lies in [0.5, 1).
  auto e_bits = ((ix.v >> 23) & 0xff) - 126;
  auto m_bits = (ix.v & 0x007fffff) | 0x3f000000;
  VF m = VF::bitcast_from(VI::from(typename VI::native_type(m_bits)));
  VF e = VF::from(__builtin_convertvector(e_bits, typename VF::native_type));

  // Re-center mantissa to [sqrt(1/2), sqrt(2)).
  const auto lt = m < VF(0.707106781186547524f);
  e = select(lt, e - VF(1.0f), e);
  VF t = select(lt, m + m - VF(1.0f), m - VF(1.0f));

  const VF z = t * t;
  VF y(7.0376836292e-2f);
  y = fma(y, t, VF(-1.1514610310e-1f));
  y = fma(y, t, VF(1.1676998740e-1f));
  y = fma(y, t, VF(-1.2420140846e-1f));
  y = fma(y, t, VF(1.4249322787e-1f));
  y = fma(y, t, VF(-1.6668057665e-1f));
  y = fma(y, t, VF(2.0000714765e-1f));
  y = fma(y, t, VF(-2.4999993993e-1f));
  y = fma(y, t, VF(3.3333331174e-1f));
  y = y * t * z;
  y = fma(e, VF(-2.12194440e-4f), y);
  y = fma(VF(-0.5f), z, y);
  VF r = t + y;
  r = fma(e, VF(0.693359375f), r);

  // Edge cases.
  const VF inf(std::numeric_limits<float>::infinity());
  const VF nan(std::numeric_limits<float>::quiet_NaN());
  r = select(x == VF(0.0f), -inf, r);
  r = select(x < VF(0.0f), nan, r);
  r = select(x == inf, inf, r);
  return r;
}

/// Natural logarithm, lane-wise, double precision (atanh-series kernel).
template <int N>
Vec<double, N> vlog(Vec<double, N> x) {
  using VD = Vec<double, N>;
  using VI = Vec<std::int64_t, N>;

  const VI ix = x.bitcast_int();
  auto e_bits = ((ix.v >> 52) & 0x7ff) - 1022;
  auto m_bits =
      (ix.v & 0x000fffffffffffffLL) | 0x3fe0000000000000LL;
  VD m = VD::bitcast_from(VI::from(typename VI::native_type(m_bits)));
  VD e = VD::from(__builtin_convertvector(e_bits, typename VD::native_type));

  const auto lt = m < VD(0.70710678118654752440);
  e = select(lt, e - VD(1.0), e);
  m = select(lt, m + m, m);  // m in [sqrt(1/2), sqrt(2))

  // log(m) = 2 atanh(t), t = (m-1)/(m+1), |t| <= 0.1716.
  const VD t = (m - VD(1.0)) / (m + VD(1.0));
  const VD s = t * t;
  VD p(1.0 / 21.0);
  p = fma(p, s, VD(1.0 / 19.0));
  p = fma(p, s, VD(1.0 / 17.0));
  p = fma(p, s, VD(1.0 / 15.0));
  p = fma(p, s, VD(1.0 / 13.0));
  p = fma(p, s, VD(1.0 / 11.0));
  p = fma(p, s, VD(1.0 / 9.0));
  p = fma(p, s, VD(1.0 / 7.0));
  p = fma(p, s, VD(1.0 / 5.0));
  p = fma(p, s, VD(1.0 / 3.0));
  p = fma(p, s, VD(1.0));
  const VD log_m = VD(2.0) * t * p;

  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  VD r = fma(e, VD(kLn2Lo), log_m);
  r = fma(e, VD(kLn2Hi), r);

  const VD inf(std::numeric_limits<double>::infinity());
  const VD nan(std::numeric_limits<double>::quiet_NaN());
  r = select(x == VD(0.0), -inf, r);
  r = select(x < VD(0.0), nan, r);
  r = select(x == inf, inf, r);
  return r;
}

/// Exponential, lane-wise, single precision.
template <int N>
Vec<float, N> vexp(Vec<float, N> x) {
  using VF = Vec<float, N>;
  using VI = Vec<std::int32_t, N>;

  // Clamp to the finite range so the 2^n scaling below never overflows the
  // exponent field; out-of-range inputs saturate to inf / 0.
  const VF hi(88.3762626647949f);
  const VF lo(-87.3365478515625f);
  const auto over = x > hi;
  const auto under = x < lo;
  x = min(max(x, lo), hi);

  // n = round(x / ln2)
  VF nf = fma(x, VF(1.44269504088896341f), VF(0.5f));
  auto n_i = __builtin_convertvector(nf.v, typename VI::native_type);
  // floor: convertvector truncates toward zero; fix up negatives.
  VF nt = VF::from(__builtin_convertvector(n_i, typename VF::native_type));
  const auto neg_fix = nt > nf;
  n_i -= typename VI::native_type(neg_fix.m & 1);
  nf = VF::from(__builtin_convertvector(n_i, typename VF::native_type));

  // r = x - n*ln2 (split constant for accuracy)
  VF r = fma(nf, VF(-0.693359375f), x);
  r = fma(nf, VF(2.12194440e-4f), r);

  VF z(1.9875691500e-4f);
  z = fma(z, r, VF(1.3981999507e-3f));
  z = fma(z, r, VF(8.3334519073e-3f));
  z = fma(z, r, VF(4.1665795894e-2f));
  z = fma(z, r, VF(1.6666665459e-1f));
  z = fma(z, r, VF(5.0000001201e-1f));
  z = fma(z, r * r, r + VF(1.0f));

  // Scale by 2^n via exponent-bit arithmetic.
  const auto pow2n_bits = (n_i + 127) << 23;
  const VF pow2n = VF::bitcast_from(VI::from(typename VI::native_type(pow2n_bits)));
  VF out = z * pow2n;
  out = select(over, VF(std::numeric_limits<float>::infinity()), out);
  out = select(under, VF(0.0f), out);
  return out;
}

/// Exponential, lane-wise, double precision (Cephes rational kernel).
template <int N>
Vec<double, N> vexp(Vec<double, N> x) {
  using VD = Vec<double, N>;
  using VI = Vec<std::int64_t, N>;

  const VD hi(709.437);
  const VD lo(-708.396);
  const auto over = x > hi;
  const auto under = x < lo;
  x = min(max(x, lo), hi);

  VD nf = fma(x, VD(1.4426950408889634073599), VD(0.5));
  auto n_i = __builtin_convertvector(nf.v, typename VI::native_type);
  VD nt = VD::from(__builtin_convertvector(n_i, typename VD::native_type));
  const auto neg_fix = nt > nf;
  n_i -= typename VI::native_type(neg_fix.m & 1);
  nf = VD::from(__builtin_convertvector(n_i, typename VD::native_type));

  VD r = fma(nf, VD(-6.93145751953125e-1), x);
  r = fma(nf, VD(-1.42860682030941723212e-6), r);

  const VD r2 = r * r;
  VD px(1.26177193074810590878e-4);
  px = fma(px, r2, VD(3.02994407707441961300e-2));
  px = fma(px, r2, VD(9.99999999999999999910e-1));
  px = px * r;
  VD qx(3.00198505138664455042e-6);
  qx = fma(qx, r2, VD(2.52448340349684104192e-3));
  qx = fma(qx, r2, VD(2.27265548208155028766e-1));
  qx = fma(qx, r2, VD(2.00000000000000000005e0));
  const VD er = VD(1.0) + VD(2.0) * px / (qx - px);

  const auto pow2n_bits = (n_i + 1023) << 52;
  const VD pow2n = VD::bitcast_from(VI::from(typename VI::native_type(pow2n_bits)));
  VD out = er * pow2n;
  out = select(over, VD(std::numeric_limits<double>::infinity()), out);
  out = select(under, VD(0.0), out);
  return out;
}

}  // inline namespace VMC_SIMD_ABI

}  // namespace vmc::simd
