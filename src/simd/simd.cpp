#include "simd/simd.hpp"

namespace vmc::simd {

const char* isa_name() { return native_isa; }

int native_bits() { return native_bytes * 8; }

}  // namespace vmc::simd
