// Sanctioned blocking-I/O helpers for the serving layer.
//
// This file (spool.*) is the ONE place in src/serve allowed to sleep or
// touch the filesystem — the vmc_lint `blocking-in-worker` rule excludes it
// and flags blocking calls anywhere else in src/serve, so a worker thread
// can never stall the fair-share pool on disk or a timer by accident.
// Checkpoint writes happen inside core (src/core/statepoint.cpp, its own
// sanctioned home); everything else — inbox claims, result drops, existence
// probes, the poll sleep — funnels through here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vmc::serve {

class Server;

namespace spool {

bool file_exists(const std::string& path);

/// Whole-file read; throws std::runtime_error on failure.
std::string read_file(const std::string& path);

/// Atomic publish: write to `<path>.tmp`, flush, rename over `path`. A
/// reader polling the directory never observes a torn document.
void write_file_atomic(const std::string& path, const std::string& content);

/// The *.json documents in `dir`, lexicographically sorted (submission
/// order for zero-padded names). Ignores dotfiles, *.tmp, and subdirs.
std::vector<std::string> list_json(const std::string& dir);

/// Claim `path` by renaming it to `<path>.claimed`; false if another
/// consumer won the race (or the file vanished). The claimed path is
/// returned through `claimed`.
bool claim(const std::string& path, std::string* claimed);

void remove_file(const std::string& path);

void make_dirs(const std::string& dir);

void sleep_seconds(double s);

}  // namespace spool

/// File-drop ingress for the daemon: poll `inbox` for vectormc.job.v1
/// documents, claim + submit each to `server`, and drop a
/// vectormc.result.v1 per job into `outbox` (same basename, `.result.json`).
/// Rejected specs get a result document too (status "rejected"). A file
/// named `sentinel` in the inbox stops the loop after a final drain.
struct InboxConfig {
  std::string inbox;
  std::string outbox;
  double poll_seconds = 0.05;
  std::string sentinel = "STOP";
};

/// Runs until the sentinel appears; returns the number of jobs whose result
/// documents were published (including rejections).
std::size_t run_inbox(Server& server, const InboxConfig& cfg);

}  // namespace vmc::serve
