#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "json/json.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"
#include "resil/fault.hpp"
#include "serve/spool.hpp"

namespace vmc::serve {

namespace {

/// Thrown by the serve.worker_death fault site inside the per-generation
/// callback; models a worker process dying mid-job. Deliberately NOT a
/// resil::TransientError — nothing in core may silently retry it; the
/// server's recovery path (checkpoint resume) is the only handler.
struct WorkerDeath {};

}  // namespace

std::string JobResult::json() const {
  json::JsonWriter w;
  w.begin_object();
  w.member("schema", "vectormc.result.v1");
  w.member("job_id", job_id);
  w.member("tenant", tenant);
  w.member("status", status);
  if (status != "done") {
    w.key("error").begin_object();
    w.member("code", error.code);
    w.member("field", error.field);
    w.member("message", error.message);
    w.end_object();
  }
  w.member("digest", digest);
  w.member("cache_hit", cache_hit);
  w.member("resumes", resumes);
  w.member("latency_seconds", latency_seconds);
  w.member("k_eff", k_eff);
  w.member("k_std", k_std);
  w.key("k_history").begin_array();
  for (double k : k_history) w.value(k);
  w.end_array();
  w.end_object();
  return w.str();
}

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), cache_(cfg_.cache_bytes) {
  auto& reg = obs::metrics();
  submitted_ = reg.counter("vmc_serve_jobs_submitted_total", {},
                           "jobs admitted past validation and admission control");
  rejects_ = reg.counter("vmc_serve_admission_rejects_total", {},
                         "specs bounced at the door (all reasons)");
  completed_done_ = reg.counter("vmc_serve_jobs_completed_total",
                                {{"status", "done"}}, "finished jobs by status");
  completed_failed_ = reg.counter("vmc_serve_jobs_completed_total",
                                  {{"status", "failed"}});
  cache_hits_ = reg.counter("vmc_serve_cache_hits_total", {},
                            "model-cache hits (incl. coalesced builds)");
  cache_misses_ = reg.counter("vmc_serve_cache_misses_total", {},
                              "model-cache builds executed");
  cache_evictions_ = reg.counter("vmc_serve_cache_evictions_total", {},
                                 "LRU evictions under the byte budget");
  worker_deaths_ = reg.counter("vmc_serve_worker_deaths_total", {},
                               "serve.worker_death fires survived via resume");
  generations_ = reg.counter("vmc_serve_generations_total", {},
                             "transport generations completed across all jobs");
  queue_depth_g_ = reg.gauge("vmc_serve_queue_depth", {},
                             "jobs waiting in the fair-share queue");
  cache_bytes_g_ = reg.gauge("vmc_serve_cache_bytes", {},
                             "resident model-cache bytes (library accounting)");
  latency_ = reg.histogram(
      "vmc_serve_job_latency_seconds",
      {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
       10.0, 30.0},
      {}, "submit-to-completion wall time");

  // The cache ticks the counter itself, under its own mutex, so the metric
  // can never drift from the cache's eviction census (a top-up read in the
  // workers would race).
  cache_.set_eviction_hook([this] { cache_evictions_.inc(); });

  obs::tracer().set_process_name(kServePid, "vmc_serve jobs");
  const int n = std::max(1, cfg_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    obs::tracer().set_thread_name(kServePid, i, "worker-" + std::to_string(i));
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Server::~Server() { shutdown(); }

std::string Server::checkpoint_path(const Job& job) const {
  return cfg_.checkpoint_dir + "/job_" + std::to_string(job.seq) + ".sp";
}

std::string Server::submit(JobSpec spec) {
  validate_spec(spec);

  const auto bounce = [this](std::string code, std::string field,
                             std::string msg) {
    rejects_.inc();
    obs::metrics()
        .counter("vmc_serve_admission_rejects_total", {{"reason", code}})
        .inc();
    throw SpecRejected({std::move(code), std::move(field), std::move(msg)});
  };

  // Admission budgets: anything over budget is a structured reject, not a
  // queued-then-failed job — the queue only ever holds runnable work.
  if (spec.particles > cfg_.max_particles)
    bounce("over_budget", "particles",
           "budget is " + std::to_string(cfg_.max_particles));
  if (spec.batches > cfg_.max_batches)
    bounce("over_budget", "batches",
           "budget is " + std::to_string(cfg_.max_batches));
  if (spec.effective_nuclides() > cfg_.max_nuclides)
    bounce("over_budget", "nuclides",
           "budget is " + std::to_string(cfg_.max_nuclides));
  if (spec.temperature_K < cfg_.min_temperature_K ||
      spec.temperature_K > cfg_.max_temperature_K)
    bounce("over_budget", "temperature_K", "outside the served range");
  if (spec.devices > cfg_.max_devices)
    bounce("over_budget", "devices",
           "budget is " + std::to_string(cfg_.max_devices));
  if (queue_.depth() >= cfg_.max_queue_depth)
    bounce("queue_full", "", "fair-share queue is at capacity");

  Job job;
  std::string id;
  {
    // One critical section from the accepting_ check through the inflight_
    // increment: a submission either commits while shutdown()'s drain still
    // sees it in flight, or bounces — no straggler can slip between the
    // check and the increment and push into a queue the workers have left.
    std::lock_guard lk(mu_);
    if (!accepting_)
      bounce("unavailable", "", "server is shutting down");
    job.seq = next_seq_++;
    // Ingress fault site: models the accept path dying under chaos (socket
    // reset, inbox torn mid-claim). Fires before any state is committed; the
    // consumed seq is simply abandoned (seqs are unique, not dense).
    if (resil::fault_fires("serve.accept", job.seq))
      bounce("unavailable", "", "injected accept fault");
    if (spec.job_id.empty()) spec.job_id = "job-" + std::to_string(job.seq);
    id = spec.job_id;
    job.spec = std::move(spec);
    job.submitted_at = prof::now_seconds();
    ++inflight_;
  }
  submitted_.inc();
  queue_.push(std::move(job));
  queue_depth_g_.set(static_cast<double>(queue_.depth()));
  return id;
}

std::string Server::submit_json(std::string_view text) {
  return submit(parse_job_spec(text));
}

void Server::worker_loop(int worker_id) {
  Job job;
  while (queue_.pop(job)) {
    queue_depth_g_.set(static_cast<double>(queue_.depth()));
    run_job(std::move(job), worker_id);
  }
}

void Server::run_job(Job job, int worker_id) {
  const double t0 = prof::now_seconds();
  JobResult r;
  r.job_id = job.spec.job_id;
  r.tenant = job.spec.tenant;
  r.seq = job.seq;
  r.digest = job.spec.digest();
  r.resumes = job.resumes;

  try {
    bool hit = false;
    std::shared_ptr<const hm::Model> model = cache_.acquire(job.spec, &hit);
    r.cache_hit = hit;
    (hit ? cache_hits_ : cache_misses_).inc();
    cache_bytes_g_.set(static_cast<double>(cache_.stats().bytes));

    core::Settings st = job.spec.settings();
    if (job.spec.devices > 0) st.mode = core::TransportMode::event;
    if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_dir.empty()) {
      st.checkpoint_every = cfg_.checkpoint_every;
      st.checkpoint_path = checkpoint_path(job);
    }
    if (!job.checkpoint.empty()) st.resume_from = job.checkpoint;
    const std::uint64_t seq = job.seq;
    st.on_generation = [this, seq](const core::GenerationResult&, int gen) {
      generations_.inc();
      if (resil::fault_fires("serve.worker_death",
                             (seq << 16) |
                                 static_cast<std::uint64_t>(gen & 0xFFFF)))
        throw WorkerDeath{};
    };

    core::Simulation sim(model->geometry, model->library, st);
    const core::RunResult run = sim.run();

    r.status = "done";
    r.k_eff = run.k_eff;
    r.k_std = run.k_std;
    r.k_history = run.k_collision_history;
  } catch (const WorkerDeath&) {
    worker_deaths_.inc();
    const std::string cp = checkpoint_path(job);
    if (job.resumes < cfg_.max_resumes && spool::file_exists(cp)) {
      // The statepoint on disk is consistent (the fault site runs after the
      // write); re-admit at the front of this tenant's share.
      job.resumes += 1;
      job.checkpoint = cp;
      obs::tracer().inject_instant(kServePid, worker_id,
                                   job.spec.job_id + " death",
                                   "serve.death", prof::now_seconds());
      queue_.push_resumed(std::move(job));
      queue_depth_g_.set(static_cast<double>(queue_.depth()));
      return;  // job still in flight; no result yet
    }
    r.status = "failed";
    r.error = {"worker_death", "",
               "worker died " + std::to_string(job.resumes + 1) +
                   " times; resume budget exhausted"};
  } catch (const SpecRejected& e) {
    r.status = "failed";
    r.error = e.error();
  } catch (const std::exception& e) {
    r.status = "failed";
    r.error = {"internal", "", e.what()};
  }

  const double t1 = prof::now_seconds();
  r.latency_seconds = t1 - job.submitted_at;
  obs::tracer().inject_span(kServePid, worker_id, r.job_id, "serve.job", t0,
                            t1 - t0);
  latency_.observe(r.latency_seconds);
  (r.status == "done" ? completed_done_ : completed_failed_).inc();
  finish(std::move(r));
}

void Server::finish(JobResult r) {
  std::lock_guard lk(mu_);
  obs::RunManifest::JobRecord j;
  j.job_id = r.job_id;
  j.tenant = r.tenant;
  j.status = r.status;
  j.digest = r.digest;
  j.cache_hit = r.cache_hit;
  j.resumes = r.resumes;
  j.latency_seconds = r.latency_seconds;
  j.k_eff = r.k_eff;
  archive_.push_back(std::move(j));
  results_.push_back(std::move(r));
  if (inflight_ > 0) --inflight_;
  idle_.notify_all();
}

void Server::drain() {
  std::unique_lock lk(mu_);
  idle_.wait(lk, [&] { return inflight_ == 0; });
}

void Server::shutdown() {
  {
    std::lock_guard lk(mu_);
    accepting_ = false;
  }
  drain();
  queue_.close();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

std::vector<JobResult> Server::take_results() {
  std::lock_guard lk(mu_);
  return std::exchange(results_, {});
}

void Server::fill_manifest(obs::RunManifest& m) {
  std::lock_guard lk(mu_);
  for (const obs::RunManifest::JobRecord& j : archive_) m.add_job(j);
}

}  // namespace vmc::serve
