// vectormc.job.v1: the strict job-spec document accepted by the serving
// layer (tools/vmc_served) and by `vmc_run --job-spec`.
//
// A spec names WHAT to simulate (material set, fuel-nuclide count,
// grid-search tier, temperature — the axes that determine the cross-section
// library) and HOW MUCH (batches, particles, seed, devices — the axes that
// only shape the transport run). The split matters: `digest()` hashes only
// the library-determining axes, so thousands of jobs that differ in seed or
// size content-address the same finalized `xsdata::Library` in the serve
// cache.
//
// Parsing is strict: unknown keys, wrong-typed fields, non-finite numbers,
// and out-of-range values are rejected with a structured error (code +
// field), never coerced. See README.md for the schema reference.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/eigenvalue.hpp"
#include "hm/hm_model.hpp"
#include "xsdata/hash_grid.hpp"

namespace vmc::serve {

/// Structured rejection: machine-readable code + offending field. Every
/// admission/validation failure surfaces as one of these (serialized into
/// the result document), never as a bare string.
struct SpecError {
  std::string code;     // bad_json | missing_field | wrong_type |
                        // unknown_field | bad_value | over_budget |
                        // queue_full | unavailable
  std::string field;    // offending member ("" for document-level errors)
  std::string message;  // human-readable detail
};

/// Thrown by parse_job_spec / Server::submit on any rejection.
class SpecRejected : public std::runtime_error {
 public:
  explicit SpecRejected(SpecError e)
      : std::runtime_error(e.code + (e.field.empty() ? "" : " (" + e.field + ")") +
                           ": " + e.message),
        error_(std::move(e)) {}
  const SpecError& error() const { return error_; }

 private:
  SpecError error_;
};

struct JobSpec {
  // --- identity / scheduling (NOT part of the content digest) -------------
  std::string job_id;            // assigned by the server when empty
  std::string tenant = "default";
  double weight = 1.0;           // fair-share weight, > 0

  // --- library-determining axes (content digest) --------------------------
  std::string model = "small";   // "small" (H.M. 34) | "large" (H.M. 320)
  int nuclides = 0;              // fuel-nuclide override; 0 = model default
  xs::GridSearch tier = xs::GridSearch::hash;
  double temperature_K = 300.0;  // Doppler axis (sqrt(T/300) width scaling)
  double grid_scale = 1.0;       // per-nuclide grid-size multiplier

  // --- run-shaping axes (excluded from the digest) ------------------------
  int batches = 5;               // total generations (inactive + active)
  int inactive = 2;
  std::uint64_t particles = 2000;
  std::uint64_t seed = 42;
  int devices = 0;               // modeled offload devices (0 = host sweep)

  /// The library-determining axes, verbatim — the serve cache's identity.
  /// `digest()` is a CRC-32 over exactly these fields, but a 32-bit hash can
  /// collide (and an adversarial tenant could construct a collision), so the
  /// cache compares the full key on every lookup and treats a digest match
  /// with a key mismatch as a miss; the digest is only the compact form used
  /// in result documents, manifests, and traces.
  struct LibraryKey {
    std::string model;
    int nuclides = 0;                    // EFFECTIVE count (override resolved)
    bool nuclide_index = false;          // index shape (hash_nuclide tier)
    std::uint64_t temperature_bits = 0;  // raw little-endian double bits
    std::uint64_t grid_scale_bits = 0;
    bool operator==(const LibraryKey&) const = default;
  };
  LibraryKey library_key() const;

  /// Content address of the finalized library this spec requires: a CRC-32
  /// over `library_key()`'s fields only. Note the grid-search tier
  /// contributes through the index shape it needs (`hash_nuclide` builds the
  /// per-nuclide start table, `binary`/`hash` share the plain index), so
  /// binary- and hash-tier jobs over the same physics share one entry.
  std::uint64_t digest() const;

  /// Model options this spec resolves to (serve runs use the single-assembly
  /// configuration; geometry is rebuilt per job, the library is cached).
  hm::ModelOptions model_options() const;

  /// Transport settings (history mode, no checkpointing — the server fills
  /// in checkpoint/resume and callbacks).
  core::Settings settings() const;

  /// Effective fuel-nuclide count (override or model default).
  int effective_nuclides() const;

  /// Serialize back to a vectormc.job.v1 document (round-trips via parse).
  std::string json() const;
};

/// Strict parse of a vectormc.job.v1 document. Throws SpecRejected with a
/// structured error on any malformation; never coerces.
JobSpec parse_job_spec(std::string_view text);

/// Validate ranges only (parse_job_spec already calls this; exposed so specs
/// built in code go through the same gate).
void validate_spec(const JobSpec& spec);

const char* tier_name(xs::GridSearch tier);

}  // namespace vmc::serve
