// vmc_serve: the multi-tenant simulation server.
//
// Lifecycle of a job:
//
//   submit(spec)
//     -> strict validation (parse layer) + admission control (budget caps,
//        queue depth, serve.accept fault point) — rejects throw SpecRejected
//        with a structured error and are counted, never queued;
//     -> fair-share weighted queue (serve/queue.hpp);
//   worker pool (N threads)
//     -> content-addressed model acquire (serve/cache.hpp — the finalize
//        skip on warm digests is the serving layer's key perf property);
//     -> core::Simulation in history/event mode with periodic statepoints
//        (cfg.checkpoint_every) and the serve.worker_death fault site in the
//        per-generation callback;
//     -> a killed worker's job is re-admitted at the front of its tenant's
//        share and resumes from its last checkpoint — PR 2's restart
//        equivalence makes the k history bit-identical to an undisturbed run;
//   completion
//     -> JobResult (vectormc.result.v1), latency histogram, manifest record.
//
// Observability: every stage ticks `vmc_serve_*` metric families on the
// global registry, and each job is a span on the serve tracer track
// (pid kServePid).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/job_spec.hpp"
#include "serve/queue.hpp"

namespace vmc::serve {

struct ServerConfig {
  int workers = 2;
  /// Cache byte budget (library accounting; see ModelCache).
  std::size_t cache_bytes = std::size_t{256} << 20;
  /// Admission: queue depth beyond which submissions bounce (queue_full).
  std::size_t max_queue_depth = 4096;
  // Admission budgets (over_budget rejections name the offending field).
  std::uint64_t max_particles = 1'000'000;
  int max_batches = 500;
  int max_nuclides = 512;
  double min_temperature_K = 250.0;
  double max_temperature_K = 2400.0;
  int max_devices = 8;
  /// Statepoint directory; empty disables checkpointing (and thus resume).
  std::string checkpoint_dir;
  int checkpoint_every = 0;  // generations between statepoints (0 = never)
  /// Worker deaths a single job may survive before it is failed outright.
  int max_resumes = 4;
};

/// Completed-job record (schema vectormc.result.v1 via json()).
struct JobResult {
  std::string job_id;
  std::string tenant;
  std::string status;  // done | failed | rejected
  SpecError error;     // set when status != done
  std::uint64_t seq = 0;
  std::uint64_t digest = 0;
  bool cache_hit = false;
  int resumes = 0;
  double latency_seconds = 0.0;
  double k_eff = 0.0;
  double k_std = 0.0;
  std::vector<double> k_history;

  std::string json() const;
};

class Server {
 public:
  /// Tracer pid for the per-job serve track (host=0 and the modeled devices=1
  /// are taken by obs/exec).
  static constexpr int kServePid = 2;

  explicit Server(ServerConfig cfg);
  ~Server();

  /// Admit a spec. Returns the assigned job id. Throws SpecRejected on
  /// validation/admission failure (the rejection is also recorded as a
  /// JobResult so file-drop clients get a result document either way).
  std::string submit(JobSpec spec);

  /// parse + submit in one step (the daemon's ingress path).
  std::string submit_json(std::string_view text);

  /// Block until every admitted job has completed or failed.
  void drain();

  /// drain, stop the workers, and refuse further submissions.
  void shutdown();

  /// Completed/rejected results accumulated so far (completion order).
  std::vector<JobResult> take_results();

  ModelCache::Stats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const { return queue_.depth(); }

  /// Append per-job records + serve run kind to a manifest.
  void fill_manifest(obs::RunManifest& m);

 private:
  void worker_loop(int worker_id);
  void run_job(Job job, int worker_id);
  void finish(JobResult r);
  std::string checkpoint_path(const Job& job) const;

  ServerConfig cfg_;
  ModelCache cache_;
  FairShareQueue queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::vector<JobResult> results_;
  /// Every finished job's manifest record; unlike results_, never consumed
  /// by take_results(), so end-of-run manifests see the whole history.
  std::vector<obs::RunManifest::JobRecord> archive_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t inflight_ = 0;  // admitted, not yet finished
  bool accepting_ = true;

  // vmc_serve_* metric family handles (global registry).
  obs::Counter submitted_;
  obs::Counter rejects_;  // labeled total; per-reason counters made on demand
  obs::Counter completed_done_;
  obs::Counter completed_failed_;
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  obs::Counter cache_evictions_;
  obs::Counter worker_deaths_;
  obs::Counter generations_;
  obs::Gauge queue_depth_g_;
  obs::Gauge cache_bytes_g_;
  obs::Histogram latency_;
};

}  // namespace vmc::serve
