#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

namespace vmc::serve {

ModelCache::Entry* ModelCache::find_locked(std::uint64_t digest) {
  for (Entry& e : entries_)
    if (e.digest == digest) return &e;
  return nullptr;
}

std::shared_ptr<const hm::Model> ModelCache::acquire(const JobSpec& spec,
                                                     bool* was_hit) {
  const std::uint64_t digest = spec.digest();
  std::unique_lock lk(mu_);
  for (;;) {
    Entry* e = find_locked(digest);
    if (e != nullptr && e->model) {
      e->last_use = ++use_clock_;
      ++hits_;
      if (was_hit != nullptr) *was_hit = true;
      return e->model;
    }
    if (e != nullptr && e->building) {
      // Another job is mid-finalize for this digest: wait for it rather
      // than duplicating the build. Its completion (or failure) wakes us.
      built_.wait(lk, [&] {
        Entry* cur = find_locked(digest);
        return cur == nullptr || !cur->building;
      });
      continue;  // re-evaluate: hit the fresh model, or retry after failure
    }
    break;  // no entry (or a failed one): this request runs the build
  }

  // Claim the flight, then build OUTSIDE the lock — finalize is the
  // expensive part and other digests must proceed concurrently.
  {
    Entry* e = find_locked(digest);
    if (e == nullptr) {
      entries_.push_back({});
      e = &entries_.back();
      e->digest = digest;
    }
    e->building = true;
    e->failed = false;
  }
  ++misses_;
  if (was_hit != nullptr) *was_hit = false;
  lk.unlock();

  std::shared_ptr<const hm::Model> model;
  try {
    model = std::make_shared<const hm::Model>(hm::build_model(spec.model_options()));
  } catch (...) {
    lk.lock();
    if (Entry* e = find_locked(digest)) {
      e->building = false;
      e->failed = true;
    }
    built_.notify_all();
    throw;
  }

  lk.lock();
  Entry* e = find_locked(digest);
  e->model = model;
  e->building = false;
  e->bytes = model->library.union_bytes() + model->library.pointwise_bytes() +
             model->library.hash_bytes();
  e->last_use = ++use_clock_;
  built_.notify_all();
  evict_locked();
  return model;
}

void ModelCache::evict_locked() {
  // LRU over idle entries only: an entry whose model is also held outside
  // the cache (use_count > 1) backs a running job and must survive even if
  // the budget is blown — the budget is a target, not a correctness limit.
  auto resident = [this] {
    std::size_t total = 0;
    for (const Entry& e : entries_)
      if (e.model) total += e.bytes;
    return total;
  };
  std::size_t total = resident();
  while (total > byte_budget_) {
    Entry* victim = nullptr;
    for (Entry& e : entries_) {
      if (!e.model || e.building) continue;
      if (e.model.use_count() > 1) continue;  // in use by a job
      if (victim == nullptr || e.last_use < victim->last_use) victim = &e;
    }
    if (victim == nullptr) break;  // everything left is in use
    total -= victim->bytes;
    ++evictions_;
    entries_.erase(entries_.begin() + (victim - entries_.data()));
  }
}

void ModelCache::enforce_budget() {
  std::lock_guard lk(mu_);
  evict_locked();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  for (const Entry& e : entries_) {
    if (e.model) {
      s.bytes += e.bytes;
      ++s.entries;
    }
  }
  return s;
}

}  // namespace vmc::serve
