#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

namespace vmc::serve {

ModelCache::Entry* ModelCache::find_locked(const JobSpec::LibraryKey& key) {
  for (Entry& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

void ModelCache::erase_locked(const JobSpec::LibraryKey& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.erase(it);
      return;
    }
  }
}

std::shared_ptr<const hm::Model> ModelCache::acquire(const JobSpec& spec,
                                                     bool* was_hit) {
  const JobSpec::LibraryKey key = spec.library_key();
  std::unique_lock lk(mu_);
  if (Entry* e = find_locked(key); e != nullptr) {
    if (e->model) {
      e->last_use = ++use_clock_;
      ++hits_;
      if (was_hit != nullptr) *was_hit = true;
      return e->model;
    }
    // Another job is mid-finalize for this key: coalesce onto its flight
    // rather than duplicating the build. Holding the Flight (not the entry,
    // which a failure removes) lets a failed build's exception reach us.
    const std::shared_ptr<Flight> f = e->flight;
    built_.wait(lk, [&] { return f->done; });
    if (f->error) std::rethrow_exception(f->error);
    ++hits_;
    if (was_hit != nullptr) *was_hit = true;
    if (Entry* cur = find_locked(key)) cur->last_use = ++use_clock_;
    return f->model;
  }

  // Claim the flight, then build OUTSIDE the lock — finalize is the
  // expensive part and other keys must proceed concurrently.
  const auto flight = std::make_shared<Flight>();
  {
    Entry e;
    e.key = key;
    e.digest = spec.digest();
    e.flight = flight;
    entries_.push_back(std::move(e));
  }
  ++misses_;
  if (was_hit != nullptr) *was_hit = false;
  lk.unlock();

  std::shared_ptr<const hm::Model> model;
  try {
    model = builder_ ? builder_(spec)
                     : std::make_shared<const hm::Model>(
                           hm::build_model(spec.model_options()));
  } catch (...) {
    lk.lock();
    flight->error = std::current_exception();
    flight->done = true;
    // Remove the entry: waiters already on this flight rethrow via the
    // Flight they hold; anyone arriving later starts a fresh build.
    erase_locked(key);
    built_.notify_all();
    throw;
  }

  lk.lock();
  Entry* e = find_locked(key);
  e->model = model;
  e->bytes = model->library.union_bytes() + model->library.pointwise_bytes() +
             model->library.hash_bytes();
  e->last_use = ++use_clock_;
  flight->model = model;
  flight->done = true;
  e->flight.reset();
  built_.notify_all();
  evict_locked();
  return model;
}

void ModelCache::evict_locked() {
  // LRU over idle entries only: an entry whose model is also held outside
  // the cache (use_count > 1) backs a running job and must survive even if
  // the budget is blown — the budget is a target, not a correctness limit.
  auto resident = [this] {
    std::size_t total = 0;
    for (const Entry& e : entries_)
      if (e.model) total += e.bytes;
    return total;
  };
  std::size_t total = resident();
  while (total > byte_budget_) {
    Entry* victim = nullptr;
    for (Entry& e : entries_) {
      if (!e.model) continue;  // still building
      if (e.model.use_count() > 1) continue;  // in use by a job
      if (victim == nullptr || e.last_use < victim->last_use) victim = &e;
    }
    if (victim == nullptr) break;  // everything left is in use
    total -= victim->bytes;
    ++evictions_;
    if (on_evict_) on_evict_();
    entries_.erase(entries_.begin() + (victim - entries_.data()));
  }
}

void ModelCache::set_eviction_hook(std::function<void()> hook) {
  std::lock_guard lk(mu_);
  on_evict_ = std::move(hook);
}

void ModelCache::enforce_budget() {
  std::lock_guard lk(mu_);
  evict_locked();
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  for (const Entry& e : entries_) {
    if (e.model) {
      s.bytes += e.bytes;
      ++s.entries;
    }
  }
  return s;
}

}  // namespace vmc::serve
