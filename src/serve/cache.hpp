// Content-addressed cache of finalized models (xsdata::Library + HashGrid +
// geometry), shared across concurrent jobs.
//
// `Library::finalize` (grid unionization + hash-index build) is the dominant
// cold-start cost of a job — exactly the cost OpenMC-style serving setups
// amortize across runs. The cache keys on `JobSpec::digest()` (the
// library-determining axes only), so any two jobs over the same physics
// share ONE immutable `hm::Model` instance regardless of seed, size, or
// tenant. Guarantees:
//
//  * single-flight: concurrent first requests for a digest build once; the
//    losers block until the winner's finalize completes (a coalesced wait
//    counts as a hit — no finalize ran for it);
//  * hits never touch finalize()/rebuild_hash(): the entry is handed out
//    as-is, which is what makes warm-vs-cold bit-identity provable;
//  * LRU eviction against a byte budget, where an entry's cost is the
//    library's own accounting (union_bytes + pointwise_bytes + hash_bytes);
//    entries still referenced by a running job are never evicted (the map's
//    shared_ptr use_count is the reference census — acquisition happens
//    under the same mutex, so the census cannot race upward mid-eviction).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "hm/hm_model.hpp"
#include "serve/job_spec.hpp"

namespace vmc::serve {

class ModelCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       // includes coalesced waits on in-flight builds
    std::uint64_t misses = 0;     // builds actually executed
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;        // resident library bytes
    std::size_t entries = 0;
  };

  explicit ModelCache(std::size_t byte_budget = std::size_t{256} << 20)
      : byte_budget_(byte_budget) {}

  /// The shared model for `spec`'s digest, building it at most once per
  /// digest. Sets *was_hit to false only for the request that ran the build.
  /// Propagates build exceptions to every waiter of that flight.
  std::shared_ptr<const hm::Model> acquire(const JobSpec& spec,
                                           bool* was_hit = nullptr);

  Stats stats() const;

  /// Drop this thread's interest hint; eviction is automatic (budget is
  /// enforced after every insert), this just re-runs it eagerly — used by
  /// tests to observe eviction at a known point.
  void enforce_budget();

  std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::shared_ptr<const hm::Model> model;  // null while building
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;              // logical LRU clock
    bool building = false;
    bool failed = false;                     // build threw; waiters re-throw
  };

  Entry* find_locked(std::uint64_t digest);
  void evict_locked();

  mutable std::mutex mu_;
  std::condition_variable built_;
  std::vector<Entry> entries_;
  std::size_t byte_budget_;
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vmc::serve
