// Content-addressed cache of finalized models (xsdata::Library + HashGrid +
// geometry), shared across concurrent jobs.
//
// `Library::finalize` (grid unionization + hash-index build) is the dominant
// cold-start cost of a job — exactly the cost OpenMC-style serving setups
// amortize across runs. The cache identifies entries by
// `JobSpec::library_key()` (the library-determining axes, compared in full —
// the 32-bit `digest()` is only the compact report form, and a digest
// collision between different physics is treated as the miss it is), so any
// two jobs over the same physics share ONE immutable `hm::Model` instance
// regardless of seed, size, or tenant. Guarantees:
//
//  * single-flight: concurrent first requests for a key build once; the
//    losers block until the winner's finalize completes (a coalesced wait
//    counts as a hit — no finalize ran for it);
//  * a failed build rethrows its exception to every waiter coalesced onto
//    that flight, and the entry is removed so a LATER request retries with
//    a fresh build (one failure never becomes sticky, and N waiters never
//    become N serial rebuilds);
//  * hits never touch finalize()/rebuild_hash(): the entry is handed out
//    as-is, which is what makes warm-vs-cold bit-identity provable;
//  * LRU eviction against a byte budget, where an entry's cost is the
//    library's own accounting (union_bytes + pointwise_bytes + hash_bytes);
//    entries still referenced by a running job are never evicted (the map's
//    shared_ptr use_count is the reference census — acquisition happens
//    under the same mutex, so the census cannot race upward mid-eviction).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "hm/hm_model.hpp"
#include "serve/job_spec.hpp"

namespace vmc::serve {

class ModelCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       // includes coalesced waits on in-flight builds
    std::uint64_t misses = 0;     // builds actually executed
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;        // resident library bytes
    std::size_t entries = 0;
  };

  /// Builds the model for a spec. The default runs hm::build_model; tests
  /// inject one to observe build counts or force failures.
  using Builder =
      std::function<std::shared_ptr<const hm::Model>(const JobSpec&)>;

  explicit ModelCache(std::size_t byte_budget = std::size_t{256} << 20,
                      Builder builder = {})
      : byte_budget_(byte_budget), builder_(std::move(builder)) {}

  /// The shared model for `spec`'s library key, building it at most once per
  /// key. Sets *was_hit to false only for the request that ran the build.
  /// Propagates a build exception to every waiter coalesced onto that
  /// flight; the next acquire of the same key starts a fresh build.
  std::shared_ptr<const hm::Model> acquire(const JobSpec& spec,
                                           bool* was_hit = nullptr);

  Stats stats() const;

  /// Called once per evicted entry, under the cache mutex — keep it cheap
  /// (the server mirrors evictions into a metrics counter here, so the
  /// counter cannot drift from the cache's own census).
  void set_eviction_hook(std::function<void()> hook);

  /// Eviction is automatic (budget is enforced after every insert); this
  /// just re-runs it eagerly — used by tests to observe eviction at a known
  /// point.
  void enforce_budget();

  std::size_t byte_budget() const { return byte_budget_; }

 private:
  /// Shared state of one in-flight build. Waiters hold their own reference,
  /// so a failure's exception_ptr outlives the (removed) entry.
  struct Flight {
    std::shared_ptr<const hm::Model> model;  // set on success
    std::exception_ptr error;                // set on failure
    bool done = false;
  };

  struct Entry {
    JobSpec::LibraryKey key;        // full-axes identity, compared on lookup
    std::uint64_t digest = 0;       // compact report form only
    std::shared_ptr<const hm::Model> model;  // null while building
    std::shared_ptr<Flight> flight;          // non-null while building
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;              // logical LRU clock
  };

  Entry* find_locked(const JobSpec::LibraryKey& key);
  void erase_locked(const JobSpec::LibraryKey& key);
  void evict_locked();

  mutable std::mutex mu_;
  std::condition_variable built_;
  std::vector<Entry> entries_;
  std::size_t byte_budget_;
  Builder builder_;
  std::function<void()> on_evict_;
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vmc::serve
