#include "serve/job_spec.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "json/json.hpp"
#include "resil/crc32.hpp"

namespace vmc::serve {

namespace {

[[noreturn]] void reject(std::string code, std::string field, std::string msg) {
  throw SpecRejected({std::move(code), std::move(field), std::move(msg)});
}

double need_finite_number(const json::JsonValue& v, const std::string& field) {
  if (!v.is_number()) reject("wrong_type", field, "expected a number");
  if (!std::isfinite(v.number))
    reject("bad_value", field, "non-finite numbers are not representable");
  return v.number;
}

std::int64_t need_integer(const json::JsonValue& v, const std::string& field) {
  const double d = need_finite_number(v, field);
  if (d != std::floor(d) || std::fabs(d) > 9.0e15)
    reject("bad_value", field, "expected an integer");
  return static_cast<std::int64_t>(d);
}

const std::string& need_string(const json::JsonValue& v, const std::string& field) {
  if (!v.is_string()) reject("wrong_type", field, "expected a string");
  return v.string;
}

}  // namespace

const char* tier_name(xs::GridSearch tier) {
  switch (tier) {
    case xs::GridSearch::binary: return "binary";
    case xs::GridSearch::hash: return "hash";
    case xs::GridSearch::hash_nuclide: return "hash_nuclide";
  }
  return "hash";
}

int JobSpec::effective_nuclides() const {
  if (nuclides > 0) return nuclides;
  return hm::fuel_nuclide_count(model == "large" ? hm::FuelSize::large
                                                 : hm::FuelSize::small);
}

JobSpec::LibraryKey JobSpec::library_key() const {
  // Only the axes that change the finalized library (+index shape). Raw
  // little-endian double bits, not formatted text, so e.g. 600.0 and
  // 600.00000000000001 K are honestly distinct libraries.
  LibraryKey k;
  k.model = model;
  k.nuclides = effective_nuclides();
  // Index shape, not tier identity: binary/hash need no per-nuclide table.
  k.nuclide_index = tier == xs::GridSearch::hash_nuclide;
  static_assert(sizeof k.temperature_bits == sizeof temperature_K);
  std::memcpy(&k.temperature_bits, &temperature_K, sizeof k.temperature_bits);
  std::memcpy(&k.grid_scale_bits, &grid_scale, sizeof k.grid_scale_bits);
  return k;
}

std::uint64_t JobSpec::digest() const {
  const LibraryKey k = library_key();
  resil::Crc32 c;
  const auto add = [&c](const void* p, std::size_t n) { c.update(p, n); };
  const char schema_salt[] = "vectormc.job.v1";
  add(schema_salt, sizeof schema_salt);
  add(k.model.data(), k.model.size());
  const std::int64_t n_fuel = k.nuclides;
  add(&n_fuel, sizeof n_fuel);
  const unsigned char nuclide_index = k.nuclide_index ? 1 : 0;
  add(&nuclide_index, sizeof nuclide_index);
  add(&k.temperature_bits, sizeof k.temperature_bits);
  add(&k.grid_scale_bits, sizeof k.grid_scale_bits);
  return c.value();
}

hm::ModelOptions JobSpec::model_options() const {
  hm::ModelOptions opt;
  opt.fuel = model == "large" ? hm::FuelSize::large : hm::FuelSize::small;
  opt.fuel_nuclides = nuclides;
  opt.grid_scale = grid_scale;
  opt.temperature_K = temperature_K;
  // Served jobs run the single-assembly (infinite-lattice) configuration:
  // the library dominates setup cost and is what the cache shares; geometry
  // is rebuilt per model in milliseconds.
  opt.full_core = false;
  opt.hash.nuclide_index = tier == xs::GridSearch::hash_nuclide;
  return opt;
}

core::Settings JobSpec::settings() const {
  core::Settings st;
  st.n_particles = particles;
  st.n_inactive = inactive;
  st.n_active = batches - inactive;
  st.seed = seed;
  st.event.lookup.search = tier;
  return st;
}

void validate_spec(const JobSpec& spec) {
  if (spec.model != "small" && spec.model != "large")
    reject("bad_value", "model", "expected \"small\" or \"large\"");
  if (spec.nuclides < 0)
    reject("bad_value", "nuclides", "must be >= 0 (0 = model default)");
  if (spec.nuclides != 0 && spec.nuclides < 3)
    reject("bad_value", "nuclides", "a fuel needs at least 3 nuclides");
  if (spec.batches < 1) reject("bad_value", "batches", "must be >= 1");
  if (spec.inactive < 0 || spec.inactive >= spec.batches)
    reject("bad_value", "inactive", "need 0 <= inactive < batches");
  if (spec.particles == 0) reject("bad_value", "particles", "must be >= 1");
  if (!(spec.temperature_K > 0.0))
    reject("bad_value", "temperature_K", "must be > 0");
  if (!(spec.grid_scale > 0.0))
    reject("bad_value", "grid_scale", "must be > 0");
  if (!(spec.weight > 0.0)) reject("bad_value", "weight", "must be > 0");
  if (spec.devices < 0) reject("bad_value", "devices", "must be >= 0");
  if (spec.tenant.empty()) reject("bad_value", "tenant", "must be non-empty");
}

JobSpec parse_job_spec(std::string_view text) {
  json::JsonValue doc;
  try {
    doc = json::json_parse(text);
  } catch (const std::exception& e) {
    reject("bad_json", "", e.what());
  }
  if (!doc.is_object()) reject("wrong_type", "", "document must be an object");

  JobSpec spec;
  bool saw_schema = false;
  for (const auto& [key, v] : doc.object) {
    if (key == "schema") {
      if (need_string(v, key) != "vectormc.job.v1")
        reject("bad_value", "schema", "expected \"vectormc.job.v1\"");
      saw_schema = true;
    } else if (key == "job_id") {
      spec.job_id = need_string(v, key);
    } else if (key == "tenant") {
      spec.tenant = need_string(v, key);
    } else if (key == "weight") {
      spec.weight = need_finite_number(v, key);
    } else if (key == "model") {
      spec.model = need_string(v, key);
    } else if (key == "nuclides") {
      spec.nuclides = static_cast<int>(need_integer(v, key));
    } else if (key == "tier") {
      const std::string& t = need_string(v, key);
      if (t == "binary")
        spec.tier = xs::GridSearch::binary;
      else if (t == "hash")
        spec.tier = xs::GridSearch::hash;
      else if (t == "hash_nuclide")
        spec.tier = xs::GridSearch::hash_nuclide;
      else
        reject("bad_value", "tier",
               "expected \"binary\", \"hash\", or \"hash_nuclide\"");
    } else if (key == "temperature_K") {
      spec.temperature_K = need_finite_number(v, key);
    } else if (key == "grid_scale") {
      spec.grid_scale = need_finite_number(v, key);
    } else if (key == "batches") {
      spec.batches = static_cast<int>(need_integer(v, key));
    } else if (key == "inactive") {
      spec.inactive = static_cast<int>(need_integer(v, key));
    } else if (key == "particles") {
      const std::int64_t p = need_integer(v, key);
      if (p < 0) reject("bad_value", "particles", "must be >= 0");
      spec.particles = static_cast<std::uint64_t>(p);
    } else if (key == "seed") {
      const std::int64_t s = need_integer(v, key);
      if (s < 0) reject("bad_value", "seed", "must be >= 0");
      spec.seed = static_cast<std::uint64_t>(s);
    } else if (key == "devices") {
      spec.devices = static_cast<int>(need_integer(v, key));
    } else {
      reject("unknown_field", key, "not a vectormc.job.v1 member");
    }
  }
  if (!saw_schema)
    reject("missing_field", "schema", "documents must carry the schema tag");
  validate_spec(spec);
  return spec;
}

std::string JobSpec::json() const {
  json::JsonWriter w;
  w.begin_object();
  w.member("schema", "vectormc.job.v1");
  if (!job_id.empty()) w.member("job_id", job_id);
  w.member("tenant", tenant);
  w.member("weight", weight);
  w.member("model", model);
  w.member("nuclides", nuclides);
  w.member("tier", tier_name(tier));
  w.member("temperature_K", temperature_K);
  w.member("grid_scale", grid_scale);
  w.member("batches", batches);
  w.member("inactive", inactive);
  w.member("particles", particles);
  w.member("seed", seed);
  w.member("devices", devices);
  w.end_object();
  return w.str();
}

}  // namespace vmc::serve
