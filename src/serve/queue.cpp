#include "serve/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmc::serve {

void FairShareQueue::push_locked(Job&& job, bool resumed) {
  if (closed_)
    throw std::logic_error("FairShareQueue: push after close()");
  TenantState* ts = nullptr;
  for (TenantState& t : tenants_)
    if (t.tenant == job.spec.tenant) ts = &t;
  if (ts == nullptr) {
    tenants_.push_back({job.spec.tenant, 0.0});
    ts = &tenants_.back();
  }
  Pending p;
  if (resumed) {
    // Resumed work already earned its slot; schedule it at the current
    // virtual time so it goes next within fair order, not to the back.
    p.vfinish = vclock_;
  } else {
    const double vstart = std::max(vclock_, ts->vfinish);
    p.vfinish = vstart + 1.0 / job.spec.weight;
    ts->vfinish = p.vfinish;
  }
  p.job = std::move(job);
  pending_.push_back(std::move(p));
  ready_.notify_one();
}

void FairShareQueue::push(Job job) {
  std::lock_guard lk(mu_);
  push_locked(std::move(job), /*resumed=*/false);
}

void FairShareQueue::push_resumed(Job job) {
  std::lock_guard lk(mu_);
  push_locked(std::move(job), /*resumed=*/true);
}

bool FairShareQueue::pop(Job& out) {
  std::unique_lock lk(mu_);
  ready_.wait(lk, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return false;
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const Pending& a = pending_[i];
    const Pending& b = pending_[best];
    if (a.vfinish < b.vfinish ||
        (a.vfinish == b.vfinish && a.job.seq < b.job.seq))
      best = i;
  }
  vclock_ = std::max(vclock_, pending_[best].vfinish);
  out = std::move(pending_[best].job);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
  return true;
}

void FairShareQueue::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
  ready_.notify_all();
}

std::size_t FairShareQueue::depth() const {
  std::lock_guard lk(mu_);
  return pending_.size();
}

}  // namespace vmc::serve
