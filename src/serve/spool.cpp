#include "serve/spool.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "serve/server.hpp"

namespace vmc::serve {

namespace fs = std::filesystem;

namespace spool {

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(fs::path(path), ec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("spool: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) throw std::runtime_error("spool: read failed for " + path);
  return std::move(ss).str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("spool: cannot open " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("spool: write failed for " + tmp);
  }
  fs::rename(fs::path(tmp), fs::path(path));
}

std::vector<std::string> list_json(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(fs::path(dir), ec)) {
    if (!e.is_regular_file()) continue;
    const fs::path& p = e.path();
    if (p.extension() != ".json") continue;
    if (p.filename().string().front() == '.') continue;
    out.push_back(p.string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool claim(const std::string& path, std::string* claimed) {
  const std::string dst = path + ".claimed";
  std::error_code ec;
  fs::rename(fs::path(path), fs::path(dst), ec);
  if (ec) return false;
  if (claimed != nullptr) *claimed = dst;
  return true;
}

void remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(fs::path(path), ec);
}

void make_dirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir), ec);
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace spool

std::size_t run_inbox(Server& server, const InboxConfig& cfg) {
  spool::make_dirs(cfg.inbox);
  spool::make_dirs(cfg.outbox);
  const std::string sentinel = cfg.inbox + "/" + cfg.sentinel;

  // job_id -> the outbox basename its result publishes under.
  std::vector<std::pair<std::string, std::string>> names;
  std::size_t published = 0;

  const auto publish_finished = [&] {
    for (JobResult& r : server.take_results()) {
      std::string base = r.job_id;
      for (const auto& [id, b] : names)
        if (id == r.job_id) base = b;
      spool::write_file_atomic(cfg.outbox + "/" + base + ".result.json",
                               r.json());
      ++published;
    }
  };

  bool stop = false;
  while (!stop) {
    stop = spool::file_exists(sentinel);
    for (const std::string& path : spool::list_json(cfg.inbox)) {
      std::string claimed;
      if (!spool::claim(path, &claimed)) continue;  // raced with a peer
      const std::string base = fs::path(path).stem().string();
      std::string text;
      try {
        text = spool::read_file(claimed);
        const std::string id = server.submit_json(text);
        names.emplace_back(id, base);
      } catch (const SpecRejected& e) {
        JobResult r;
        r.job_id = base;
        r.status = "rejected";
        r.error = e.error();
        spool::write_file_atomic(cfg.outbox + "/" + base + ".result.json",
                                 r.json());
        ++published;
      } catch (const std::exception& e) {
        JobResult r;
        r.job_id = base;
        r.status = "rejected";
        r.error = {"io", "", e.what()};
        spool::write_file_atomic(cfg.outbox + "/" + base + ".result.json",
                                 r.json());
        ++published;
      }
      spool::remove_file(claimed);
    }
    publish_finished();
    if (!stop) spool::sleep_seconds(cfg.poll_seconds);
  }
  server.drain();
  publish_finished();
  spool::remove_file(sentinel);
  return published;
}

}  // namespace vmc::serve
