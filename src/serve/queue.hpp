// Fair-share weighted job queue (start-time fair queuing).
//
// Each tenant owns a virtual clock. A job's virtual start time is
// max(global virtual time, tenant's last finish), and its virtual finish is
// start + 1/weight — so a tenant with weight 2 advances half as fast per job
// and drains twice the share. Workers always pop the smallest virtual
// finish, which bounds any backlogged tenant's extra latency by one job of
// every other tenant per share round, independent of submission bursts.
// FIFO order is preserved within a tenant (ties break on admission sequence).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job_spec.hpp"

namespace vmc::serve {

/// One admitted unit of work. `resumes`/`checkpoint` carry worker-death
/// recovery state across re-enqueues.
struct Job {
  JobSpec spec;
  std::uint64_t seq = 0;       // admission order; also the fault/trace key
  double submitted_at = 0.0;   // prof::now_seconds() at admission
  int resumes = 0;             // times resumed from a checkpoint
  std::string checkpoint;      // statepoint to resume from ("" = fresh)
};

class FairShareQueue {
 public:
  /// Blocks never: admission control bounds depth before push. Throws
  /// std::logic_error after close() — the server's submit critical section
  /// guarantees no push can race a completed shutdown.
  void push(Job job);

  /// Re-admit a resumed job at the FRONT of its tenant's share (virtual
  /// finish of "now"), so a death doesn't send the job to the back of the
  /// fair-share order it already won.
  void push_resumed(Job job);

  /// Pop the job with the smallest virtual finish time; blocks until a job
  /// arrives or close() is called. Returns false iff closed and drained.
  bool pop(Job& out);

  /// Unblock all poppers once the queue empties (pending jobs still drain).
  void close();

  std::size_t depth() const;

 private:
  struct Pending {
    Job job;
    double vfinish = 0.0;
  };
  struct TenantState {
    std::string tenant;
    double vfinish = 0.0;  // virtual finish of the tenant's last admitted job
  };

  void push_locked(Job&& job, bool resumed);

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::vector<Pending> pending_;
  std::vector<TenantState> tenants_;
  double vclock_ = 0.0;  // virtual time of the last pop
  bool closed_ = false;
};

}  // namespace vmc::serve
