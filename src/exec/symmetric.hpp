// Symmetric-mode runner: host CPUs and MIC coprocessors as peer MPI ranks
// (Sections III-B2/3, Table III, Figures 6-7).
//
// The runner simulates one batch of the eigenvalue loop across
// nodes x (cpu ranks + mic ranks): each rank transports its particle share
// (time from the per-device cost model driven by a measured work profile),
// the batch completes at max(rank time) — which is where static-uniform
// assignment loses to Eq. 3 balancing — plus the interconnect's allreduce.
#pragma once

#include <optional>
#include <vector>

#include "comm/cluster_model.hpp"
#include "exec/load_balance.hpp"
#include "exec/machine.hpp"

namespace vmc::exec {

struct NodeSetup {
  CostModel cpu;
  CostModel mic;
  int cpu_ranks_per_node = 1;
  int mic_ranks_per_node = 1;  // 0 = CPU-only nodes

  static NodeSetup jlse(int mics_per_node);
  static NodeSetup stampede(int mics_per_node);
};

struct SymmetricResult {
  double batch_seconds = 0.0;
  double comm_seconds = 0.0;
  double rate = 0.0;        // particles / second (the paper's metric)
  double ideal_rate = 0.0;  // sum of stand-alone device rates (Table III)
  double slowest_rank_s = 0.0;
  double fastest_rank_s = 0.0;
  std::vector<std::size_t> per_rank_particles;
};

class SymmetricRunner {
 public:
  SymmetricRunner(NodeSetup setup, comm::ClusterModel fabric)
      : setup_(std::move(setup)), fabric_(fabric) {}

  /// One batch of `n_total` particles on `nodes` nodes. `alpha` empty =
  /// OpenMC's default uniform split ("Original" column of Table III);
  /// set = Eq. 3 static balancing ("Load Balanced" column).
  SymmetricResult run_batch(const WorkProfile& w, std::size_t n_total,
                            int nodes, std::optional<double> alpha) const;

  /// Multi-batch run with the runtime alpha estimator (Section V): batch 0
  /// uniform, later batches balanced with the measured alpha. Returns the
  /// per-batch rates.
  std::vector<SymmetricResult> run_adaptive(const WorkProfile& w,
                                            std::size_t n_total, int nodes,
                                            int n_batches) const;

  const NodeSetup& setup() const { return setup_; }

 private:
  NodeSetup setup_;
  comm::ClusterModel fabric_;
};

}  // namespace vmc::exec
