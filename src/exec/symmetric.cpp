#include "exec/symmetric.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vmc::exec {

NodeSetup NodeSetup::jlse(int mics_per_node) {
  NodeSetup s{CostModel(DeviceSpec::jlse_host()),
              CostModel(DeviceSpec::mic_7120a()), 1, mics_per_node};
  return s;
}

NodeSetup NodeSetup::stampede(int mics_per_node) {
  NodeSetup s{CostModel(DeviceSpec::stampede_host()),
              CostModel(DeviceSpec::mic_se10p()), 1, mics_per_node};
  return s;
}

SymmetricResult SymmetricRunner::run_batch(const WorkProfile& w,
                                           std::size_t n_total, int nodes,
                                           std::optional<double> alpha) const {
  const int p_mic = nodes * setup_.mic_ranks_per_node;
  const int p_cpu = nodes * setup_.cpu_ranks_per_node;
  const int ranks = p_mic + p_cpu;

  SymmetricResult res;
  res.per_rank_particles =
      alpha ? per_rank_counts(n_total, p_mic, p_cpu, *alpha)
            : uniform_counts(n_total, ranks);

  // MIC ranks come first in per_rank_counts; mirror that for uniform too.
  double slowest = 0.0;
  double fastest = 1e300;
  for (int r = 0; r < ranks; ++r) {
    const bool is_mic = r < p_mic;
    const CostModel& m = is_mic ? setup_.mic : setup_.cpu;
    const double t = m.generation_seconds(
        w, res.per_rank_particles[static_cast<std::size_t>(r)]);
    slowest = std::max(slowest, t);
    fastest = std::min(fastest, t);
  }
  res.slowest_rank_s = slowest;
  res.fastest_rank_s = fastest;

  // Per-batch communication: global-tally/k allreduce (a few hundred bytes)
  // plus fission-bank redistribution.
  const std::size_t tally_bytes = 64 * sizeof(double);
  res.comm_seconds = fabric_.allreduce_seconds(ranks, tally_bytes) +
                     fabric_.bank_exchange_seconds(
                         ranks, (n_total / static_cast<std::size_t>(ranks)) *
                                    32 / 8);
  res.batch_seconds = slowest + res.comm_seconds;
  res.rate = static_cast<double>(n_total) / res.batch_seconds;

  // Ideal: every device runs at its stand-alone rate on its own share
  // (the paper's Table III ideal is the sum of the individual rates).
  const StaticSplit s = balance_eq3(
      n_total, p_mic, p_cpu,
      alpha.value_or(setup_.cpu.calculation_rate(w, n_total / 2) /
                     std::max(1.0, setup_.mic.calculation_rate(
                                       w, n_total / 2))));
  double ideal = 0.0;
  if (p_mic > 0) {
    ideal += p_mic * setup_.mic.calculation_rate(w, std::max<std::size_t>(
                                                        1, s.n_mic));
  }
  if (p_cpu > 0) {
    ideal += p_cpu * setup_.cpu.calculation_rate(w, std::max<std::size_t>(
                                                        1, s.n_cpu));
  }
  res.ideal_rate = ideal;

  // Modeled load-balance gauges: slowest/fastest rank spread and the α
  // actually applied to this batch (the Eq. 3 split input). A synthetic
  // device-model span per batch keeps symmetric-mode runs visible on the
  // same trace timeline as real offload runs.
  static const obs::Gauge g_slow = obs::metrics().gauge(
      "vmc_symmetric_slowest_rank_seconds", {},
      "Modeled slowest-rank generation time of the latest batch");
  static const obs::Gauge g_fast = obs::metrics().gauge(
      "vmc_symmetric_fastest_rank_seconds", {},
      "Modeled fastest-rank generation time of the latest batch");
  static const obs::Gauge g_alpha = obs::metrics().gauge(
      "vmc_symmetric_alpha", {},
      "CPU/MIC rate ratio applied to the latest batch split (Eq. 3)");
  g_slow.set(res.slowest_rank_s);
  g_fast.set(res.fastest_rank_s);
  if (alpha) g_alpha.set(*alpha);

  obs::Tracer& tr = obs::tracer();
  if (tr.enabled()) {
    const double now = tr.now_s();
    tr.inject_span(obs::Tracer::kDevicePid, 3, "model:symmetric_batch",
                   "symmetric-model", now, res.batch_seconds);
    tr.set_thread_name(obs::Tracer::kDevicePid, 3, "symmetric batch (modeled)");
  }
  return res;
}

std::vector<SymmetricResult> SymmetricRunner::run_adaptive(
    const WorkProfile& w, std::size_t n_total, int nodes,
    int n_batches) const {
  std::vector<SymmetricResult> out;
  AlphaEstimator est(1.0);  // first batch: uniform (alpha = 1 <=> 1/p split)
  for (int b = 0; b < n_batches; ++b) {
    const std::optional<double> alpha =
        est.observations() == 0 ? std::nullopt
                                : std::optional<double>(est.alpha());
    SymmetricResult r = run_batch(w, n_total, nodes, alpha);

    // Measure per-device rates from this batch to update alpha, exactly as
    // the paper's runtime scheme prescribes.
    const int p_mic = nodes * setup_.mic_ranks_per_node;
    if (p_mic > 0 && !r.per_rank_particles.empty()) {
      const std::size_t n_mic = r.per_rank_particles.front();
      const std::size_t n_cpu = r.per_rank_particles.back();
      const double mic_rate =
          static_cast<double>(n_mic) / setup_.mic.generation_seconds(w, n_mic);
      const double cpu_rate =
          static_cast<double>(n_cpu) / setup_.cpu.generation_seconds(w, n_cpu);
      est.observe(cpu_rate, mic_rate);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace vmc::exec
