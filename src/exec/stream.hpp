// Stream: one modeled device-side stream — a bounded ring of in-flight
// chunks walking the lifecycle
//
//     empty -> staged -> transferring -> transferred -> computing
//                                                          |
//     empty <------------------ retire() <-- readback <----+
//
// The persistent offload scheduler gives each device S streams; chunk at
// device-list position p belongs to stream p % S, so up to 2*S chunks (ring
// depth 2 per stream) are in flight per device while the driver issues
// computes strictly in list order. That generalizes the old two-buffer
// prefetch (S = 1) to depth S without giving up the determinism contract:
// transfers are issued on one DMA lane in list order, computes retire in
// list order, and the breaker stays single-writer.
//
// Thread model: exactly two writers touch a slot, never concurrently on the
// same transition — the driver thread (stage / begin_compute /
// finish_compute / retire) and the DMA lane (begin_transfer /
// mark_transferred). The phase field is atomic so the driver's non-blocking
// poll (front_transferred) never blocks on the DMA lane; every transition is
// checked and throws std::logic_error on an illegal move, which is what the
// state-machine unit tests pin down.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace vmc::exec {

/// Lifecycle phase of one in-flight chunk slot.
enum class ChunkPhase : unsigned char {
  empty,         // slot free
  staged,        // chunk queued on this stream, transfer not started
  transferring,  // DMA lane is shipping the bank slice
  transferred,   // bank landed; awaiting its in-order compute turn
  computing,     // kernel running on the device
  readback,      // results back on the host; awaiting retirement
};

const char* to_string(ChunkPhase p);

class Stream {
 public:
  /// Ring depth per stream: one chunk computing/readback plus one staged or
  /// in transfer — the depth-1 configuration is exactly the legacy double
  /// buffer.
  static constexpr int kRingDepth = 2;

  explicit Stream(int index, int ring_depth = kRingDepth);

  Stream(Stream&&) noexcept;
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  int index() const { return index_; }
  int capacity() const { return static_cast<int>(ring_.size()); }
  int in_flight() const { return count_; }
  bool can_stage() const { return count_ < capacity(); }
  bool idle() const { return count_ == 0; }

  /// Highest in_flight() ever observed on this stream.
  int high_water() const { return high_water_; }

  /// Admit a chunk (identified by its device-list position) into the ring.
  /// Returns the slot id the caller uses for the later transitions. Throws
  /// if the ring is full (callers gate on can_stage()).
  int stage(std::size_t position);

  /// DMA lane: staged -> transferring.
  void begin_transfer(int slot);
  /// DMA lane: transferring -> transferred. Release-ordered so the driver's
  /// poll observes the staging buffer the DMA lane just filled.
  void mark_transferred(int slot);

  /// Driver poll, non-blocking: does the OLDEST slot hold `position` with
  /// its transfer complete? The oldest-slot restriction is the in-order
  /// compute guarantee.
  bool front_transferred(std::size_t position) const;

  /// Oldest slot id (throws when the ring is empty).
  int front_slot() const;

  /// Driver: transferred -> computing (oldest slot only).
  void begin_compute(int slot);
  /// Driver: computing -> readback.
  void finish_compute(int slot);
  /// Driver: transferred -> readback without computing (oldest slot only) —
  /// the breaker denied the chunk, but the slot must still drain through the
  /// ring so later chunks keep their in-order completion.
  void skip_compute(int slot);

  /// Driver: readback -> empty; frees the oldest slot and returns the
  /// device-list position it carried.
  std::size_t retire();

 private:
  struct Slot {
    std::atomic<ChunkPhase> phase{ChunkPhase::empty};
    std::size_t position = 0;
  };

  void expect(int slot, ChunkPhase from, ChunkPhase to);

  int index_;
  std::vector<Slot> ring_;
  int head_ = 0;   // oldest occupied slot
  int count_ = 0;  // occupied slots
  int high_water_ = 0;
};

}  // namespace vmc::exec
