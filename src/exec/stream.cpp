#include "exec/stream.hpp"

#include <stdexcept>
#include <string>

namespace vmc::exec {

const char* to_string(ChunkPhase p) {
  switch (p) {
    case ChunkPhase::empty: return "empty";
    case ChunkPhase::staged: return "staged";
    case ChunkPhase::transferring: return "transferring";
    case ChunkPhase::transferred: return "transferred";
    case ChunkPhase::computing: return "computing";
    case ChunkPhase::readback: return "readback";
  }
  return "?";
}

Stream::Stream(int index, int ring_depth) : index_(index) {
  if (ring_depth < 1) throw std::invalid_argument("Stream: ring_depth < 1");
  ring_ = std::vector<Slot>(static_cast<std::size_t>(ring_depth));
}

Stream::Stream(Stream&& other) noexcept
    : index_(other.index_),
      ring_(other.ring_.size()),
      head_(other.head_),
      count_(other.count_),
      high_water_(other.high_water_) {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_[i].phase.store(other.ring_[i].phase.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    ring_[i].position = other.ring_[i].position;
  }
}

void Stream::expect(int slot, ChunkPhase from, ChunkPhase to) {
  if (slot < 0 || slot >= capacity())
    throw std::logic_error("Stream: slot id out of range");
  ChunkPhase cur = ring_[static_cast<std::size_t>(slot)].phase.load(
      std::memory_order_acquire);
  if (cur != from)
    throw std::logic_error(std::string("Stream ") + std::to_string(index_) +
                           ": illegal transition " + to_string(cur) + " -> " +
                           to_string(to) + " (slot expected " +
                           to_string(from) + ")");
}

int Stream::stage(std::size_t position) {
  if (!can_stage()) throw std::logic_error("Stream: stage() on a full ring");
  int slot = (head_ + count_) % capacity();
  expect(slot, ChunkPhase::empty, ChunkPhase::staged);
  Slot& s = ring_[static_cast<std::size_t>(slot)];
  s.position = position;
  s.phase.store(ChunkPhase::staged, std::memory_order_release);
  ++count_;
  if (count_ > high_water_) high_water_ = count_;
  return slot;
}

void Stream::begin_transfer(int slot) {
  expect(slot, ChunkPhase::staged, ChunkPhase::transferring);
  ring_[static_cast<std::size_t>(slot)].phase.store(
      ChunkPhase::transferring, std::memory_order_release);
}

void Stream::mark_transferred(int slot) {
  expect(slot, ChunkPhase::transferring, ChunkPhase::transferred);
  ring_[static_cast<std::size_t>(slot)].phase.store(
      ChunkPhase::transferred, std::memory_order_release);
}

bool Stream::front_transferred(std::size_t position) const {
  if (count_ == 0) return false;
  const Slot& s = ring_[static_cast<std::size_t>(head_)];
  return s.position == position &&
         s.phase.load(std::memory_order_acquire) == ChunkPhase::transferred;
}

int Stream::front_slot() const {
  if (count_ == 0) throw std::logic_error("Stream: front_slot() on empty ring");
  return head_;
}

void Stream::begin_compute(int slot) {
  if (slot != front_slot())
    throw std::logic_error("Stream: begin_compute() out of order");
  expect(slot, ChunkPhase::transferred, ChunkPhase::computing);
  ring_[static_cast<std::size_t>(slot)].phase.store(
      ChunkPhase::computing, std::memory_order_release);
}

void Stream::finish_compute(int slot) {
  expect(slot, ChunkPhase::computing, ChunkPhase::readback);
  ring_[static_cast<std::size_t>(slot)].phase.store(
      ChunkPhase::readback, std::memory_order_release);
}

void Stream::skip_compute(int slot) {
  if (slot != front_slot())
    throw std::logic_error("Stream: skip_compute() out of order");
  expect(slot, ChunkPhase::transferred, ChunkPhase::readback);
  ring_[static_cast<std::size_t>(slot)].phase.store(
      ChunkPhase::readback, std::memory_order_release);
}

std::size_t Stream::retire() {
  int slot = front_slot();
  expect(slot, ChunkPhase::readback, ChunkPhase::empty);
  Slot& s = ring_[static_cast<std::size_t>(slot)];
  std::size_t pos = s.position;
  s.phase.store(ChunkPhase::empty, std::memory_order_release);
  head_ = (head_ + 1) % capacity();
  --count_;
  return pos;
}

}  // namespace vmc::exec
