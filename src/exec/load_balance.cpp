#include "exec/load_balance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmc::exec {

StaticSplit balance_eq3(std::size_t n_total, int p_mic, int p_cpu,
                        double alpha) {
  if (p_mic < 0 || p_cpu < 0 || p_mic + p_cpu == 0) {
    throw std::invalid_argument("need at least one rank");
  }
  if (alpha <= 0.0) throw std::invalid_argument("alpha must be positive");
  StaticSplit s;
  if (p_mic == 0) {
    s.n_cpu = n_total / static_cast<std::size_t>(p_cpu);
    return s;
  }
  if (p_cpu == 0) {
    s.n_mic = n_total / static_cast<std::size_t>(p_mic);
    return s;
  }
  const double denom = static_cast<double>(p_mic) +
                       static_cast<double>(p_cpu) * alpha;
  const double n_mic = static_cast<double>(n_total) / denom;
  s.n_mic = static_cast<std::size_t>(std::llround(n_mic));
  const std::size_t mic_total = s.n_mic * static_cast<std::size_t>(p_mic);
  const std::size_t rest = n_total > mic_total ? n_total - mic_total : 0;
  s.n_cpu = rest / static_cast<std::size_t>(p_cpu);
  return s;
}

std::vector<std::size_t> per_rank_counts(std::size_t n_total, int p_mic,
                                         int p_cpu, double alpha) {
  const StaticSplit s = balance_eq3(n_total, p_mic, p_cpu, alpha);
  std::vector<std::size_t> counts;
  counts.reserve(static_cast<std::size_t>(p_mic + p_cpu));
  std::size_t assigned = 0;
  for (int r = 0; r < p_mic; ++r) {
    counts.push_back(s.n_mic);
    assigned += s.n_mic;
  }
  for (int r = 0; r < p_cpu; ++r) {
    counts.push_back(s.n_cpu);
    assigned += s.n_cpu;
  }
  // Distribute any rounding remainder one particle at a time (CPU ranks
  // first — they are cheapest to perturb).
  std::size_t i = static_cast<std::size_t>(p_mic);
  while (assigned < n_total && !counts.empty()) {
    counts[i] += 1;
    ++assigned;
    ++i;
    if (i >= counts.size()) i = 0;
  }
  while (assigned > n_total) {
    for (auto& c : counts) {
      if (c > 0 && assigned > n_total) {
        --c;
        --assigned;
      }
    }
  }
  return counts;
}

std::size_t reassign_orphan_blocks(std::vector<int>& owner,
                                   const std::vector<std::size_t>& block_sizes,
                                   const std::vector<int>& dead_ranks,
                                   int n_ranks) {
  if (owner.size() != block_sizes.size()) {
    throw std::invalid_argument("one size per block required");
  }
  std::vector<char> dead(static_cast<std::size_t>(n_ranks), 0);
  for (const int r : dead_ranks) {
    if (r < 0 || r >= n_ranks) throw std::invalid_argument("bad dead rank");
    dead[static_cast<std::size_t>(r)] = 1;
  }
  std::vector<std::size_t> load(static_cast<std::size_t>(n_ranks), 0);
  for (std::size_t b = 0; b < owner.size(); ++b) {
    const int r = owner[b];
    if (r < 0 || r >= n_ranks) throw std::invalid_argument("bad block owner");
    if (dead[static_cast<std::size_t>(r)] == 0) {
      load[static_cast<std::size_t>(r)] += block_sizes[b];
    }
  }
  std::size_t moved = 0;
  for (std::size_t b = 0; b < owner.size(); ++b) {
    if (dead[static_cast<std::size_t>(owner[b])] == 0) continue;
    int best = -1;
    for (int r = 0; r < n_ranks; ++r) {
      if (dead[static_cast<std::size_t>(r)] != 0) continue;
      if (best < 0 ||
          load[static_cast<std::size_t>(r)] < load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    if (best < 0) throw std::runtime_error("no live rank left to adopt blocks");
    owner[b] = best;
    load[static_cast<std::size_t>(best)] += block_sizes[b];
    ++moved;
  }
  return moved;
}

std::vector<std::size_t> uniform_counts(std::size_t n_total, int ranks) {
  if (ranks <= 0) throw std::invalid_argument("ranks must be positive");
  std::vector<std::size_t> counts(static_cast<std::size_t>(ranks),
                                  n_total / static_cast<std::size_t>(ranks));
  std::size_t rem = n_total % static_cast<std::size_t>(ranks);
  for (std::size_t r = 0; r < rem; ++r) counts[r] += 1;
  return counts;
}

}  // namespace vmc::exec
