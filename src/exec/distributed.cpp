#include "exec/distributed.hpp"

#include <mutex>
#include <numeric>
#include <stdexcept>

#include "core/eigenvalue.hpp"

namespace vmc::exec {

DistributedResult run_distributed(comm::World& world,
                                  const geom::Geometry& geometry,
                                  const xs::Library& lib,
                                  const DistributedSettings& settings,
                                  std::vector<std::size_t> quotas) {
  if (static_cast<int>(quotas.size()) != world.size()) {
    throw std::invalid_argument("one quota per rank required");
  }
  const std::size_t quota_sum =
      std::accumulate(quotas.begin(), quotas.end(), std::size_t{0});
  if (quota_sum != settings.n_total) {
    throw std::invalid_argument("quotas must sum to n_total");
  }
  std::vector<std::size_t> offsets(quotas.size(), 0);
  for (std::size_t r = 1; r < quotas.size(); ++r) {
    offsets[r] = offsets[r - 1] + quotas[r - 1];
  }

  DistributedResult result;
  result.quotas = quotas;
  std::mutex result_mu;

  world.run([&](comm::Comm& c) {
    const std::size_t rank = static_cast<std::size_t>(c.rank());
    const std::size_t quota = quotas[rank];
    const std::size_t offset = offsets[rank];

    physics::Collision coll(lib, settings.physics);
    const core::HistoryTracker tracker(geometry, lib, coll, settings.tracker);

    // Global initial source: every rank generates the identical full source
    // (deterministic from the seed — sampling is negligible next to
    // transport) and takes its slice. This mirrors the serial driver
    // exactly.
    core::Settings serial_like;
    serial_like.n_particles = settings.n_total;
    serial_like.seed = settings.seed;
    serial_like.source_lo = settings.source_lo;
    serial_like.source_hi = settings.source_hi;
    const core::Simulation source_maker(geometry, lib, serial_like);
    std::vector<particle::FissionSite> full_source =
        source_maker.initial_source();
    std::vector<particle::FissionSite> my_source(
        full_source.begin() + static_cast<std::ptrdiff_t>(offset),
        full_source.begin() + static_cast<std::ptrdiff_t>(offset + quota));

    // Deliberately the SAME derivation as the serial driver's resample
    // stream (core/eigenvalue.cpp): rank 0 must resample exactly like the
    // serial run for decomposition-invariant results.
    // vmc-lint: allow(stream-overlap)
    rng::Stream resample_stream(settings.seed ^ 0xbadc0deULL);
    core::BatchStatistics k_stats;
    std::vector<double> k_history;
    double active_leak = 0.0;

    const int total_gens = settings.n_inactive + settings.n_active;
    for (int gen = 0; gen < total_gens; ++gen) {
      const bool active = gen >= settings.n_inactive;
      core::TallyScores tally;
      core::EventCounts counts;
      std::vector<particle::FissionSite> local_bank;
      local_bank.reserve(quota * 3);

      // Globally indexed particle ids: identical histories to the serial
      // driver's id scheme (gen * (n_total + 1) + global index).
      const std::uint64_t id_base =
          static_cast<std::uint64_t>(gen) * (settings.n_total + 1);
      for (std::size_t i = 0; i < quota; ++i) {
        particle::Particle p = particle::Particle::born(
            settings.seed, id_base + offset + i, my_source[i].r,
            my_source[i].energy);
        tracker.track(p, tally, counts, local_bank);
      }

      // --- the per-batch communication pattern ---------------------------
      // 1. allreduce the global tallies,
      const std::vector<double> global = c.allreduce_sum(
          {tally.k_collision, tally.absorption, tally.leakage});
      const double k_gen = global[0] / static_cast<double>(settings.n_total);
      k_history.push_back(k_gen);
      if (active) {
        k_stats.add(k_gen);
        active_leak += global[2];
      }

      // 2. gather the fission bank (rank order == global particle order),
      std::vector<particle::FissionSite> all_sites =
          c.gather(local_bank, /*root=*/0);

      // 3. root resamples to n_total, everyone receives the new source.
      std::vector<particle::FissionSite> next_full;
      if (c.rank() == 0) {
        next_full = core::resample_bank(all_sites, settings.n_total,
                                        resample_stream);
      }
      c.bcast(next_full, 0);
      my_source.assign(
          next_full.begin() + static_cast<std::ptrdiff_t>(offset),
          next_full.begin() + static_cast<std::ptrdiff_t>(offset + quota));
    }

    if (c.rank() == 0) {
      std::lock_guard lk(result_mu);
      result.k_eff = k_stats.mean();
      result.k_std = k_stats.std_err();
      result.k_per_generation = k_history;
      result.leakage_fraction =
          active_leak / (static_cast<double>(settings.n_total) *
                         std::max(1, settings.n_active));
    }
  });

  return result;
}

}  // namespace vmc::exec
